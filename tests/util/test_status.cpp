#include "util/status.hpp"

#include <gtest/gtest.h>

namespace mcs::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_TRUE(static_cast<bool>(status));
  EXPECT_EQ(status.code(), Code::Ok);
  EXPECT_EQ(status.errno_value(), 0);
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status status = invalid_argument("bad cpu id");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), Code::EInval);
  EXPECT_EQ(status.message(), "bad cpu id");
}

TEST(Status, ErrnoValueMatchesLinuxConvention) {
  EXPECT_EQ(invalid_argument("x").errno_value(), -22);
  EXPECT_EQ(not_found("x").errno_value(), -2);
  EXPECT_EQ(busy("x").errno_value(), -16);
  EXPECT_EQ(fault("x").errno_value(), -14);
  EXPECT_EQ(perm("x").errno_value(), -1);
  EXPECT_EQ(nosys("x").errno_value(), -38);
  EXPECT_EQ(no_mem("x").errno_value(), -12);
}

TEST(Status, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(invalid_argument("reason").to_string(), "EINVAL: reason");
  EXPECT_EQ(Status::ok().to_string(), "OK");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(invalid_argument("a"), invalid_argument("b"));
  EXPECT_FALSE(invalid_argument("a") == not_found("a"));
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_EQ(code_name(Code::Ok), "OK");
  EXPECT_EQ(code_name(Code::EInval), "EINVAL");
  EXPECT_EQ(code_name(Code::ENoSys), "ENOSYS");
  EXPECT_EQ(code_name(Code::Internal), "INTERNAL");
}

TEST(Expected, HoldsValue) {
  Expected<int> result = 42;
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Expected, HoldsStatus) {
  Expected<int> result = invalid_argument("nope");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), Code::EInval);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> result = std::string("payload");
  ASSERT_TRUE(result.is_ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ReturnIfErrorMacro, PropagatesFailure) {
  const auto inner = []() -> Status { return busy("locked"); };
  const auto outer = [&]() -> Status {
    MCS_RETURN_IF_ERROR(inner());
    return ok_status();
  };
  EXPECT_EQ(outer().code(), Code::EBusy);
}

TEST(ReturnIfErrorMacro, PassesThroughSuccess) {
  const auto outer = []() -> Status {
    MCS_RETURN_IF_ERROR(ok_status());
    return internal("reached");
  };
  EXPECT_EQ(outer().code(), Code::Internal);
}

}  // namespace
}  // namespace mcs::util
