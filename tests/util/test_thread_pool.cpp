#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace mcs::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, JobsCanRunConcurrently) {
  // Not a timing assertion — just that independent jobs all complete even
  // when each writes a distinct slot (the executor's usage pattern).
  ThreadPool pool(4);
  std::vector<std::uint64_t> slots(64, 0);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    pool.submit([&slots, i] { slots[i] = i + 1; });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], i + 1) << i;
  }
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 10);
  }
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace mcs::util
