#include "util/clock.hpp"

#include <gtest/gtest.h>

namespace mcs::util {
namespace {

TEST(Ticks, Conversions) {
  EXPECT_EQ(from_millis(250).value, 250u);
  EXPECT_EQ(from_seconds(2).value, 2000u);
  EXPECT_EQ(from_minutes(1).value, 60'000u);
  EXPECT_EQ(to_millis(Ticks{42}), 42u);
}

TEST(Ticks, Arithmetic) {
  Ticks t{10};
  t += Ticks{5};
  EXPECT_EQ(t.value, 15u);
  EXPECT_EQ((Ticks{10} + Ticks{5}).value, 15u);
  EXPECT_EQ((Ticks{10} - Ticks{4}).value, 6u);
}

TEST(Ticks, Ordering) {
  EXPECT_LT(Ticks{1}, Ticks{2});
  EXPECT_EQ(Ticks{3}, Ticks{3});
  EXPECT_GT(Ticks{4}, Ticks{3});
}

TEST(SimClock, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now().value, 0u);
}

TEST(SimClock, TickAdvancesByOne) {
  SimClock clock;
  clock.tick();
  clock.tick();
  EXPECT_EQ(clock.now().value, 2u);
}

TEST(SimClock, AdvanceByDelta) {
  SimClock clock;
  clock.advance(from_minutes(1));
  EXPECT_EQ(clock.now(), from_minutes(1));
}

}  // namespace
}  // namespace mcs::util
