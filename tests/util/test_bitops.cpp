#include "util/bitops.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mcs::util {
namespace {

TEST(BitOps, FlipBitTogglesExactlyOneBit) {
  const std::uint32_t value = 0b1010;
  EXPECT_EQ(flip_bit(value, 0u), 0b1011u);
  EXPECT_EQ(flip_bit(value, 1u), 0b1000u);
  EXPECT_EQ(flip_bit(value, 31u), 0x8000'000Au);
}

TEST(BitOps, TestSetClear) {
  std::uint32_t value = 0;
  value = set_bit(value, 5u);
  EXPECT_TRUE(test_bit(value, 5u));
  value = clear_bit(value, 5u);
  EXPECT_FALSE(test_bit(value, 5u));
  EXPECT_EQ(value, 0u);
}

TEST(BitOps, BitsExtractsInclusiveRange) {
  const std::uint32_t value = 0xABCD'1234;
  EXPECT_EQ(bits(value, 31u, 28u), 0xAu);
  EXPECT_EQ(bits(value, 15u, 0u), 0x1234u);
  EXPECT_EQ(bits(value, 31u, 0u), value);
  EXPECT_EQ(bits(value, 0u, 0u), 0u);  // lsb of 0x...4
}

TEST(BitOps, DepositBitsWritesField) {
  std::uint32_t value = 0;
  value = deposit_bits(value, 31u, 26u, 0x24u);
  EXPECT_EQ(bits(value, 31u, 26u), 0x24u);
  EXPECT_EQ(bits(value, 25u, 0u), 0u);
  // Overwriting leaves neighbours intact.
  value = deposit_bits(value, 7u, 4u, 0xFu);
  EXPECT_EQ(bits(value, 31u, 26u), 0x24u);
  EXPECT_EQ(bits(value, 7u, 4u), 0xFu);
}

TEST(BitOps, PopcountMatchesStd) {
  EXPECT_EQ(popcount(0u), 0);
  EXPECT_EQ(popcount(0xFFu), 8);
  EXPECT_EQ(popcount(0x8000'0001u), 2);
}

TEST(BitOps, Alignment) {
  EXPECT_TRUE(is_aligned(0x1000, 0x1000));
  EXPECT_FALSE(is_aligned(0x1004, 0x1000));
  EXPECT_EQ(align_down(0x1FFF, 0x1000), 0x1000u);
  EXPECT_EQ(align_up(0x1001, 0x1000), 0x2000u);
  EXPECT_EQ(align_up(0x1000, 0x1000), 0x1000u);
}

// Property: flip is an involution, and it changes the hamming weight by 1.
class FlipInvolution : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlipInvolution, DoubleFlipRestores) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const auto value = static_cast<std::uint32_t>(rng.next());
    const auto bit = static_cast<unsigned>(rng.below(32));
    const std::uint32_t flipped = flip_bit(value, bit);
    EXPECT_NE(flipped, value);
    EXPECT_EQ(flip_bit(flipped, bit), value);
    EXPECT_EQ(std::abs(popcount(flipped) - popcount(value)), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlipInvolution, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mcs::util
