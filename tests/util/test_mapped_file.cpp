#include "util/mapped_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "util/logpipe_counters.hpp"

namespace mcs::util {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::path(testing::TempDir()) / name;
}

void write_file(const std::filesystem::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

TEST(MappedFile, MmapAndReadFallbackServeIdenticalBytes) {
  const auto path = temp_path("mcs_mapped_file_bytes.txt");
  std::string body = "run 0: correct — ok (injections=1, usart_bytes=9)\n";
  for (int i = 0; i < 9; ++i) body += body;  // ~25 KB, spans pages
  write_file(path, body);

  auto mapped = MappedFile::open(path.string());
  ASSERT_TRUE(mapped.is_ok()) << mapped.status().to_string();
  auto fallback = MappedFile::open(path.string(), /*allow_mmap=*/false);
  ASSERT_TRUE(fallback.is_ok()) << fallback.status().to_string();

  // Callers must never be able to tell which path served them.
  EXPECT_FALSE(fallback.value().is_mapped());
  EXPECT_EQ(mapped.value().view(), body);
  EXPECT_EQ(fallback.value().view(), body);
  EXPECT_EQ(mapped.value().size(), body.size());
}

TEST(MappedFile, MissingFileIsNotFound) {
  const auto missing = temp_path("mcs_mapped_file_missing.txt");
  std::filesystem::remove(missing);
  auto opened = MappedFile::open(missing.string());
  ASSERT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.status().code(), Code::ENoEnt);
}

TEST(MappedFile, DirectoryIsAnIoError) {
  auto opened = MappedFile::open(testing::TempDir());
  ASSERT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.status().code(), Code::EIo);
  EXPECT_NE(opened.status().message().find("directory"), std::string::npos);
}

TEST(MappedFile, EmptyFileMapsToAnEmptyView) {
  const auto path = temp_path("mcs_mapped_file_empty.txt");
  write_file(path, "");
  auto opened = MappedFile::open(path.string());
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value().size(), 0u);
  EXPECT_EQ(opened.value().view(), "");
}

TEST(MappedFile, MoveTransfersTheView) {
  const auto path = temp_path("mcs_mapped_file_move.txt");
  write_file(path, "payload");
  auto opened = MappedFile::open(path.string());
  ASSERT_TRUE(opened.is_ok());
  MappedFile moved = std::move(opened).value();
  MappedFile target;
  target = std::move(moved);
  EXPECT_EQ(target.view(), "payload");
  EXPECT_EQ(moved.view(), "");  // NOLINT(bugprone-use-after-move): pinned empty
}

TEST(MappedFile, RecordsMappedBytesInThePipelineCounters) {
  const auto path = temp_path("mcs_mapped_file_counters.txt");
  write_file(path, "0123456789");
  const LogPipeCounters::Stats before = LogPipeCounters::instance().stats();
  {
    auto mapped = MappedFile::open(path.string());
    ASSERT_TRUE(mapped.is_ok());
    auto fallback = MappedFile::open(path.string(), /*allow_mmap=*/false);
    ASSERT_TRUE(fallback.is_ok());
  }
  const LogPipeCounters::Stats after = LogPipeCounters::instance().stats();
  EXPECT_EQ(after.bytes_mapped - before.bytes_mapped, 20u);
  EXPECT_EQ(after.map_fallbacks - before.map_fallbacks, 1u);
}

TEST(ReadFile, RoundTripsContents) {
  const auto path = temp_path("mcs_read_file.txt");
  write_file(path, "line one\nline two\n");
  auto body = read_file(path.string());
  ASSERT_TRUE(body.is_ok()) << body.status().to_string();
  EXPECT_EQ(body.value(), "line one\nline two\n");

  auto missing = read_file(temp_path("mcs_read_file_missing.txt").string());
  EXPECT_FALSE(missing.is_ok());
}

}  // namespace
}  // namespace mcs::util
