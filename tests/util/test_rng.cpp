#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mcs::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Reproducible) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInBounds) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 16ull, 100ull, 1ull << 33}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, InRangeInclusive) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.in_range(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values reachable
}

TEST(Xoshiro256, Uniform01InUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

TEST(Xoshiro256, ChanceEdgeCases) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Xoshiro256, ForkIsIndependentButDeterministic) {
  Xoshiro256 parent_a(99);
  Xoshiro256 parent_b(99);
  Xoshiro256 child_a = parent_a.fork();
  Xoshiro256 child_b = parent_b.fork();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(child_a.next(), child_b.next());
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child_a.next(), parent_a.next());
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(23);
  std::vector<int> histogram(8, 0);
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.below(8)];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 8 / 5);  // within 20 %
  }
}

// Property sweep: bounded generation is unbiased at awkward bounds.
class XoshiroBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XoshiroBoundSweep, AllResiduesReachable) {
  const std::uint64_t bound = GetParam();
  Xoshiro256 rng(bound * 2654435761u + 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4000 && seen.size() < bound; ++i) seen.insert(rng.below(bound));
  EXPECT_EQ(seen.size(), bound);
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, XoshiroBoundSweep,
                         ::testing::Values(2, 3, 5, 7, 13, 16, 31));

}  // namespace
}  // namespace mcs::util
