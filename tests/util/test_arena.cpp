#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/alloc_observer.hpp"

namespace mcs::util {
namespace {

TEST(Arena, BumpAllocatesDistinctAlignedStorage) {
  Arena arena;
  auto* a = arena.allocate_array<std::uint64_t>(4);
  auto* b = arena.allocate_array<std::uint8_t>(3);
  auto* c = arena.allocate_array<std::uint64_t>(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(c));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::uint64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint64_t), 0u);
  a[0] = 1;
  b[0] = 2;
  c[0] = 3;
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(b[0], 2u);
  EXPECT_EQ(c[0], 3u);
  EXPECT_GE(arena.bytes_in_use(), 4 * sizeof(std::uint64_t) + 3 + sizeof(std::uint64_t));
}

TEST(Arena, GrowsBeyondOneBlockAndHonoursOversizedRequests) {
  Arena arena(64);  // tiny blocks to force growth
  for (int i = 0; i < 32; ++i) {
    auto* p = arena.allocate_array<std::uint8_t>(48);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xAB, 48);
  }
  EXPECT_GT(arena.block_count(), 1u);
  // A request larger than the block size gets its own block.
  auto* big = arena.allocate_array<std::uint8_t>(1024);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 1024);
}

TEST(Arena, ResetKeepsCapacityAndReusesBlocks) {
  Arena arena(1024);
  (void)arena.allocate_array<std::uint8_t>(512);
  (void)arena.allocate_array<std::uint8_t>(512);
  const std::size_t capacity = arena.capacity();
  const std::size_t blocks = arena.block_count();
  ASSERT_GT(capacity, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.capacity(), capacity);
  EXPECT_EQ(arena.block_count(), blocks);
  // Refilling the same shape allocates nothing from the heap.
  const AllocationObserver::Window window;
  (void)arena.allocate_array<std::uint8_t>(512);
  (void)arena.allocate_array<std::uint8_t>(512);
  EXPECT_EQ(window.allocations(), 0u);
  EXPECT_EQ(arena.capacity(), capacity);
}

TEST(Arena, CreatePlacesObjects) {
  Arena arena;
  struct Pair {
    int a;
    int b;
  };
  Pair* pair = arena.create<Pair>(Pair{1, 2});
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(pair->a, 1);
  EXPECT_EQ(pair->b, 2);
}

TEST(Arena, ReleaseDropsEverything) {
  Arena arena;
  (void)arena.allocate(100);
  arena.release();
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  (void)arena.allocate(8);  // usable again after release
  EXPECT_GT(arena.capacity(), 0u);
}

TEST(Arena, RewindToMarkReclaimsOnlyAllocationsAboveIt) {
  Arena arena(1024);
  auto* base = arena.allocate_array<std::uint8_t>(100);
  std::memset(base, 0x5A, 100);
  const Arena::Mark mark = arena.mark();
  const std::size_t at_mark = arena.bytes_in_use();
  (void)arena.allocate_array<std::uint8_t>(200);
  ASSERT_GT(arena.bytes_in_use(), at_mark);
  arena.rewind_to(mark);
  EXPECT_EQ(arena.bytes_in_use(), at_mark);
  // The allocation below the mark is untouched by the rewind.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(base[i], 0x5A);
  // Re-allocating above the mark reuses the rewound storage: no heap.
  const AllocationObserver::Window window;
  (void)arena.allocate_array<std::uint8_t>(200);
  EXPECT_EQ(window.allocations(), 0u);
}

TEST(Arena, RewindToMarkSpansBlocks) {
  Arena arena(64);  // tiny blocks so the scratch above the mark grows blocks
  (void)arena.allocate_array<std::uint8_t>(48);
  const Arena::Mark mark = arena.mark();
  const std::size_t at_mark = arena.bytes_in_use();
  for (int i = 0; i < 8; ++i) (void)arena.allocate_array<std::uint8_t>(48);
  const std::size_t blocks = arena.block_count();
  ASSERT_GT(blocks, 1u);
  arena.rewind_to(mark);
  EXPECT_EQ(arena.bytes_in_use(), at_mark);
  EXPECT_EQ(arena.block_count(), blocks);  // capacity kept, like reset()
  // The rewound arena keeps allocating correctly across the kept blocks.
  const AllocationObserver::Window window;
  for (int i = 0; i < 8; ++i) (void)arena.allocate_array<std::uint8_t>(48);
  EXPECT_EQ(window.allocations(), 0u);
}

TEST(Arena, MarkOnEmptyArenaActsLikeReset) {
  Arena arena(128);
  const Arena::Mark mark = arena.mark();
  (void)arena.allocate_array<std::uint8_t>(100);
  arena.rewind_to(mark);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(Arena, HighWaterTracksPeakUse) {
  Arena arena(1024);
  EXPECT_EQ(arena.high_water(), 0u);
  (void)arena.allocate_array<std::uint8_t>(300);
  const std::size_t peak = arena.high_water();
  EXPECT_GE(peak, 300u);
  arena.reset();
  EXPECT_EQ(arena.high_water(), peak);  // survives reset: it is a peak
  (void)arena.allocate_array<std::uint8_t>(100);
  EXPECT_EQ(arena.high_water(), peak);  // smaller refill doesn't move it
  (void)arena.allocate_array<std::uint8_t>(400);
  EXPECT_GT(arena.high_water(), peak);
}

TEST(AllocationObserver, CountsOperatorNew) {
  const AllocationObserver::Window window;
  auto* p = new int(42);
  EXPECT_GE(window.allocations(), 1u);
  delete p;
}

}  // namespace
}  // namespace mcs::util
