#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace mcs::util {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\nx"), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("jailhouse cell", "jailhouse"));
  EXPECT_FALSE(starts_with("jail", "jailhouse"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, HexRendering) {
  EXPECT_EQ(hex(0x24), "0x24");
  EXPECT_EQ(hex(0), "0x0");
  EXPECT_EQ(hex(0xDEADBEEF), "0xdeadbeef");
}

TEST(Strings, HexPadded) {
  EXPECT_EQ(hex(0x24, 2), "0x24");
  EXPECT_EQ(hex(0x4, 2), "0x04");
  EXPECT_EQ(hex(0x1234, 8), "0x00001234");
}

TEST(Strings, PercentFormatting) {
  EXPECT_EQ(percent(1, 4), "25.0%");
  EXPECT_EQ(percent(1, 3), "33.3%");
  EXPECT_EQ(percent(0, 10), "0.0%");
  EXPECT_EQ(percent(10, 10), "100.0%");
}

TEST(Strings, PercentZeroDenominator) { EXPECT_EQ(percent(5, 0), "n/a"); }

}  // namespace
}  // namespace mcs::util
