#include "util/log.hpp"

#include <gtest/gtest.h>

namespace mcs::util {
namespace {

TEST(EventLog, AppendAndRead) {
  EventLog log;
  log.log(Ticks{5}, Severity::Info, "uart0", 0, "hello");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].message, "hello");
  EXPECT_EQ(log.records()[0].timestamp.value, 5u);
  EXPECT_EQ(log.records()[0].cpu, 0);
}

TEST(EventLog, CountAtLeastFiltersBySeverity) {
  EventLog log;
  log.log(Ticks{1}, Severity::Debug, "a", -1, "d");
  log.log(Ticks{2}, Severity::Warning, "a", -1, "w");
  log.log(Ticks{3}, Severity::Error, "a", -1, "e");
  log.log(Ticks{4}, Severity::Fatal, "a", -1, "f");
  EXPECT_EQ(log.count_at_least(Severity::Debug), 4u);
  EXPECT_EQ(log.count_at_least(Severity::Warning), 3u);
  EXPECT_EQ(log.count_at_least(Severity::Error), 2u);
  EXPECT_EQ(log.count_at_least(Severity::Fatal), 1u);
}

TEST(EventLog, ContainsMatchesComponentAndNeedle) {
  EventLog log;
  log.log(Ticks{1}, Severity::Error, "hypervisor", 1, "unhandled trap exception");
  EXPECT_TRUE(log.contains("hypervisor", "unhandled trap"));
  EXPECT_FALSE(log.contains("hypervisor", "panic"));
  EXPECT_FALSE(log.contains("uart0", "unhandled trap"));
}

TEST(EventLog, MirrorSeesEveryRecord) {
  EventLog log;
  int mirrored = 0;
  log.set_mirror([&](const LogRecord&) { ++mirrored; });
  log.log(Ticks{1}, Severity::Info, "a", -1, "x");
  log.log(Ticks{2}, Severity::Info, "a", -1, "y");
  EXPECT_EQ(mirrored, 2);
}

TEST(EventLog, ToTextFormat) {
  EventLog log;
  log.log(Ticks{42}, Severity::Error, "hypervisor", 1, "boom");
  log.log(Ticks{43}, Severity::Info, "board", -1, "tick");
  const std::string text = log.to_text();
  EXPECT_NE(text.find("[42ms] ERROR hypervisor/cpu1: boom"), std::string::npos);
  EXPECT_NE(text.find("[43ms] INFO board: tick"), std::string::npos);
}

TEST(EventLog, ClearEmpties) {
  EventLog log;
  log.log(Ticks{1}, Severity::Info, "a", -1, "x");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(Severity, NamesAreStable) {
  EXPECT_EQ(severity_name(Severity::Debug), "DEBUG");
  EXPECT_EQ(severity_name(Severity::Warning), "WARN");
  EXPECT_EQ(severity_name(Severity::Fatal), "FATAL");
}

}  // namespace
}  // namespace mcs::util
