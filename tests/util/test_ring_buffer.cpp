#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace mcs::util {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int, 4> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.pop(), std::nullopt);
  EXPECT_EQ(ring.peek(), nullptr);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int, 4> ring;
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.push(3));
  EXPECT_EQ(*ring.pop(), 1);
  EXPECT_EQ(*ring.pop(), 2);
  EXPECT_EQ(*ring.pop(), 3);
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, PushFailsWhenFull) {
  RingBuffer<int, 2> ring;
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push(3));
  EXPECT_EQ(*ring.pop(), 1);  // contents unchanged by the failed push
}

TEST(RingBuffer, PushOverwriteEvictsOldest) {
  RingBuffer<int, 2> ring;
  ring.push_overwrite(1);
  ring.push_overwrite(2);
  ring.push_overwrite(3);
  EXPECT_EQ(*ring.pop(), 2);
  EXPECT_EQ(*ring.pop(), 3);
}

TEST(RingBuffer, WrapsAroundRepeatedly) {
  RingBuffer<int, 3> ring;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.push(cycle * 3 + i));
    for (int i = 0; i < 3; ++i) ASSERT_EQ(*ring.pop(), cycle * 3 + i);
  }
}

TEST(RingBuffer, PeekDoesNotConsume) {
  RingBuffer<int, 2> ring;
  ring.push(7);
  ASSERT_NE(ring.peek(), nullptr);
  EXPECT_EQ(*ring.peek(), 7);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int, 2> ring;
  ring.push(1);
  ring.push(2);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.push(3));
  EXPECT_EQ(*ring.pop(), 3);
}

TEST(RingBuffer, MoveOnlyPayload) {
  RingBuffer<std::unique_ptr<int>, 2> ring;
  ring.push(std::make_unique<int>(5));
  auto out = ring.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 5);
}

}  // namespace
}  // namespace mcs::util
