#include "arch/psci.hpp"

#include <gtest/gtest.h>

namespace mcs::arch::psci {
namespace {

TEST(Psci, FunctionIdsFollowTheSpec) {
  // PSCI 0.2, SMC32 calling convention: 0x8400000x.
  EXPECT_EQ(kPsciVersion, 0x8400'0000u);
  EXPECT_EQ(kCpuSuspend, 0x8400'0001u);
  EXPECT_EQ(kCpuOff, 0x8400'0002u);
  EXPECT_EQ(kCpuOn, 0x8400'0003u);
  EXPECT_EQ(kAffinityInfo, 0x8400'0004u);
  EXPECT_EQ(kSystemOff, 0x8400'0008u);
  EXPECT_EQ(kSystemReset, 0x8400'0009u);
}

TEST(Psci, ReturnCodesAreNegativePerSpec) {
  EXPECT_EQ(static_cast<std::int32_t>(Result::Success), 0);
  EXPECT_EQ(static_cast<std::int32_t>(Result::NotSupported), -1);
  EXPECT_EQ(static_cast<std::int32_t>(Result::InvalidParameters), -2);
  EXPECT_EQ(static_cast<std::int32_t>(Result::AlreadyOn), -4);
}

TEST(Psci, ResultNames) {
  EXPECT_EQ(result_name(Result::Success), "SUCCESS");
  EXPECT_EQ(result_name(Result::AlreadyOn), "ALREADY_ON");
  EXPECT_EQ(result_name(Result::Denied), "DENIED");
}

TEST(Psci, AffinityStates) {
  EXPECT_EQ(static_cast<std::int32_t>(AffinityState::On), 0);
  EXPECT_EQ(static_cast<std::int32_t>(AffinityState::Off), 1);
  EXPECT_EQ(static_cast<std::int32_t>(AffinityState::OnPending), 2);
}

}  // namespace
}  // namespace mcs::arch::psci
