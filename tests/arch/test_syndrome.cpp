#include "arch/syndrome.hpp"

#include <gtest/gtest.h>

#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace mcs::arch {
namespace {

TEST(Syndrome, MakeEncodesClassAndIss) {
  const Syndrome hsr = Syndrome::make(ExceptionClass::Hvc, 0x1234);
  EXPECT_EQ(hsr.ec(), ExceptionClass::Hvc);
  EXPECT_EQ(hsr.iss(), 0x1234u);
}

TEST(Syndrome, DataAbortClassIs0x24) {
  // The §III error code: data abort from a lower exception level.
  const Syndrome hsr = Syndrome::make(ExceptionClass::DataAbortLower, 0);
  EXPECT_EQ(hsr.ec_bits(), 0x24);
}

TEST(Syndrome, IssValidAndWriteBitsDecode) {
  std::uint32_t iss = 0;
  iss = util::set_bit(iss, kIssIsvBit);
  iss = util::set_bit(iss, kIssWnrBit);
  const Syndrome hsr = Syndrome::make(ExceptionClass::DataAbortLower, iss);
  EXPECT_TRUE(hsr.data_abort_syndrome_valid());
  EXPECT_TRUE(hsr.data_abort_is_write());
  const Syndrome read_abort = Syndrome::make(
      ExceptionClass::DataAbortLower, util::set_bit(0u, kIssIsvBit));
  EXPECT_TRUE(read_abort.data_abort_syndrome_valid());
  EXPECT_FALSE(read_abort.data_abort_is_write());
}

TEST(Syndrome, RawRoundTrip) {
  const Syndrome original = Syndrome::make(ExceptionClass::Smc, 42);
  const Syndrome copy{original.raw()};
  EXPECT_EQ(copy, original);
}

TEST(Syndrome, ArchitectedClassRecognition) {
  EXPECT_TRUE(is_architected_class(0x12));  // hvc
  EXPECT_TRUE(is_architected_class(0x24));  // dabt lower
  EXPECT_TRUE(is_architected_class(0x00));  // unknown (still architected)
  EXPECT_FALSE(is_architected_class(0x3F));
  EXPECT_FALSE(is_architected_class(0x2A));
  EXPECT_FALSE(is_architected_class(0x16));
}

TEST(Syndrome, ClassNames) {
  EXPECT_EQ(exception_class_name(ExceptionClass::Hvc), "hvc");
  EXPECT_EQ(exception_class_name(ExceptionClass::DataAbortLower), "dabt-lower");
  EXPECT_EQ(exception_class_name(ExceptionClass::Smc), "smc");
}

// Property: most single-bit flips of the EC field leave the architected
// class set — that is exactly why corrupted syndromes reach the
// "unhandled trap" park path rather than being silently re-decoded.
TEST(SyndromeProperty, EcFlipsMostlyLeaveArchitectedSet) {
  const Syndrome hsr = Syndrome::make(ExceptionClass::DataAbortLower, 0);
  int unhandled = 0;
  for (unsigned bit = kEcLo; bit <= kEcHi; ++bit) {
    const Syndrome corrupted{util::flip_bit(hsr.raw(), bit)};
    EXPECT_NE(corrupted.ec_bits(), hsr.ec_bits());
    if (!is_architected_class(corrupted.ec_bits())) ++unhandled;
  }
  EXPECT_GE(unhandled, 3);  // the majority of the 6 EC bits
}

// Property: flips outside the EC field never change the exception class.
class IssFlipSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(IssFlipSweep, IssFlipKeepsClass) {
  const Syndrome hsr = Syndrome::make(ExceptionClass::Hvc, 0xABCD);
  const Syndrome corrupted{util::flip_bit(hsr.raw(), GetParam())};
  EXPECT_EQ(corrupted.ec(), hsr.ec());
  EXPECT_NE(corrupted.iss(), hsr.iss());
}

INSTANTIATE_TEST_SUITE_P(IssBits, IssFlipSweep,
                         ::testing::Values(0u, 3u, 7u, 12u, 18u, 24u));

}  // namespace
}  // namespace mcs::arch
