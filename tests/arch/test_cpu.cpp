#include "arch/cpu.hpp"

#include <gtest/gtest.h>

namespace mcs::arch {
namespace {

TEST(Cpu, StartsOff) {
  Cpu cpu(0);
  EXPECT_EQ(cpu.power_state(), PowerState::Off);
  EXPECT_FALSE(cpu.is_online());
  EXPECT_FALSE(cpu.is_parked());
}

TEST(Cpu, PowerOnThenCompleteBoot) {
  Cpu cpu(1);
  ASSERT_TRUE(cpu.power_on(0x7800'0000).is_ok());
  EXPECT_EQ(cpu.power_state(), PowerState::Booting);
  ASSERT_TRUE(cpu.complete_boot().is_ok());
  EXPECT_TRUE(cpu.is_online());
  EXPECT_EQ(cpu.regs().get(Reg::PC), 0x7800'0000u);
}

TEST(Cpu, PowerOnWhileOnIsBusy) {
  Cpu cpu(0);
  ASSERT_TRUE(cpu.power_on(0x1000).is_ok());
  ASSERT_TRUE(cpu.complete_boot().is_ok());
  EXPECT_EQ(cpu.power_on(0x2000).code(), util::Code::EBusy);
}

TEST(Cpu, ParkedCpuRefusesPowerOn) {
  Cpu cpu(0);
  cpu.park("unhandled trap exception class 0x24");
  EXPECT_TRUE(cpu.is_parked());
  EXPECT_EQ(cpu.power_on(0x1000).code(), util::Code::EBusy);
  EXPECT_EQ(cpu.halt_reason(), "unhandled trap exception class 0x24");
}

TEST(Cpu, PowerOffClearsParkAllowingRestart) {
  // §III: "only destroying the cell and reallocating it fixes the problem"
  // — destroy powers the core off, after which it can boot again.
  Cpu cpu(1);
  cpu.park("stuck");
  cpu.power_off();
  EXPECT_EQ(cpu.power_state(), PowerState::Off);
  EXPECT_TRUE(cpu.power_on(0x3000).is_ok());
}

TEST(Cpu, FailBootModelsHotPlugFailure) {
  Cpu cpu(1);
  ASSERT_TRUE(cpu.power_on(0x1000).is_ok());
  cpu.fail_boot("entry gate not executable");
  EXPECT_EQ(cpu.power_state(), PowerState::Failed);
  EXPECT_FALSE(cpu.is_online());
  // A failed core can be retried (PSCI CPU_ON from Off/Failed).
  EXPECT_TRUE(cpu.power_on(0x1000).is_ok());
}

TEST(Cpu, CompleteBootRequiresBringUp) {
  Cpu cpu(0);
  EXPECT_FALSE(cpu.complete_boot().is_ok());
}

TEST(Cpu, ResetClearsEverything) {
  Cpu cpu(0);
  (void)cpu.power_on(0x1000);
  (void)cpu.complete_boot();
  cpu.regs().set(Reg::R5, 99);
  cpu.reset();
  EXPECT_EQ(cpu.power_state(), PowerState::Off);
  EXPECT_EQ(cpu.regs().get(Reg::R5), 0u);
  EXPECT_EQ(cpu.cpsr().mode(), Mode::Supervisor);
}

TEST(Cpu, HypStacksArePerCoreAndDisjoint) {
  Cpu cpu0(0);
  Cpu cpu1(1);
  EXPECT_LT(cpu0.hyp_stack_base(), cpu0.hyp_stack_top());
  EXPECT_LE(cpu0.hyp_stack_top(), cpu1.hyp_stack_base());
  EXPECT_NE(cpu0.expected_percpu(), cpu1.expected_percpu());
}

TEST(Cpu, ExpectedEntryValuesLieInTheirWindows) {
  Cpu cpu(1);
  EXPECT_GE(cpu.expected_trap_context(), cpu.hyp_stack_base());
  EXPECT_LT(cpu.expected_trap_context(), cpu.hyp_stack_top());
  EXPECT_GE(cpu.expected_hyp_sp(), cpu.hyp_stack_base());
  EXPECT_LT(cpu.expected_hyp_sp(), cpu.hyp_stack_top());
}

TEST(Cpu, MakeTrapFrameMaterialisesWorkingSet) {
  Cpu cpu(1);
  cpu.regs().set(Reg::R7, 0x77);  // guest register, must be preserved
  const Syndrome hsr = Syndrome::make(ExceptionClass::Hvc, 0);
  const EntryFrame frame = cpu.make_trap_frame(hsr);
  EXPECT_EQ(frame.cpu, 1);
  EXPECT_EQ(frame.bank[Reg::R0], cpu.expected_trap_context());
  EXPECT_EQ(frame.bank[Reg::R1], hsr.raw());
  EXPECT_EQ(frame.bank[Reg::R12], cpu.expected_percpu());
  EXPECT_EQ(frame.bank[Reg::SP], cpu.expected_hyp_sp());
  EXPECT_EQ(frame.bank[Reg::LR], kReturnTrampoline);
  EXPECT_EQ(frame.bank[Reg::PC], kTrapHandlerPc);
  EXPECT_EQ(frame.bank[Reg::R7], 0x77u);  // dead registers carry guest state
}

TEST(Cpu, PowerStateNames) {
  EXPECT_EQ(power_state_name(PowerState::Off), "off");
  EXPECT_EQ(power_state_name(PowerState::Parked), "parked");
  EXPECT_EQ(power_state_name(PowerState::Failed), "failed");
}

TEST(Cpu, EntryCountersStartAtZero) {
  Cpu cpu(0);
  EXPECT_EQ(cpu.trap_entries, 0u);
  EXPECT_EQ(cpu.hvc_entries, 0u);
  EXPECT_EQ(cpu.irq_entries, 0u);
}

}  // namespace
}  // namespace mcs::arch
