#include "arch/registers.hpp"

#include <gtest/gtest.h>

namespace mcs::arch {
namespace {

TEST(RegisterBank, DefaultsToZero) {
  RegisterBank bank;
  for (std::size_t i = 0; i < kNumGeneralRegs; ++i) {
    EXPECT_EQ(bank.get(static_cast<Reg>(i)), 0u);
  }
}

TEST(RegisterBank, SetGetRoundTrip) {
  RegisterBank bank;
  bank.set(Reg::R3, 0xCAFEBABE);
  EXPECT_EQ(bank.get(Reg::R3), 0xCAFEBABEu);
  EXPECT_EQ(bank[Reg::R3], 0xCAFEBABEu);
}

TEST(RegisterBank, IndexOperatorIsWritable) {
  RegisterBank bank;
  bank[Reg::SP] = 0x1000;
  EXPECT_EQ(bank.get(Reg::SP), 0x1000u);
}

TEST(RegisterBank, ArchitecturalAliases) {
  EXPECT_EQ(static_cast<int>(Reg::SP), 13);
  EXPECT_EQ(static_cast<int>(Reg::LR), 14);
  EXPECT_EQ(static_cast<int>(Reg::PC), 15);
}

TEST(RegisterBank, RegNames) {
  EXPECT_EQ(reg_name(Reg::R0), "r0");
  EXPECT_EQ(reg_name(Reg::R12), "r12");
  EXPECT_EQ(reg_name(Reg::SP), "sp");
  EXPECT_EQ(reg_name(Reg::LR), "lr");
  EXPECT_EQ(reg_name(Reg::PC), "pc");
}

TEST(RegisterBank, CopyIsValueSemantics) {
  RegisterBank a;
  a.set(Reg::R1, 7);
  RegisterBank b = a;
  b.set(Reg::R1, 9);
  EXPECT_EQ(a.get(Reg::R1), 7u);
  EXPECT_EQ(b.get(Reg::R1), 9u);
}

}  // namespace
}  // namespace mcs::arch
