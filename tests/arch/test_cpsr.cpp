#include "arch/cpsr.hpp"

#include <gtest/gtest.h>

namespace mcs::arch {
namespace {

TEST(Cpsr, DefaultModeIsSupervisor) {
  Cpsr cpsr;
  EXPECT_EQ(cpsr.mode(), Mode::Supervisor);
}

TEST(Cpsr, SetModeRoundTrip) {
  Cpsr cpsr;
  cpsr.set_mode(Mode::Hyp);
  EXPECT_EQ(cpsr.mode(), Mode::Hyp);
  EXPECT_EQ(cpsr.mode_bits(), 0b11010);
}

TEST(Cpsr, ModeLivesInLowFiveBits) {
  Cpsr cpsr(0xFFFF'FFE0);  // upper bits set, mode bits zero
  cpsr.set_mode(Mode::User);
  EXPECT_EQ(cpsr.raw() & ~0x1Fu, 0xFFFF'FFE0u);
}

TEST(Cpsr, IrqFiqMasks) {
  Cpsr cpsr;
  EXPECT_FALSE(cpsr.irq_masked());
  cpsr.set_irq_masked(true);
  EXPECT_TRUE(cpsr.irq_masked());
  cpsr.set_fiq_masked(true);
  EXPECT_TRUE(cpsr.fiq_masked());
  cpsr.set_irq_masked(false);
  EXPECT_FALSE(cpsr.irq_masked());
  EXPECT_TRUE(cpsr.fiq_masked());  // independent bits
}

TEST(Cpsr, ConditionFlagsDecodeFromRaw) {
  Cpsr cpsr(0xF000'0000);
  EXPECT_TRUE(cpsr.n());
  EXPECT_TRUE(cpsr.z());
  EXPECT_TRUE(cpsr.c());
  EXPECT_TRUE(cpsr.v());
  EXPECT_FALSE(Cpsr(0).n());
}

TEST(Cpsr, ValidModeRecognition) {
  EXPECT_TRUE(is_valid_mode(0b10000));  // usr
  EXPECT_TRUE(is_valid_mode(0b11010));  // hyp
  EXPECT_TRUE(is_valid_mode(0b11111));  // sys
  EXPECT_FALSE(is_valid_mode(0b00000));
  EXPECT_FALSE(is_valid_mode(0b11000));
  EXPECT_FALSE(is_valid_mode(0b10100));
}

TEST(Cpsr, ModeNames) {
  EXPECT_EQ(mode_name(Mode::Hyp), "hyp");
  EXPECT_EQ(mode_name(Mode::User), "usr");
  EXPECT_EQ(mode_name(Mode::Supervisor), "svc");
}

// Property: a random bit flip in the mode field produces either another
// valid mode or an invalid encoding — never silently the same mode.
class CpsrModeFlip : public ::testing::TestWithParam<unsigned> {};

TEST_P(CpsrModeFlip, FlipChangesEncoding) {
  Cpsr cpsr;
  cpsr.set_mode(Mode::Supervisor);
  const std::uint8_t before = cpsr.mode_bits();
  Cpsr corrupted(util::flip_bit(cpsr.raw(), GetParam()));
  EXPECT_NE(corrupted.mode_bits(), before);
}

INSTANTIATE_TEST_SUITE_P(ModeBits, CpsrModeFlip, ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace mcs::arch
