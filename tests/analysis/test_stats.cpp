#include "analysis/stats.hpp"

#include <gtest/gtest.h>

namespace mcs::analysis {
namespace {

TEST(Wilson, ZeroTrialsYieldsZeros) {
  const Proportion p = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(p.estimate, 0.0);
  EXPECT_DOUBLE_EQ(p.lower, 0.0);
  EXPECT_DOUBLE_EQ(p.upper, 0.0);
}

TEST(Wilson, PointEstimateIsKOverN) {
  const Proportion p = wilson_interval(30, 100);
  EXPECT_DOUBLE_EQ(p.estimate, 0.3);
}

TEST(Wilson, IntervalBracketsEstimate) {
  const Proportion p = wilson_interval(30, 100);
  EXPECT_LT(p.lower, p.estimate);
  EXPECT_GT(p.upper, p.estimate);
  EXPECT_GE(p.lower, 0.0);
  EXPECT_LE(p.upper, 1.0);
}

TEST(Wilson, ZeroSuccessesHasPositiveUpperBound) {
  // The rule-of-three flavour: never claim certainty from absence.
  const Proportion p = wilson_interval(0, 30);
  EXPECT_DOUBLE_EQ(p.estimate, 0.0);
  EXPECT_DOUBLE_EQ(p.lower, 0.0);
  EXPECT_GT(p.upper, 0.05);
  EXPECT_LT(p.upper, 0.20);
}

TEST(Wilson, AllSuccessesHasLowerBoundBelowOne) {
  const Proportion p = wilson_interval(30, 30);
  EXPECT_DOUBLE_EQ(p.estimate, 1.0);
  EXPECT_LT(p.lower, 1.0);
  EXPECT_GT(p.lower, 0.8);
  EXPECT_DOUBLE_EQ(p.upper, 1.0);
}

TEST(Wilson, IntervalNarrowsWithSampleSize) {
  const Proportion small = wilson_interval(3, 10);
  const Proportion large = wilson_interval(300, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(Wilson, HigherZWidensInterval) {
  const Proportion p95 = wilson_interval(20, 100, 1.96);
  const Proportion p99 = wilson_interval(20, 100, 2.58);
  EXPECT_LT(p95.upper - p95.lower, p99.upper - p99.lower);
}

TEST(Summary, EmptyIsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, SingleValue) {
  const Summary s = summarize({5.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summary, KnownSample) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summary, MedianOddCount) {
  const Summary s = summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(Summary, UnsortedInputHandled) {
  const Summary s = summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

}  // namespace
}  // namespace mcs::analysis
