#include "analysis/report.hpp"

#include <gtest/gtest.h>

namespace mcs::analysis {
namespace {

fi::CampaignResult synthetic_result() {
  fi::CampaignResult result;
  result.plan = fi::paper_medium_trap_plan();
  const auto add = [&result](fi::Outcome outcome, int n) {
    for (int i = 0; i < n; ++i) {
      fi::RunResult run;
      run.outcome = outcome;
      run.injections = 1;
      run.first_injection_tick = 100;
      if (outcome != fi::Outcome::Correct) {
        run.failure_tick = 100 + static_cast<std::uint64_t>(i);
        run.detail = "synthetic failure";
      }
      result.runs.push_back(run);
    }
  };
  add(fi::Outcome::Correct, 13);
  add(fi::Outcome::PanicPark, 6);
  add(fi::Outcome::CpuPark, 1);
  return result;
}

TEST(Report, ChartContainsTitleRunsAndClasses) {
  const std::string chart =
      render_distribution_chart(synthetic_result(), "Figure 3");
  EXPECT_NE(chart.find("Figure 3"), std::string::npos);
  EXPECT_NE(chart.find("runs: 20"), std::string::npos);
  EXPECT_NE(chart.find("correct"), std::string::npos);
  EXPECT_NE(chart.find("panic-park"), std::string::npos);
  EXPECT_NE(chart.find("cpu-park"), std::string::npos);
  EXPECT_NE(chart.find("65.0%"), std::string::npos);
  EXPECT_NE(chart.find("30.0%"), std::string::npos);
}

TEST(Report, ChartOmitsEmptyClasses) {
  const std::string chart =
      render_distribution_chart(synthetic_result(), "Figure 3");
  EXPECT_EQ(chart.find("silent-hang"), std::string::npos);
  EXPECT_EQ(chart.find("inconsistent-cell"), std::string::npos);
}

TEST(Report, TableListsOccurringClassesWithCiAndSkipsZeroRows) {
  const std::string table = render_distribution_table(synthetic_result());
  EXPECT_NE(table.find("outcome"), std::string::npos);
  EXPECT_NE(table.find("95% Wilson CI"), std::string::npos);
  EXPECT_NE(table.find("correct"), std::string::npos);
  EXPECT_NE(table.find("panic-park"), std::string::npos);
  EXPECT_NE(table.find("cpu-park"), std::string::npos);
  // Zero-count classes are skipped, like the chart, so sparse
  // multi-scenario comparisons stay readable.
  EXPECT_EQ(table.find("silent-hang"), std::string::npos);
  EXPECT_EQ(table.find("inconsistent-cell"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_NE(table.find("20"), std::string::npos);
}

TEST(Report, RunLogHasOneLinePerRun) {
  const std::string log = render_run_log(synthetic_result());
  std::size_t lines = 0;
  for (const char c : log) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 20u);
  EXPECT_NE(log.find("run 0"), std::string::npos);
  EXPECT_NE(log.find("run 19"), std::string::npos);
}

TEST(Report, LatencySummaryCountsDetectedFailures) {
  const std::string summary = render_latency_summary(synthetic_result());
  EXPECT_NE(summary.find("n=7"), std::string::npos);  // 6 panic + 1 park
  EXPECT_NE(summary.find("detection latency"), std::string::npos);
}

TEST(Report, EmptyCampaignDoesNotCrash) {
  fi::CampaignResult empty;
  empty.plan = fi::paper_medium_trap_plan();
  EXPECT_FALSE(render_distribution_chart(empty, "t").empty());
  const std::string table = render_distribution_table(empty);
  EXPECT_FALSE(table.empty());
  // No per-class rows (they would all be zero) — an explicit marker plus
  // the zero total instead.
  EXPECT_NE(table.find("(no runs)"), std::string::npos);
  EXPECT_EQ(table.find("correct"), std::string::npos);
  EXPECT_TRUE(render_run_log(empty).empty());
  EXPECT_FALSE(render_latency_summary(empty).empty());
}

TEST(Report, ComparisonReportTabulatesCellsSideBySide) {
  CampaignAggregate left;
  CampaignAggregate right;
  const auto add = [](CampaignAggregate& aggregate, fi::Outcome outcome,
                      int n) {
    for (int i = 0; i < n; ++i) {
      fi::RunResult run;
      run.outcome = outcome;
      run.injections = 2;
      if (fi::is_cell_failure(outcome)) run.shutdown_reclaimed = true;
      aggregate.add(run);
    }
  };
  add(left, fi::Outcome::Correct, 9);
  add(left, fi::Outcome::PanicPark, 3);
  add(right, fi::Outcome::Correct, 4);
  add(right, fi::Outcome::CpuPark, 8);

  const std::string report = render_comparison_report(
      {{"medium_r100", left}, {"high_r50", right}}, "Sweep comparison");
  EXPECT_NE(report.find("Sweep comparison"), std::string::npos);
  EXPECT_NE(report.find("medium_r100"), std::string::npos);
  EXPECT_NE(report.find("high_r50"), std::string::npos);
  // Rows for classes that occurred in ANY cell; none for classes in none.
  EXPECT_NE(report.find("correct"), std::string::npos);
  EXPECT_NE(report.find("panic-park"), std::string::npos);
  EXPECT_NE(report.find("cpu-park"), std::string::npos);
  EXPECT_EQ(report.find("silent-hang"), std::string::npos);
  // Footer: totals per cell, cell failures, reclaims.
  EXPECT_NE(report.find("runs"), std::string::npos);
  EXPECT_NE(report.find("injections"), std::string::npos);
  EXPECT_NE(report.find("cell failures"), std::string::npos);
  EXPECT_NE(report.find("shutdown reclaimed"), std::string::npos);

  // Deterministic bytes: the resume path diffs reports, so rendering must
  // be a pure function of the aggregates.
  EXPECT_EQ(report, render_comparison_report(
                        {{"medium_r100", left}, {"high_r50", right}},
                        "Sweep comparison"));
}

TEST(Report, ComparisonReportHandlesNoCells) {
  const std::string report = render_comparison_report({}, "empty");
  EXPECT_NE(report.find("empty"), std::string::npos);
  EXPECT_NE(report.find("(no cells)"), std::string::npos);
}

}  // namespace
}  // namespace mcs::analysis
