#include "analysis/log_sink.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/log_parser.hpp"
#include "analysis/stats.hpp"
#include "core/executor.hpp"

namespace mcs::analysis {
namespace {

fi::RunResult make_run(fi::Outcome outcome, std::uint64_t injections) {
  fi::RunResult run;
  run.outcome = outcome;
  run.detail = "test";
  run.injections = injections;
  return run;
}

TEST(RunningStats, MatchesBatchSummary) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats stats;
  for (const double v : values) stats.add(v);
  const Summary summary = summarize(values);
  EXPECT_EQ(stats.n(), summary.n);
  EXPECT_NEAR(stats.mean(), summary.mean, 1e-12);
  EXPECT_NEAR(stats.stddev(), summary.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), summary.min);
  EXPECT_DOUBLE_EQ(stats.max(), summary.max);
}

TEST(RunningStats, MergeEqualsSerialAccumulation) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 40; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0 + 5.0;
    whole.add(x);
    (i < 13 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.n(), whole.n());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySidesIsIdentity) {
  RunningStats empty;
  RunningStats some;
  some.add(2.0);
  some.add(4.0);
  RunningStats target = some;
  target.merge(empty);
  EXPECT_EQ(target.n(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 3.0);
  RunningStats from_empty;
  from_empty.merge(some);
  EXPECT_EQ(from_empty.n(), 2u);
  EXPECT_DOUBLE_EQ(from_empty.max(), 4.0);
}

TEST(CampaignAggregate, TracksRecoveryAndInjections) {
  CampaignAggregate aggregate;
  fi::RunResult park = make_run(fi::Outcome::CpuPark, 3);
  park.shutdown_reclaimed = true;
  aggregate.add(park);
  aggregate.add(make_run(fi::Outcome::Correct, 2));
  fi::RunResult inconsistent = make_run(fi::Outcome::InconsistentCell, 4);
  aggregate.add(inconsistent);
  EXPECT_EQ(aggregate.injections, 9u);
  EXPECT_EQ(aggregate.cell_failures, 2u);
  EXPECT_EQ(aggregate.reclaimed, 1u);
  EXPECT_EQ(aggregate.distribution.total(), 3u);
}

TEST(CampaignAggregate, CrossCellCorruptionCountsAsCellFailure) {
  // The executor runs the shutdown-reclaim probe for cross-cell-corruption
  // runs, so the aggregate must bucket them with the other cell failures
  // — otherwise reclaimed can never account for them.
  EXPECT_TRUE(fi::is_cell_failure(fi::Outcome::CrossCellCorruption));
  CampaignAggregate aggregate;
  fi::RunResult corrupted =
      make_run(fi::Outcome::CrossCellCorruption, 2);
  corrupted.shutdown_reclaimed = true;
  aggregate.add(corrupted);
  aggregate.add(make_run(fi::Outcome::PanicPark, 1));  // not a cell failure
  EXPECT_EQ(aggregate.cell_failures, 1u);
  EXPECT_EQ(aggregate.reclaimed, 1u);
}

TEST(CampaignAggregate, ShardsMergeToTheCampaignTotal) {
  CampaignAggregate a;
  CampaignAggregate b;
  CampaignAggregate whole;
  for (int i = 0; i < 10; ++i) {
    fi::RunResult run = make_run(
        i % 3 == 0 ? fi::Outcome::PanicPark : fi::Outcome::Correct,
        static_cast<std::uint64_t>(i));
    run.first_injection_tick = 10;
    run.failure_tick = run.outcome == fi::Outcome::PanicPark ? 12 + i : 0;
    whole.add(run);
    (i % 2 == 0 ? a : b).add(run);
  }
  a.merge(b);
  EXPECT_EQ(a.distribution.total(), whole.distribution.total());
  EXPECT_EQ(a.distribution.count(fi::Outcome::PanicPark),
            whole.distribution.count(fi::Outcome::PanicPark));
  EXPECT_EQ(a.injections, whole.injections);
  EXPECT_EQ(a.detection_latency.n(), whole.detection_latency.n());
  EXPECT_NEAR(a.detection_latency.mean(), whole.detection_latency.mean(), 1e-9);
}

TEST(LogSink, RestoresRunOrderFromOutOfOrderCompletions) {
  std::ostringstream stream;
  LogSink sink(stream);      // streaming: lines go to the stream only
  LogSink retaining;         // retaining: lines accumulate for text()
  const auto feed = [&](std::uint32_t index, const fi::RunResult& run) {
    sink.record(index, run);
    retaining.record(index, run);
  };
  feed(2, make_run(fi::Outcome::Correct, 1));
  EXPECT_EQ(stream.str(), "");  // nothing contiguous yet
  feed(0, make_run(fi::Outcome::PanicPark, 2));
  feed(3, make_run(fi::Outcome::Correct, 1));
  feed(1, make_run(fi::Outcome::CpuPark, 5));

  // Both sinks restore run order; the streaming one retains nothing.
  EXPECT_EQ(stream.str(), retaining.text());
  EXPECT_EQ(sink.text(), "");
  const std::string text = retaining.text();
  const std::vector<std::string> expected_order = {
      "run 0: panic-park", "run 1: cpu-park", "run 2: correct",
      "run 3: correct"};
  std::size_t at = 0;
  for (const std::string& prefix : expected_order) {
    const std::size_t found = text.find(prefix, at);
    ASSERT_NE(found, std::string::npos) << prefix;
    at = found + prefix.size();
  }
  EXPECT_EQ(sink.records(), 4u);
  EXPECT_EQ(sink.aggregate().distribution.total(), 4u);
}

TEST(LogSink, DuplicateAndAlreadyReleasedIndicesAreDropped) {
  LogSink sink;
  sink.record(0, make_run(fi::Outcome::Correct, 1));   // released
  sink.record(2, make_run(fi::Outcome::CpuPark, 3));   // pending
  const std::string text_before = sink.text();

  // A replayed pending index, a replayed released index, and an index
  // below the release horizon must all drop without touching the
  // aggregate, the text, or the pending backlog.
  sink.record(2, make_run(fi::Outcome::PanicPark, 9));
  sink.record(0, make_run(fi::Outcome::PanicPark, 9));
  EXPECT_EQ(sink.duplicates(), 2u);
  EXPECT_EQ(sink.text(), text_before);

  // Index 1 still releases the backlog: nothing parked forever.
  sink.record(1, make_run(fi::Outcome::Correct, 1));
  EXPECT_EQ(sink.records(), 3u);
  const CampaignAggregate aggregate = sink.aggregate();
  EXPECT_EQ(aggregate.distribution.total(), 3u);
  EXPECT_EQ(aggregate.distribution.count(fi::Outcome::PanicPark), 0u);
  EXPECT_EQ(aggregate.injections, 5u);
  EXPECT_NE(sink.text().find("run 2: cpu-park"), std::string::npos);
}

TEST(LogSink, AggregateIsIdenticalForAnyCompletionOrder) {
  // Two completion orders of the same runs: the folded aggregate —
  // including its floating-point latency accumulation — must match
  // exactly, because folding happens at release (run order), not at
  // record (completion order).
  std::vector<fi::RunResult> runs;
  for (int i = 0; i < 7; ++i) {
    fi::RunResult run = make_run(
        i % 2 == 0 ? fi::Outcome::PanicPark : fi::Outcome::Correct,
        static_cast<std::uint64_t>(i));
    run.first_injection_tick = 5;
    run.failure_tick = run.outcome == fi::Outcome::PanicPark
                           ? 7 + static_cast<std::uint64_t>(i * i)
                           : 0;
    runs.push_back(run);
  }
  LogSink in_order;
  LogSink scrambled;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    in_order.record(static_cast<std::uint32_t>(i), runs[i]);
  }
  for (const std::size_t i : {3u, 0u, 6u, 2u, 5u, 1u, 4u}) {
    scrambled.record(static_cast<std::uint32_t>(i), runs[i]);
  }
  const CampaignAggregate a = in_order.aggregate();
  const CampaignAggregate b = scrambled.aggregate();
  EXPECT_EQ(a.distribution.total(), b.distribution.total());
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.detection_latency.n(), b.detection_latency.n());
  EXPECT_EQ(a.detection_latency.mean(), b.detection_latency.mean());
  EXPECT_EQ(a.detection_latency.stddev(), b.detection_latency.stddev());
  EXPECT_EQ(in_order.text(), scrambled.text());
}

TEST(LogSink, TextMatchesSerialRenderOfShardedCampaign) {
  fi::TestPlan plan = fi::paper_medium_trap_plan();
  plan.runs = 8;
  plan.duration_ticks = 1'500;
  plan.phase = 2;

  fi::CampaignExecutor executor(plan, {4, true});
  LogSink sink;
  executor.set_progress([&sink](std::uint32_t index, const fi::RunResult& run) {
    sink.record(index, run);
  });
  const fi::CampaignResult result = executor.execute();

  // The sharded sink streams exactly the serial engine's log body.
  LogSink serial;
  serial.record_all(result);
  EXPECT_EQ(sink.text(), serial.text());
}

TEST(LogSink, RoundTripsThroughTheRunLogParser) {
  fi::RunResult run = make_run(fi::Outcome::PanicPark, 7);
  run.detail = "HYP stack pointer corrupted";
  run.uart1_bytes = 123;
  run.first_injection_tick = 10;
  run.failure_tick = 52;
  run.shutdown_reclaimed = false;
  LogSink sink;
  sink.record(0, run);
  sink.record(1, make_run(fi::Outcome::Correct, 2));

  const ParsedRunLog parsed = parse_run_log(sink.text());
  EXPECT_EQ(parsed.malformed_lines, 0u);
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].index, 0u);
  EXPECT_EQ(parsed.entries[0].outcome, fi::Outcome::PanicPark);
  EXPECT_EQ(parsed.entries[0].detail, "HYP stack pointer corrupted");
  EXPECT_EQ(parsed.entries[0].injections, 7u);
  EXPECT_EQ(parsed.entries[0].uart_bytes, 123u);
  EXPECT_EQ(parsed.entries[0].detect_latency_ms, 42u);
  EXPECT_TRUE(parsed.entries[0].failure_detected);
  EXPECT_FALSE(parsed.entries[0].shutdown_reclaimed);
  EXPECT_EQ(parsed.entries[1].outcome, fi::Outcome::Correct);
  // An undetected run carries no latency field: the flag — not a zero
  // value — is what offline latency analytics must key on.
  EXPECT_FALSE(parsed.entries[1].failure_detected);
  EXPECT_EQ(parsed.distribution().count(fi::Outcome::PanicPark), 1u);
}

TEST(RunLogParser, RejectsMalformedLines) {
  fi::Outcome outcome;
  EXPECT_TRUE(fi::outcome_from_name("panic-park", outcome));
  EXPECT_EQ(outcome, fi::Outcome::PanicPark);
  EXPECT_FALSE(fi::outcome_from_name("not-an-outcome", outcome));

  EXPECT_FALSE(parse_run_log_line("garbage").is_ok());
  EXPECT_FALSE(parse_run_log_line("run x: correct — d (injections=1, "
                                  "usart_bytes=2)")
                   .is_ok());
  // A foreign record kind is skipped (counted, not fatal); a line that
  // claims to be a run record but is truncated is malformed — resume
  // tolerates the former and rejects the latter.
  const ParsedRunLog parsed = parse_run_log(
      "nonsense\n\nrun 0: correct — ok (injections=1, usart_bytes=9)\n"
      "run 1: correct — truncated (inject\n");
  EXPECT_EQ(parsed.skipped_lines, 1u);
  EXPECT_EQ(parsed.malformed_lines, 1u);
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].uart_bytes, 9u);
}

}  // namespace
}  // namespace mcs::analysis
