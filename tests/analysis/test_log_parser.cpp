#include "analysis/log_parser.hpp"

#include <gtest/gtest.h>

namespace mcs::analysis {
namespace {

TEST(LogParser, ParsesWellFormedLine) {
  auto record = parse_log_line("[42ms] ERROR hypervisor/cpu1: unhandled trap");
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().timestamp.value, 42u);
  EXPECT_EQ(record.value().severity, util::Severity::Error);
  EXPECT_EQ(record.value().component, "hypervisor");
  EXPECT_EQ(record.value().cpu, 1);
  EXPECT_EQ(record.value().message, "unhandled trap");
}

TEST(LogParser, ParsesLineWithoutCpu) {
  auto record = parse_log_line("[7ms] INFO board: tick");
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().cpu, -1);
  EXPECT_EQ(record.value().component, "board");
}

TEST(LogParser, RejectsMalformedLines) {
  EXPECT_FALSE(parse_log_line("").is_ok());
  EXPECT_FALSE(parse_log_line("no bracket").is_ok());
  EXPECT_FALSE(parse_log_line("[xms] INFO a: b").is_ok());
  EXPECT_FALSE(parse_log_line("[5ms] NOPE a: b").is_ok());
  EXPECT_FALSE(parse_log_line("[5ms] INFO nocolon").is_ok());
}

TEST(LogParser, RoundTripsEventLog) {
  // The paper's pipeline: framework writes the log file, analytics read
  // it back. Round trip must be lossless for the fields analytics use.
  util::EventLog log;
  log.log(util::Ticks{1}, util::Severity::Info, "hypervisor", 0, "enabled");
  log.log(util::Ticks{2}, util::Severity::Error, "hypervisor", 1,
          "unhandled trap exception class 0x24");
  log.log(util::Ticks{3}, util::Severity::Fatal, "hypervisor", -1,
          "HYPERVISOR PANIC: stack corrupted");
  const ParsedLog parsed = parse_log_text(log.to_text());
  ASSERT_EQ(parsed.records.size(), 3u);
  EXPECT_EQ(parsed.malformed_lines, 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.records[i].timestamp.value, log.records()[i].timestamp.value);
    EXPECT_EQ(parsed.records[i].severity, log.records()[i].severity);
    EXPECT_EQ(parsed.records[i].component, log.records()[i].component);
    EXPECT_EQ(parsed.records[i].cpu, log.records()[i].cpu);
    EXPECT_EQ(parsed.records[i].message, log.records()[i].message);
  }
}

TEST(LogParser, CountsMalformedLines) {
  const ParsedLog parsed =
      parse_log_text("[1ms] INFO a: ok\ngarbage\n[2ms] WARN b: fine\n");
  EXPECT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.malformed_lines, 1u);
}

TEST(LogParser, SkipsBlankLines) {
  const ParsedLog parsed = parse_log_text("\n\n[1ms] INFO a: x\n\n");
  EXPECT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.malformed_lines, 0u);
}

TEST(LogParser, SelectFiltersComponentAndSeverity) {
  const ParsedLog parsed = parse_log_text(
      "[1ms] INFO hypervisor: a\n"
      "[2ms] ERROR hypervisor/cpu1: b\n"
      "[3ms] ERROR uart0: c\n"
      "[4ms] FATAL hypervisor: d\n");
  const auto selected = parsed.select("hypervisor", util::Severity::Error);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0]->message, "b");
  EXPECT_EQ(selected[1]->message, "d");
}

TEST(LogParser, FindFirstLocatesNeedle) {
  const ParsedLog parsed = parse_log_text(
      "[1ms] INFO hypervisor: fine\n"
      "[9ms] ERROR hypervisor: unhandled trap exception class 0x24\n");
  const util::LogRecord* record = parsed.find_first("0x24");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->timestamp.value, 9u);
  EXPECT_EQ(parsed.find_first("no such text"), nullptr);
}

}  // namespace
}  // namespace mcs::analysis
