#include "analysis/trace.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace mcs::analysis {
namespace {

fi::CampaignResult small_campaign() {
  fi::TestPlan plan = fi::paper_medium_trap_plan();
  plan.runs = 6;
  plan.duration_ticks = 2'000;
  plan.phase = 2;
  fi::Campaign campaign(plan);
  return campaign.execute();
}

TEST(Trace, RunsCsvHasHeaderAndOneRowPerRun) {
  const fi::CampaignResult result = small_campaign();
  const std::string csv = runs_to_csv(result);
  const auto lines = util::split(csv, '\n');
  // header + 6 rows + trailing empty from final newline
  ASSERT_GE(lines.size(), 8u);
  EXPECT_NE(lines[0].find("run,outcome"), std::string::npos);
  EXPECT_NE(lines[1].find("0,"), std::string::npos);
}

TEST(Trace, RunsCsvRoundTripsDistribution) {
  const fi::CampaignResult result = small_campaign();
  const fi::OutcomeDistribution original = result.distribution();
  const ParsedRunsCsv parsed = parse_runs_csv(runs_to_csv(result));
  EXPECT_EQ(parsed.malformed, 0u);
  EXPECT_EQ(parsed.rows, result.runs.size());
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    EXPECT_EQ(parsed.distribution.count(outcome), original.count(outcome));
  }
}

TEST(Trace, CsvEscapesCommasInDetail) {
  fi::CampaignResult result;
  result.plan = fi::paper_medium_trap_plan();
  fi::RunResult run;
  run.outcome = fi::Outcome::PanicPark;
  run.detail = "a, very \"detailed\" reason";
  result.runs.push_back(run);
  const std::string csv = runs_to_csv(result);
  EXPECT_NE(csv.find("\"a, very \"\"detailed\"\" reason\""), std::string::npos);
  const ParsedRunsCsv parsed = parse_runs_csv(csv);
  EXPECT_EQ(parsed.distribution.count(fi::Outcome::PanicPark), 1u);
}

TEST(Trace, InjectionsCsvListsEveryFlip) {
  std::vector<fi::InjectionRecord> records;
  fi::InjectionRecord record;
  record.tick = 123;
  record.call_index = 100;
  record.point = jh::HookPoint::ArchHandleTrap;
  record.cpu = 1;
  fi::FaultRecord flip;
  flip.reg = arch::Reg::R12;
  flip.bit = 17;
  flip.before = 0x7c020000;
  flip.after = 0x7c000000;
  record.flips.push_back(flip);
  flip.reg = arch::Reg::R3;
  flip.bit = 4;
  flip.before = 0x10;
  flip.after = 0x0;
  record.flips.push_back(flip);
  records.push_back(record);
  const std::string csv = injections_to_csv(records);
  EXPECT_NE(csv.find("123,100,arch_handle_trap,1,r12,17"), std::string::npos);
  EXPECT_NE(csv.find("r3,4,0x10,0x0"), std::string::npos);
}

TEST(Trace, ManifestCapturesPlanAndOutcomes) {
  const fi::CampaignResult result = small_campaign();
  const std::string manifest = campaign_manifest(result);
  EXPECT_NE(manifest.find("plan.name=medium/non-root/arch_handle_trap"),
            std::string::npos);
  EXPECT_NE(manifest.find("plan.rate=100"), std::string::npos);
  EXPECT_NE(manifest.find("plan.target=arch_handle_trap"), std::string::npos);
  EXPECT_NE(manifest.find("result.total_runs=6"), std::string::npos);
  EXPECT_NE(manifest.find("result.outcome.correct="), std::string::npos);
}

TEST(Trace, ParseRejectsGarbageRows) {
  const ParsedRunsCsv parsed = parse_runs_csv(
      "run,outcome\n0,correct\n1,not-an-outcome\nbroken\n");
  EXPECT_EQ(parsed.rows, 1u);
  EXPECT_EQ(parsed.malformed, 2u);
}

}  // namespace
}  // namespace mcs::analysis
