// Differential property suite for the log pipeline's two parser tiers
// and the sharded LogSink.
//
// The zero-copy scanner (scan_run_log) exists for speed; its license to
// exist is equivalence: on ANY input — seeded random logs, truncated
// tails, CRLF endings, foreign record kinds, empty files — it must count
// and fold exactly what the materialising parser (parse_run_log +
// aggregate_from_log) does, bit for bit on the floating-point stats. And
// the sharded sink must stay bit-identical to a sequential one under
// concurrent completion storms, because the sweep's resume/diff
// determinism sits on top of both.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "analysis/log_parser.hpp"
#include "analysis/log_sink.hpp"
#include "core/campaign.hpp"
#include "util/alloc_observer.hpp"
#include "util/line_scanner.hpp"
#include "util/rng.hpp"

namespace mcs::analysis {
namespace {

/// Exact equality, doubles included: the scanner claims bit identity.
void expect_same_aggregate(const CampaignAggregate& a,
                           const CampaignAggregate& b) {
  ASSERT_EQ(a.distribution.total(), b.distribution.total());
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    EXPECT_EQ(a.distribution.count(static_cast<fi::Outcome>(i)),
              b.distribution.count(static_cast<fi::Outcome>(i)));
  }
  EXPECT_EQ(a.injections, b.injections);
  for (std::size_t i = 0; i < fi::kNumFaultDomains; ++i) {
    EXPECT_EQ(a.injections_by_domain[i], b.injections_by_domain[i]) << i;
  }
  EXPECT_EQ(a.cell_failures, b.cell_failures);
  EXPECT_EQ(a.reclaimed, b.reclaimed);
  EXPECT_EQ(a.detection_latency.n(), b.detection_latency.n());
  EXPECT_EQ(a.detection_latency.mean(), b.detection_latency.mean());
  EXPECT_EQ(a.detection_latency.stddev(), b.detection_latency.stddev());
  EXPECT_EQ(a.detection_latency.min(), b.detection_latency.min());
  EXPECT_EQ(a.detection_latency.max(), b.detection_latency.max());
}

fi::RunResult random_run(util::SplitMix64& rng) {
  static constexpr const char* kDetails[] = {
      "ok",
      "HYP stack pointer corrupted",
      "park (code 0x24)",
      "doorbell lost — ring stalled",  // an em dash INSIDE the detail
      "invalid arguments (0x16)",
  };
  fi::RunResult run;
  run.outcome = static_cast<fi::Outcome>(rng.next() % fi::kNumOutcomes);
  run.detail = kDetails[rng.next() % 5];
  run.fault_domain =
      static_cast<fi::FaultDomain>(rng.next() % fi::kNumFaultDomains);
  run.injections = rng.next() % 1'000;
  run.uart1_bytes = rng.next() % 100'000;
  if (rng.next() % 2 == 0) {
    run.first_injection_tick = 1 + rng.next() % 100;
    run.failure_tick = run.first_injection_tick + rng.next() % 5'000;
  }
  run.shutdown_reclaimed = rng.next() % 2 == 0;
  return run;
}

/// A seeded random log: well-formed run lines interleaved with foreign
/// record kinds, comments, blanks, CRLF endings, malformed run lines and
/// (sometimes) a truncated tail — everything a real logdir can contain.
std::string random_log(std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::string text;
  std::uint32_t index = 0;
  const std::size_t lines = 20 + rng.next() % 60;
  for (std::size_t i = 0; i < lines; ++i) {
    switch (rng.next() % 10) {
      case 0:
        text += "# resumed by worker w42\n";
        break;
      case 1:
        text += "running total: 5 cells\n";  // "run" prefix without "run "
        break;
      case 2:
        text += "\n";
        break;
      case 3:
        // A run line that lies about its shape: truncated mid-field.
        text += "run " + std::to_string(index) +
                ": correct — truncated (injec\n";
        break;
      default: {
        std::string line = fi::run_log_line(index++, random_run(rng));
        if (rng.next() % 4 == 0) line += '\r';  // CRLF log
        text += line;
        text += '\n';
        break;
      }
    }
  }
  if (rng.next() % 3 == 0 && text.size() > 10) {
    // Interrupted writer: the final line stops mid-byte, no newline.
    text += "run " + std::to_string(index) + ": cpu-park — park (inj";
  }
  return text;
}

TEST(LogPipeDifferential, ScannerMatchesParserOnSeededRandomLogs) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string text = random_log(seed);

    const ParsedRunLog parsed = parse_run_log(text);
    const RunLogScan scan = scan_run_log(text);

    EXPECT_EQ(scan.entries, parsed.entries.size());
    EXPECT_EQ(scan.malformed_lines, parsed.malformed_lines);
    EXPECT_EQ(scan.skipped_lines, parsed.skipped_lines);
    expect_same_aggregate(scan.aggregate, aggregate_from_log(parsed));

    bool sequential = true;
    for (std::size_t i = 0; i < parsed.entries.size(); ++i) {
      if (parsed.entries[i].index != i) sequential = false;
    }
    EXPECT_EQ(scan.indices_sequential, sequential);
  }
}

TEST(LogPipeDifferential, ViewParseMatchesMaterialisingParsePerLine) {
  const std::string text = random_log(0xD1FFu);
  util::for_each_line(text, [](std::string_view line) {
    const auto view = parse_run_log_line_view(line);
    const auto owned = parse_run_log_line(line);
    ASSERT_EQ(view.is_ok(), owned.is_ok()) << line;
    if (!view.is_ok()) return;
    EXPECT_EQ(view.value().index, owned.value().index);
    EXPECT_EQ(view.value().outcome, owned.value().outcome);
    EXPECT_EQ(view.value().detail, owned.value().detail);
    EXPECT_EQ(view.value().domain, owned.value().domain);
    EXPECT_EQ(view.value().injections, owned.value().injections);
    EXPECT_EQ(view.value().uart_bytes, owned.value().uart_bytes);
    EXPECT_EQ(view.value().failure_detected, owned.value().failure_detected);
    EXPECT_EQ(view.value().detect_latency_ms, owned.value().detect_latency_ms);
    EXPECT_EQ(view.value().shutdown_reclaimed,
              owned.value().shutdown_reclaimed);
  });
}

TEST(LogPipeDifferential, EmptyAndForeignOnlyInputsAgree) {
  for (const std::string_view text :
       {std::string_view{}, std::string_view{"\n\n\n"},
        std::string_view{"# nothing here\npool: 3 built\n"}}) {
    const ParsedRunLog parsed = parse_run_log(text);
    const RunLogScan scan = scan_run_log(text);
    EXPECT_EQ(scan.entries, 0u);
    EXPECT_EQ(parsed.entries.size(), 0u);
    EXPECT_EQ(scan.skipped_lines, parsed.skipped_lines);
    EXPECT_EQ(scan.malformed_lines, 0u);
    EXPECT_TRUE(scan.indices_sequential);
  }
}

TEST(LogPipeStress, ConcurrentSinkIsBitIdenticalToSequential) {
  constexpr std::uint32_t kRuns = 96;
  util::SplitMix64 rng(0xBEEF);
  std::vector<fi::RunResult> runs;
  runs.reserve(kRuns);
  for (std::uint32_t i = 0; i < kRuns; ++i) runs.push_back(random_run(rng));

  LogSink sequential;
  for (std::uint32_t i = 0; i < kRuns; ++i) sequential.record(i, runs[i]);
  const std::string expected_text = sequential.text();
  const CampaignAggregate expected = sequential.aggregate();

  for (const unsigned threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    LogSink sink;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&sink, &runs, t, threads] {
        // Each worker walks its stride backwards: the sink sees a
        // completion storm arriving far out of order, every index twice
        // (the duplicate a resume replay would deliver).
        for (std::uint32_t i = kRuns; i-- > 0;) {
          if (i % threads != t) continue;
          sink.record(i, runs[i]);
          sink.record(i, runs[i]);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();

    EXPECT_EQ(sink.records(), kRuns);
    EXPECT_EQ(sink.duplicates(), kRuns);
    EXPECT_EQ(sink.text(), expected_text);
    expect_same_aggregate(sink.aggregate(), expected);
  }
}

/// A put-area-only streambuf over a fixed buffer: stream writes never
/// touch the heap, so the allocation pin below measures the sink alone.
class FixedStreambuf : public std::streambuf {
 public:
  FixedStreambuf() { setp(buffer_, buffer_ + sizeof buffer_); }
  [[nodiscard]] std::string_view written() const {
    return std::string_view(pbase(), static_cast<std::size_t>(pptr() - pbase()));
  }

 private:
  char buffer_[1 << 20];
};

TEST(LogPipeAllocations, SteadyStateSinkReleasePathIsAllocationFree) {
  util::SplitMix64 rng(0xA110C);
  std::vector<fi::RunResult> runs;
  for (std::uint32_t i = 0; i < 64; ++i) runs.push_back(random_run(rng));

  FixedStreambuf buf;
  std::ostream stream(&buf);
  LogSink sink(stream);
  // Warm-up: the first releases size line_buf_ (and first-touch any
  // lazy statics); after that, an in-order campaign must never allocate.
  for (std::uint32_t i = 0; i < 8; ++i) sink.record(i, runs[i]);

  const util::AllocationObserver::Window window;
  for (std::uint32_t i = 8; i < 64; ++i) sink.record(i, runs[i]);
  EXPECT_EQ(window.allocations(), 0u);
  EXPECT_EQ(sink.records(), 64u);
  EXPECT_NE(buf.written().find("run 63: "), std::string_view::npos);
}

TEST(LogPipeAllocations, ZeroCopyScanIsAllocationFree) {
  // Well-formed lines only: a malformed line allocates its Status
  // message, which is the error path, not the steady state under pin.
  util::SplitMix64 rng(0x5CA4);
  std::string text;
  for (std::uint32_t i = 0; i < 256; ++i) {
    text += fi::run_log_line(i, random_run(rng));
    text += '\n';
  }

  const util::AllocationObserver::Window window;
  const RunLogScan scan = scan_run_log(text);
  EXPECT_EQ(window.allocations(), 0u);
  EXPECT_EQ(scan.entries, 256u);
  EXPECT_EQ(scan.malformed_lines, 0u);
  EXPECT_TRUE(scan.indices_sequential);
}

}  // namespace
}  // namespace mcs::analysis
