#include "analysis/seooc.hpp"

#include <gtest/gtest.h>

namespace mcs::analysis {
namespace {

fi::CampaignResult campaign_of(std::initializer_list<fi::Outcome> outcomes,
                               bool reclaimed = true) {
  fi::CampaignResult result;
  for (const fi::Outcome outcome : outcomes) {
    fi::RunResult run;
    run.outcome = outcome;
    run.shutdown_reclaimed = reclaimed && outcome != fi::Outcome::PanicPark;
    result.runs.push_back(run);
  }
  return result;
}

TEST(Seooc, PaperShapedResultsSupportClaimsWithResidualRisks) {
  const auto medium = campaign_of({fi::Outcome::Correct, fi::Outcome::Correct,
                                   fi::Outcome::Correct, fi::Outcome::PanicPark,
                                   fi::Outcome::CpuPark});
  const auto high_root = campaign_of(
      {fi::Outcome::InvalidArguments, fi::Outcome::InvalidArguments});
  const auto high_nonroot = campaign_of(
      {fi::Outcome::InconsistentCell, fi::Outcome::InconsistentCell});

  const SeoocReport report =
      build_seooc_report(medium, high_root, high_nonroot);
  ASSERT_EQ(report.claims.size(), 3u);
  EXPECT_EQ(report.claims[0].verdict, ClaimVerdict::Supported);  // fail-stop
  EXPECT_EQ(report.claims[1].verdict, ClaimVerdict::Supported);  // containment
  EXPECT_EQ(report.claims[2].verdict, ClaimVerdict::Supported);  // recovery
  // The paper's two findings must surface as residual risks.
  ASSERT_EQ(report.residual_risks.size(), 2u);
  EXPECT_NE(report.residual_risks[0].find("panic park"), std::string::npos);
  EXPECT_NE(report.residual_risks[1].find("inconsistent"), std::string::npos);
}

TEST(Seooc, NonEinvalRootOutcomeRefutesFailStop) {
  const auto high_root =
      campaign_of({fi::Outcome::InvalidArguments, fi::Outcome::PanicPark});
  const SeoocReport report = build_seooc_report(
      campaign_of({fi::Outcome::Correct}), high_root, campaign_of({}));
  EXPECT_EQ(report.claims[0].verdict, ClaimVerdict::Refuted);
  EXPECT_FALSE(report.all_supported());
}

TEST(Seooc, SilentHangRefutesContainment) {
  const auto medium = campaign_of({fi::Outcome::SilentHang});
  const SeoocReport report = build_seooc_report(
      medium, campaign_of({fi::Outcome::InvalidArguments}), campaign_of({}));
  EXPECT_EQ(report.claims[1].verdict, ClaimVerdict::Refuted);
}

TEST(Seooc, FailedReclaimRefutesRecovery) {
  const auto medium =
      campaign_of({fi::Outcome::CpuPark}, /*reclaimed=*/false);
  const SeoocReport report = build_seooc_report(
      medium, campaign_of({fi::Outcome::InvalidArguments}), campaign_of({}));
  EXPECT_EQ(report.claims[2].verdict, ClaimVerdict::Refuted);
}

TEST(Seooc, EmptyCampaignsAreInconclusive) {
  const SeoocReport report =
      build_seooc_report(campaign_of({}), campaign_of({}), campaign_of({}));
  EXPECT_EQ(report.claims[0].verdict, ClaimVerdict::Inconclusive);
  EXPECT_EQ(report.claims[2].verdict, ClaimVerdict::Inconclusive);
  EXPECT_FALSE(report.all_supported());
}

TEST(Seooc, TextRendersClaimsAndVerdicts) {
  const SeoocReport report = build_seooc_report(
      campaign_of({fi::Outcome::Correct}),
      campaign_of({fi::Outcome::InvalidArguments}), campaign_of({}));
  const std::string text = report.to_text();
  EXPECT_NE(text.find("ISO 26262 SEooC"), std::string::npos);
  EXPECT_NE(text.find("Claim 1"), std::string::npos);
  EXPECT_NE(text.find("SUPPORTED"), std::string::npos);
  EXPECT_NE(text.find("Residual risks"), std::string::npos);
}

TEST(Seooc, VerdictNames) {
  EXPECT_EQ(claim_verdict_name(ClaimVerdict::Supported), "SUPPORTED");
  EXPECT_EQ(claim_verdict_name(ClaimVerdict::Refuted), "REFUTED");
  EXPECT_EQ(claim_verdict_name(ClaimVerdict::Inconclusive), "INCONCLUSIVE");
}

}  // namespace
}  // namespace mcs::analysis
