#include "platform/board.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "platform/board_registry.hpp"
#include "util/arena.hpp"

namespace mcs::platform {
namespace {

TEST(Board, ComposesThePaperTestbed) {
  BananaPiBoard board;
  EXPECT_EQ(board.num_cpus(), 2);  // dual-core Cortex-A7
  EXPECT_EQ(board.dram().size(), 1ull << 30);  // 1 GB of RAM
  EXPECT_EQ(board.cpu(0).id(), 0);
  EXPECT_EQ(board.cpu(1).id(), 1);
  EXPECT_EQ(board.name(), "bananapi");
  EXPECT_EQ(board.spec().num_cpus, 2);
}

TEST(Board, QuadVariantSizesCpuStorageFromSpec) {
  QuadA7Board board;
  EXPECT_EQ(board.num_cpus(), 4);
  for (int cpu = 0; cpu < board.num_cpus(); ++cpu) {
    EXPECT_EQ(board.cpu(cpu).id(), cpu);
  }
  EXPECT_EQ(board.gic().num_cpus(), 4);
  // Same A20 peripheral block at the same physical windows.
  EXPECT_EQ(board.bus().find_device(kUart1Base), &board.uart1());
  // Per-CPU timers exist for every core.
  board.timer().start(3, 5);
  board.run_ticks(5);
  EXPECT_EQ(board.timer().fires(3), 1u);
  EXPECT_TRUE(board.gic().is_pending(kVirtualTimerPpi, 3));
}

TEST(BoardRegistry, ShipsBothBuiltinVariants) {
  BoardRegistry& registry = BoardRegistry::instance();
  EXPECT_GE(registry.size(), 2u);
  const std::vector<std::string> names = registry.names();
  for (const char* expected : {"bananapi", "quad-a7"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BoardRegistry, MakeBuildsFreshBoardsByName) {
  std::unique_ptr<Board> pi = make_board("bananapi");
  std::unique_ptr<Board> quad = make_board("quad-a7");
  ASSERT_NE(pi, nullptr);
  ASSERT_NE(quad, nullptr);
  EXPECT_EQ(pi->num_cpus(), 2);
  EXPECT_EQ(quad->num_cpus(), 4);
  EXPECT_NE(pi.get(), make_board("bananapi").get());  // fresh instances
  EXPECT_EQ(make_board("no-such-board"), nullptr);
}

TEST(BoardRegistry, FindSpecWithoutConstructingHardware) {
  const BoardSpec* spec = find_board_spec("quad-a7");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->num_cpus, 4);
  EXPECT_EQ(spec->ram_size, mem::kDramSize);
  EXPECT_EQ(spec->devices.size(), 4u);
  EXPECT_EQ(find_board_spec("no-such-board"), nullptr);
  EXPECT_NE(find_board_spec(kDefaultBoard), nullptr);
}

TEST(Board, DevicesAttachedToBus) {
  BananaPiBoard board;
  EXPECT_EQ(board.bus().find_device(kUart0Base), &board.uart0());
  EXPECT_EQ(board.bus().find_device(kUart1Base), &board.uart1());
  EXPECT_EQ(board.bus().find_device(kTimerBase), &board.timer());
  EXPECT_EQ(board.bus().find_device(kGpioBase), &board.gpio());
}

TEST(Board, TickAdvancesClockAndDevices) {
  BananaPiBoard board;
  board.timer().start(0, 3);
  board.run_ticks(3);
  EXPECT_EQ(board.now().value, 3u);
  EXPECT_TRUE(board.gic().is_pending(kVirtualTimerPpi, 0));
}

TEST(Board, RunTicksAccumulates) {
  BananaPiBoard board;
  board.run_ticks(10);
  board.run_ticks(5);
  EXPECT_EQ(board.now().value, 15u);
}

TEST(Board, ResetClearsCpusAndIrqState) {
  BananaPiBoard board;
  (void)board.cpu(1).power_on(0x1000);
  (void)board.cpu(1).complete_boot();
  (void)board.gic().raise_ppi(0, 27);
  board.reset();
  EXPECT_EQ(board.cpu(1).power_state(), arch::PowerState::Off);
  EXPECT_FALSE(board.gic().is_pending(27, 0));
}

// --- power-on restore (the testbed pool's reuse contract) -------------------

TEST(Board, ResetRestoresClockSerialAndEventLog) {
  BananaPiBoard board;
  (void)board.uart1().mmio_write(kUartThr, 'x');
  board.log().log(board.now(), util::Severity::Info, "test", -1, "entry");
  board.run_ticks(4);
  board.reset();
  // Power-on restore: a reused board must be indistinguishable from a
  // freshly built one — time restarts at 0, captures and logs are empty.
  EXPECT_EQ(board.now().value, 0u);
  EXPECT_TRUE(board.uart1().captured().empty());
  EXPECT_EQ(board.log().size(), 0u);
}

TEST(Board, ResetRestoresTimerDeadlinesToQuiescent) {
  BananaPiBoard board;
  board.timer().start(0, 7);
  board.timer().start(1, 13);
  board.run_ticks(3);
  EXPECT_NE(board.next_device_deadline(), kNoDeadline);
  board.reset();
  // All timers disarmed, fire counters rewound: no deadline constrains
  // the next run's event-driven leaps.
  EXPECT_EQ(board.next_device_deadline(), kNoDeadline);
  EXPECT_FALSE(board.timer().is_running(0));
  EXPECT_EQ(board.timer().fires(0), 0u);
}

TEST(Board, ResetRestoresUartGpioWindowsToPowerOn) {
  BananaPiBoard board;
  (void)board.uart0().mmio_write(kUartThr, 'a');
  board.uart1().feed_rx("pending");
  board.gpio().set_line(kGreenLedLine, true);
  board.gpio().set_line(3, true);
  board.reset();
  EXPECT_EQ(board.uart0().total_bytes(), 0u);
  EXPECT_FALSE(board.uart1().mmio_read(kUartLsr).value() & kLsrDataReady);
  EXPECT_FALSE(board.gpio().led_on());
  EXPECT_FALSE(board.gpio().line(3));
  EXPECT_EQ(board.gpio().led_toggles(), 0u);
}

TEST(Board, ResetRestoresIrqchipLineState) {
  QuadA7Board board;
  (void)board.gic().enable(kUart1Irq);
  (void)board.gic().set_target(kUart1Irq, 2);
  (void)board.gic().set_priority(kUart1Irq, 0x10);
  (void)board.gic().raise_spi(kUart1Irq);
  (void)board.gic().raise_ppi(1, kVirtualTimerPpi);
  board.reset();
  EXPECT_FALSE(board.gic().is_enabled(kUart1Irq));
  EXPECT_EQ(board.gic().target(kUart1Irq), 0);
  EXPECT_FALSE(board.gic().is_pending(kUart1Irq, 2));
  EXPECT_FALSE(board.gic().is_pending(kVirtualTimerPpi, 1));
  // Banked per-CPU lines come back enabled at the default priority, the
  // same state construction produces.
  EXPECT_TRUE(board.gic().is_enabled(kVirtualTimerPpi));
}

TEST(Board, ResetZeroesDramInPlaceWithoutFreeingPages) {
  BananaPiBoard board;
  ASSERT_TRUE(board.dram().write_u32(mem::kDramBase + 0x1000, 0xDEADBEEF).is_ok());
  const std::size_t resident = board.dram().resident_pages();
  ASSERT_GT(resident, 0u);
  board.reset();
  // Contents are power-on zeroes, but the pages stay resident (reuse
  // keeps the arena warm — no frees, no future allocations).
  EXPECT_EQ(board.dram().read_u32(mem::kDramBase + 0x1000).value(), 0u);
  EXPECT_EQ(board.dram().resident_pages(), resident);
}

TEST(Board, ResetZeroesCpuProfilingCounters) {
  BananaPiBoard board;
  board.cpu(0).trap_entries = 7;
  board.cpu(1).irq_entries = 3;
  board.reset();
  EXPECT_EQ(board.cpu(0).trap_entries, 0u);
  EXPECT_EQ(board.cpu(1).irq_entries, 0u);
}

TEST(Board, EventLogIsShared) {
  BananaPiBoard board;
  board.log().log(board.now(), util::Severity::Info, "test", -1, "entry");
  EXPECT_EQ(board.log().size(), 1u);
}

// --- the deadline scheduler -------------------------------------------------

TEST(Board, DeadlineCacheRefreshesOncePerRearmNotPerQuery) {
  BananaPiBoard board;
  // Quiescent polling: the first query may compute, every later one is a
  // cache hit.
  const std::uint64_t idle_before = board.deadline_refreshes();
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(board.next_device_deadline(), kNoDeadline);
  }
  EXPECT_LE(board.deadline_refreshes() - idle_before, 1u);

  // Arming a timer invalidates the cache exactly once...
  board.timer().start(0, 100);
  const std::uint64_t armed_before = board.deadline_refreshes();
  EXPECT_EQ(board.next_device_deadline().value, 100u);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(board.next_device_deadline().value, 100u);
  }
  EXPECT_EQ(board.deadline_refreshes() - armed_before, 1u);

  // ...and a busy span refreshes once per re-arm (10 fires in 1000
  // ticks), never once per tick: the cached value stays exact throughout.
  const std::uint64_t busy_before = board.deadline_refreshes();
  for (int tick = 0; tick < 1'000; ++tick) {
    board.tick();
    EXPECT_EQ(board.next_device_deadline().value,
              (board.now().value / 100 + 1) * 100);
  }
  EXPECT_EQ(board.timer().fires(0), 10u);
  const std::uint64_t busy_refreshes = board.deadline_refreshes() - busy_before;
  EXPECT_GE(busy_refreshes, 10u);   // every re-arm was noticed
  EXPECT_LE(busy_refreshes, 12u);   // but queries between re-arms were hits
}

TEST(Board, DeadlineCacheSurvivesResetAndRestore) {
  BananaPiBoard board;
  board.timer().start(0, 50);
  EXPECT_EQ(board.next_device_deadline().value, 50u);

  board.reset();  // timer disarmed: the cache must not echo the old 50
  EXPECT_EQ(board.next_device_deadline(), kNoDeadline);

  board.timer().start(1, 30);
  util::Arena arena(1 << 20);
  Board::Snapshot snapshot;
  board.snapshot_to(snapshot, arena);
  board.run_ticks(30);  // fire + re-arm: deadline now 60
  EXPECT_EQ(board.next_device_deadline().value, 60u);

  board.restore_from(snapshot);  // back to t=0, deadline 30 again
  EXPECT_EQ(board.next_device_deadline().value, 30u);
}

TEST(Board, QuiescentBoardPublishesNoDeadline) {
  BananaPiBoard board;
  EXPECT_EQ(board.next_device_deadline(), kNoDeadline);
  board.advance_to(util::Ticks{100'000});  // one leap, no device service
  EXPECT_EQ(board.now().value, 100'000u);
}

TEST(Board, AdvanceToStopsAtEveryTimerDeadline) {
  BananaPiBoard board;
  board.timer().start(0, 100);
  board.advance_to(util::Ticks{1'000});
  EXPECT_EQ(board.now().value, 1'000u);
  EXPECT_EQ(board.timer().fires(0), 10u);
  EXPECT_TRUE(board.gic().is_pending(kVirtualTimerPpi, 0));
}

TEST(Board, AdvanceToMatchesPerTickPolling) {
  // The golden property at board level: leaping produces exactly the
  // state per-tick polling does — on every registered board variant,
  // with a timer armed on every core the variant has.
  for (const std::string& name : BoardRegistry::instance().names()) {
    std::unique_ptr<Board> polled = make_board(name);
    std::unique_ptr<Board> leaped = make_board(name);
    ASSERT_NE(polled, nullptr) << name;
    for (Board* board : {polled.get(), leaped.get()}) {
      for (int cpu = 0; cpu < board->num_cpus(); ++cpu) {
        board->timer().start(cpu, 7 + 6 * static_cast<std::uint32_t>(cpu));
      }
    }
    for (int i = 0; i < 200; ++i) polled->tick();
    leaped->advance_to(util::Ticks{200});
    EXPECT_EQ(polled->now(), leaped->now()) << name;
    for (int cpu = 0; cpu < polled->num_cpus(); ++cpu) {
      EXPECT_EQ(polled->timer().fires(cpu), leaped->timer().fires(cpu))
          << name << " cpu" << cpu;
      EXPECT_EQ(polled->timer().fires(cpu),
                200u / (7u + 6u * static_cast<std::uint32_t>(cpu)))
          << name << " cpu" << cpu;
    }
  }
}

TEST(Board, SnapshotRoundTripRestoresClockDevicesAndDram) {
  BananaPiBoard board;
  util::Arena page_arena(64 * mem::kPageSize);
  board.timer().start(0, 10);
  board.gpio().set_line(kGreenLedLine, true);
  ASSERT_TRUE(board.dram().write_u32(mem::kDramBase + 0x100, 0xCAFEF00D).is_ok());
  board.log().log(board.now(), util::Severity::Info, "test", -1, "captured");
  board.run_ticks(25);  // 2 timer fires, pending PPI state, clock at 25

  Board::Snapshot snapshot;
  board.snapshot_to(snapshot, page_arena);
  const std::uint64_t fires_at_capture = board.timer().fires(0);
  const std::size_t log_at_capture = board.log().size();

  // Diverge: more time, more DRAM writes, more log records.
  board.run_ticks(100);
  ASSERT_TRUE(board.dram().write_u32(mem::kDramBase + 0x100, 0).is_ok());
  ASSERT_TRUE(board.dram().write_u32(mem::kDramBase + 64 * mem::kPageSize, 7).is_ok());
  board.log().log(board.now(), util::Severity::Info, "test", -1, "post-capture");
  ASSERT_NE(board.timer().fires(0), fires_at_capture);

  board.restore_from(snapshot);
  EXPECT_EQ(board.now().value, 25u);
  EXPECT_EQ(board.timer().fires(0), fires_at_capture);
  EXPECT_TRUE(board.gpio().line(kGreenLedLine));
  EXPECT_EQ(board.dram().read_u32(mem::kDramBase + 0x100).value(), 0xCAFEF00Du);
  EXPECT_EQ(board.dram().read_u32(mem::kDramBase + 64 * mem::kPageSize).value(), 0u);
  EXPECT_EQ(board.log().size(), log_at_capture);

  // The restored board resumes the captured schedule exactly: the same
  // 100 ticks must now reproduce the diverged run's fire count.
  const std::uint64_t diverged_fires = (25u + 100u) / 10u;
  board.run_ticks(100);
  EXPECT_EQ(board.timer().fires(0), diverged_fires);
}

TEST(Board, UartSnapshotTruncatesCaptureToTheMark) {
  BananaPiBoard board;
  util::Arena page_arena(16 * mem::kPageSize);
  ASSERT_TRUE(board.uart0().mmio_write(kUartThr, 'a').is_ok());
  ASSERT_TRUE(board.uart0().mmio_write(kUartThr, 'b').is_ok());
  Board::Snapshot snapshot;
  board.snapshot_to(snapshot, page_arena);
  ASSERT_TRUE(board.uart0().mmio_write(kUartThr, 'c').is_ok());
  ASSERT_EQ(board.uart0().captured(), "abc");
  board.restore_from(snapshot);
  EXPECT_EQ(board.uart0().captured(), "ab");
}

}  // namespace
}  // namespace mcs::platform
