#include "platform/board.hpp"

#include <gtest/gtest.h>

namespace mcs::platform {
namespace {

TEST(Board, ComposesThePaperTestbed) {
  BananaPiBoard board;
  EXPECT_EQ(BananaPiBoard::num_cpus(), 2);  // dual-core Cortex-A7
  EXPECT_EQ(board.dram().size(), 1ull << 30);  // 1 GB of RAM
  EXPECT_EQ(board.cpu(0).id(), 0);
  EXPECT_EQ(board.cpu(1).id(), 1);
}

TEST(Board, DevicesAttachedToBus) {
  BananaPiBoard board;
  EXPECT_EQ(board.bus().find_device(kUart0Base), &board.uart0());
  EXPECT_EQ(board.bus().find_device(kUart1Base), &board.uart1());
  EXPECT_EQ(board.bus().find_device(kTimerBase), &board.timer());
  EXPECT_EQ(board.bus().find_device(kGpioBase), &board.gpio());
}

TEST(Board, TickAdvancesClockAndDevices) {
  BananaPiBoard board;
  board.timer().start(0, 3);
  board.run_ticks(3);
  EXPECT_EQ(board.now().value, 3u);
  EXPECT_TRUE(board.gic().is_pending(kVirtualTimerPpi, 0));
}

TEST(Board, RunTicksAccumulates) {
  BananaPiBoard board;
  board.run_ticks(10);
  board.run_ticks(5);
  EXPECT_EQ(board.now().value, 15u);
}

TEST(Board, ResetClearsCpusAndIrqState) {
  BananaPiBoard board;
  (void)board.cpu(1).power_on(0x1000);
  (void)board.cpu(1).complete_boot();
  (void)board.gic().raise_ppi(0, 27);
  board.reset();
  EXPECT_EQ(board.cpu(1).power_state(), arch::PowerState::Off);
  EXPECT_FALSE(board.gic().is_pending(27, 0));
}

TEST(Board, ResetPreservesSerialCaptureAndTime) {
  BananaPiBoard board;
  (void)board.uart1().mmio_write(kUartThr, 'x');
  board.run_ticks(4);
  board.reset();
  EXPECT_EQ(board.uart1().captured(), "x");
  EXPECT_EQ(board.now().value, 4u);  // warm reboot: time keeps flowing
}

TEST(Board, EventLogIsShared) {
  BananaPiBoard board;
  board.log().log(board.now(), util::Severity::Info, "test", -1, "entry");
  EXPECT_EQ(board.log().size(), 1u);
}

// --- the deadline scheduler -------------------------------------------------

TEST(Board, QuiescentBoardPublishesNoDeadline) {
  BananaPiBoard board;
  EXPECT_EQ(board.next_device_deadline(), kNoDeadline);
  board.advance_to(util::Ticks{100'000});  // one leap, no device service
  EXPECT_EQ(board.now().value, 100'000u);
}

TEST(Board, AdvanceToStopsAtEveryTimerDeadline) {
  BananaPiBoard board;
  board.timer().start(0, 100);
  board.advance_to(util::Ticks{1'000});
  EXPECT_EQ(board.now().value, 1'000u);
  EXPECT_EQ(board.timer().fires(0), 10u);
  EXPECT_TRUE(board.gic().is_pending(kVirtualTimerPpi, 0));
}

TEST(Board, AdvanceToMatchesPerTickPolling) {
  // The golden property at board level: leaping produces exactly the
  // state per-tick polling does.
  BananaPiBoard polled;
  BananaPiBoard leaped;
  for (BananaPiBoard* board : {&polled, &leaped}) {
    board->timer().start(0, 7);
    board->timer().start(1, 13);
  }
  for (int i = 0; i < 200; ++i) polled.tick();
  leaped.advance_to(util::Ticks{200});
  EXPECT_EQ(polled.now(), leaped.now());
  EXPECT_EQ(polled.timer().fires(0), leaped.timer().fires(0));
  EXPECT_EQ(polled.timer().fires(1), leaped.timer().fires(1));
  EXPECT_EQ(polled.timer().fires(0), 200u / 7u);
  EXPECT_EQ(polled.timer().fires(1), 200u / 13u);
}

}  // namespace
}  // namespace mcs::platform
