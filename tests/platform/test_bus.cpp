#include "platform/bus.hpp"

#include <gtest/gtest.h>

#include "platform/board.hpp"
#include "platform/gpio.hpp"
#include "platform/uart.hpp"

namespace mcs::platform {
namespace {

class BusTest : public ::testing::Test {
 protected:
  BusTest()
      : bus_(dram_),
        uart_("uart0", kUart0Base, nullptr, 0),
        gpio_("gpio", kGpioBase) {
    (void)bus_.attach(uart_);
    (void)bus_.attach(gpio_);
  }

  mem::PhysicalMemory dram_;
  Bus bus_;
  Uart uart_;
  Gpio gpio_;
};

TEST_F(BusTest, RoutesDramAccesses) {
  ASSERT_TRUE(bus_.write_u32(mem::kDramBase + 0x40, 0x1234).is_ok());
  EXPECT_EQ(bus_.read_u32(mem::kDramBase + 0x40).value(), 0x1234u);
  EXPECT_EQ(dram_.read_u32(mem::kDramBase + 0x40).value(), 0x1234u);
}

TEST_F(BusTest, RoutesDeviceWindow) {
  ASSERT_TRUE(bus_.write_u32(kUart0Base + kUartThr, 'Q').is_ok());
  EXPECT_EQ(uart_.captured(), "Q");
}

TEST_F(BusTest, FindDeviceByAddress) {
  EXPECT_EQ(bus_.find_device(kUart0Base + 8), &uart_);
  EXPECT_EQ(bus_.find_device(kGpioBase), &gpio_);
  EXPECT_EQ(bus_.find_device(0x0300'0000), nullptr);
  EXPECT_EQ(bus_.devices().size(), 2u);
}

TEST_F(BusTest, UnbackedAddressFaults) {
  // Outside DRAM and every device window.
  EXPECT_FALSE(bus_.read_u32(0x0300'0000).is_ok());
  EXPECT_FALSE(bus_.write_u32(0x0300'0000, 1).is_ok());
}

TEST_F(BusTest, RejectsOverlappingWindows) {
  Uart clash("clash", kUart0Base + 0x100, nullptr, 0);
  EXPECT_EQ(bus_.attach(clash).code(), util::Code::EInval);
  Uart ok("ok", kUart1Base, nullptr, 0);
  EXPECT_TRUE(bus_.attach(ok).is_ok());
}

TEST_F(BusTest, DeviceErrorsPropagate) {
  EXPECT_FALSE(bus_.read_u32(kUart0Base + 0x3FC).is_ok());
}

}  // namespace
}  // namespace mcs::platform
