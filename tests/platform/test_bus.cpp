#include "platform/bus.hpp"

#include <gtest/gtest.h>

#include "platform/board.hpp"
#include "platform/gpio.hpp"
#include "platform/uart.hpp"

namespace mcs::platform {
namespace {

class BusTest : public ::testing::Test {
 protected:
  BusTest()
      : bus_(dram_),
        uart_("uart0", kUart0Base, nullptr, 0),
        gpio_("gpio", kGpioBase) {
    (void)bus_.attach(uart_);
    (void)bus_.attach(gpio_);
  }

  mem::PhysicalMemory dram_;
  Bus bus_;
  Uart uart_;
  Gpio gpio_;
};

TEST_F(BusTest, RoutesDramAccesses) {
  ASSERT_TRUE(bus_.write_u32(mem::kDramBase + 0x40, 0x1234).is_ok());
  EXPECT_EQ(bus_.read_u32(mem::kDramBase + 0x40).value(), 0x1234u);
  EXPECT_EQ(dram_.read_u32(mem::kDramBase + 0x40).value(), 0x1234u);
}

TEST_F(BusTest, RoutesDeviceWindow) {
  ASSERT_TRUE(bus_.write_u32(kUart0Base + kUartThr, 'Q').is_ok());
  EXPECT_EQ(uart_.captured(), "Q");
}

TEST_F(BusTest, FindDeviceByAddress) {
  EXPECT_EQ(bus_.find_device(kUart0Base + 8), &uart_);
  EXPECT_EQ(bus_.find_device(kGpioBase), &gpio_);
  EXPECT_EQ(bus_.find_device(0x0300'0000), nullptr);
  EXPECT_EQ(bus_.devices().size(), 2u);
}

TEST_F(BusTest, UnbackedAddressFaults) {
  // Outside DRAM and every device window.
  EXPECT_FALSE(bus_.read_u32(0x0300'0000).is_ok());
  EXPECT_FALSE(bus_.write_u32(0x0300'0000, 1).is_ok());
}

TEST_F(BusTest, RejectsOverlappingWindows) {
  Uart clash("clash", kUart0Base + 0x100, nullptr, 0);
  EXPECT_EQ(bus_.attach(clash).code(), util::Code::EInval);
  Uart ok("ok", kUart1Base, nullptr, 0);
  EXPECT_TRUE(bus_.attach(ok).is_ok());
}

TEST_F(BusTest, DeviceErrorsPropagate) {
  EXPECT_FALSE(bus_.read_u32(kUart0Base + 0x3FC).is_ok());
}

TEST_F(BusTest, RejectsWindowOverlappingDram) {
  // The DRAM pre-check in read/write dispatch is sound only if no device
  // window can shadow RAM; attach() is where that invariant is enforced.
  Uart shadow("shadow", mem::kDramBase + 0x1000, nullptr, 0);
  const util::Status status = bus_.attach(shadow);
  EXPECT_EQ(status.code(), util::Code::EInval);
  EXPECT_NE(status.message().find("overlaps DRAM"), std::string::npos);
  EXPECT_NE(status.message().find("shadow"), std::string::npos);
  // RAM at that address still routes to DRAM, not to a phantom device.
  ASSERT_TRUE(bus_.write_u32(mem::kDramBase + 0x1000, 7).is_ok());
  EXPECT_EQ(dram_.read_u32(mem::kDramBase + 0x1000).value(), 7u);
}

TEST_F(BusTest, OverlapDiagnosticNamesTheExistingWindow) {
  Uart clash("clash", kGpioBase, nullptr, 0);
  const util::Status status = bus_.attach(clash);
  EXPECT_EQ(status.code(), util::Code::EInval);
  EXPECT_NE(status.message().find("'clash'"), std::string::npos);
  EXPECT_NE(status.message().find("'gpio'"), std::string::npos);
}

TEST(BusDispatch, SortedLookupIsAttachOrderIndependent) {
  // The window table is sorted by base while devices() keeps attach
  // order; dispatch must resolve first/last bytes of every window no
  // matter how the attach order relates to the address order.
  mem::PhysicalMemory dram;
  Bus bus(dram);
  Gpio gpio("gpio", kGpioBase);
  Uart uart0("uart0", kUart0Base, nullptr, 0);
  Uart uart1("uart1", kUart1Base, nullptr, 0);
  ASSERT_TRUE(bus.attach(uart1).is_ok());
  ASSERT_TRUE(bus.attach(gpio).is_ok());
  ASSERT_TRUE(bus.attach(uart0).is_ok());

  for (Device* device : {static_cast<Device*>(&gpio),
                         static_cast<Device*>(&uart0),
                         static_cast<Device*>(&uart1)}) {
    EXPECT_EQ(bus.find_device(device->base()), device) << device->name();
    EXPECT_EQ(bus.find_device(device->base() + device->size() - 1), device)
        << device->name();
    EXPECT_NE(bus.find_device(device->base() + device->size()), device)
        << device->name();
  }
  EXPECT_EQ(bus.find_device(0), nullptr);
  EXPECT_EQ(bus.find_device(~std::uint64_t{0}), nullptr);

  // Attach order stays the observable enumeration order.
  const std::vector<Device*> expected{&uart1, &gpio, &uart0};
  EXPECT_EQ(bus.devices(), expected);
}

}  // namespace
}  // namespace mcs::platform
