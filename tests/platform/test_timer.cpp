#include "platform/timer.hpp"

#include <gtest/gtest.h>

#include "platform/board.hpp"

namespace mcs::platform {
namespace {

class TimerTest : public ::testing::Test {
 protected:
  TimerTest() : gic_(2), timer_("timer", kTimerBase, gic_, 2, clock_) {}

  /// Advance board time tick by tick, servicing the timer at each tick —
  /// the legacy polling loop the deadline scheduler must match.
  void tick_n(int n) {
    for (int i = 0; i < n; ++i) {
      clock_.tick();
      timer_.tick(clock_.now());
    }
  }

  util::SimClock clock_;
  irq::Gic gic_;
  PeriodicTimer timer_;
};

TEST_F(TimerTest, FiresEveryPeriod) {
  timer_.start(1, 10);
  tick_n(9);
  EXPECT_FALSE(gic_.is_pending(kVirtualTimerPpi, 1));
  tick_n(1);
  EXPECT_TRUE(gic_.is_pending(kVirtualTimerPpi, 1));
  EXPECT_EQ(timer_.fires(1), 1u);
  tick_n(10);
  EXPECT_EQ(timer_.fires(1), 2u);
}

TEST_F(TimerTest, PerCpuIndependence) {
  timer_.start(0, 5);
  tick_n(5);
  EXPECT_TRUE(gic_.is_pending(kVirtualTimerPpi, 0));
  EXPECT_FALSE(gic_.is_pending(kVirtualTimerPpi, 1));
}

TEST_F(TimerTest, StopHaltsFiring) {
  timer_.start(1, 3);
  tick_n(3);
  EXPECT_EQ(timer_.fires(1), 1u);
  timer_.stop(1);
  EXPECT_FALSE(timer_.is_running(1));
  tick_n(10);
  EXPECT_EQ(timer_.fires(1), 1u);
}

TEST_F(TimerTest, StopFreezesResidualUntilRestart) {
  timer_.start(1, 10);
  tick_n(6);  // 4 ticks of the period left
  timer_.stop(1);
  tick_n(25);  // paused time must not count
  ASSERT_TRUE(timer_.mmio_write(kTimerStride * 1 + kTimerCtl, 1).is_ok());
  EXPECT_EQ(timer_.mmio_read(kTimerStride * 1 + kTimerCount).value(), 4u);
  tick_n(3);
  EXPECT_EQ(timer_.fires(1), 0u);
  tick_n(1);
  EXPECT_EQ(timer_.fires(1), 1u);
}

TEST_F(TimerTest, PeriodOneFiresEveryTick) {
  timer_.start(1, 1);
  tick_n(7);
  EXPECT_EQ(timer_.fires(1), 7u);
}

TEST_F(TimerTest, MmioProgrammingPath) {
  ASSERT_TRUE(timer_.mmio_write(kTimerStride * 1 + kTimerInterval, 4).is_ok());
  ASSERT_TRUE(timer_.mmio_write(kTimerStride * 1 + kTimerCtl, 1).is_ok());
  EXPECT_TRUE(timer_.is_running(1));
  EXPECT_EQ(timer_.mmio_read(kTimerStride * 1 + kTimerInterval).value(), 4u);
  EXPECT_EQ(timer_.mmio_read(kTimerStride * 1 + kTimerCtl).value(), 1u);
  tick_n(4);
  EXPECT_EQ(timer_.fires(1), 1u);
  EXPECT_EQ(timer_.mmio_read(kTimerStride * 1 + kTimerCount).value(), 4u);
}

TEST_F(TimerTest, MmioValidation) {
  EXPECT_FALSE(timer_.mmio_write(kTimerStride * 5 + kTimerCtl, 1).is_ok());
  EXPECT_FALSE(timer_.mmio_read(kTimerStride * 5).is_ok());
  EXPECT_FALSE(timer_.mmio_write(kTimerStride * 0 + 0xC, 1).is_ok());
}

TEST_F(TimerTest, InvalidStartIgnored) {
  timer_.start(5, 10);   // absent cpu
  timer_.start(0, 0);    // zero period
  EXPECT_FALSE(timer_.is_running(0));
  EXPECT_EQ(timer_.fires(5), 0u);
}

TEST_F(TimerTest, ResetClearsState) {
  timer_.start(0, 2);
  tick_n(2);
  timer_.reset();
  EXPECT_FALSE(timer_.is_running(0));
  EXPECT_EQ(timer_.fires(0), 0u);
}

// --- deadline publication (the event-driven scheduler contract) -------------

TEST_F(TimerTest, QuiescentTimerPublishesNoDeadline) {
  EXPECT_EQ(timer_.next_deadline(clock_.now()), kNoDeadline);
  timer_.start(0, 5);
  timer_.stop(0);
  EXPECT_EQ(timer_.next_deadline(clock_.now()), kNoDeadline);
}

TEST_F(TimerTest, DeadlineIsEarliestArmedFire) {
  timer_.start(0, 10);
  tick_n(2);
  timer_.start(1, 3);  // armed at tick 2 → fires at 5; cpu0 fires at 10
  EXPECT_EQ(timer_.next_deadline(clock_.now()).value, 5u);
  tick_n(3);
  EXPECT_EQ(timer_.fires(1), 1u);
  EXPECT_EQ(timer_.next_deadline(clock_.now()).value, 8u);
}

TEST_F(TimerTest, GapTickIsEquivalentToPolling) {
  // The board may call tick(now) once at the deadline instead of once per
  // tick; the fire count and rearmed deadline must be identical.
  timer_.start(0, 50);
  clock_.advance(util::Ticks{50});
  timer_.tick(clock_.now());
  EXPECT_EQ(timer_.fires(0), 1u);
  EXPECT_EQ(timer_.next_deadline(clock_.now()).value, 100u);
  EXPECT_TRUE(gic_.is_pending(kVirtualTimerPpi, 0));
}

}  // namespace
}  // namespace mcs::platform
