#include "platform/uart.hpp"

#include <gtest/gtest.h>

#include "platform/board.hpp"

namespace mcs::platform {
namespace {

TEST(Uart, CapturesTransmittedBytes) {
  Uart uart("uart0", kUart0Base, nullptr, 0);
  ASSERT_TRUE(uart.mmio_write(kUartThr, 'h').is_ok());
  ASSERT_TRUE(uart.mmio_write(kUartThr, 'i').is_ok());
  EXPECT_EQ(uart.captured(), "hi");
  EXPECT_EQ(uart.total_bytes(), 2u);
}

TEST(Uart, LinesSplitOnNewline) {
  Uart uart("uart1", kUart1Base, nullptr, 0);
  for (const char c : std::string("a\nbb\nccc")) {
    (void)uart.mmio_write(kUartThr, static_cast<std::uint32_t>(c));
  }
  const auto lines = uart.lines();
  ASSERT_EQ(lines.size(), 2u);  // "ccc" has no terminating newline yet
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "bb");
}

TEST(Uart, BytesSinceHighWaterMark) {
  Uart uart("uart1", kUart1Base, nullptr, 0);
  (void)uart.mmio_write(kUartThr, 'x');
  const std::size_t mark = uart.total_bytes();
  (void)uart.mmio_write(kUartThr, 'y');
  (void)uart.mmio_write(kUartThr, 'z');
  EXPECT_EQ(uart.bytes_since(mark), 2u);
  EXPECT_EQ(uart.bytes_since(100), 0u);  // future mark is safe
}

TEST(Uart, LsrReportsTransmitterReady) {
  Uart uart("uart0", kUart0Base, nullptr, 0);
  auto lsr = uart.mmio_read(kUartLsr);
  ASSERT_TRUE(lsr.is_ok());
  EXPECT_TRUE(lsr.value() & kLsrThrEmpty);
  EXPECT_FALSE(lsr.value() & kLsrDataReady);
}

TEST(Uart, RxFifoRoundTrip) {
  Uart uart("uart0", kUart0Base, nullptr, 0);
  uart.feed_rx("ok");
  EXPECT_TRUE(uart.mmio_read(kUartLsr).value() & kLsrDataReady);
  EXPECT_EQ(uart.mmio_read(kUartRbr).value(), static_cast<std::uint32_t>('o'));
  EXPECT_EQ(uart.mmio_read(kUartRbr).value(), static_cast<std::uint32_t>('k'));
  EXPECT_EQ(uart.mmio_read(kUartRbr).value(), 0u);  // empty reads zero
}

TEST(Uart, TxInterruptRaisedWhenEnabled) {
  irq::Gic gic(2);
  Uart uart("uart1", kUart1Base, &gic, kUart1Irq);
  (void)gic.enable(kUart1Irq);
  (void)uart.mmio_write(kUartThr, 'a');
  EXPECT_FALSE(gic.is_pending(kUart1Irq, 0));  // IER disabled: no interrupt
  (void)uart.mmio_write(kUartIer, 1);
  (void)uart.mmio_write(kUartThr, 'b');
  EXPECT_TRUE(gic.is_pending(kUart1Irq, 0));
}

TEST(Uart, InvalidOffsetsRejected) {
  Uart uart("uart0", kUart0Base, nullptr, 0);
  EXPECT_FALSE(uart.mmio_read(0x3FC).is_ok());
  EXPECT_FALSE(uart.mmio_write(0x3FC, 0).is_ok());
  EXPECT_EQ(uart.mmio_write(kUartLsr, 0).code(), util::Code::EPerm);
}

TEST(Uart, ResetPreservesCaptureDropsRx) {
  Uart uart("uart0", kUart0Base, nullptr, 0);
  (void)uart.mmio_write(kUartThr, 'x');
  uart.feed_rx("pending");
  uart.reset();
  EXPECT_EQ(uart.captured(), "x");  // the experiment log survives
  EXPECT_FALSE(uart.mmio_read(kUartLsr).value() & kLsrDataReady);
}

TEST(Uart, ClearCaptureEmptiesLog) {
  Uart uart("uart0", kUart0Base, nullptr, 0);
  (void)uart.mmio_write(kUartThr, 'x');
  uart.clear_capture();
  EXPECT_TRUE(uart.captured().empty());
}

}  // namespace
}  // namespace mcs::platform
