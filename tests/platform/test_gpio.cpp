#include "platform/gpio.hpp"

#include <gtest/gtest.h>

#include "platform/board.hpp"

namespace mcs::platform {
namespace {

TEST(Gpio, LedStartsOff) {
  Gpio gpio("gpio", kGpioBase);
  EXPECT_FALSE(gpio.led_on());
  EXPECT_EQ(gpio.led_toggles(), 0u);
}

TEST(Gpio, SetLineDrivesLed) {
  Gpio gpio("gpio", kGpioBase);
  gpio.set_line(kGreenLedLine, true);
  EXPECT_TRUE(gpio.led_on());
  EXPECT_EQ(gpio.led_toggles(), 1u);
  gpio.set_line(kGreenLedLine, false);
  EXPECT_FALSE(gpio.led_on());
  EXPECT_EQ(gpio.led_toggles(), 2u);
}

TEST(Gpio, RedundantWriteIsNotAToggle) {
  Gpio gpio("gpio", kGpioBase);
  gpio.set_line(kGreenLedLine, true);
  gpio.set_line(kGreenLedLine, true);
  EXPECT_EQ(gpio.led_toggles(), 1u);
}

TEST(Gpio, OtherLinesDoNotCountAsLedToggles) {
  Gpio gpio("gpio", kGpioBase);
  gpio.set_line(3, true);
  EXPECT_EQ(gpio.led_toggles(), 0u);
  EXPECT_TRUE(gpio.line(3));
}

TEST(Gpio, MmioDataReadWrite) {
  Gpio gpio("gpio", kGpioBase);
  ASSERT_TRUE(gpio.mmio_write(kGpioData, 1u << kGreenLedLine).is_ok());
  EXPECT_TRUE(gpio.led_on());
  EXPECT_EQ(gpio.led_toggles(), 1u);
  EXPECT_EQ(gpio.mmio_read(kGpioData).value(), 1u << kGreenLedLine);
}

TEST(Gpio, MmioDirectionRegister) {
  Gpio gpio("gpio", kGpioBase);
  ASSERT_TRUE(gpio.mmio_write(kGpioDir, 0xFF).is_ok());
  EXPECT_EQ(gpio.mmio_read(kGpioDir).value(), 0xFFu);
}

TEST(Gpio, InvalidOffsetsRejected) {
  Gpio gpio("gpio", kGpioBase);
  EXPECT_FALSE(gpio.mmio_read(0x40).is_ok());
  EXPECT_FALSE(gpio.mmio_write(0x40, 1).is_ok());
}

TEST(Gpio, ResetKeepsToggleCounter) {
  Gpio gpio("gpio", kGpioBase);
  gpio.set_line(kGreenLedLine, true);
  gpio.reset();
  EXPECT_FALSE(gpio.led_on());
  EXPECT_EQ(gpio.led_toggles(), 1u);  // experiment counter survives reset
}

}  // namespace
}  // namespace mcs::platform
