// The distributed sweep's headline property, end to end: N worker
// processes splitting a grid over nothing but a shared logdir must
// produce the byte-identical comparison report a single-process
// SweepDriver renders — including when a worker dies mid-cell and its
// lease has to be stolen, and when workers race the same logdir
// concurrently. Equivalence is checked over every registered scenario
// on both boards, so no scenario's execution path escapes the
// lease/execute/resume plumbing.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "core/sweep_worker.hpp"

namespace mcs {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Every registered scenario on both boards: the widest grid the
/// simulator can express, so distributed equivalence covers every
/// scenario's execution path (including ones whose setup rejects a
/// board — those classify as harness errors identically everywhere).
fi::SweepSpec full_grid_spec(const std::string& log_dir) {
  fi::SweepSpec spec;
  spec.name = "distributed-grid";
  spec.scenarios = fi::ScenarioRegistry::instance().names();
  spec.rates = {100};
  spec.boards = {"bananapi", "quad-a7"};
  spec.runs = 2;
  spec.seed = 0xD157;
  spec.duration_ticks = 5'000;
  spec.log_dir = log_dir;
  return spec;
}

std::string report_of(const fi::SweepResult& result) {
  std::vector<analysis::ComparisonColumn> columns;
  for (const fi::SweepCellResult& cell : result.cells) {
    columns.push_back({cell.id, cell.aggregate});
  }
  return analysis::render_comparison_report(columns, "distributed-grid");
}

class DistributedSweepTest : public testing::Test {
 protected:
  void SetUp() override {
    // Unique per test (not just per fixture): parallel ctest runs each
    // test in its own process, so a shared path would let one test's
    // cleanup race another's live logdir.
    scratch_ = fs::path(testing::TempDir()) /
               (std::string("mcs_distributed_sweep_") +
                testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(scratch_);
    fs::create_directories(scratch_);

    // The single-process reference every distributed variant must match
    // byte for byte.
    const fs::path ref_dir = scratch_ / "reference";
    auto reference =
        fi::SweepDriver(full_grid_spec(ref_dir.string()), {2, true}).execute();
    ASSERT_TRUE(reference.is_ok()) << reference.status().to_string();
    cells_total_ = reference.value().cells.size();
    reference_report_ = report_of(reference.value());
    ASSERT_FALSE(reference_report_.empty());
  }
  void TearDown() override { fs::remove_all(scratch_); }

  std::string dir_for(const std::string& variant) const {
    return (scratch_ / variant).string();
  }

  /// No lease, claim scratch, or un-renamed artifact temp may survive a
  /// clean distributed run — only runlogs, sidecars, and the spec.
  void expect_clean_logdir(const std::string& log_dir) {
    for (const auto& entry : fs::directory_iterator(log_dir)) {
      const std::string name = entry.path().filename().string();
      EXPECT_TRUE(name == fi::kSweepSpecFileName ||
                  name.find(".runlog") != std::string::npos)
          << "unexpected logdir litter: " << name;
      EXPECT_EQ(name.find(".lease"), std::string::npos) << name;
      EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    }
  }

  fs::path scratch_;
  std::size_t cells_total_ = 0;
  std::string reference_report_;
};

TEST_F(DistributedSweepTest, TwoAndFourForkedWorkersMatchSingleProcess) {
  for (const unsigned workers : {2u, 4u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    const std::string log_dir =
        dir_for("fork" + std::to_string(workers));
    fi::DistributedSweepOptions options;
    options.workers = workers;
    // Each worker is its own process with its own sharded executor; one
    // executor thread per worker keeps the fork the only parallelism.
    auto result = fi::run_distributed_sweep(full_grid_spec(log_dir),
                                            {1, true}, options);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    // The coordinator merges from worker logs; with live workers its
    // backstop never executes anything itself.
    EXPECT_EQ(result.value().resumed, cells_total_);
    EXPECT_EQ(result.value().executed, 0u);
    EXPECT_EQ(report_of(result.value()), reference_report_);
    expect_clean_logdir(log_dir);

    // The spec file persisted for --join workers expands the same grid.
    auto spec = fi::read_spec_file(log_dir);
    ASSERT_TRUE(spec.is_ok());
    EXPECT_EQ(spec.value().scenarios, full_grid_spec(log_dir).scenarios);
  }
}

TEST_F(DistributedSweepTest, DeadWorkersStaleLeaseIsStolenAndReExecuted) {
  const std::string log_dir = dir_for("stale");
  const fi::SweepSpec spec = full_grid_spec(log_dir);
  fs::create_directories(log_dir);

  // Reconstruct what a worker killed mid-cell leaves behind: a lease
  // that stopped heartbeating (backdated past any TTL) and a partial,
  // uncommitted runlog for the cell it was executing.
  auto expanded = fi::SweepDriver(spec).expand();
  ASSERT_TRUE(expanded.is_ok());
  const std::string victim = expanded.value().front().name;
  auto dead = fi::CellLease::try_claim(log_dir, victim, "dead-worker", 60s);
  ASSERT_TRUE(dead.is_ok()) << dead.status().to_string();
  dead.value().abandon();
  const std::string lease = fi::CellLease::lease_path(log_dir, victim);
  fs::last_write_time(lease, fs::last_write_time(lease) - 600s);
  std::ofstream(fi::SweepDriver::cell_log_path(log_dir, victim))
      << "run 0: CORRECT detect=0 latency=0\n";  // incomplete: 1 of 2 runs

  fi::SweepWorkerConfig config;
  config.worker_id = "rescuer";
  config.lease_ttl = 100ms;
  fi::SweepWorker rescuer(spec, {1, true}, config);
  auto stats = rescuer.run();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_GE(stats.value().stolen, 1u);
  EXPECT_EQ(stats.value().executed, cells_total_);

  // The re-executed victim cell — and the whole merged grid — must be
  // indistinguishable from a run where nobody ever died.
  auto merged = fi::SweepDriver(spec, {4, true}).execute();
  ASSERT_TRUE(merged.is_ok());
  EXPECT_EQ(merged.value().resumed, cells_total_);
  EXPECT_EQ(merged.value().executed, 0u);
  EXPECT_EQ(report_of(merged.value()), reference_report_);
}

TEST_F(DistributedSweepTest, WorkerKilledMidFlightIsRescuedByAJoiningWorker) {
  const std::string log_dir = dir_for("killed");
  const fi::SweepSpec spec = full_grid_spec(log_dir);
  ASSERT_TRUE(fi::write_spec_file(spec).is_ok());

  // A real victim process: a worker with an effectively infinite TTL (so
  // only its death, not a lapsed heartbeat, can free its cells), killed
  // with SIGKILL mid-grid — no destructors, no lease release, exactly
  // the crash the protocol is for.
  std::cout.flush();
  std::cerr.flush();
  const pid_t victim = ::fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) {
    fi::SweepWorkerConfig config;
    config.worker_id = "victim";
    config.lease_ttl = std::chrono::milliseconds(3'600'000);
    fi::SweepWorker worker(spec, {1, true}, config);
    (void)worker.run();
    std::_Exit(0);
  }
  std::this_thread::sleep_for(150ms);
  ::kill(victim, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(victim, &wait_status, 0), victim);

  // The rescuer treats any existing lease as stale (ttl 0): it steals
  // whatever the victim held and finishes the grid.
  fi::SweepWorkerConfig config;
  config.worker_id = "rescuer";
  config.lease_ttl = 0ms;
  fi::SweepWorker rescuer(spec, {1, true}, config);
  auto stats = rescuer.run();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().executed + stats.value().observed, cells_total_);

  auto merged = fi::SweepDriver(spec, {2, true}).execute();
  ASSERT_TRUE(merged.is_ok());
  EXPECT_EQ(merged.value().resumed, cells_total_);
  EXPECT_EQ(report_of(merged.value()), reference_report_);
}

TEST_F(DistributedSweepTest, ConcurrentWorkersOnThreadsSplitWithoutOverlap) {
  // Two SweepWorkers racing the same logdir from threads of one process:
  // the filesystem can't tell threads from processes, so the lease files
  // must still hand each cell to exactly one of them.
  const std::string log_dir = dir_for("threads");
  const fi::SweepSpec spec = full_grid_spec(log_dir);

  fi::SweepWorkerStats stats_a;
  fi::SweepWorkerStats stats_b;
  util::Status status_a = util::ok_status();
  util::Status status_b = util::ok_status();
  const auto run_worker = [&spec](const std::string& id,
                                  fi::SweepWorkerStats& stats,
                                  util::Status& status) {
    fi::SweepWorkerConfig config;
    config.worker_id = id;
    fi::SweepWorker worker(spec, {1, true}, config);
    auto result = worker.run();
    if (result.is_ok()) {
      stats = result.value();
      status = util::ok_status();
    } else {
      status = result.status();
    }
  };
  std::thread a(run_worker, "ta", std::ref(stats_a), std::ref(status_a));
  std::thread b(run_worker, "tb", std::ref(stats_b), std::ref(status_b));
  a.join();
  b.join();
  ASSERT_TRUE(status_a.is_ok()) << status_a.to_string();
  ASSERT_TRUE(status_b.is_ok()) << status_b.to_string();

  // Every cell executed exactly once across the pair; with
  // wait_for_stragglers both workers saw the whole grid complete.
  EXPECT_EQ(stats_a.executed + stats_b.executed, cells_total_);
  EXPECT_EQ(stats_a.executed + stats_a.observed, cells_total_);
  EXPECT_EQ(stats_b.executed + stats_b.observed, cells_total_);

  auto merged = fi::SweepDriver(spec, {2, true}).execute();
  ASSERT_TRUE(merged.is_ok());
  EXPECT_EQ(merged.value().resumed, cells_total_);
  EXPECT_EQ(report_of(merged.value()), reference_report_);
  expect_clean_logdir(log_dir);
}

}  // namespace
}  // namespace mcs
