// Reuse equivalence for the pooled campaign executor.
//
// Checkout/reset-per-run may only ever be an *optimisation*: a campaign
// executed on pooled, reset-in-place testbeds must be bit-identical to
// the same campaign on build-per-run fresh construction — same run-log
// lines, same outcomes and details, same aggregates — on every scenario,
// every board variant and every thread count. This suite pins that, plus
// the sweep driver's resume byte-identity under pooling (the resume
// fingerprint path must be untouched by the reuse machinery).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/log_sink.hpp"
#include "analysis/report.hpp"
#include "core/executor.hpp"
#include "core/sweep.hpp"
#include "platform/board_registry.hpp"

namespace mcs::fi {
namespace {

struct CampaignCapture {
  CampaignResult result;
  std::string log_text;
  analysis::CampaignAggregate aggregate;
};

TestPlan reuse_plan(const std::string& scenario, const std::string& board) {
  TestPlan plan = find_scenario(scenario)->make_plan();
  plan.board = board;
  plan.runs = 4;
  plan.duration_ticks = 2'000;
  plan.phase = 2;  // inject early so failure states are actually reached
  return plan;
}

CampaignCapture run_campaign(const TestPlan& plan, bool reuse,
                             unsigned threads) {
  CampaignCapture capture;
  ExecutorConfig config;
  config.threads = threads;
  config.tick_policy = jh::TickPolicy::EventDriven;
  config.reuse_testbeds = reuse;
  CampaignExecutor executor(plan, config);
  analysis::LogSink sink;
  executor.set_progress([&sink](std::uint32_t index, const RunResult& run) {
    sink.record(index, run);
  });
  capture.result = executor.execute();
  capture.log_text = sink.text();
  capture.aggregate = sink.aggregate();
  return capture;
}

void expect_identical(const CampaignCapture& fresh, const CampaignCapture& pooled,
                      const std::string& label) {
  // Bit-identical run logs are the headline: every observable a run
  // reports is rendered into its log line.
  EXPECT_EQ(fresh.log_text, pooled.log_text) << label;
  ASSERT_EQ(fresh.result.runs.size(), pooled.result.runs.size()) << label;
  for (std::size_t i = 0; i < fresh.result.runs.size(); ++i) {
    const RunResult& x = fresh.result.runs[i];
    const RunResult& y = pooled.result.runs[i];
    const std::string at = label + ", run " + std::to_string(i);
    EXPECT_EQ(x.outcome, y.outcome) << at;
    EXPECT_EQ(x.detail, y.detail) << at;
    EXPECT_EQ(x.injections, y.injections) << at;
    EXPECT_EQ(x.flipped_bits, y.flipped_bits) << at;
    EXPECT_EQ(x.first_injection_tick, y.first_injection_tick) << at;
    EXPECT_EQ(x.failure_tick, y.failure_tick) << at;
    EXPECT_EQ(x.uart1_bytes, y.uart1_bytes) << at;
    EXPECT_EQ(x.led_toggles, y.led_toggles) << at;
    EXPECT_EQ(x.traps, y.traps) << at;
    EXPECT_EQ(x.hvcs, y.hvcs) << at;
    EXPECT_EQ(x.irqs, y.irqs) << at;
    EXPECT_EQ(x.create_result, y.create_result) << at;
    EXPECT_EQ(x.start_result, y.start_result) << at;
    EXPECT_EQ(x.cell_exists, y.cell_exists) << at;
    EXPECT_EQ(x.shutdown_reclaimed, y.shutdown_reclaimed) << at;
  }
  // Aggregates fold from the runs; compare the fields analytics consume.
  for (std::size_t o = 0; o < kNumOutcomes; ++o) {
    const auto outcome = static_cast<Outcome>(o);
    EXPECT_EQ(fresh.aggregate.distribution.count(outcome),
              pooled.aggregate.distribution.count(outcome))
        << label << ": " << outcome_name(outcome);
  }
  EXPECT_EQ(fresh.aggregate.injections, pooled.aggregate.injections) << label;
  EXPECT_EQ(fresh.aggregate.cell_failures, pooled.aggregate.cell_failures) << label;
  EXPECT_EQ(fresh.aggregate.reclaimed, pooled.aggregate.reclaimed) << label;
}

TEST(ReuseEquivalence, PooledMatchesFreshOnEveryScenarioBoardAndThreadCount) {
  // {scenario} × {board} × {1, 4, 8} threads. The fresh baseline is the
  // serial build-per-run engine; thread-count independence of the fresh
  // path is pinned by the tick-equivalence suite, so one baseline per
  // (scenario, board) suffices.
  for (const std::string& scenario : ScenarioRegistry::instance().names()) {
    if (scenario.rfind("test-", 0) == 0) continue;  // suite-local fixtures
    for (const std::string& board : {std::string("bananapi"), std::string("quad-a7")}) {
      const TestPlan plan = reuse_plan(scenario, board);
      const CampaignCapture fresh = run_campaign(plan, /*reuse=*/false, 1);
      for (const unsigned threads : {1u, 4u, 8u}) {
        const CampaignCapture pooled = run_campaign(plan, /*reuse=*/true, threads);
        expect_identical(fresh, pooled,
                         scenario + " on " + board + ", " +
                             std::to_string(threads) + " threads");
      }
    }
  }
}

TEST(ReuseEquivalence, PooledCampaignsExerciseFailingRuns) {
  // The identity above is only meaningful if the plans actually reach
  // the failure states whose residue a bad reset would leak.
  const TestPlan plan = reuse_plan("freertos-steady", "bananapi");
  const CampaignCapture pooled = run_campaign(plan, /*reuse=*/true, 1);
  const OutcomeDistribution dist = pooled.result.distribution();
  EXPECT_GT(dist.total() - dist.count(Outcome::Correct), 0u)
      << "plan produced no failures; tighten rate/phase";
}

TEST(ReuseEquivalence, CrossScenarioSlotReuseStaysIdentical) {
  // A pooled slot may be reused by a *different* scenario next (sweeps
  // interleave them): run campaign B on slots dirtied by campaign A and
  // require B to still match its fresh baseline.
  TestPlan first = reuse_plan("ivshmem-traffic", "quad-a7");
  TestPlan second = reuse_plan("dual-cell", "quad-a7");
  const CampaignCapture baseline = run_campaign(second, /*reuse=*/false, 1);
  (void)run_campaign(first, /*reuse=*/true, 1);   // dirty the pool
  const CampaignCapture pooled = run_campaign(second, /*reuse=*/true, 1);
  expect_identical(baseline, pooled, "dual-cell after ivshmem-traffic slots");
}

// --- sweep resume byte-identity under pooling -------------------------------

std::string render_sweep_report(const SweepResult& sweep) {
  std::vector<analysis::ComparisonColumn> columns;
  columns.reserve(sweep.cells.size());
  for (const SweepCellResult& cell : sweep.cells) {
    columns.push_back({cell.id, cell.aggregate});
  }
  return analysis::render_comparison_report(columns, "reuse-sweep");
}

SweepSpec small_sweep(const std::string& log_dir) {
  SweepSpec spec;
  spec.scenarios = {"freertos-steady", "inject-during-boot"};
  spec.rates = {100, 50};
  spec.runs = 3;
  spec.duration_ticks = 1'500;
  spec.log_dir = log_dir;
  return spec;
}

TEST(ReuseEquivalence, SweepResumeStaysByteIdenticalWithPooling) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "mcs_reuse_sweep";
  std::filesystem::remove_all(dir);

  ExecutorConfig pooled;
  pooled.threads = 2;
  pooled.reuse_testbeds = true;

  SweepDriver driver(small_sweep(dir.string()), pooled);
  auto first = driver.execute();
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  const std::string fresh_report = render_sweep_report(first.value());

  // Interrupt: drop one cell's log mid-line, delete another's, then
  // resume with a different thread count — the resumed report must be
  // byte-identical, and untouched cells must resume via the fingerprint
  // path (not re-execute).
  const std::string cut = (dir / "freertos-steady_r50.runlog").string();
  {
    std::ifstream in(cut);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str().substr(0, 40);
    std::ofstream out(cut, std::ios::trunc);
    out << text;
  }
  std::filesystem::remove(dir / "freertos-steady_r50.runlog.meta");
  std::filesystem::remove(dir / "inject-during-boot_r100.runlog");

  ExecutorConfig resumer = pooled;
  resumer.threads = 4;
  SweepDriver resume_driver(small_sweep(dir.string()), resumer);
  auto resumed = resume_driver.execute();
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value().resumed, 2u);
  EXPECT_EQ(resumed.value().executed, 2u);
  EXPECT_EQ(render_sweep_report(resumed.value()), fresh_report);

  // And a fresh-construction sweep of the same spec agrees byte for byte.
  const std::filesystem::path fresh_dir = dir / "fresh";
  ExecutorConfig fresh;
  fresh.threads = 2;
  fresh.reuse_testbeds = false;
  SweepDriver fresh_driver(small_sweep(fresh_dir.string()), fresh);
  auto unpooled = fresh_driver.execute();
  ASSERT_TRUE(unpooled.is_ok()) << unpooled.status().to_string();
  EXPECT_EQ(render_sweep_report(unpooled.value()), fresh_report);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mcs::fi
