// Golden-run integration: the fault-free baseline every experiment is
// compared against, including the paper's profiling step.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/testbed.hpp"

namespace mcs::fi {
namespace {

class GoldenRunTest : public ::testing::Test {
 protected:
  GoldenRunTest() {
    EXPECT_TRUE(testbed_.enable_hypervisor().is_ok());
    testbed_.boot_freertos_cell();
  }

  Testbed testbed_;
};

TEST_F(GoldenRunTest, OneMinuteGoldenRunStaysHealthy) {
  testbed_.run(kOneMinuteTicks);
  EXPECT_FALSE(testbed_.hypervisor().is_panicked());
  EXPECT_TRUE(testbed_.board().cpu(0).is_online());
  EXPECT_TRUE(testbed_.board().cpu(1).is_online());
  EXPECT_EQ(testbed_.freertos().data_errors(), 0u);
  EXPECT_EQ(testbed_.hypervisor().counters().unhandled_traps, 0u);
  EXPECT_EQ(testbed_.hypervisor().counters().panics, 0u);
}

TEST_F(GoldenRunTest, WorkloadThroughputIsSteady) {
  testbed_.run(kOneMinuteTicks);
  const auto& freertos = testbed_.freertos();
  // Blink every 500 ms → ~120 toggles per minute.
  EXPECT_NEAR(static_cast<double>(freertos.blink_count()), 120.0, 10.0);
  // Queue pair: one message per 20 ms → ~3000 per minute.
  EXPECT_GT(freertos.messages_validated(), 2'000u);
  // All 20 tasks got CPU time.
  for (std::size_t i = 0; i < freertos.kernel().task_count(); ++i) {
    EXPECT_GT(freertos.kernel().task(i).dispatches, 0u) << i;
  }
}

TEST_F(GoldenRunTest, ProfilingMatchesPaperCandidateSelection) {
  // The paper profiled golden runs and found three injectable functions;
  // irqchip_handle_irq dominates, arch_handle_trap and arch_handle_hvc
  // both see steady traffic.
  const auto profile = testbed_.profile_golden(kOneMinuteTicks);
  EXPECT_GT(profile.irqchip_entries, 10'000u);
  EXPECT_GT(profile.trap_entries, 100u);
  EXPECT_GT(profile.hvc_entries, 100u);
  // Medium-intensity rate 100 sees at least one injection per minute on
  // the non-root CPU — the calibration Figure 3 depends on.
  EXPECT_GE(profile.per_cpu_traps[1], 100u);
  EXPECT_LE(profile.per_cpu_traps[1], 400u);
}

TEST_F(GoldenRunTest, GoldenRunsAreBitIdentical) {
  Testbed other;
  ASSERT_TRUE(other.enable_hypervisor().is_ok());
  other.boot_freertos_cell();
  testbed_.run(5'000);
  other.run(5'000);
  EXPECT_EQ(testbed_.board().uart1().captured(),
            other.board().uart1().captured());
  EXPECT_EQ(testbed_.board().uart0().captured(),
            other.board().uart0().captured());
  EXPECT_EQ(testbed_.hypervisor().counters().traps,
            other.hypervisor().counters().traps);
}

TEST_F(GoldenRunTest, SerialLogIsParseable) {
  testbed_.run(2'000);
  // The framework's log file round-trips through the analytics parser.
  const std::string text = testbed_.board().log().to_text();
  EXPECT_FALSE(text.empty());
}

}  // namespace
}  // namespace mcs::fi
