// Snapshot equivalence for the warm-start campaign executor.
//
// Boot-once/restore-per-run may only ever be an *optimisation*: a
// campaign whose runs are provisioned by TestbedSnapshot restore must be
// bit-identical to the same campaign on build-per-run fresh construction
// and on checkout/reset-per-run pooling — same run-log lines, same
// outcomes and details, same aggregates — on every scenario, every board
// variant and every thread count. This suite pins that, checks the
// restore path is actually exercised (not silently falling back to
// reset + boot), and pins the sweep driver's interrupt/resume
// byte-identity with snapshots on and off.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/log_sink.hpp"
#include "analysis/report.hpp"
#include "core/executor.hpp"
#include "core/injection_target.hpp"
#include "core/sweep.hpp"
#include "core/testbed_pool.hpp"
#include "hypervisor/cell_config.hpp"

namespace mcs::fi {
namespace {

struct CampaignCapture {
  CampaignResult result;
  std::string log_text;
  analysis::CampaignAggregate aggregate;
};

TestPlan snapshot_plan(const std::string& scenario, const std::string& board) {
  TestPlan plan = find_scenario(scenario)->make_plan();
  plan.board = board;
  plan.runs = 4;
  plan.duration_ticks = 2'000;
  plan.phase = 2;  // inject early so failure states are actually reached
  return plan;
}

enum class Mode { Fresh, Pooled, Snapshot };

CampaignCapture run_campaign(const TestPlan& plan, Mode mode, unsigned threads) {
  CampaignCapture capture;
  ExecutorConfig config;
  config.threads = threads;
  config.tick_policy = jh::TickPolicy::EventDriven;
  config.reuse_testbeds = mode != Mode::Fresh;
  config.use_snapshots = mode == Mode::Snapshot;
  CampaignExecutor executor(plan, config);
  analysis::LogSink sink;
  executor.set_progress([&sink](std::uint32_t index, const RunResult& run) {
    sink.record(index, run);
  });
  capture.result = executor.execute();
  capture.log_text = sink.text();
  capture.aggregate = sink.aggregate();
  return capture;
}

void expect_identical(const CampaignCapture& fresh, const CampaignCapture& warm,
                      const std::string& label) {
  // Bit-identical run logs are the headline: every observable a run
  // reports is rendered into its log line.
  EXPECT_EQ(fresh.log_text, warm.log_text) << label;
  ASSERT_EQ(fresh.result.runs.size(), warm.result.runs.size()) << label;
  for (std::size_t i = 0; i < fresh.result.runs.size(); ++i) {
    const RunResult& x = fresh.result.runs[i];
    const RunResult& y = warm.result.runs[i];
    const std::string at = label + ", run " + std::to_string(i);
    EXPECT_EQ(x.outcome, y.outcome) << at;
    EXPECT_EQ(x.detail, y.detail) << at;
    EXPECT_EQ(x.injections, y.injections) << at;
    EXPECT_EQ(x.flipped_bits, y.flipped_bits) << at;
    EXPECT_EQ(x.first_injection_tick, y.first_injection_tick) << at;
    EXPECT_EQ(x.failure_tick, y.failure_tick) << at;
    EXPECT_EQ(x.uart1_bytes, y.uart1_bytes) << at;
    EXPECT_EQ(x.led_toggles, y.led_toggles) << at;
    EXPECT_EQ(x.traps, y.traps) << at;
    EXPECT_EQ(x.hvcs, y.hvcs) << at;
    EXPECT_EQ(x.irqs, y.irqs) << at;
    EXPECT_EQ(x.create_result, y.create_result) << at;
    EXPECT_EQ(x.start_result, y.start_result) << at;
    EXPECT_EQ(x.cell_exists, y.cell_exists) << at;
    EXPECT_EQ(x.shutdown_reclaimed, y.shutdown_reclaimed) << at;
  }
  for (std::size_t o = 0; o < kNumOutcomes; ++o) {
    const auto outcome = static_cast<Outcome>(o);
    EXPECT_EQ(fresh.aggregate.distribution.count(outcome),
              warm.aggregate.distribution.count(outcome))
        << label << ": " << outcome_name(outcome);
  }
  EXPECT_EQ(fresh.aggregate.injections, warm.aggregate.injections) << label;
  EXPECT_EQ(fresh.aggregate.cell_failures, warm.aggregate.cell_failures) << label;
  EXPECT_EQ(fresh.aggregate.reclaimed, warm.aggregate.reclaimed) << label;
}

TEST(SnapshotEquivalence, RestoredMatchesFreshOnEveryScenarioBoardAndThreadCount) {
  // {scenario} × {board} × {1, 4, 8} threads. The fresh baseline is the
  // serial build-per-run engine; thread-count independence of the fresh
  // path is pinned by the tick-equivalence suite, so one baseline per
  // (scenario, board) suffices.
  for (const std::string& scenario : ScenarioRegistry::instance().names()) {
    if (scenario.rfind("test-", 0) == 0) continue;  // suite-local fixtures
    for (const std::string& board : {std::string("bananapi"), std::string("quad-a7")}) {
      const TestPlan plan = snapshot_plan(scenario, board);
      const CampaignCapture fresh = run_campaign(plan, Mode::Fresh, 1);
      for (const unsigned threads : {1u, 4u, 8u}) {
        const CampaignCapture warm = run_campaign(plan, Mode::Snapshot, threads);
        expect_identical(fresh, warm,
                         scenario + " on " + board + ", " +
                             std::to_string(threads) + " threads");
      }
    }
  }
}

TEST(SnapshotEquivalence, RestoredMatchesPooledResetPerRun) {
  // The two warm modes must agree with each other too (they share slots
  // only within a mode: snapshot slots carry the scenario in their key).
  for (const std::string& scenario :
       {std::string("freertos-steady"), std::string("osek-cell")}) {
    const TestPlan plan = snapshot_plan(scenario, "bananapi");
    const CampaignCapture pooled = run_campaign(plan, Mode::Pooled, 2);
    const CampaignCapture warm = run_campaign(plan, Mode::Snapshot, 2);
    expect_identical(pooled, warm, scenario + " pooled vs snapshot");
  }
}

TEST(SnapshotEquivalence, SteadyScenariosActuallyRestore) {
  // The identity above is vacuous if every run silently falls back to
  // reset + boot: require the pool to report restores, and more restores
  // than full resets for a steady single-slot campaign (boot once,
  // restore plan.runs - 1 times).
  const TestbedPool::Stats before = TestbedPool::instance().stats();
  TestPlan plan = snapshot_plan("freertos-steady", "bananapi");
  plan.runs = 6;
  (void)run_campaign(plan, Mode::Snapshot, 1);
  const TestbedPool::Stats after = TestbedPool::instance().stats();
  EXPECT_GE(after.captures, before.captures + 1);
  EXPECT_GE(after.run_restores, before.run_restores + plan.runs - 1);
  EXPECT_GT(after.snapshot_bytes, 0u);
  EXPECT_GT(after.dirty_pages, 0u);
}

TEST(SnapshotEquivalence, InjectDuringBootNeverRestores) {
  // Scenarios that inject during boot are snapshot-ineligible: the
  // injected boot *is* the experiment. Every run must be a full reset.
  const TestbedPool::Stats before = TestbedPool::instance().stats();
  const TestPlan plan = snapshot_plan("inject-during-boot", "bananapi");
  (void)run_campaign(plan, Mode::Snapshot, 1);
  const TestbedPool::Stats after = TestbedPool::instance().stats();
  EXPECT_EQ(after.run_restores, before.run_restores);
  EXPECT_GE(after.run_resets, before.run_resets + plan.runs);
}

TEST(SnapshotEquivalence, SnapshotCampaignsExerciseFailingRuns) {
  // The identity is only meaningful if the plans actually reach the
  // failure states whose residue a bad restore would leak.
  const TestPlan plan = snapshot_plan("freertos-steady", "bananapi");
  const CampaignCapture warm = run_campaign(plan, Mode::Snapshot, 1);
  const OutcomeDistribution dist = warm.result.distribution();
  EXPECT_GT(dist.total() - dist.count(Outcome::Correct), 0u)
      << "plan produced no failures; tighten rate/phase";
}

TEST(SnapshotEquivalence, DomainFaultCampaignsRestoreIdentically) {
  // The unified injection layer: every non-register fault domain, fresh
  // build-per-run baseline vs snapshot restore at {1, 4, 8} threads. A
  // restore that leaked injected GIC/device/DRAM state into the next run
  // breaks the bit-identity here.
  for (const auto domain : {FaultDomain::Gic, FaultDomain::IrqDelivery,
                            FaultDomain::DeviceMmio, FaultDomain::Dram}) {
    TestPlan plan = snapshot_plan("freertos-steady", "bananapi");
    plan.fault_domain = domain;
    const std::string label(fault_domain_name(domain));
    const CampaignCapture fresh = run_campaign(plan, Mode::Fresh, 1);
    for (const unsigned threads : {1u, 4u, 8u}) {
      const CampaignCapture warm = run_campaign(plan, Mode::Snapshot, threads);
      expect_identical(fresh, warm,
                       label + " domain, " + std::to_string(threads) +
                           " threads");
    }
  }
}

TEST(SnapshotEquivalence, DomainTuningSelectsTheDomainThroughTheExecutor) {
  // The config-text path: `fault domain gic` in the cell tuning must be
  // equivalent to setting the plan field directly — same runs, same
  // domain-tagged log lines.
  TestPlan direct = snapshot_plan("freertos-steady", "bananapi");
  direct.fault_domain = FaultDomain::Gic;
  TestPlan tuned = snapshot_plan("freertos-steady", "bananapi");
  tuned.cell_tuning = "fault domain gic";
  const CampaignCapture a = run_campaign(direct, Mode::Fresh, 1);
  const CampaignCapture b = run_campaign(tuned, Mode::Fresh, 1);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_NE(a.log_text.find("domain=gic"), std::string::npos);

  // An unknown domain name in the tuning is a HarnessError, not UB.
  TestPlan bad = snapshot_plan("freertos-steady", "bananapi");
  bad.cell_tuning = "fault domain warp-core";
  const CampaignCapture broken = run_campaign(bad, Mode::Fresh, 1);
  EXPECT_EQ(broken.result.distribution().count(Outcome::HarnessError),
            broken.result.runs.size());
}

TEST(SnapshotEquivalence, DramFaultsNeverSurviveRestore) {
  // Satellite of the DRAM domain: injected bits go through
  // PhysicalMemory::write_u8, so they dirty-mark their pages and
  // Testbed::restore_snapshot() reverts every one of them.
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.run(500);
  testbed.capture_snapshot("dram-domain-revert");

  util::Xoshiro256 rng(9);
  std::vector<FaultRecord> flips;
  for (int i = 0; i < 32; ++i) {
    flips.push_back(inject_dram_fault(rng, testbed.board().dram(),
                                      jh::kFreeRtosRamBase, 0x10'0000));
  }
  // Every flip is visible pre-restore (walk in reverse: the last write
  // to an address wins).
  for (auto it = flips.rbegin(); it != flips.rend(); ++it) {
    EXPECT_EQ(testbed.board().dram().read_u8(it->addr).value(), it->after);
    break;
  }

  ASSERT_TRUE(testbed.restore_snapshot());
  // The first flip at each address recorded the pristine byte; after
  // restore, that is exactly what must be there again.
  std::vector<std::uint64_t> seen;
  for (const FaultRecord& flip : flips) {
    bool first = true;
    for (const std::uint64_t addr : seen) first = first && addr != flip.addr;
    if (!first) continue;
    seen.push_back(flip.addr);
    EXPECT_EQ(testbed.board().dram().read_u8(flip.addr).value(), flip.before)
        << std::hex << flip.addr;
  }
}

// --- sweep resume byte-identity with snapshots on and off -------------------

std::string render_sweep_report(const SweepResult& sweep) {
  std::vector<analysis::ComparisonColumn> columns;
  columns.reserve(sweep.cells.size());
  for (const SweepCellResult& cell : sweep.cells) {
    columns.push_back({cell.id, cell.aggregate});
  }
  return analysis::render_comparison_report(columns, "snapshot-sweep");
}

SweepSpec small_sweep(const std::string& log_dir) {
  SweepSpec spec;
  spec.scenarios = {"freertos-steady", "inject-during-boot"};
  spec.rates = {100, 50};
  spec.runs = 3;
  spec.duration_ticks = 1'500;
  spec.log_dir = log_dir;
  return spec;
}

TEST(SnapshotEquivalence, SweepResumeStaysByteIdenticalWithSnapshots) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "mcs_snapshot_sweep";
  std::filesystem::remove_all(dir);

  ExecutorConfig warm;
  warm.threads = 2;
  warm.reuse_testbeds = true;
  warm.use_snapshots = true;

  SweepDriver driver(small_sweep(dir.string()), warm);
  auto first = driver.execute();
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  const std::string warm_report = render_sweep_report(first.value());

  // Interrupt: drop one cell's log mid-line, delete another's, then
  // resume with a different thread count — the resumed report must be
  // byte-identical, and untouched cells must resume via the fingerprint
  // path (not re-execute).
  const std::string cut = (dir / "freertos-steady_r50.runlog").string();
  {
    std::ifstream in(cut);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str().substr(0, 40);
    std::ofstream out(cut, std::ios::trunc);
    out << text;
  }
  std::filesystem::remove(dir / "freertos-steady_r50.runlog.meta");
  std::filesystem::remove(dir / "inject-during-boot_r100.runlog");

  ExecutorConfig resumer = warm;
  resumer.threads = 4;
  SweepDriver resume_driver(small_sweep(dir.string()), resumer);
  auto resumed = resume_driver.execute();
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value().resumed, 2u);
  EXPECT_EQ(resumed.value().executed, 2u);
  EXPECT_EQ(render_sweep_report(resumed.value()), warm_report);

  // The same sweep with snapshots off agrees byte for byte.
  const std::filesystem::path nosnap_dir = dir / "nosnap";
  ExecutorConfig nosnap = warm;
  nosnap.use_snapshots = false;
  SweepDriver nosnap_driver(small_sweep(nosnap_dir.string()), nosnap);
  auto plain = nosnap_driver.execute();
  ASSERT_TRUE(plain.is_ok()) << plain.status().to_string();
  EXPECT_EQ(render_sweep_report(plain.value()), warm_report);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mcs::fi
