// End-to-end reproduction of the paper's §III experiments, asserted at
// the level the paper reports them. These tests ARE the claims of the
// reproduction; EXPERIMENTS.md cites their numbers.
#include <gtest/gtest.h>

#include "analysis/seooc.hpp"
#include "core/campaign.hpp"

namespace mcs::fi {
namespace {

// E2 — "High level intensity faults always return an 'invalid arguments'
// when we target both the arch_handle_hvc() and arch_handle_trap() in the
// context of the root cell; thus, the [non-root] cell will be not
// allocated at all, which is a correct (and expected) behavior."
class HighIntensityRoot : public ::testing::TestWithParam<jh::HookPoint> {};

TEST_P(HighIntensityRoot, AlwaysInvalidArgumentsCellNeverAllocated) {
  TestPlan plan = GetParam() == jh::HookPoint::ArchHandleHvc
                      ? paper_high_root_hvc_plan()
                      : paper_high_root_trap_plan();
  plan.runs = 10;
  plan.duration_ticks = 1'000;
  Campaign campaign(plan);
  const CampaignResult result = campaign.execute();
  const OutcomeDistribution dist = result.distribution();
  EXPECT_EQ(dist.count(Outcome::InvalidArguments), dist.total());
  for (const RunResult& run : result.runs) {
    EXPECT_FALSE(run.cell_exists);
    // The management sequence reports "invalid arguments": usually at
    // create; when the flipped code lands on another *valid* hypercall
    // (e.g. create→get_info, a one-bit neighbour in the table), the ioctl
    // "succeeds" with a bogus id and the subsequent start fails instead.
    EXPECT_TRUE(jh::is_invalid_arguments(run.create_result) ||
                jh::is_invalid_arguments(run.start_result));
    EXPECT_GE(run.injections, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothTargets, HighIntensityRoot,
                         ::testing::Values(jh::HookPoint::ArchHandleHvc,
                                           jh::HookPoint::ArchHandleTrap));

// E3 — "when we filter the injection to activate only when the CPU core 1
// is calling the function, the result is pretty peculiar, although wrong
// and inconsistent: the cell is allocated but [...] the non-root cell
// doesn't do anything, as attested by the USART output left completely
// blank. Nonetheless, it is considered running by Jailhouse, and the
// shutdown of the cell gives the control of the CPU and the non-root cell
// peripherals back to the root cell."
TEST(HighIntensityNonRoot, InconsistentAllocatedButDeadCell) {
  TestPlan plan = paper_high_nonroot_plan();
  plan.runs = 10;
  plan.duration_ticks = 1'000;
  Campaign campaign(plan);
  const CampaignResult result = campaign.execute();
  const OutcomeDistribution dist = result.distribution();
  EXPECT_EQ(dist.count(Outcome::InconsistentCell), dist.total());
  for (const RunResult& run : result.runs) {
    EXPECT_TRUE(run.cell_exists);               // allocated
    EXPECT_EQ(run.create_result, 1);            // create succeeded
    EXPECT_EQ(run.start_result, 0);             // start "succeeded"
    EXPECT_LT(run.uart1_bytes, 8u);             // USART effectively blank
    EXPECT_TRUE(run.shutdown_reclaimed);        // shutdown still recovers
  }
}

TEST(HighIntensityNonRoot, DestroyAndRecreateFixesTheCell) {
  // "only destroying the cell and reallocating it fixes the problem."
  TestPlan plan = paper_high_nonroot_plan();
  Campaign campaign(plan);
  (void)campaign;  // the sequence below replays one run manually
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  Injector injector(plan, 42, testbed.board().clock());
  injector.attach(testbed.hypervisor());
  testbed.boot_freertos_cell();
  ASSERT_EQ(testbed.board().cpu(1).power_state(), arch::PowerState::Failed);
  // Recover: detach faults, destroy, recreate — the cell must boot.
  injector.detach(testbed.hypervisor());
  testbed.destroy_freertos_cell();
  Testbed fresh;
  ASSERT_TRUE(fresh.enable_hypervisor().is_ok());
  fresh.boot_freertos_cell();
  fresh.run(100);
  EXPECT_TRUE(fresh.board().cpu(1).is_online());
  EXPECT_GT(fresh.board().uart1().total_bytes(), 0u);
}

// E1 / Figure 3 — medium intensity on the non-root trap path: the cell
// behaves correctly in the majority of runs, panic park is the dominant
// failure (~30 %), cpu park a limited share.
TEST(MediumIntensityFigure3, ShapeMatchesThePaper) {
  TestPlan plan = paper_medium_trap_plan();
  plan.runs = 60;  // enough for a stable shape in CI time
  Campaign campaign(plan);
  campaign.set_probe_recovery(false);  // speed: shape only
  const CampaignResult result = campaign.execute();
  const OutcomeDistribution dist = result.distribution();

  const double correct = dist.fraction(Outcome::Correct);
  const double panic = dist.fraction(Outcome::PanicPark);
  const double park = dist.fraction(Outcome::CpuPark);

  // Majority correct.
  EXPECT_GT(correct, 0.5);
  // Panic park ≈ 30 % (paper): allow a generous band.
  EXPECT_GT(panic, 0.15);
  EXPECT_LT(panic, 0.45);
  // CPU park limited but present over 60 runs... allow zero-to-small.
  EXPECT_LT(park, 0.20);
  // Nothing silent, nothing inconsistent in the medium scenario.
  EXPECT_EQ(dist.count(Outcome::SilentHang), 0u);
  EXPECT_EQ(dist.count(Outcome::InconsistentCell), 0u);
}

TEST(MediumIntensityFigure3, FailuresAreDetectedImmediately) {
  TestPlan plan = paper_medium_trap_plan();
  plan.runs = 20;
  Campaign campaign(plan);
  campaign.set_probe_recovery(false);
  const CampaignResult result = campaign.execute();
  for (const RunResult& run : result.runs) {
    if (run.outcome == Outcome::PanicPark || run.outcome == Outcome::CpuPark) {
      EXPECT_TRUE(run.failure_detected());
      // Register corruption is consumed by the handler in the same tick.
      EXPECT_LE(run.detection_latency(), 5u);
    }
  }
}

// E4 — the profiling rationale for excluding irqchip_handle_irq: "the
// only parameter passed is the IRQ vector number, and manumitting it
// means calling a different IRQ function, defaulting to an IRQ error,
// which is completely predictable and correct behavior."
TEST(IrqVectorCorruption, AlwaysPredictableNeverFatal) {
  TestPlan plan = irq_vector_plan();
  plan.runs = 15;
  plan.duration_ticks = 5'000;
  Campaign campaign(plan);
  const CampaignResult result = campaign.execute();
  const OutcomeDistribution dist = result.distribution();
  // Every run survives: corrupted vectors land in benign error paths.
  EXPECT_EQ(dist.count(Outcome::Correct), dist.total());
  for (const RunResult& run : result.runs) {
    EXPECT_GE(run.injections, 1u);
  }
}

// The assembled SEooC verdict over the three paper campaigns.
TEST(SeoocEvidence, PaperCampaignsYieldTheExpectedAssessment) {
  const auto shrink = [](TestPlan plan, std::uint32_t runs,
                         std::uint64_t ticks) {
    plan.runs = runs;
    plan.duration_ticks = ticks;
    return plan;
  };
  const CampaignResult medium =
      Campaign(shrink(paper_medium_trap_plan(), 25, kOneMinuteTicks)).execute();
  const CampaignResult high_root =
      Campaign(shrink(paper_high_root_hvc_plan(), 8, 1'000)).execute();
  const CampaignResult high_nonroot =
      Campaign(shrink(paper_high_nonroot_plan(), 8, 1'000)).execute();

  const analysis::SeoocReport report =
      analysis::build_seooc_report(medium, high_root, high_nonroot);
  ASSERT_EQ(report.claims.size(), 3u);
  EXPECT_EQ(report.claims[0].verdict, analysis::ClaimVerdict::Supported);
  EXPECT_EQ(report.claims[1].verdict, analysis::ClaimVerdict::Supported);
  EXPECT_EQ(report.claims[2].verdict, analysis::ClaimVerdict::Supported);
  EXPECT_FALSE(report.residual_risks.empty());  // the paper's findings
}

}  // namespace
}  // namespace mcs::fi
