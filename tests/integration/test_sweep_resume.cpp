// Resume trust chain, end to end: the analytics a live sharded campaign
// keeps must be exactly — bit for bit — what can be rebuilt from its
// persisted run log, for every scenario and any executor thread count;
// and a sweep interrupted mid-grid must resume from those logs into a
// byte-identical comparison report. These are the properties that make
// `SweepDriver` resume trustworthy rather than merely plausible.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/log_parser.hpp"
#include "analysis/report.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"

namespace mcs {
namespace {

/// Exact equality, doubles included: the round trip claims bit identity,
/// not closeness.
void expect_same_aggregate(const analysis::CampaignAggregate& a,
                           const analysis::CampaignAggregate& b,
                           const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(a.distribution.total(), b.distribution.total());
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    EXPECT_EQ(a.distribution.count(static_cast<fi::Outcome>(i)),
              b.distribution.count(static_cast<fi::Outcome>(i)));
  }
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.cell_failures, b.cell_failures);
  EXPECT_EQ(a.reclaimed, b.reclaimed);
  EXPECT_EQ(a.detection_latency.n(), b.detection_latency.n());
  EXPECT_EQ(a.detection_latency.mean(), b.detection_latency.mean());
  EXPECT_EQ(a.detection_latency.stddev(), b.detection_latency.stddev());
  EXPECT_EQ(a.detection_latency.min(), b.detection_latency.min());
  EXPECT_EQ(a.detection_latency.max(), b.detection_latency.max());
}

TEST(RoundTrip, LiveAggregateEqualsLogRebuildForEveryScenarioAndThreads) {
  for (const std::string& scenario :
       fi::ScenarioRegistry::instance().names()) {
    auto made = fi::ScenarioRegistry::instance().make(scenario);
    ASSERT_TRUE(made.is_ok()) << made.status().to_string();
    fi::TestPlan plan = made.value();
    plan.runs = 6;
    plan.seed = 0xABCDEF ^ std::hash<std::string>{}(scenario);

    for (const unsigned threads : {1u, 4u, 8u}) {
      fi::CampaignExecutor executor(plan, {threads, true});
      analysis::LogSink sink;  // retaining: text() is the log file body
      executor.set_progress(
          [&sink](std::uint32_t index, const fi::RunResult& run) {
            sink.record(index, run);
          });
      const fi::CampaignResult result = executor.execute();
      ASSERT_EQ(result.runs.size(), plan.runs);

      const analysis::ParsedRunLog parsed = analysis::parse_run_log(sink.text());
      EXPECT_EQ(parsed.malformed_lines, 0u);
      ASSERT_EQ(parsed.entries.size(), plan.runs);
      expect_same_aggregate(
          sink.aggregate(), analysis::aggregate_from_log(parsed),
          scenario + " @" + std::to_string(threads) + " threads");
    }
  }
}

TEST(RoundTrip, DuplicateProgressDeliveriesDoNotSkewTheAggregate) {
  fi::TestPlan plan = fi::paper_medium_trap_plan();
  plan.runs = 5;
  plan.duration_ticks = 2'000;

  fi::CampaignExecutor executor(plan, {2, true});
  analysis::LogSink clean;
  analysis::LogSink noisy;
  executor.set_progress(
      [&clean, &noisy](std::uint32_t index, const fi::RunResult& run) {
        clean.record(index, run);
        noisy.record(index, run);
        noisy.record(index, run);  // a resume replaying every run once more
      });
  (void)executor.execute();
  EXPECT_EQ(noisy.duplicates(), 5u);
  expect_same_aggregate(clean.aggregate(), noisy.aggregate(), "noisy replay");
  EXPECT_EQ(clean.text(), noisy.text());
}

// --- sweep resume -----------------------------------------------------------

fi::SweepSpec resume_spec(const std::string& log_dir) {
  fi::SweepSpec spec;
  spec.name = "resume-grid";
  spec.scenarios = {"freertos-steady", "inject-during-boot"};
  spec.rates = {100, 50};
  spec.runs = 3;
  spec.seed = 0x5EED;
  spec.duration_ticks = 20'000;
  spec.log_dir = log_dir;
  return spec;
}

std::string report_of(const fi::SweepResult& result) {
  std::vector<analysis::ComparisonColumn> columns;
  for (const fi::SweepCellResult& cell : result.cells) {
    columns.push_back({cell.id, cell.aggregate});
  }
  return analysis::render_comparison_report(columns, "resume-grid");
}

TEST(SweepResume, InterruptedSweepResumesToAByteIdenticalReport) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "mcs_sweep_resume";
  std::filesystem::remove_all(dir);

  // The uninterrupted reference run.
  auto fresh = fi::SweepDriver(resume_spec(dir.string()), {4, true}).execute();
  ASSERT_TRUE(fresh.is_ok()) << fresh.status().to_string();
  ASSERT_EQ(fresh.value().executed, 4u);
  const std::string fresh_report = report_of(fresh.value());

  // Simulate an interrupt: one cell's log truncated mid-line (the shape a
  // killed process leaves), another deleted outright.
  const std::string truncated =
      fi::SweepDriver::cell_log_path(dir.string(), "freertos-steady_r50");
  std::ifstream in(truncated);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string body = buffer.str();
  ASSERT_GT(body.size(), 20u);
  std::ofstream(truncated, std::ios::trunc)
      << body.substr(0, body.size() / 2);
  ASSERT_EQ(std::remove(fi::SweepDriver::cell_log_path(
                            dir.string(), "inject-during-boot_r100")
                            .c_str()),
            0);

  // Resume with a different thread count: the two damaged cells re-run,
  // the completed ones rebuild from their logs — and the report is
  // byte-identical to the uninterrupted run's.
  auto resumed =
      fi::SweepDriver(resume_spec(dir.string()), {1, true}).execute();
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value().resumed, 2u);
  EXPECT_EQ(resumed.value().executed, 2u);
  EXPECT_EQ(report_of(resumed.value()), fresh_report);
  for (std::size_t i = 0; i < fresh.value().cells.size(); ++i) {
    expect_same_aggregate(fresh.value().cells[i].aggregate,
                          resumed.value().cells[i].aggregate,
                          "cell " + fresh.value().cells[i].id);
  }
  expect_same_aggregate(fresh.value().total, resumed.value().total, "total");

  // A second re-invocation finds every cell complete and runs nothing.
  auto again = fi::SweepDriver(resume_spec(dir.string()), {8, true}).execute();
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().resumed, 4u);
  EXPECT_EQ(again.value().executed, 0u);
  EXPECT_EQ(report_of(again.value()), fresh_report);

  std::filesystem::remove_all(dir);
}

TEST(SweepResume, ChangedSpecReExecutesInsteadOfServingStaleLogs) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "mcs_sweep_staleness";
  std::filesystem::remove_all(dir);

  auto first = fi::SweepDriver(resume_spec(dir.string()), {2, true}).execute();
  ASSERT_TRUE(first.is_ok());
  ASSERT_EQ(first.value().executed, 4u);

  // Same grid shape, different seed: every cell's log is structurally
  // complete, but the sidecar fingerprint no longer matches the plan, so
  // nothing may resume — a resumed cell here would be another
  // experiment's data wearing this one's id.
  fi::SweepSpec reseeded = resume_spec(dir.string());
  reseeded.seed = 0xBAD5EED;
  auto second = fi::SweepDriver(reseeded, {2, true}).execute();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().resumed, 0u);
  EXPECT_EQ(second.value().executed, 4u);

  // And a changed duration re-executes too.
  fi::SweepSpec longer = resume_spec(dir.string());
  longer.duration_ticks = 25'000;
  auto third = fi::SweepDriver(longer, {2, true}).execute();
  ASSERT_TRUE(third.is_ok());
  EXPECT_EQ(third.value().resumed, 0u);

  std::filesystem::remove_all(dir);
}

TEST(SweepResume, TornMetaSidecarReExecutesInsteadOfBlockingResume) {
  // The failure the atomic sidecar write exists to prevent: a process
  // dying mid-meta-write used to be able to leave a truncated
  // fingerprint. Committing via temp + rename means the sidecar is
  // either absent or whole — and if damage does appear (disk surgery,
  // an older writer), the mismatch re-executes the cell rather than
  // wedging or resuming someone else's data.
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "mcs_sweep_torn_meta";
  std::filesystem::remove_all(dir);

  auto fresh = fi::SweepDriver(resume_spec(dir.string()), {2, true}).execute();
  ASSERT_TRUE(fresh.is_ok());
  const std::string fresh_report = report_of(fresh.value());

  const std::string log =
      fi::SweepDriver::cell_log_path(dir.string(), "freertos-steady_r100");
  const std::string meta = fi::cell_meta_path(log);
  std::ifstream meta_in(meta);
  std::string fingerprint;
  std::getline(meta_in, fingerprint);
  meta_in.close();
  ASSERT_GT(fingerprint.size(), 4u);
  std::ofstream(meta, std::ios::trunc)
      << fingerprint.substr(0, fingerprint.size() / 2);

  auto resumed =
      fi::SweepDriver(resume_spec(dir.string()), {2, true}).execute();
  ASSERT_TRUE(resumed.is_ok());
  EXPECT_EQ(resumed.value().executed, 1u);  // only the torn-meta cell
  EXPECT_EQ(resumed.value().resumed, 3u);
  EXPECT_EQ(report_of(resumed.value()), fresh_report);

  std::filesystem::remove_all(dir);
}

TEST(SweepResume, ParallelResumeIsByteIdenticalToSerialResume) {
  // The parallel resume pre-scan is a pure read; only its *scan* runs on
  // a thread pool, the fold stays serial in grid order. So resuming the
  // same populated logdir with the scan parallel or serial, at any
  // executor thread count, must render byte-identical reports — the
  // property the examples-smoke CI step diffs end to end.
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "mcs_sweep_par_resume";
  std::filesystem::remove_all(dir);

  auto fresh = fi::SweepDriver(resume_spec(dir.string()), {4, true}).execute();
  ASSERT_TRUE(fresh.is_ok()) << fresh.status().to_string();
  ASSERT_EQ(fresh.value().executed, 4u);
  const std::string fresh_report = report_of(fresh.value());

  for (const unsigned threads : {1u, 2u, 4u}) {
    for (const bool parallel : {true, false}) {
      SCOPED_TRACE(std::to_string(threads) + " threads, parallel_resume=" +
                   (parallel ? "on" : "off"));
      fi::ExecutorConfig config;
      config.threads = threads;
      config.parallel_resume = parallel;
      auto resumed =
          fi::SweepDriver(resume_spec(dir.string()), config).execute();
      ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
      EXPECT_EQ(resumed.value().resumed, 4u);
      EXPECT_EQ(resumed.value().executed, 0u);
      EXPECT_EQ(report_of(resumed.value()), fresh_report);
      for (std::size_t i = 0; i < fresh.value().cells.size(); ++i) {
        expect_same_aggregate(fresh.value().cells[i].aggregate,
                              resumed.value().cells[i].aggregate,
                              "cell " + fresh.value().cells[i].id);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepResume, InMemorySweepMatchesPersistedSweep) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "mcs_sweep_inmem";
  std::filesystem::remove_all(dir);

  fi::SweepSpec in_memory = resume_spec("");
  auto transient = fi::SweepDriver(in_memory, {2, true}).execute();
  auto persisted =
      fi::SweepDriver(resume_spec(dir.string()), {2, true}).execute();
  ASSERT_TRUE(transient.is_ok() && persisted.is_ok());
  ASSERT_EQ(transient.value().cells.size(), persisted.value().cells.size());
  for (std::size_t i = 0; i < transient.value().cells.size(); ++i) {
    expect_same_aggregate(transient.value().cells[i].aggregate,
                          persisted.value().cells[i].aggregate,
                          "cell " + transient.value().cells[i].id);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mcs
