// The isolation invariant the whole SEooC argument rests on, asserted as
// a property under randomized fault sweeps: whatever faults are injected
// into the non-root cell's hypervisor entries, the root cell's memory is
// never silently corrupted, and every system-level failure is an explicit
// detected panic.
#include <gtest/gtest.h>

#include "core/campaign.hpp"

namespace mcs::fi {
namespace {

/// Pattern written into root memory before the storm; verified after.
constexpr std::uint32_t kCanary = 0x5AFE'C0DE;
constexpr std::uint64_t kCanaryBase = 0x5000'0000;  // root RAM, not loaned
constexpr int kCanaryWords = 64;

void plant_canaries(Testbed& testbed) {
  auto& root = testbed.hypervisor().root_cell();
  for (int i = 0; i < kCanaryWords; ++i) {
    ASSERT_TRUE(root.address_space()
                    .write_u32(kCanaryBase + static_cast<std::uint64_t>(i) * 4,
                               kCanary + static_cast<std::uint32_t>(i))
                    .is_ok());
  }
}

bool canaries_intact(Testbed& testbed) {
  auto& root = testbed.hypervisor().root_cell();
  for (int i = 0; i < kCanaryWords; ++i) {
    auto value =
        root.address_space().read_u32(kCanaryBase + static_cast<std::uint64_t>(i) * 4);
    if (!value.is_ok() ||
        value.value() != kCanary + static_cast<std::uint32_t>(i)) {
      return false;
    }
  }
  return true;
}

class IsolationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsolationSweep, RootMemoryNeverSilentlyCorrupted) {
  TestPlan plan = paper_medium_trap_plan();
  plan.seed = GetParam();
  plan.rate = 20;       // much more aggressive than the paper
  plan.phase = 1;
  plan.duration_ticks = 5'000;

  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  plant_canaries(testbed);

  Injector injector(plan, plan.seed, testbed.board().clock());
  injector.attach(testbed.hypervisor());
  testbed.run(plan.duration_ticks);
  injector.detach(testbed.hypervisor());

  // Whatever happened — panic, park, or survival — the root cell's
  // memory is exactly as written.
  EXPECT_TRUE(canaries_intact(testbed));
  // And if the root cell stopped, it stopped *detectably*.
  if (!testbed.board().cpu(0).is_online()) {
    EXPECT_TRUE(testbed.hypervisor().is_panicked());
    EXPECT_FALSE(testbed.hypervisor().panic_reason().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsolationSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class NonRootConfinement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NonRootConfinement, CpuParkNeverTakesDownTheRoot) {
  // Force the CPU-park path deterministically: corrupt only the fault
  // address register (r2) on data aborts — unhandled MMIO, class 0x24.
  TestPlan plan = paper_medium_trap_plan();
  plan.seed = GetParam();
  plan.fault_registers = {arch::Reg::R2};
  plan.rate = 5;
  plan.phase = 1;
  plan.duration_ticks = 8'000;

  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  Injector injector(plan, plan.seed, testbed.board().clock());
  injector.attach(testbed.hypervisor());
  testbed.run(plan.duration_ticks);
  injector.detach(testbed.hypervisor());

  EXPECT_FALSE(testbed.hypervisor().is_panicked());
  EXPECT_TRUE(testbed.board().cpu(0).is_online());
  if (testbed.board().cpu(1).is_parked()) {
    // The park is logged with its class, and recovery works (§III).
    EXPECT_TRUE(testbed.board().log().contains("hypervisor", "unhandled trap"));
    EXPECT_TRUE(probe_shutdown_reclaims(testbed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonRootConfinement,
                         ::testing::Values(101, 202, 303, 404, 505));

class DeadRegisterSweep
    : public ::testing::TestWithParam<std::tuple<arch::Reg, std::uint64_t>> {};

TEST_P(DeadRegisterSweep, DeadRegisterFaultsAreAlwaysBenign) {
  // r5-r11 are architecturally dead at every hypervisor entry; campaigns
  // restricted to them must be indistinguishable from golden runs.
  const auto [reg, seed] = GetParam();
  TestPlan plan = paper_medium_trap_plan();
  plan.fault_registers = {reg};
  plan.seed = seed;
  plan.rate = 3;  // hammer every third call
  plan.phase = 1;
  plan.duration_ticks = 30'000;
  plan.runs = 1;

  Campaign campaign(plan);
  const CampaignResult result = campaign.execute();
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].outcome, Outcome::Correct);
  EXPECT_GE(result.runs[0].injections, 10u);
}

INSTANTIATE_TEST_SUITE_P(
    RegsAndSeeds, DeadRegisterSweep,
    ::testing::Combine(::testing::Values(arch::Reg::R5, arch::Reg::R6,
                                         arch::Reg::R7, arch::Reg::R8,
                                         arch::Reg::R9, arch::Reg::R10,
                                         arch::Reg::R11),
                       ::testing::Values(1u, 2u)));

TEST(IsolationInvariant, NonRootCellCannotManageCells) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  // A malicious/faulty guest in the non-root cell tries management.
  const jh::HvcResult destroy = testbed.hypervisor().guest_hypercall(
      1, static_cast<std::uint32_t>(jh::Hypercall::CellDestroy),
      testbed.freertos_cell_id());
  EXPECT_EQ(destroy, jh::kHvcEPerm);
  EXPECT_NE(testbed.freertos_cell(), nullptr);
}

TEST(IsolationInvariant, NonRootCellCannotReachRootMemory) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  jh::Cell* cell = testbed.freertos_cell();
  ASSERT_NE(cell, nullptr);
  // Direct stage-2-checked access to root RAM fails...
  EXPECT_FALSE(cell->address_space().write_u32(0x5000'0000, 0xEE11).is_ok());
}

}  // namespace
}  // namespace mcs::fi
