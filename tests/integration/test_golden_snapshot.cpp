// Golden snapshot regression tests: exact fixed-seed expectations.
//
// The whole stack is deterministic (one seeded RNG, discrete clock), so a
// fixed-seed campaign has an *exact* expected result. Any change to the
// simulation — scheduler order, trap traffic, handler semantics — shows up
// here first, which is precisely what a reproduction package needs: the
// figures must regenerate bit-identically or loudly fail.
#include <gtest/gtest.h>

#include "analysis/trace.hpp"
#include "core/campaign.hpp"
#include "core/scenario.hpp"
#include "hypervisor/ivshmem.hpp"

namespace mcs::fi {
namespace {

TEST(GoldenSnapshot, MediumCampaignExactDistribution) {
  TestPlan plan = paper_medium_trap_plan();
  plan.runs = 30;
  plan.seed = 0x5EED;
  Campaign campaign(plan);
  campaign.set_probe_recovery(false);
  const OutcomeDistribution dist = campaign.execute().distribution();
  // Exact values for seed 0x5EED; if the simulation changes semantics,
  // update these alongside EXPERIMENTS.md (that is the point).
  EXPECT_EQ(dist.total(), 30u);
  EXPECT_EQ(dist.count(Outcome::Correct) + dist.count(Outcome::PanicPark) +
                dist.count(Outcome::CpuPark),
            30u);
  EXPECT_GT(dist.count(Outcome::Correct), 10u);
  EXPECT_GT(dist.count(Outcome::PanicPark), 3u);

  // The strongest regression property: the same campaign replays to the
  // same per-run outcomes, twice.
  Campaign replay(plan);
  replay.set_probe_recovery(false);
  const CampaignResult again = replay.execute();
  const CampaignResult first = [&plan] {
    Campaign c(plan);
    c.set_probe_recovery(false);
    return c.execute();
  }();
  ASSERT_EQ(first.runs.size(), again.runs.size());
  for (std::size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(first.runs[i].outcome, again.runs[i].outcome) << i;
    EXPECT_EQ(first.runs[i].uart1_bytes, again.runs[i].uart1_bytes) << i;
  }
}

TEST(GoldenSnapshot, ManifestIsStableForFixedSeed) {
  TestPlan plan = paper_medium_trap_plan();
  plan.runs = 10;
  plan.seed = 42;
  Campaign a(plan);
  a.set_probe_recovery(false);
  Campaign b(plan);
  b.set_probe_recovery(false);
  EXPECT_EQ(analysis::campaign_manifest(a.execute()),
            analysis::campaign_manifest(b.execute()));
}

TEST(GoldenSnapshot, IvshmemTrafficCampaignReplaysExactly) {
  // The new scenario joins the replay contract: a fixed-seed campaign on
  // the quad-a7 board — two concurrent cells, staggered doorbell traffic,
  // irqchip injection — regenerates bit-identically, run for run.
  TestPlan plan = find_scenario("ivshmem-traffic")->make_plan();
  plan.runs = 6;
  plan.rate = 50;
  plan.phase = 2;
  plan.duration_ticks = 4'000;
  plan.seed = 0x5EED;
  Campaign a(plan);
  a.set_probe_recovery(false);
  Campaign b(plan);
  b.set_probe_recovery(false);
  const CampaignResult first = a.execute();
  const CampaignResult again = b.execute();
  ASSERT_EQ(first.runs.size(), again.runs.size());
  for (std::size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(first.runs[i].outcome, again.runs[i].outcome) << i;
    EXPECT_EQ(first.runs[i].detail, again.runs[i].detail) << i;
    EXPECT_EQ(first.runs[i].injections, again.runs[i].injections) << i;
    EXPECT_EQ(first.runs[i].uart1_bytes, again.runs[i].uart1_bytes) << i;
    EXPECT_EQ(first.runs[i].failure_tick, again.runs[i].failure_tick) << i;
  }
  EXPECT_EQ(analysis::campaign_manifest(first), analysis::campaign_manifest(again));
  // No run may fall out of the experiment: the harness itself holds.
  EXPECT_EQ(first.distribution().count(Outcome::HarnessError), 0u);
}

TEST(GoldenSnapshot, IvshmemDoorbellReachesGuest) {
  // End-to-end: root writes a message, rings the doorbell SGI, the
  // FreeRTOS image's on_irq counts it.
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.run(100);

  jh::Cell& root = testbed.hypervisor().root_cell();
  jh::Cell* cell = testbed.freertos_cell();
  ASSERT_NE(cell, nullptr);
  // ROOTSHARED setup: dedicate the window (carve it from whatever maps it
  // today), then map it into both cells.
  const mem::MemRegion shared = jh::make_ivshmem_region();
  (void)root.memory_map().carve_out_phys(shared.phys_start, shared.size);
  ASSERT_TRUE(root.memory_map().add_region(shared).is_ok());
  ASSERT_TRUE(cell->memory_map().add_region(shared).is_ok());

  jh::IvshmemChannel tx(root.address_space(), jh::kIvshmemBase, 1024);
  ASSERT_TRUE(tx.init().is_ok());
  ASSERT_TRUE(tx.send_text("parameters v2").is_ok());
  ASSERT_TRUE(tx.ring_doorbell(testbed.board().gic(), 0, 1).is_ok());

  const std::uint64_t doorbells_before = testbed.freertos().doorbells();
  testbed.run(5);
  EXPECT_EQ(testbed.freertos().doorbells(), doorbells_before + 1);

  jh::IvshmemChannel rx(cell->address_space(), jh::kIvshmemBase, 1024);
  auto message = rx.receive_text();
  ASSERT_TRUE(message.is_ok());
  EXPECT_EQ(message.value(), "parameters v2");
}

}  // namespace
}  // namespace mcs::fi
