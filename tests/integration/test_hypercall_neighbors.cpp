// The E2 caveat, exhaustively: what each one-bit corruption of the
// CellCreate hypercall code actually does. The paper reports "always
// invalid arguments"; the model shows *why* that holds for the management
// outcome (cell never allocated silently) even though a flipped code can
// land on another valid entry of the hypercall table.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "util/bitops.hpp"

namespace mcs::fi {
namespace {

class HypercallNeighborSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HypercallNeighborSweep, CorruptedCreateNeverAllocatesSilently) {
  const unsigned bit = GetParam();
  const std::uint32_t code =
      util::flip_bit(static_cast<std::uint32_t>(jh::Hypercall::CellCreate), bit);

  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  const std::size_t cells_before = testbed.hypervisor().cells().size();

  const jh::HvcResult result = testbed.hypervisor().guest_hypercall(
      0, code, static_cast<std::uint32_t>(kFreeRtosConfigAddr));

  // Whatever the corrupted code hit, the management invariant holds:
  // no cell was created, the hypervisor is alive, the root cell runs.
  EXPECT_EQ(testbed.hypervisor().cells().size(), cells_before);
  EXPECT_FALSE(testbed.hypervisor().is_panicked());
  EXPECT_TRUE(testbed.board().cpu(0).is_online());

  if (code >= jh::kNumHypercalls) {
    // Most flips leave the table entirely: the paper's EINVAL family.
    EXPECT_EQ(result, jh::kHvcENoSys);
  } else {
    // One-bit neighbours inside the table (disable=0, set_loadable=3,
    // get_info=5, cell_shutdown=9): every one either fails argument
    // validation or is a harmless query — by ABI construction, never a
    // silent cell allocation.
    switch (static_cast<jh::Hypercall>(code)) {
      case jh::Hypercall::Disable:
        EXPECT_EQ(result, 0);  // root-only disable succeeds, benignly
        break;
      case jh::Hypercall::HypervisorGetInfo:
        EXPECT_GT(result, 0);  // a query, not an allocation
        break;
      default:
        // Cell ops against the config-address-as-id: no such cell.
        EXPECT_TRUE(jh::is_invalid_arguments(result)) << result;
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, HypercallNeighborSweep,
                         ::testing::Range(0u, 32u));

}  // namespace
}  // namespace mcs::fi
