// Golden equivalence for the event-driven tick scheduler.
//
// The deadline scheduler may only leap spans in which nothing can
// execute, so a campaign run under TickPolicy::EventDriven must be
// *bit-identical* to the legacy per-tick loop: same run-log lines, same
// outcome distribution, same injection and failure timestamps. This
// suite pins that property on every registered scenario, and pins the
// executor's companion guarantee — thread-count-independent results —
// on the event-driven path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/log_sink.hpp"
#include "core/executor.hpp"
#include "core/monitor.hpp"
#include "hypervisor/watchdog.hpp"
#include "platform/board_registry.hpp"

namespace mcs::fi {
namespace {

struct CampaignCapture {
  CampaignResult result;
  std::string log_text;
};

TestPlan equivalence_plan(const std::string& scenario) {
  TestPlan plan = find_scenario(scenario)->make_plan();
  plan.runs = 5;
  plan.duration_ticks = 3'000;
  plan.phase = 2;  // inject early so failed runs leave long inert tails
  return plan;
}

CampaignCapture run_campaign(const TestPlan& plan, jh::TickPolicy policy,
                             unsigned threads) {
  CampaignCapture capture;
  CampaignExecutor executor(plan, {threads, /*probe_recovery=*/true, policy});
  analysis::LogSink sink;
  executor.set_progress([&sink](std::uint32_t index, const RunResult& run) {
    sink.record(index, run);
  });
  capture.result = executor.execute();
  capture.log_text = sink.text();
  return capture;
}

void expect_identical_runs(const CampaignCapture& a, const CampaignCapture& b,
                           const std::string& label) {
  EXPECT_EQ(a.log_text, b.log_text) << label;
  ASSERT_EQ(a.result.runs.size(), b.result.runs.size()) << label;
  for (std::size_t i = 0; i < a.result.runs.size(); ++i) {
    const RunResult& x = a.result.runs[i];
    const RunResult& y = b.result.runs[i];
    const std::string at = label + ", run " + std::to_string(i);
    EXPECT_EQ(x.outcome, y.outcome) << at;
    EXPECT_EQ(x.detail, y.detail) << at;
    EXPECT_EQ(x.injections, y.injections) << at;
    EXPECT_EQ(x.flipped_bits, y.flipped_bits) << at;
    EXPECT_EQ(x.first_injection_tick, y.first_injection_tick) << at;
    EXPECT_EQ(x.failure_tick, y.failure_tick) << at;
    EXPECT_EQ(x.uart1_bytes, y.uart1_bytes) << at;
    EXPECT_EQ(x.led_toggles, y.led_toggles) << at;
    EXPECT_EQ(x.traps, y.traps) << at;
    EXPECT_EQ(x.hvcs, y.hvcs) << at;
    EXPECT_EQ(x.irqs, y.irqs) << at;
    EXPECT_EQ(x.create_result, y.create_result) << at;
    EXPECT_EQ(x.start_result, y.start_result) << at;
    EXPECT_EQ(x.cell_exists, y.cell_exists) << at;
    EXPECT_EQ(x.shutdown_reclaimed, y.shutdown_reclaimed) << at;
  }
  for (std::size_t o = 0; o < kNumOutcomes; ++o) {
    const auto outcome = static_cast<Outcome>(o);
    EXPECT_EQ(a.result.distribution().count(outcome),
              b.result.distribution().count(outcome))
        << label << ": " << outcome_name(outcome);
  }
}

TEST(TickEquivalence, EventDrivenMatchesPerTickOnEveryScenario) {
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    if (name.rfind("test-", 0) == 0) continue;  // suite-local fixtures
    const TestPlan plan = equivalence_plan(name);
    const CampaignCapture legacy =
        run_campaign(plan, jh::TickPolicy::PerTick, 1);
    const CampaignCapture event =
        run_campaign(plan, jh::TickPolicy::EventDriven, 1);
    expect_identical_runs(legacy, event, "scenario " + name);
  }
}

TEST(TickEquivalence, EventDrivenCampaignsExerciseFailingRuns) {
  // The equivalence above is only meaningful if the plans actually drive
  // runs into the failure states whose tails the scheduler leaps.
  const TestPlan plan = equivalence_plan("freertos-steady");
  const CampaignCapture event =
      run_campaign(plan, jh::TickPolicy::EventDriven, 1);
  const OutcomeDistribution dist = event.result.distribution();
  EXPECT_GT(dist.total() - dist.count(Outcome::Correct), 0u)
      << "plan produced no failures; tighten rate/phase";
}

TEST(TickEquivalence, AggregateIdenticalAcrossOneFourEightThreads) {
  // {board} × {threads}: the executor's thread-count independence must
  // hold on every registered board variant, including the 4-CPU board
  // hosting two concurrent cells.
  for (const std::string& board : platform::BoardRegistry::instance().names()) {
    TestPlan plan = equivalence_plan("dual-cell");
    plan.board = board;
    const CampaignCapture one =
        run_campaign(plan, jh::TickPolicy::EventDriven, 1);
    const CampaignCapture four =
        run_campaign(plan, jh::TickPolicy::EventDriven, 4);
    const CampaignCapture eight =
        run_campaign(plan, jh::TickPolicy::EventDriven, 8);
    expect_identical_runs(one, four, board + ": threads 1 vs 4");
    expect_identical_runs(one, eight, board + ": threads 1 vs 8");
  }
  const TestPlan plan = equivalence_plan("freertos-steady");
  const CampaignCapture one = run_campaign(plan, jh::TickPolicy::EventDriven, 1);
  const CampaignCapture four = run_campaign(plan, jh::TickPolicy::EventDriven, 4);
  const CampaignCapture eight =
      run_campaign(plan, jh::TickPolicy::EventDriven, 8);
  expect_identical_runs(one, four, "threads 1 vs 4");
  expect_identical_runs(one, eight, "threads 1 vs 8");
}

TEST(TickEquivalence, WindowsCloseExactlyAtOpenPlusDuration) {
  // Deadline-driven windows: whatever a scenario does inside its window
  // (dual-cell's mid-window swap, ivshmem-traffic's staggered exchange
  // slices — phases with their own tick costs), the window must close
  // exactly duration ticks after the monitor opened it, under either
  // tick policy, on the scenario's own default board.
  for (const char* name : {"freertos-steady", "dual-cell", "ivshmem-traffic"}) {
    for (const jh::TickPolicy policy :
         {jh::TickPolicy::PerTick, jh::TickPolicy::EventDriven}) {
      const Scenario* scenario = find_scenario(name);
      ASSERT_NE(scenario, nullptr);
      TestPlan plan = scenario->make_plan();
      plan.duration_ticks = 2'500;
      Testbed testbed(platform::make_board(plan.board));
      testbed.set_tick_policy(policy);
      ASSERT_TRUE(scenario->setup(testbed).is_ok()) << name;
      scenario->boot(testbed);
      RunMonitor monitor;
      monitor.begin(testbed);
      scenario->observe(testbed, plan);
      EXPECT_EQ(testbed.board().now().value,
                monitor.window_open_tick() + plan.duration_ticks)
          << name;
    }
  }
}

TEST(TickEquivalence, WatchdogAlarmsLandOnIdenticalTicks) {
  // The watchdog's batched accounting must keep check rounds — and the
  // alarms they raise — on the same board ticks as per-tick accounting.
  std::vector<std::uint64_t> alarm_ticks[2];
  const jh::TickPolicy policies[2] = {jh::TickPolicy::PerTick,
                                      jh::TickPolicy::EventDriven};
  for (int mode = 0; mode < 2; ++mode) {
    Testbed testbed;
    testbed.set_tick_policy(policies[mode]);
    ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
    jh::CellWatchdog watchdog(testbed.hypervisor(), {});
    testbed.machine().install_watchdog(&watchdog);
    testbed.boot_freertos_cell();
    testbed.run(150);
    // Park every core and quiesce the timers: the remaining window is
    // fully inert, so the event-driven path leaps from watchdog check to
    // watchdog check — and must still observe identical boundaries.
    testbed.board().cpu(0).park("equivalence probe");
    testbed.board().cpu(1).park("equivalence probe");
    testbed.board().timer().stop(0);
    testbed.board().timer().stop(1);
    testbed.run(500);
    for (const jh::WatchdogEvent& event : watchdog.events()) {
      alarm_ticks[mode].push_back(event.tick);
    }
    testbed.machine().install_watchdog(nullptr);
  }
  EXPECT_EQ(alarm_ticks[0], alarm_ticks[1]);
  EXPECT_FALSE(alarm_ticks[0].empty());
}

}  // namespace
}  // namespace mcs::fi
