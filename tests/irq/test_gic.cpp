#include "irq/gic.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mcs::irq {
namespace {

TEST(Gic, ClassifiesLineKinds) {
  EXPECT_TRUE(is_sgi(0));
  EXPECT_TRUE(is_sgi(15));
  EXPECT_TRUE(is_ppi(16));
  EXPECT_TRUE(is_ppi(27));
  EXPECT_TRUE(is_spi(32));
  EXPECT_FALSE(is_spi(kNumIrqs));
  EXPECT_FALSE(is_sgi(16));
}

TEST(Gic, BankedLinesEnabledAtReset) {
  Gic gic(2);
  EXPECT_TRUE(gic.is_enabled(27));   // virtual-timer PPI
  EXPECT_TRUE(gic.is_enabled(0));    // SGI
  EXPECT_FALSE(gic.is_enabled(34));  // SPIs need explicit enabling
}

TEST(Gic, SpiDeliveryNeedsEnableAndTarget) {
  Gic gic(2);
  ASSERT_TRUE(gic.raise_spi(34).is_ok());
  EXPECT_EQ(gic.peek(0), kSpuriousIrq);  // disabled: not deliverable
  ASSERT_TRUE(gic.enable(34).is_ok());
  ASSERT_TRUE(gic.raise_spi(34).is_ok());
  EXPECT_EQ(gic.peek(0), 34u);  // default target cpu0
  ASSERT_TRUE(gic.set_target(34, 1).is_ok());
  ASSERT_TRUE(gic.raise_spi(34).is_ok());
  EXPECT_EQ(gic.peek(1), 34u);
}

TEST(Gic, AcknowledgeMovesToActiveAndEoiClears) {
  Gic gic(2);
  ASSERT_TRUE(gic.raise_ppi(1, 27).is_ok());
  EXPECT_TRUE(gic.is_pending(27, 1));
  const IrqId acked = gic.acknowledge(1);
  EXPECT_EQ(acked, 27u);
  EXPECT_FALSE(gic.is_pending(27, 1));
  EXPECT_TRUE(gic.is_active(27, 1));
  EXPECT_EQ(gic.peek(1), kSpuriousIrq);  // active blocks re-delivery
  ASSERT_TRUE(gic.end_of_interrupt(1, 27).is_ok());
  EXPECT_FALSE(gic.is_active(27, 1));
}

TEST(Gic, AcknowledgeEmptyIsSpurious) {
  Gic gic(2);
  EXPECT_EQ(gic.acknowledge(0), kSpuriousIrq);
  EXPECT_EQ(gic.acknowledge(-1), kSpuriousIrq);
  EXPECT_EQ(gic.acknowledge(7), kSpuriousIrq);  // absent cpu
}

TEST(Gic, EoiWithoutActiveFails) {
  Gic gic(2);
  EXPECT_EQ(gic.end_of_interrupt(0, 27).code(), util::Code::EInval);
}

TEST(Gic, PriorityOrdersDelivery) {
  Gic gic(1);
  ASSERT_TRUE(gic.enable(40).is_ok());
  ASSERT_TRUE(gic.enable(50).is_ok());
  ASSERT_TRUE(gic.set_priority(40, 0x80).is_ok());
  ASSERT_TRUE(gic.set_priority(50, 0x40).is_ok());  // more urgent
  ASSERT_TRUE(gic.raise_spi(40).is_ok());
  ASSERT_TRUE(gic.raise_spi(50).is_ok());
  EXPECT_EQ(gic.acknowledge(0), 50u);
  EXPECT_EQ(gic.acknowledge(0), 40u);
}

TEST(Gic, EqualPriorityLowestIdWins) {
  Gic gic(1);
  for (IrqId irq : {40u, 36u}) {
    ASSERT_TRUE(gic.enable(irq).is_ok());
    ASSERT_TRUE(gic.set_priority(irq, 0x80).is_ok());
    ASSERT_TRUE(gic.raise_spi(irq).is_ok());
  }
  EXPECT_EQ(gic.acknowledge(0), 36u);
}

TEST(Gic, PriorityMaskBlocksDelivery) {
  Gic gic(1);
  ASSERT_TRUE(gic.enable(40).is_ok());
  ASSERT_TRUE(gic.set_priority(40, 0x80).is_ok());
  ASSERT_TRUE(gic.raise_spi(40).is_ok());
  gic.set_priority_mask(0, 0x80);  // only priorities < 0x80 pass
  EXPECT_EQ(gic.peek(0), kSpuriousIrq);
  gic.set_priority_mask(0, 0x81);
  EXPECT_EQ(gic.peek(0), 40u);
}

TEST(Gic, SgiRoutesToTargetCpuOnly) {
  Gic gic(2);
  ASSERT_TRUE(gic.send_sgi(0, 1, 14).is_ok());
  EXPECT_EQ(gic.peek(0), kSpuriousIrq);
  EXPECT_EQ(gic.peek(1), 14u);
}

TEST(Gic, SgiValidation) {
  Gic gic(2);
  EXPECT_FALSE(gic.send_sgi(0, 1, 20).is_ok());  // PPI, not SGI
  EXPECT_FALSE(gic.send_sgi(0, 5, 1).is_ok());   // absent target
  EXPECT_FALSE(gic.send_sgi(-1, 1, 1).is_ok());
}

TEST(Gic, RoutingValidation) {
  Gic gic(2);
  EXPECT_FALSE(gic.set_target(16, 1).is_ok());   // PPIs not routable
  EXPECT_FALSE(gic.set_target(34, 3).is_ok());   // absent cpu
  EXPECT_FALSE(gic.enable(kNumIrqs).is_ok());    // out of range
  EXPECT_FALSE(gic.raise_spi(27).is_ok());       // PPI via SPI API
  EXPECT_FALSE(gic.raise_ppi(0, 34).is_ok());    // SPI via PPI API
}

TEST(Gic, PerCpuPendingIsIndependent) {
  Gic gic(2);
  ASSERT_TRUE(gic.raise_ppi(0, 27).is_ok());
  EXPECT_TRUE(gic.is_pending(27, 0));
  EXPECT_FALSE(gic.is_pending(27, 1));
}

TEST(Gic, ForcePendingMakesALineDeliverable) {
  // The fault-injection entry points: force_pending asserts a line as if
  // the distributor's ISPENDR had been corrupted, squash_pending drops
  // one as if the assertion were lost — both through the same pending
  // machinery guest-raised interrupts use, so the peek index stays
  // coherent.
  Gic gic(2);
  ASSERT_TRUE(gic.enable(34).is_ok());
  ASSERT_TRUE(gic.set_target(34, 1).is_ok());
  gic.force_pending(1, 34);
  EXPECT_TRUE(gic.is_pending(34, 1));
  EXPECT_EQ(gic.peek(1), 34u);
  gic.squash_pending(1, 34);
  EXPECT_FALSE(gic.is_pending(34, 1));
  EXPECT_EQ(gic.peek(1), kSpuriousIrq);
}

TEST(Gic, ForceAndSquashPendingBoundsCheck) {
  Gic gic(2);
  // Out-of-range lines and CPUs are ignored, never UB.
  gic.force_pending(-1, 34);
  gic.force_pending(2, 34);
  gic.force_pending(0, kNumIrqs);
  gic.squash_pending(-1, 34);
  gic.squash_pending(0, kNumIrqs);
  for (int cpu = 0; cpu < 2; ++cpu) {
    for (IrqId irq = 0; irq < kNumIrqs; ++irq) {
      EXPECT_FALSE(gic.is_pending(irq, cpu));
    }
  }
}

TEST(Gic, ForcedPendingSurvivesSnapshotRoundTrip) {
  Gic gic(2);
  ASSERT_TRUE(gic.enable(40).is_ok());
  gic.force_pending(0, 40);
  Gic::Snapshot snapshot;
  gic.snapshot_to(snapshot);
  gic.squash_pending(0, 40);
  EXPECT_FALSE(gic.is_pending(40, 0));
  gic.restore_from(snapshot);
  // restore_from rebuilds the pending index from line state, so a forced
  // assertion restores exactly like a guest-raised one.
  EXPECT_TRUE(gic.is_pending(40, 0));
  EXPECT_EQ(gic.peek(0), 40u);
}

TEST(Gic, ResetCpuDropsPendingAndActive) {
  Gic gic(2);
  ASSERT_TRUE(gic.raise_ppi(1, 27).is_ok());
  (void)gic.acknowledge(1);
  ASSERT_TRUE(gic.raise_ppi(1, 28).is_ok());
  gic.reset_cpu(1);
  EXPECT_FALSE(gic.is_active(27, 1));
  EXPECT_FALSE(gic.is_pending(28, 1));
  EXPECT_EQ(gic.peek(1), kSpuriousIrq);
}

TEST(Gic, DeliveredCounterTracksAcks) {
  Gic gic(1);
  ASSERT_TRUE(gic.raise_ppi(0, 27).is_ok());
  (void)gic.acknowledge(0);
  (void)gic.end_of_interrupt(0, 27);
  ASSERT_TRUE(gic.raise_ppi(0, 27).is_ok());
  (void)gic.acknowledge(0);
  EXPECT_EQ(gic.delivered(27), 2u);
}

TEST(Gic, EnableAssignsDefaultPriority) {
  Gic gic(1);
  EXPECT_EQ(gic.priority(40), kIdlePriority);
  ASSERT_TRUE(gic.enable(40).is_ok());
  EXPECT_EQ(gic.priority(40), kDefaultPriority);
}

// Property: after any sequence of raise/ack/EOI, a line is never both
// pending and active on the same CPU (the GIC state-machine invariant).
class GicStateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GicStateProperty, PendingAndActiveAreExclusivePerAck) {
  Gic gic(2);
  util::Xoshiro256 rng(GetParam());
  ASSERT_TRUE(gic.enable(34).is_ok());
  for (int step = 0; step < 500; ++step) {
    switch (rng.below(3)) {
      case 0: (void)gic.raise_ppi(static_cast<int>(rng.below(2)), 27); break;
      case 1: {
        const int cpu = static_cast<int>(rng.below(2));
        const IrqId acked = gic.acknowledge(cpu);
        if (acked != kSpuriousIrq) {
          ASSERT_FALSE(gic.is_pending(acked, cpu));
          ASSERT_TRUE(gic.is_active(acked, cpu));
        }
        break;
      }
      default: {
        const int cpu = static_cast<int>(rng.below(2));
        (void)gic.end_of_interrupt(cpu, 27);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GicStateProperty, ::testing::Values(1, 7, 42));

TEST(Gic, SnapshotRoundTripRestoresLineAndMaskState) {
  Gic gic(2);
  ASSERT_TRUE(gic.enable(34).is_ok());
  ASSERT_TRUE(gic.set_priority(34, 3).is_ok());
  ASSERT_TRUE(gic.raise_spi(34).is_ok());
  ASSERT_TRUE(gic.raise_ppi(1, 27).is_ok());
  gic.set_priority_mask(0, 5);
  const IrqId acked = gic.acknowledge(0);  // 34 moves pending → active
  ASSERT_EQ(acked, 34u);

  Gic::Snapshot snapshot;
  gic.snapshot_to(snapshot);

  // Mutate everything the snapshot covers.
  (void)gic.end_of_interrupt(0, 34);
  ASSERT_TRUE(gic.enable(40).is_ok());
  ASSERT_TRUE(gic.raise_spi(40).is_ok());
  gic.set_priority_mask(0, 0xFF);
  gic.restore_from(snapshot);

  EXPECT_TRUE(gic.is_active(34, 0));
  EXPECT_FALSE(gic.is_pending(34, 0));
  EXPECT_TRUE(gic.is_pending(27, 1));
  EXPECT_FALSE(gic.is_pending(40, 0));
  // The restored mask lets the re-acknowledge path behave as captured.
  (void)gic.end_of_interrupt(0, 34);
  EXPECT_FALSE(gic.is_active(34, 0));
}

// --- pending-bitmap fast path ----------------------------------------------

/// Reference for peek(): the pre-bitmap full scan over every line, using
/// only the public accessors. The bitmap walk must be observationally
/// identical under any traffic.
IrqId reference_peek(const Gic& gic, int cpu) {
  IrqId best = kSpuriousIrq;
  std::uint8_t best_priority = kIdlePriority;
  for (IrqId irq = 0; irq < kNumIrqs; ++irq) {
    if (!gic.is_pending(irq, cpu) || !gic.is_enabled(irq)) continue;
    if (gic.is_active(irq, cpu)) continue;
    if (gic.priority(irq) >= gic.priority_mask(cpu)) continue;
    if (gic.priority(irq) < best_priority) {
      best = irq;
      best_priority = gic.priority(irq);
    }
  }
  return best;
}

class GicPeekProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GicPeekProperty, BitmapPeekMatchesFullScanUnderRandomTraffic) {
  Gic gic(4);
  util::Xoshiro256 rng(GetParam());
  for (int step = 0; step < 2'000; ++step) {
    const auto irq = static_cast<IrqId>(rng.below(kNumIrqs + 8));  // some invalid
    const int cpu = static_cast<int>(rng.below(5)) - 1;            // -1 invalid
    switch (rng.below(10)) {
      case 0: (void)gic.enable(irq); break;
      case 1: (void)gic.disable(irq); break;
      case 2: (void)gic.set_priority(irq, static_cast<std::uint8_t>(rng.below(256))); break;
      case 3: (void)gic.set_target(irq, cpu); break;
      case 4: (void)gic.raise_spi(irq); break;
      case 5: (void)gic.raise_ppi(cpu, irq); break;
      case 6: (void)gic.send_sgi(cpu, static_cast<int>(rng.below(4)), irq); break;
      case 7: (void)gic.acknowledge(cpu); break;
      case 8: (void)gic.end_of_interrupt(cpu, irq); break;
      case 9:
        if (rng.below(8) == 0) {
          gic.reset_cpu(cpu);
        } else {
          gic.set_priority_mask(cpu, static_cast<std::uint8_t>(rng.below(256)));
        }
        break;
    }
    for (int check_cpu = 0; check_cpu < gic.num_cpus(); ++check_cpu) {
      ASSERT_EQ(gic.peek(check_cpu), reference_peek(gic, check_cpu))
          << "step " << step << " cpu " << check_cpu;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GicPeekProperty, ::testing::Values(3, 11, 1337));

TEST(Gic, SnapshotRestoreRebuildsThePendingIndex) {
  Gic gic(2);
  ASSERT_TRUE(gic.enable(34).is_ok());
  ASSERT_TRUE(gic.enable(100).is_ok());  // second bitmap word
  ASSERT_TRUE(gic.set_target(100, 1).is_ok());
  ASSERT_TRUE(gic.raise_spi(34).is_ok());
  ASSERT_TRUE(gic.raise_spi(100).is_ok());
  ASSERT_TRUE(gic.raise_ppi(0, 27).is_ok());

  Gic::Snapshot snapshot;
  gic.snapshot_to(snapshot);

  // Scramble, then restore into the *same* instance: peek must be driven
  // by the captured pending set, not the scrambled index.
  while (gic.acknowledge(0) != kSpuriousIrq) {
  }
  while (gic.acknowledge(1) != kSpuriousIrq) {
  }
  ASSERT_TRUE(gic.raise_spi(35).is_ok());
  gic.restore_from(snapshot);
  EXPECT_EQ(gic.peek(0), reference_peek(gic, 0));
  EXPECT_EQ(gic.peek(1), reference_peek(gic, 1));
  EXPECT_FALSE(gic.is_pending(35, 0));
  EXPECT_EQ(gic.acknowledge(1), 100u);  // high-word pending bit survived

  // And into a fresh instance (the warm-start restore path).
  Gic fresh(2);
  fresh.restore_from(snapshot);
  EXPECT_EQ(fresh.peek(0), reference_peek(fresh, 0));
  EXPECT_TRUE(fresh.is_pending(34, 0));
  EXPECT_TRUE(fresh.is_pending(100, 1));
  EXPECT_TRUE(fresh.is_pending(27, 0));
}

TEST(Gic, RaiseFastPathsKeepValidationDiagnostics) {
  Gic gic(2);
  // The valid-wiring fast paths skip Status construction entirely; the
  // fallback must still produce the original diagnostics in the original
  // check order.
  EXPECT_EQ(gic.raise_spi(kNumIrqs).message(),
            "irq id out of range: " + std::to_string(kNumIrqs));
  EXPECT_EQ(gic.raise_spi(27).message(), "not an SPI");  // in-range PPI

  EXPECT_EQ(gic.raise_ppi(5, kNumIrqs + 1).message(),  // irq checked first
            "irq id out of range: " + std::to_string(kNumIrqs + 1));
  EXPECT_EQ(gic.raise_ppi(5, 27).message(), "cpu out of range: 5");
  EXPECT_EQ(gic.raise_ppi(-1, 27).message(), "cpu out of range: -1");
  EXPECT_EQ(gic.raise_ppi(0, 34).message(), "not a PPI");

  EXPECT_EQ(gic.send_sgi(9, 0, 3).message(), "cpu out of range: 9");
  EXPECT_EQ(gic.send_sgi(0, -2, 3).message(), "cpu out of range: -2");
  EXPECT_EQ(gic.send_sgi(0, 1, 27).message(), "not an SGI");
}

}  // namespace
}  // namespace mcs::irq
