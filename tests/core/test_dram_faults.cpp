#include <gtest/gtest.h>

#include "core/injection_target.hpp"
#include "core/testbed.hpp"
#include "guests/freertos_image.hpp"
#include "hypervisor/cell_config.hpp"

namespace mcs::fi {
namespace {

TEST(DramFault, FlipsExactlyOneBitInWindow) {
  mem::PhysicalMemory dram;
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    const FaultRecord record =
        inject_dram_fault(rng, dram, mem::kDramBase, 0x1000);
    EXPECT_EQ(record.domain, FaultDomain::Dram);
    EXPECT_GE(record.addr, mem::kDramBase);
    EXPECT_LT(record.addr, mem::kDramBase + 0x1000);
    EXPECT_EQ(record.after, record.before ^ (1u << record.bit));
    EXPECT_EQ(dram.read_u8(record.addr).value(), record.after);
  }
}

TEST(DramFault, DoubleFlipOfSameBitRestores) {
  mem::PhysicalMemory dram;
  (void)dram.write_u8(mem::kDramBase, 0xA5);
  util::Xoshiro256 rng(1);
  const FaultRecord first = inject_dram_fault(rng, dram, mem::kDramBase, 1);
  // Window is a single byte; undo by writing the recorded before-value.
  (void)dram.write_u8(first.addr, static_cast<std::uint8_t>(first.before));
  EXPECT_EQ(dram.read_u8(mem::kDramBase).value(), 0xA5);
}

TEST(DramFault, DeterministicForSeed) {
  mem::PhysicalMemory dram_a, dram_b;
  util::Xoshiro256 rng_a(99), rng_b(99);
  for (int i = 0; i < 50; ++i) {
    const FaultRecord ra =
        inject_dram_fault(rng_a, dram_a, mem::kDramBase, 0x10000);
    const FaultRecord rb =
        inject_dram_fault(rng_b, dram_b, mem::kDramBase, 0x10000);
    EXPECT_EQ(ra.addr, rb.addr);
    EXPECT_EQ(ra.bit, rb.bit);
  }
}

TEST(DramFault, WritesMarkPagesDirty) {
  mem::PhysicalMemory dram;
  const std::uint64_t dirty_before = dram.dirty_pages();
  util::Xoshiro256 rng(3);
  (void)inject_dram_fault(rng, dram, mem::kDramBase, 0x1000);
  // The flip went through write_u8, so the touched page is dirty — the
  // property snapshot restore relies on to revert injected DRAM state.
  EXPECT_GT(dram.dirty_pages(), dirty_before);
}

TEST(MemoryFaultCampaign, TargetedFlipIsDetectedByDualStorage) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.run(500);  // seed the state block
  ASSERT_EQ(testbed.freertos().data_errors(), 0u);

  // Corrupt one primary hash word directly in DRAM.
  const std::uint64_t victim = guest::FreeRtosImage::kStateBase + 3 * 4;
  auto before = testbed.board().dram().read_u32(victim);
  ASSERT_TRUE(before.is_ok());
  ASSERT_NE(before.value(), 0u);  // state was seeded
  (void)testbed.board().dram().write_u32(victim, before.value() ^ 0x40);

  testbed.run(2'000);
  EXPECT_GE(testbed.freertos().data_errors(), 1u);
  EXPECT_NE(testbed.board().uart1().captured().find("MISMATCH"),
            std::string::npos);
  // Detection, not crash: the cell keeps running.
  EXPECT_TRUE(testbed.board().cpu(1).is_online());
  EXPECT_FALSE(testbed.hypervisor().is_panicked());
}

TEST(MemoryFaultCampaign, ColdMemoryFlipsAreAbsorbed) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.run(500);
  // Flip bits far away from any live state.
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    (void)inject_dram_fault(rng, testbed.board().dram(),
                            jh::kFreeRtosRamBase + 0x80'0000, 0x10'0000);
  }
  testbed.run(2'000);
  EXPECT_EQ(testbed.freertos().data_errors(), 0u);
  EXPECT_TRUE(testbed.board().cpu(1).is_online());
}

TEST(MemoryFaultCampaign, WorkloadRecoversAfterDetection) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.run(500);
  const std::uint64_t victim = guest::FreeRtosImage::kShadowBase + 7 * 4;
  auto word = testbed.board().dram().read_u32(victim);
  ASSERT_TRUE(word.is_ok());
  (void)testbed.board().dram().write_u32(victim, word.value() ^ 1);
  testbed.run(1'000);
  const std::uint64_t errors_at_detection = testbed.freertos().data_errors();
  EXPECT_GE(errors_at_detection, 1u);
  // The task rewrites both copies; no further mismatches accumulate.
  testbed.run(3'000);
  EXPECT_EQ(testbed.freertos().data_errors(), errors_at_detection);
}

}  // namespace
}  // namespace mcs::fi
