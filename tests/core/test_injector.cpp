#include "core/injector.hpp"

#include <gtest/gtest.h>

namespace mcs::fi {
namespace {

using arch::Reg;

arch::EntryFrame frame_on_cpu(int cpu) {
  arch::Cpu cpu_model(cpu);
  return cpu_model.make_trap_frame(
      arch::Syndrome::make(arch::ExceptionClass::Hvc, 0));
}

class InjectorTest : public ::testing::Test {
 protected:
  TestPlan plan_ = [] {
    TestPlan plan;
    plan.target = jh::HookPoint::ArchHandleTrap;
    plan.rate = 10;
    plan.cpu_filter = -1;
    return plan;
  }();
  util::SimClock clock_;
};

TEST_F(InjectorTest, CountsOnlyTargetPoint) {
  Injector injector(plan_, 1, clock_);
  arch::EntryFrame frame = frame_on_cpu(0);
  injector.on_entry(jh::HookPoint::ArchHandleHvc, frame);
  injector.on_entry(jh::HookPoint::IrqchipHandleIrq, frame);
  EXPECT_EQ(injector.filtered_calls(), 0u);
  injector.on_entry(jh::HookPoint::ArchHandleTrap, frame);
  EXPECT_EQ(injector.filtered_calls(), 1u);
}

TEST_F(InjectorTest, CpuFilterRestrictsCounting) {
  plan_.cpu_filter = 1;
  Injector injector(plan_, 1, clock_);
  arch::EntryFrame frame0 = frame_on_cpu(0);
  arch::EntryFrame frame1 = frame_on_cpu(1);
  injector.on_entry(jh::HookPoint::ArchHandleTrap, frame0);
  EXPECT_EQ(injector.filtered_calls(), 0u);
  injector.on_entry(jh::HookPoint::ArchHandleTrap, frame1);
  EXPECT_EQ(injector.filtered_calls(), 1u);
}

TEST_F(InjectorTest, InjectsEveryNthCall) {
  Injector injector(plan_, 1, clock_);
  for (int call = 1; call <= 35; ++call) {
    arch::EntryFrame frame = frame_on_cpu(0);
    injector.on_entry(jh::HookPoint::ArchHandleTrap, frame);
  }
  // rate 10, phase 0 → injections at calls 10, 20, 30.
  EXPECT_EQ(injector.injections(), 3u);
  EXPECT_EQ(injector.records()[0].call_index, 10u);
  EXPECT_EQ(injector.records()[1].call_index, 20u);
  EXPECT_EQ(injector.records()[2].call_index, 30u);
}

TEST_F(InjectorTest, PhaseShiftsFirstInjection) {
  plan_.phase = 3;
  Injector injector(plan_, 1, clock_);
  for (int call = 1; call <= 25; ++call) {
    arch::EntryFrame frame = frame_on_cpu(0);
    injector.on_entry(jh::HookPoint::ArchHandleTrap, frame);
  }
  // injections at calls 3, 13, 23.
  ASSERT_EQ(injector.injections(), 3u);
  EXPECT_EQ(injector.records()[0].call_index, 3u);
}

TEST_F(InjectorTest, InjectionMutatesTheFrame) {
  plan_.rate = 1;
  plan_.phase = 1;
  Injector injector(plan_, 42, clock_);
  arch::EntryFrame frame = frame_on_cpu(0);
  const arch::RegisterBank before = frame.bank;
  injector.on_entry(jh::HookPoint::ArchHandleTrap, frame);
  ASSERT_EQ(injector.injections(), 1u);
  const FlipRecord& flip = injector.records()[0].flips[0];
  EXPECT_EQ(before[flip.reg], flip.before);
  EXPECT_EQ(frame.bank[flip.reg], flip.after);
}

TEST_F(InjectorTest, DisarmedInjectorCountsButDoesNotInject) {
  plan_.rate = 1;
  plan_.phase = 1;
  Injector injector(plan_, 1, clock_);
  injector.set_armed(false);
  arch::EntryFrame frame = frame_on_cpu(0);
  const arch::RegisterBank before = frame.bank;
  injector.on_entry(jh::HookPoint::ArchHandleTrap, frame);
  EXPECT_EQ(injector.filtered_calls(), 1u);
  EXPECT_EQ(injector.injections(), 0u);
  for (std::size_t i = 0; i < arch::kNumGeneralRegs; ++i) {
    EXPECT_EQ(frame.bank.get(static_cast<Reg>(i)),
              before.get(static_cast<Reg>(i)));
  }
}

TEST_F(InjectorTest, RecordsCarryTimestampAndCpu) {
  plan_.rate = 1;
  plan_.phase = 1;
  clock_.advance(util::Ticks{777});
  Injector injector(plan_, 1, clock_);
  arch::EntryFrame frame = frame_on_cpu(1);
  injector.on_entry(jh::HookPoint::ArchHandleTrap, frame);
  ASSERT_EQ(injector.injections(), 1u);
  EXPECT_EQ(injector.records()[0].tick, 777u);
  EXPECT_EQ(injector.records()[0].cpu, 1);
  EXPECT_EQ(injector.first_injection_tick(), 777u);
}

TEST_F(InjectorTest, SameSeedReplaysIdentically) {
  plan_.rate = 2;
  auto run_once = [&](std::uint64_t seed) {
    Injector injector(plan_, seed, clock_);
    std::vector<std::pair<Reg, unsigned>> flips;
    for (int call = 0; call < 20; ++call) {
      arch::EntryFrame frame = frame_on_cpu(0);
      injector.on_entry(jh::HookPoint::ArchHandleTrap, frame);
    }
    for (const auto& record : injector.records()) {
      for (const auto& flip : record.flips) flips.push_back({flip.reg, flip.bit});
    }
    return flips;
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_NE(run_once(123), run_once(456));
}

TEST_F(InjectorTest, AttachDetachHypervisorHook) {
  platform::BananaPiBoard board;
  jh::Hypervisor hv(board);
  ASSERT_TRUE(hv.enable(jh::make_root_cell_config()).is_ok());
  plan_.rate = 1;
  plan_.phase = 1;
  plan_.fault_registers = {Reg::R5};  // dead register: no behavioural change
  Injector injector(plan_, 1, board.clock());
  injector.attach(hv);
  (void)hv.guest_hypercall(
      0, static_cast<std::uint32_t>(jh::Hypercall::HypervisorGetInfo));
  EXPECT_EQ(injector.injections(), 1u);
  injector.detach(hv);
  (void)hv.guest_hypercall(
      0, static_cast<std::uint32_t>(jh::Hypercall::HypervisorGetInfo));
  EXPECT_EQ(injector.injections(), 1u);  // no further injections
}

}  // namespace
}  // namespace mcs::fi
