#include "core/monitor.hpp"

#include <gtest/gtest.h>

namespace mcs::fi {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() {
    EXPECT_TRUE(testbed_.enable_hypervisor().is_ok());
  }

  void boot_and_begin() {
    testbed_.boot_freertos_cell();
    monitor_.begin(testbed_);
  }

  Testbed testbed_;
  RunMonitor monitor_;
};

TEST_F(MonitorTest, HealthyRunClassifiesCorrect) {
  boot_and_begin();
  testbed_.run(2'000);
  const RunResult result = monitor_.finish(testbed_);
  EXPECT_EQ(result.outcome, Outcome::Correct);
  EXPECT_GE(result.uart1_bytes, RunMonitor::kLiveOutputThreshold);
  EXPECT_TRUE(result.cell_exists);
  EXPECT_EQ(result.failure_tick, 0u);
}

TEST_F(MonitorTest, PanicClassifiesPanicPark) {
  boot_and_begin();
  arch::EntryFrame frame = testbed_.board().cpu(0).make_trap_frame(
      arch::Syndrome::make(arch::ExceptionClass::Hvc, 0));
  frame.bank.set(arch::Reg::R0, 0xDEAD);
  (void)testbed_.hypervisor().arch_handle_trap(frame);
  const RunResult result = monitor_.finish(testbed_);
  EXPECT_EQ(result.outcome, Outcome::PanicPark);
  EXPECT_FALSE(result.detail.empty());
  EXPECT_GT(result.failure_tick, 0u);
}

TEST_F(MonitorTest, ParkedCpuClassifiesCpuPark) {
  boot_and_begin();
  testbed_.run(100);
  testbed_.board().cpu(1).park("unhandled trap exception class 0x24");
  const RunResult result = monitor_.finish(testbed_);
  EXPECT_EQ(result.outcome, Outcome::CpuPark);
  EXPECT_NE(result.detail.find("0x24"), std::string::npos);
}

TEST_F(MonitorTest, FailedBringUpClassifiesInconsistent) {
  boot_and_begin();
  testbed_.board().cpu(1).fail_boot("entry gate not executable");
  const RunResult result = monitor_.finish(testbed_);
  EXPECT_EQ(result.outcome, Outcome::InconsistentCell);
  EXPECT_NE(result.detail.find("failed"), std::string::npos);
}

TEST_F(MonitorTest, CreateFailureClassifiesInvalidArguments) {
  // Simulate the §III root-context outcome: create rejected, no cell.
  testbed_.linux_root().cell_create(0xBAD0'0000);
  testbed_.run(5);
  monitor_.begin(testbed_);
  testbed_.run(50);
  const RunResult result = monitor_.finish(testbed_);
  EXPECT_EQ(result.outcome, Outcome::InvalidArguments);
  EXPECT_FALSE(result.cell_exists);
  EXPECT_EQ(result.create_result, jh::kHvcEInval);
}

TEST_F(MonitorTest, OnlineButSilentClassifiesSilentHang) {
  boot_and_begin();
  // Suspend every task: the cell stays online but emits nothing.
  auto& kernel = testbed_.freertos().kernel();
  for (std::size_t i = 0; i < kernel.task_count(); ++i) kernel.suspend(i);
  testbed_.run(2'000);
  const RunResult result = monitor_.finish(testbed_);
  EXPECT_EQ(result.outcome, Outcome::SilentHang);
}

TEST_F(MonitorTest, CleanShutdownClassifiesCorrect) {
  boot_and_begin();
  testbed_.run(500);
  testbed_.shutdown_freertos_cell();
  const RunResult result = monitor_.finish(testbed_);
  EXPECT_EQ(result.outcome, Outcome::Correct);
  EXPECT_NE(result.detail.find("shut down"), std::string::npos);
}

TEST_F(MonitorTest, ShutdownProbeReclaimsAfterCpuPark) {
  boot_and_begin();
  testbed_.run(100);
  testbed_.board().cpu(1).park("unhandled trap exception class 0x24");
  EXPECT_TRUE(probe_shutdown_reclaims(testbed_));
  EXPECT_EQ(testbed_.hypervisor().cpu_owner(1), jh::kRootCellId);
}

TEST_F(MonitorTest, ShutdownProbeFailsAfterPanic) {
  boot_and_begin();
  arch::EntryFrame frame = testbed_.board().cpu(0).make_trap_frame(
      arch::Syndrome::make(arch::ExceptionClass::Hvc, 0));
  frame.bank.set(arch::Reg::SP, 0);
  (void)testbed_.hypervisor().arch_handle_trap(frame);
  EXPECT_FALSE(probe_shutdown_reclaims(testbed_));
}

TEST_F(MonitorTest, OutcomeNamesAndFigure3Buckets) {
  EXPECT_EQ(outcome_name(Outcome::PanicPark), "panic-park");
  EXPECT_EQ(outcome_name(Outcome::InconsistentCell), "inconsistent-cell");
  EXPECT_TRUE(is_figure3_bucket(Outcome::Correct));
  EXPECT_TRUE(is_figure3_bucket(Outcome::PanicPark));
  EXPECT_TRUE(is_figure3_bucket(Outcome::CpuPark));
  EXPECT_FALSE(is_figure3_bucket(Outcome::InvalidArguments));
  EXPECT_FALSE(is_figure3_bucket(Outcome::SilentHang));
}

TEST_F(MonitorTest, DistributionAccumulatesAndMerges) {
  OutcomeDistribution a;
  a.add(Outcome::Correct);
  a.add(Outcome::Correct);
  a.add(Outcome::PanicPark);
  OutcomeDistribution b;
  b.add(Outcome::CpuPark);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(Outcome::Correct), 2u);
  EXPECT_DOUBLE_EQ(a.fraction(Outcome::Correct), 0.5);
  EXPECT_DOUBLE_EQ(OutcomeDistribution{}.fraction(Outcome::Correct), 0.0);
}

}  // namespace
}  // namespace mcs::fi
