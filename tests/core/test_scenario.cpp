#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/executor.hpp"
#include "core/monitor.hpp"

namespace mcs::fi {
namespace {

TEST(ScenarioRegistry, ShipsAtLeastFourScenarios) {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  EXPECT_GE(registry.size(), 4u);
  const std::vector<std::string> names = registry.names();
  for (const char* expected :
       {"freertos-steady", "inject-during-boot", "osek-cell", "dual-cell"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ScenarioRegistry, FindReturnsNullForUnknownName) {
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  EXPECT_NE(find_scenario("freertos-steady"), nullptr);
}

TEST(ScenarioRegistry, NamesAreSorted) {
  const std::vector<std::string> names = ScenarioRegistry::instance().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Scenario, MakePlanAppliesScenarioDefaults) {
  const Scenario* steady = find_scenario("freertos-steady");
  const Scenario* boot = find_scenario("inject-during-boot");
  ASSERT_NE(steady, nullptr);
  ASSERT_NE(boot, nullptr);

  TestPlan base = paper_medium_trap_plan();
  base.inject_during_boot = true;  // scenario default must override
  const TestPlan steady_plan = steady->make_plan(base);
  EXPECT_EQ(steady_plan.scenario, "freertos-steady");
  EXPECT_FALSE(steady_plan.inject_during_boot);

  const TestPlan boot_plan = boot->make_plan(paper_medium_trap_plan());
  EXPECT_EQ(boot_plan.scenario, "inject-during-boot");
  EXPECT_TRUE(boot_plan.inject_during_boot);
}

TEST(Scenario, EveryRegisteredScenarioCompletesASmokeCampaign) {
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    const Scenario* scenario = find_scenario(name);
    ASSERT_NE(scenario, nullptr) << name;

    TestPlan plan = scenario->make_plan();
    plan.runs = 3;
    plan.duration_ticks = 2'000;
    plan.phase = 2;
    CampaignExecutor executor(plan);
    const CampaignResult result = executor.execute();
    ASSERT_EQ(result.runs.size(), 3u) << name;
    for (const RunResult& run : result.runs) {
      // Whatever the fault did, the harness itself must never break.
      EXPECT_NE(run.outcome, Outcome::HarnessError) << name << ": " << run.detail;
    }
  }
}

TEST(Scenario, OsekScenarioBootsTheOsekCell) {
  const Scenario* scenario = find_scenario("osek-cell");
  ASSERT_NE(scenario, nullptr);
  Testbed testbed;
  ASSERT_TRUE(scenario->setup(testbed).is_ok());
  scenario->boot(testbed);
  jh::Cell* cell = testbed.workload_cell();
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->name(), "osek-cell");
  testbed.run(2'000);
  EXPECT_GT(testbed.osek().brake_samples(), 0u);
  EXPECT_GE(testbed.board().uart1().total_bytes(),
            RunMonitor::kLiveOutputThreshold);
}

TEST(Scenario, DualCellScenarioSwapsPayloadMidWindow) {
  const Scenario* scenario = find_scenario("dual-cell");
  ASSERT_NE(scenario, nullptr);
  Testbed testbed;
  ASSERT_TRUE(scenario->setup(testbed).is_ok());
  scenario->boot(testbed);
  jh::Cell* first = testbed.workload_cell();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name(), "freertos-cell");

  TestPlan plan = scenario->make_plan();
  plan.duration_ticks = 4'000;
  scenario->observe(testbed, plan);

  jh::Cell* second = testbed.workload_cell();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->name(), "osek-cell");
  // Both payloads actually ran in the fault-free window.
  EXPECT_GT(testbed.freertos().blink_count(), 0u);
  EXPECT_GT(testbed.osek().brake_samples(), 0u);
}

// The satellite bugfix: a harness that cannot even start its experiment
// reports HarnessError — a bucket the paper's taxonomy never contains —
// instead of polluting SilentHang.
class BrokenSetupScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "test-broken-setup";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "setup always fails (test only)";
  }
  [[nodiscard]] util::Status setup(Testbed&) const override {
    return util::internal("rig power supply unplugged");
  }
  void boot(Testbed&) const override { FAIL() << "boot must not be reached"; }
};

TEST(Scenario, SetupFailureIsAHarnessErrorNotASilentHang) {
  ScenarioRegistry::instance().add(std::make_unique<BrokenSetupScenario>());
  TestPlan plan = paper_medium_trap_plan();
  plan.scenario = "test-broken-setup";
  plan.runs = 2;
  CampaignExecutor executor(plan);
  const CampaignResult result = executor.execute();
  ASSERT_EQ(result.runs.size(), 2u);
  for (const RunResult& run : result.runs) {
    EXPECT_EQ(run.outcome, Outcome::HarnessError);
    EXPECT_NE(run.detail.find("rig power supply"), std::string::npos);
  }
  const OutcomeDistribution dist = result.distribution();
  EXPECT_EQ(dist.count(Outcome::SilentHang), 0u);
  EXPECT_EQ(dist.count(Outcome::HarnessError), 2u);
}

TEST(Scenario, UnknownScenarioKeyIsAHarnessError) {
  TestPlan plan = paper_medium_trap_plan();
  plan.scenario = "typo-scenario";
  plan.runs = 1;
  CampaignExecutor executor(plan);
  const CampaignResult result = executor.execute();
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].outcome, Outcome::HarnessError);
  EXPECT_NE(result.runs[0].detail.find("typo-scenario"), std::string::npos);
}

}  // namespace
}  // namespace mcs::fi
