#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/executor.hpp"
#include "core/monitor.hpp"
#include "platform/board_registry.hpp"

namespace mcs::fi {
namespace {

TEST(ScenarioRegistry, ShipsAtLeastFiveScenarios) {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  EXPECT_GE(registry.size(), 5u);
  const std::vector<std::string> names = registry.names();
  for (const char* expected :
       {"freertos-steady", "inject-during-boot", "osek-cell", "dual-cell",
        "ivshmem-traffic"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ScenarioRegistry, FindReturnsNullForUnknownName) {
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  EXPECT_NE(find_scenario("freertos-steady"), nullptr);
}

TEST(ScenarioRegistry, NamesAreSorted) {
  const std::vector<std::string> names = ScenarioRegistry::instance().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Scenario, MakePlanAppliesScenarioDefaults) {
  const Scenario* steady = find_scenario("freertos-steady");
  const Scenario* boot = find_scenario("inject-during-boot");
  ASSERT_NE(steady, nullptr);
  ASSERT_NE(boot, nullptr);

  TestPlan base = paper_medium_trap_plan();
  base.inject_during_boot = true;  // scenario default must override
  const TestPlan steady_plan = steady->make_plan(base);
  EXPECT_EQ(steady_plan.scenario, "freertos-steady");
  EXPECT_FALSE(steady_plan.inject_during_boot);

  const TestPlan boot_plan = boot->make_plan(paper_medium_trap_plan());
  EXPECT_EQ(boot_plan.scenario, "inject-during-boot");
  EXPECT_TRUE(boot_plan.inject_during_boot);
}

TEST(Scenario, EveryRegisteredScenarioCompletesASmokeCampaign) {
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    const Scenario* scenario = find_scenario(name);
    ASSERT_NE(scenario, nullptr) << name;

    TestPlan plan = scenario->make_plan();
    plan.runs = 3;
    plan.duration_ticks = 2'000;
    plan.phase = 2;
    CampaignExecutor executor(plan);
    const CampaignResult result = executor.execute();
    ASSERT_EQ(result.runs.size(), 3u) << name;
    for (const RunResult& run : result.runs) {
      // Whatever the fault did, the harness itself must never break.
      EXPECT_NE(run.outcome, Outcome::HarnessError) << name << ": " << run.detail;
    }
  }
}

TEST(Scenario, OsekScenarioBootsTheOsekCell) {
  const Scenario* scenario = find_scenario("osek-cell");
  ASSERT_NE(scenario, nullptr);
  Testbed testbed;
  ASSERT_TRUE(scenario->setup(testbed).is_ok());
  scenario->boot(testbed);
  jh::Cell* cell = testbed.workload_cell();
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->name(), "osek-cell");
  testbed.run(2'000);
  EXPECT_GT(testbed.osek().brake_samples(), 0u);
  EXPECT_GE(testbed.board().uart1().total_bytes(),
            RunMonitor::kLiveOutputThreshold);
}

TEST(Scenario, DualCellScenarioSwapsPayloadMidWindow) {
  const Scenario* scenario = find_scenario("dual-cell");
  ASSERT_NE(scenario, nullptr);
  Testbed testbed;
  ASSERT_TRUE(scenario->setup(testbed).is_ok());
  scenario->boot(testbed);
  jh::Cell* first = testbed.workload_cell();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name(), "freertos-cell");
  EXPECT_EQ(testbed.secondary_cell(), nullptr);  // 2 CPUs: no spare core

  TestPlan plan = scenario->make_plan();
  plan.duration_ticks = 4'000;
  scenario->observe(testbed, plan);

  jh::Cell* second = testbed.workload_cell();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->name(), "osek-cell");
  // Both payloads actually ran in the fault-free window.
  EXPECT_GT(testbed.freertos().blink_count(), 0u);
  EXPECT_GT(testbed.osek().brake_samples(), 0u);
}

TEST(Scenario, DualCellRunsBothCellsConcurrentlyOnQuadBoard) {
  const Scenario* scenario = find_scenario("dual-cell");
  ASSERT_NE(scenario, nullptr);
  Testbed testbed(platform::make_board("quad-a7"));
  ASSERT_TRUE(testbed.supports_concurrent_cells());
  ASSERT_TRUE(scenario->setup(testbed).is_ok());
  scenario->boot(testbed);

  // Both non-root cells resident at once, on dedicated cores — no swap.
  jh::Cell* freertos = testbed.workload_cell();
  jh::Cell* osek = testbed.secondary_cell();
  ASSERT_NE(freertos, nullptr);
  ASSERT_NE(osek, nullptr);
  EXPECT_EQ(freertos->name(), "freertos-cell");
  EXPECT_EQ(osek->name(), "osek-cell");
  EXPECT_NE(freertos->id(), osek->id());
  EXPECT_EQ(testbed.hypervisor().cpu_owner(Testbed::kFreeRtosCpu), freertos->id());
  EXPECT_EQ(testbed.hypervisor().cpu_owner(testbed.osek_cpu()), osek->id());
  EXPECT_NE(testbed.osek_cpu(), Testbed::kFreeRtosCpu);

  TestPlan plan = scenario->make_plan();
  plan.duration_ticks = 4'000;
  scenario->observe(testbed, plan);

  // Still both resident after the window (the swap never happened), both
  // CPUs online, both payloads having made progress *simultaneously*.
  EXPECT_EQ(testbed.workload_cell(), freertos);
  EXPECT_EQ(testbed.secondary_cell(), osek);
  EXPECT_TRUE(testbed.board().cpu(Testbed::kFreeRtosCpu).is_online());
  EXPECT_TRUE(testbed.board().cpu(testbed.osek_cpu()).is_online());
  EXPECT_GT(testbed.freertos().blink_count(), 0u);
  EXPECT_GT(testbed.osek().brake_samples(), 0u);
  EXPECT_EQ(freertos->state(), jh::CellState::Running);
  EXPECT_EQ(osek->state(), jh::CellState::Running);
}

TEST(Scenario, SecondaryCellFailureIsNotMaskedByHealthyWorkload) {
  // Concurrent deployment: the FreeRTOS cell keeps printing, but the
  // OSEK cell's core gets parked — the monitor must classify the park,
  // not report Correct off the surviving cell's output.
  const Scenario* scenario = find_scenario("dual-cell");
  Testbed testbed(platform::make_board("quad-a7"));
  ASSERT_TRUE(scenario->setup(testbed).is_ok());
  scenario->boot(testbed);
  ASSERT_NE(testbed.secondary_cell(), nullptr);
  RunMonitor monitor;
  monitor.begin(testbed);
  testbed.run(500);
  testbed.board().cpu(testbed.osek_cpu()).park("secondary probe");
  testbed.run(500);
  const RunResult result = monitor.finish(testbed);
  EXPECT_EQ(result.outcome, Outcome::CpuPark) << result.detail;
  EXPECT_NE(result.detail.find("secondary"), std::string::npos) << result.detail;
}

TEST(Scenario, IvshmemTrafficExchangesMessagesFaultFree) {
  const Scenario* scenario = find_scenario("ivshmem-traffic");
  ASSERT_NE(scenario, nullptr);
  TestPlan plan = scenario->make_plan();
  EXPECT_EQ(plan.board, "quad-a7");  // scenario default: needs spare cores
  plan.duration_ticks = 3'000;

  Testbed testbed(platform::make_board(plan.board));
  ASSERT_TRUE(scenario->setup(testbed).is_ok());
  ASSERT_TRUE(testbed.ivshmem_enabled());
  scenario->boot(testbed);
  scenario->observe(testbed, plan);

  // Fault-free: every request delivered, echoed and validated; doorbells
  // arrived in both directions.
  const IvshmemTrafficStats& stats = testbed.ivshmem_stats();
  EXPECT_GT(stats.sent, 0u);
  EXPECT_EQ(stats.received, stats.sent);
  EXPECT_FALSE(stats.traffic_disrupted());
  EXPECT_GT(testbed.osek().doorbells(), 0u);
  EXPECT_GT(testbed.freertos().doorbells(), 0u);

  RunMonitor monitor;
  const RunResult result = monitor.finish(testbed);
  EXPECT_EQ(result.outcome, Outcome::Correct) << result.detail;
}

TEST(Scenario, IvshmemTrafficRefusesBoardsWithoutSpareCores) {
  TestPlan plan = find_scenario("ivshmem-traffic")->make_plan();
  plan.board = "bananapi";  // force the paper's 2-CPU board
  plan.runs = 1;
  const CampaignResult result = CampaignExecutor(plan).execute();
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].outcome, Outcome::HarnessError);
  EXPECT_NE(result.runs[0].detail.find("spare cores"), std::string::npos)
      << result.runs[0].detail;
}

TEST(Scenario, IvshmemTrafficCampaignClassifiesCrossCellCorruption) {
  // Under irqchip injection some runs must land in the new bucket — the
  // doorbell wake-ups run through the corrupted handler — and the
  // campaign must stay deterministic across thread counts.
  TestPlan plan = find_scenario("ivshmem-traffic")->make_plan();
  plan.runs = 10;
  plan.rate = 50;
  plan.phase = 2;
  plan.duration_ticks = 6'000;
  plan.seed = 0xC0FFEE;
  const CampaignResult one = CampaignExecutor(plan, {1, false}).execute();
  const CampaignResult four = CampaignExecutor(plan, {4, false}).execute();
  const CampaignResult eight = CampaignExecutor(plan, {8, false}).execute();
  const OutcomeDistribution dist = one.distribution();
  EXPECT_GT(dist.count(Outcome::CrossCellCorruption), 0u);
  EXPECT_EQ(dist.count(Outcome::HarnessError), 0u);
  ASSERT_EQ(one.runs.size(), four.runs.size());
  ASSERT_EQ(one.runs.size(), eight.runs.size());
  for (std::size_t i = 0; i < one.runs.size(); ++i) {
    EXPECT_EQ(one.runs[i].outcome, four.runs[i].outcome) << i;
    EXPECT_EQ(one.runs[i].outcome, eight.runs[i].outcome) << i;
    EXPECT_EQ(one.runs[i].detail, eight.runs[i].detail) << i;
    EXPECT_EQ(one.runs[i].uart1_bytes, eight.runs[i].uart1_bytes) << i;
  }
}

// The satellite bugfix: a harness that cannot even start its experiment
// reports HarnessError — a bucket the paper's taxonomy never contains —
// instead of polluting SilentHang.
class BrokenSetupScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "test-broken-setup";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "setup always fails (test only)";
  }
  [[nodiscard]] util::Status setup(Testbed&) const override {
    return util::internal("rig power supply unplugged");
  }
  void boot(Testbed&) const override { FAIL() << "boot must not be reached"; }
};

TEST(Scenario, SetupFailureIsAHarnessErrorNotASilentHang) {
  ScenarioRegistry::instance().add(std::make_unique<BrokenSetupScenario>());
  TestPlan plan = paper_medium_trap_plan();
  plan.scenario = "test-broken-setup";
  plan.runs = 2;
  CampaignExecutor executor(plan);
  const CampaignResult result = executor.execute();
  ASSERT_EQ(result.runs.size(), 2u);
  for (const RunResult& run : result.runs) {
    EXPECT_EQ(run.outcome, Outcome::HarnessError);
    EXPECT_NE(run.detail.find("rig power supply"), std::string::npos);
  }
  const OutcomeDistribution dist = result.distribution();
  EXPECT_EQ(dist.count(Outcome::SilentHang), 0u);
  EXPECT_EQ(dist.count(Outcome::HarnessError), 2u);
}

// --- ScenarioRegistry::make: parameterised plans ----------------------------

TEST(ScenarioRegistry, MakeBuildsTunedPlans) {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  ScenarioRegistry::MakeOptions options;
  options.cell_tuning = "ram 0x00400000\nconsole trapped\n";
  const auto plan = registry.make("freertos-steady", options);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().scenario, "freertos-steady");
  EXPECT_EQ(plan.value().cell_tuning, options.cell_tuning);
}

TEST(ScenarioRegistry, MakeRejectsUnknownScenarioAndBadTuning) {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  EXPECT_FALSE(registry.make("no-such-scenario").is_ok());
  ScenarioRegistry::MakeOptions bad;
  bad.cell_tuning = "ram banana";
  EXPECT_FALSE(registry.make("freertos-steady", bad).is_ok());
}

TEST(ScenarioRegistry, MakeThreadsBoardSelectionThroughTuning) {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  ScenarioRegistry::MakeOptions options;
  options.cell_tuning = "board quad-a7\n";
  const auto plan = registry.make("dual-cell", options);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().board, "quad-a7");

  // No board line → the scenario/base default survives.
  const auto untuned = registry.make("dual-cell");
  ASSERT_TRUE(untuned.is_ok());
  EXPECT_EQ(untuned.value().board, std::string(platform::kDefaultBoard));

  // An unregistered board key fails plan construction, not the runs.
  ScenarioRegistry::MakeOptions bad;
  bad.cell_tuning = "board octo-a72";
  const auto rejected = registry.make("dual-cell", bad);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_NE(rejected.status().message().find("octo-a72"), std::string::npos);
}

TEST(Scenario, TunedCellBootsWithResizedRamAndTrappedConsole) {
  Testbed testbed;
  jh::CellTuning tuning;
  tuning.ram_size = 0x0040'0000;  // 4 MiB
  tuning.has_console_kind = true;
  tuning.console_kind = jh::ConsoleKind::Trapped;
  testbed.set_cell_tuning(tuning);
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  jh::Cell* cell = testbed.workload_cell();
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->config().console.kind, jh::ConsoleKind::Trapped);
  bool found_ram = false;
  for (const mem::MemRegion& region : cell->config().mem_regions) {
    if (region.name == "ram") {
      EXPECT_EQ(region.size, 0x0040'0000u);
      found_ram = true;
    }
  }
  EXPECT_TRUE(found_ram);

  const std::uint64_t traps_before = testbed.hypervisor().counters().traps;
  const std::size_t bytes_before = testbed.board().uart1().total_bytes();
  testbed.run(1'000);
  // Every console byte now takes the stage-2 trap path, yet still reaches
  // the USART capture — the observable the monitor classifies.
  EXPECT_GT(testbed.board().uart1().total_bytes(), bytes_before);
  EXPECT_GT(testbed.hypervisor().counters().traps - traps_before, 100u);
}

TEST(Scenario, TunedCampaignRunsWithoutHarnessErrors) {
  ScenarioRegistry::MakeOptions options;
  options.cell_tuning = "ram 0x00200000\nconsole trapped\n";
  auto made = ScenarioRegistry::instance().make("freertos-steady", options);
  ASSERT_TRUE(made.is_ok());
  TestPlan plan = made.value();
  plan.runs = 2;
  plan.duration_ticks = 1'500;
  plan.phase = 2;
  CampaignExecutor executor(plan);
  const CampaignResult result = executor.execute();
  ASSERT_EQ(result.runs.size(), 2u);
  for (const RunResult& run : result.runs) {
    EXPECT_NE(run.outcome, Outcome::HarnessError) << run.detail;
  }
}

TEST(Scenario, MalformedTuningIsAHarnessError) {
  TestPlan plan = paper_medium_trap_plan();
  plan.cell_tuning = "ram banana";
  plan.runs = 1;
  CampaignExecutor executor(plan);
  const CampaignResult result = executor.execute();
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].outcome, Outcome::HarnessError);
  EXPECT_NE(result.runs[0].detail.find("cell tuning"), std::string::npos);
}

TEST(Scenario, UnknownScenarioKeyIsAHarnessError) {
  TestPlan plan = paper_medium_trap_plan();
  plan.scenario = "typo-scenario";
  plan.runs = 1;
  CampaignExecutor executor(plan);
  const CampaignResult result = executor.execute();
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].outcome, Outcome::HarnessError);
  EXPECT_NE(result.runs[0].detail.find("typo-scenario"), std::string::npos);
}

}  // namespace
}  // namespace mcs::fi
