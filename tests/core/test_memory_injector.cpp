#include "core/memory_injector.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "guests/freertos_image.hpp"
#include "hypervisor/cell_config.hpp"

namespace mcs::fi {
namespace {

TEST(MemoryFaultInjector, FlipsExactlyOneBitInWindow) {
  mem::PhysicalMemory dram;
  MemoryFaultInjector injector(dram, mem::kDramBase, 0x1000, 7);
  for (int i = 0; i < 100; ++i) {
    const MemoryFaultRecord record = injector.inject_one(42);
    EXPECT_GE(record.addr, mem::kDramBase);
    EXPECT_LT(record.addr, mem::kDramBase + 0x1000);
    EXPECT_EQ(record.after, record.before ^ (1u << record.bit));
    EXPECT_EQ(dram.read_u8(record.addr).value(), record.after);
    EXPECT_EQ(record.tick, 42u);
  }
  EXPECT_EQ(injector.injections(), 100u);
}

TEST(MemoryFaultInjector, DoubleFlipOfSameBitRestores) {
  mem::PhysicalMemory dram;
  (void)dram.write_u8(mem::kDramBase, 0xA5);
  MemoryFaultInjector injector(dram, mem::kDramBase, 1, 1);
  const MemoryFaultRecord first = injector.inject_one(0);
  // Window is a single byte; flip the same bit back by injecting until the
  // same bit is chosen again... deterministic check instead: flip manually.
  (void)dram.write_u8(first.addr, first.before);
  EXPECT_EQ(dram.read_u8(mem::kDramBase).value(), 0xA5);
}

TEST(MemoryFaultInjector, BurstInjectsCount) {
  mem::PhysicalMemory dram;
  MemoryFaultInjector injector(dram, mem::kDramBase, 0x100, 2);
  injector.inject_burst(5, 8);
  EXPECT_EQ(injector.injections(), 8u);
}

TEST(MemoryFaultInjector, DeterministicForSeed) {
  mem::PhysicalMemory dram_a, dram_b;
  MemoryFaultInjector a(dram_a, mem::kDramBase, 0x10000, 99);
  MemoryFaultInjector b(dram_b, mem::kDramBase, 0x10000, 99);
  for (int i = 0; i < 50; ++i) {
    const auto ra = a.inject_one(0);
    const auto rb = b.inject_one(0);
    EXPECT_EQ(ra.addr, rb.addr);
    EXPECT_EQ(ra.bit, rb.bit);
  }
}

TEST(MemoryFaultCampaign, TargetedFlipIsDetectedByDualStorage) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.run(500);  // seed the state block
  ASSERT_EQ(testbed.freertos().data_errors(), 0u);

  // Corrupt one primary hash word directly in DRAM.
  const std::uint64_t victim = guest::FreeRtosImage::kStateBase + 3 * 4;
  auto before = testbed.board().dram().read_u32(victim);
  ASSERT_TRUE(before.is_ok());
  ASSERT_NE(before.value(), 0u);  // state was seeded
  (void)testbed.board().dram().write_u32(victim, before.value() ^ 0x40);

  testbed.run(2'000);
  EXPECT_GE(testbed.freertos().data_errors(), 1u);
  EXPECT_NE(testbed.board().uart1().captured().find("MISMATCH"),
            std::string::npos);
  // Detection, not crash: the cell keeps running.
  EXPECT_TRUE(testbed.board().cpu(1).is_online());
  EXPECT_FALSE(testbed.hypervisor().is_panicked());
}

TEST(MemoryFaultCampaign, ColdMemoryFlipsAreAbsorbed) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.run(500);
  // Flip bits far away from any live state.
  MemoryFaultInjector injector(testbed.board().dram(),
                               jh::kFreeRtosRamBase + 0x80'0000, 0x10'0000, 5);
  injector.inject_burst(0, 50);
  testbed.run(2'000);
  EXPECT_EQ(testbed.freertos().data_errors(), 0u);
  EXPECT_TRUE(testbed.board().cpu(1).is_online());
}

TEST(MemoryFaultCampaign, WorkloadRecoversAfterDetection) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.run(500);
  const std::uint64_t victim = guest::FreeRtosImage::kShadowBase + 7 * 4;
  auto word = testbed.board().dram().read_u32(victim);
  ASSERT_TRUE(word.is_ok());
  (void)testbed.board().dram().write_u32(victim, word.value() ^ 1);
  testbed.run(1'000);
  const std::uint64_t errors_at_detection = testbed.freertos().data_errors();
  EXPECT_GE(errors_at_detection, 1u);
  // The task rewrites both copies; no further mismatches accumulate.
  testbed.run(3'000);
  EXPECT_EQ(testbed.freertos().data_errors(), errors_at_detection);
}

}  // namespace
}  // namespace mcs::fi
