#include "core/fault_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/bitops.hpp"

namespace mcs::fi {
namespace {

using arch::Reg;
using arch::RegisterBank;

TEST(FaultModel, AllRegistersHasSixteen) {
  EXPECT_EQ(all_registers().size(), 16u);
}

TEST(FaultModel, ArgumentWindowIsR2R3R4) {
  const auto window = argument_window();
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0], Reg::R2);
  EXPECT_EQ(window[1], Reg::R3);
  EXPECT_EQ(window[2], Reg::R4);
}

TEST(SingleBitFlip, FlipsExactlyOneBitOfOneRegister) {
  SingleBitFlip model;
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    RegisterBank bank;
    bank.set(Reg::R3, 0x5555'5555);
    const auto records = model.apply(rng, bank);
    ASSERT_EQ(records.size(), 1u);
    const FlipRecord& record = records[0];
    EXPECT_EQ(record.after, util::flip_bit(record.before, record.bit));
    EXPECT_EQ(bank[record.reg], record.after);
    // Every other register untouched.
    int changed = 0;
    RegisterBank fresh;
    fresh.set(Reg::R3, 0x5555'5555);
    for (std::size_t i = 0; i < arch::kNumGeneralRegs; ++i) {
      if (bank.get(static_cast<Reg>(i)) != fresh.get(static_cast<Reg>(i))) {
        ++changed;
      }
    }
    EXPECT_EQ(changed, 1);
  }
}

TEST(SingleBitFlip, RestrictedCandidateSetRespected) {
  SingleBitFlip model({Reg::R7});
  util::Xoshiro256 rng(2);
  RegisterBank bank;
  const auto records = model.apply(rng, bank);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].reg, Reg::R7);
}

TEST(SingleBitFlip, EventuallyCoversAllCandidatesAndBits) {
  SingleBitFlip model({Reg::R0, Reg::R1});
  util::Xoshiro256 rng(3);
  std::set<std::pair<Reg, unsigned>> seen;
  for (int trial = 0; trial < 4000; ++trial) {
    RegisterBank bank;
    const auto records = model.apply(rng, bank);
    seen.insert({records[0].reg, records[0].bit});
  }
  EXPECT_EQ(seen.size(), 2u * 32u);
}

TEST(MultiRegisterFlip, FlipsOneBitInEachTarget) {
  MultiRegisterFlip model;  // default: the argument window
  util::Xoshiro256 rng(4);
  RegisterBank bank;
  bank.set(Reg::R2, 0xAAAA'0000);
  const auto records = model.apply(rng, bank);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].reg, Reg::R2);
  EXPECT_EQ(records[1].reg, Reg::R3);
  EXPECT_EQ(records[2].reg, Reg::R4);
  for (const FlipRecord& record : records) {
    EXPECT_EQ(util::popcount(record.before ^ record.after), 1);
  }
}

TEST(StuckAt, ForcesWholeRegister) {
  StuckAtModel zero(false, {Reg::R5});
  StuckAtModel one(true, {Reg::R5});
  util::Xoshiro256 rng(5);
  RegisterBank bank;
  bank.set(Reg::R5, 0x1234'5678);
  auto records = zero.apply(rng, bank);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(bank[Reg::R5], 0u);
  EXPECT_EQ(records[0].bit, kWholeRegister);
  records = one.apply(rng, bank);
  EXPECT_EQ(bank[Reg::R5], 0xFFFF'FFFFu);
}

TEST(DoubleBitFlip, FlipsTwoDistinctBits) {
  DoubleBitFlip model({Reg::R1});
  util::Xoshiro256 rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    RegisterBank bank;
    bank.set(Reg::R1, 0xF0F0'F0F0);
    const auto records = model.apply(rng, bank);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(util::popcount(records[0].before ^ records[0].after), 2);
  }
}

TEST(Factory, BuildsEveryKind) {
  for (const auto kind :
       {FaultModelKind::SingleBitFlip, FaultModelKind::MultiRegisterFlip,
        FaultModelKind::StuckAtZero, FaultModelKind::StuckAtOne,
        FaultModelKind::DoubleBitFlip}) {
    const auto model = make_fault_model(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), fault_model_kind_name(kind));
  }
}

TEST(Factory, PassesRegisterRestriction) {
  const auto model =
      make_fault_model(FaultModelKind::SingleBitFlip, {Reg::SP});
  util::Xoshiro256 rng(7);
  RegisterBank bank;
  const auto records = model->apply(rng, bank);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].reg, Reg::SP);
}

// Property: applying a model twice with the same RNG state produces the
// same mutation — the reproducibility the campaign relies on.
class ModelDeterminism : public ::testing::TestWithParam<FaultModelKind> {};

TEST_P(ModelDeterminism, SameSeedSameMutation) {
  const auto model = make_fault_model(GetParam());
  util::Xoshiro256 rng_a(99);
  util::Xoshiro256 rng_b(99);
  RegisterBank bank_a, bank_b;
  bank_a.set(Reg::R2, 0x1111'1111);
  bank_b.set(Reg::R2, 0x1111'1111);
  (void)model->apply(rng_a, bank_a);
  (void)model->apply(rng_b, bank_b);
  for (std::size_t i = 0; i < arch::kNumGeneralRegs; ++i) {
    EXPECT_EQ(bank_a.get(static_cast<Reg>(i)), bank_b.get(static_cast<Reg>(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ModelDeterminism,
    ::testing::Values(FaultModelKind::SingleBitFlip,
                      FaultModelKind::MultiRegisterFlip,
                      FaultModelKind::StuckAtZero, FaultModelKind::StuckAtOne,
                      FaultModelKind::DoubleBitFlip));

}  // namespace
}  // namespace mcs::fi
