#include "core/injection_target.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "hypervisor/cell_config.hpp"
#include "hypervisor/hypervisor.hpp"
#include "irq/gic.hpp"
#include "platform/board.hpp"
#include "platform/timer.hpp"
#include "platform/uart.hpp"

namespace mcs::fi {
namespace {

TestPlan plan_for(FaultDomain domain) {
  TestPlan plan;
  plan.fault_domain = domain;
  return plan;
}

TEST(InjectionTarget, FactoryMapsEveryDomain) {
  for (std::size_t d = 0; d < kNumFaultDomains; ++d) {
    const auto domain = static_cast<FaultDomain>(d);
    const auto target = make_injection_target(plan_for(domain));
    ASSERT_NE(target, nullptr) << fault_domain_name(domain);
    EXPECT_EQ(target->domain(), domain);
    EXPECT_EQ(target->name(), fault_domain_name(domain));
  }
}

TEST(InjectionTarget, DomainNamesRoundTrip) {
  for (std::size_t d = 0; d < kNumFaultDomains; ++d) {
    const auto domain = static_cast<FaultDomain>(d);
    FaultDomain back;
    ASSERT_TRUE(fault_domain_from_name(fault_domain_name(domain), back));
    EXPECT_EQ(back, domain);
  }
  FaultDomain unused;
  EXPECT_FALSE(fault_domain_from_name("no-such-domain", unused));
  EXPECT_FALSE(fault_domain_from_name("", unused));
}

TEST(InjectionTarget, RegisterTargetCorruptsTheEntryFrame) {
  const auto target = make_injection_target(plan_for(FaultDomain::Register));
  util::Xoshiro256 rng(11);
  arch::EntryFrame frame;
  const auto records = target->inject(rng, frame, nullptr);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].domain, FaultDomain::Register);
  EXPECT_EQ(records[0].after, records[0].before ^ (1u << records[0].bit));
  EXPECT_EQ(frame.bank.get(records[0].reg), records[0].after);
}

TEST(InjectionTarget, MachineDomainsInjectNothingWithoutAHypervisor) {
  // Tests that drive the injector without a live machine must stay valid:
  // every non-register domain declines to inject rather than crash.
  for (const auto domain : {FaultDomain::Gic, FaultDomain::IrqDelivery,
                            FaultDomain::DeviceMmio, FaultDomain::Dram}) {
    const auto target = make_injection_target(plan_for(domain));
    util::Xoshiro256 rng(1);
    arch::EntryFrame frame;
    EXPECT_TRUE(target->inject(rng, frame, nullptr).empty())
        << fault_domain_name(domain);
  }
}

TEST(InjectionTarget, GicTargetMutatesDistributorStateCoherently) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  const auto target = make_injection_target(plan_for(FaultDomain::Gic));
  util::Xoshiro256 rng(21);
  arch::EntryFrame frame;
  const irq::Gic& gic = testbed.board().gic();
  for (int i = 0; i < 64; ++i) {
    const auto records =
        target->inject(rng, frame, &testbed.hypervisor());
    ASSERT_EQ(records.size(), 1u);
    const FaultRecord& record = records[0];
    EXPECT_EQ(record.domain, FaultDomain::Gic);
    EXPECT_LT(record.addr, irq::kNumIrqs);  // addr carries the line id
  }
  // The machine keeps running after sustained distributor corruption —
  // faults are injected through the GIC's public API, never UB.
  testbed.run(500);
  EXPECT_FALSE(testbed.hypervisor().is_panicked());
  (void)gic;
}

TEST(InjectionTarget, GicTargetIsDeterministicForSeed) {
  auto run_sequence = [] {
    Testbed testbed;
    EXPECT_TRUE(testbed.enable_hypervisor().is_ok());
    testbed.boot_freertos_cell();
    const auto target = make_injection_target(plan_for(FaultDomain::Gic));
    util::Xoshiro256 rng(77);
    arch::EntryFrame frame;
    std::vector<FaultRecord> all;
    for (int i = 0; i < 32; ++i) {
      for (const FaultRecord& r :
           target->inject(rng, frame, &testbed.hypervisor())) {
        all.push_back(r);
      }
    }
    return all;
  };
  const auto a = run_sequence();
  const auto b = run_sequence();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].bit, b[i].bit);
    EXPECT_EQ(a[i].before, b[i].before);
    EXPECT_EQ(a[i].after, b[i].after);
  }
}

TEST(InjectionTarget, IrqDeliveryTargetTogglesPendingState) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  const auto target =
      make_injection_target(plan_for(FaultDomain::IrqDelivery));
  util::Xoshiro256 rng(31);
  arch::EntryFrame frame;
  bool saw_spurious = false;
  bool saw_lost = false;
  for (int i = 0; i < 64; ++i) {
    const auto records =
        target->inject(rng, frame, &testbed.hypervisor());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].domain, FaultDomain::IrqDelivery);
    EXPECT_LT(records[0].addr, irq::kNumIrqs);
    saw_spurious = saw_spurious || records[0].after == 1;
    saw_lost = saw_lost || records[0].after == 0;
  }
  EXPECT_TRUE(saw_spurious);  // spurious assertions happen
  EXPECT_TRUE(saw_lost);      // and so do lost deliveries
  testbed.run(500);
  EXPECT_FALSE(testbed.hypervisor().is_panicked());
}

TEST(InjectionTarget, DeviceMmioTargetWritesThroughTheDevice) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  const auto target =
      make_injection_target(plan_for(FaultDomain::DeviceMmio));
  util::Xoshiro256 rng(41);
  arch::EntryFrame frame;
  platform::Board& board = testbed.board();
  for (int i = 0; i < 32; ++i) {
    const auto records =
        target->inject(rng, frame, &testbed.hypervisor());
    ASSERT_EQ(records.size(), 1u);
    const FaultRecord& record = records[0];
    EXPECT_EQ(record.domain, FaultDomain::DeviceMmio);
    // The flip landed in a device this board actually exposes, and the
    // device reads the flipped value back (the write went through its
    // own MMIO path, not around it).
    platform::Device* device = nullptr;
    if (record.addr >= board.timer().base() &&
        record.addr < board.timer().base() + 0x100) {
      device = &board.timer();
    } else if (record.addr >= board.uart1().base() &&
               record.addr < board.uart1().base() + 0x100) {
      device = &board.uart1();
    }
    ASSERT_NE(device, nullptr) << std::hex << record.addr;
    const auto read = device->mmio_read(record.addr - device->base());
    ASSERT_TRUE(read.is_ok());
    EXPECT_EQ(read.value(), record.after);
  }
}

TEST(InjectionTarget, DramTargetConfinesFlipsToTheWorkloadCell) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  const auto target = make_injection_target(plan_for(FaultDomain::Dram));
  util::Xoshiro256 rng(51);
  arch::EntryFrame frame;
  for (int i = 0; i < 64; ++i) {
    const auto records =
        target->inject(rng, frame, &testbed.hypervisor());
    ASSERT_EQ(records.size(), 1u);
    const FaultRecord& record = records[0];
    EXPECT_EQ(record.domain, FaultDomain::Dram);
    // Flips stay inside the non-root cell's RAM window, never the
    // hypervisor's or the root cell's working set.
    EXPECT_GE(record.addr, jh::kFreeRtosRamBase);
    EXPECT_LT(record.addr, jh::kFreeRtosRamBase + jh::kFreeRtosRamSize);
    EXPECT_EQ(testbed.board().dram().read_u8(record.addr).value(),
              record.after);
  }
}

}  // namespace
}  // namespace mcs::fi
