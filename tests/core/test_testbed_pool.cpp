#include "core/testbed_pool.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/scenario.hpp"
#include "util/alloc_observer.hpp"

namespace mcs::fi {
namespace {

const platform::BoardRegistry::Entry& bananapi_entry() {
  static const std::shared_ptr<const platform::BoardRegistry::Entry> entry =
      platform::BoardRegistry::instance().entry("bananapi");
  return *entry;
}

TEST(TestbedPool, AcquireBuildsThenReusesPerKey) {
  TestbedPool pool;
  Testbed* first = nullptr;
  {
    const TestbedLease lease = pool.acquire("bananapi", "", bananapi_entry());
    ASSERT_NE(lease.get(), nullptr);
    first = lease.get();
    EXPECT_EQ(pool.stats().creates, 1u);
  }
  // Released slot comes back for the same key…
  {
    const TestbedLease lease = pool.acquire("bananapi", "", bananapi_entry());
    EXPECT_EQ(lease.get(), first);
    EXPECT_EQ(pool.stats().reuses, 1u);

    // …while a concurrent checkout of the same key gets its own slot.
    const TestbedLease second = pool.acquire("bananapi", "", bananapi_entry());
    EXPECT_NE(second.get(), lease.get());
    EXPECT_EQ(pool.stats().creates, 2u);
  }
  EXPECT_EQ(pool.stats().idle_slots, 2u);
}

TEST(TestbedPool, DistinctTuningKeysGetDistinctSlots) {
  TestbedPool pool;
  Testbed* plain = nullptr;
  {
    const TestbedLease lease = pool.acquire("bananapi", "", bananapi_entry());
    plain = lease.get();
  }
  // A differently tuned campaign must not inherit the plain slot.
  const TestbedLease tuned =
      pool.acquire("bananapi", "ram 0x200000", bananapi_entry());
  EXPECT_NE(tuned.get(), plain);
  EXPECT_EQ(pool.stats().creates, 2u);
}

TEST(TestbedPool, ClearDropsIdleSlots) {
  TestbedPool pool;
  { const TestbedLease lease = pool.acquire("bananapi", "", bananapi_entry()); }
  ASSERT_EQ(pool.stats().idle_slots, 1u);
  pool.clear();
  EXPECT_EQ(pool.stats().idle_slots, 0u);
}

TEST(TestbedPool, MoveTransfersOwnership) {
  TestbedPool pool;
  TestbedLease a = pool.acquire("bananapi", "", bananapi_entry());
  Testbed* raw = a.get();
  TestbedLease b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  b.release();
  EXPECT_EQ(pool.stats().idle_slots, 1u);
  b.release();  // idempotent
  EXPECT_EQ(pool.stats().idle_slots, 1u);
}

// The reuse contract's perf half: after warm-up, returning a pooled
// testbed to power-on state is pure state restoration — zero heap
// allocations (arena rewinds and capacity-keeping clears only).
TEST(TestbedPool, SteadyStateResetPerformsZeroHeapAllocations) {
  TestbedPool pool;
  const TestbedLease lease = pool.acquire("bananapi", "", bananapi_entry());
  Testbed* testbed = lease.get();
  const Scenario* scenario = find_scenario("freertos-steady");
  ASSERT_NE(scenario, nullptr);
  const TestPlan plan = scenario->make_plan();

  // Warm-up: two full run shapes (reset → boot → window) so every lazily
  // grown buffer (DRAM pages, log capacity, kernel task vectors) reaches
  // its steady-state footprint.
  for (int i = 0; i < 2; ++i) {
    testbed->reset();
    ASSERT_TRUE(scenario->setup(*testbed).is_ok());
    scenario->boot(*testbed);
    testbed->run(200);
  }

  const util::AllocationObserver::Window window;
  testbed->reset();
  EXPECT_EQ(window.allocations(), 0u)
      << "Testbed::reset() must not touch the heap in steady state";
}

// The snapshot contract's perf half: once a slot has captured its
// post-boot snapshot and served one warm run, restoring for the next
// run is pure bulk copy — zero heap allocations on the capture→restore
// path (dirty pages rewrite in place, the run arena rewinds to the
// snapshot mark, vectors and deques reuse their capacity).
TEST(TestbedPool, SnapshotRestorePerformsZeroHeapAllocations) {
  TestbedPool pool;
  const TestbedLease lease = pool.acquire("bananapi", "", bananapi_entry());
  Testbed* testbed = lease.get();
  const Scenario* scenario = find_scenario("freertos-steady");
  ASSERT_NE(scenario, nullptr);

  // Warm-up: boot, capture, run, restore twice so every lazily grown
  // buffer reaches steady state with the snapshot resident.
  for (int i = 0; i < 2; ++i) {
    testbed->reset();
    ASSERT_TRUE(scenario->setup(*testbed).is_ok());
    scenario->boot(*testbed);
    testbed->capture_snapshot("zero-alloc-pin");
    testbed->run(200);
    ASSERT_TRUE(testbed->restore_snapshot());
    testbed->run(200);
    ASSERT_TRUE(testbed->restore_snapshot());
  }

  ASSERT_TRUE(testbed->has_snapshot("zero-alloc-pin"));
  ASSERT_GT(testbed->snapshot_bytes(), 0u);
  testbed->run(200);
  const util::AllocationObserver::Window window;
  ASSERT_TRUE(testbed->restore_snapshot());
  EXPECT_EQ(window.allocations(), 0u)
      << "restore_snapshot() must not touch the heap in steady state";
}

// Executor-level reuse: across two pooled campaigns on the same key,
// slot construction is bounded by the worker count — never by the run
// or campaign count — and everything beyond those constructions is
// served from warm slots. (Assertions are scheduling-independent: a
// fast worker may finish the whole shard before its sibling leases, so
// per-campaign create counts can legitimately be 1 or 2.)
TEST(TestbedPool, ExecutorReusesSlotsAcrossRunsAndCampaigns) {
  TestPlan plan = find_scenario("freertos-steady")->make_plan();
  plan.runs = 6;
  plan.duration_ticks = 300;
  // Isolate from slots other tests may have parked in the global pool.
  TestbedPool::instance().clear();
  const auto before = TestbedPool::instance().stats();

  ExecutorConfig config;
  config.threads = 2;
  config.probe_recovery = false;
  for (int campaign = 0; campaign < 2; ++campaign) {
    CampaignExecutor executor(plan, config);
    (void)executor.execute();
    plan.seed ^= 0x1234;
  }

  const auto after = TestbedPool::instance().stats();
  const std::uint64_t creates = after.creates - before.creates;
  const std::uint64_t acquires = after.acquires - before.acquires;
  const std::uint64_t reuses = after.reuses - before.reuses;
  // Leases are lazy (first claimed run), so a fast worker can drain a
  // shard alone: between 1 and `threads` acquires per campaign.
  EXPECT_GE(acquires, 2u);
  EXPECT_LE(acquires, 4u);
  EXPECT_GE(creates, 1u);
  EXPECT_LE(creates, 2u) << "constructions bounded by workers, not campaigns";
  EXPECT_EQ(reuses, acquires - creates);
  EXPECT_GE(reuses, 1u) << "the second campaign must start on a warm slot";
  EXPECT_LE(after.idle_slots, 2u);
}

TEST(TestbedPool, FreshModeBypassesThePool) {
  TestPlan plan = find_scenario("freertos-steady")->make_plan();
  plan.runs = 2;
  plan.duration_ticks = 200;
  ExecutorConfig config;
  config.threads = 1;
  config.probe_recovery = false;
  config.reuse_testbeds = false;
  const auto before = TestbedPool::instance().stats();
  CampaignExecutor executor(plan, config);
  (void)executor.execute();
  const auto after = TestbedPool::instance().stats();
  EXPECT_EQ(after.acquires, before.acquires);
}

TEST(TestbedPool, UnknownBoardStillReportsHarnessErrorPerRun) {
  TestPlan plan = find_scenario("freertos-steady")->make_plan();
  plan.board = "no-such-board";
  plan.runs = 2;
  CampaignExecutor executor(plan, {1, false});
  const CampaignResult result = executor.execute();
  ASSERT_EQ(result.runs.size(), 2u);
  for (const RunResult& run : result.runs) {
    EXPECT_EQ(run.outcome, Outcome::HarnessError);
    EXPECT_NE(run.detail.find("no-such-board"), std::string::npos);
  }
}

TEST(TestbedPool, TuningBoardKeyOverridesPlanAndIsResolvedOnce) {
  TestPlan plan = find_scenario("freertos-steady")->make_plan();
  plan.board = "bananapi";
  plan.cell_tuning = "board quad-a7";
  CampaignExecutor executor(plan, {1, false});
  EXPECT_EQ(executor.board_name(), "quad-a7");
}

}  // namespace
}  // namespace mcs::fi
