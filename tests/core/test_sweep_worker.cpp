// The lease protocol under the distributed sweep runtime, in isolation:
// claims must be atomic (exactly one winner under contention), staleness
// must be measured by heartbeat age, steals of a dead worker's lease must
// resolve to one winner, and the spec/status plumbing must round-trip —
// these are the invariants that let N processes split a sweep over
// nothing but a shared directory.
#include "core/sweep_worker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace mcs::fi {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class CellLeaseTest : public testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: parallel ctest runs tests in separate processes,
    // and a fixture-shared path would race their SetUp cleanups.
    dir_ = fs::path(testing::TempDir()) /
           (std::string("mcs_lease_test_") +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Make an existing lease look `by` older than it is (a holder that
  /// stopped heartbeating `by` ago).
  void backdate(const std::string& cell, std::chrono::seconds by) {
    const std::string path = CellLease::lease_path(dir_.string(), cell);
    fs::last_write_time(path, fs::last_write_time(path) - by);
  }

  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

TEST_F(CellLeaseTest, ClaimHoldReleaseReclaim) {
  auto first = CellLease::try_claim(dir(), "cell_r100", "alpha", 60s);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_TRUE(first.value().held());
  EXPECT_FALSE(first.value().stole());

  // Live lease → EBusy for everyone else, including the same worker id.
  auto second = CellLease::try_claim(dir(), "cell_r100", "beta", 60s);
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), util::Code::EBusy);
  auto same = CellLease::try_claim(dir(), "cell_r100", "alpha", 60s);
  EXPECT_EQ(same.status().code(), util::Code::EBusy);

  // The decoded table names the holder.
  const auto info = CellLease::read(dir(), "cell_r100");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->cell_id, "cell_r100");
  EXPECT_EQ(info->worker_id, "alpha");
  EXPECT_EQ(info->pid, static_cast<long>(::getpid()));
  EXPECT_EQ(info->heartbeats, 0u);

  first.value().release();
  EXPECT_FALSE(first.value().held());
  EXPECT_FALSE(CellLease::read(dir(), "cell_r100").has_value());

  auto reclaim = CellLease::try_claim(dir(), "cell_r100", "beta", 60s);
  ASSERT_TRUE(reclaim.is_ok());
  EXPECT_EQ(CellLease::read(dir(), "cell_r100")->worker_id, "beta");
}

TEST_F(CellLeaseTest, DestructorReleasesAbandonDoesNot) {
  {
    auto lease = CellLease::try_claim(dir(), "raii", "alpha", 60s);
    ASSERT_TRUE(lease.is_ok());
  }
  EXPECT_FALSE(CellLease::read(dir(), "raii").has_value());

  {
    auto lease = CellLease::try_claim(dir(), "raii", "alpha", 60s);
    ASSERT_TRUE(lease.is_ok());
    lease.value().abandon();  // a worker that died holding the lease
  }
  EXPECT_TRUE(CellLease::read(dir(), "raii").has_value());
}

TEST_F(CellLeaseTest, ExactlyOneConcurrentClaimerWins) {
  // The atomic-claim property the whole runtime rests on: N threads
  // (standing in for N processes — the filesystem can't tell) race
  // try_claim on one cell; exactly one may win, every loser sees EBusy.
  constexpr int kClaimers = 16;
  std::atomic<int> winners{0};
  std::atomic<int> busy{0};
  std::vector<CellLease> held(kClaimers);
  std::vector<std::thread> threads;
  threads.reserve(kClaimers);
  for (int i = 0; i < kClaimers; ++i) {
    threads.emplace_back([&, i] {
      auto claim = CellLease::try_claim(dir(), "contended",
                                        "t" + std::to_string(i), 60s);
      if (claim.is_ok()) {
        held[i] = std::move(claim).value();
        held[i].abandon();  // keep the file: losers must stay losers
        ++winners;
      } else if (claim.status().code() == util::Code::EBusy) {
        ++busy;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(busy.load(), kClaimers - 1);
  EXPECT_TRUE(CellLease::read(dir(), "contended").has_value());
}

TEST_F(CellLeaseTest, StaleLeaseIsStolenFreshLeaseIsNot) {
  auto dead = CellLease::try_claim(dir(), "cell", "dead-worker", 60s);
  ASSERT_TRUE(dead.is_ok());
  dead.value().abandon();  // holder "dies" without releasing

  // Younger than the TTL → still the dead worker's; nobody may steal.
  auto early = CellLease::try_claim(dir(), "cell", "rescuer", 60s);
  ASSERT_FALSE(early.is_ok());
  EXPECT_EQ(early.status().code(), util::Code::EBusy);

  // Older than the TTL → stolen, and the claim reports the steal.
  backdate("cell", 120s);
  auto steal = CellLease::try_claim(dir(), "cell", "rescuer", 60s);
  ASSERT_TRUE(steal.is_ok()) << steal.status().to_string();
  EXPECT_TRUE(steal.value().stole());
  EXPECT_EQ(CellLease::read(dir(), "cell")->worker_id, "rescuer");
}

TEST_F(CellLeaseTest, ZeroTtlMakesAnyLeaseStealable) {
  auto held = CellLease::try_claim(dir(), "cell", "slow", 0ms);
  ASSERT_TRUE(held.is_ok());
  held.value().abandon();
  auto steal = CellLease::try_claim(dir(), "cell", "fast", 0ms);
  ASSERT_TRUE(steal.is_ok());
  EXPECT_TRUE(steal.value().stole());
}

TEST_F(CellLeaseTest, ExactlyOneConcurrentStealerWins) {
  auto dead = CellLease::try_claim(dir(), "cell", "dead-worker", 1s);
  ASSERT_TRUE(dead.is_ok());
  dead.value().abandon();
  backdate("cell", 60s);

  constexpr int kStealers = 8;
  std::atomic<int> winners{0};
  std::vector<CellLease> held(kStealers);
  std::vector<std::thread> threads;
  for (int i = 0; i < kStealers; ++i) {
    threads.emplace_back([&, i] {
      auto claim = CellLease::try_claim(dir(), "cell",
                                        "s" + std::to_string(i), 1s);
      if (claim.is_ok()) {
        held[i] = std::move(claim).value();
        held[i].abandon();
        ++winners;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactly one stealer ends up holding; the rest found a *fresh* lease
  // (the winner's) and backed off as EBusy.
  EXPECT_EQ(winners.load(), 1);
}

TEST_F(CellLeaseTest, HeartbeatRefreshesAgeAndCounter) {
  auto lease = CellLease::try_claim(dir(), "cell", "alpha", 60s);
  ASSERT_TRUE(lease.is_ok());
  backdate("cell", 120s);
  ASSERT_GT(CellLease::read(dir(), "cell")->age_seconds, 60.0);

  EXPECT_TRUE(lease.value().heartbeat());
  const auto info = CellLease::read(dir(), "cell");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->heartbeats, 1u);
  EXPECT_LT(info->age_seconds, 60.0);  // fresh again: not stealable

  auto claim = CellLease::try_claim(dir(), "cell", "beta", 60s);
  EXPECT_EQ(claim.status().code(), util::Code::EBusy);
}

TEST_F(CellLeaseTest, HeartbeatDetectsTheftAndYields) {
  auto lease = CellLease::try_claim(dir(), "cell", "slow", 1s);
  ASSERT_TRUE(lease.is_ok());
  // A peer judges "slow" dead and steals the lease...
  backdate("cell", 60s);
  auto thief = CellLease::try_claim(dir(), "cell", "thief", 1s);
  ASSERT_TRUE(thief.is_ok());
  // ...so the old holder's next heartbeat must fail and drop ownership
  // rather than clobber the thief's claim.
  EXPECT_FALSE(lease.value().heartbeat());
  EXPECT_FALSE(lease.value().held());
  EXPECT_EQ(CellLease::read(dir(), "cell")->worker_id, "thief");
}

TEST_F(CellLeaseTest, ListLeasesSortsByCellAndSkipsForeignFiles) {
  auto b = CellLease::try_claim(dir(), "b_cell", "beta", 60s);
  auto a = CellLease::try_claim(dir(), "a_cell", "alpha", 60s);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  std::ofstream(fs::path(dir()) / "a_cell.runlog") << "run 0: CORRECT\n";
  std::ofstream(fs::path(dir()) / "sweep.spec") << "scenario x\nrate 1\n";

  const std::vector<LeaseInfo> leases = list_leases(dir());
  ASSERT_EQ(leases.size(), 2u);
  EXPECT_EQ(leases[0].cell_id, "a_cell");
  EXPECT_EQ(leases[0].worker_id, "alpha");
  EXPECT_EQ(leases[1].cell_id, "b_cell");
  EXPECT_EQ(leases[1].worker_id, "beta");
}

// --- atomic writes -----------------------------------------------------------

TEST_F(CellLeaseTest, WriteTextAtomicCommitsWholeFilesAndLeavesNoLitter) {
  const std::string path = (fs::path(dir()) / "artifact.txt").string();
  ASSERT_TRUE(write_text_atomic(path, "first\n").is_ok());
  ASSERT_TRUE(write_text_atomic(path, "second\n", "tagged").is_ok());

  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "second\n");

  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // no .tmp left behind
}

// --- spec round trip ---------------------------------------------------------

TEST(SweepSpecRoundTrip, RenderedSpecParsesBackIdentically) {
  SweepSpec spec;
  spec.name = "dist-grid";
  spec.scenarios = {"freertos-steady", "dual-cell"};
  spec.rates = {100, 50};
  spec.boards = {"bananapi", "quad-a7"};
  spec.runs = 12;
  spec.seed = 0xDEADBEEF;
  spec.duration_ticks = 30'000;
  spec.cell_tuning = "ram 0x200000\nconsole trapped";
  spec.log_dir = "shared/sweep-logs";

  auto parsed = parse_sweep_spec(render_sweep_spec(spec));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const SweepSpec& back = parsed.value();
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.scenarios, spec.scenarios);
  EXPECT_EQ(back.rates, spec.rates);
  EXPECT_EQ(back.boards, spec.boards);
  EXPECT_EQ(back.runs, spec.runs);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.duration_ticks, spec.duration_ticks);
  EXPECT_EQ(back.cell_tuning, spec.cell_tuning);
  EXPECT_EQ(back.log_dir, spec.log_dir);

  // The property that makes --join trustworthy: identical expansion, so
  // identical per-cell plans, seeds and fingerprints on every worker.
  auto original = SweepDriver(spec).expand();
  auto roundtrip = SweepDriver(back).expand();
  ASSERT_TRUE(original.is_ok() && roundtrip.is_ok());
  ASSERT_EQ(original.value().size(), roundtrip.value().size());
  for (std::size_t i = 0; i < original.value().size(); ++i) {
    EXPECT_EQ(plan_fingerprint(original.value()[i]),
              plan_fingerprint(roundtrip.value()[i]));
  }
}

TEST(SweepSpecRoundTrip, SpecFileHonoursTheJoinersLogdir) {
  const fs::path dir = fs::path(testing::TempDir()) / "mcs_spec_file";
  fs::remove_all(dir);

  SweepSpec spec;
  spec.scenarios = {"freertos-steady"};
  spec.rates = {100};
  spec.log_dir = dir.string();
  ASSERT_TRUE(write_spec_file(spec).is_ok());

  // The joining host may mount the same share at a different path; the
  // recorded logdir line must lose to the path the joiner was given.
  auto read = read_spec_file(dir.string());
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(read.value().log_dir, dir.string());
  EXPECT_EQ(read.value().scenarios, spec.scenarios);

  EXPECT_FALSE(write_spec_file(SweepSpec{}).is_ok());  // no logdir
  EXPECT_FALSE(read_spec_file((dir / "nope").string()).is_ok());
  fs::remove_all(dir);
}

// --- status rendering --------------------------------------------------------

TEST(SweepStatusRender, StableLineOrientedShape) {
  SweepStatus status;
  status.job = "paper-grid";
  status.cells_done = 3;
  status.cells_total = 8;
  status.runs_per_sec = 41.25;
  status.eta_seconds = 12.5;
  LeaseInfo lease;
  lease.cell_id = "freertos-steady_r100";
  lease.worker_id = "w1";
  lease.pid = 4242;
  lease.heartbeats = 7;
  lease.age_seconds = 1.25;
  status.leases.push_back(lease);

  EXPECT_EQ(render_sweep_status(status),
            "job paper-grid\n"
            "cells 3/8\n"
            "runs_per_sec 41.2\n"
            "eta_seconds 12.5\n"
            "lease freertos-steady_r100 worker w1 pid 4242 heartbeats 7 "
            "age 1.2s\n");

  status.eta_seconds = -1.0;  // nothing executed yet → unknown
  EXPECT_NE(render_sweep_status(status).find("eta_seconds unknown"),
            std::string::npos);
}

}  // namespace
}  // namespace mcs::fi
