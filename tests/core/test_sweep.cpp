#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/scenario.hpp"

namespace mcs::fi {
namespace {

// --- spec parsing -----------------------------------------------------------

TEST(SweepSpec, ParsesTheFullVocabulary) {
  auto parsed = parse_sweep_spec(
      "# the paper's grid\n"
      "sweep \"paper-grid\"\n"
      "scenario freertos-steady dual-cell\n"
      "scenario inject-during-boot\n"
      "rate 100 50\n"
      "board bananapi quad-a7\n"
      "runs 12\n"
      "seed 0xDEAD\n"
      "duration 30000\n"
      "tuning ram 0x200000; console trapped\n"
      "logdir sweep-logs\n");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const SweepSpec& spec = parsed.value();
  EXPECT_EQ(spec.name, "paper-grid");
  EXPECT_EQ(spec.scenarios,
            (std::vector<std::string>{"freertos-steady", "dual-cell",
                                      "inject-during-boot"}));
  EXPECT_EQ(spec.rates, (std::vector<std::uint32_t>{100, 50}));
  EXPECT_EQ(spec.boards, (std::vector<std::string>{"bananapi", "quad-a7"}));
  EXPECT_EQ(spec.runs, 12u);
  EXPECT_EQ(spec.seed, 0xDEADu);
  EXPECT_EQ(spec.duration_ticks, 30000u);
  EXPECT_EQ(spec.cell_tuning, "ram 0x200000\n console trapped");
  EXPECT_EQ(spec.log_dir, "sweep-logs");
  EXPECT_EQ(spec.cell_count(), 3u * 2u * 2u);
}

TEST(SweepSpec, DefaultsApplyWhenKeysAreOmitted) {
  auto parsed = parse_sweep_spec("scenario freertos-steady\nrate 100\n");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().name, "sweep");
  EXPECT_EQ(parsed.value().runs, 8u);
  EXPECT_TRUE(parsed.value().boards.empty());
  EXPECT_EQ(parsed.value().cell_count(), 1u);
}

TEST(SweepSpec, RejectsMalformedInput) {
  // Every rejection carries a line number or a grid-level explanation.
  EXPECT_FALSE(parse_sweep_spec("rate 100\n").is_ok());  // no scenario
  EXPECT_FALSE(parse_sweep_spec("scenario a\n").is_ok());  // no rate
  EXPECT_FALSE(parse_sweep_spec("scenario a\nrate 0\n").is_ok());
  EXPECT_FALSE(parse_sweep_spec("scenario a\nrate x\n").is_ok());
  EXPECT_FALSE(parse_sweep_spec("scenario a\nrate 100\nwibble 3\n").is_ok());
  EXPECT_FALSE(parse_sweep_spec("sweep unquoted\nscenario a\nrate 100\n").is_ok());
  EXPECT_FALSE(parse_sweep_spec("scenario a\nrate 100\nruns 0\n").is_ok());
  // Duplicated axis values would alias per-cell log files.
  EXPECT_FALSE(parse_sweep_spec("scenario a a\nrate 100\n").is_ok());
  EXPECT_FALSE(parse_sweep_spec("scenario a\nrate 100 100\n").is_ok());
  EXPECT_FALSE(
      parse_sweep_spec("scenario a\nrate 100\nboard b b\n").is_ok());
}

// --- grid expansion ---------------------------------------------------------

SweepSpec small_spec() {
  SweepSpec spec;
  spec.scenarios = {"freertos-steady", "inject-during-boot"};
  spec.rates = {100, 50};
  spec.runs = 3;
  spec.seed = 0xFEED;
  spec.duration_ticks = 2'000;
  return spec;
}

TEST(SweepDriver, ExpandsTheGridInFixedOrderWithDistinctSeeds) {
  SweepDriver driver(small_spec());
  auto plans = driver.expand();
  ASSERT_TRUE(plans.is_ok()) << plans.status().to_string();
  ASSERT_EQ(plans.value().size(), 4u);
  // Scenario-major, then rate: the order the comparison report columns use.
  EXPECT_EQ(plans.value()[0].name, "freertos-steady_r100");
  EXPECT_EQ(plans.value()[1].name, "freertos-steady_r50");
  EXPECT_EQ(plans.value()[2].name, "inject-during-boot_r100");
  EXPECT_EQ(plans.value()[3].name, "inject-during-boot_r50");
  std::set<std::uint64_t> seeds;
  for (const TestPlan& plan : plans.value()) {
    EXPECT_EQ(plan.runs, 3u);
    EXPECT_EQ(plan.duration_ticks, 2'000u);
    seeds.insert(plan.seed);
  }
  EXPECT_EQ(seeds.size(), 4u);  // every cell gets its own seed stream

  // The same spec expands to the same plans — cell seeds depend only on
  // grid position, which is what makes resume deterministic.
  auto again = SweepDriver(small_spec()).expand();
  ASSERT_TRUE(again.is_ok());
  for (std::size_t i = 0; i < plans.value().size(); ++i) {
    EXPECT_EQ(plans.value()[i].seed, again.value()[i].seed);
    EXPECT_EQ(plans.value()[i].name, again.value()[i].name);
  }
}

TEST(SweepDriver, BoardAxisOverridesTheScenarioDefault) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"freertos-steady"};
  spec.rates = {100};
  spec.boards = {"bananapi", "quad-a7"};
  auto plans = SweepDriver(spec).expand();
  ASSERT_TRUE(plans.is_ok()) << plans.status().to_string();
  ASSERT_EQ(plans.value().size(), 2u);
  EXPECT_EQ(plans.value()[0].name, "freertos-steady_r100_bananapi");
  EXPECT_EQ(plans.value()[1].name, "freertos-steady_r100_quad-a7");
  // The board rides the tuning vocabulary so it survives the executor's
  // tuning-overrides-plan precedence.
  EXPECT_NE(plans.value()[1].cell_tuning.find("board quad-a7"),
            std::string::npos);
}

TEST(SweepDriver, ExpandRejectsDuplicateAxisValues) {
  // Specs built from CLI flags or code never pass parse_sweep_spec, so
  // expand() must enforce the aliasing rule itself: duplicated axis
  // values collapse onto one cell id — and one log file.
  SweepSpec spec = small_spec();
  spec.scenarios = {"freertos-steady", "freertos-steady"};
  EXPECT_FALSE(SweepDriver(spec).expand().is_ok());

  spec = small_spec();
  spec.rates = {100, 100};
  EXPECT_FALSE(SweepDriver(spec).expand().is_ok());

  spec = small_spec();
  spec.boards = {"bananapi", "bananapi"};
  EXPECT_FALSE(SweepDriver(spec).expand().is_ok());
}

TEST(SweepDriver, RejectsUnknownScenarioAndBoardKeys) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"no-such-scenario"};
  EXPECT_FALSE(SweepDriver(spec).expand().is_ok());

  spec = small_spec();
  spec.boards = {"no-such-board"};
  const auto expanded = SweepDriver(spec).expand();
  ASSERT_FALSE(expanded.is_ok());
  EXPECT_NE(expanded.status().message().find("no-such-board"),
            std::string::npos);
}

// --- execution --------------------------------------------------------------

TEST(SweepDriver, ExecutesEveryCellAndFoldsTheTotals) {
  SweepDriver driver(small_spec(), {/*threads=*/2, /*probe_recovery=*/true});
  auto swept = driver.execute();
  ASSERT_TRUE(swept.is_ok()) << swept.status().to_string();
  const SweepResult& result = swept.value();
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.executed, 4u);
  EXPECT_EQ(result.resumed, 0u);
  std::uint64_t runs = 0;
  for (const SweepCellResult& cell : result.cells) {
    EXPECT_FALSE(cell.resumed);
    EXPECT_TRUE(cell.log_path.empty());  // no logdir → nothing persisted
    EXPECT_EQ(cell.aggregate.distribution.total(), 3u);
    runs += cell.aggregate.distribution.total();
  }
  EXPECT_EQ(result.total.distribution.total(), runs);
}

TEST(SweepDriver, CellAggregatesAreBitIdenticalAcrossThreadCounts) {
  auto one = SweepDriver(small_spec(), {1, true}).execute();
  auto four = SweepDriver(small_spec(), {4, true}).execute();
  auto eight = SweepDriver(small_spec(), {8, true}).execute();
  ASSERT_TRUE(one.is_ok() && four.is_ok() && eight.is_ok());
  for (const auto* other : {&four.value(), &eight.value()}) {
    ASSERT_EQ(one.value().cells.size(), other->cells.size());
    for (std::size_t i = 0; i < one.value().cells.size(); ++i) {
      const analysis::CampaignAggregate& a = one.value().cells[i].aggregate;
      const analysis::CampaignAggregate& b = other->cells[i].aggregate;
      for (std::size_t o = 0; o < kNumOutcomes; ++o) {
        EXPECT_EQ(a.distribution.count(static_cast<Outcome>(o)),
                  b.distribution.count(static_cast<Outcome>(o)));
      }
      EXPECT_EQ(a.injections, b.injections);
      EXPECT_EQ(a.cell_failures, b.cell_failures);
      EXPECT_EQ(a.reclaimed, b.reclaimed);
      EXPECT_EQ(a.detection_latency.n(), b.detection_latency.n());
      // Exact — not approximate — equality: the sink folds in run order,
      // so the floating-point accumulation is schedule-independent.
      EXPECT_EQ(a.detection_latency.mean(), b.detection_latency.mean());
      EXPECT_EQ(a.detection_latency.stddev(), b.detection_latency.stddev());
    }
  }
}

TEST(SweepDriver, CellLogPathJoinsDirAndStem) {
  EXPECT_EQ(SweepDriver::cell_log_path("logs", "a_r100"),
            "logs/a_r100.runlog");
}

// --- cell persistence primitives --------------------------------------------
// The shared substrate both the single-process driver and the
// distributed workers commit cells through: whole-file atomic renames,
// meta written only after the log, per-run hook for lease heartbeats.

TEST(CellPersistence, ExecuteCellCommitsLogThenMetaWithNoTempLitter) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "mcs_execute_cell";
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto plans = SweepDriver(small_spec()).expand();
  ASSERT_TRUE(plans.is_ok());
  const TestPlan& plan = plans.value().front();
  const std::string log_path =
      SweepDriver::cell_log_path(dir.string(), plan.name);

  // A stale sidecar from an earlier crash (meta present, log absent)
  // must be swept away, never trusted.
  { std::ofstream(cell_meta_path(log_path)) << "stale-fingerprint\n"; }

  std::uint32_t per_run_fires = 0;
  auto aggregate = execute_cell(plan, log_path, {1, true}, "tagged",
                                [&per_run_fires](std::uint32_t) {
                                  ++per_run_fires;
                                });
  ASSERT_TRUE(aggregate.is_ok()) << aggregate.status().to_string();
  EXPECT_EQ(aggregate.value().distribution.total(), plan.runs);
  EXPECT_EQ(per_run_fires, plan.runs);  // the lease-heartbeat hook

  // Committed: log + matching fingerprint sidecar, nothing else.
  analysis::CampaignAggregate rebuilt;
  EXPECT_TRUE(cell_log_complete(plan, log_path, rebuilt));
  EXPECT_EQ(rebuilt.distribution.total(), plan.runs);
  std::ifstream meta(cell_meta_path(log_path));
  std::stringstream fingerprint;
  fingerprint << meta.rdbuf();
  EXPECT_EQ(fingerprint.str(), plan_fingerprint(plan));
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << "temp litter: " << entry.path();
  }
  fs::remove_all(dir);
}

TEST(CellPersistence, FingerprintPinsEveryResumeRelevantPlanField) {
  auto plans = SweepDriver(small_spec()).expand();
  ASSERT_TRUE(plans.is_ok());
  TestPlan plan = plans.value().front();
  const std::string base = plan_fingerprint(plan);

  TestPlan reseeded = plan;
  reseeded.seed ^= 1;
  EXPECT_NE(plan_fingerprint(reseeded), base);

  TestPlan longer = plan;
  longer.duration_ticks += 1;
  EXPECT_NE(plan_fingerprint(longer), base);

  TestPlan more_runs = plan;
  more_runs.runs += 1;
  EXPECT_NE(plan_fingerprint(more_runs), base);

  EXPECT_EQ(plan_fingerprint(plan), base);  // and it is a pure function
}

TEST(CellPersistence, MetaPathIsTheLogPathPlusMeta) {
  EXPECT_EQ(cell_meta_path("logs/a_r100.runlog"), "logs/a_r100.runlog.meta");
}

// Byte-for-byte regression pin: a register-domain plan must hash to the
// exact pre-domain-refactor fingerprint, so logdirs written before the
// unified injection layer resume instead of silently re-executing. Any
// edit that changes these bytes invalidates every existing sweep logdir
// — treat a failure here as an on-disk-format break, not a test to
// update casually.
TEST(CellPersistence, RegisterPlanFingerprintIsThePreDomainFormat) {
  TestPlan plan;
  plan.scenario = "freertos-steady";
  plan.board = "bananapi";
  plan.target = jh::HookPoint::ArchHandleTrap;
  plan.fault = FaultModelKind::SingleBitFlip;
  plan.fault_registers.clear();
  plan.fault_count = 2;
  plan.rate = 100;
  plan.phase = 0;
  plan.cpu_filter = -1;
  plan.duration_ticks = 2'000;
  plan.runs = 4;
  plan.seed = 7;
  plan.inject_during_boot = false;
  plan.cell_tuning.clear();
  EXPECT_EQ(plan_fingerprint(plan),
            "scenario freertos-steady\n"
            "board bananapi\n"
            "target 1\n"
            "fault 0\n"
            "fault_registers\n"
            "fault_count 2\n"
            "rate 100\n"
            "phase 0\n"
            "cpu_filter -1\n"
            "duration 2000\n"
            "runs 4\n"
            "seed 7\n"
            "inject_during_boot 0\n"
            "tuning \n");

  // A non-register domain appends exactly one line at the end — nothing
  // in the legacy prefix moves.
  plan.fault_domain = FaultDomain::Gic;
  EXPECT_EQ(plan_fingerprint(plan),
            "scenario freertos-steady\n"
            "board bananapi\n"
            "target 1\n"
            "fault 0\n"
            "fault_registers\n"
            "fault_count 2\n"
            "rate 100\n"
            "phase 0\n"
            "cpu_filter -1\n"
            "duration 2000\n"
            "runs 4\n"
            "seed 7\n"
            "inject_during_boot 0\n"
            "tuning \n"
            "domain gic\n");
}

// --- fault-domain axis -------------------------------------------------------

TEST(SweepSpec, ParsesTheDomainAxis) {
  auto parsed = parse_sweep_spec(
      "scenario freertos-steady\n"
      "rate 100\n"
      "domain register gic dram\n");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().domains,
            (std::vector<std::string>{"register", "gic", "dram"}));
  EXPECT_EQ(parsed.value().cell_count(), 3u);
  // Duplicated domain values would alias per-cell log files.
  EXPECT_FALSE(
      parse_sweep_spec("scenario a\nrate 100\ndomain gic gic\n").is_ok());
}

TEST(SweepSpec, DomainAxisRoundTripsThroughRender) {
  SweepSpec spec = small_spec();
  spec.domains = {"gic", "irq-delivery"};
  auto parsed = parse_sweep_spec(render_sweep_spec(spec));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().domains, spec.domains);
  EXPECT_EQ(parsed.value().cell_count(), spec.cell_count());
}

TEST(SweepDriver, DomainAxisOverridesThePlanDefault) {
  SweepSpec spec = small_spec();
  spec.scenarios = {"freertos-steady"};
  spec.rates = {100};
  spec.domains = {"register", "gic", "dram"};
  auto plans = SweepDriver(spec).expand();
  ASSERT_TRUE(plans.is_ok()) << plans.status().to_string();
  ASSERT_EQ(plans.value().size(), 3u);
  EXPECT_EQ(plans.value()[0].name, "freertos-steady_r100_register");
  EXPECT_EQ(plans.value()[0].fault_domain, FaultDomain::Register);
  EXPECT_EQ(plans.value()[1].name, "freertos-steady_r100_gic");
  EXPECT_EQ(plans.value()[1].fault_domain, FaultDomain::Gic);
  EXPECT_EQ(plans.value()[2].name, "freertos-steady_r100_dram");
  EXPECT_EQ(plans.value()[2].fault_domain, FaultDomain::Dram);
  // The domain rides the tuning vocabulary like the board axis, so it
  // survives the executor's tuning-overrides-plan precedence.
  EXPECT_NE(plans.value()[1].cell_tuning.find("fault domain gic"),
            std::string::npos);
}

TEST(SweepDriver, EmptyDomainAxisKeepsLegacyCellIdsAndSeeds) {
  // No domain axis → cell ids and per-cell seeds are exactly what the
  // pre-domain driver dealt: old logdirs keep resuming.
  auto legacy = SweepDriver(small_spec()).expand();
  ASSERT_TRUE(legacy.is_ok());
  EXPECT_EQ(legacy.value()[0].name, "freertos-steady_r100");
  for (const TestPlan& plan : legacy.value()) {
    EXPECT_EQ(plan.fault_domain, FaultDomain::Register);
    EXPECT_EQ(plan.cell_tuning.find("fault domain"), std::string::npos);
  }
}

TEST(SweepDriver, RejectsUnknownDomainNames) {
  SweepSpec spec = small_spec();
  spec.domains = {"no-such-domain"};
  const auto expanded = SweepDriver(spec).expand();
  ASSERT_FALSE(expanded.is_ok());
  EXPECT_NE(expanded.status().message().find("no-such-domain"),
            std::string::npos);
}

TEST(SweepDriver, DomainCellAggregatesAreBitIdenticalAcrossThreadCounts) {
  SweepSpec spec;
  spec.scenarios = {"freertos-steady"};
  spec.rates = {100};
  spec.domains = {"gic", "irq-delivery", "device-mmio", "dram"};
  spec.runs = 3;
  spec.seed = 0xD0;
  spec.duration_ticks = 2'000;
  auto one = SweepDriver(spec, {1, true}).execute();
  auto four = SweepDriver(spec, {4, true}).execute();
  auto eight = SweepDriver(spec, {8, true}).execute();
  ASSERT_TRUE(one.is_ok() && four.is_ok() && eight.is_ok());
  for (const auto* other : {&four.value(), &eight.value()}) {
    ASSERT_EQ(one.value().cells.size(), other->cells.size());
    for (std::size_t i = 0; i < one.value().cells.size(); ++i) {
      const analysis::CampaignAggregate& a = one.value().cells[i].aggregate;
      const analysis::CampaignAggregate& b = other->cells[i].aggregate;
      for (std::size_t o = 0; o < kNumOutcomes; ++o) {
        EXPECT_EQ(a.distribution.count(static_cast<Outcome>(o)),
                  b.distribution.count(static_cast<Outcome>(o)));
      }
      EXPECT_EQ(a.injections, b.injections);
      EXPECT_EQ(a.injections_by_domain, b.injections_by_domain);
      EXPECT_EQ(a.detection_latency.mean(), b.detection_latency.mean());
    }
  }
  // Every non-register cell attributed its injections to its own domain.
  for (std::size_t i = 0; i < spec.domains.size(); ++i) {
    const analysis::CampaignAggregate& agg = one.value().cells[i].aggregate;
    FaultDomain domain;
    ASSERT_TRUE(fault_domain_from_name(spec.domains[i], domain));
    EXPECT_EQ(agg.injections_by_domain[static_cast<std::size_t>(domain)],
              agg.injections);
  }
}

}  // namespace
}  // namespace mcs::fi
