#include "core/campaign.hpp"

#include <gtest/gtest.h>

namespace mcs::fi {
namespace {

TestPlan quick_medium_plan(std::uint32_t runs) {
  TestPlan plan = paper_medium_trap_plan();
  plan.runs = runs;
  // Short observation with an early phase so every run still receives an
  // injection without simulating a full minute.
  plan.duration_ticks = 3'000;
  plan.phase = 2;
  return plan;
}

TEST(Campaign, ExecutesRequestedRuns) {
  Campaign campaign(quick_medium_plan(4));
  const CampaignResult result = campaign.execute();
  EXPECT_EQ(result.runs.size(), 4u);
  EXPECT_EQ(result.distribution().total(), 4u);
}

TEST(Campaign, EveryRunReceivesInjections) {
  Campaign campaign(quick_medium_plan(4));
  const CampaignResult result = campaign.execute();
  for (const RunResult& run : result.runs) {
    EXPECT_GE(run.injections, 1u);
    EXPECT_GT(run.flipped_bits, 0u);
  }
  EXPECT_GE(result.total_injections(), 4u);
}

TEST(Campaign, DeterministicForSeed) {
  Campaign a(quick_medium_plan(6));
  Campaign b(quick_medium_plan(6));
  const CampaignResult result_a = a.execute();
  const CampaignResult result_b = b.execute();
  ASSERT_EQ(result_a.runs.size(), result_b.runs.size());
  for (std::size_t i = 0; i < result_a.runs.size(); ++i) {
    EXPECT_EQ(result_a.runs[i].outcome, result_b.runs[i].outcome) << i;
    EXPECT_EQ(result_a.runs[i].injections, result_b.runs[i].injections) << i;
  }
}

TEST(Campaign, DifferentSeedsDiverge) {
  TestPlan plan_a = quick_medium_plan(8);
  TestPlan plan_b = quick_medium_plan(8);
  plan_b.seed = plan_a.seed + 1;
  const CampaignResult a = Campaign(plan_a).execute();
  const CampaignResult b = Campaign(plan_b).execute();
  bool any_difference = false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    if (a.runs[i].outcome != b.runs[i].outcome) any_difference = true;
  }
  // Eight medium runs with different faults almost surely differ; if this
  // ever flakes the seeds were astronomically unlucky.
  EXPECT_TRUE(any_difference);
}

TEST(Campaign, ProgressCallbackFires) {
  Campaign campaign(quick_medium_plan(3));
  int calls = 0;
  campaign.set_progress([&](std::uint32_t index, const RunResult&) {
    EXPECT_EQ(index, static_cast<std::uint32_t>(calls));
    ++calls;
  });
  (void)campaign.execute();
  EXPECT_EQ(calls, 3);
}

TEST(Campaign, ExecuteOneIsReplayable) {
  Campaign campaign(quick_medium_plan(1));
  const RunResult a = campaign.execute_one(777);
  const RunResult b = campaign.execute_one(777);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.uart1_bytes, b.uart1_bytes);
}

TEST(Campaign, RecoveryProbeRecordedOnFailures) {
  TestPlan plan = quick_medium_plan(12);
  Campaign campaign(plan);
  const CampaignResult result = campaign.execute();
  for (const RunResult& run : result.runs) {
    if (run.outcome == Outcome::CpuPark) {
      // §III: after a CPU park, destroying/shutting down the cell works.
      EXPECT_TRUE(run.shutdown_reclaimed);
    }
    if (run.outcome == Outcome::PanicPark) {
      EXPECT_FALSE(run.shutdown_reclaimed);  // nothing recoverable
    }
  }
}

TEST(Campaign, RunLogLineMentionsOutcome) {
  RunResult run;
  run.outcome = Outcome::PanicPark;
  run.detail = "HYP stack pointer corrupted";
  run.injections = 2;
  const std::string line = run_log_line(7, run);
  EXPECT_NE(line.find("run 7"), std::string::npos);
  EXPECT_NE(line.find("panic-park"), std::string::npos);
  EXPECT_NE(line.find("HYP stack"), std::string::npos);
}

TEST(Campaign, MeanDetectionLatencyIgnoresCleanRuns) {
  CampaignResult result;
  RunResult clean;
  clean.outcome = Outcome::Correct;
  result.runs.push_back(clean);
  RunResult failed;
  failed.first_injection_tick = 100;
  failed.failure_tick = 150;
  result.runs.push_back(failed);
  EXPECT_DOUBLE_EQ(result.mean_detection_latency(), 50.0);
}

}  // namespace
}  // namespace mcs::fi
