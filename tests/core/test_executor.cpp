#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <set>

namespace mcs::fi {
namespace {

TestPlan quick_plan(std::uint32_t runs) {
  TestPlan plan = paper_medium_trap_plan();
  plan.runs = runs;
  plan.duration_ticks = 1'500;
  plan.phase = 2;
  return plan;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome) << i;
    EXPECT_EQ(a.runs[i].detail, b.runs[i].detail) << i;
    EXPECT_EQ(a.runs[i].injections, b.runs[i].injections) << i;
    EXPECT_EQ(a.runs[i].flipped_bits, b.runs[i].flipped_bits) << i;
    EXPECT_EQ(a.runs[i].first_injection_tick, b.runs[i].first_injection_tick) << i;
    EXPECT_EQ(a.runs[i].failure_tick, b.runs[i].failure_tick) << i;
    EXPECT_EQ(a.runs[i].detection_latency(), b.runs[i].detection_latency()) << i;
    EXPECT_EQ(a.runs[i].uart1_bytes, b.runs[i].uart1_bytes) << i;
    EXPECT_EQ(a.runs[i].shutdown_reclaimed, b.runs[i].shutdown_reclaimed) << i;
  }
}

// The acceptance bar of the engine: a 64-run campaign is bit-identical
// regardless of the worker count.
TEST(CampaignExecutor, SixtyFourRunsIdenticalAcrossOneTwoEightThreads) {
  const TestPlan plan = quick_plan(64);
  const CampaignResult serial = CampaignExecutor(plan, {1, true}).execute();
  const CampaignResult two = CampaignExecutor(plan, {2, true}).execute();
  const CampaignResult eight = CampaignExecutor(plan, {8, true}).execute();
  expect_identical(serial, two);
  expect_identical(serial, eight);
}

// Sharding determinism is a property of the engine, not of one board:
// the same campaign on every registered board variant must stay
// bit-identical at 1, 4 and 8 worker threads.
TEST(CampaignExecutor, ShardingDeterministicOnEveryBoardVariant) {
  for (const char* board : {"bananapi", "quad-a7"}) {
    TestPlan plan = quick_plan(24);
    plan.board = board;
    const CampaignResult one = CampaignExecutor(plan, {1, true}).execute();
    const CampaignResult four = CampaignExecutor(plan, {4, true}).execute();
    const CampaignResult eight = CampaignExecutor(plan, {8, true}).execute();
    SCOPED_TRACE(board);
    expect_identical(one, four);
    expect_identical(one, eight);
  }
}

TEST(CampaignExecutor, UnknownBoardIsAHarnessError) {
  TestPlan plan = quick_plan(2);
  plan.board = "hexa-a53";
  const CampaignResult result = CampaignExecutor(plan, {2, true}).execute();
  ASSERT_EQ(result.runs.size(), 2u);
  for (const RunResult& run : result.runs) {
    EXPECT_EQ(run.outcome, Outcome::HarnessError);
    EXPECT_NE(run.detail.find("hexa-a53"), std::string::npos);
  }
}

TEST(CampaignExecutor, TuningBoardKeyOverridesPlanBoard) {
  // A plan pinned to the Banana Pi but tuned with `board quad-a7` must
  // run on the quad board — visible through the ivshmem-traffic setup,
  // which refuses boards without spare cores.
  TestPlan plan = quick_plan(1);
  plan.scenario = "ivshmem-traffic";
  plan.board = "bananapi";
  plan.cell_tuning = "board quad-a7";
  const CampaignResult result = CampaignExecutor(plan, {1, true}).execute();
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_NE(result.runs[0].outcome, Outcome::HarnessError)
      << result.runs[0].detail;
}

TEST(CampaignExecutor, MatchesSerialCampaignClass) {
  const TestPlan plan = quick_plan(12);
  const CampaignResult via_campaign = Campaign(plan).execute();
  const CampaignResult via_executor = CampaignExecutor(plan, {4, true}).execute();
  expect_identical(via_campaign, via_executor);
}

TEST(CampaignExecutor, ProgressFiresOncePerRunWithUniqueIndices) {
  const TestPlan plan = quick_plan(16);
  CampaignExecutor executor(plan, {4, true});
  std::mutex mutex;
  std::set<std::uint32_t> seen;
  executor.set_progress([&](std::uint32_t index, const RunResult&) {
    const std::lock_guard<std::mutex> lock(mutex);
    EXPECT_TRUE(seen.insert(index).second) << "duplicate index " << index;
  });
  const CampaignResult result = executor.execute();
  EXPECT_EQ(result.runs.size(), 16u);
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 15u);
}

TEST(CampaignExecutor, SerialProgressArrivesInRunOrder) {
  CampaignExecutor executor(quick_plan(5), {1, true});
  std::uint32_t expected = 0;
  executor.set_progress([&](std::uint32_t index, const RunResult&) {
    EXPECT_EQ(index, expected++);
  });
  (void)executor.execute();
  EXPECT_EQ(expected, 5u);
}

TEST(CampaignExecutor, ExecuteOneMatchesCampaignReplay) {
  const TestPlan plan = quick_plan(1);
  CampaignExecutor executor(plan, {1, true});
  Campaign campaign(plan);
  const RunResult a = executor.execute_one(777);
  const RunResult b = campaign.execute_one(777);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.uart1_bytes, b.uart1_bytes);
}

TEST(CampaignExecutor, ProbeRecoveryOffLeavesReclaimUnset) {
  TestPlan plan = quick_plan(10);
  const CampaignResult result = CampaignExecutor(plan, {2, false}).execute();
  for (const RunResult& run : result.runs) {
    EXPECT_FALSE(run.shutdown_reclaimed);
  }
}

TEST(CampaignExecutor, ZeroRunPlanYieldsEmptyResult) {
  const CampaignResult result =
      CampaignExecutor(quick_plan(0), {4, true}).execute();
  EXPECT_TRUE(result.runs.empty());
  EXPECT_EQ(result.distribution().total(), 0u);
}

TEST(CampaignExecutor, ScenarioSelectionAffectsResults) {
  // inject-during-boot opens the management path to faults; with an early
  // phase the two scenarios must diverge somewhere over enough runs.
  TestPlan steady = quick_plan(10);
  TestPlan during_boot = quick_plan(10);
  during_boot.scenario = "inject-during-boot";
  during_boot.phase = 1;
  const CampaignResult a = CampaignExecutor(steady, {2, true}).execute();
  const CampaignResult b = CampaignExecutor(during_boot, {2, true}).execute();
  // Same seeds, different lifecycle: the injection lands in a different
  // frame, so at minimum the timing observables must diverge somewhere.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    if (a.runs[i].outcome != b.runs[i].outcome ||
        a.runs[i].injections != b.runs[i].injections ||
        a.runs[i].uart1_bytes != b.runs[i].uart1_bytes ||
        a.runs[i].first_injection_tick != b.runs[i].first_injection_tick) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace mcs::fi
