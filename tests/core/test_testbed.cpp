#include "core/testbed.hpp"

#include <gtest/gtest.h>

namespace mcs::fi {
namespace {

TEST(Testbed, EnableIsIdempotent) {
  Testbed testbed;
  EXPECT_TRUE(testbed.enable_hypervisor().is_ok());
  EXPECT_TRUE(testbed.enable_hypervisor().is_ok());
  EXPECT_TRUE(testbed.hypervisor().is_enabled());
}

TEST(Testbed, BootBringsUpThePaperDeployment) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  ASSERT_NE(testbed.freertos_cell(), nullptr);
  EXPECT_EQ(testbed.freertos_cell()->state(), jh::CellState::Running);
  EXPECT_TRUE(testbed.board().cpu(Testbed::kFreeRtosCpu).is_online());
  EXPECT_EQ(testbed.hypervisor().cpu_owner(Testbed::kRootCpu), jh::kRootCellId);
  EXPECT_EQ(testbed.hypervisor().cpu_owner(Testbed::kFreeRtosCpu),
            testbed.freertos_cell_id());
}

TEST(Testbed, GoldenProfileFindsTheThreeCandidates) {
  // The paper's profiling step: golden runs show which hypervisor
  // functions are exercised — all three candidates must be hot.
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  const auto profile = testbed.profile_golden(10'000);
  EXPECT_GT(profile.irqchip_entries, 1'000u);  // tick interrupts
  EXPECT_GT(profile.trap_entries, 50u);
  EXPECT_GT(profile.hvc_entries, 50u);
  EXPECT_GT(profile.per_cpu_traps[0], 0u);
  EXPECT_GT(profile.per_cpu_traps[1], 0u);
}

TEST(Testbed, ShutdownAndDestroyRoundTrip) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  const jh::CellId id = testbed.freertos_cell_id();
  testbed.shutdown_freertos_cell();
  EXPECT_EQ(testbed.hypervisor().find_cell(id)->state(),
            jh::CellState::ShutDown);
  testbed.destroy_freertos_cell();
  EXPECT_EQ(testbed.hypervisor().find_cell(id), nullptr);
}

TEST(Testbed, RunAdvancesBoardTime) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.run(123);
  EXPECT_EQ(testbed.board().now().value, 123u);
}

TEST(Testbed, TwoTestbedsAreIndependent) {
  Testbed a;
  Testbed b;
  ASSERT_TRUE(a.enable_hypervisor().is_ok());
  ASSERT_TRUE(b.enable_hypervisor().is_ok());
  a.boot_freertos_cell();
  EXPECT_NE(a.freertos_cell(), nullptr);
  EXPECT_EQ(b.freertos_cell(), nullptr);
  EXPECT_EQ(b.board().now().value, 0u);
}

}  // namespace
}  // namespace mcs::fi
