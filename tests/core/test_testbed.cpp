#include "core/testbed.hpp"

#include <gtest/gtest.h>

#include "hypervisor/ivshmem.hpp"
#include "platform/board_registry.hpp"

namespace mcs::fi {
namespace {

TEST(Testbed, EnableIsIdempotent) {
  Testbed testbed;
  EXPECT_TRUE(testbed.enable_hypervisor().is_ok());
  EXPECT_TRUE(testbed.enable_hypervisor().is_ok());
  EXPECT_TRUE(testbed.hypervisor().is_enabled());
}

TEST(Testbed, BootBringsUpThePaperDeployment) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  ASSERT_NE(testbed.freertos_cell(), nullptr);
  EXPECT_EQ(testbed.freertos_cell()->state(), jh::CellState::Running);
  EXPECT_TRUE(testbed.board().cpu(Testbed::kFreeRtosCpu).is_online());
  EXPECT_EQ(testbed.hypervisor().cpu_owner(Testbed::kRootCpu), jh::kRootCellId);
  EXPECT_EQ(testbed.hypervisor().cpu_owner(Testbed::kFreeRtosCpu),
            testbed.freertos_cell_id());
}

TEST(Testbed, GoldenProfileFindsTheThreeCandidates) {
  // The paper's profiling step: golden runs show which hypervisor
  // functions are exercised — all three candidates must be hot.
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  const auto profile = testbed.profile_golden(10'000);
  EXPECT_GT(profile.irqchip_entries, 1'000u);  // tick interrupts
  EXPECT_GT(profile.trap_entries, 50u);
  EXPECT_GT(profile.hvc_entries, 50u);
  EXPECT_GT(profile.per_cpu_traps[0], 0u);
  EXPECT_GT(profile.per_cpu_traps[1], 0u);
}

TEST(Testbed, ShutdownAndDestroyRoundTrip) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  const jh::CellId id = testbed.freertos_cell_id();
  testbed.shutdown_freertos_cell();
  EXPECT_EQ(testbed.hypervisor().find_cell(id)->state(),
            jh::CellState::ShutDown);
  testbed.destroy_freertos_cell();
  EXPECT_EQ(testbed.hypervisor().find_cell(id), nullptr);
}

TEST(Testbed, RunAdvancesBoardTime) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.run(123);
  EXPECT_EQ(testbed.board().now().value, 123u);
}

TEST(Testbed, TwoTestbedsAreIndependent) {
  Testbed a;
  Testbed b;
  ASSERT_TRUE(a.enable_hypervisor().is_ok());
  ASSERT_TRUE(b.enable_hypervisor().is_ok());
  a.boot_freertos_cell();
  EXPECT_NE(a.freertos_cell(), nullptr);
  EXPECT_EQ(b.freertos_cell(), nullptr);
  EXPECT_EQ(b.board().now().value, 0u);
}

// --- power-on restore (the testbed pool's reuse contract) -------------------

TEST(Testbed, RootTlbRevalidatesAcrossCellLifecycle) {
  // The stale-TLB hazard at system level: the root cell's address space
  // caches a translation for the loanable RAM pool, then cell create
  // carves that pool out of the root map. A stale hit would let the root
  // keep reaching memory it loaned away — the exact isolation break the
  // generation protocol exists to prevent.
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  mem::AddressSpace& root = testbed.hypervisor().root_cell().address_space();

  const mem::GuestAddr pool = jh::kFreeRtosRamBase;  // root maps it identity
  const auto before = root.translate_cached(pool, mem::Access::Write, 4);
  ASSERT_TRUE(before.is_ok());
  EXPECT_EQ(before.value().phys, pool);

  testbed.boot_freertos_cell();  // carve-out: the pool leaves the root map
  EXPECT_EQ(root.translate_cached(pool, mem::Access::Write, 4).status().code(),
            util::Code::EFault);

  testbed.destroy_workload_cell();  // hand-back: translations return
  const auto after = root.translate_cached(pool, mem::Access::Write, 4);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after.value().phys, pool);
}

TEST(Testbed, TlbRevalidatesAfterSnapshotRestore) {
  // Snapshot restore reassigns the region vectors it captured, so every
  // region pointer cached before the restore dangles. The map generation
  // bump is what keeps those pointers from ever being dereferenced; under
  // the sanitize CI job a stale hit here is a hard use-after-free.
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.capture_snapshot("tlb");

  mem::AddressSpace& root = testbed.hypervisor().root_cell().address_space();
  const mem::GuestAddr pool = jh::kFreeRtosRamBase;
  // Captured state: the pool is carved out of the root.
  ASSERT_FALSE(root.translate_cached(pool, mem::Access::Read, 4).is_ok());

  // Destroy hands the pool back and fills the root TLB with a pointer
  // into the *current* region vector.
  testbed.destroy_workload_cell();
  ASSERT_TRUE(root.translate_cached(pool, mem::Access::Read, 4).is_ok());

  // Restore rewinds to the carved state: the cached pointer is stale and
  // the walk must fault again instead of hitting it.
  ASSERT_TRUE(testbed.restore_snapshot());
  EXPECT_EQ(root.translate_cached(pool, mem::Access::Read, 4).status().code(),
            util::Code::EFault);
  ASSERT_NE(testbed.freertos_cell(), nullptr);
  EXPECT_EQ(testbed.freertos_cell()->state(), jh::CellState::Running);
}

TEST(TestbedReset, RestoresHypervisorMachineAndCellBookkeeping) {
  Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  ASSERT_NE(testbed.workload_cell(), nullptr);
  testbed.run(100);
  testbed.reset();
  EXPECT_FALSE(testbed.hypervisor().is_enabled());
  EXPECT_EQ(testbed.workload_cell_id(), 0u);
  EXPECT_EQ(testbed.secondary_cell_id(), 0u);
  EXPECT_EQ(testbed.board().now().value, 0u);
  EXPECT_EQ(testbed.hypervisor().counters().traps, 0u);
  EXPECT_EQ(testbed.hypervisor().cpu_owner(Testbed::kFreeRtosCpu),
            jh::kRootCellId);
  // The whole lifecycle works again from scratch on the same object.
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  ASSERT_NE(testbed.workload_cell(), nullptr);
  EXPECT_EQ(testbed.workload_cell()->state(), jh::CellState::Running);
}

TEST(TestbedReset, ReusedLifecycleMatchesFreshObservables) {
  // The same boot + window on a reused testbed must reproduce a fresh
  // testbed's observables exactly (the bit-identity the equivalence
  // suite pins campaign-wide, here at the testbed level).
  const auto drive = [](Testbed& testbed) {
    EXPECT_TRUE(testbed.enable_hypervisor().is_ok());
    testbed.boot_freertos_cell();
    testbed.run(500);
  };
  Testbed fresh;
  drive(fresh);

  Testbed reused;
  drive(reused);       // dirty it with a full first run
  reused.reset();
  drive(reused);       // second run on the reused object

  EXPECT_EQ(fresh.board().uart1().captured(), reused.board().uart1().captured());
  EXPECT_EQ(fresh.board().gpio().led_toggles(), reused.board().gpio().led_toggles());
  EXPECT_EQ(fresh.hypervisor().counters().traps,
            reused.hypervisor().counters().traps);
  EXPECT_EQ(fresh.hypervisor().counters().irqs,
            reused.hypervisor().counters().irqs);
  EXPECT_EQ(fresh.board().log().to_text(), reused.board().log().to_text());
  EXPECT_EQ(fresh.freertos().messages_validated(),
            reused.freertos().messages_validated());
}

TEST(TestbedReset, RestoresRootSharedCarvingForConcurrentCells) {
  // On the quad board the dual-cell deployment leaves the shared IO
  // windows ROOTSHARED (un-carved). After a reset, the same two-cell
  // bring-up must succeed again — stale carving state from the previous
  // run would make the second create fail root-coverage validation.
  Testbed testbed(platform::make_board("quad-a7"));
  ASSERT_TRUE(testbed.supports_concurrent_cells());
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(testbed.enable_hypervisor().is_ok()) << "round " << round;
    testbed.boot_freertos_cell();
    testbed.boot_secondary_osek_cell();
    ASSERT_NE(testbed.workload_cell(), nullptr) << "round " << round;
    ASSERT_NE(testbed.secondary_cell(), nullptr) << "round " << round;
    EXPECT_EQ(testbed.secondary_cell()->state(), jh::CellState::Running)
        << "round " << round;
    testbed.run(200);
    testbed.reset();
  }
}

TEST(TestbedReset, RestoresIvshmemRingContentsToPowerOn) {
  Testbed testbed(platform::make_board("quad-a7"));
  testbed.set_ivshmem(true);
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  testbed.boot_freertos_cell();
  testbed.boot_secondary_osek_cell();
  // Dirty the shared window the way the traffic scenario would: ring
  // header plus payload bytes.
  ASSERT_TRUE(
      testbed.board().dram().write_u32(jh::kIvshmemRingAToB + 8, 0x1000).is_ok());
  ASSERT_TRUE(
      testbed.board().dram().write_u32(jh::kIvshmemRingAToB + 16, 0xFEED).is_ok());
  testbed.ivshmem_stats().sent = 5;
  testbed.reset();
  EXPECT_EQ(testbed.board().dram().read_u32(jh::kIvshmemRingAToB + 8).value(), 0u);
  EXPECT_EQ(testbed.board().dram().read_u32(jh::kIvshmemRingAToB + 16).value(), 0u);
  EXPECT_EQ(testbed.ivshmem_stats().sent, 0u);
  EXPECT_FALSE(testbed.ivshmem_enabled());
}

TEST(TestbedReset, RunArenaIsRunScoped) {
  Testbed testbed;
  auto* scratch = testbed.run_arena().allocate_array<std::uint64_t>(8);
  scratch[0] = 42;
  EXPECT_GT(testbed.run_arena().bytes_in_use(), 0u);
  testbed.reset();
  EXPECT_EQ(testbed.run_arena().bytes_in_use(), 0u);
}

}  // namespace
}  // namespace mcs::fi
