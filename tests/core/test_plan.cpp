#include "core/plan.hpp"

#include <gtest/gtest.h>

namespace mcs::fi {
namespace {

TEST(Plan, PaperMediumPreset) {
  // "once every 100 function calls [...] each test lasts 1 min", single
  // register, non-root cell CPU 1, arch_handle_trap.
  const TestPlan plan = paper_medium_trap_plan();
  EXPECT_EQ(plan.rate, 100u);
  EXPECT_EQ(plan.duration_ticks, 60'000u);
  EXPECT_EQ(plan.fault, FaultModelKind::SingleBitFlip);
  EXPECT_EQ(plan.target, jh::HookPoint::ArchHandleTrap);
  EXPECT_EQ(plan.cpu_filter, 1);
  EXPECT_FALSE(plan.inject_during_boot);
}

TEST(Plan, PaperHighRootPresets) {
  // "once every 50 function calls" for high intensity, multiple registers.
  const TestPlan hvc = paper_high_root_hvc_plan();
  EXPECT_EQ(hvc.rate, 50u);
  EXPECT_EQ(hvc.fault, FaultModelKind::MultiRegisterFlip);
  EXPECT_EQ(hvc.target, jh::HookPoint::ArchHandleHvc);
  EXPECT_EQ(hvc.cpu_filter, 0);
  EXPECT_TRUE(hvc.inject_during_boot);

  const TestPlan trap = paper_high_root_trap_plan();
  EXPECT_EQ(trap.target, jh::HookPoint::ArchHandleTrap);
  EXPECT_EQ(trap.rate, 50u);
}

TEST(Plan, PaperHighNonRootPreset) {
  const TestPlan plan = paper_high_nonroot_plan();
  EXPECT_EQ(plan.cpu_filter, 1);
  EXPECT_EQ(plan.phase, 1u);  // armed for the first CPU 1 entry (bring-up)
  EXPECT_TRUE(plan.inject_during_boot);
}

TEST(Plan, IrqVectorPresetTargetsR0Only) {
  const TestPlan plan = irq_vector_plan();
  EXPECT_EQ(plan.target, jh::HookPoint::IrqchipHandleIrq);
  ASSERT_EQ(plan.fault_registers.size(), 1u);
  EXPECT_EQ(plan.fault_registers[0], arch::Reg::R0);
}

TEST(Plan, FirstInjectionCallDefaultsToRate) {
  TestPlan plan;
  plan.rate = 100;
  plan.phase = 0;
  EXPECT_EQ(plan.first_injection_call(), 100u);
  plan.phase = 7;
  EXPECT_EQ(plan.first_injection_call(), 7u);
}

TEST(Plan, IntensityNames) {
  EXPECT_EQ(intensity_name(Intensity::Medium), "medium");
  EXPECT_EQ(intensity_name(Intensity::High), "high");
}

TEST(Plan, PaperRateConstants) {
  EXPECT_EQ(kMediumRate, 100u);
  EXPECT_EQ(kHighRate, 50u);
  EXPECT_EQ(kOneMinuteTicks, 60'000u);
}

}  // namespace
}  // namespace mcs::fi
