#include "guests/rtos/queue.hpp"

#include <gtest/gtest.h>

namespace mcs::guest::rtos {
namespace {

TEST(MessageQueue, StartsEmpty) {
  MessageQueue queue(4);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.full());
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_EQ(queue.try_receive(), std::nullopt);
}

TEST(MessageQueue, FifoOrder) {
  MessageQueue queue(4);
  EXPECT_TRUE(queue.try_send(1));
  EXPECT_TRUE(queue.try_send(2));
  EXPECT_EQ(queue.try_receive(), 1u);
  EXPECT_EQ(queue.try_receive(), 2u);
}

TEST(MessageQueue, SendFailsWhenFull) {
  MessageQueue queue(2);
  EXPECT_TRUE(queue.try_send(1));
  EXPECT_TRUE(queue.try_send(2));
  EXPECT_TRUE(queue.full());
  EXPECT_FALSE(queue.try_send(3));
  EXPECT_EQ(queue.send_failures, 1u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(MessageQueue, CountersTrackTraffic) {
  MessageQueue queue(4);
  (void)queue.try_send(1);
  (void)queue.try_send(2);
  (void)queue.try_receive();
  EXPECT_EQ(queue.sends, 2u);
  EXPECT_EQ(queue.receives, 1u);
}

}  // namespace
}  // namespace mcs::guest::rtos
