// OSEK kernel semantics + the AUTOSAR-flavoured guest image on the
// testbed, including a campaign proving the methodology is guest-agnostic.
#include "guests/osek/os.hpp"

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "guests/osek_image.hpp"
#include "util/rng.hpp"

namespace mcs::guest::osek {
namespace {

TEST(OsekOs, ActivateAndDispatchRunToCompletion) {
  Os os;
  int runs = 0;
  const TaskId t = os.declare_task("t", 1, [&](TaskContext&) { ++runs; });
  EXPECT_EQ(os.task_state(t), TaskState::Suspended);
  EXPECT_EQ(os.activate_task(t), Status::E_OK);
  EXPECT_EQ(os.task_state(t), TaskState::Ready);
  EXPECT_EQ(os.dispatch(), t);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(os.task_state(t), TaskState::Suspended);  // terminated
  EXPECT_EQ(os.dispatch(), std::nullopt);
}

TEST(OsekOs, PriorityOrdersDispatch) {
  Os os;
  std::vector<std::string> order;
  const TaskId low = os.declare_task("low", 1, [&](TaskContext&) {
    order.push_back("low");
  });
  const TaskId high = os.declare_task("high", 9, [&](TaskContext&) {
    order.push_back("high");
  });
  (void)os.activate_task(low);
  (void)os.activate_task(high);
  (void)os.dispatch();
  (void)os.dispatch();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low");
}

TEST(OsekOs, Bcc1ActivationLimit) {
  Os os;
  const TaskId t = os.declare_task("t", 1, [](TaskContext&) {});
  EXPECT_EQ(os.activate_task(t), Status::E_OK);   // Ready
  EXPECT_EQ(os.activate_task(t), Status::E_OK);   // one queued
  EXPECT_EQ(os.activate_task(t), Status::E_OS_LIMIT);
  // After dispatch the queued activation becomes ready again.
  (void)os.dispatch();
  EXPECT_EQ(os.task_state(t), TaskState::Ready);
}

TEST(OsekOs, InvalidIdsRejected) {
  Os os;
  EXPECT_EQ(os.activate_task(7), Status::E_OS_ID);
  EXPECT_EQ(os.set_rel_alarm(3, 1, 1), Status::E_OS_ID);
  EXPECT_EQ(os.cancel_alarm(3), Status::E_OS_ID);
}

TEST(OsekOs, CyclicAlarmActivatesPeriodically) {
  Os os;
  int runs = 0;
  const TaskId t = os.declare_task("t", 1, [&](TaskContext&) { ++runs; });
  const AlarmId alarm = os.declare_alarm("a", t);
  EXPECT_EQ(os.set_rel_alarm(alarm, 5, 10), Status::E_OK);
  for (int tick = 0; tick < 35; ++tick) {
    os.on_counter_tick();
    (void)os.dispatch();
  }
  EXPECT_EQ(runs, 4);  // ticks 5, 15, 25, 35
}

TEST(OsekOs, OneShotAlarmFiresOnce) {
  Os os;
  int runs = 0;
  const TaskId t = os.declare_task("t", 1, [&](TaskContext&) { ++runs; });
  const AlarmId alarm = os.declare_alarm("a", t);
  EXPECT_EQ(os.set_rel_alarm(alarm, 3, 0), Status::E_OK);
  for (int tick = 0; tick < 20; ++tick) {
    os.on_counter_tick();
    (void)os.dispatch();
  }
  EXPECT_EQ(runs, 1);
}

TEST(OsekOs, DoubleArmRejectedCancelWorks) {
  Os os;
  const TaskId t = os.declare_task("t", 1, [](TaskContext&) {});
  const AlarmId alarm = os.declare_alarm("a", t);
  EXPECT_EQ(os.set_rel_alarm(alarm, 5, 5), Status::E_OK);
  EXPECT_EQ(os.set_rel_alarm(alarm, 5, 5), Status::E_OS_STATE);
  EXPECT_EQ(os.cancel_alarm(alarm), Status::E_OK);
  EXPECT_EQ(os.cancel_alarm(alarm), Status::E_OS_NOFUNC);
  EXPECT_EQ(os.set_rel_alarm(alarm, 5, 5), Status::E_OK);
}

TEST(OsekOs, ChainTaskActivatesNext) {
  Os os;
  std::vector<std::string> order;
  TaskId second = 0;
  const TaskId first = os.declare_task("first", 2, [&](TaskContext& ctx) {
    order.push_back("first");
    EXPECT_EQ(ctx.os.chain_task(ctx, second), Status::E_OK);
  });
  second = os.declare_task("second", 1, [&](TaskContext&) {
    order.push_back("second");
  });
  (void)os.activate_task(first);
  (void)os.dispatch();
  (void)os.dispatch();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], "second");
}

TEST(OsekOs, FindTaskAndNames) {
  Os os;
  (void)os.declare_task("BrakeAcq", 4, [](TaskContext&) {});
  EXPECT_TRUE(os.find_task("BrakeAcq").has_value());
  EXPECT_FALSE(os.find_task("nope").has_value());
  EXPECT_EQ(status_name(Status::E_OS_LIMIT), "E_OS_LIMIT");
}

// Property: invariants hold under random activation/alarm/dispatch storms.
class OsekProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OsekProperty, InvariantsUnderRandomActivity) {
  Os os;
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    (void)os.declare_task("t" + std::to_string(i),
                          1 + static_cast<unsigned>(i % 3), [](TaskContext&) {});
  }
  const AlarmId alarm = os.declare_alarm("a", 0);
  (void)os.set_rel_alarm(alarm, 2, 3);
  for (int step = 0; step < 3000; ++step) {
    switch (rng.below(3)) {
      case 0: (void)os.activate_task(rng.below(6)); break;  // may be E_OS_ID
      case 1: os.on_counter_tick(); break;
      default: (void)os.dispatch(); break;
    }
    ASSERT_TRUE(os.invariants_hold()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OsekProperty, ::testing::Values(3, 14, 159));

}  // namespace
}  // namespace mcs::guest::osek

namespace mcs::guest {
namespace {

/// Boots the OSEK image instead of FreeRTOS in the non-root cell.
class OsekCellTest : public ::testing::Test {
 protected:
  OsekCellTest() {
    EXPECT_TRUE(testbed_.enable_hypervisor().is_ok());
    // Re-bind the non-root cell to the OSEK image after boot wiring.
    testbed_.boot_freertos_cell();
    testbed_.machine().bind_guest(testbed_.freertos_cell_id(), osek_);
    // Restart the cell so on_start runs for the OSEK image.
    testbed_.shutdown_freertos_cell();
    testbed_.linux_root().enqueue(
        {jh::Hypercall::CellSetLoadable, testbed_.freertos_cell_id()});
    testbed_.linux_root().cell_start(testbed_.freertos_cell_id());
    testbed_.run(30);
  }

  fi::Testbed testbed_;
  OsekImage osek_;
};

TEST_F(OsekCellTest, BootsAndRunsAutomotiveWorkload) {
  testbed_.run(2'000);
  EXPECT_GT(osek_.brake_samples(), 150u);  // 10 ms period
  EXPECT_GT(osek_.frames_sent(), 30u);     // 50 ms period
  EXPECT_GT(osek_.wdg_kicks(), 15u);       // 100 ms period
  EXPECT_EQ(osek_.data_errors(), 0u);
  EXPECT_NE(testbed_.board().uart1().captured().find("frame"),
            std::string::npos);
}

TEST_F(OsekCellTest, MediumCampaignShapeIsGuestAgnostic) {
  // The §III failure taxonomy is a property of the hypervisor, not of the
  // guest: injections against the OSEK cell produce the same classes.
  fi::TestPlan plan = fi::paper_medium_trap_plan();
  plan.rate = 10;  // several injections in a short window
  plan.phase = 1;
  fi::Injector injector(plan, 99, testbed_.board().clock());
  injector.attach(testbed_.hypervisor());
  testbed_.run(10'000);
  injector.detach(testbed_.hypervisor());

  // Either everything stayed benign, or the failure is one of the paper's
  // classes — never silent corruption.
  const auto& cpu1 = testbed_.board().cpu(1);
  if (testbed_.hypervisor().is_panicked()) {
    SUCCEED();  // panic park
  } else if (cpu1.is_parked()) {
    EXPECT_NE(cpu1.halt_reason().find("unhandled trap"), std::string::npos);
  } else {
    EXPECT_TRUE(cpu1.is_online());
    EXPECT_EQ(osek_.data_errors(), 0u);
  }
}

}  // namespace
}  // namespace mcs::guest
