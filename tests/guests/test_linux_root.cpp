#include "guests/linux_root.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace mcs::guest {
namespace {

class LinuxRootTest : public ::testing::Test {
 protected:
  LinuxRootTest() { EXPECT_TRUE(testbed_.enable_hypervisor().is_ok()); }

  fi::Testbed testbed_;
};

TEST_F(LinuxRootTest, BootBannerOnUart0) {
  testbed_.run(5);
  EXPECT_NE(testbed_.board().uart0().captured().find("Linux 5.10"),
            std::string::npos);
}

TEST_F(LinuxRootTest, ProcessesOneCommandPerQuantum) {
  LinuxRootImage& root = testbed_.linux_root();
  root.enqueue({jh::Hypercall::HypervisorGetInfo, 0});
  root.enqueue({jh::Hypercall::CellGetState, 0});
  EXPECT_FALSE(root.idle());
  testbed_.run(1);
  EXPECT_EQ(root.records().size(), 1u);
  testbed_.run(1);
  EXPECT_EQ(root.records().size(), 2u);
  EXPECT_TRUE(root.idle());
}

TEST_F(LinuxRootTest, RecordsResultsWithVerdicts) {
  LinuxRootImage& root = testbed_.linux_root();
  root.cell_create(0xBAD0'0000);  // unknown config: EINVAL
  testbed_.run(2);
  ASSERT_EQ(root.records().size(), 1u);
  EXPECT_EQ(root.records()[0].result, jh::kHvcEInval);
  EXPECT_EQ(root.last_result(jh::Hypercall::CellCreate), jh::kHvcEInval);
  // The shell output carries the paper's "Invalid argument" string.
  EXPECT_NE(testbed_.board().uart0().captured().find("Invalid argument"),
            std::string::npos);
}

TEST_F(LinuxRootTest, TracksCreatedCellId) {
  LinuxRootImage& root = testbed_.linux_root();
  EXPECT_EQ(root.last_created_cell(), 0u);
  root.cell_create(fi::kFreeRtosConfigAddr);
  testbed_.run(2);
  EXPECT_EQ(root.last_created_cell(), 1u);
}

TEST_F(LinuxRootTest, LastResultForUnissuedOpIsENoSys) {
  EXPECT_EQ(testbed_.linux_root().last_result(jh::Hypercall::CellDestroy),
            jh::kHvcENoSys);
}

TEST_F(LinuxRootTest, JiffiesAdvanceWithTimer) {
  testbed_.run(200);
  EXPECT_GE(testbed_.linux_root().jiffies(), 15u);  // 100 Hz → ~20 in 200 ms
}

TEST_F(LinuxRootTest, MonitoredCellPolledPeriodically) {
  testbed_.boot_freertos_cell();
  const jh::Counters before = testbed_.hypervisor().counters();
  testbed_.run(500);
  // `watch jailhouse cell list`: polls every 50 quanta from CPU 0.
  EXPECT_GE(testbed_.hypervisor().counters().hvcs - before.hvcs, 8u);
  EXPECT_EQ(testbed_.linux_root().last_poll_state(),
            static_cast<jh::HvcResult>(jh::CellState::Running));
}

}  // namespace
}  // namespace mcs::guest
