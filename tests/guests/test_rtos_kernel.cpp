// Mini-RTOS scheduler semantics: priorities, delays, blocking queues and
// the scheduler invariants the property tests sweep.
#include "guests/rtos/kernel.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "util/rng.hpp"

namespace mcs::guest::rtos {
namespace {

/// The kernel only touches GuestContext inside task steps; tests that
/// exercise pure scheduling use a real (but idle) testbed context.
class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    EXPECT_TRUE(testbed_.enable_hypervisor().is_ok());
    ctx_ = std::make_unique<jh::GuestContext>(
        testbed_.hypervisor(), testbed_.hypervisor().root_cell(), 0);
  }

  Kernel kernel_;
  fi::Testbed testbed_;
  std::unique_ptr<jh::GuestContext> ctx_;
};

TEST_F(KernelTest, EmptyKernelHasNothingToRun) {
  EXPECT_EQ(kernel_.run_slice(*ctx_), std::nullopt);
  EXPECT_TRUE(kernel_.invariants_hold());
}

TEST_F(KernelTest, HighestPriorityRunsFirst) {
  std::vector<std::string> order;
  (void)kernel_.add_task("low", 1, [&](TaskContext& t) {
    order.push_back("low");
    t.kernel.suspend(t.self);
  });
  (void)kernel_.add_task("high", 5, [&](TaskContext& t) {
    order.push_back("high");
    t.kernel.suspend(t.self);
  });
  (void)kernel_.run_slice(*ctx_);
  (void)kernel_.run_slice(*ctx_);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low");
}

TEST_F(KernelTest, EqualPriorityRoundRobins) {
  std::vector<std::string> order;
  for (const char* name : {"a", "b", "c"}) {
    (void)kernel_.add_task(name, 2, [&order, name](TaskContext&) {
      order.push_back(name);
    });
  }
  for (int i = 0; i < 6; ++i) (void)kernel_.run_slice(*ctx_);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "c");
  EXPECT_EQ(order[3], "a");  // fair rotation
}

TEST_F(KernelTest, DelayBlocksUntilTick) {
  int runs = 0;
  (void)kernel_.add_task("sleeper", 1, [&](TaskContext& t) {
    ++runs;
    t.kernel.delay(t.self, 3);
  });
  (void)kernel_.run_slice(*ctx_);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(kernel_.run_slice(*ctx_), std::nullopt);  // blocked
  kernel_.on_tick();
  kernel_.on_tick();
  EXPECT_EQ(kernel_.run_slice(*ctx_), std::nullopt);  // still blocked
  kernel_.on_tick();
  EXPECT_NE(kernel_.run_slice(*ctx_), std::nullopt);
  EXPECT_EQ(runs, 2);
}

TEST_F(KernelTest, SuspendResume) {
  int runs = 0;
  const TaskId id = kernel_.add_task("s", 1, [&](TaskContext&) { ++runs; });
  kernel_.suspend(id);
  EXPECT_EQ(kernel_.run_slice(*ctx_), std::nullopt);
  kernel_.resume(id);
  EXPECT_NE(kernel_.run_slice(*ctx_), std::nullopt);
  EXPECT_EQ(runs, 1);
}

TEST_F(KernelTest, QueueReceiveBlocksUntilData) {
  const QueueId queue = kernel_.create_queue(2);
  std::vector<std::uint32_t> received;
  const TaskId rx = kernel_.add_task("rx", 2, [&](TaskContext& t) {
    if (const auto item = t.kernel.queue_receive(t.self, queue)) {
      received.push_back(*item);
    }
  });
  (void)kernel_.run_slice(*ctx_);  // rx blocks on the empty queue
  EXPECT_EQ(kernel_.task(rx).state, TaskState::BlockedOnQueue);
  EXPECT_EQ(kernel_.run_slice(*ctx_), std::nullopt);

  // A sender task wakes it.
  (void)kernel_.add_task("tx", 1, [&](TaskContext& t) {
    (void)t.kernel.queue_send(t.self, queue, 77);
    t.kernel.suspend(t.self);
  });
  (void)kernel_.run_slice(*ctx_);  // tx runs (rx blocked), sends, wakes rx
  (void)kernel_.run_slice(*ctx_);  // rx consumes
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 77u);
}

TEST_F(KernelTest, QueueSendBlocksWhenFull) {
  const QueueId queue = kernel_.create_queue(1);
  const TaskId tx = kernel_.add_task("tx", 1, [&](TaskContext& t) {
    (void)t.kernel.queue_send(t.self, queue, 1);
  });
  (void)kernel_.run_slice(*ctx_);  // fills the queue
  (void)kernel_.run_slice(*ctx_);  // second send blocks
  EXPECT_EQ(kernel_.task(tx).state, TaskState::BlockedOnQueue);
  EXPECT_TRUE(kernel_.task(tx).waiting_for_space);
  // Draining the queue wakes the sender.
  (void)kernel_.add_task("rx", 3, [&](TaskContext& t) {
    (void)t.kernel.queue_receive(t.self, queue);
    t.kernel.suspend(t.self);
  });
  (void)kernel_.run_slice(*ctx_);
  EXPECT_EQ(kernel_.task(tx).state, TaskState::Ready);
}

TEST_F(KernelTest, FindTaskByName) {
  (void)kernel_.add_task("blink", 3, [](TaskContext&) {});
  ASSERT_TRUE(kernel_.find_task("blink").has_value());
  EXPECT_FALSE(kernel_.find_task("nope").has_value());
}

TEST_F(KernelTest, DispatchCountersAccumulate) {
  (void)kernel_.add_task("t", 1, [](TaskContext&) {});
  for (int i = 0; i < 5; ++i) (void)kernel_.run_slice(*ctx_);
  EXPECT_EQ(kernel_.dispatches(), 5u);
  EXPECT_EQ(kernel_.task(0).dispatches, 5u);
}

// Property: under random scheduling/blocking activity the kernel
// invariants hold at every step and the tick counter is monotonic.
class KernelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelProperty, InvariantsHoldUnderRandomActivity) {
  fi::Testbed testbed;
  ASSERT_TRUE(testbed.enable_hypervisor().is_ok());
  jh::GuestContext ctx(testbed.hypervisor(), testbed.hypervisor().root_cell(), 0);

  Kernel kernel;
  util::Xoshiro256 rng(GetParam());
  const QueueId queue = kernel.create_queue(4);
  for (int i = 0; i < 6; ++i) {
    (void)kernel.add_task(
        "t" + std::to_string(i), 1 + static_cast<unsigned>(i % 3),
        [&rng, queue](TaskContext& t) {
          switch (rng.below(4)) {
            case 0: t.kernel.delay(t.self, 1 + rng.below(5)); break;
            case 1: (void)t.kernel.queue_send(t.self, queue,
                                              static_cast<std::uint32_t>(rng.next()));
              break;
            case 2: (void)t.kernel.queue_receive(t.self, queue); break;
            default: break;  // plain compute step
          }
        });
  }
  for (int step = 0; step < 2000; ++step) {
    if (rng.chance(0.3)) kernel.on_tick();
    (void)kernel.run_slice(ctx);
    ASSERT_TRUE(kernel.invariants_hold()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace mcs::guest::rtos
