// The paper's FreeRTOS workload, run on the real testbed.
#include "guests/freertos_image.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace mcs::guest {
namespace {

class FreeRtosWorkloadTest : public ::testing::Test {
 protected:
  FreeRtosWorkloadTest() {
    EXPECT_TRUE(testbed_.enable_hypervisor().is_ok());
    testbed_.boot_freertos_cell();
  }

  fi::Testbed testbed_;
};

TEST_F(FreeRtosWorkloadTest, SpawnsThePaperTaskMix) {
  // 1 blink + 2 (send/receive) + 2 FP + 15 integer = 20 tasks.
  const rtos::Kernel& kernel = testbed_.freertos().kernel();
  EXPECT_EQ(kernel.task_count(), 20u);
  EXPECT_TRUE(kernel.find_task("blink").has_value());
  EXPECT_TRUE(kernel.find_task("tx").has_value());
  EXPECT_TRUE(kernel.find_task("rx").has_value());
  EXPECT_TRUE(kernel.find_task("fp0").has_value());
  EXPECT_TRUE(kernel.find_task("fp1").has_value());
  for (int n = 0; n < FreeRtosImage::kIntegerTasks; ++n) {
    const std::string name = (n < 10 ? "int0" : "int") + std::to_string(n);
    EXPECT_TRUE(kernel.find_task(name).has_value()) << name;
  }
}

TEST_F(FreeRtosWorkloadTest, BannerOnUsartAtBoot) {
  const std::string& captured = testbed_.board().uart1().captured();
  EXPECT_NE(captured.find("FreeRTOS"), std::string::npos);
  EXPECT_NE(captured.find("20 tasks"), std::string::npos);
}

TEST_F(FreeRtosWorkloadTest, BlinkTaskTogglesLedAtPeriod) {
  testbed_.run(2'100);
  // 500 ms period → ~4 toggles in 2.1 s.
  EXPECT_GE(testbed_.freertos().blink_count(), 4u);
  EXPECT_GE(testbed_.board().gpio().led_toggles(), 4u);
}

TEST_F(FreeRtosWorkloadTest, MessagesFlowAndValidate) {
  testbed_.run(2'000);
  EXPECT_GT(testbed_.freertos().messages_validated(), 50u);
  EXPECT_EQ(testbed_.freertos().data_errors(), 0u);
}

TEST_F(FreeRtosWorkloadTest, HeartbeatLinesAppearOnUsart) {
  testbed_.run(5'000);
  const auto lines = testbed_.board().uart1().lines();
  bool saw_rx = false, saw_fp = false, saw_int = false, saw_blink = false;
  for (const std::string& line : lines) {
    if (line.rfind("rx ", 0) == 0) saw_rx = true;
    if (line.rfind("fp", 0) == 0) saw_fp = true;
    if (line.rfind("int", 0) == 0) saw_int = true;
    if (line.rfind("blink", 0) == 0) saw_blink = true;
  }
  EXPECT_TRUE(saw_rx);
  EXPECT_TRUE(saw_fp);
  EXPECT_TRUE(saw_int);
  EXPECT_TRUE(saw_blink);
}

TEST_F(FreeRtosWorkloadTest, FpTasksSelfValidate) {
  testbed_.run(5'000);
  const std::string& captured = testbed_.board().uart1().captured();
  EXPECT_NE(captured.find("fp0 ok"), std::string::npos);
  EXPECT_NE(captured.find("fp1 ok"), std::string::npos);
  EXPECT_EQ(captured.find("BAD"), std::string::npos);
}

TEST_F(FreeRtosWorkloadTest, GeneratesHvcAndTrapTraffic) {
  const jh::Counters before = testbed_.hypervisor().counters();
  testbed_.run(10'000);
  const jh::Counters& after = testbed_.hypervisor().counters();
  EXPECT_GT(after.hvcs, before.hvcs);              // debug-console heartbeats
  EXPECT_GT(after.mmio_emulations, before.mmio_emulations);  // GICD pokes
  EXPECT_GT(testbed_.board().cpu(1).trap_entries, 0u);
}

TEST_F(FreeRtosWorkloadTest, UnknownIrqsAreCountedNotFatal) {
  auto& gic = testbed_.board().gic();
  (void)gic.enable(40);
  (void)gic.set_target(40, 1);
  // Line 40 is not owned by the cell: the hypervisor drops it (Unowned)
  // and the guest never sees it; nothing crashes.
  (void)gic.raise_spi(40);
  testbed_.run(10);
  EXPECT_TRUE(testbed_.board().cpu(1).is_online());
}

}  // namespace
}  // namespace mcs::guest
