// arch_handle_trap semantics under clean and corrupted entry frames — the
// unit-level ground truth for every outcome class of §III.
#include <gtest/gtest.h>

#include "hypervisor/hypervisor.hpp"
#include "util/bitops.hpp"

namespace mcs::jh {
namespace {

using arch::ExceptionClass;
using arch::Reg;
using arch::Syndrome;

class TrapTest : public ::testing::Test {
 protected:
  TrapTest() : hv_(board_) {
    EXPECT_TRUE(hv_.enable(make_root_cell_config()).is_ok());
  }

  arch::EntryFrame frame_for(int cpu, Syndrome hsr, std::uint32_t r2 = 0,
                             std::uint32_t r3 = 0) {
    arch::EntryFrame frame = board_.cpu(cpu).make_trap_frame(hsr);
    frame.bank.set(Reg::R2, r2);
    frame.bank.set(Reg::R3, r3);
    return frame;
  }

  platform::BananaPiBoard board_;
  Hypervisor hv_;
};

TEST_F(TrapTest, CleanHvcFrameDispatches) {
  arch::EntryFrame frame =
      frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0),
                static_cast<std::uint32_t>(Hypercall::HypervisorGetInfo));
  const TrapOutcome outcome = hv_.arch_handle_trap(frame);
  EXPECT_EQ(outcome.action, TrapAction::Resume);
  EXPECT_EQ(outcome.hvc_result, 1);  // one cell
}

TEST_F(TrapTest, WfxAndSmcResumeQuietly) {
  for (const ExceptionClass ec : {ExceptionClass::Wfx, ExceptionClass::Smc,
                                  ExceptionClass::PrefetchAbortLower}) {
    arch::EntryFrame frame = frame_for(0, Syndrome::make(ec, 0));
    EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::Resume);
  }
}

TEST_F(TrapTest, CorruptedContextPointerPanics) {
  arch::EntryFrame frame = frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0));
  frame.bank.set(Reg::R0, 0x1234'5678);  // wild pointer
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::Panicked);
  EXPECT_TRUE(hv_.is_panicked());
  EXPECT_NE(hv_.panic_reason().find("wild trap-context"), std::string::npos);
  // Panic park: every core is down.
  EXPECT_TRUE(board_.cpu(0).is_parked());
  EXPECT_TRUE(board_.cpu(1).is_parked());
}

TEST_F(TrapTest, SkewedContextPointerAlsoPanics) {
  arch::EntryFrame frame = frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0));
  frame.bank.set(Reg::R0, frame.bank[Reg::R0] ^ 0x8);  // stays in-window
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::Panicked);
  EXPECT_NE(hv_.panic_reason().find("skewed trap-context"), std::string::npos);
}

TEST_F(TrapTest, CorruptedPerCpuPointerPanics) {
  arch::EntryFrame frame = frame_for(1, Syndrome::make(ExceptionClass::Hvc, 0));
  frame.bank.set(Reg::R12, util::flip_bit(frame.bank[Reg::R12], 17u));
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::Panicked);
  EXPECT_NE(hv_.panic_reason().find("per-CPU"), std::string::npos);
}

TEST_F(TrapTest, CorruptedStackPointerPanics) {
  arch::EntryFrame frame = frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0));
  frame.bank.set(Reg::SP, util::flip_bit(frame.bank[Reg::SP], 3u));
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::Panicked);
}

TEST_F(TrapTest, CorruptedLinkRegisterPanics) {
  arch::EntryFrame frame = frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0));
  frame.bank.set(Reg::LR, util::flip_bit(frame.bank[Reg::LR], 30u));
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::Panicked);
}

TEST_F(TrapTest, CorruptedPcPanics) {
  arch::EntryFrame frame = frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0));
  frame.bank.set(Reg::PC, util::flip_bit(frame.bank[Reg::PC], 5u));
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::Panicked);
}

TEST_F(TrapTest, UnknownExceptionClassParksCpuOnly) {
  arch::EntryFrame frame = frame_for(1, Syndrome::make(ExceptionClass::Hvc, 0));
  // Manufacture a non-architected EC (0x3F).
  frame.bank.set(Reg::R1, util::deposit_bits(0u, arch::kEcHi, arch::kEcLo, 0x3Fu));
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::CpuParked);
  EXPECT_TRUE(board_.cpu(1).is_parked());
  EXPECT_FALSE(hv_.is_panicked());
  EXPECT_TRUE(board_.cpu(0).is_online());  // the fault stays isolated
  EXPECT_NE(board_.cpu(1).halt_reason().find("unhandled trap exception"),
            std::string::npos);
}

TEST_F(TrapTest, DataAbortWithInvalidIssParks0x24) {
  // The §III signature: "error code 0x24, which is the unhandled trap
  // exception".
  arch::EntryFrame frame =
      frame_for(1, Syndrome::make(ExceptionClass::DataAbortLower, 0));  // no ISV
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::CpuParked);
  EXPECT_NE(board_.cpu(1).halt_reason().find("0x24"), std::string::npos);
}

TEST_F(TrapTest, UnhandledMmioAddressParks0x24) {
  std::uint32_t iss = util::set_bit(0u, arch::kIssIsvBit);
  iss = util::set_bit(iss, arch::kIssWnrBit);
  arch::EntryFrame frame = frame_for(
      1, Syndrome::make(ExceptionClass::DataAbortLower, iss), 0x0666'0000, 0xAB);
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::CpuParked);
  EXPECT_EQ(hv_.counters().unhandled_traps, 1u);
  EXPECT_EQ(hv_.counters().cpu_parks, 1u);
}

TEST_F(TrapTest, UnparkableClassWithNoHandlerParks) {
  arch::EntryFrame frame =
      frame_for(1, Syndrome::make(ExceptionClass::Cp15Access, 0));
  EXPECT_EQ(hv_.arch_handle_trap(frame).action, TrapAction::CpuParked);
}

TEST_F(TrapTest, DeadRegistersAreHarmless) {
  // r5-r11 are dead at entry: corrupting them must change nothing.
  for (const Reg reg : {Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10,
                        Reg::R11}) {
    arch::EntryFrame frame =
        frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0),
                  static_cast<std::uint32_t>(Hypercall::HypervisorGetInfo));
    frame.bank.set(reg, 0xFFFF'FFFF);
    const TrapOutcome outcome = hv_.arch_handle_trap(frame);
    EXPECT_EQ(outcome.action, TrapAction::Resume) << reg_name(reg);
    EXPECT_EQ(outcome.hvc_result, 1) << reg_name(reg);
  }
  EXPECT_FALSE(hv_.is_panicked());
}

TEST_F(TrapTest, PanicFreezesFurtherTraps) {
  arch::EntryFrame bad = frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0));
  bad.bank.set(Reg::R0, 0);
  (void)hv_.arch_handle_trap(bad);
  ASSERT_TRUE(hv_.is_panicked());
  arch::EntryFrame clean =
      frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0),
                static_cast<std::uint32_t>(Hypercall::HypervisorGetInfo));
  const TrapOutcome outcome = hv_.arch_handle_trap(clean);
  EXPECT_EQ(outcome.action, TrapAction::Panicked);
  EXPECT_EQ(outcome.hvc_result, kHvcEBusy);
}

TEST_F(TrapTest, PanicWritesLastWordsToUart0) {
  arch::EntryFrame frame = frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0));
  frame.bank.set(Reg::R0, 0xBAD);
  (void)hv_.arch_handle_trap(frame);
  EXPECT_NE(board_.uart0().captured().find("panic"), std::string::npos);
}

TEST_F(TrapTest, CorruptedHypercallCodeIsInvalidArguments) {
  // §III root-context: corrupted management hypercall → EINVAL family,
  // no crash, no cell.
  arch::EntryFrame frame =
      frame_for(0, Syndrome::make(ExceptionClass::Hvc, 0), 0xDEAD'BEEF, 0);
  const TrapOutcome outcome = hv_.arch_handle_trap(frame);
  EXPECT_EQ(outcome.action, TrapAction::Resume);
  EXPECT_TRUE(is_invalid_arguments(outcome.hvc_result));
  EXPECT_FALSE(hv_.is_panicked());
}

TEST_F(TrapTest, CorruptedHypercallArgIsInvalidArguments) {
  arch::EntryFrame frame = frame_for(
      0, Syndrome::make(ExceptionClass::Hvc, 0),
      static_cast<std::uint32_t>(Hypercall::CellCreate), 0x6666'6666);
  const TrapOutcome outcome = hv_.arch_handle_trap(frame);
  EXPECT_EQ(outcome.action, TrapAction::Resume);
  EXPECT_EQ(outcome.hvc_result, kHvcEInval);
}

TEST_F(TrapTest, TrapCountersIncrement) {
  arch::EntryFrame frame =
      frame_for(1, Syndrome::make(ExceptionClass::Wfx, 0));
  (void)hv_.arch_handle_trap(frame);
  EXPECT_EQ(hv_.counters().traps, 1u);
  EXPECT_EQ(board_.cpu(1).trap_entries, 1u);
}

}  // namespace
}  // namespace mcs::jh
