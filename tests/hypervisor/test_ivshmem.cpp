#include "hypervisor/ivshmem.hpp"

#include <gtest/gtest.h>

namespace mcs::jh {
namespace {

class IvshmemTest : public ::testing::Test {
 protected:
  IvshmemTest() : space_a_(map_a_, dram_), space_b_(map_b_, dram_) {
    const mem::MemRegion shared = make_ivshmem_region();
    EXPECT_TRUE(map_a_.add_region(shared).is_ok());
    EXPECT_TRUE(map_b_.add_region(shared).is_ok());
  }

  mem::PhysicalMemory dram_;
  mem::MemoryMap map_a_;
  mem::MemoryMap map_b_;
  mem::AddressSpace space_a_;
  mem::AddressSpace space_b_;
};

TEST_F(IvshmemTest, RegionIsRootShared) {
  const mem::MemRegion region = make_ivshmem_region();
  EXPECT_TRUE(region.flags & mem::kMemRootShared);
  EXPECT_TRUE(region.flags & mem::kMemRead);
  EXPECT_TRUE(region.flags & mem::kMemWrite);
  EXPECT_FALSE(region.flags & mem::kMemExecute);  // never executable
}

TEST_F(IvshmemTest, TextRoundTrip) {
  IvshmemChannel tx(space_a_, kIvshmemBase, 1024);
  IvshmemChannel rx(space_b_, kIvshmemBase, 1024);
  ASSERT_TRUE(tx.init().is_ok());
  ASSERT_TRUE(tx.send_text("hello cell").is_ok());
  auto message = rx.receive_text();
  ASSERT_TRUE(message.is_ok());
  EXPECT_EQ(message.value(), "hello cell");
}

TEST_F(IvshmemTest, FifoOrderAcrossMessages) {
  IvshmemChannel tx(space_a_, kIvshmemBase, 1024);
  IvshmemChannel rx(space_b_, kIvshmemBase, 1024);
  ASSERT_TRUE(tx.init().is_ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tx.send_text("msg" + std::to_string(i)).is_ok());
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rx.receive_text().value(), "msg" + std::to_string(i));
  }
}

TEST_F(IvshmemTest, EmptyRingReportsEBusy) {
  IvshmemChannel channel(space_a_, kIvshmemBase, 1024);
  ASSERT_TRUE(channel.init().is_ok());
  EXPECT_FALSE(channel.receive().is_ok());
  EXPECT_EQ(channel.pending_bytes().value(), 0u);
}

TEST_F(IvshmemTest, FullRingRejectsSend) {
  IvshmemChannel channel(space_a_, kIvshmemBase, 32);
  ASSERT_TRUE(channel.init().is_ok());
  ASSERT_TRUE(channel.send_text("0123456789").is_ok());   // 14 bytes used
  ASSERT_TRUE(channel.send_text("0123456789").is_ok());   // 28 bytes used
  EXPECT_EQ(channel.send_text("x").code(), util::Code::EBusy);
  // Drain one, then there is space again.
  (void)channel.receive();
  EXPECT_TRUE(channel.send_text("x").is_ok());
}

TEST_F(IvshmemTest, WrapAroundPreservesPayload) {
  IvshmemChannel tx(space_a_, kIvshmemBase, 64);
  IvshmemChannel rx(space_b_, kIvshmemBase, 64);
  ASSERT_TRUE(tx.init().is_ok());
  for (int round = 0; round < 20; ++round) {
    const std::string payload = "round-" + std::to_string(round);
    ASSERT_TRUE(tx.send_text(payload).is_ok());
    EXPECT_EQ(rx.receive_text().value(), payload);
  }
}

TEST_F(IvshmemTest, PendingBytesTracksQueue) {
  IvshmemChannel channel(space_a_, kIvshmemBase, 1024);
  ASSERT_TRUE(channel.init().is_ok());
  ASSERT_TRUE(channel.send_text("abcd").is_ok());
  EXPECT_EQ(channel.pending_bytes().value(), 8u);  // 4 length + 4 payload
}

TEST_F(IvshmemTest, ChannelWithoutMappingFails) {
  mem::MemoryMap empty;
  mem::AddressSpace no_access(empty, dram_);
  IvshmemChannel channel(no_access, kIvshmemBase, 64);
  EXPECT_FALSE(channel.init().is_ok());
  EXPECT_FALSE(channel.send_text("x").is_ok());
}

TEST_F(IvshmemTest, DoorbellRaisesSgiAtPeer) {
  irq::Gic gic(2);
  IvshmemChannel channel(space_a_, kIvshmemBase, 64);
  ASSERT_TRUE(channel.ring_doorbell(gic, 0, 1).is_ok());
  EXPECT_TRUE(gic.is_pending(kIvshmemDoorbellSgi, 1));
  EXPECT_FALSE(gic.is_pending(kIvshmemDoorbellSgi, 0));
}

TEST_F(IvshmemTest, OversizedMessageRejected) {
  IvshmemChannel channel(space_a_, kIvshmemBase, 1024);
  ASSERT_TRUE(channel.init().is_ok());
  const std::vector<std::uint8_t> huge(0x10000 + 1, 0);
  EXPECT_EQ(channel.send(huge).code(), util::Code::EInval);
}

}  // namespace
}  // namespace mcs::jh
