// Machine orchestration: guest binding, tick ordering, panic freeze.
#include "hypervisor/machine.hpp"

#include <gtest/gtest.h>

#include "guests/freertos_image.hpp"
#include "hypervisor/hypervisor.hpp"

namespace mcs::jh {
namespace {

constexpr std::uint64_t kConfigAddr = 0x4800'0000;

/// Minimal guest that counts its callbacks.
class CountingGuest final : public GuestImage {
 public:
  [[nodiscard]] std::string_view name() const override { return "counting"; }
  void on_start(GuestContext&) override { ++starts; }
  void run_quantum(GuestContext&) override { ++quanta; }
  void on_timer(GuestContext& ctx) override {
    ++timers;
    if (start_timer_once && timers == 1) ctx.stop_periodic_timer();
  }
  void on_irq(GuestContext&, std::uint32_t irq) override {
    irqs.push_back(irq);
  }

  int starts = 0;
  int quanta = 0;
  int timers = 0;
  bool start_timer_once = false;
  std::vector<std::uint32_t> irqs;
};

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : hv_(board_), machine_(board_, hv_) {
    EXPECT_TRUE(hv_.enable(make_root_cell_config()).is_ok());
    hv_.register_config(kConfigAddr, make_freertos_cell_config());
  }

  CellId start_cell_with(GuestImage& image) {
    const HvcResult id = hv_.guest_hypercall(
        0, static_cast<std::uint32_t>(Hypercall::CellCreate), kConfigAddr);
    EXPECT_GT(id, 0);
    machine_.bind_guest(static_cast<CellId>(id), image);
    EXPECT_EQ(hv_.guest_hypercall(
                  0, static_cast<std::uint32_t>(Hypercall::CellStart),
                  static_cast<std::uint32_t>(id)),
              0);
    return static_cast<CellId>(id);
  }

  platform::BananaPiBoard board_;
  Hypervisor hv_;
  Machine machine_;
};

TEST_F(MachineTest, OnStartFiresOncePerBringUp) {
  CountingGuest guest;
  (void)start_cell_with(guest);
  machine_.run_ticks(10);
  EXPECT_EQ(guest.starts, 1);
  EXPECT_GE(guest.quanta, 8);
}

TEST_F(MachineTest, QuantaStopWhenCpuParks) {
  CountingGuest guest;
  (void)start_cell_with(guest);
  machine_.run_ticks(5);
  const int quanta_before = guest.quanta;
  board_.cpu(1).park("test park");
  machine_.run_ticks(20);
  EXPECT_EQ(guest.quanta, quanta_before);
}

TEST_F(MachineTest, PanicFreezesAllGuests) {
  CountingGuest guest;
  (void)start_cell_with(guest);
  machine_.run_ticks(5);
  arch::EntryFrame bad = board_.cpu(0).make_trap_frame(
      arch::Syndrome::make(arch::ExceptionClass::Hvc, 0));
  bad.bank.set(arch::Reg::R0, 0x1);
  (void)hv_.arch_handle_trap(bad);
  const int quanta_before = guest.quanta;
  machine_.run_ticks(50);
  EXPECT_EQ(guest.quanta, quanta_before);
  // Time itself still flows (the board clock is hardware).
  EXPECT_EQ(board_.now().value, 55u);
}

TEST_F(MachineTest, TimerDeliveryReachesGuest) {
  CountingGuest guest;
  const CellId id = start_cell_with(guest);
  machine_.run_tick();  // bring-up
  board_.timer().start(1, 5);
  machine_.run_ticks(21);
  EXPECT_EQ(guest.timers, 4);
  (void)id;
}

TEST_F(MachineTest, UnbindStopsCallbacks) {
  CountingGuest guest;
  const CellId id = start_cell_with(guest);
  machine_.run_ticks(5);
  machine_.unbind_guest(id);
  const int quanta_before = guest.quanta;
  machine_.run_ticks(10);
  EXPECT_EQ(guest.quanta, quanta_before);
  EXPECT_EQ(machine_.guest_for(id), nullptr);
}

TEST_F(MachineTest, RebindReplacesImage) {
  CountingGuest first;
  CountingGuest second;
  const CellId id = start_cell_with(first);
  machine_.run_ticks(3);
  machine_.bind_guest(id, second);
  machine_.run_ticks(3);
  EXPECT_GT(first.quanta, 0);
  EXPECT_GT(second.quanta, 0);
}

TEST_F(MachineTest, SgiDeliveredToGuestOnIrq) {
  CountingGuest guest;
  (void)start_cell_with(guest);
  machine_.run_tick();
  ASSERT_TRUE(board_.gic().send_sgi(0, 1, 14).is_ok());
  machine_.run_tick();
  ASSERT_EQ(guest.irqs.size(), 1u);
  EXPECT_EQ(guest.irqs[0], 14u);
}

TEST_F(MachineTest, IrqDeliveryCappedPerTick) {
  CountingGuest guest;
  (void)start_cell_with(guest);
  machine_.run_tick();
  // Flood SGIs: more than the per-tick cap.
  for (irq::IrqId sgi = 0; sgi < 12; ++sgi) {
    (void)board_.gic().send_sgi(0, 1, sgi % 16);
  }
  machine_.run_tick();
  EXPECT_LE(guest.irqs.size(), 8u);  // kMaxIrqsPerTick
  machine_.run_tick();               // the rest drain next tick
  EXPECT_GE(guest.irqs.size(), 10u);
}

TEST_F(MachineTest, GuestForUnknownCellIsNull) {
  EXPECT_EQ(machine_.guest_for(42), nullptr);
}

}  // namespace
}  // namespace mcs::jh
