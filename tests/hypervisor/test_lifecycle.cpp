// Cell lifecycle across the full machine: create → start → bring-up →
// run → shutdown → destroy, including the §III hot-plug swap semantics
// and the inconsistent-state window.
#include <gtest/gtest.h>

#include "guests/freertos_image.hpp"
#include "hypervisor/machine.hpp"

namespace mcs::jh {
namespace {

constexpr std::uint64_t kConfigAddr = 0x4800'0000;

class LifecycleTest : public ::testing::Test {
 protected:
  LifecycleTest() : hv_(board_), machine_(board_, hv_) {
    EXPECT_TRUE(hv_.enable(make_root_cell_config()).is_ok());
    hv_.register_config(kConfigAddr, make_freertos_cell_config());
  }

  CellId create_cell() {
    const HvcResult id = hv_.guest_hypercall(
        0, static_cast<std::uint32_t>(Hypercall::CellCreate), kConfigAddr);
    EXPECT_GT(id, 0);
    machine_.bind_guest(static_cast<CellId>(id), freertos_);
    return static_cast<CellId>(id);
  }

  HvcResult call(Hypercall op, std::uint32_t arg) {
    return hv_.guest_hypercall(0, static_cast<std::uint32_t>(op), arg);
  }

  platform::BananaPiBoard board_;
  Hypervisor hv_;
  Machine machine_;
  guest::FreeRtosImage freertos_;
};

TEST_F(LifecycleTest, StartBringsCpuOnlineNextTick) {
  const CellId id = create_cell();
  ASSERT_EQ(call(Hypercall::CellStart, id), 0);
  // The window: cell says Running, CPU still in bring-up.
  EXPECT_EQ(hv_.find_cell(id)->state(), CellState::Running);
  EXPECT_EQ(board_.cpu(1).power_state(), arch::PowerState::Booting);
  machine_.run_tick();
  EXPECT_TRUE(board_.cpu(1).is_online());
}

TEST_F(LifecycleTest, StartedCellRunsWorkload) {
  const CellId id = create_cell();
  ASSERT_EQ(call(Hypercall::CellStart, id), 0);
  machine_.run_ticks(3'000);
  EXPECT_GT(freertos_.blink_count(), 0u);
  EXPECT_GT(freertos_.messages_validated(), 0u);
  EXPECT_GT(board_.uart1().total_bytes(), 0u);
  EXPECT_EQ(freertos_.data_errors(), 0u);
}

TEST_F(LifecycleTest, StartNonexistentCellIsENoEnt) {
  EXPECT_EQ(call(Hypercall::CellStart, 42), kHvcENoEnt);
}

TEST_F(LifecycleTest, StartRootCellIsEInval) {
  EXPECT_EQ(call(Hypercall::CellStart, kRootCellId), kHvcEInval);
}

TEST_F(LifecycleTest, DoubleStartIsEBusy) {
  const CellId id = create_cell();
  ASSERT_EQ(call(Hypercall::CellStart, id), 0);
  machine_.run_tick();
  EXPECT_EQ(call(Hypercall::CellStart, id), kHvcEBusy);
}

TEST_F(LifecycleTest, ShutdownReturnsResourcesToRoot) {
  const CellId id = create_cell();
  ASSERT_EQ(call(Hypercall::CellStart, id), 0);
  machine_.run_ticks(100);
  ASSERT_EQ(call(Hypercall::CellShutdown, id), 0);
  EXPECT_EQ(hv_.find_cell(id)->state(), CellState::ShutDown);
  EXPECT_EQ(hv_.cpu_owner(1), kRootCellId);
  EXPECT_EQ(board_.cpu(1).power_state(), arch::PowerState::Off);
  EXPECT_FALSE(board_.gic().is_enabled(platform::kUart1Irq));
}

TEST_F(LifecycleTest, ShutdownRequiresRunning) {
  const CellId id = create_cell();
  EXPECT_EQ(call(Hypercall::CellShutdown, id), kHvcEInval);
  EXPECT_EQ(call(Hypercall::CellShutdown, kRootCellId), kHvcEInval);
  EXPECT_EQ(call(Hypercall::CellShutdown, 42), kHvcENoEnt);
}

TEST_F(LifecycleTest, DestroyRestoresRootMemory) {
  const CellId id = create_cell();
  ASSERT_FALSE(hv_.root_cell()
                   .memory_map()
                   .translate(kFreeRtosRamBase, mem::Access::Write)
                   .is_ok());
  ASSERT_EQ(call(Hypercall::CellDestroy, id), 0);
  EXPECT_EQ(hv_.find_cell(id), nullptr);
  EXPECT_TRUE(hv_.root_cell()
                  .memory_map()
                  .translate(kFreeRtosRamBase, mem::Access::Write)
                  .is_ok());
}

TEST_F(LifecycleTest, DestroyRunningCellReclaimsFirst) {
  const CellId id = create_cell();
  ASSERT_EQ(call(Hypercall::CellStart, id), 0);
  machine_.run_ticks(10);
  ASSERT_EQ(call(Hypercall::CellDestroy, id), 0);
  EXPECT_EQ(hv_.cpu_owner(1), kRootCellId);
  EXPECT_EQ(hv_.cells().size(), 1u);
}

TEST_F(LifecycleTest, DestroyRootIsEInval) {
  EXPECT_EQ(call(Hypercall::CellDestroy, kRootCellId), kHvcEInval);
}

TEST_F(LifecycleTest, CreateStartDestroyCycleRepeats) {
  // §III: "only destroying the cell and reallocating it fixes the
  // problem" — the cycle must be repeatable indefinitely.
  for (int round = 0; round < 5; ++round) {
    const HvcResult id = call(Hypercall::CellCreate, kConfigAddr);
    ASSERT_GT(id, 0) << "round " << round;
    machine_.bind_guest(static_cast<CellId>(id), freertos_);
    ASSERT_EQ(call(Hypercall::CellStart, static_cast<std::uint32_t>(id)), 0);
    machine_.run_ticks(50);
    EXPECT_TRUE(board_.cpu(1).is_online());
    ASSERT_EQ(call(Hypercall::CellDestroy, static_cast<std::uint32_t>(id)), 0);
    machine_.unbind_guest(static_cast<CellId>(id));
  }
  EXPECT_EQ(hv_.cells().size(), 1u);
}

TEST_F(LifecycleTest, SetLoadableReturnsToCreated) {
  const CellId id = create_cell();
  ASSERT_EQ(call(Hypercall::CellStart, id), 0);
  machine_.run_ticks(5);
  ASSERT_EQ(call(Hypercall::CellShutdown, id), 0);
  EXPECT_EQ(call(Hypercall::CellSetLoadable, id), 0);
  EXPECT_EQ(hv_.find_cell(id)->state(), CellState::Created);
  // And it can start again.
  EXPECT_EQ(call(Hypercall::CellStart, id), 0);
}

TEST_F(LifecycleTest, ParkedCellCpuRecoversOnlyViaDestroy) {
  const CellId id = create_cell();
  ASSERT_EQ(call(Hypercall::CellStart, id), 0);
  machine_.run_ticks(10);
  board_.cpu(1).park("unhandled trap exception class 0x24");
  // Start again fails while parked (cell still Running anyway).
  EXPECT_EQ(call(Hypercall::CellStart, id), kHvcEBusy);
  ASSERT_EQ(call(Hypercall::CellDestroy, id), 0);
  machine_.unbind_guest(id);
  // Re-create and start: the CPU boots again.
  const CellId id2 = create_cell();
  ASSERT_EQ(call(Hypercall::CellStart, id2), 0);
  machine_.run_tick();
  EXPECT_TRUE(board_.cpu(1).is_online());
}

}  // namespace
}  // namespace mcs::jh
