#include "hypervisor/cell.hpp"

#include <gtest/gtest.h>

#include "hypervisor/cell_config.hpp"
#include "platform/board.hpp"

namespace mcs::jh {
namespace {

class CellTest : public ::testing::Test {
 protected:
  CellTest() : cell_(1, make_freertos_cell_config(), dram_) {}

  mem::PhysicalMemory dram_;
  Cell cell_;
};

TEST_F(CellTest, StartsCreated) {
  EXPECT_EQ(cell_.state(), CellState::Created);
  EXPECT_EQ(cell_.id(), 1u);
  EXPECT_EQ(cell_.name(), "freertos-cell");
}

TEST_F(CellTest, OwnsConfiguredCpu) {
  EXPECT_TRUE(cell_.owns_cpu(1));
  EXPECT_FALSE(cell_.owns_cpu(0));
  EXPECT_FALSE(cell_.owns_cpu(-1));
}

TEST_F(CellTest, OwnsConfiguredIrq) {
  EXPECT_TRUE(cell_.owns_irq(platform::kUart1Irq));
  EXPECT_FALSE(cell_.owns_irq(platform::kUart0Irq));
}

TEST_F(CellTest, MemoryMapBuiltFromConfig) {
  EXPECT_EQ(cell_.memory_map().regions().size(),
            cell_.config().mem_regions.size());
  EXPECT_TRUE(cell_.memory_map()
                  .translate(kFreeRtosRamBase, mem::Access::Execute)
                  .is_ok());
}

TEST_F(CellTest, AddressSpaceEnforcesMap) {
  EXPECT_TRUE(cell_.address_space().write_u32(kFreeRtosRamBase + 8, 7).is_ok());
  EXPECT_FALSE(cell_.address_space().write_u32(0x4000'0000, 7).is_ok());
}

TEST_F(CellTest, StateTransitionsAreBookkeepingOnly) {
  cell_.set_state(CellState::Running);
  EXPECT_EQ(cell_.state(), CellState::Running);
  cell_.set_state(CellState::ShutDown);
  EXPECT_EQ(cell_.state(), CellState::ShutDown);
  cell_.set_state(CellState::Failed);
  EXPECT_EQ(cell_.state(), CellState::Failed);
}

TEST_F(CellTest, StateNames) {
  EXPECT_EQ(cell_state_name(CellState::Created), "created");
  EXPECT_EQ(cell_state_name(CellState::Running), "running");
  EXPECT_EQ(cell_state_name(CellState::ShutDown), "shut down");
  EXPECT_EQ(cell_state_name(CellState::Failed), "failed");
}

TEST_F(CellTest, StatisticsStartAtZero) {
  EXPECT_EQ(cell_.console_bytes, 0u);
  EXPECT_EQ(cell_.hypercalls, 0u);
  EXPECT_EQ(cell_.stage2_faults, 0u);
}

}  // namespace
}  // namespace mcs::jh
