// Stage-2 MMIO emulation: trapped console and the virtualised GIC
// distributor, exercised through guest_data_abort (the real entry path).
#include <gtest/gtest.h>

#include "hypervisor/hypervisor.hpp"

namespace mcs::jh {
namespace {

constexpr std::uint64_t kConfigAddr = 0x4800'0000;

class MmioTest : public ::testing::Test {
 protected:
  MmioTest() : hv_(board_) {}

  void SetUp() override {
    ASSERT_TRUE(hv_.enable(make_root_cell_config()).is_ok());
    // A trapped-console variant of the FreeRTOS cell: no UART1 window, so
    // every console byte data-aborts into the hypervisor.
    CellConfig config = make_freertos_cell_config();
    config.console.kind = ConsoleKind::Trapped;
    std::erase_if(config.mem_regions,
                  [](const mem::MemRegion& r) { return r.name == "uart1"; });
    hv_.register_config(kConfigAddr, config);
    const HvcResult id = hv_.guest_hypercall(
        0, static_cast<std::uint32_t>(Hypercall::CellCreate), kConfigAddr);
    ASSERT_GT(id, 0);
    cell_id_ = static_cast<CellId>(id);
    ASSERT_EQ(hv_.guest_hypercall(
                  0, static_cast<std::uint32_t>(Hypercall::CellStart), cell_id_),
              0);
    hv_.cpu_bringup_entry(1);
    ASSERT_TRUE(board_.cpu(1).is_online());
  }

  platform::BananaPiBoard board_;
  Hypervisor hv_;
  CellId cell_id_ = 0;
};

TEST_F(MmioTest, TrappedConsoleWriteReachesUart1) {
  const TrapOutcome outcome = hv_.guest_data_abort(
      1, platform::kUart1Base + platform::kUartThr, 'Z', true);
  EXPECT_EQ(outcome.action, TrapAction::Resume);
  EXPECT_EQ(board_.uart1().captured(), "Z");
  EXPECT_EQ(hv_.find_cell(cell_id_)->console_bytes, 1u);
  EXPECT_EQ(hv_.counters().mmio_emulations, 1u);
}

TEST_F(MmioTest, TrappedConsoleLsrReadsReady) {
  const TrapOutcome outcome = hv_.guest_data_abort(
      1, platform::kUart1Base + platform::kUartLsr, 0, false);
  EXPECT_EQ(outcome.action, TrapAction::Resume);
  EXPECT_EQ(outcome.mmio_read_value, platform::kLsrThrEmpty);
}

TEST_F(MmioTest, TrappedConsoleOtherOffsetsAreBenign) {
  EXPECT_EQ(hv_.guest_data_abort(1, platform::kUart1Base + 0x8, 0xFF, true).action,
            TrapAction::Resume);
  EXPECT_EQ(board_.uart1().captured(), "");  // write-ignored
}

TEST_F(MmioTest, GicdEnableForOwnedSpi) {
  const std::uint32_t bit = 1u << (platform::kUart1Irq - 32);
  const TrapOutcome outcome =
      hv_.guest_data_abort(1, kGicDistBase + 0x104, bit, true);
  EXPECT_EQ(outcome.action, TrapAction::Resume);
  EXPECT_TRUE(board_.gic().is_enabled(platform::kUart1Irq));
  EXPECT_EQ(board_.gic().target(platform::kUart1Irq), 1);
}

TEST_F(MmioTest, GicdEnableForUnownedSpiIsIgnored) {
  const std::uint32_t bit = 1u << (platform::kUart0Irq - 32);
  const TrapOutcome outcome =
      hv_.guest_data_abort(1, kGicDistBase + 0x104, bit, true);
  EXPECT_EQ(outcome.action, TrapAction::Resume);  // RAZ/WI, not a fault
  EXPECT_FALSE(board_.gic().is_enabled(platform::kUart0Irq));
}

TEST_F(MmioTest, GicdReadBackShowsOwnedEnabledLines) {
  const std::uint32_t bit = 1u << (platform::kUart1Irq - 32);
  (void)hv_.guest_data_abort(1, kGicDistBase + 0x104, bit, true);
  const TrapOutcome outcome =
      hv_.guest_data_abort(1, kGicDistBase + 0x104, 0, false);
  EXPECT_EQ(outcome.mmio_read_value, bit);
}

TEST_F(MmioTest, GicdDisableOwnedSpi) {
  const std::uint32_t bit = 1u << (platform::kUart1Irq - 32);
  (void)hv_.guest_data_abort(1, kGicDistBase + 0x104, bit, true);
  (void)hv_.guest_data_abort(1, kGicDistBase + 0x184, bit, true);
  EXPECT_FALSE(board_.gic().is_enabled(platform::kUart1Irq));
}

TEST_F(MmioTest, GicdPrioritySetForOwnedLineOnly) {
  // IPRIORITYR word containing irq 34 starts at offset 0x400 + 32.
  const std::uint64_t offset = 0x400 + (platform::kUart1Irq & ~3u);
  const unsigned lane = platform::kUart1Irq % 4;
  (void)hv_.guest_data_abort(1, kGicDistBase + offset,
                             0x40u << (8 * lane), true);
  EXPECT_EQ(board_.gic().priority(platform::kUart1Irq), 0x40);
  EXPECT_NE(board_.gic().priority(platform::kUart0Irq), 0x40);
}

TEST_F(MmioTest, GicdCtlrReadsOne) {
  const TrapOutcome outcome = hv_.guest_data_abort(1, kGicDistBase, 0, false);
  EXPECT_EQ(outcome.mmio_read_value, 1u);
}

TEST_F(MmioTest, GicdUnknownOffsetIsRazWi) {
  const TrapOutcome outcome =
      hv_.guest_data_abort(1, kGicDistBase + 0xF00, 0x123, true);
  EXPECT_EQ(outcome.action, TrapAction::Resume);
  EXPECT_EQ(hv_.guest_data_abort(1, kGicDistBase + 0xF00, 0, false)
                .mmio_read_value,
            0u);
}

TEST_F(MmioTest, AddressOutsideAllWindowsParks0x24) {
  const TrapOutcome outcome = hv_.guest_data_abort(1, 0x0bad'0000, 1, true);
  EXPECT_EQ(outcome.action, TrapAction::CpuParked);
  EXPECT_NE(board_.cpu(1).halt_reason().find("0x24"), std::string::npos);
}

TEST_F(MmioTest, Stage2FaultCounterPerCell) {
  (void)hv_.guest_data_abort(1, platform::kUart1Base, 'a', true);
  (void)hv_.guest_data_abort(1, kGicDistBase, 0, false);
  EXPECT_EQ(hv_.find_cell(cell_id_)->stage2_faults, 2u);
}

}  // namespace
}  // namespace mcs::jh
