// Cell liveness watchdog: detection of the paper's inconsistent state and
// of CPU parks, plus the auto-remediation policy.
#include "hypervisor/watchdog.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace mcs::jh {
namespace {

class WatchdogTest : public ::testing::Test {
 protected:
  WatchdogTest() { EXPECT_TRUE(testbed_.enable_hypervisor().is_ok()); }

  CellWatchdog make_watchdog(RemediationPolicy policy) {
    // Default tuning: 100 ms checks, 5 silent checks before NoProgress.
    // The workload's natural print cadence has ~250 ms gaps, so anything
    // much tighter than 500 ms of tolerance false-positives.
    CellWatchdog::Options options;
    options.policy = policy;
    return CellWatchdog(testbed_.hypervisor(), options);
  }

  fi::Testbed testbed_;
};

TEST_F(WatchdogTest, HealthyCellRaisesNoAlarm) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::ReportOnly);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  testbed_.run(3'000);
  EXPECT_EQ(watchdog.alarms(), 0u);
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, DetectsInconsistentCell) {
  // The §III finding: cell RUNNING while its CPU failed bring-up.
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::ReportOnly);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  testbed_.board().cpu(1).fail_boot("entry gate not executable");
  testbed_.run(100);
  ASSERT_GE(watchdog.alarms(), 1u);
  EXPECT_EQ(watchdog.events()[0].alarm, WatchdogAlarm::CpuDead);
  EXPECT_EQ(watchdog.events()[0].cell, testbed_.freertos_cell_id());
  EXPECT_TRUE(testbed_.board().log().contains("watchdog", "cpu-dead"));
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, DetectsCpuPark) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::ReportOnly);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  testbed_.run(200);
  testbed_.board().cpu(1).park("unhandled trap exception class 0x24");
  testbed_.run(100);
  ASSERT_GE(watchdog.alarms(), 1u);
  EXPECT_EQ(watchdog.events()[0].alarm, WatchdogAlarm::CpuParked);
  EXPECT_NE(watchdog.events()[0].detail.find("0x24"), std::string::npos);
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, DetectsSilentCell) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::ReportOnly);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  testbed_.run(200);
  // Freeze the workload: CPU online, cell running, no output.
  auto& kernel = testbed_.freertos().kernel();
  for (std::size_t i = 0; i < kernel.task_count(); ++i) kernel.suspend(i);
  testbed_.run(2'000);
  ASSERT_GE(watchdog.alarms(), 1u);
  bool saw_no_progress = false;
  for (const WatchdogEvent& event : watchdog.events()) {
    if (event.alarm == WatchdogAlarm::NoProgress) saw_no_progress = true;
  }
  EXPECT_TRUE(saw_no_progress);
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, OneAlarmPerIncident) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::ReportOnly);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  testbed_.board().cpu(1).fail_boot("stuck");
  testbed_.run(2'000);  // many check periods
  EXPECT_EQ(watchdog.alarms(), 1u);
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, AutoShutdownReclaimsTheCpu) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::AutoShutdown);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  testbed_.board().cpu(1).fail_boot("broken bring-up");
  testbed_.run(100);
  ASSERT_EQ(watchdog.remediations(), 1u);
  EXPECT_TRUE(watchdog.events()[0].remediated);
  EXPECT_EQ(testbed_.freertos_cell()->state(), CellState::ShutDown);
  EXPECT_EQ(testbed_.hypervisor().cpu_owner(1), kRootCellId);
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, DetectionLatencyBoundedByCheckPeriod) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::ReportOnly);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  const std::uint64_t fault_tick = testbed_.board().now().value;
  testbed_.board().cpu(1).fail_boot("late fault");
  testbed_.run(200);
  const std::uint64_t alarm_tick =
      watchdog.first_alarm_tick(testbed_.freertos_cell_id());
  ASSERT_GT(alarm_tick, 0u);
  EXPECT_LE(alarm_tick - fault_tick, 100u + 1);  // one check period
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, IgnoresCleanlyShutDownCells) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::ReportOnly);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  testbed_.run(200);
  testbed_.shutdown_freertos_cell();
  testbed_.run(1'000);
  EXPECT_EQ(watchdog.alarms(), 0u);
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, SilentAfterPanic) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::AutoShutdown);
  testbed_.machine().install_watchdog(&watchdog);
  testbed_.boot_freertos_cell();
  arch::EntryFrame frame = testbed_.board().cpu(0).make_trap_frame(
      arch::Syndrome::make(arch::ExceptionClass::Hvc, 0));
  frame.bank.set(arch::Reg::R0, 0xBAD);
  (void)testbed_.hypervisor().arch_handle_trap(frame);
  testbed_.run(500);
  // A panicked system has nothing to remediate; no false alarms either.
  EXPECT_EQ(watchdog.remediations(), 0u);
  testbed_.machine().install_watchdog(nullptr);
}

TEST_F(WatchdogTest, BatchedTicksMatchPerTickAccounting) {
  // on_ticks(n) is the event-driven scheduler's accounting primitive; it
  // must run check rounds at exactly the boundaries n on_tick() calls do.
  testbed_.boot_freertos_cell();
  testbed_.board().cpu(1).fail_boot("batch probe");

  CellWatchdog stepped = make_watchdog(RemediationPolicy::ReportOnly);
  CellWatchdog batched = make_watchdog(RemediationPolicy::ReportOnly);
  for (int i = 0; i < 250; ++i) stepped.on_tick();
  batched.on_ticks(37);   // crosses no boundary
  batched.on_ticks(100);  // crosses the 100-tick boundary mid-span
  batched.on_ticks(113);  // lands exactly on the 250th tick
  EXPECT_EQ(stepped.alarms(), batched.alarms());
  ASSERT_GE(batched.alarms(), 1u);
  EXPECT_EQ(stepped.events()[0].alarm, batched.events()[0].alarm);
}

TEST_F(WatchdogTest, TicksToNextCheckTracksBoundaries) {
  CellWatchdog watchdog = make_watchdog(RemediationPolicy::ReportOnly);
  EXPECT_EQ(watchdog.ticks_to_next_check(), 100u);
  watchdog.on_ticks(37);
  EXPECT_EQ(watchdog.ticks_to_next_check(), 63u);
  watchdog.on_ticks(63);
  EXPECT_EQ(watchdog.ticks_to_next_check(), 100u);
}

TEST_F(WatchdogTest, AlarmNames) {
  EXPECT_EQ(watchdog_alarm_name(WatchdogAlarm::CpuDead), "cpu-dead");
  EXPECT_EQ(watchdog_alarm_name(WatchdogAlarm::CpuParked), "cpu-parked");
  EXPECT_EQ(watchdog_alarm_name(WatchdogAlarm::NoProgress), "no-progress");
}

}  // namespace
}  // namespace mcs::jh
