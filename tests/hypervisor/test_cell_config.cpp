#include "hypervisor/cell_config.hpp"

#include <gtest/gtest.h>

#include "platform/board.hpp"

namespace mcs::jh {
namespace {

TEST(CellConfig, PaperConfigsValidate) {
  EXPECT_TRUE(make_root_cell_config().validate(2).is_ok());
  EXPECT_TRUE(make_freertos_cell_config().validate(2).is_ok());
}

TEST(CellConfig, RootCellOwnsBothCpusAtBoot) {
  const CellConfig config = make_root_cell_config();
  EXPECT_EQ(config.cpus.size(), 2u);
  EXPECT_EQ(config.console.kind, ConsoleKind::Passthrough);
  EXPECT_EQ(config.console.uart_base, platform::kUart0Base);
}

TEST(CellConfig, FreeRtosCellIsCpu1WithUsartConsole) {
  // "We statically assigned the board CPU core 0 to the root cell and the
  // CPU core 1 to the non-root cell (FreeRTOS cell)."
  const CellConfig config = make_freertos_cell_config();
  ASSERT_EQ(config.cpus.size(), 1u);
  EXPECT_EQ(config.cpus[0], 1);
  EXPECT_EQ(config.console.uart_base, platform::kUart1Base);
  EXPECT_EQ(config.entry_point, kFreeRtosEntry);
}

TEST(CellConfig, EmptyNameRejected) {
  CellConfig config = make_freertos_cell_config();
  config.name.clear();
  EXPECT_EQ(config.validate(2).code(), util::Code::EInval);
}

TEST(CellConfig, NoCpusRejected) {
  CellConfig config = make_freertos_cell_config();
  config.cpus.clear();
  EXPECT_EQ(config.validate(2).code(), util::Code::EInval);
}

TEST(CellConfig, CpuOutOfRangeRejected) {
  CellConfig config = make_freertos_cell_config();
  config.cpus = {2};
  EXPECT_EQ(config.validate(2).code(), util::Code::EInval);
  config.cpus = {-1};
  EXPECT_EQ(config.validate(2).code(), util::Code::EInval);
}

TEST(CellConfig, DuplicateCpuRejected) {
  CellConfig config = make_root_cell_config();
  config.cpus = {0, 0};
  EXPECT_EQ(config.validate(2).code(), util::Code::EInval);
}

TEST(CellConfig, OverlappingRegionsRejected) {
  CellConfig config = make_freertos_cell_config();
  mem::MemRegion dup = config.mem_regions.front();
  dup.name = "dup";
  config.mem_regions.push_back(dup);
  EXPECT_EQ(config.validate(2).code(), util::Code::EInval);
}

TEST(CellConfig, ZeroSizedRegionRejected) {
  CellConfig config = make_freertos_cell_config();
  mem::MemRegion zero;
  zero.name = "zero";
  zero.virt_start = 0xF000'0000;
  zero.size = 0;
  config.mem_regions.push_back(zero);
  EXPECT_EQ(config.validate(2).code(), util::Code::EInval);
}

TEST(CellConfig, NonSpiIrqRejected) {
  CellConfig config = make_freertos_cell_config();
  config.irqs.push_back(27);  // a PPI is not assignable
  EXPECT_EQ(config.validate(2).code(), util::Code::EInval);
}

TEST(CellConfig, FreeRtosRamLiesInRootLoanablePool) {
  const CellConfig root = make_root_cell_config();
  const CellConfig cell = make_freertos_cell_config();
  mem::MemoryMap root_map;
  for (const auto& region : root.mem_regions) {
    ASSERT_TRUE(root_map.add_region(region).is_ok());
  }
  for (const auto& region : cell.mem_regions) {
    EXPECT_TRUE(root_map.covers_phys(region.phys_start, region.size))
        << region.name;
  }
}

}  // namespace
}  // namespace mcs::jh
