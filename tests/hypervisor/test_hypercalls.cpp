#include <gtest/gtest.h>

#include "hypervisor/hypervisor.hpp"

namespace mcs::jh {
namespace {

constexpr std::uint64_t kConfigAddr = 0x4800'0000;

class HypercallTest : public ::testing::Test {
 protected:
  HypercallTest() : hv_(board_) {
    EXPECT_TRUE(hv_.enable(make_root_cell_config()).is_ok());
    hv_.register_config(kConfigAddr, make_freertos_cell_config());
  }

  HvcResult call(Hypercall op, std::uint32_t arg = 0, int cpu = 0) {
    return hv_.guest_hypercall(cpu, static_cast<std::uint32_t>(op), arg);
  }

  platform::BananaPiBoard board_;
  Hypervisor hv_;
};

TEST_F(HypercallTest, EnableCreatesRunningRootCell) {
  EXPECT_TRUE(hv_.is_enabled());
  EXPECT_EQ(hv_.root_cell().state(), CellState::Running);
  EXPECT_TRUE(board_.cpu(0).is_online());
  EXPECT_TRUE(board_.cpu(1).is_online());
  EXPECT_EQ(hv_.cpu_owner(0), kRootCellId);
  EXPECT_EQ(hv_.cpu_owner(1), kRootCellId);
}

TEST_F(HypercallTest, DoubleEnableRejected) {
  EXPECT_EQ(hv_.enable(make_root_cell_config()).code(), util::Code::EBusy);
}

TEST_F(HypercallTest, UnknownHypercallIsENOSYS) {
  EXPECT_EQ(call(static_cast<Hypercall>(999)), kHvcENoSys);
  EXPECT_EQ(hv_.counters().hypercall_errors, 1u);
}

TEST_F(HypercallTest, GetInfoCountsCells) {
  EXPECT_EQ(call(Hypercall::HypervisorGetInfo), 1);
  ASSERT_GT(call(Hypercall::CellCreate, kConfigAddr), 0);
  EXPECT_EQ(call(Hypercall::HypervisorGetInfo), 2);
}

TEST_F(HypercallTest, CellCreateReturnsFreshId) {
  const HvcResult id = call(Hypercall::CellCreate, kConfigAddr);
  ASSERT_GT(id, 0);
  Cell* cell = hv_.find_cell(static_cast<CellId>(id));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->name(), "freertos-cell");
  EXPECT_EQ(cell->state(), CellState::Created);
}

TEST_F(HypercallTest, CellCreateWithBadConfigAddressIsEinval) {
  // The §III root-context result: a corrupted config pointer produces
  // "invalid arguments" and no cell.
  EXPECT_EQ(call(Hypercall::CellCreate, 0xBAD0'0000), kHvcEInval);
  EXPECT_EQ(hv_.cells().size(), 1u);
}

TEST_F(HypercallTest, CellCreateTwiceIsEExist) {
  ASSERT_GT(call(Hypercall::CellCreate, kConfigAddr), 0);
  EXPECT_EQ(call(Hypercall::CellCreate, kConfigAddr), kHvcEExist);
}

TEST_F(HypercallTest, CellCreateMovesCpuOwnership) {
  const HvcResult id = call(Hypercall::CellCreate, kConfigAddr);
  ASSERT_GT(id, 0);
  EXPECT_EQ(hv_.cpu_owner(1), static_cast<CellId>(id));
  EXPECT_EQ(board_.cpu(1).power_state(), arch::PowerState::Off);  // offlined
  EXPECT_EQ(hv_.cpu_owner(0), kRootCellId);
}

TEST_F(HypercallTest, CellCreateCarvesRootMemory) {
  ASSERT_GT(call(Hypercall::CellCreate, kConfigAddr), 0);
  // The root cell can no longer reach the loaned RAM.
  EXPECT_FALSE(hv_.root_cell()
                   .memory_map()
                   .translate(kFreeRtosRamBase, mem::Access::Write)
                   .is_ok());
}

TEST_F(HypercallTest, ManagementFromNonRootCellIsEPerm) {
  const HvcResult id = call(Hypercall::CellCreate, kConfigAddr);
  ASSERT_GT(id, 0);
  ASSERT_EQ(call(Hypercall::CellStart, static_cast<std::uint32_t>(id)), 0);
  // CPU 1 now belongs to the new cell; management from it must fail.
  EXPECT_EQ(call(Hypercall::CellDestroy, static_cast<std::uint32_t>(id), 1),
            kHvcEPerm);
  EXPECT_EQ(call(Hypercall::CellCreate, kConfigAddr, 1), kHvcEPerm);
}

TEST_F(HypercallTest, NonRootMayUseInfoAndConsole) {
  const HvcResult id = call(Hypercall::CellCreate, kConfigAddr);
  ASSERT_GT(id, 0);
  ASSERT_EQ(call(Hypercall::CellStart, static_cast<std::uint32_t>(id)), 0);
  EXPECT_GE(call(Hypercall::CellGetState, static_cast<std::uint32_t>(id), 1), 0);
  EXPECT_EQ(call(Hypercall::DebugConsolePutc, 'x', 1), 0);
}

TEST_F(HypercallTest, GetStateReflectsLifecycle) {
  const HvcResult id = call(Hypercall::CellCreate, kConfigAddr);
  ASSERT_GT(id, 0);
  EXPECT_EQ(call(Hypercall::CellGetState, static_cast<std::uint32_t>(id)),
            static_cast<HvcResult>(CellState::Created));
  ASSERT_EQ(call(Hypercall::CellStart, static_cast<std::uint32_t>(id)), 0);
  EXPECT_EQ(call(Hypercall::CellGetState, static_cast<std::uint32_t>(id)),
            static_cast<HvcResult>(CellState::Running));
}

TEST_F(HypercallTest, GetStateUnknownCellIsENoEnt) {
  EXPECT_EQ(call(Hypercall::CellGetState, 17), kHvcENoEnt);
}

TEST_F(HypercallTest, CpuGetInfoValidation) {
  EXPECT_EQ(call(Hypercall::CpuGetInfo, 0),
            static_cast<HvcResult>(arch::PowerState::On));
  EXPECT_EQ(call(Hypercall::CpuGetInfo, 5), kHvcEInval);
}

TEST_F(HypercallTest, DebugConsolePutcWritesUart0) {
  ASSERT_EQ(call(Hypercall::DebugConsolePutc, 'J'), 0);
  EXPECT_NE(board_.uart0().captured().find('J'), std::string::npos);
  EXPECT_EQ(call(Hypercall::DebugConsolePutc, 0x100), kHvcEInval);
}

TEST_F(HypercallTest, DisableRefusedWhileCellsExist) {
  ASSERT_GT(call(Hypercall::CellCreate, kConfigAddr), 0);
  EXPECT_EQ(call(Hypercall::Disable), kHvcEBusy);
  EXPECT_TRUE(hv_.is_enabled());
}

TEST_F(HypercallTest, DisableWithOnlyRootSucceeds) {
  EXPECT_EQ(call(Hypercall::Disable), 0);
  EXPECT_FALSE(hv_.is_enabled());
}

TEST_F(HypercallTest, DisableThenReEnableRoundTrips) {
  // `jailhouse disable && jailhouse enable config.cell` — Linux takes the
  // hardware back, then hands it over again.
  ASSERT_EQ(call(Hypercall::Disable), 0);
  ASSERT_TRUE(hv_.enable(make_root_cell_config()).is_ok());
  EXPECT_TRUE(hv_.is_enabled());
  EXPECT_EQ(hv_.root_cell().state(), CellState::Running);
  // And cells can be created again afterwards.
  hv_.register_config(kConfigAddr, make_freertos_cell_config());
  EXPECT_GT(call(Hypercall::CellCreate, kConfigAddr), 0);
}

TEST_F(HypercallTest, CreateCannotTakeCallingCpu) {
  CellConfig grabby = make_freertos_cell_config();
  grabby.name = "grabby";
  grabby.cpus = {0};  // the CPU the driver itself runs on
  hv_.register_config(0x4900'0000, grabby);
  EXPECT_EQ(call(Hypercall::CellCreate, 0x4900'0000), kHvcEInval);
}

TEST_F(HypercallTest, CreateCannotStealAssignedCpu) {
  ASSERT_GT(call(Hypercall::CellCreate, kConfigAddr), 0);
  CellConfig second = make_freertos_cell_config();
  second.name = "second";
  hv_.register_config(0x4900'0000, second);
  EXPECT_EQ(call(Hypercall::CellCreate, 0x4900'0000), kHvcEBusy);
}

TEST_F(HypercallTest, CreateRequiresRootBackedMemory) {
  CellConfig rogue = make_freertos_cell_config();
  rogue.name = "rogue";
  rogue.mem_regions[0].phys_start = 0x7d00'0000;  // hypervisor reservation!
  hv_.register_config(0x4900'0000, rogue);
  EXPECT_EQ(call(Hypercall::CellCreate, 0x4900'0000), kHvcEInval);
}

TEST_F(HypercallTest, HypercallCountersTrack) {
  const std::uint64_t before = hv_.counters().hvcs;
  (void)call(Hypercall::HypervisorGetInfo);
  (void)call(Hypercall::CellGetState, 0);
  EXPECT_EQ(hv_.counters().hvcs, before + 2);
}

TEST_F(HypercallTest, IsInvalidArgumentsHelper) {
  EXPECT_TRUE(is_invalid_arguments(kHvcEInval));
  EXPECT_TRUE(is_invalid_arguments(kHvcENoSys));
  EXPECT_TRUE(is_invalid_arguments(kHvcENoEnt));
  EXPECT_FALSE(is_invalid_arguments(kHvcEBusy));
  EXPECT_FALSE(is_invalid_arguments(0));
}

TEST_F(HypercallTest, HypercallNames) {
  EXPECT_EQ(hypercall_name(Hypercall::CellCreate), "cell_create");
  EXPECT_EQ(hypercall_name(Hypercall::CellShutdown), "cell_shutdown");
  EXPECT_EQ(hypercall_name(Hypercall::DebugConsolePutc), "debug_console_putc");
}

}  // namespace
}  // namespace mcs::jh
