// irqchip_handle_irq: acknowledgement, routing, and the §III rationale for
// excluding it from injection — every corrupted vector lands in a
// predictable error path.
#include <gtest/gtest.h>

#include "hypervisor/hypervisor.hpp"

namespace mcs::jh {
namespace {

using arch::Reg;

constexpr std::uint64_t kConfigAddr = 0x4800'0000;

class IrqchipTest : public ::testing::Test {
 protected:
  IrqchipTest() : hv_(board_) {
    EXPECT_TRUE(hv_.enable(make_root_cell_config()).is_ok());
    hv_.register_config(kConfigAddr, make_freertos_cell_config());
  }

  void start_cell() {
    const HvcResult id = hv_.guest_hypercall(
        0, static_cast<std::uint32_t>(Hypercall::CellCreate), kConfigAddr);
    ASSERT_GT(id, 0);
    cell_id_ = static_cast<CellId>(id);
    ASSERT_EQ(hv_.guest_hypercall(
                  0, static_cast<std::uint32_t>(Hypercall::CellStart), cell_id_),
              0);
    hv_.cpu_bringup_entry(1);
    ASSERT_TRUE(board_.cpu(1).is_online());
  }

  platform::BananaPiBoard board_;
  Hypervisor hv_;
  CellId cell_id_ = 0;
};

TEST_F(IrqchipTest, NothingPendingReturnsNullopt) {
  EXPECT_FALSE(hv_.irqchip_handle_irq(0).has_value());
  EXPECT_EQ(hv_.counters().irqs, 0u);
}

TEST_F(IrqchipTest, TimerPpiDeliversAsTimerTick) {
  (void)board_.gic().raise_ppi(0, platform::kVirtualTimerPpi);
  const auto delivery = hv_.irqchip_handle_irq(0);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->outcome, IrqOutcome::TimerTick);
  EXPECT_EQ(delivery->vector, platform::kVirtualTimerPpi);
  EXPECT_EQ(delivery->cell, kRootCellId);
  // Acknowledged and EOI'd: nothing remains pending or active.
  EXPECT_FALSE(board_.gic().is_pending(platform::kVirtualTimerPpi, 0));
  EXPECT_FALSE(board_.gic().is_active(platform::kVirtualTimerPpi, 0));
}

TEST_F(IrqchipTest, OwnedSpiDelivers) {
  start_cell();
  (void)board_.gic().enable(platform::kUart1Irq);
  (void)board_.gic().set_target(platform::kUart1Irq, 1);
  (void)board_.gic().raise_spi(platform::kUart1Irq);
  const auto delivery = hv_.irqchip_handle_irq(1);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->outcome, IrqOutcome::Delivered);
  EXPECT_EQ(delivery->cell, cell_id_);
}

TEST_F(IrqchipTest, UnownedSpiDropsPredictably) {
  start_cell();
  // Route the root's UART0 interrupt at CPU 1 (now owned by the cell).
  (void)board_.gic().enable(platform::kUart0Irq);
  (void)board_.gic().set_target(platform::kUart0Irq, 1);
  (void)board_.gic().raise_spi(platform::kUart0Irq);
  const auto delivery = hv_.irqchip_handle_irq(1);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->outcome, IrqOutcome::Unowned);
  EXPECT_TRUE(board_.log().contains("hypervisor", "unowned vector"));
  // Still EOI'd: the line is not wedged.
  EXPECT_FALSE(board_.gic().is_active(platform::kUart0Irq, 1));
}

TEST_F(IrqchipTest, OfflineCpuTakesNoInterrupts) {
  (void)board_.gic().raise_ppi(1, platform::kVirtualTimerPpi);
  board_.cpu(1).park("test");
  EXPECT_FALSE(hv_.irqchip_handle_irq(1).has_value());
}

TEST_F(IrqchipTest, PanickedHypervisorTakesNoInterrupts) {
  (void)board_.gic().raise_ppi(0, platform::kVirtualTimerPpi);
  arch::EntryFrame bad = board_.cpu(0).make_trap_frame(
      arch::Syndrome::make(arch::ExceptionClass::Hvc, 0));
  bad.bank.set(Reg::R0, 0xBAD);
  (void)hv_.arch_handle_trap(bad);
  EXPECT_FALSE(hv_.irqchip_handle_irq(0).has_value());
}

// --- §III profiling rationale: corrupting the vector parameter ----------

TEST_F(IrqchipTest, CorruptedVectorOutOfRangeIsSpuriousError) {
  (void)board_.gic().raise_ppi(0, platform::kVirtualTimerPpi);
  hv_.set_entry_hook([](HookPoint point, arch::EntryFrame& frame) {
    if (point == HookPoint::IrqchipHandleIrq) {
      frame.bank.set(Reg::R0, frame.bank[Reg::R0] | 0x8000);  // huge vector
    }
  });
  const auto delivery = hv_.irqchip_handle_irq(0);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->outcome, IrqOutcome::Spurious);
  EXPECT_TRUE(board_.log().contains("hypervisor", "IRQ error"));
  // The original line was EOI'd by hardware id — no stuck active state.
  EXPECT_FALSE(board_.gic().is_active(platform::kVirtualTimerPpi, 0));
  EXPECT_FALSE(hv_.is_panicked());
  EXPECT_TRUE(board_.cpu(0).is_online());
}

TEST_F(IrqchipTest, CorruptedVectorToUnownedLineDropsPredictably) {
  start_cell();
  (void)board_.gic().raise_ppi(1, platform::kVirtualTimerPpi);
  hv_.set_entry_hook([](HookPoint point, arch::EntryFrame& frame) {
    if (point == HookPoint::IrqchipHandleIrq) {
      frame.bank.set(Reg::R0, platform::kUart0Irq);  // a line the cell lacks
    }
  });
  const auto delivery = hv_.irqchip_handle_irq(1);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->outcome, IrqOutcome::Unowned);
  EXPECT_TRUE(board_.cpu(1).is_online());  // predictable, non-fatal
}

TEST_F(IrqchipTest, CorruptedVectorToAnotherPpiStillDelivers) {
  (void)board_.gic().raise_ppi(0, platform::kVirtualTimerPpi);
  hv_.set_entry_hook([](HookPoint point, arch::EntryFrame& frame) {
    if (point == HookPoint::IrqchipHandleIrq) frame.bank.set(Reg::R0, 29);
  });
  const auto delivery = hv_.irqchip_handle_irq(0);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->outcome, IrqOutcome::Delivered);  // wrong but harmless
  EXPECT_EQ(delivery->vector, 29u);
}

TEST_F(IrqchipTest, IrqCountersIncrement) {
  (void)board_.gic().raise_ppi(0, platform::kVirtualTimerPpi);
  (void)hv_.irqchip_handle_irq(0);
  EXPECT_EQ(hv_.counters().irqs, 1u);
  EXPECT_EQ(board_.cpu(0).irq_entries, 1u);
}

}  // namespace
}  // namespace mcs::jh
