#include "hypervisor/config_text.hpp"

#include <gtest/gtest.h>

#include "platform/board.hpp"
#include "util/rng.hpp"

namespace mcs::jh {
namespace {

bool configs_equal(const CellConfig& a, const CellConfig& b) {
  if (a.name != b.name || a.cpus != b.cpus || a.irqs != b.irqs ||
      a.entry_point != b.entry_point ||
      a.console.kind != b.console.kind ||
      a.console.uart_base != b.console.uart_base ||
      a.mem_regions.size() != b.mem_regions.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.mem_regions.size(); ++i) {
    const auto& ra = a.mem_regions[i];
    const auto& rb = b.mem_regions[i];
    if (ra.name != rb.name || ra.phys_start != rb.phys_start ||
        ra.virt_start != rb.virt_start || ra.size != rb.size ||
        ra.flags != rb.flags) {
      return false;
    }
  }
  return true;
}

TEST(ConfigText, PaperConfigsRoundTrip) {
  for (const CellConfig& original :
       {make_root_cell_config(), make_freertos_cell_config()}) {
    const std::string text = to_text(original);
    auto parsed = parse_cell_config(text);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status() << "\n" << text;
    EXPECT_TRUE(configs_equal(original, parsed.value())) << text;
    // The parsed config is still valid for the board.
    EXPECT_TRUE(parsed.value().validate(2).is_ok());
  }
}

TEST(ConfigText, HandWrittenConfigParses) {
  const char* text = R"(
# the FreeRTOS cell, hand-written
cell "my-cell"
cpus 1
entry 0x78000000
console trapped 0x1c28400
region ram phys=0x78000000 virt=0x78000000 size=0x1000000 flags=rwxl
irq 34
end
)";
  auto parsed = parse_cell_config(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status();
  EXPECT_EQ(parsed.value().name, "my-cell");
  EXPECT_EQ(parsed.value().cpus, std::vector<int>{1});
  EXPECT_EQ(parsed.value().entry_point, 0x7800'0000u);
  EXPECT_EQ(parsed.value().console.kind, ConsoleKind::Trapped);
  ASSERT_EQ(parsed.value().mem_regions.size(), 1u);
  EXPECT_EQ(parsed.value().mem_regions[0].flags,
            mem::kMemRead | mem::kMemWrite | mem::kMemExecute | mem::kMemLoadable);
}

TEST(ConfigText, FlagsLetterFormRoundTrips) {
  for (std::uint32_t flags = 0; flags < 256; ++flags) {
    auto parsed = letters_to_flags(flags_to_letters(flags));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), flags);
  }
}

TEST(ConfigText, UnknownFlagLetterRejected) {
  EXPECT_FALSE(letters_to_flags("rwz").is_ok());
}

TEST(ConfigText, MalformedInputsRejectedWithLineNumbers) {
  const std::pair<const char*, const char*> cases[] = {
      {"", "missing 'cell'"},
      {"cell \"x\"\n", "missing 'end'"},
      {"cell x\nend\n", "quoted"},
      {"cell \"x\"\ncpus\nend\n", "cpus"},
      {"cell \"x\"\nentry zzz\nend\n", "entry"},
      {"cell \"x\"\nconsole weird 0x1\nend\n", "console"},
      {"cell \"x\"\nregion r phys=1 virt=2 size=3\nend\n", "region"},
      {"cell \"x\"\nregion r phys=1 virt=2 size=3 flags=qq\nend\n", "flag"},
      {"cell \"x\"\nirq\nend\n", "irq"},
      {"cell \"x\"\nbogus 7\nend\n", "unknown keyword"},
      {"cell \"x\"\nend\ntrailing\n", "after 'end'"},
  };
  for (const auto& [text, needle] : cases) {
    auto parsed = parse_cell_config(text);
    ASSERT_FALSE(parsed.is_ok()) << text;
    EXPECT_NE(parsed.status().message().find(needle), std::string::npos)
        << parsed.status() << " for input:\n" << text;
  }
}

TEST(ConfigText, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# header comment\n\ncell \"c\"\n# mid comment\ncpus 0\nend\n";
  auto parsed = parse_cell_config(text);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().name, "c");
}

// Fuzz property: the parser never crashes and never returns success for
// byte soup (structured garbage derived from a real config).
class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzz, MutatedConfigsNeverCrashParser) {
  util::Xoshiro256 rng(GetParam());
  const std::string base = to_text(make_freertos_cell_config());
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const std::size_t mutations = 1 + rng.below(6);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0: mutated[pos] = static_cast<char>(rng.below(256)); break;
        case 1: mutated.erase(pos, 1 + rng.below(4)); break;
        default: mutated.insert(pos, 1, static_cast<char>(rng.below(128)));
      }
      if (mutated.empty()) mutated = "x";
    }
    // Must not crash; when it *does* parse, the result must still pass
    // structural validation or be rejected there — never UB.
    auto parsed = parse_cell_config(mutated);
    if (parsed.is_ok()) {
      (void)parsed.value().validate(2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- workload-cell tuning ---------------------------------------------------

TEST(CellTuning, ParsesRamAndConsoleLines) {
  const auto tuning = parse_cell_tuning(
      "# tuned cell\n"
      "ram 0x00200000\n"
      "console trapped\n");
  ASSERT_TRUE(tuning.is_ok());
  EXPECT_EQ(tuning.value().ram_size, 0x20'0000u);
  ASSERT_TRUE(tuning.value().has_console_kind);
  EXPECT_EQ(tuning.value().console_kind, ConsoleKind::Trapped);
}

TEST(CellTuning, EmptyTextIsEmptyTuning) {
  const auto tuning = parse_cell_tuning("\n  \n# nothing\n");
  ASSERT_TRUE(tuning.is_ok());
  EXPECT_TRUE(tuning.value().empty());
}

TEST(CellTuning, ParsesBoardSelectionLine) {
  const auto tuning = parse_cell_tuning("board quad-a7\n");
  ASSERT_TRUE(tuning.is_ok());
  EXPECT_EQ(tuning.value().board, "quad-a7");
  EXPECT_FALSE(tuning.value().empty());  // board selection is a real knob

  // Plan-level knob: apply_cell_tuning must leave cell configs alone.
  CellConfig config = make_freertos_cell_config();
  const CellConfig reference = make_freertos_cell_config();
  apply_cell_tuning(config, tuning.value());
  EXPECT_EQ(config.mem_regions.size(), reference.mem_regions.size());
  EXPECT_EQ(config.console.kind, reference.console.kind);
}

TEST(CellTuning, RejectsMalformedLinesWithLineNumbers) {
  for (const char* bad : {"ram", "ram zero", "ram 0", "console",
                          "console serial", "cpus 3", "ram 0x100 extra",
                          "board", "board quad extra"}) {
    const auto tuning = parse_cell_tuning(bad);
    EXPECT_FALSE(tuning.is_ok()) << bad;
    EXPECT_NE(tuning.status().message().find("line 1"), std::string::npos) << bad;
  }
}

TEST(CellTuning, ApplyResizesRamRegion) {
  CellConfig config = make_freertos_cell_config();
  CellTuning tuning;
  tuning.ram_size = 0x0020'0000;  // 2 MiB instead of 16
  apply_cell_tuning(config, tuning);
  bool found = false;
  for (const mem::MemRegion& region : config.mem_regions) {
    if (region.name == "ram") {
      EXPECT_EQ(region.size, 0x0020'0000u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(config.validate(2).is_ok());
}

TEST(CellTuning, ApplyTrappedConsoleUnmapsTheUartWindow) {
  CellConfig config = make_freertos_cell_config();
  CellTuning tuning;
  tuning.has_console_kind = true;
  tuning.console_kind = ConsoleKind::Trapped;
  apply_cell_tuning(config, tuning);
  EXPECT_EQ(config.console.kind, ConsoleKind::Trapped);
  EXPECT_EQ(config.console.uart_base, platform::kUart1Base);
  for (const mem::MemRegion& region : config.mem_regions) {
    EXPECT_FALSE(region.phys_start <= platform::kUart1Base &&
                 platform::kUart1Base < region.phys_start + region.size)
        << "uart window '" << region.name << "' still mapped";
  }
  EXPECT_TRUE(config.validate(2).is_ok());
}

TEST(CellTuning, ApplyEmptyTuningIsIdentity) {
  const CellConfig original = make_freertos_cell_config();
  CellConfig tuned = make_freertos_cell_config();
  apply_cell_tuning(tuned, CellTuning{});
  EXPECT_EQ(to_text(tuned), to_text(original));
}

}  // namespace
}  // namespace mcs::jh
