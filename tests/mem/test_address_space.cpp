#include "mem/address_space.hpp"

#include <gtest/gtest.h>

namespace mcs::mem {
namespace {

class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest() : space_(map_, dram_) {
    MemRegion rw;
    rw.name = "rw";
    rw.phys_start = kDramBase;
    rw.virt_start = 0x1000'0000;
    rw.size = 0x1000;
    rw.flags = kMemRead | kMemWrite;
    (void)map_.add_region(rw);

    MemRegion ro;
    ro.name = "ro";
    ro.phys_start = kDramBase + 0x1000;
    ro.virt_start = 0x2000'0000;
    ro.size = 0x1000;
    ro.flags = kMemRead;
    (void)map_.add_region(ro);
  }

  PhysicalMemory dram_;
  MemoryMap map_;
  AddressSpace space_;
};

TEST_F(AddressSpaceTest, WriteThenReadThroughMapping) {
  ASSERT_TRUE(space_.write_u32(0x1000'0100, 0xFEEDFACE).is_ok());
  EXPECT_EQ(space_.read_u32(0x1000'0100).value(), 0xFEEDFACEu);
  // The same bytes are visible at the physical address.
  EXPECT_EQ(dram_.read_u32(kDramBase + 0x100).value(), 0xFEEDFACEu);
}

TEST_F(AddressSpaceTest, WriteToReadOnlyRegionDenied) {
  EXPECT_EQ(space_.write_u32(0x2000'0000, 1).code(), util::Code::EPerm);
  EXPECT_EQ(space_.fault_count(), 1u);
}

TEST_F(AddressSpaceTest, UnmappedAccessFaults) {
  EXPECT_FALSE(space_.read_u32(0x3000'0000).is_ok());
  EXPECT_FALSE(space_.write_u32(0x3000'0000, 1).is_ok());
  EXPECT_EQ(space_.fault_count(), 2u);
}

TEST_F(AddressSpaceTest, U64RoundTrip) {
  ASSERT_TRUE(space_.write_u64(0x1000'0200, 0x1122334455667788ull).is_ok());
  EXPECT_EQ(space_.read_u64(0x1000'0200).value(), 0x1122334455667788ull);
}

TEST_F(AddressSpaceTest, BlockRoundTrip) {
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(space_.write_block(0x1000'0300, payload).is_ok());
  std::uint8_t out[5] = {};
  ASSERT_TRUE(space_.read_block(0x1000'0300, out).is_ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], payload[i]);
}

TEST_F(AddressSpaceTest, BlockStraddlingRegionEndFaults) {
  std::uint8_t buffer[8] = {};
  EXPECT_FALSE(space_.write_block(0x1000'0FFC, buffer).is_ok());
}

TEST_F(AddressSpaceTest, TwoSpacesShareOnePhysicalMemory) {
  // ivshmem semantics: two maps onto the same physical window.
  MemoryMap other_map;
  MemRegion shared;
  shared.name = "shared";
  shared.phys_start = kDramBase;
  shared.virt_start = 0x9000'0000;
  shared.size = 0x1000;
  shared.flags = kMemRead | kMemWrite;
  (void)other_map.add_region(shared);
  AddressSpace other(other_map, dram_);

  ASSERT_TRUE(space_.write_u32(0x1000'0000, 0xCAFED00D).is_ok());
  EXPECT_EQ(other.read_u32(0x9000'0000).value(), 0xCAFED00Du);
}

TEST_F(AddressSpaceTest, DisjointSpacesCannotObserveEachOther) {
  // The isolation invariant at the unit level: different physical backing
  // ⇒ no visibility.
  MemoryMap other_map;
  MemRegion private_region;
  private_region.name = "private";
  private_region.phys_start = kDramBase + 0x10'0000;
  private_region.virt_start = 0x1000'0000;  // same guest address on purpose
  private_region.size = 0x1000;
  private_region.flags = kMemRead | kMemWrite;
  (void)other_map.add_region(private_region);
  AddressSpace other(other_map, dram_);

  ASSERT_TRUE(space_.write_u32(0x1000'0000, 111).is_ok());
  ASSERT_TRUE(other.write_u32(0x1000'0000, 222).is_ok());
  EXPECT_EQ(space_.read_u32(0x1000'0000).value(), 111u);
  EXPECT_EQ(other.read_u32(0x1000'0000).value(), 222u);
}

// --- stage-2 TLB: fills, hits, and every invalidation source ---------------

TEST_F(AddressSpaceTest, TranslateCachedFillsOnMissAndHitsAfter) {
  EXPECT_EQ(space_.tlb_hits(), 0u);
  const auto miss = space_.translate_cached(0x1000'0100, Access::Read, 4);
  ASSERT_TRUE(miss.is_ok());
  EXPECT_EQ(miss.value().phys, kDramBase + 0x100);
  EXPECT_EQ(space_.tlb_misses(), 1u);

  const auto hit = space_.translate_cached(0x1000'0200, Access::Read, 4);
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value().phys, kDramBase + 0x200);
  EXPECT_EQ(space_.tlb_hits(), 1u);
  EXPECT_EQ(space_.tlb_misses(), 1u);
}

TEST_F(AddressSpaceTest, TlbEntriesArePerAccessKind) {
  // Fill the *read* entry for the read-only region; a write to the same
  // region must not ride that entry past its permission check.
  ASSERT_TRUE(space_.translate_cached(0x2000'0000, Access::Read, 4).is_ok());
  ASSERT_TRUE(space_.translate_cached(0x2000'0000, Access::Read, 4).is_ok());
  EXPECT_EQ(space_.tlb_hits(), 1u);
  EXPECT_EQ(space_.translate_cached(0x2000'0000, Access::Write, 4).status().code(),
            util::Code::EPerm);
  EXPECT_EQ(space_.tlb_hits(), 1u);  // write kind never filled, never hit
}

TEST_F(AddressSpaceTest, CachedMissRecordsFaultsLikeTheUncachedWalk) {
  const auto cached = space_.translate_cached(0x3000'0000, Access::Write, 4);
  ASSERT_FALSE(cached.is_ok());
  ASSERT_TRUE(map_.last_fault().has_value());
  EXPECT_EQ(map_.last_fault()->kind, FaultKind::NoMapping);
  EXPECT_EQ(map_.last_fault()->addr, 0x3000'0000u);
  // translate_cached leaves fault_count() to the guarded accessors.
  EXPECT_EQ(space_.fault_count(), 0u);
  EXPECT_EQ(cached.status().message(),
            map_.translate(0x3000'0000, Access::Write, 4).status().message());
}

TEST_F(AddressSpaceTest, TlbInvalidatedByAddRegion) {
  ASSERT_TRUE(space_.translate_cached(0x1000'0000, Access::Read, 4).is_ok());
  MemRegion extra;
  extra.name = "extra";
  extra.phys_start = kDramBase + 0x2000;
  extra.virt_start = 0x4000'0000;
  extra.size = 0x1000;
  extra.flags = kMemRead;
  ASSERT_TRUE(map_.add_region(extra).is_ok());

  const std::uint64_t misses_before = space_.tlb_misses();
  const auto walk = space_.translate_cached(0x1000'0000, Access::Read, 4);
  ASSERT_TRUE(walk.is_ok());
  EXPECT_EQ(walk.value().phys, kDramBase);
  EXPECT_EQ(space_.tlb_misses(), misses_before + 1);  // generation moved
}

TEST_F(AddressSpaceTest, TlbInvalidatedByRemoveRegionsNamed) {
  ASSERT_TRUE(space_.translate_cached(0x1000'0000, Access::Read, 4).is_ok());
  EXPECT_EQ(map_.remove_regions_named("rw"), 1u);
  // A stale hit would hand back the dead region; the generation bump
  // forces a fresh walk, which faults.
  EXPECT_EQ(space_.translate_cached(0x1000'0000, Access::Read, 4).status().code(),
            util::Code::EFault);
}

TEST_F(AddressSpaceTest, TlbInvalidatedByCarveOut) {
  ASSERT_TRUE(space_.translate_cached(0x1000'0800, Access::Write, 4).is_ok());
  // Carve the physical back half of "rw" (Jailhouse root-cell shrink).
  map_.carve_out_phys(kDramBase + 0x800, 0x800);
  EXPECT_EQ(space_.translate_cached(0x1000'0800, Access::Write, 4).status().code(),
            util::Code::EFault);
  // The untouched front half still translates — through the split remnant.
  const auto front = space_.translate_cached(0x1000'0000, Access::Write, 4);
  ASSERT_TRUE(front.is_ok());
  EXPECT_EQ(front.value().phys, kDramBase);
}

TEST_F(AddressSpaceTest, TlbInvalidatedBySnapshotRestore) {
  MemoryMap::Snapshot snapshot;
  map_.snapshot_to(snapshot);
  ASSERT_TRUE(space_.translate_cached(0x1000'0000, Access::Read, 4).is_ok());

  // Restore reassigns the region vector when it changed — the cached
  // region pointer dangles and must never be consulted again.
  EXPECT_EQ(map_.remove_regions_named("rw"), 1u);
  map_.restore_from(snapshot);
  const std::uint64_t misses_before = space_.tlb_misses();
  const auto walk = space_.translate_cached(0x1000'0000, Access::Read, 4);
  ASSERT_TRUE(walk.is_ok());
  EXPECT_EQ(walk.value().phys, kDramBase);
  EXPECT_EQ(space_.tlb_misses(), misses_before + 1);

  // Even a no-op restore moves the map to a new generation: revalidate.
  map_.snapshot_to(snapshot);
  map_.restore_from(snapshot);
  ASSERT_TRUE(space_.translate_cached(0x1000'0000, Access::Read, 4).is_ok());
  EXPECT_EQ(space_.tlb_misses(), misses_before + 2);
}

TEST_F(AddressSpaceTest, ExplicitInvalidateForcesRewalk) {
  ASSERT_TRUE(space_.translate_cached(0x1000'0000, Access::Read, 4).is_ok());
  space_.invalidate_tlb();
  const std::uint64_t misses_before = space_.tlb_misses();
  ASSERT_TRUE(space_.translate_cached(0x1000'0000, Access::Read, 4).is_ok());
  EXPECT_EQ(space_.tlb_misses(), misses_before + 1);
}

}  // namespace
}  // namespace mcs::mem
