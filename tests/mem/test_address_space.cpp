#include "mem/address_space.hpp"

#include <gtest/gtest.h>

namespace mcs::mem {
namespace {

class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest() : space_(map_, dram_) {
    MemRegion rw;
    rw.name = "rw";
    rw.phys_start = kDramBase;
    rw.virt_start = 0x1000'0000;
    rw.size = 0x1000;
    rw.flags = kMemRead | kMemWrite;
    (void)map_.add_region(rw);

    MemRegion ro;
    ro.name = "ro";
    ro.phys_start = kDramBase + 0x1000;
    ro.virt_start = 0x2000'0000;
    ro.size = 0x1000;
    ro.flags = kMemRead;
    (void)map_.add_region(ro);
  }

  PhysicalMemory dram_;
  MemoryMap map_;
  AddressSpace space_;
};

TEST_F(AddressSpaceTest, WriteThenReadThroughMapping) {
  ASSERT_TRUE(space_.write_u32(0x1000'0100, 0xFEEDFACE).is_ok());
  EXPECT_EQ(space_.read_u32(0x1000'0100).value(), 0xFEEDFACEu);
  // The same bytes are visible at the physical address.
  EXPECT_EQ(dram_.read_u32(kDramBase + 0x100).value(), 0xFEEDFACEu);
}

TEST_F(AddressSpaceTest, WriteToReadOnlyRegionDenied) {
  EXPECT_EQ(space_.write_u32(0x2000'0000, 1).code(), util::Code::EPerm);
  EXPECT_EQ(space_.fault_count(), 1u);
}

TEST_F(AddressSpaceTest, UnmappedAccessFaults) {
  EXPECT_FALSE(space_.read_u32(0x3000'0000).is_ok());
  EXPECT_FALSE(space_.write_u32(0x3000'0000, 1).is_ok());
  EXPECT_EQ(space_.fault_count(), 2u);
}

TEST_F(AddressSpaceTest, U64RoundTrip) {
  ASSERT_TRUE(space_.write_u64(0x1000'0200, 0x1122334455667788ull).is_ok());
  EXPECT_EQ(space_.read_u64(0x1000'0200).value(), 0x1122334455667788ull);
}

TEST_F(AddressSpaceTest, BlockRoundTrip) {
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(space_.write_block(0x1000'0300, payload).is_ok());
  std::uint8_t out[5] = {};
  ASSERT_TRUE(space_.read_block(0x1000'0300, out).is_ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], payload[i]);
}

TEST_F(AddressSpaceTest, BlockStraddlingRegionEndFaults) {
  std::uint8_t buffer[8] = {};
  EXPECT_FALSE(space_.write_block(0x1000'0FFC, buffer).is_ok());
}

TEST_F(AddressSpaceTest, TwoSpacesShareOnePhysicalMemory) {
  // ivshmem semantics: two maps onto the same physical window.
  MemoryMap other_map;
  MemRegion shared;
  shared.name = "shared";
  shared.phys_start = kDramBase;
  shared.virt_start = 0x9000'0000;
  shared.size = 0x1000;
  shared.flags = kMemRead | kMemWrite;
  (void)other_map.add_region(shared);
  AddressSpace other(other_map, dram_);

  ASSERT_TRUE(space_.write_u32(0x1000'0000, 0xCAFED00D).is_ok());
  EXPECT_EQ(other.read_u32(0x9000'0000).value(), 0xCAFED00Du);
}

TEST_F(AddressSpaceTest, DisjointSpacesCannotObserveEachOther) {
  // The isolation invariant at the unit level: different physical backing
  // ⇒ no visibility.
  MemoryMap other_map;
  MemRegion private_region;
  private_region.name = "private";
  private_region.phys_start = kDramBase + 0x10'0000;
  private_region.virt_start = 0x1000'0000;  // same guest address on purpose
  private_region.size = 0x1000;
  private_region.flags = kMemRead | kMemWrite;
  (void)other_map.add_region(private_region);
  AddressSpace other(other_map, dram_);

  ASSERT_TRUE(space_.write_u32(0x1000'0000, 111).is_ok());
  ASSERT_TRUE(other.write_u32(0x1000'0000, 222).is_ok());
  EXPECT_EQ(space_.read_u32(0x1000'0000).value(), 111u);
  EXPECT_EQ(other.read_u32(0x1000'0000).value(), 222u);
}

}  // namespace
}  // namespace mcs::mem
