// Differential property suites for the guest-access fast paths.
//
// The fast paths are optimisations over semantics this file re-implements
// in the most boring way possible: a byte-at-a-time reference memory for
// PhysicalMemory's flat page table + aligned-word inlines, and a linear
// region scan for MemoryMap's sorted-index walk and AddressSpace's TLB.
// Each suite replays one seeded stream of randomized operations —
// aligned, unaligned, page-crossing, out-of-range — through both
// implementations and requires bit-identical results: values, status
// codes *and* rendered messages, fault records, dirty/resident
// accounting, snapshot round trips. Any divergence is a fast-path bug by
// definition; the reference is the spec.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/memory_map.hpp"
#include "mem/phys_mem.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace mcs::mem {
namespace {

// --- reference physical memory ---------------------------------------------

/// Byte-at-a-time model of PhysicalMemory: a map of zero-filled pages
/// materialised on first write, a dirty set, reads-of-holes return zero.
class ReferenceMemory {
 public:
  ReferenceMemory(PhysAddr base, std::uint64_t size) : base_(base), size_(size) {}

  [[nodiscard]] bool contains(PhysAddr addr, std::uint64_t len = 1) const {
    return addr >= base_ && len <= size_ && addr - base_ <= size_ - len;
  }

  [[nodiscard]] std::uint8_t read_byte(PhysAddr addr) const {
    const auto it = pages_.find((addr - base_) / kPageSize);
    if (it == pages_.end()) return 0;
    return it->second[(addr - base_) % kPageSize];
  }

  void write_byte(PhysAddr addr, std::uint8_t value) {
    const std::uint64_t index = (addr - base_) / kPageSize;
    auto [it, inserted] = pages_.try_emplace(index);
    if (inserted) it->second.fill(0);
    dirty_.insert(index);
    it->second[(addr - base_) % kPageSize] = value;
  }

  bool write(PhysAddr addr, const std::uint8_t* data, std::size_t len) {
    if (!contains(addr, len)) return false;
    for (std::size_t i = 0; i < len; ++i) write_byte(addr + i, data[i]);
    return true;
  }

  bool read(PhysAddr addr, std::uint8_t* out, std::size_t len) const {
    if (!contains(addr, len)) return false;
    for (std::size_t i = 0; i < len; ++i) out[i] = read_byte(addr + i);
    return true;
  }

  void reset_contents() {
    for (const std::uint64_t index : dirty_) pages_.at(index).fill(0);
    dirty_.clear();
  }

  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }
  [[nodiscard]] std::size_t dirty_pages() const { return dirty_.size(); }

  struct Capture {
    std::map<std::uint64_t, std::array<std::uint8_t, kPageSize>> pages;
    std::set<std::uint64_t> dirty;
  };

  [[nodiscard]] Capture capture() const { return {pages_, dirty_}; }

  /// Mirror of PhysicalMemory::restore_from: contents and dirty set back
  /// to the capture; residency is monotonic (restore never un-materialises).
  void restore(const Capture& capture) {
    for (auto& [index, page] : pages_) {
      const auto it = capture.pages.find(index);
      if (it != capture.pages.end()) {
        page = it->second;
      } else {
        page.fill(0);
      }
    }
    dirty_ = capture.dirty;
  }

 private:
  PhysAddr base_;
  std::uint64_t size_;
  std::map<std::uint64_t, std::array<std::uint8_t, kPageSize>> pages_;
  std::set<std::uint64_t> dirty_;
};

/// A window small enough that the stream revisits pages (exercising the
/// resident+dirty steady state) and cheap enough to compare bytewise.
constexpr PhysAddr kWinBase = 0x8000'0000;
constexpr std::uint64_t kWinSize = 64 * kPageSize;

/// Biased address generator: mostly in-range, deliberately including
/// page-edge offsets (crossing accesses) and out-of-range addresses just
/// past either end of the window.
PhysAddr gen_addr(util::Xoshiro256& rng) {
  const std::uint64_t roll = rng.next() % 100;
  if (roll < 6) return kWinBase - 1 - (rng.next() % 16);           // below
  if (roll < 12) return kWinBase + kWinSize - 8 + (rng.next() % 24);  // tail/past
  if (roll < 40) {  // page-edge neighbourhood: crossing + boundary cases
    const std::uint64_t page = rng.next() % (kWinSize / kPageSize);
    return kWinBase + page * kPageSize + kPageSize - 8 + (rng.next() % 16);
  }
  return kWinBase + rng.next() % kWinSize;  // anywhere (any alignment)
}

void expect_same_contents(const PhysicalMemory& dut, const ReferenceMemory& ref,
                          std::uint64_t tag) {
  std::vector<std::uint8_t> got(kWinSize);
  ASSERT_TRUE(dut.read_block(kWinBase, got).is_ok()) << "op " << tag;
  std::vector<std::uint8_t> want(kWinSize);
  ASSERT_TRUE(ref.read(kWinBase, want.data(), want.size()));
  ASSERT_EQ(got, want) << "contents diverged at op " << tag;
}

TEST(FastPathDifferential, PhysicalMemoryMatchesByteReference) {
  PhysicalMemory dut(kWinBase, kWinSize);
  ReferenceMemory ref(kWinBase, kWinSize);
  util::Xoshiro256 rng(0xD1FF'0001);

  util::Arena snap_arena(kWinSize);
  PhysicalMemory::Snapshot snapshot;
  ReferenceMemory::Capture ref_capture;
  bool captured = false;

  constexpr std::uint64_t kOps = 20'000;
  for (std::uint64_t op = 0; op < kOps; ++op) {
    const PhysAddr addr = gen_addr(rng);
    switch (rng.next() % 10) {
      case 0: {  // u8 write
        const auto value = static_cast<std::uint8_t>(rng.next());
        const util::Status status = dut.write_u8(addr, value);
        const bool ok = ref.write(addr, &value, 1);
        ASSERT_EQ(status.is_ok(), ok) << "op " << op;
        if (!ok) {
          ASSERT_EQ(status.code(), util::Code::EFault) << "op " << op;
        }
        break;
      }
      case 1: {  // u8 read
        const auto got = dut.read_u8(addr);
        std::uint8_t want = 0;
        const bool ok = ref.read(addr, &want, 1);
        ASSERT_EQ(got.is_ok(), ok) << "op " << op;
        if (ok) {
          ASSERT_EQ(got.value(), want) << "op " << op;
        }
        break;
      }
      case 2: {  // u32 write (aligned fast path when addr allows)
        std::uint32_t value;
        const std::uint64_t raw = rng.next();
        std::memcpy(&value, &raw, 4);
        const util::Status status = dut.write_u32(addr, value);
        std::uint8_t bytes[4];
        std::memcpy(bytes, &value, 4);
        const bool ok = ref.write(addr, bytes, 4);
        ASSERT_EQ(status.is_ok(), ok) << "op " << op;
        break;
      }
      case 3: {  // u32 read
        const auto got = dut.read_u32(addr);
        std::uint8_t bytes[4];
        const bool ok = ref.read(addr, bytes, 4);
        ASSERT_EQ(got.is_ok(), ok) << "op " << op;
        if (ok) {
          std::uint32_t want;
          std::memcpy(&want, bytes, 4);
          ASSERT_EQ(got.value(), want) << "op " << op;
        } else {
          ASSERT_EQ(got.status().code(), util::Code::EFault) << "op " << op;
        }
        break;
      }
      case 4: {  // u64 write
        const std::uint64_t value = rng.next();
        const util::Status status = dut.write_u64(addr, value);
        std::uint8_t bytes[8];
        std::memcpy(bytes, &value, 8);
        const bool ok = ref.write(addr, bytes, 8);
        ASSERT_EQ(status.is_ok(), ok) << "op " << op;
        break;
      }
      case 5: {  // u64 read
        const auto got = dut.read_u64(addr);
        std::uint8_t bytes[8];
        const bool ok = ref.read(addr, bytes, 8);
        ASSERT_EQ(got.is_ok(), ok) << "op " << op;
        if (ok) {
          std::uint64_t want;
          std::memcpy(&want, bytes, 8);
          ASSERT_EQ(got.value(), want) << "op " << op;
        }
        break;
      }
      case 6: {  // block write crossing up to 2 pages
        std::vector<std::uint8_t> payload(1 + rng.next() % (2 * kPageSize));
        for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next());
        const util::Status status = dut.write_block(addr, payload);
        const bool ok = ref.write(addr, payload.data(), payload.size());
        ASSERT_EQ(status.is_ok(), ok) << "op " << op;
        break;
      }
      case 7: {  // block read
        std::vector<std::uint8_t> got(1 + rng.next() % (2 * kPageSize));
        const util::Status status = dut.read_block(addr, got);
        std::vector<std::uint8_t> want(got.size());
        const bool ok = ref.read(addr, want.data(), want.size());
        ASSERT_EQ(status.is_ok(), ok) << "op " << op;
        if (ok) {
          ASSERT_EQ(got, want) << "op " << op;
        }
        break;
      }
      case 8: {  // fill
        const std::uint64_t len = 1 + rng.next() % kPageSize;
        const auto value = static_cast<std::uint8_t>(rng.next());
        const util::Status status = dut.fill(addr, len, value);
        std::vector<std::uint8_t> payload(len, value);
        const bool ok = ref.write(addr, payload.data(), payload.size());
        ASSERT_EQ(status.is_ok(), ok) << "op " << op;
        break;
      }
      case 9: {  // aligned word at an address forced onto the fast path
        const PhysAddr aligned =
            kWinBase + (rng.next() % kWinSize & ~std::uint64_t{7});
        const std::uint64_t value = rng.next();
        ASSERT_TRUE(dut.write_u64(aligned, value).is_ok()) << "op " << op;
        std::uint8_t bytes[8];
        std::memcpy(bytes, &value, 8);
        ASSERT_TRUE(ref.write(aligned, bytes, 8));
        const auto got = dut.read_u32(aligned);
        std::uint8_t lo[4];
        ASSERT_TRUE(ref.read(aligned, lo, 4));
        std::uint32_t want;
        std::memcpy(&want, lo, 4);
        ASSERT_EQ(got.value(), want) << "op " << op;
        break;
      }
    }

    // Lifecycle events at fixed stream positions: capture mid-stream,
    // restore later, power-on reset later still — the reference tracks
    // the same contract (contents + dirty set; residency monotonic).
    if (op == 7'000) {
      dut.snapshot_to(snapshot, snap_arena);
      ref_capture = ref.capture();
      captured = true;
    }
    if (op == 13'000 && captured) {
      dut.restore_from(snapshot);
      ref.restore(ref_capture);
      expect_same_contents(dut, ref, op);
    }
    if (op == 17'000) {
      dut.reset_contents();
      ref.reset_contents();
      expect_same_contents(dut, ref, op);
    }

    if (op % 2'000 == 1'999) {
      ASSERT_EQ(dut.resident_pages(), ref.resident_pages()) << "op " << op;
      ASSERT_EQ(dut.dirty_pages(), ref.dirty_pages()) << "op " << op;
      expect_same_contents(dut, ref, op);
    }
  }

  // The stream must actually have exercised both halves of the split.
  EXPECT_GT(dut.fast_ops(), 0u);
  EXPECT_GT(dut.slow_ops(), 0u);
}

// --- reference stage-2 walk -------------------------------------------------

struct RefWalk {
  bool ok = false;
  PhysAddr phys = 0;
  std::string region_name;
  util::Code code = util::Code::Ok;
  Stage2Fault fault;
};

/// Linear scan with MemoryMap::translate's exact fault semantics: the
/// unique region containing `addr` is the only candidate; a candidate too
/// small for `len` is a translation fault, wrong permissions a permission
/// fault.
RefWalk ref_translate(const std::vector<MemRegion>& regions, GuestAddr addr,
                      Access access, std::uint64_t len) {
  RefWalk out;
  for (const MemRegion& region : regions) {
    if (addr < region.virt_start || addr - region.virt_start >= region.size) {
      continue;
    }
    if (!region.contains(addr, len)) break;  // straddles the region end
    if (!region.allows(access)) {
      out.code = util::Code::EPerm;
      out.fault = Stage2Fault{addr, access, FaultKind::Permission};
      return out;
    }
    out.ok = true;
    out.phys = region.phys_start + (addr - region.virt_start);
    out.region_name = region.name;
    return out;
  }
  out.code = util::Code::EFault;
  out.fault = Stage2Fault{addr, access, FaultKind::NoMapping};
  return out;
}

TEST(FastPathDifferential, TranslateAndTlbMatchLinearScanAcrossMutations) {
  PhysicalMemory dram(kWinBase, kWinSize);
  MemoryMap map;
  AddressSpace space(map, dram);
  util::Xoshiro256 rng(0xD1FF'0002);

  // Guest layout: 32 slots of 0x1000 starting at 0x1000'0000; a slot is
  // either free or covered by a region of 1-3 slots. Region names encode
  // their slot so remove-by-name is deterministic.
  constexpr GuestAddr kGuestBase = 0x1000'0000;
  constexpr std::uint64_t kSlot = 0x1000;
  constexpr std::uint64_t kSlots = 32;

  const auto occupied = [&](GuestAddr start, std::uint64_t size) {
    for (const MemRegion& region : map.regions()) {
      if (start < region.virt_start + region.size &&
          region.virt_start < start + size) {
        return true;
      }
    }
    return false;
  };

  const auto mutate = [&] {
    switch (rng.next() % 4) {
      case 0: {  // add a random region in free guest space
        MemRegion region;
        const std::uint64_t slot = rng.next() % kSlots;
        region.virt_start = kGuestBase + slot * kSlot;
        region.size = (1 + rng.next() % 3) * kSlot;
        region.phys_start = kWinBase + (rng.next() % (kWinSize / 2) & ~(kSlot - 1));
        region.flags = 1 + static_cast<std::uint32_t>(rng.next() % 7);  // R/W/X mix
        region.name = "slot" + std::to_string(slot);
        if (!occupied(region.virt_start, region.size)) {
          ASSERT_TRUE(map.add_region(region).is_ok());
        } else {
          // Overlap rejection must not disturb the map (pinned below by
          // the post-mutation differential queries).
          (void)map.add_region(region);
        }
        break;
      }
      case 1: {  // remove a random name (present or not)
        map.remove_regions_named("slot" + std::to_string(rng.next() % kSlots));
        break;
      }
      case 2: {  // carve a random physical range (splits/removes regions)
        const PhysAddr start = kWinBase + (rng.next() % kWinSize & ~(kSlot - 1));
        map.carve_out_phys(start, (1 + rng.next() % 2) * kSlot);
        break;
      }
      case 3: {  // snapshot → restore round trip (generation must bump)
        MemoryMap::Snapshot snapshot;
        map.snapshot_to(snapshot);
        map.restore_from(snapshot);
        break;
      }
    }
  };

  constexpr std::uint64_t kQueries = 8'000;
  for (std::uint64_t query = 0; query < kQueries; ++query) {
    if (query % 40 == 0) mutate();

    const GuestAddr addr = kGuestBase - kSlot + rng.next() % ((kSlots + 2) * kSlot);
    const auto access = static_cast<Access>(rng.next() % 3);
    const std::uint64_t len = std::array<std::uint64_t, 4>{1, 4, 8, 16}[rng.next() % 4];

    // Ground truth: linear scan over a *copy* of the live region list.
    const std::vector<MemRegion> regions = map.regions();
    const RefWalk want = ref_translate(regions, addr, access, len);

    const auto walk = map.translate(addr, access, len);
    ASSERT_EQ(walk.is_ok(), want.ok) << "query " << query;
    const auto cached = space.translate_cached(addr, access, len);
    ASSERT_EQ(cached.is_ok(), want.ok) << "query " << query;

    if (want.ok) {
      ASSERT_EQ(walk.value().phys, want.phys) << "query " << query;
      ASSERT_EQ(walk.value().region->name, want.region_name) << "query " << query;
      ASSERT_EQ(cached.value().phys, want.phys) << "query " << query;
      ASSERT_EQ(cached.value().region->name, want.region_name)
          << "query " << query;
      ASSERT_FALSE(map.last_fault().has_value()) << "query " << query;
    } else {
      ASSERT_EQ(walk.status().code(), want.code) << "query " << query;
      ASSERT_EQ(cached.status().code(), want.code) << "query " << query;
      ASSERT_EQ(cached.status().message(), walk.status().message())
          << "query " << query;
      ASSERT_TRUE(map.last_fault().has_value()) << "query " << query;
      ASSERT_EQ(*map.last_fault(), want.fault) << "query " << query;
    }
  }

  // The stream must have exercised both TLB outcomes.
  EXPECT_GT(space.tlb_hits(), 0u);
  EXPECT_GT(space.tlb_misses(), 0u);
}

}  // namespace
}  // namespace mcs::mem
