// Allocation pins for the guest-access hot paths.
//
// The perf contract is not just "fast" but "allocation-free in steady
// state": once a page is resident+dirty and the TLB is warm, word
// accesses, TLB hits *and* stage-2 faults must never touch the
// general-purpose heap (fault statuses are lazy — a static prefix and an
// argument, rendered only if someone reads the message). These tests pin
// that with AllocationObserver windows around tight loops; a single
// stray std::string or vector growth fails them deterministically.
#include <gtest/gtest.h>

#include <cstdint>

#include "mem/address_space.hpp"
#include "mem/memory_map.hpp"
#include "mem/phys_mem.hpp"
#include "platform/bus.hpp"
#include "util/alloc_observer.hpp"

namespace mcs::mem {
namespace {

constexpr PhysAddr kWinBase = 0x8000'0000;
constexpr std::uint64_t kWinSize = 16 * kPageSize;
constexpr int kIterations = 10'000;

TEST(FastPathAlloc, SteadyStateWordAccessesAreAllocationFree) {
  PhysicalMemory dram(kWinBase, kWinSize);
  // Warm-up: materialise and dirty the pages the loop will hit.
  ASSERT_TRUE(dram.write_u64(kWinBase, 1).is_ok());
  ASSERT_TRUE(dram.write_u64(kWinBase + kPageSize, 2).is_ok());

  const std::uint64_t fast_before = dram.fast_ops();
  const util::AllocationObserver::Window window;
  std::uint64_t checksum = 0;
  for (int i = 0; i < kIterations; ++i) {
    ASSERT_TRUE(dram.write_u32(kWinBase + 64, static_cast<std::uint32_t>(i)).is_ok());
    ASSERT_TRUE(dram.write_u64(kWinBase + kPageSize, i).is_ok());
    checksum += dram.read_u32(kWinBase + 64).value();
    checksum += dram.read_u64(kWinBase + kPageSize).value();
  }
  EXPECT_EQ(window.allocations(), 0u) << "checksum " << checksum;
  // Every access above took the aligned inline path.
  EXPECT_EQ(dram.fast_ops() - fast_before, 4u * kIterations);
}

TEST(FastPathAlloc, OutOfRangeFaultPathIsAllocationFree) {
  PhysicalMemory dram(kWinBase, kWinSize);
  const util::AllocationObserver::Window window;
  for (int i = 0; i < kIterations; ++i) {
    EXPECT_EQ(dram.write_u32(kWinBase - 4, 1).code(), util::Code::EFault);
    EXPECT_EQ(dram.read_u64(kWinBase + kWinSize).status().code(),
              util::Code::EFault);
  }
  EXPECT_EQ(window.allocations(), 0u);
}

class SpaceAllocTest : public ::testing::Test {
 protected:
  SpaceAllocTest() : dram_(kWinBase, kWinSize), space_(map_, dram_) {
    MemRegion ram;
    ram.name = "ram";
    ram.phys_start = kWinBase;
    ram.virt_start = 0x1000'0000;
    ram.size = 2 * kPageSize;
    ram.flags = kMemRead | kMemWrite;
    EXPECT_TRUE(map_.add_region(ram).is_ok());

    MemRegion ro;
    ro.name = "ro";
    ro.phys_start = kWinBase + 2 * kPageSize;
    ro.virt_start = 0x2000'0000;
    ro.size = kPageSize;
    ro.flags = kMemRead;
    EXPECT_TRUE(map_.add_region(ro).is_ok());
  }

  PhysicalMemory dram_;
  MemoryMap map_;
  AddressSpace space_;
};

TEST_F(SpaceAllocTest, TlbHitPathIsAllocationFree) {
  // Warm: first access fills the page and the read/write TLB entries.
  ASSERT_TRUE(space_.write_u64(0x1000'0000, 42).is_ok());
  ASSERT_EQ(space_.read_u64(0x1000'0000).value(), 42u);

  const std::uint64_t hits_before = space_.tlb_hits();
  const std::uint64_t misses_before = space_.tlb_misses();
  const util::AllocationObserver::Window window;
  std::uint64_t checksum = 0;
  for (int i = 0; i < kIterations; ++i) {
    ASSERT_TRUE(space_.write_u32(0x1000'0040, static_cast<std::uint32_t>(i)).is_ok());
    checksum += space_.read_u32(0x1000'0040).value();
  }
  EXPECT_EQ(window.allocations(), 0u) << "checksum " << checksum;
  EXPECT_EQ(space_.tlb_hits() - hits_before, 2u * kIterations);
  EXPECT_EQ(space_.tlb_misses(), misses_before);  // never fell off the TLB
}

TEST_F(SpaceAllocTest, Stage2FaultPathIsAllocationFree) {
  // One fault up front so the optional<Stage2Fault> is engaged and every
  // container is at capacity before the window opens.
  EXPECT_FALSE(space_.read_u32(0x3000'0000).is_ok());

  const std::uint64_t faults_before = space_.fault_count();
  const util::AllocationObserver::Window window;
  for (int i = 0; i < kIterations; ++i) {
    // Unmapped address: translation fault on the guarded accessors...
    EXPECT_EQ(space_.read_u32(0x3000'0000).status().code(), util::Code::EFault);
    EXPECT_EQ(space_.write_u64(0x3000'0000, 1).code(), util::Code::EFault);
    // ...permission fault on the read-only window...
    EXPECT_EQ(space_.write_u32(0x2000'0000, 1).code(), util::Code::EPerm);
    // ...and the raw cached-walk miss the hypervisor MMIO path takes.
    EXPECT_FALSE(space_.translate_cached(0x3000'0000, Access::Read, 4).is_ok());
  }
  EXPECT_EQ(window.allocations(), 0u);
  EXPECT_EQ(space_.fault_count() - faults_before, 3u * kIterations);
}

TEST(FastPathAlloc, BusDramDispatchIsAllocationFree) {
  PhysicalMemory dram(kWinBase, kWinSize);
  platform::Bus bus(dram);
  ASSERT_TRUE(bus.write_u32(kWinBase + 8, 1).is_ok());  // warm the page

  const util::AllocationObserver::Window window;
  std::uint64_t checksum = 0;
  for (int i = 0; i < kIterations; ++i) {
    ASSERT_TRUE(bus.write_u32(kWinBase + 8, static_cast<std::uint32_t>(i)).is_ok());
    checksum += bus.read_u32(kWinBase + 8).value();
  }
  EXPECT_EQ(window.allocations(), 0u) << "checksum " << checksum;
}

}  // namespace
}  // namespace mcs::mem
