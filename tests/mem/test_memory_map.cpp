#include "mem/memory_map.hpp"

#include <gtest/gtest.h>

namespace mcs::mem {
namespace {

MemRegion region(PhysAddr phys, GuestAddr virt, std::uint64_t size,
                 std::uint32_t flags, std::string name = "r") {
  MemRegion r;
  r.phys_start = phys;
  r.virt_start = virt;
  r.size = size;
  r.flags = flags;
  r.name = std::move(name);
  return r;
}

TEST(MemoryMap, AddAndTranslateIdentity) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x1000,
                                    kMemRead | kMemWrite)).is_ok());
  auto walk = map.translate(0x4000'0010, Access::Read);
  ASSERT_TRUE(walk.is_ok());
  EXPECT_EQ(walk.value().phys, 0x4000'0010u);
}

TEST(MemoryMap, TranslateAppliesOffset) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x7000'0000, 0x1000'0000, 0x1000,
                                    kMemRead)).is_ok());
  auto walk = map.translate(0x1000'0ABC, Access::Read);
  ASSERT_TRUE(walk.is_ok());
  EXPECT_EQ(walk.value().phys, 0x7000'0ABCu);
}

TEST(MemoryMap, RejectsZeroSizedRegion) {
  MemoryMap map;
  EXPECT_EQ(map.add_region(region(0, 0, 0, kMemRead)).code(),
            util::Code::EInval);
}

TEST(MemoryMap, RejectsGuestOverlap) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x1000, 0x1000, kMemRead)).is_ok());
  EXPECT_EQ(map.add_region(region(0x5000'0000, 0x1800, 0x1000, kMemRead)).code(),
            util::Code::EInval);
  // Adjacent is fine.
  EXPECT_TRUE(map.add_region(region(0x5000'0000, 0x2000, 0x1000, kMemRead)).is_ok());
}

TEST(MemoryMap, NoMappingFault) {
  MemoryMap map;
  auto walk = map.translate(0xDEAD'0000, Access::Read);
  EXPECT_FALSE(walk.is_ok());
  ASSERT_TRUE(map.last_fault().has_value());
  EXPECT_EQ(map.last_fault()->kind, FaultKind::NoMapping);
  EXPECT_EQ(map.last_fault()->addr, 0xDEAD'0000u);
}

TEST(MemoryMap, PermissionFault) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x1000,
                                    kMemRead)).is_ok());
  auto walk = map.translate(0x4000'0000, Access::Write);
  EXPECT_FALSE(walk.is_ok());
  EXPECT_EQ(walk.status().code(), util::Code::EPerm);
  ASSERT_TRUE(map.last_fault().has_value());
  EXPECT_EQ(map.last_fault()->kind, FaultKind::Permission);
}

TEST(MemoryMap, ExecutePermission) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x1000,
                                    kMemRead | kMemExecute)).is_ok());
  EXPECT_TRUE(map.translate(0x4000'0000, Access::Execute).is_ok());
  MemoryMap no_exec;
  ASSERT_TRUE(no_exec.add_region(region(0x4000'0000, 0x4000'0000, 0x1000,
                                        kMemRead | kMemWrite)).is_ok());
  EXPECT_FALSE(no_exec.translate(0x4000'0000, Access::Execute).is_ok());
}

TEST(MemoryMap, AccessStraddlingRegionEndFaults) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x1000,
                                    kMemRead)).is_ok());
  EXPECT_TRUE(map.translate(0x4000'0FFC, Access::Read, 4).is_ok());
  EXPECT_FALSE(map.translate(0x4000'0FFD, Access::Read, 4).is_ok());
}

TEST(MemoryMap, SuccessfulWalkClearsLastFault) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x1000,
                                    kMemRead)).is_ok());
  (void)map.translate(0xBAD0'0000, Access::Read);
  EXPECT_TRUE(map.last_fault().has_value());
  (void)map.translate(0x4000'0000, Access::Read);
  EXPECT_FALSE(map.last_fault().has_value());
}

TEST(MemoryMap, CarveOutMiddleSplitsRegion) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x3000,
                                    kMemRead | kMemWrite, "ram")).is_ok());
  const auto removed = map.carve_out_phys(0x4000'1000, 0x1000);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].phys_start, 0x4000'1000u);
  EXPECT_EQ(removed[0].size, 0x1000u);
  EXPECT_EQ(removed[0].flags, kMemRead | kMemWrite);
  // Left and right remainders still translate; the middle faults.
  EXPECT_TRUE(map.translate(0x4000'0000, Access::Read).is_ok());
  EXPECT_TRUE(map.translate(0x4000'2000, Access::Read).is_ok());
  EXPECT_FALSE(map.translate(0x4000'1800, Access::Read).is_ok());
  EXPECT_EQ(map.regions().size(), 2u);
}

TEST(MemoryMap, CarveOutWholeRegionRemovesIt) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x1000,
                                    kMemRead, "ram")).is_ok());
  const auto removed = map.carve_out_phys(0x4000'0000, 0x1000);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_TRUE(map.regions().empty());
}

TEST(MemoryMap, CarveOutThenRestoreRoundTrips) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x4000,
                                    kMemRead | kMemWrite, "ram")).is_ok());
  auto removed = map.carve_out_phys(0x4000'1000, 0x2000);
  for (auto& piece : removed) ASSERT_TRUE(map.add_region(piece).is_ok());
  for (GuestAddr addr = 0x4000'0000; addr < 0x4000'4000; addr += 0x800) {
    EXPECT_TRUE(map.translate(addr, Access::Write).is_ok()) << std::hex << addr;
  }
}

TEST(MemoryMap, CoversPhysAcrossAdjacentRegions) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x4000'0000, 0x4000'0000, 0x1000, kMemRead)).is_ok());
  ASSERT_TRUE(map.add_region(region(0x4000'1000, 0x5000'0000, 0x1000, kMemRead)).is_ok());
  EXPECT_TRUE(map.covers_phys(0x4000'0000, 0x2000));
  EXPECT_TRUE(map.covers_phys(0x4000'0800, 0x1000));
  EXPECT_FALSE(map.covers_phys(0x4000'0000, 0x2001));
  EXPECT_FALSE(map.covers_phys(0x3FFF'FFFF, 0x10));
}

TEST(MemoryMap, MapsPhysDetectsSharedBacking) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x7800'0000, 0x0, 0x1000, kMemRead)).is_ok());
  EXPECT_TRUE(map.maps_phys(0x7800'0800));
  EXPECT_FALSE(map.maps_phys(0x7900'0000));
}

TEST(MemoryMap, RemoveRegionsNamed) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x1000, 0x1000, 0x100, kMemRead, "a")).is_ok());
  ASSERT_TRUE(map.add_region(region(0x2000, 0x2000, 0x100, kMemRead, "b")).is_ok());
  EXPECT_EQ(map.remove_regions_named("a"), 1u);
  EXPECT_EQ(map.regions().size(), 1u);
  EXPECT_EQ(map.regions()[0].name, "b");
}

TEST(MemoryMap, GenerationStartsNonzeroAndBumpsOnEveryMutation) {
  MemoryMap map;
  // Never zero: an AddressSpace TLB entry with recorded generation 0 must
  // never validate against a fresh map.
  std::uint64_t generation = map.generation();
  EXPECT_GE(generation, 1u);

  ASSERT_TRUE(map.add_region(region(0x1000, 0x1000, 0x100, kMemRead, "a")).is_ok());
  EXPECT_GT(map.generation(), generation);
  generation = map.generation();

  // Mutators bump unconditionally — even when they match nothing — so
  // cached translations never survive a mutation attempt.
  EXPECT_EQ(map.remove_regions_named("missing"), 0u);
  EXPECT_GT(map.generation(), generation);
  generation = map.generation();

  EXPECT_TRUE(map.carve_out_phys(0x9000'0000, 0x100).empty());
  EXPECT_GT(map.generation(), generation);
  generation = map.generation();

  MemoryMap::Snapshot snapshot;
  map.snapshot_to(snapshot);
  map.restore_from(snapshot);  // no-op restore still moves time
  EXPECT_GT(map.generation(), generation);
  generation = map.generation();

  map.clear();
  EXPECT_GT(map.generation(), generation);
}

TEST(MemoryMap, RejectedAddLeavesMapAndGenerationUntouched) {
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x1000, 0x1000, 0x100, kMemRead, "a")).is_ok());
  const std::uint64_t generation = map.generation();

  const util::Status clash =
      map.add_region(region(0x5000, 0x1080, 0x100, kMemRead, "late"));
  EXPECT_EQ(clash.code(), util::Code::EInval);
  // Diagnostics name both parties, same as the pre-indexed linear check.
  EXPECT_NE(clash.message().find("'late'"), std::string::npos);
  EXPECT_NE(clash.message().find("'a'"), std::string::npos);
  // A rejected add is not a mutation: nothing changed, nothing to
  // invalidate.
  EXPECT_EQ(map.generation(), generation);
  EXPECT_EQ(map.regions().size(), 1u);
  EXPECT_EQ(map.translate(0x1000, Access::Read).value().phys, 0x1000u);
}

TEST(MemoryMap, OverlapCheckCatchesBothSortedNeighbours) {
  // The O(log n) check only consults the sorted neighbours of the
  // insertion point; both directions must still be caught.
  MemoryMap map;
  ASSERT_TRUE(map.add_region(region(0x1000, 0x1000, 0x1000, kMemRead, "lo")).is_ok());
  ASSERT_TRUE(map.add_region(region(0x4000, 0x4000, 0x1000, kMemRead, "hi")).is_ok());
  // Tail collides with successor "hi".
  EXPECT_FALSE(map.add_region(region(0, 0x3800, 0x1000, kMemRead, "mid")).is_ok());
  // Head collides with predecessor "lo".
  EXPECT_FALSE(map.add_region(region(0, 0x1800, 0x1000, kMemRead, "mid")).is_ok());
  // The gap itself is fine.
  EXPECT_TRUE(map.add_region(region(0, 0x2000, 0x1000, kMemRead, "mid")).is_ok());
}

}  // namespace
}  // namespace mcs::mem
