#include "mem/phys_mem.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mcs::mem {
namespace {

TEST(PhysicalMemory, DefaultsToBananaPiDram) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.base(), kDramBase);
  EXPECT_EQ(dram.size(), kDramSize);
}

TEST(PhysicalMemory, ContainsChecksRange) {
  PhysicalMemory dram;
  EXPECT_TRUE(dram.contains(kDramBase));
  EXPECT_TRUE(dram.contains(kDramBase + kDramSize - 1));
  EXPECT_FALSE(dram.contains(kDramBase + kDramSize));
  EXPECT_FALSE(dram.contains(kDramBase - 1));
  EXPECT_TRUE(dram.contains(kDramBase + kDramSize - 4, 4));
  EXPECT_FALSE(dram.contains(kDramBase + kDramSize - 3, 4));
}

TEST(PhysicalMemory, ByteRoundTrip) {
  PhysicalMemory dram;
  ASSERT_TRUE(dram.write_u8(kDramBase + 5, 0xAB).is_ok());
  auto value = dram.read_u8(kDramBase + 5);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), 0xAB);
}

TEST(PhysicalMemory, WordRoundTrip) {
  PhysicalMemory dram;
  ASSERT_TRUE(dram.write_u32(kDramBase + 0x100, 0xDEADBEEF).is_ok());
  EXPECT_EQ(dram.read_u32(kDramBase + 0x100).value(), 0xDEADBEEFu);
  ASSERT_TRUE(dram.write_u64(kDramBase + 0x200, 0x0123456789ABCDEFull).is_ok());
  EXPECT_EQ(dram.read_u64(kDramBase + 0x200).value(), 0x0123456789ABCDEFull);
}

TEST(PhysicalMemory, UntouchedMemoryReadsZero) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.read_u32(kDramBase + 0x7000).value(), 0u);
  EXPECT_EQ(dram.resident_pages(), 0u);  // reads allocate nothing
}

TEST(PhysicalMemory, OutOfRangeAccessFails) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.write_u32(kDramBase - 4, 1).code(), util::Code::EFault);
  EXPECT_FALSE(dram.read_u32(kDramBase + kDramSize).is_ok());
  EXPECT_EQ(dram.write_u32(kDramBase + kDramSize - 2, 1).code(),
            util::Code::EFault);  // straddles the end
}

TEST(PhysicalMemory, BlockCrossesPageBoundary) {
  PhysicalMemory dram;
  std::vector<std::uint8_t> payload(3 * kPageSize, 0);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  const PhysAddr addr = kDramBase + kPageSize - 100;  // unaligned start
  ASSERT_TRUE(dram.write_block(addr, payload).is_ok());
  std::vector<std::uint8_t> read_back(payload.size(), 0xFF);
  ASSERT_TRUE(dram.read_block(addr, read_back).is_ok());
  EXPECT_EQ(read_back, payload);
}

TEST(PhysicalMemory, SparsePagesAllocatedOnWrite) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.resident_pages(), 0u);
  (void)dram.write_u8(kDramBase, 1);
  (void)dram.write_u8(kDramBase + 100 * kPageSize, 1);
  EXPECT_EQ(dram.resident_pages(), 2u);
}

TEST(PhysicalMemory, FillAndClear) {
  PhysicalMemory dram;
  ASSERT_TRUE(dram.fill(kDramBase + 10, 3 * kPageSize, 0x5A).is_ok());
  EXPECT_EQ(dram.read_u8(kDramBase + 10).value(), 0x5A);
  EXPECT_EQ(dram.read_u8(kDramBase + 10 + 3 * kPageSize - 1).value(), 0x5A);
  EXPECT_EQ(dram.read_u8(kDramBase + 9).value(), 0u);
  dram.clear();
  EXPECT_EQ(dram.read_u8(kDramBase + 10).value(), 0u);
  EXPECT_EQ(dram.resident_pages(), 0u);
}

TEST(PhysicalMemory, ReadBlockFromHoleYieldsZeros) {
  PhysicalMemory dram;
  (void)dram.write_u8(kDramBase + kPageSize, 0x11);  // page 1 resident
  std::vector<std::uint8_t> out(2 * kPageSize, 0xFF);
  ASSERT_TRUE(dram.read_block(kDramBase, out).is_ok());
  EXPECT_EQ(out[0], 0u);                 // hole
  EXPECT_EQ(out[kPageSize], 0x11u);      // resident page
}

}  // namespace
}  // namespace mcs::mem
