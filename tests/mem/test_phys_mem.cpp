#include "mem/phys_mem.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mcs::mem {
namespace {

TEST(PhysicalMemory, DefaultsToBananaPiDram) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.base(), kDramBase);
  EXPECT_EQ(dram.size(), kDramSize);
}

TEST(PhysicalMemory, ContainsChecksRange) {
  PhysicalMemory dram;
  EXPECT_TRUE(dram.contains(kDramBase));
  EXPECT_TRUE(dram.contains(kDramBase + kDramSize - 1));
  EXPECT_FALSE(dram.contains(kDramBase + kDramSize));
  EXPECT_FALSE(dram.contains(kDramBase - 1));
  EXPECT_TRUE(dram.contains(kDramBase + kDramSize - 4, 4));
  EXPECT_FALSE(dram.contains(kDramBase + kDramSize - 3, 4));
}

TEST(PhysicalMemory, ByteRoundTrip) {
  PhysicalMemory dram;
  ASSERT_TRUE(dram.write_u8(kDramBase + 5, 0xAB).is_ok());
  auto value = dram.read_u8(kDramBase + 5);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), 0xAB);
}

TEST(PhysicalMemory, WordRoundTrip) {
  PhysicalMemory dram;
  ASSERT_TRUE(dram.write_u32(kDramBase + 0x100, 0xDEADBEEF).is_ok());
  EXPECT_EQ(dram.read_u32(kDramBase + 0x100).value(), 0xDEADBEEFu);
  ASSERT_TRUE(dram.write_u64(kDramBase + 0x200, 0x0123456789ABCDEFull).is_ok());
  EXPECT_EQ(dram.read_u64(kDramBase + 0x200).value(), 0x0123456789ABCDEFull);
}

TEST(PhysicalMemory, UntouchedMemoryReadsZero) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.read_u32(kDramBase + 0x7000).value(), 0u);
  EXPECT_EQ(dram.resident_pages(), 0u);  // reads allocate nothing
}

TEST(PhysicalMemory, OutOfRangeAccessFails) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.write_u32(kDramBase - 4, 1).code(), util::Code::EFault);
  EXPECT_FALSE(dram.read_u32(kDramBase + kDramSize).is_ok());
  EXPECT_EQ(dram.write_u32(kDramBase + kDramSize - 2, 1).code(),
            util::Code::EFault);  // straddles the end
}

TEST(PhysicalMemory, BlockCrossesPageBoundary) {
  PhysicalMemory dram;
  std::vector<std::uint8_t> payload(3 * kPageSize, 0);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  const PhysAddr addr = kDramBase + kPageSize - 100;  // unaligned start
  ASSERT_TRUE(dram.write_block(addr, payload).is_ok());
  std::vector<std::uint8_t> read_back(payload.size(), 0xFF);
  ASSERT_TRUE(dram.read_block(addr, read_back).is_ok());
  EXPECT_EQ(read_back, payload);
}

TEST(PhysicalMemory, SparsePagesAllocatedOnWrite) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.resident_pages(), 0u);
  (void)dram.write_u8(kDramBase, 1);
  (void)dram.write_u8(kDramBase + 100 * kPageSize, 1);
  EXPECT_EQ(dram.resident_pages(), 2u);
}

TEST(PhysicalMemory, FillAndClear) {
  PhysicalMemory dram;
  ASSERT_TRUE(dram.fill(kDramBase + 10, 3 * kPageSize, 0x5A).is_ok());
  EXPECT_EQ(dram.read_u8(kDramBase + 10).value(), 0x5A);
  EXPECT_EQ(dram.read_u8(kDramBase + 10 + 3 * kPageSize - 1).value(), 0x5A);
  EXPECT_EQ(dram.read_u8(kDramBase + 9).value(), 0u);
  dram.clear();
  EXPECT_EQ(dram.read_u8(kDramBase + 10).value(), 0u);
  EXPECT_EQ(dram.resident_pages(), 0u);
}

TEST(PhysicalMemory, ReadBlockFromHoleYieldsZeros) {
  PhysicalMemory dram;
  (void)dram.write_u8(kDramBase + kPageSize, 0x11);  // page 1 resident
  std::vector<std::uint8_t> out(2 * kPageSize, 0xFF);
  ASSERT_TRUE(dram.read_block(kDramBase, out).is_ok());
  EXPECT_EQ(out[0], 0u);                 // hole
  EXPECT_EQ(out[kPageSize], 0x11u);      // resident page
}

TEST(PhysicalMemory, DirtyTrackingFollowsWrites) {
  PhysicalMemory dram;
  EXPECT_EQ(dram.dirty_pages(), 0u);
  (void)dram.write_u8(kDramBase, 1);
  (void)dram.write_u8(kDramBase + 8, 2);  // same page: one dirty entry
  EXPECT_EQ(dram.dirty_pages(), 1u);
  (void)dram.write_u32(kDramBase + 10 * kPageSize, 3);
  EXPECT_EQ(dram.dirty_pages(), 2u);
  // Reads never dirty (nor materialise) pages.
  (void)dram.read_u64(kDramBase + 50 * kPageSize);
  EXPECT_EQ(dram.dirty_pages(), 2u);
}

TEST(PhysicalMemory, ResetContentsClearsDirtySetButKeepsResidency) {
  PhysicalMemory dram;
  (void)dram.fill(kDramBase, 2 * kPageSize, 0x77);
  ASSERT_EQ(dram.dirty_pages(), 2u);
  dram.reset_contents();
  EXPECT_EQ(dram.dirty_pages(), 0u);
  EXPECT_EQ(dram.resident_pages(), 2u);
  EXPECT_EQ(dram.read_u8(kDramBase).value(), 0u);
  // Re-dirtying a clean resident page re-enters the dirty list once.
  (void)dram.write_u8(kDramBase, 9);
  (void)dram.write_u8(kDramBase + 1, 9);
  EXPECT_EQ(dram.dirty_pages(), 1u);
}

TEST(PhysicalMemory, SnapshotRoundTripIsBitExact) {
  PhysicalMemory dram;
  util::Arena arena(64 * kPageSize);
  (void)dram.write_u32(kDramBase + 0x40, 0xDEADBEEF);
  (void)dram.write_u64(kDramBase + 7 * kPageSize + 8, 0x0123456789ABCDEFull);
  PhysicalMemory::Snapshot snapshot;
  dram.snapshot_to(snapshot, arena);
  EXPECT_EQ(snapshot.pages.size(), 2u);
  EXPECT_EQ(snapshot.bytes(), 2 * kPageSize);

  // Mutate captured pages and dirty a brand-new one.
  (void)dram.write_u32(kDramBase + 0x40, 0);
  (void)dram.write_u8(kDramBase + 20 * kPageSize, 0xEE);
  ASSERT_EQ(dram.dirty_pages(), 3u);

  dram.restore_from(snapshot);
  EXPECT_EQ(dram.read_u32(kDramBase + 0x40).value(), 0xDEADBEEFu);
  EXPECT_EQ(dram.read_u64(kDramBase + 7 * kPageSize + 8).value(),
            0x0123456789ABCDEFull);
  // The page written after capture is back to power-on zero and clean.
  EXPECT_EQ(dram.read_u8(kDramBase + 20 * kPageSize).value(), 0u);
  // The dirty set after restore equals the snapshot's page set.
  EXPECT_EQ(dram.dirty_pages(), 2u);
}

TEST(PhysicalMemory, RestoreIsRepeatable) {
  // Run → restore → run → restore must keep reproducing the capture: the
  // executor restores the same snapshot for every run of a slot.
  PhysicalMemory dram;
  util::Arena arena(64 * kPageSize);
  (void)dram.write_u32(kDramBase, 0xA5A5A5A5);
  PhysicalMemory::Snapshot snapshot;
  dram.snapshot_to(snapshot, arena);
  for (int round = 0; round < 3; ++round) {
    (void)dram.write_u32(kDramBase, 0x11111111u * static_cast<unsigned>(round));
    (void)dram.write_u8(kDramBase + (5 + static_cast<std::uint64_t>(round)) * kPageSize, 1);
    dram.restore_from(snapshot);
    EXPECT_EQ(dram.read_u32(kDramBase).value(), 0xA5A5A5A5u) << round;
    EXPECT_EQ(dram.dirty_pages(), 1u) << round;
  }
}

TEST(PhysicalMemory, EmptySnapshotRestoresToAllZero) {
  PhysicalMemory dram;
  util::Arena arena(16 * kPageSize);
  PhysicalMemory::Snapshot snapshot;
  dram.snapshot_to(snapshot, arena);  // nothing dirty: empty capture
  EXPECT_EQ(snapshot.pages.size(), 0u);
  (void)dram.write_u32(kDramBase + kPageSize, 0xBADF00D);
  dram.restore_from(snapshot);
  EXPECT_EQ(dram.read_u32(kDramBase + kPageSize).value(), 0u);
  EXPECT_EQ(dram.dirty_pages(), 0u);
}

}  // namespace
}  // namespace mcs::mem
