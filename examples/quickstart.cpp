// Quickstart: boot the paper's testbed, run it fault-free for ten seconds
// of board time, and show what a *golden run* looks like — the profiling
// step the authors used to pick the three injection candidates.
//
//   $ ./quickstart
#include <iostream>

#include "core/testbed.hpp"

int main() {
  using namespace mcs;

  fi::Testbed testbed;
  if (const util::Status status = testbed.enable_hypervisor(); !status.is_ok()) {
    std::cerr << "enable failed: " << status << "\n";
    return 1;
  }
  testbed.boot_freertos_cell();

  std::cout << "== golden run: 10 s of board time ==\n";
  const auto profile = testbed.profile_golden(10'000);

  std::cout << "hypervisor entries (the three fault-injection candidates):\n"
            << "  irqchip_handle_irq : " << profile.irqchip_entries << "\n"
            << "  arch_handle_trap   : " << profile.trap_entries << "\n"
            << "  arch_handle_hvc    : " << profile.hvc_entries << "\n"
            << "  traps on cpu0/cpu1 : " << profile.per_cpu_traps[0] << " / "
            << profile.per_cpu_traps[1] << "\n\n";

  jh::Cell* cell = testbed.freertos_cell();
  std::cout << "cells:\n";
  for (jh::Cell* c : testbed.hypervisor().cells()) {
    std::cout << "  [" << c->id() << "] '" << c->name() << "' state="
              << jh::cell_state_name(c->state()) << "\n";
  }
  std::cout << "\nFreeRTOS workload health:\n"
            << "  LED blinks          : " << testbed.freertos().blink_count() << "\n"
            << "  messages validated  : "
            << testbed.freertos().messages_validated() << "\n"
            << "  data errors         : " << testbed.freertos().data_errors() << "\n"
            << "  console bytes (cell): "
            << (cell != nullptr ? cell->console_bytes : 0) << "\n\n";

  const auto lines = testbed.board().uart1().lines();
  std::cout << "last USART lines from the non-root cell:\n";
  const std::size_t start = lines.size() > 8 ? lines.size() - 8 : 0;
  for (std::size_t i = start; i < lines.size(); ++i) {
    std::cout << "  | " << lines[i] << "\n";
  }
  return 0;
}
