// sweep: run the paper's full assessment grid — scenarios × fault
// intensities (rates) × boards — as one resumable campaign sweep, on one
// process or on many.
//
// Each grid cell executes through the sharded CampaignExecutor; its run
// log streams to <logdir>/<cell>.runlog. Re-invoking with the same spec
// and logdir resumes: completed cells are rebuilt from their logs and
// skipped, and the final comparison report is byte-identical to an
// uninterrupted run's (the determinism the resume CI step diffs).
//
//   $ ./sweep --scenarios freertos-steady,dual-cell --rates 100,50 \
//             --runs 8 --logdir sweep-logs > report.txt
//   $ ./sweep --spec grid.sweep            # config-text spec file
//   $ ./sweep --spec -                     # spec from stdin
//
// Distributed execution over the same logdir (see README "Distributed
// sweeps" for the lease protocol):
//
//   $ ./sweep ... --logdir sweep-logs --workers 4   # fork 4 workers, merge
//   $ ./sweep --join sweep-logs --worker-id host2   # pile on from elsewhere
//   $ ./sweep --sweepd jobs/ --workers 4            # job-queue daemon
//
// The comparison report goes to stdout; progress goes to stderr, so the
// report can be redirected and diffed.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "core/sweep.hpp"
#include "core/sweep_worker.hpp"
#include "core/testbed_pool.hpp"
#include "hypervisor/config_text.hpp"
#include "util/logpipe_counters.hpp"
#include "util/mapped_file.hpp"
#include "util/strings.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage: sweep [options]\n"
         "  --spec <file|->       sweep spec as config text (see README)\n"
         "  --scenarios a,b,...   scenario axis (ScenarioRegistry keys)\n"
         "  --rates n,m,...       fault-intensity axis (inject 1/N calls)\n"
         "  --boards a,b,...      board axis (optional; default: scenario's)\n"
         "  --domains a,b,...     fault-domain axis (register, gic,\n"
         "                        irq-delivery, device-mmio, dram)\n"
         "  --runs N              runs per grid cell (default 8)\n"
         "  --seed S              base seed (decimal or 0x...)\n"
         "  --duration T          observation window ticks (default: plan's)\n"
         "  --tuning TEXT         cell tuning, ';'-separated lines\n"
         "  --logdir DIR          persist per-cell run logs; enables resume\n"
         "  --threads N           executor threads per cell (default: auto)\n"
         "  --no-snapshots        reset + reboot pooled testbeds per run\n"
         "                        instead of restoring post-boot snapshots\n"
         "  --no-parallel-resume  rebuild completed cells from their logs\n"
         "                        one by one instead of on a thread pool\n"
         "distributed execution (multi-process cell leasing over --logdir):\n"
         "  --workers N           fork N worker processes over the logdir,\n"
         "                        wait, and render the merged report\n"
         "  --join DIR            join an in-flight sweep: lease cells from\n"
         "                        DIR/sweep.spec until the grid completes,\n"
         "                        then render the same merged report\n"
         "  --worker-id ID        lease owner id for --join (default wPID)\n"
         "  --lease-ttl SEC       heartbeat age before a lease counts stale\n"
         "                        and is re-claimed (default 60)\n"
         "  --sweepd DIR          daemon: watch DIR for *.sweep job specs,\n"
         "                        execute each, write <job>.report and live\n"
         "                        progress to DIR/sweepd.status\n"
         "  --once                with --sweepd: drain the queue and exit\n"
         "  --poll-ms N           sweepd queue poll interval (default 1000)\n"
         "flags override the spec file; the comparison report goes to\n"
         "stdout, progress to stderr\n";
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& part : mcs::util::split(text, ',')) {
    if (!mcs::util::trim(part).empty()) {
      out.emplace_back(mcs::util::trim(part));
    }
  }
  return out;
}

// --- throughput / ETA meter --------------------------------------------------

/// Per-cell wall-time accounting behind the stderr progress line:
/// cumulative runs/sec over executed runs, and an ETA from the mean
/// executed-cell wall time × cells remaining (resumed cells are ~free,
/// so only executed cells inform the estimate).
class ProgressMeter {
 public:
  explicit ProgressMeter(std::size_t cells_total)
      : cells_total_(cells_total),
        start_(std::chrono::steady_clock::now()),
        last_cell_(start_) {}

  void on_cell(bool executed, std::uint64_t runs) {
    const auto now = std::chrono::steady_clock::now();
    if (executed) {
      executed_seconds_ +=
          std::chrono::duration<double>(now - last_cell_).count();
      ++executed_cells_;
      runs_executed_ += runs;
    }
    last_cell_ = now;
    ++cells_done_;
  }

  void override_done(std::size_t done, std::size_t total) {
    cells_done_ = done;
    cells_total_ = total;
  }

  [[nodiscard]] std::size_t done() const { return cells_done_; }
  [[nodiscard]] std::size_t total() const { return cells_total_; }

  [[nodiscard]] double runs_per_sec() const {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    return elapsed > 0 ? static_cast<double>(runs_executed_) / elapsed : 0.0;
  }

  /// Seconds to finish the remaining cells; < 0 before any cell executed.
  [[nodiscard]] double eta_seconds() const {
    if (executed_cells_ == 0) return -1.0;
    const double per_cell = executed_seconds_ / executed_cells_;
    return per_cell * static_cast<double>(cells_total_ - cells_done_);
  }

  /// " | 12.3 runs/s, ETA 4.5s" — the suffix every progress line carries.
  [[nodiscard]] std::string suffix() const {
    std::ostringstream out;
    out << std::fixed << std::setprecision(1);
    out << " | " << runs_per_sec() << " runs/s, ETA ";
    const double eta = eta_seconds();
    if (eta < 0) {
      out << "unknown";
    } else {
      out << eta << "s";
    }
    return out.str();
  }

 private:
  std::size_t cells_total_;
  std::size_t cells_done_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_cell_;
  double executed_seconds_ = 0.0;
  std::size_t executed_cells_ = 0;
  std::uint64_t runs_executed_ = 0;
};

void print_cell_line(std::ostream& err, const std::string& prefix,
                     const ProgressMeter& meter, const std::string& cell_id,
                     bool executed, const mcs::analysis::CampaignAggregate& agg) {
  err << prefix << "[" << meter.done() << "/" << meter.total() << "] "
      << cell_id << ": " << (executed ? "executed" : "resumed from log")
      << ", " << agg.distribution.total() << " runs, " << agg.cell_failures
      << " cell failures" << meter.suffix() << "\n";
}

void print_pool_stats(std::ostream& err) {
  const mcs::fi::TestbedPool::Stats pool =
      mcs::fi::TestbedPool::instance().stats();
  err << "pool: " << pool.creates << " built, " << pool.reuses
      << " reused; runs: " << pool.run_restores << " restored, "
      << pool.run_resets << " reset; " << pool.captures
      << " snapshots captured (" << pool.snapshot_bytes << " B, "
      << pool.dirty_pages << " dirty pages)\n";
}

/// The log-pipeline epilogue: what the write path rendered, what the
/// read path mapped and scanned, what resume rebuilt without executing.
void print_logpipe_stats(std::ostream& err) {
  const mcs::util::LogPipeCounters::Stats log =
      mcs::util::LogPipeCounters::instance().stats();
  err << "logpipe: " << log.sink_lines << " lines sunk ("
      << log.sink_contention << " contended, " << log.sink_flushes
      << " flushes); " << log.parse_lines << " lines / " << log.parse_bytes
      << " B scanned, " << log.bytes_mapped << " B mapped ("
      << log.map_fallbacks << " read fallbacks); " << log.resumed_cells
      << " cells resumed from logs\n";
}

std::string report_of(const mcs::fi::SweepResult& result) {
  std::vector<mcs::analysis::ComparisonColumn> columns;
  columns.reserve(result.cells.size());
  for (const mcs::fi::SweepCellResult& cell : result.cells) {
    columns.push_back({cell.id, cell.aggregate});
  }
  return mcs::analysis::render_comparison_report(
      columns, "Sweep comparison — " + result.spec.name);
}

/// The per-worker stderr reporter used by --workers and --join: each
/// completed cell prints one "[wK] [done/total] ..." line from the
/// worker that saw it, with that worker's own throughput/ETA estimate.
mcs::fi::SweepWorker::ProgressFn worker_progress(const std::string& worker_id,
                                                 std::size_t cells_total) {
  auto meter = std::make_shared<ProgressMeter>(cells_total);
  return [meter, worker_id](const mcs::fi::SweepWorkerProgress& event) {
    meter->on_cell(event.executed_here,
                   event.executed_here ? event.cell->plan.runs : 0);
    meter->override_done(event.cells_done, event.cells_total);
    print_cell_line(std::cerr, "[" + worker_id + "] ", *meter,
                    event.cell->id, event.executed_here,
                    event.cell->aggregate);
  };
}

// --- sweepd ------------------------------------------------------------------

struct SweepdOptions {
  std::string job_dir;
  unsigned workers = 0;  ///< 0/1 → in-process driver; ≥2 → fork + lease
  mcs::fi::SweepWorkerConfig worker;
  mcs::fi::ExecutorConfig executor;
  bool once = false;
  std::chrono::milliseconds poll{1'000};
};

/// Run one queued job spec; returns false on a job-level failure (the
/// job file is renamed *.failed with a sidecar *.error either way, so
/// the daemon never re-runs a broken spec in a loop).
bool run_sweepd_job(const SweepdOptions& options,
                    const std::filesystem::path& job_path) {
  namespace fs = std::filesystem;
  using namespace mcs;

  const std::string stem = job_path.stem().string();
  const std::string status_path =
      (fs::path(options.job_dir) / "sweepd.status").string();

  const auto fail = [&](const std::string& what) {
    std::cerr << "sweepd: job " << stem << ": " << what << "\n";
    (void)fi::write_text_atomic(
        (fs::path(options.job_dir) / (stem + ".error")).string(), what + "\n");
    std::error_code ec;
    fs::rename(job_path, job_path.string() + ".failed", ec);
    return false;
  };

  const auto body = util::read_file(job_path.string());
  if (!body.is_ok()) return fail("cannot read job spec");
  auto parsed = fi::parse_sweep_spec(body.value());
  if (!parsed.is_ok()) return fail("spec: " + parsed.status().to_string());
  fi::SweepSpec spec = std::move(parsed).value();
  if (spec.log_dir.empty()) {
    // Queued jobs always persist — the logdir is both the resume
    // substrate and what the daemon's workers lease over.
    spec.log_dir = (fs::path(options.job_dir) / (stem + ".logs")).string();
  }

  std::cerr << "sweepd: job " << stem << ": " << spec.cell_count()
            << " cells × " << spec.runs << " runs → " << spec.log_dir << "\n";

  // Live status: every completed cell rewrites the status file (atomic
  // replace) with done counts, throughput, ETA and the lease table. In
  // --workers mode the children write it — last writer wins, each with
  // its own grid-wide view.
  const auto status_writer = [status_path, stem,
                              log_dir = spec.log_dir](
                                 std::size_t done, std::size_t total,
                                 const ProgressMeter& meter) {
    fi::SweepStatus status;
    status.job = stem;
    status.cells_done = done;
    status.cells_total = total;
    status.runs_per_sec = meter.runs_per_sec();
    status.eta_seconds = meter.eta_seconds();
    status.leases = fi::list_leases(log_dir);
    (void)fi::write_text_atomic(status_path,
                                fi::render_sweep_status(status));
  };

  util::Expected<fi::SweepResult> swept =
      util::invalid_argument("not executed");
  if (options.workers >= 2) {
    fi::DistributedSweepOptions distributed;
    distributed.workers = options.workers;
    distributed.worker = options.worker;
    distributed.make_worker_progress =
        [status_writer, cells_total = spec.cell_count()](
            const std::string& worker_id) {
          auto stderr_line = worker_progress(worker_id, cells_total);
          auto meter = std::make_shared<ProgressMeter>(cells_total);
          return [stderr_line, status_writer,
                  meter](const fi::SweepWorkerProgress& event) {
            stderr_line(event);
            meter->on_cell(event.executed_here,
                           event.executed_here ? event.cell->plan.runs : 0);
            meter->override_done(event.cells_done, event.cells_total);
            status_writer(event.cells_done, event.cells_total, *meter);
          };
        };
    swept = fi::run_distributed_sweep(spec, options.executor, distributed);
  } else {
    fi::SweepDriver driver(spec, options.executor);
    auto meter = std::make_shared<ProgressMeter>(spec.cell_count());
    driver.set_cell_progress(
        [meter, status_writer](const fi::SweepCellResult& cell) {
          meter->on_cell(!cell.resumed, cell.resumed ? 0 : cell.plan.runs);
          print_cell_line(std::cerr, "  ", *meter, cell.id, !cell.resumed,
                          cell.aggregate);
          status_writer(meter->done(), meter->total(), *meter);
        });
    swept = driver.execute();
  }
  if (!swept.is_ok()) return fail(swept.status().to_string());

  const util::Status wrote = fi::write_text_atomic(
      (fs::path(options.job_dir) / (stem + ".report")).string(),
      report_of(swept.value()));
  if (!wrote.is_ok()) return fail(wrote.to_string());
  std::error_code ec;
  fs::rename(job_path, job_path.string() + ".done", ec);
  std::cerr << "sweepd: job " << stem << ": done ("
            << swept.value().executed << " executed, "
            << swept.value().resumed << " resumed)\n";
  return true;
}

int run_sweepd(const SweepdOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options.job_dir, ec);
  if (ec) {
    std::cerr << "sweepd: cannot create job dir '" << options.job_dir
              << "': " << ec.message() << "\n";
    return 2;
  }
  std::cerr << "sweepd: watching " << options.job_dir << " for *.sweep jobs"
            << (options.once ? " (drain once)" : "") << "\n";

  bool all_ok = true;
  while (true) {
    std::vector<fs::path> jobs;
    for (fs::directory_iterator it(options.job_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->path().extension() == ".sweep") jobs.push_back(it->path());
    }
    std::sort(jobs.begin(), jobs.end());
    for (const fs::path& job : jobs) {
      all_ok = run_sweepd_job(options, job) && all_ok;
    }
    if (options.once) break;
    std::this_thread::sleep_for(options.poll);
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;

  fi::SweepSpec spec;
  fi::ExecutorConfig config;
  fi::SweepWorkerConfig worker_config;
  bool have_spec = false;
  unsigned workers = 0;
  std::string join_dir;
  std::string sweepd_dir;
  bool sweepd_once = false;
  std::chrono::milliseconds sweepd_poll{1'000};

  // Exit codes: 0 swept, 1 bad spec/flags, 2 unreadable spec input.
  // Strict numerics: the same vocabulary as the spec file, so "8q" is
  // rejected here exactly like it would be on a `runs 8q` line.
  const auto parse_number = [](const char* flag_name, const char* token,
                               std::uint64_t& out) {
    auto value = mcs::jh::parse_config_number(token);
    if (!value.is_ok()) {
      std::cerr << "sweep: bad " << flag_name << " '" << token << "'\n";
      return false;
    }
    out = value.value();
    return true;
  };

  // First pass: load the spec file (if any), so explicit flags override
  // it regardless of their position on the command line.
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      usage(std::cout);
      return 0;
    }
    if (flag != "--spec") continue;
    if (i + 1 >= argc) {
      std::cerr << "sweep: --spec needs a file\n";
      return 1;
    }
    const std::string path = argv[++i];
    std::string text;
    if (path == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      if (std::cin.bad()) {
        std::cerr << "sweep: error reading stdin\n";
        return 2;
      }
      text = buffer.str();
    } else {
      auto body = util::read_file(path);
      if (!body.is_ok()) {
        if (body.status().code() == util::Code::ENoEnt) {
          std::cerr << "sweep: cannot open spec '" << path << "'\n";
        } else {
          std::cerr << "sweep: error reading spec '" << path << "'\n";
        }
        return 2;
      }
      text = std::move(body).value();
    }
    auto parsed = fi::parse_sweep_spec(text);
    if (!parsed.is_ok()) {
      std::cerr << "sweep: spec: " << parsed.status().to_string() << "\n";
      return 1;
    }
    spec = std::move(parsed).value();
    have_spec = true;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* arg = nullptr;
    std::uint64_t number = 0;
    if (flag == "--spec" && (arg = value()) != nullptr) {
      // Handled by the first pass.
    } else if (flag == "--scenarios" && (arg = value()) != nullptr) {
      spec.scenarios = split_csv(arg);
    } else if (flag == "--rates" && (arg = value()) != nullptr) {
      spec.rates.clear();
      for (const std::string& token : split_csv(arg)) {
        if (!parse_number("rate", token.c_str(), number)) return 1;
        if (number == 0) {
          std::cerr << "sweep: bad rate '" << token << "' (need ≥ 1)\n";
          return 1;
        }
        spec.rates.push_back(static_cast<std::uint32_t>(number));
      }
    } else if (flag == "--boards" && (arg = value()) != nullptr) {
      spec.boards = split_csv(arg);
    } else if (flag == "--domains" && (arg = value()) != nullptr) {
      spec.domains = split_csv(arg);
    } else if (flag == "--runs" && (arg = value()) != nullptr) {
      if (!parse_number("runs", arg, number)) return 1;
      spec.runs = static_cast<std::uint32_t>(number);
    } else if (flag == "--seed" && (arg = value()) != nullptr) {
      if (!parse_number("seed", arg, number)) return 1;
      spec.seed = number;
    } else if (flag == "--duration" && (arg = value()) != nullptr) {
      if (!parse_number("duration", arg, number)) return 1;
      spec.duration_ticks = number;
    } else if (flag == "--tuning" && (arg = value()) != nullptr) {
      spec.cell_tuning = arg;
      std::replace(spec.cell_tuning.begin(), spec.cell_tuning.end(), ';',
                   '\n');
    } else if (flag == "--logdir" && (arg = value()) != nullptr) {
      spec.log_dir = arg;
    } else if (flag == "--threads" && (arg = value()) != nullptr) {
      if (!parse_number("threads", arg, number)) return 1;
      config.threads = static_cast<unsigned>(number);
    } else if (flag == "--no-snapshots") {
      config.use_snapshots = false;
    } else if (flag == "--no-parallel-resume") {
      config.parallel_resume = false;
    } else if (flag == "--workers" && (arg = value()) != nullptr) {
      if (!parse_number("workers", arg, number) || number == 0) {
        std::cerr << "sweep: --workers needs a count ≥ 1\n";
        return 1;
      }
      workers = static_cast<unsigned>(number);
    } else if (flag == "--join" && (arg = value()) != nullptr) {
      join_dir = arg;
    } else if (flag == "--worker-id" && (arg = value()) != nullptr) {
      worker_config.worker_id = arg;
    } else if (flag == "--lease-ttl" && (arg = value()) != nullptr) {
      if (!parse_number("lease-ttl", arg, number)) return 1;
      worker_config.lease_ttl = std::chrono::seconds(number);
      worker_config.heartbeat_interval =
          std::max(std::chrono::milliseconds(worker_config.lease_ttl) / 4,
                   std::chrono::milliseconds(50));
    } else if (flag == "--sweepd" && (arg = value()) != nullptr) {
      sweepd_dir = arg;
    } else if (flag == "--once") {
      sweepd_once = true;
    } else if (flag == "--poll-ms" && (arg = value()) != nullptr) {
      if (!parse_number("poll-ms", arg, number) || number == 0) {
        std::cerr << "sweep: --poll-ms needs a value ≥ 1\n";
        return 1;
      }
      sweepd_poll = std::chrono::milliseconds(number);
    } else {
      std::cerr << "sweep: unknown or incomplete flag '" << flag << "'\n";
      usage(std::cerr);
      return 1;
    }
  }

  // --- sweepd: job-queue daemon ---------------------------------------------
  if (!sweepd_dir.empty()) {
    SweepdOptions options;
    options.job_dir = sweepd_dir;
    options.workers = workers;
    options.worker = worker_config;
    options.executor = config;
    options.once = sweepd_once;
    options.poll = sweepd_poll;
    return run_sweepd(options);
  }

  // --- join: become one worker of an in-flight sweep ------------------------
  if (!join_dir.empty()) {
    auto read = fi::read_spec_file(join_dir);
    if (!read.is_ok()) {
      std::cerr << "sweep: --join: " << read.status().to_string() << "\n";
      return 2;
    }
    spec = std::move(read).value();
    fi::SweepWorker worker(spec, config, worker_config);
    std::cerr << "sweep: worker '" << worker.worker_id() << "' joining '"
              << spec.name << "' (" << spec.cell_count() << " cells) in "
              << join_dir << "\n";
    worker.set_progress(
        worker_progress(worker.worker_id(), spec.cell_count()));
    auto stats = worker.run();
    if (!stats.is_ok()) {
      std::cerr << "sweep: worker: " << stats.status().to_string() << "\n";
      return 1;
    }
    std::cerr << "worker '" << worker.worker_id() << "': "
              << stats.value().executed << " cells executed, "
              << stats.value().observed << " observed complete, "
              << stats.value().stolen << " stale leases reclaimed\n";
    print_pool_stats(std::cerr);
    // The grid is complete (the worker waits for stragglers), so the
    // merged report renders here byte-identically to any other worker's
    // or the coordinator's.
    auto merged = fi::SweepDriver(spec, config).execute();
    if (!merged.is_ok()) {
      std::cerr << "sweep: merge: " << merged.status().to_string() << "\n";
      return 1;
    }
    std::cout << report_of(merged.value());
    return 0;
  }

  if (spec.scenarios.empty() || spec.rates.empty()) {
    if (!have_spec) usage(std::cerr);
    std::cerr << "sweep: need at least one scenario and one rate\n";
    return 1;
  }

  std::cerr << "sweep '" << spec.name << "': " << spec.cell_count()
            << " grid cells × " << spec.runs << " runs, base seed 0x"
            << std::hex << spec.seed << std::dec;
  if (!spec.log_dir.empty()) std::cerr << ", logs in " << spec.log_dir;
  if (workers >= 2) std::cerr << ", " << workers << " worker processes";
  std::cerr << "\n";

  // --- coordinator: fork N workers over one logdir, merge -------------------
  if (workers >= 2) {
    if (spec.log_dir.empty()) {
      std::cerr << "sweep: --workers needs --logdir (the shared "
                   "coordination substrate)\n";
      return 1;
    }
    fi::DistributedSweepOptions distributed;
    distributed.workers = workers;
    distributed.worker = worker_config;
    distributed.make_worker_progress =
        [cells_total = spec.cell_count()](const std::string& worker_id) {
          return worker_progress(worker_id, cells_total);
        };
    auto swept = fi::run_distributed_sweep(spec, config, distributed);
    if (!swept.is_ok()) {
      std::cerr << "sweep: " << swept.status().to_string() << "\n";
      return 1;
    }
    std::cerr << "merged: " << swept.value().resumed
              << " cells from worker logs, " << swept.value().executed
              << " executed by the coordinator backstop\n";
    std::cout << report_of(swept.value());
    return 0;
  }

  // --- single process -------------------------------------------------------
  fi::SweepDriver driver(std::move(spec), config);
  auto meter = std::make_shared<ProgressMeter>(driver.spec().cell_count());
  driver.set_cell_progress([meter](const fi::SweepCellResult& cell) {
    meter->on_cell(!cell.resumed, cell.resumed ? 0 : cell.plan.runs);
    print_cell_line(std::cerr, "  ", *meter, cell.id, !cell.resumed,
                    cell.aggregate);
  });
  auto swept = driver.execute();
  if (!swept.is_ok()) {
    std::cerr << "sweep: " << swept.status().to_string() << "\n";
    return 1;
  }
  const fi::SweepResult& result = swept.value();
  std::cerr << result.executed << " cells executed, " << result.resumed
            << " resumed\n";
  print_pool_stats(std::cerr);
  print_logpipe_stats(std::cerr);

  // The report — and only the report — on stdout, so an interrupted+
  // resumed sweep can be diffed byte-for-byte against a fresh one.
  std::cout << report_of(result);
  return 0;
}
