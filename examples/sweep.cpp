// sweep: run the paper's full assessment grid — scenarios × fault
// intensities (rates) × boards — as one resumable campaign sweep.
//
// Each grid cell executes through the sharded CampaignExecutor; its run
// log streams to <logdir>/<cell>.runlog. Re-invoking with the same spec
// and logdir resumes: completed cells are rebuilt from their logs and
// skipped, and the final comparison report is byte-identical to an
// uninterrupted run's (the determinism the resume CI step diffs).
//
//   $ ./sweep --scenarios freertos-steady,dual-cell --rates 100,50 \
//             --runs 8 --logdir sweep-logs > report.txt
//   $ ./sweep --spec grid.sweep            # config-text spec file
//   $ ./sweep --spec -                     # spec from stdin
//
// The comparison report goes to stdout; progress goes to stderr, so the
// report can be redirected and diffed.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "core/sweep.hpp"
#include "core/testbed_pool.hpp"
#include "hypervisor/config_text.hpp"
#include "util/strings.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage: sweep [options]\n"
         "  --spec <file|->       sweep spec as config text (see README)\n"
         "  --scenarios a,b,...   scenario axis (ScenarioRegistry keys)\n"
         "  --rates n,m,...       fault-intensity axis (inject 1/N calls)\n"
         "  --boards a,b,...      board axis (optional; default: scenario's)\n"
         "  --runs N              runs per grid cell (default 8)\n"
         "  --seed S              base seed (decimal or 0x...)\n"
         "  --duration T          observation window ticks (default: plan's)\n"
         "  --tuning TEXT         cell tuning, ';'-separated lines\n"
         "  --logdir DIR          persist per-cell run logs; enables resume\n"
         "  --threads N           executor threads per cell (default: auto)\n"
         "  --no-snapshots        reset + reboot pooled testbeds per run\n"
         "                        instead of restoring post-boot snapshots\n"
         "flags override the spec file; the comparison report goes to\n"
         "stdout, progress to stderr\n";
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& part : mcs::util::split(text, ',')) {
    if (!mcs::util::trim(part).empty()) {
      out.emplace_back(mcs::util::trim(part));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;

  fi::SweepSpec spec;
  fi::ExecutorConfig config;
  bool have_spec = false;

  // Exit codes: 0 swept, 1 bad spec/flags, 2 unreadable spec input.
  // Strict numerics: the same vocabulary as the spec file, so "8q" is
  // rejected here exactly like it would be on a `runs 8q` line.
  const auto parse_number = [](const char* flag_name, const char* token,
                               std::uint64_t& out) {
    auto value = mcs::jh::parse_config_number(token);
    if (!value.is_ok()) {
      std::cerr << "sweep: bad " << flag_name << " '" << token << "'\n";
      return false;
    }
    out = value.value();
    return true;
  };

  // First pass: load the spec file (if any), so explicit flags override
  // it regardless of their position on the command line.
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      usage(std::cout);
      return 0;
    }
    if (flag != "--spec") continue;
    if (i + 1 >= argc) {
      std::cerr << "sweep: --spec needs a file\n";
      return 1;
    }
    const std::string path = argv[++i];
    std::string text;
    if (path == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      if (std::cin.bad()) {
        std::cerr << "sweep: error reading stdin\n";
        return 2;
      }
      text = buffer.str();
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "sweep: cannot open spec '" << path << "'\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      if (file.bad()) {
        std::cerr << "sweep: error reading spec '" << path << "'\n";
        return 2;
      }
      text = buffer.str();
    }
    auto parsed = fi::parse_sweep_spec(text);
    if (!parsed.is_ok()) {
      std::cerr << "sweep: spec: " << parsed.status().to_string() << "\n";
      return 1;
    }
    spec = std::move(parsed).value();
    have_spec = true;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* arg = nullptr;
    std::uint64_t number = 0;
    if (flag == "--spec" && (arg = value()) != nullptr) {
      // Handled by the first pass.
    } else if (flag == "--scenarios" && (arg = value()) != nullptr) {
      spec.scenarios = split_csv(arg);
    } else if (flag == "--rates" && (arg = value()) != nullptr) {
      spec.rates.clear();
      for (const std::string& token : split_csv(arg)) {
        if (!parse_number("rate", token.c_str(), number)) return 1;
        if (number == 0) {
          std::cerr << "sweep: bad rate '" << token << "' (need ≥ 1)\n";
          return 1;
        }
        spec.rates.push_back(static_cast<std::uint32_t>(number));
      }
    } else if (flag == "--boards" && (arg = value()) != nullptr) {
      spec.boards = split_csv(arg);
    } else if (flag == "--runs" && (arg = value()) != nullptr) {
      if (!parse_number("runs", arg, number)) return 1;
      spec.runs = static_cast<std::uint32_t>(number);
    } else if (flag == "--seed" && (arg = value()) != nullptr) {
      if (!parse_number("seed", arg, number)) return 1;
      spec.seed = number;
    } else if (flag == "--duration" && (arg = value()) != nullptr) {
      if (!parse_number("duration", arg, number)) return 1;
      spec.duration_ticks = number;
    } else if (flag == "--tuning" && (arg = value()) != nullptr) {
      spec.cell_tuning = arg;
      std::replace(spec.cell_tuning.begin(), spec.cell_tuning.end(), ';',
                   '\n');
    } else if (flag == "--logdir" && (arg = value()) != nullptr) {
      spec.log_dir = arg;
    } else if (flag == "--threads" && (arg = value()) != nullptr) {
      if (!parse_number("threads", arg, number)) return 1;
      config.threads = static_cast<unsigned>(number);
    } else if (flag == "--no-snapshots") {
      config.use_snapshots = false;
    } else {
      std::cerr << "sweep: unknown or incomplete flag '" << flag << "'\n";
      usage(std::cerr);
      return 1;
    }
  }

  if (spec.scenarios.empty() || spec.rates.empty()) {
    if (!have_spec) usage(std::cerr);
    std::cerr << "sweep: need at least one scenario and one rate\n";
    return 1;
  }

  std::cerr << "sweep '" << spec.name << "': " << spec.cell_count()
            << " grid cells × " << spec.runs << " runs, base seed 0x"
            << std::hex << spec.seed << std::dec;
  if (!spec.log_dir.empty()) std::cerr << ", logs in " << spec.log_dir;
  std::cerr << "\n";

  fi::SweepDriver driver(std::move(spec), config);
  driver.set_cell_progress([](const fi::SweepCellResult& cell) {
    std::cerr << "  " << cell.id << ": "
              << (cell.resumed ? "resumed from log" : "executed") << ", "
              << cell.aggregate.distribution.total() << " runs, "
              << cell.aggregate.cell_failures << " cell failures\n";
  });
  auto swept = driver.execute();
  if (!swept.is_ok()) {
    std::cerr << "sweep: " << swept.status().to_string() << "\n";
    return 1;
  }
  const fi::SweepResult& result = swept.value();
  std::cerr << result.executed << " cells executed, " << result.resumed
            << " resumed\n";
  const fi::TestbedPool::Stats pool = fi::TestbedPool::instance().stats();
  std::cerr << "pool: " << pool.creates << " built, " << pool.reuses
            << " reused; runs: " << pool.run_restores << " restored, "
            << pool.run_resets << " reset; " << pool.captures
            << " snapshots captured (" << pool.snapshot_bytes << " B, "
            << pool.dirty_pages << " dirty pages)\n";

  // The report — and only the report — on stdout, so an interrupted+
  // resumed sweep can be diffed byte-for-byte against a fresh one.
  std::vector<analysis::ComparisonColumn> columns;
  columns.reserve(result.cells.size());
  for (const fi::SweepCellResult& cell : result.cells) {
    columns.push_back({cell.id, cell.aggregate});
  }
  std::cout << analysis::render_comparison_report(
      columns, "Sweep comparison — " + result.spec.name);
  return 0;
}
