// cellctl: the `jailhouse` management CLI against the simulated board —
// parse a .cell text config (file argument or the built-in FreeRTOS one),
// create/start the cell, watch it, shut it down, destroy it, and export
// campaign-grade artefacts.
//
//   $ ./cellctl [config.cell]
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/trace.hpp"
#include "core/testbed.hpp"
#include "hypervisor/config_text.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  // 1. Obtain the cell config: file or built-in.
  jh::CellConfig config;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = jh::parse_cell_config(buffer.str());
    if (!parsed.is_ok()) {
      std::cerr << "config error: " << parsed.status() << "\n";
      return 1;
    }
    config = std::move(parsed).value();
  } else {
    config = jh::make_freertos_cell_config();
    std::cout << "(no config given; using the built-in FreeRTOS cell)\n";
  }
  std::cout << "parsed cell '" << config.name << "': " << config.cpus.size()
            << " cpu(s), " << config.mem_regions.size() << " region(s), "
            << config.irqs.size() << " irq(s)\n\n";

  // 2. Board + hypervisor + root cell.
  fi::Testbed testbed;
  if (const util::Status status = testbed.enable_hypervisor(); !status.is_ok()) {
    std::cerr << "enable failed: " << status << "\n";
    return 1;
  }
  testbed.hypervisor().register_config(fi::kFreeRtosConfigAddr, config);

  // 3. jailhouse cell create && jailhouse cell start.
  testbed.boot_freertos_cell();
  jh::Cell* cell = testbed.freertos_cell();
  if (cell == nullptr) {
    std::cerr << "cell create failed: "
              << testbed.linux_root().last_result(jh::Hypercall::CellCreate)
              << "\n";
    return 1;
  }
  std::cout << "$ jailhouse cell list\n";
  for (jh::Cell* c : testbed.hypervisor().cells()) {
    std::cout << "  " << c->id() << "  " << c->name() << "  "
              << jh::cell_state_name(c->state()) << "\n";
  }

  // 4. Let it run, report health.
  testbed.run(3'000);
  std::cout << "\nafter 3 s: USART bytes=" << testbed.board().uart1().total_bytes()
            << ", LED toggles=" << testbed.board().gpio().led_toggles()
            << ", stage-2 faults=" << cell->stage2_faults
            << ", hypercalls=" << cell->hypercalls << "\n";

  // 5. Clean teardown.
  testbed.shutdown_freertos_cell();
  std::cout << "\n$ jailhouse cell shutdown " << cell->name() << " -> "
            << jh::cell_state_name(testbed.freertos_cell()->state()) << "\n";
  testbed.destroy_freertos_cell();
  std::cout << "$ jailhouse cell destroy -> cells="
            << testbed.hypervisor().cells().size() << "\n";

  // 6. The config as this tool would archive it.
  std::cout << "\n-- archived config --------------------------------\n"
            << jh::to_text(config);
  return 0;
}
