// fault_campaign: configure and run a custom fault-injection campaign
// against the hypervisor, then print the analytics — the full Figure 2
// pipeline in ~40 lines of user code.
//
//   $ ./fault_campaign [runs] [rate] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/report.hpp"
#include "core/campaign.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  fi::TestPlan plan = fi::paper_medium_trap_plan();
  plan.runs = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 40;
  plan.rate = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                       : fi::kMediumRate;
  plan.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3]))
                       : 0xC0FFEEULL;
  // Paper-faithful 1-minute tests (60'000 board ticks).

  std::cout << "campaign: " << plan.name << " — " << plan.runs
            << " runs, inject 1/" << plan.rate << " calls, seed 0x" << std::hex
            << plan.seed << std::dec << "\n\n";

  fi::Campaign campaign(plan);
  campaign.set_progress([](std::uint32_t index, const fi::RunResult& run) {
    std::cout << fi::run_log_line(index, run) << "\n";
  });
  const fi::CampaignResult result = campaign.execute();

  std::cout << "\n" << analysis::render_distribution_table(result) << "\n";
  std::cout << analysis::render_latency_summary(result);
  return 0;
}
