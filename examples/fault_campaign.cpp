// fault_campaign: configure and run a fault-injection campaign against the
// hypervisor — scenario picked from the registry, runs sharded across
// executor threads, analytics from the streaming log sink — the full
// Figure 2 pipeline in ~60 lines of user code.
//
//   $ ./fault_campaign [scenario] [runs] [rate] [seed] [threads] [tuning]
//   $ ./fault_campaign --list           # show registered scenarios
//
// [tuning] parameterises the workload cell in the config-text vocabulary,
// ';'-separated, e.g. "ram 0x200000; console trapped".
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/report.hpp"
#include "core/executor.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  fi::ScenarioRegistry& registry = fi::ScenarioRegistry::instance();
  if (argc > 1 && std::string(argv[1]) == "--list") {
    std::cout << "registered scenarios:\n";
    for (const std::string& name : registry.names()) {
      std::cout << "  " << name << " — " << registry.find(name)->description()
                << "\n";
    }
    return 0;
  }

  const std::string scenario_name =
      argc > 1 ? argv[1] : std::string(fi::kDefaultScenario);
  fi::ScenarioRegistry::MakeOptions options;
  if (argc > 6) {
    options.cell_tuning = argv[6];
    std::replace(options.cell_tuning.begin(), options.cell_tuning.end(), ';',
                 '\n');
  }
  auto made = registry.make(scenario_name, options);
  if (!made.is_ok()) {
    std::cerr << made.status().to_string() << " (try --list)\n";
    return 1;
  }

  fi::TestPlan plan = made.value();
  plan.runs = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 40;
  plan.rate = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3]))
                       : fi::kMediumRate;
  // strtoull base 0: accepts both decimal and the documented 0x... form.
  plan.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 0) : 0xC0FFEEULL;
  // Paper-faithful 1-minute tests (60'000 board ticks).

  fi::ExecutorConfig config;
  config.threads = argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 0;

  std::cout << "campaign: " << plan.name << " — scenario " << plan.scenario
            << ", " << plan.runs << " runs, inject 1/" << plan.rate
            << " calls, seed 0x" << std::hex << plan.seed << std::dec;
  if (!plan.cell_tuning.empty()) std::cout << ", tuned cell";
  std::cout << "\n\n";

  // The sink streams run lines in order (whatever the shard completion
  // order was) and keeps the mergeable aggregates for the analytics.
  analysis::LogSink sink(std::cout);
  fi::CampaignExecutor executor(plan, config);
  executor.set_progress(
      [&sink](std::uint32_t index, const fi::RunResult& run) {
        sink.record(index, run);
      });
  const fi::CampaignResult result = executor.execute();

  const analysis::CampaignAggregate aggregate = sink.aggregate();
  std::cout << "\n"
            << analysis::render_distribution_table(aggregate.distribution)
            << "\n";
  std::cout << analysis::render_latency_summary(aggregate.detection_latency);
  std::cout << result.runs.size() << " runs, " << aggregate.injections
            << " injections total\n";
  return 0;
}
