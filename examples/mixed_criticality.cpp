// mixed_criticality: the consolidation scenario the paper's introduction
// motivates — a safety-critical RTOS partition and a general-purpose
// partition on one SoC, isolated by the partitioning hypervisor, talking
// through ivshmem — plus a live demonstration of the isolation boundary.
//
//   $ ./mixed_criticality
#include <iostream>

#include "core/testbed.hpp"
#include "hypervisor/ivshmem.hpp"

int main() {
  using namespace mcs;

  fi::Testbed testbed;
  if (const util::Status status = testbed.enable_hypervisor(); !status.is_ok()) {
    std::cerr << "enable failed: " << status << "\n";
    return 1;
  }
  testbed.boot_freertos_cell();
  testbed.run(2'000);

  jh::Cell* rtos_cell = testbed.freertos_cell();
  jh::Cell& root = testbed.hypervisor().root_cell();
  if (rtos_cell == nullptr) {
    std::cerr << "cell did not boot\n";
    return 1;
  }

  std::cout << "== partitions ==\n";
  for (jh::Cell* cell : testbed.hypervisor().cells()) {
    std::cout << "  [" << cell->id() << "] '" << cell->name()
              << "' cpus:";
    for (int cpu : cell->config().cpus) std::cout << " " << cpu;
    std::cout << " state=" << jh::cell_state_name(cell->state()) << "\n";
  }

  // --- isolation demo: the root cell must NOT be able to touch the RTOS
  // cell's RAM after the create-time carve-out (the Jailhouse "shrink").
  std::cout << "\n== isolation boundary ==\n";
  const util::Status poke = root.address_space().write_u32(
      jh::kFreeRtosRamBase + 0x1000, 0xdeadbeef);
  std::cout << "root write into RTOS cell RAM: "
            << (poke.is_ok() ? "ALLOWED (isolation broken!)" : poke.to_string())
            << "\n";
  const util::Status self_poke =
      rtos_cell->address_space().write_u32(jh::kFreeRtosRamBase + 0x1000, 42);
  std::cout << "RTOS cell write into its own RAM: "
            << (self_poke.is_ok() ? "ok" : self_poke.to_string()) << "\n";

  // --- ivshmem: the sanctioned channel between the two worlds. The
  // ROOTSHARED window is dedicated (carved from the root's pool mapping)
  // and then mapped into both cells.
  std::cout << "\n== ivshmem inter-cell channel ==\n";
  const mem::MemRegion shared = jh::make_ivshmem_region();
  (void)root.memory_map().carve_out_phys(shared.phys_start, shared.size);
  (void)root.memory_map().add_region(shared);
  (void)rtos_cell->memory_map().add_region(shared);

  jh::IvshmemChannel tx(root.address_space(), jh::kIvshmemBase, 4096);
  jh::IvshmemChannel rx(rtos_cell->address_space(), jh::kIvshmemBase, 4096);
  (void)tx.init();
  (void)tx.send_text("brake-assist parameters v7");
  (void)tx.ring_doorbell(testbed.board().gic(), 0, 1);

  auto message = rx.receive_text();
  std::cout << "root -> rtos message: "
            << (message.is_ok() ? "'" + message.value() + "'"
                                : message.status().to_string())
            << "\n";

  // --- graceful teardown through the management path.
  std::cout << "\n== lifecycle ==\n";
  testbed.shutdown_freertos_cell();
  std::cout << "after shutdown: cell state="
            << jh::cell_state_name(testbed.freertos_cell()->state())
            << ", cpu1 owner=cell "
            << testbed.hypervisor().cpu_owner(fi::Testbed::kFreeRtosCpu) << "\n";
  testbed.destroy_freertos_cell();
  std::cout << "after destroy: cells=" << testbed.hypervisor().cells().size()
            << ", root map regions=" << root.memory_map().regions().size()
            << "\n";
  return 0;
}
