// autosar_demo: an AUTOSAR-classic (OSEK) partition as the safety-critical
// payload — the §IV landscape (MICROSAR, AUTOSAR OS) recreated on the
// open-source partitioning hypervisor, then assessed with the same
// fault-injection methodology to show it is guest-agnostic.
//
//   $ ./autosar_demo [campaign_runs]   (default 15)
#include <cstdlib>
#include <iostream>

#include "analysis/report.hpp"
#include "core/executor.hpp"
#include "hypervisor/config_text.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  fi::Testbed testbed;
  if (const util::Status status = testbed.enable_hypervisor(); !status.is_ok()) {
    std::cerr << "enable failed: " << status << "\n";
    return 1;
  }

  // The cell config as the text artefact a deployment would version.
  std::cout << "== cell configuration (.cell text form) ==\n"
            << jh::to_text(jh::make_osek_cell_config()) << "\n";

  // Boot the OSEK cell through the root shell, like any inmate.
  testbed.boot_osek_cell();

  std::cout << "== 5 seconds of AUTOSAR-style operation ==\n";
  testbed.run(5'000);
  const guest::OsekImage& osek = testbed.osek();
  std::cout << "brake-pressure samples : " << osek.brake_samples()
            << " (10 ms task)\n";
  std::cout << "frames transmitted     : " << osek.frames_sent()
            << " (50 ms task)\n";
  std::cout << "watchdog kicks         : " << osek.wdg_kicks()
            << " (100 ms task)\n";
  std::cout << "plausibility errors    : " << osek.data_errors() << "\n\n";

  const auto lines = testbed.board().uart1().lines();
  std::cout << "last USART lines:\n";
  for (std::size_t i = lines.size() > 5 ? lines.size() - 5 : 0;
       i < lines.size(); ++i) {
    std::cout << "  | " << lines[i] << "\n";
  }

  // The same medium-intensity assessment, against the OSEK cell — the
  // "osek-cell" registry scenario gives every run a fresh testbed with the
  // AUTOSAR payload in the non-root partition.
  std::cout << "\n== medium-intensity campaign against the OSEK cell ==\n";
  fi::TestPlan plan =
      fi::find_scenario("osek-cell")->make_plan(fi::paper_medium_trap_plan());
  plan.runs = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 15;
  plan.duration_ticks = 10'000;
  plan.rate = 20;
  plan.seed = 2026;
  fi::CampaignExecutor executor(plan);
  const fi::CampaignResult result = executor.execute();
  std::cout << analysis::render_distribution_table(result) << "\n";

  std::cout << "same failure taxonomy as the FreeRTOS cell: the classes "
               "belong to the\nhypervisor's entry paths, not to the guest OS\n";
  return 0;
}
