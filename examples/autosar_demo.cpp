// autosar_demo: an AUTOSAR-classic (OSEK) partition as the safety-critical
// payload — the §IV landscape (MICROSAR, AUTOSAR OS) recreated on the
// open-source partitioning hypervisor, then assessed with the same
// fault-injection methodology to show it is guest-agnostic.
//
//   $ ./autosar_demo
#include <iostream>

#include "core/campaign.hpp"
#include "guests/osek_image.hpp"
#include "hypervisor/config_text.hpp"

int main() {
  using namespace mcs;

  fi::Testbed testbed;
  if (const util::Status status = testbed.enable_hypervisor(); !status.is_ok()) {
    std::cerr << "enable failed: " << status << "\n";
    return 1;
  }

  // The cell config as the text artefact a deployment would version.
  std::cout << "== cell configuration (.cell text form) ==\n"
            << jh::to_text(jh::make_freertos_cell_config()) << "\n";

  // Boot the cell, then swap the payload to the OSEK image.
  guest::OsekImage osek;
  testbed.boot_freertos_cell();
  testbed.machine().bind_guest(testbed.freertos_cell_id(), osek);
  testbed.shutdown_freertos_cell();
  testbed.linux_root().enqueue(
      {jh::Hypercall::CellSetLoadable, testbed.freertos_cell_id()});
  testbed.linux_root().cell_start(testbed.freertos_cell_id());
  testbed.run(30);

  std::cout << "== 5 seconds of AUTOSAR-style operation ==\n";
  testbed.run(5'000);
  std::cout << "brake-pressure samples : " << osek.brake_samples()
            << " (10 ms task)\n";
  std::cout << "frames transmitted     : " << osek.frames_sent()
            << " (50 ms task)\n";
  std::cout << "watchdog kicks         : " << osek.wdg_kicks()
            << " (100 ms task)\n";
  std::cout << "plausibility errors    : " << osek.data_errors() << "\n\n";

  const auto lines = testbed.board().uart1().lines();
  std::cout << "last USART lines:\n";
  for (std::size_t i = lines.size() > 5 ? lines.size() - 5 : 0;
       i < lines.size(); ++i) {
    std::cout << "  | " << lines[i] << "\n";
  }

  // The same medium-intensity assessment, against the OSEK cell.
  std::cout << "\n== medium-intensity injection against the OSEK cell ==\n";
  fi::TestPlan plan = fi::paper_medium_trap_plan();
  plan.rate = 20;
  plan.phase = 1;
  fi::Injector injector(plan, 2026, testbed.board().clock());
  injector.attach(testbed.hypervisor());
  testbed.run(10'000);
  injector.detach(testbed.hypervisor());

  const auto& cpu1 = testbed.board().cpu(1);
  std::cout << "injections: " << injector.injections() << "\n";
  if (testbed.hypervisor().is_panicked()) {
    std::cout << "outcome: panic park — " << testbed.hypervisor().panic_reason()
              << "\n";
  } else if (cpu1.is_parked()) {
    std::cout << "outcome: cpu park — " << cpu1.halt_reason() << "\n";
  } else {
    std::cout << "outcome: workload survived, " << osek.frames_sent()
              << " frames total\n";
  }
  std::cout << "\nsame failure taxonomy as the FreeRTOS cell: the classes "
               "belong to the\nhypervisor's entry paths, not to the guest OS\n";
  return 0;
}
