// seooc_report: run the paper's three campaigns (scaled down for a demo)
// and assemble the ISO 26262 SEooC evidence report — the artefact the
// whole methodology exists to produce.
//
//   $ ./seooc_report [runs_per_campaign]
#include <cstdlib>
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/seooc.hpp"
#include "core/campaign.hpp"

int main(int argc, char** argv) {
  using namespace mcs;
  const auto runs =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 25;

  const auto run_campaign = [&](fi::TestPlan plan,
                                std::uint64_t ticks) -> fi::CampaignResult {
    plan.runs = runs;
    plan.duration_ticks = ticks;
    std::cout << "running campaign '" << plan.name << "' (" << runs
              << " runs)...\n";
    fi::Campaign campaign(plan);
    return campaign.execute();
  };

  const fi::CampaignResult medium =
      run_campaign(fi::paper_medium_trap_plan(), fi::kOneMinuteTicks);
  const fi::CampaignResult high_root =
      run_campaign(fi::paper_high_root_hvc_plan(), 2'000);
  const fi::CampaignResult high_nonroot =
      run_campaign(fi::paper_high_nonroot_plan(), 2'000);

  std::cout << "\n"
            << analysis::render_distribution_chart(
                   medium, "Non-root cell availability, medium intensity")
            << "\n";

  const analysis::SeoocReport report =
      analysis::build_seooc_report(medium, high_root, high_nonroot);
  std::cout << report.to_text();
  return 0;
}
