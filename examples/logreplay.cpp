// logreplay: offline re-analysis of persisted campaign logs.
//
// The paper's framework writes each run "into a log file, which is
// further analyzed"; the executor's LogSink streams exactly those lines.
// This tool closes the loop: feed saved logs back through the zero-copy
// run-log scanner and rebuild the analytics — outcome distribution,
// detection-latency summary, recovery counts — with no live testbed and
// no re-execution. Files are served through util::MappedFile, so a
// multi-GB log replays without ever copying its bytes into the process.
//
// One log replays as the classic single-campaign analytics. Several logs
// (e.g. a sweep's per-cell files) merge into one side-by-side comparison
// report, one column per log.
//
//   $ ./fault_campaign dual-cell 64 > campaign.log
//   $ ./logreplay campaign.log
//   $ ./logreplay - < campaign.log        # read stdin
//   $ ./logreplay sweep-logs/*.runlog     # sweep comparison report
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/log_parser.hpp"
#include "analysis/log_sink.hpp"
#include "analysis/report.hpp"
#include "util/mapped_file.hpp"

namespace {

/// One loaded log: a mapped file (or an owned stdin slurp) plus the view
/// the scanner reads. The view is valid for this object's lifetime.
struct LoadedLog {
  mcs::util::MappedFile file;
  std::string stdin_text;
  std::string_view view;
};

// Exit codes: 0 replayed, 1 malformed/empty log, 2 unreadable input.
int read_log(const std::string& path, LoadedLog& log) {
  if (path == "-") {
    // Stdin is a pipe — not mappable; slurp it once.
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    if (std::cin.bad()) {
      std::cerr << "logreplay: error reading stdin\n";
      return 2;
    }
    log.stdin_text = buffer.str();
    log.view = log.stdin_text;
    return 0;
  }
  // MappedFile refuses directories, but with a generic EIo message —
  // keep the explicit check for the friendlier diagnostic.
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::cerr << "logreplay: '" << path << "' is a directory\n";
    return 2;
  }
  auto mapped = mcs::util::MappedFile::open(path);
  if (!mapped.is_ok()) {
    if (mapped.status().code() == mcs::util::Code::ENoEnt) {
      std::cerr << "logreplay: cannot open '" << path << "'\n";
    } else {
      std::cerr << "logreplay: error reading '" << path << "'\n";
    }
    return 2;
  }
  log.file = std::move(mapped).value();
  log.view = log.file.view();
  return 0;
}

/// Scan one log zero-copy; 0/1/2 like main's exit codes.
int scan_log(const std::string& path, mcs::analysis::RunLogScan& scan) {
  LoadedLog log;
  const int rc = read_log(path, log);
  if (rc != 0) return rc;
  if (log.view.empty()) {
    std::cerr << "logreplay: no data in '" << path
              << "' (empty file or unreadable path) — not a campaign log\n";
    return 1;
  }
  scan = mcs::analysis::scan_run_log(log.view);
  if (scan.entries == 0) {
    std::cerr << "logreplay: no run lines found in '" << path << "' ("
              << scan.skipped_lines
              << " non-run lines skipped) — is this a campaign log "
                 "(fault_campaign stdout)?\n";
    return 1;
  }
  if (scan.skipped_lines > 0) {
    // Headers/footers and record kinds from other writers are expected in
    // a full campaign capture; surface the count so nothing hides.
    std::cerr << "logreplay: note: " << path << ": " << scan.skipped_lines
              << " non-run lines skipped\n";
  }
  if (scan.malformed_lines > 0) {
    // A run line that would not parse — truncation, corruption. Replay
    // continues on what did parse, but the analytics are incomplete.
    std::cerr << "logreplay: warning: " << path << ": "
              << scan.malformed_lines << " malformed run lines dropped\n";
  }
  return 0;
}

/// Column label for a merged report: the file stem ("cell_r100.runlog" →
/// "cell_r100"), or "<stdin>" for the - pseudo-path.
std::string column_label(const std::string& path) {
  if (path == "-") return "<stdin>";
  return std::filesystem::path(path).stem().string();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;

  if (argc < 2 || std::string(argv[1]) == "--help") {
    std::cerr << "usage: logreplay <campaign.log | -> [more.log ...]\n"
                 "re-analyzes persisted campaign run logs offline; several\n"
                 "logs merge into one side-by-side comparison report\n";
    return argc >= 2 ? 0 : 1;
  }

  if (argc > 2) {
    // Merge mode: one comparison column per log, labelled by file stem.
    std::vector<analysis::ComparisonColumn> columns;
    for (int i = 1; i < argc; ++i) {
      analysis::RunLogScan scan;
      const int rc = scan_log(argv[i], scan);
      if (rc != 0) return rc;
      columns.push_back({column_label(argv[i]), scan.aggregate});
    }
    std::cout << analysis::render_comparison_report(
        columns, "Campaign comparison — " + std::to_string(columns.size()) +
                     " logs");
    return 0;
  }

  const std::string path = argv[1];
  analysis::RunLogScan scan;
  const int rc = scan_log(path, scan);
  if (rc != 0) return rc;

  // The scanner folded everything the live LogSink would have kept; the
  // failed-run count falls out of the distribution.
  const analysis::CampaignAggregate& aggregate = scan.aggregate;
  const std::uint64_t failures =
      aggregate.distribution.total() -
      aggregate.distribution.count(fi::Outcome::Correct);

  std::cout << scan.entries << " runs replayed from " << path << " ("
            << scan.skipped_lines << " non-run lines skipped)\n\n";
  std::cout << analysis::render_distribution_table(aggregate.distribution)
            << "\n";
  std::cout << analysis::render_latency_summary(aggregate.detection_latency);
  std::cout << aggregate.injections << " injections total; " << failures
            << " failed runs, " << aggregate.cell_failures
            << " cell failures, " << aggregate.reclaimed
            << " recovered by post-mortem shutdown\n";
  return 0;
}
