// logreplay: offline re-analysis of a persisted campaign log.
//
// The paper's framework writes each run "into a log file, which is
// further analyzed"; the executor's LogSink streams exactly those lines.
// This tool closes the loop: feed a saved log back through
// analysis::parse_run_log and rebuild the analytics — outcome
// distribution, detection-latency summary, recovery counts — with no
// live testbed and no re-execution.
//
//   $ ./fault_campaign dual-cell 64 > campaign.log
//   $ ./logreplay campaign.log
//   $ ./logreplay - < campaign.log        # read stdin
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/log_parser.hpp"
#include "analysis/log_sink.hpp"
#include "analysis/report.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  if (argc != 2 || std::string(argv[1]) == "--help") {
    std::cerr << "usage: logreplay <campaign.log | ->\n"
                 "re-analyzes a persisted campaign run log offline\n";
    return argc == 2 ? 0 : 1;
  }

  std::string text;
  const std::string path = argv[1];
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "logreplay: cannot open '" << path << "'\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  const analysis::ParsedRunLog parsed = analysis::parse_run_log(text);
  if (parsed.entries.empty()) {
    std::cerr << "logreplay: no run lines found ("
              << parsed.malformed_lines << " non-run lines skipped)\n";
    return 1;
  }

  // Rebuild the mergeable aggregates the live LogSink would have kept.
  analysis::RunningStats latency;
  std::uint64_t injections = 0;
  std::uint64_t failures = 0;
  std::uint64_t reclaimed = 0;
  for (const analysis::RunLogEntry& entry : parsed.entries) {
    injections += entry.injections;
    // Latency aggregates only over *detected* failures — the flag, not
    // the value, since same-tick detection legitimately reads 0 ms.
    if (entry.failure_detected) {
      latency.add(static_cast<double>(entry.detect_latency_ms));
    }
    if (entry.outcome != fi::Outcome::Correct) {
      ++failures;
      if (entry.shutdown_reclaimed) ++reclaimed;
    }
  }

  std::cout << parsed.entries.size() << " runs replayed from " << path << " ("
            << parsed.malformed_lines << " non-run lines skipped)\n\n";
  std::cout << analysis::render_distribution_table(parsed.distribution())
            << "\n";
  std::cout << analysis::render_latency_summary(latency);
  std::cout << injections << " injections total; " << failures
            << " failed runs, " << reclaimed
            << " recovered by post-mortem shutdown\n";
  return 0;
}
