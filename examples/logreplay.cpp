// logreplay: offline re-analysis of a persisted campaign log.
//
// The paper's framework writes each run "into a log file, which is
// further analyzed"; the executor's LogSink streams exactly those lines.
// This tool closes the loop: feed a saved log back through
// analysis::parse_run_log and rebuild the analytics — outcome
// distribution, detection-latency summary, recovery counts — with no
// live testbed and no re-execution.
//
//   $ ./fault_campaign dual-cell 64 > campaign.log
//   $ ./logreplay campaign.log
//   $ ./logreplay - < campaign.log        # read stdin
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/log_parser.hpp"
#include "analysis/log_sink.hpp"
#include "analysis/report.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  if (argc != 2 || std::string(argv[1]) == "--help") {
    std::cerr << "usage: logreplay <campaign.log | ->\n"
                 "re-analyzes a persisted campaign run log offline\n";
    return argc == 2 ? 0 : 1;
  }

  // Exit codes: 0 replayed, 1 malformed/empty log, 2 unreadable input.
  std::string text;
  const std::string path = argv[1];
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    if (std::cin.bad()) {
      std::cerr << "logreplay: error reading stdin\n";
      return 2;
    }
    text = buffer.str();
  } else {
    // ifstream::open happily opens a directory on Linux and the read
    // merely sets failbit, so catch that case explicitly.
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::cerr << "logreplay: '" << path << "' is a directory\n";
      return 2;
    }
    std::ifstream file(path);
    if (!file) {
      std::cerr << "logreplay: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    if (file.bad() || buffer.bad()) {
      // Opened but not readable (I/O error).
      std::cerr << "logreplay: error reading '" << path << "'\n";
      return 2;
    }
    text = buffer.str();
  }

  if (text.empty()) {
    std::cerr << "logreplay: no data in '" << path
              << "' (empty file or unreadable path) — not a campaign log\n";
    return 1;
  }

  const analysis::ParsedRunLog parsed = analysis::parse_run_log(text);
  if (parsed.entries.empty()) {
    std::cerr << "logreplay: no run lines found in '" << path << "' ("
              << parsed.malformed_lines
              << " non-run lines skipped) — is this a campaign log "
                 "(fault_campaign stdout)?\n";
    return 1;
  }
  if (parsed.malformed_lines > 0) {
    // Headers/footers are expected in a full campaign capture; still
    // surface the count so truncated or mangled logs are noticed.
    std::cerr << "logreplay: note: " << parsed.malformed_lines
              << " non-run lines skipped\n";
  }

  // Rebuild the mergeable aggregates the live LogSink would have kept.
  analysis::RunningStats latency;
  std::uint64_t injections = 0;
  std::uint64_t failures = 0;
  std::uint64_t reclaimed = 0;
  for (const analysis::RunLogEntry& entry : parsed.entries) {
    injections += entry.injections;
    // Latency aggregates only over *detected* failures — the flag, not
    // the value, since same-tick detection legitimately reads 0 ms.
    if (entry.failure_detected) {
      latency.add(static_cast<double>(entry.detect_latency_ms));
    }
    if (entry.outcome != fi::Outcome::Correct) {
      ++failures;
      if (entry.shutdown_reclaimed) ++reclaimed;
    }
  }

  std::cout << parsed.entries.size() << " runs replayed from " << path << " ("
            << parsed.malformed_lines << " non-run lines skipped)\n\n";
  std::cout << analysis::render_distribution_table(parsed.distribution())
            << "\n";
  std::cout << analysis::render_latency_summary(latency);
  std::cout << injections << " injections total; " << failures
            << " failed runs, " << reclaimed
            << " recovered by post-mortem shutdown\n";
  return 0;
}
