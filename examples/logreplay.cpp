// logreplay: offline re-analysis of persisted campaign logs.
//
// The paper's framework writes each run "into a log file, which is
// further analyzed"; the executor's LogSink streams exactly those lines.
// This tool closes the loop: feed saved logs back through
// analysis::parse_run_log and rebuild the analytics — outcome
// distribution, detection-latency summary, recovery counts — with no
// live testbed and no re-execution.
//
// One log replays as the classic single-campaign analytics. Several logs
// (e.g. a sweep's per-cell files) merge into one side-by-side comparison
// report, one column per log.
//
//   $ ./fault_campaign dual-cell 64 > campaign.log
//   $ ./logreplay campaign.log
//   $ ./logreplay - < campaign.log        # read stdin
//   $ ./logreplay sweep-logs/*.runlog     # sweep comparison report
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/log_parser.hpp"
#include "analysis/log_sink.hpp"
#include "analysis/report.hpp"

namespace {

// Exit codes: 0 replayed, 1 malformed/empty log, 2 unreadable input.
int read_log(const std::string& path, std::string& text) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    if (std::cin.bad()) {
      std::cerr << "logreplay: error reading stdin\n";
      return 2;
    }
    text = buffer.str();
    return 0;
  }
  // ifstream::open happily opens a directory on Linux and the read
  // merely sets failbit, so catch that case explicitly.
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::cerr << "logreplay: '" << path << "' is a directory\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::cerr << "logreplay: cannot open '" << path << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad() || buffer.bad()) {
    // Opened but not readable (I/O error).
    std::cerr << "logreplay: error reading '" << path << "'\n";
    return 2;
  }
  text = buffer.str();
  return 0;
}

/// Parse one log into run entries; 0/1/2 like main's exit codes.
int parse_log(const std::string& path, mcs::analysis::ParsedRunLog& parsed) {
  std::string text;
  const int rc = read_log(path, text);
  if (rc != 0) return rc;
  if (text.empty()) {
    std::cerr << "logreplay: no data in '" << path
              << "' (empty file or unreadable path) — not a campaign log\n";
    return 1;
  }
  parsed = mcs::analysis::parse_run_log(text);
  if (parsed.entries.empty()) {
    std::cerr << "logreplay: no run lines found in '" << path << "' ("
              << parsed.skipped_lines
              << " non-run lines skipped) — is this a campaign log "
                 "(fault_campaign stdout)?\n";
    return 1;
  }
  if (parsed.skipped_lines > 0) {
    // Headers/footers and record kinds from other writers are expected in
    // a full campaign capture; surface the count so nothing hides.
    std::cerr << "logreplay: note: " << path << ": " << parsed.skipped_lines
              << " non-run lines skipped\n";
  }
  if (parsed.malformed_lines > 0) {
    // A run line that would not parse — truncation, corruption. Replay
    // continues on what did parse, but the analytics are incomplete.
    std::cerr << "logreplay: warning: " << path << ": "
              << parsed.malformed_lines << " malformed run lines dropped\n";
  }
  return 0;
}

/// Column label for a merged report: the file stem ("cell_r100.runlog" →
/// "cell_r100"), or "<stdin>" for the - pseudo-path.
std::string column_label(const std::string& path) {
  if (path == "-") return "<stdin>";
  return std::filesystem::path(path).stem().string();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;

  if (argc < 2 || std::string(argv[1]) == "--help") {
    std::cerr << "usage: logreplay <campaign.log | -> [more.log ...]\n"
                 "re-analyzes persisted campaign run logs offline; several\n"
                 "logs merge into one side-by-side comparison report\n";
    return argc >= 2 ? 0 : 1;
  }

  if (argc > 2) {
    // Merge mode: one comparison column per log, labelled by file stem.
    std::vector<analysis::ComparisonColumn> columns;
    for (int i = 1; i < argc; ++i) {
      analysis::ParsedRunLog parsed;
      const int rc = parse_log(argv[i], parsed);
      if (rc != 0) return rc;
      columns.push_back(
          {column_label(argv[i]), analysis::aggregate_from_log(parsed)});
    }
    std::cout << analysis::render_comparison_report(
        columns, "Campaign comparison — " + std::to_string(columns.size()) +
                     " logs");
    return 0;
  }

  const std::string path = argv[1];
  analysis::ParsedRunLog parsed;
  const int rc = parse_log(path, parsed);
  if (rc != 0) return rc;

  // Rebuild the mergeable aggregates the live LogSink would have kept.
  const analysis::CampaignAggregate aggregate =
      analysis::aggregate_from_log(parsed);
  std::uint64_t failures = 0;
  for (const analysis::RunLogEntry& entry : parsed.entries) {
    if (entry.outcome != fi::Outcome::Correct) ++failures;
  }

  std::cout << parsed.entries.size() << " runs replayed from " << path << " ("
            << parsed.skipped_lines << " non-run lines skipped)\n\n";
  std::cout << analysis::render_distribution_table(aggregate.distribution)
            << "\n";
  std::cout << analysis::render_latency_summary(aggregate.detection_latency);
  std::cout << aggregate.injections << " injections total; " << failures
            << " failed runs, " << aggregate.cell_failures
            << " cell failures, " << aggregate.reclaimed
            << " recovered by post-mortem shutdown\n";
  return 0;
}
