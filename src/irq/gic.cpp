#include "irq/gic.hpp"

#include <algorithm>
#include <bit>

namespace mcs::irq {

Gic::Gic(int num_cpus) : num_cpus_(std::clamp(num_cpus, 1, kMaxCpus)) {
  reset();
}

void Gic::reset() noexcept {
  for (Line& line : lines_) line = Line{};
  for (PendingBits& bits : pending_bits_) bits.fill(0);
  priority_mask_.fill(kIdlePriority);  // everything unmasked by default
  // Banked per-CPU lines (SGIs and PPIs) come out of reset enabled at a
  // mid-range priority — the state Linux/Jailhouse leave them in before
  // any guest runs, folded into reset for the functional model.
  for (IrqId irq = 0; irq < kFirstSpi; ++irq) {
    lines_[irq].enabled = true;
    lines_[irq].priority = kDefaultPriority;
  }
}

util::Status Gic::check_irq(IrqId irq) const {
  if (irq >= kNumIrqs) {
    return util::invalid_argument("irq id out of range: " + std::to_string(irq));
  }
  return util::ok_status();
}

util::Status Gic::check_cpu(int cpu) const {
  if (cpu < 0 || cpu >= num_cpus_) {
    return util::invalid_argument("cpu out of range: " + std::to_string(cpu));
  }
  return util::ok_status();
}

util::Status Gic::enable(IrqId irq) {
  MCS_RETURN_IF_ERROR(check_irq(irq));
  lines_[irq].enabled = true;
  // A line enabled while still at the idle priority would be deliverable
  // never; give it the reset default (guests may override via IPRIORITYR).
  if (lines_[irq].priority == kIdlePriority) {
    lines_[irq].priority = kDefaultPriority;
  }
  return util::ok_status();
}

util::Status Gic::disable(IrqId irq) {
  MCS_RETURN_IF_ERROR(check_irq(irq));
  lines_[irq].enabled = false;
  return util::ok_status();
}

bool Gic::is_enabled(IrqId irq) const noexcept {
  return irq < kNumIrqs && lines_[irq].enabled;
}

util::Status Gic::set_priority(IrqId irq, std::uint8_t priority) {
  MCS_RETURN_IF_ERROR(check_irq(irq));
  lines_[irq].priority = priority;
  return util::ok_status();
}

std::uint8_t Gic::priority(IrqId irq) const noexcept {
  return irq < kNumIrqs ? lines_[irq].priority : kIdlePriority;
}

util::Status Gic::set_target(IrqId irq, int cpu) {
  MCS_RETURN_IF_ERROR(check_irq(irq));
  MCS_RETURN_IF_ERROR(check_cpu(cpu));
  if (!is_spi(irq)) {
    return util::invalid_argument("only SPIs are routable");
  }
  lines_[irq].target = cpu;
  return util::ok_status();
}

int Gic::target(IrqId irq) const noexcept {
  return irq < kNumIrqs ? lines_[irq].target : 0;
}

util::Status Gic::raise_spi(IrqId irq) {
  // Valid-wiring fast path first: peripherals assert their line on every
  // event, so don't pay the Status validation round-trips per raise.
  if (is_spi(irq)) [[likely]] {
    mark_pending(lines_[irq].target, irq);
    return util::ok_status();
  }
  MCS_RETURN_IF_ERROR(check_irq(irq));
  return util::invalid_argument("not an SPI");
}

util::Status Gic::raise_ppi(int cpu, IrqId irq) {
  // The timer raises a PPI every guest tick — same fast path as SPIs.
  if (is_ppi(irq) && cpu >= 0 && cpu < num_cpus_) [[likely]] {
    mark_pending(cpu, irq);
    return util::ok_status();
  }
  MCS_RETURN_IF_ERROR(check_irq(irq));
  MCS_RETURN_IF_ERROR(check_cpu(cpu));
  return util::invalid_argument("not a PPI");
}

util::Status Gic::send_sgi(int source_cpu, int target_cpu, IrqId irq) {
  if (is_sgi(irq) && source_cpu >= 0 && source_cpu < num_cpus_ &&
      target_cpu >= 0 && target_cpu < num_cpus_) [[likely]] {
    mark_pending(target_cpu, irq);
    return util::ok_status();
  }
  MCS_RETURN_IF_ERROR(check_cpu(source_cpu));
  MCS_RETURN_IF_ERROR(check_cpu(target_cpu));
  return util::invalid_argument("not an SGI");
}

void Gic::set_priority_mask(int cpu, std::uint8_t mask) noexcept {
  if (cpu >= 0 && cpu < num_cpus_) {
    priority_mask_[static_cast<std::size_t>(cpu)] = mask;
  }
}

std::uint8_t Gic::priority_mask(int cpu) const noexcept {
  return (cpu >= 0 && cpu < num_cpus_)
             ? priority_mask_[static_cast<std::size_t>(cpu)]
             : kIdlePriority;
}

IrqId Gic::peek(int cpu) const noexcept {
  if (cpu < 0 || cpu >= num_cpus_) return kSpuriousIrq;
  const auto cpu_index = static_cast<std::size_t>(cpu);
  IrqId best = kSpuriousIrq;
  std::uint8_t best_priority = kIdlePriority;
  // Walk only the pending lines (ascending id, so an equal-priority later
  // hit never displaces an earlier one — same best as the full scan).
  for (std::size_t word = 0; word < kPendingWords; ++word) {
    std::uint64_t bits = pending_bits_[cpu_index][word];
    while (bits != 0) {
      const auto irq =
          static_cast<IrqId>(word * 64 + static_cast<unsigned>(std::countr_zero(bits)));
      bits &= bits - 1;
      const Line& line = lines_[irq];
      if (!line.enabled || line.active[cpu_index]) continue;
      if (line.priority >= priority_mask_[cpu_index]) continue;  // masked
      if (line.priority < best_priority) {
        best = irq;
        best_priority = line.priority;
      }
    }
  }
  return best;
}

IrqId Gic::acknowledge(int cpu) noexcept {
  const IrqId irq = peek(cpu);
  if (irq == kSpuriousIrq) return kSpuriousIrq;
  const auto cpu_index = static_cast<std::size_t>(cpu);
  clear_pending(cpu, irq);
  Line& line = lines_[irq];
  line.active[cpu_index] = true;
  ++line.delivered;
  return irq;
}

util::Status Gic::end_of_interrupt(int cpu, IrqId irq) {
  MCS_RETURN_IF_ERROR(check_irq(irq));
  MCS_RETURN_IF_ERROR(check_cpu(cpu));
  Line& line = lines_[irq];
  const auto cpu_index = static_cast<std::size_t>(cpu);
  if (!line.active[cpu_index]) {
    return util::invalid_argument("EOI for non-active irq " + std::to_string(irq));
  }
  line.active[cpu_index] = false;
  return util::ok_status();
}

bool Gic::is_pending(IrqId irq, int cpu) const noexcept {
  return irq < kNumIrqs && cpu >= 0 && cpu < num_cpus_ &&
         lines_[irq].pending[static_cast<std::size_t>(cpu)];
}

bool Gic::is_active(IrqId irq, int cpu) const noexcept {
  return irq < kNumIrqs && cpu >= 0 && cpu < num_cpus_ &&
         lines_[irq].active[static_cast<std::size_t>(cpu)];
}

void Gic::reset_cpu(int cpu) noexcept {
  if (cpu < 0 || cpu >= num_cpus_) return;
  const auto cpu_index = static_cast<std::size_t>(cpu);
  for (Line& line : lines_) {
    line.pending[cpu_index] = false;
    line.active[cpu_index] = false;
  }
  pending_bits_[cpu_index].fill(0);
}

void Gic::rebuild_pending_bits() noexcept {
  for (PendingBits& bits : pending_bits_) bits.fill(0);
  for (IrqId irq = 0; irq < kNumIrqs; ++irq) {
    for (int cpu = 0; cpu < num_cpus_; ++cpu) {
      if (lines_[irq].pending[static_cast<std::size_t>(cpu)]) {
        pending_bits_[static_cast<std::size_t>(cpu)][irq / 64] |=
            std::uint64_t{1} << (irq % 64);
      }
    }
  }
}

std::uint64_t Gic::delivered(IrqId irq) const noexcept {
  return irq < kNumIrqs ? lines_[irq].delivered : 0;
}

}  // namespace mcs::irq
