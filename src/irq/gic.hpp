// GIC-400-style interrupt controller model (the Cortex-A7's GIC).
//
// Models the subset the hypervisor's `irqchip_handle_irq()` path needs:
// a distributor with per-line enable/pending/priority/target state and a
// per-CPU interface with acknowledge/EOI and a priority mask. Line ids
// follow the architecture: SGI 0-15 (per-CPU software interrupts), PPI
// 16-31 (per-CPU peripherals, e.g. the virtual timer), SPI 32+ (shared
// peripherals — UART, GPIO...). Acknowledge returns 1023 when nothing is
// pending ("spurious"), exactly what a corrupted vector number defaults to
// in the paper's profiling rationale for excluding the IRQ handler.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/status.hpp"

namespace mcs::irq {

using IrqId = std::uint32_t;

inline constexpr IrqId kFirstPpi = 16;
inline constexpr IrqId kFirstSpi = 32;
inline constexpr IrqId kNumIrqs = 128;
inline constexpr IrqId kSpuriousIrq = 1023;
inline constexpr int kMaxCpus = 8;
inline constexpr std::uint8_t kIdlePriority = 0xff;
inline constexpr std::uint8_t kDefaultPriority = 0xa0;

[[nodiscard]] constexpr bool is_sgi(IrqId irq) noexcept { return irq < kFirstPpi; }
[[nodiscard]] constexpr bool is_ppi(IrqId irq) noexcept {
  return irq >= kFirstPpi && irq < kFirstSpi;
}
[[nodiscard]] constexpr bool is_spi(IrqId irq) noexcept {
  return irq >= kFirstSpi && irq < kNumIrqs;
}

/// Distributor + CPU-interface state for up to kMaxCpus cores.
class Gic {
 public:
  explicit Gic(int num_cpus);

  [[nodiscard]] int num_cpus() const noexcept { return num_cpus_; }

  // --- distributor ------------------------------------------------------
  util::Status enable(IrqId irq);
  util::Status disable(IrqId irq);
  [[nodiscard]] bool is_enabled(IrqId irq) const noexcept;

  /// Priority: 0 = highest, 0xff = idle/lowest.
  util::Status set_priority(IrqId irq, std::uint8_t priority);
  [[nodiscard]] std::uint8_t priority(IrqId irq) const noexcept;

  /// Route an SPI to a CPU (single-target model, like Jailhouse's setup).
  util::Status set_target(IrqId irq, int cpu);
  [[nodiscard]] int target(IrqId irq) const noexcept;

  /// Assert a peripheral line (SPI) or per-CPU line (PPI needs the cpu).
  util::Status raise_spi(IrqId irq);
  util::Status raise_ppi(int cpu, IrqId irq);

  /// Software-generated interrupt from `source_cpu` to `target_cpu`.
  util::Status send_sgi(int source_cpu, int target_cpu, IrqId irq);

  // --- CPU interface ----------------------------------------------------
  /// Mask on the CPU interface: only priorities strictly below pass.
  void set_priority_mask(int cpu, std::uint8_t mask) noexcept;
  [[nodiscard]] std::uint8_t priority_mask(int cpu) const noexcept;

  /// Highest-priority pending enabled interrupt for `cpu`, without
  /// acknowledging it.
  [[nodiscard]] IrqId peek(int cpu) const noexcept;

  /// Acknowledge: pending → active, returns the line id (or spurious).
  [[nodiscard]] IrqId acknowledge(int cpu) noexcept;

  /// End of interrupt: active → idle. EINVAL if not active on this cpu.
  util::Status end_of_interrupt(int cpu, IrqId irq);

  [[nodiscard]] bool is_pending(IrqId irq, int cpu) const noexcept;
  [[nodiscard]] bool is_active(IrqId irq, int cpu) const noexcept;

  /// True iff `cpu` has any deliverable interrupt (drives the vIRQ wire).
  [[nodiscard]] bool irq_line(int cpu) const noexcept { return peek(cpu) != kSpuriousIrq; }

  // --- fault injection --------------------------------------------------
  /// Assert `irq` pending on `cpu` regardless of line type or routing
  /// (spurious-delivery fault). Out-of-range arguments are ignored. Keeps
  /// the pending-bitmap mirror coherent, so peek()/acknowledge() see the
  /// corruption immediately and snapshots restore it faithfully.
  void force_pending(int cpu, IrqId irq) noexcept {
    if (irq < kNumIrqs && cpu >= 0 && cpu < num_cpus_) mark_pending(cpu, irq);
  }

  /// Drop a pending assertion of `irq` on `cpu` (lost-interrupt fault).
  /// Out-of-range arguments are ignored; the mirror stays coherent.
  void squash_pending(int cpu, IrqId irq) noexcept {
    if (irq < kNumIrqs && cpu >= 0 && cpu < num_cpus_) clear_pending(cpu, irq);
  }

  /// Drop all pending/active state for a CPU (cell destruction reclaim).
  void reset_cpu(int cpu) noexcept;

  /// Full power-on restore: distributor line state (enable/priority/
  /// target), per-CPU pending/active, delivery counters and priority
  /// masks all back to the post-construction defaults. Board::reset uses
  /// this so a reused board's irqchip is indistinguishable from new.
  void reset() noexcept;

  // --- statistics -------------------------------------------------------
  [[nodiscard]] std::uint64_t delivered(IrqId irq) const noexcept;

  // --- snapshot / restore (testbed warm-start) --------------------------
  struct Snapshot;
  void snapshot_to(Snapshot& out) const noexcept;
  void restore_from(const Snapshot& snapshot) noexcept;

 private:
  struct Line {
    bool enabled = false;
    std::uint8_t priority = kIdlePriority;
    int target = 0;                     // SPI routing
    std::array<bool, kMaxCpus> pending{};  // per-CPU for SGI/PPI; [target] for SPI
    std::array<bool, kMaxCpus> active{};
    std::uint64_t delivered = 0;
  };

  /// Per-CPU pending summary: bit `irq` mirrors lines_[irq].pending[cpu].
  /// peek() visits only set bits, so the machine's once-per-tick-per-CPU
  /// "anything deliverable?" poll costs two word compares when quiescent
  /// instead of a scan over all kNumIrqs lines. Every site that writes a
  /// Line's pending flag keeps the mirror in sync; restore_from rebuilds
  /// it from the lines (the snapshot stays plain Line state).
  static constexpr std::size_t kPendingWords = (kNumIrqs + 63) / 64;
  using PendingBits = std::array<std::uint64_t, kPendingWords>;

  void mark_pending(int cpu, IrqId irq) noexcept {
    lines_[irq].pending[static_cast<std::size_t>(cpu)] = true;
    pending_bits_[static_cast<std::size_t>(cpu)][irq / 64] |=
        std::uint64_t{1} << (irq % 64);
  }
  void clear_pending(int cpu, IrqId irq) noexcept {
    lines_[irq].pending[static_cast<std::size_t>(cpu)] = false;
    pending_bits_[static_cast<std::size_t>(cpu)][irq / 64] &=
        ~(std::uint64_t{1} << (irq % 64));
  }
  void rebuild_pending_bits() noexcept;

  [[nodiscard]] util::Status check_irq(IrqId irq) const;
  [[nodiscard]] util::Status check_cpu(int cpu) const;

  int num_cpus_;
  std::array<Line, kNumIrqs> lines_{};
  std::array<std::uint8_t, kMaxCpus> priority_mask_{};
  std::array<PendingBits, kMaxCpus> pending_bits_{};
};

/// The whole distributor + CPU-interface state, trivially copyable —
/// capture and restore are plain struct assignments.
struct Gic::Snapshot {
  std::array<Line, kNumIrqs> lines{};
  std::array<std::uint8_t, kMaxCpus> priority_mask{};
};

inline void Gic::snapshot_to(Snapshot& out) const noexcept {
  out.lines = lines_;
  out.priority_mask = priority_mask_;
}

inline void Gic::restore_from(const Snapshot& snapshot) noexcept {
  lines_ = snapshot.lines;
  priority_mask_ = snapshot.priority_mask;
  rebuild_pending_bits();
}

}  // namespace mcs::irq
