// Log-file round trip: the paper's framework writes results "into a log
// file, which is further analyzed". EventLog::to_text() is that file;
// this parser reads it back so analytics can run offline, detached from
// the live testbed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/log_sink.hpp"
#include "core/outcome.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace mcs::analysis {

/// Parse one "[123ms] LEVEL component/cpuN: message" line.
[[nodiscard]] util::Expected<util::LogRecord> parse_log_line(std::string_view line);

/// Parse a whole log file; malformed lines are skipped and counted.
struct ParsedLog {
  std::vector<util::LogRecord> records;
  std::size_t malformed_lines = 0;

  /// Records from a component, at or above a severity.
  [[nodiscard]] std::vector<const util::LogRecord*> select(
      std::string_view component, util::Severity at_least) const;

  /// First record whose message contains the needle, or nullptr.
  [[nodiscard]] const util::LogRecord* find_first(std::string_view needle) const;
};

[[nodiscard]] ParsedLog parse_log_text(std::string_view text);

// ---------------------------------------------------------------------------
// Campaign run-log round trip: the per-run lines the LogSink streams
// ("run N: outcome — detail (injections=…, usart_bytes=…)") parsed back,
// so the analytics (distributions, recovery counts) can be rebuilt from
// the log file alone, detached from the live campaign.
//
// Two tiers share one line grammar:
//   · the *materialising* tier (RunLogEntry / parse_run_log) copies each
//     entry out of the text — what offline tooling that inspects
//     individual runs wants;
//   · the *zero-copy* tier (RunLogEntryView / scan_run_log) keeps
//     string_views into the caller's buffer and folds straight into a
//     CampaignAggregate — no per-line copy, no per-line allocation. The
//     resume and replay hot paths (cell_log_complete, logreplay, the
//     sweepd merge) run on this tier over util::MappedFile views.
// A differential property suite pins the two tiers entry-for-entry and
// bit-for-bit on the folded aggregates.
// ---------------------------------------------------------------------------

/// One parsed run line, zero-copy: `detail` points into the parsed
/// buffer and is valid only as long as that buffer.
struct RunLogEntryView {
  std::uint32_t index = 0;
  fi::Outcome outcome = fi::Outcome::Correct;
  std::string_view detail;
  /// The `domain=` field; absent (pre-refactor logs, register campaigns)
  /// parses as Register, matching what run_log_line() omits.
  fi::FaultDomain domain = fi::FaultDomain::Register;
  std::uint64_t injections = 0;
  std::uint64_t uart_bytes = 0;
  /// The line carried a detect_latency field, i.e. the run's failure was
  /// detected. Same-tick detection prints (and parses back) 0 ms, so this
  /// flag — not the value — distinguishes "detected instantly" from "not
  /// detected": latency analytics must aggregate only flagged entries,
  /// like the live CampaignAggregate does.
  bool failure_detected = false;
  std::uint64_t detect_latency_ms = 0;  ///< 0 when the line carries none
  bool shutdown_reclaimed = false;
};

/// The materialised form of RunLogEntryView (detail copied out).
struct RunLogEntry {
  std::uint32_t index = 0;
  fi::Outcome outcome = fi::Outcome::Correct;
  std::string detail;
  fi::FaultDomain domain = fi::FaultDomain::Register;
  std::uint64_t injections = 0;
  std::uint64_t uart_bytes = 0;
  bool failure_detected = false;
  std::uint64_t detect_latency_ms = 0;
  bool shutdown_reclaimed = false;
};

/// Parse one run_log_line() without copying; error status on shape
/// mismatch. Allocation-free on the success path.
[[nodiscard]] util::Expected<RunLogEntryView> parse_run_log_line_view(
    std::string_view line);

/// Parse one run_log_line(); error status on shape mismatch.
[[nodiscard]] util::Expected<RunLogEntry> parse_run_log_line(std::string_view line);

struct ParsedRunLog {
  std::vector<RunLogEntry> entries;
  /// Lines that claimed to be run records ("run " prefix) but failed to
  /// parse — truncation, corruption. A resumable log must have none.
  std::size_t malformed_lines = 0;
  /// Non-run lines skipped wholesale: record kinds this parser does not
  /// recognize (newer writers interleaving other records, annotations).
  /// Counted, not fatal, so replay of a mixed log degrades gracefully in
  /// both directions — old parser on new logs and vice versa.
  std::size_t skipped_lines = 0;

  /// Rebuild the Figure-3 unit of aggregation from the parsed entries.
  [[nodiscard]] fi::OutcomeDistribution distribution() const;
};

[[nodiscard]] ParsedRunLog parse_run_log(std::string_view text);

/// Rebuild the live LogSink's CampaignAggregate from a persisted run log,
/// folding entries in file order (= run order). Because the sink also
/// folds in run order, the rebuilt aggregate is bit-identical — including
/// the floating-point latency stats — to the one the live campaign kept,
/// for any executor thread count. This is the campaign-resume primitive:
/// a completed cell's aggregate can be recovered from its log file alone.
[[nodiscard]] CampaignAggregate aggregate_from_log(const ParsedRunLog& log);

/// Everything the resume path needs from one pass over a run log,
/// without materialising a single entry.
struct RunLogScan {
  /// Entries folded in file order — bit-identical to
  /// aggregate_from_log(parse_run_log(text)), and therefore to the live
  /// sink's aggregate for a complete log.
  CampaignAggregate aggregate;
  std::uint64_t entries = 0;          ///< well-formed run lines folded
  std::size_t malformed_lines = 0;    ///< like ParsedRunLog
  std::size_t skipped_lines = 0;      ///< like ParsedRunLog
  /// Every entry's index equalled its position (0, 1, 2, …): the
  /// completeness shape cell resume requires, checked inline so the
  /// indices never need storing.
  bool indices_sequential = true;
};

/// One zero-copy pass over a whole run log: parse each line in place and
/// fold it straight into the aggregate. No per-line copies or heap
/// allocations — safe to point at a multi-GB util::MappedFile view.
[[nodiscard]] RunLogScan scan_run_log(std::string_view text);

}  // namespace mcs::analysis
