// Log-file round trip: the paper's framework writes results "into a log
// file, which is further analyzed". EventLog::to_text() is that file;
// this parser reads it back so analytics can run offline, detached from
// the live testbed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/log.hpp"
#include "util/status.hpp"

namespace mcs::analysis {

/// Parse one "[123ms] LEVEL component/cpuN: message" line.
[[nodiscard]] util::Expected<util::LogRecord> parse_log_line(std::string_view line);

/// Parse a whole log file; malformed lines are skipped and counted.
struct ParsedLog {
  std::vector<util::LogRecord> records;
  std::size_t malformed_lines = 0;

  /// Records from a component, at or above a severity.
  [[nodiscard]] std::vector<const util::LogRecord*> select(
      std::string_view component, util::Severity at_least) const;

  /// First record whose message contains the needle, or nullptr.
  [[nodiscard]] const util::LogRecord* find_first(std::string_view needle) const;
};

[[nodiscard]] ParsedLog parse_log_text(std::string_view text);

}  // namespace mcs::analysis
