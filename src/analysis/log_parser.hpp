// Log-file round trip: the paper's framework writes results "into a log
// file, which is further analyzed". EventLog::to_text() is that file;
// this parser reads it back so analytics can run offline, detached from
// the live testbed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/log_sink.hpp"
#include "core/outcome.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace mcs::analysis {

/// Parse one "[123ms] LEVEL component/cpuN: message" line.
[[nodiscard]] util::Expected<util::LogRecord> parse_log_line(std::string_view line);

/// Parse a whole log file; malformed lines are skipped and counted.
struct ParsedLog {
  std::vector<util::LogRecord> records;
  std::size_t malformed_lines = 0;

  /// Records from a component, at or above a severity.
  [[nodiscard]] std::vector<const util::LogRecord*> select(
      std::string_view component, util::Severity at_least) const;

  /// First record whose message contains the needle, or nullptr.
  [[nodiscard]] const util::LogRecord* find_first(std::string_view needle) const;
};

[[nodiscard]] ParsedLog parse_log_text(std::string_view text);

// ---------------------------------------------------------------------------
// Campaign run-log round trip: the per-run lines the LogSink streams
// ("run N: outcome — detail (injections=…, usart_bytes=…)") parsed back,
// so the analytics (distributions, recovery counts) can be rebuilt from
// the log file alone, detached from the live campaign.
// ---------------------------------------------------------------------------

struct RunLogEntry {
  std::uint32_t index = 0;
  fi::Outcome outcome = fi::Outcome::Correct;
  std::string detail;
  /// The `domain=` field; absent (pre-refactor logs, register campaigns)
  /// parses as Register, matching what run_log_line() omits.
  fi::FaultDomain domain = fi::FaultDomain::Register;
  std::uint64_t injections = 0;
  std::uint64_t uart_bytes = 0;
  /// The line carried a detect_latency field, i.e. the run's failure was
  /// detected. Same-tick detection prints (and parses back) 0 ms, so this
  /// flag — not the value — distinguishes "detected instantly" from "not
  /// detected": latency analytics must aggregate only flagged entries,
  /// like the live CampaignAggregate does.
  bool failure_detected = false;
  std::uint64_t detect_latency_ms = 0;  ///< 0 when the line carries none
  bool shutdown_reclaimed = false;
};

/// Parse one run_log_line(); error status on shape mismatch.
[[nodiscard]] util::Expected<RunLogEntry> parse_run_log_line(std::string_view line);

struct ParsedRunLog {
  std::vector<RunLogEntry> entries;
  /// Lines that claimed to be run records ("run " prefix) but failed to
  /// parse — truncation, corruption. A resumable log must have none.
  std::size_t malformed_lines = 0;
  /// Non-run lines skipped wholesale: record kinds this parser does not
  /// recognize (newer writers interleaving other records, annotations).
  /// Counted, not fatal, so replay of a mixed log degrades gracefully in
  /// both directions — old parser on new logs and vice versa.
  std::size_t skipped_lines = 0;

  /// Rebuild the Figure-3 unit of aggregation from the parsed entries.
  [[nodiscard]] fi::OutcomeDistribution distribution() const;
};

[[nodiscard]] ParsedRunLog parse_run_log(std::string_view text);

/// Rebuild the live LogSink's CampaignAggregate from a persisted run log,
/// folding entries in file order (= run order). Because the sink also
/// folds in run order, the rebuilt aggregate is bit-identical — including
/// the floating-point latency stats — to the one the live campaign kept,
/// for any executor thread count. This is the campaign-resume primitive:
/// a completed cell's aggregate can be recovered from its log file alone.
[[nodiscard]] CampaignAggregate aggregate_from_log(const ParsedRunLog& log);

}  // namespace mcs::analysis
