#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mcs::analysis {

Proportion wilson_interval(std::uint64_t k, std::uint64_t n, double z) {
  Proportion out;
  if (n == 0) return out;
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(k) / nn;
  out.estimate = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double centre = p + z2 / (2.0 * nn);
  const double margin = z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  out.lower = std::max(0.0, (centre - margin) / denom);
  out.upper = std::min(1.0, (centre + margin) / denom);
  return out;
}

Summary summarize(std::vector<double> values) {
  Summary out;
  out.n = values.size();
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  out.median = values.size() % 2 == 1
                   ? values[values.size() / 2]
                   : 0.5 * (values[values.size() / 2 - 1] +
                            values[values.size() / 2]);
  double sum = 0.0;
  for (const double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace mcs::analysis
