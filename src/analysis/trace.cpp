#include "analysis/trace.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace mcs::analysis {
namespace {

constexpr std::string_view kRunsHeader =
    "run,outcome,injections,flipped_bits,first_injection_tick,failure_tick,"
    "detection_latency_ms,uart1_bytes,led_toggles,traps,hvcs,irqs,"
    "create_result,start_result,cell_exists,shutdown_reclaimed,detail";

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string runs_to_csv(const fi::CampaignResult& result) {
  std::ostringstream out;
  out << kRunsHeader << "\n";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const fi::RunResult& run = result.runs[i];
    out << i << ',' << fi::outcome_name(run.outcome) << ',' << run.injections
        << ',' << run.flipped_bits << ',' << run.first_injection_tick << ','
        << run.failure_tick << ',' << run.detection_latency() << ','
        << run.uart1_bytes << ',' << run.led_toggles << ',' << run.traps << ','
        << run.hvcs << ',' << run.irqs << ',' << run.create_result << ','
        << run.start_result << ',' << (run.cell_exists ? 1 : 0) << ','
        << (run.shutdown_reclaimed ? 1 : 0) << ',' << csv_escape(run.detail)
        << "\n";
  }
  return out.str();
}

std::string injections_to_csv(const std::vector<fi::InjectionRecord>& records) {
  std::ostringstream out;
  out << "tick,call_index,point,cpu,reg,bit,before,after\n";
  for (const fi::InjectionRecord& record : records) {
    for (const fi::FlipRecord& flip : record.flips) {
      out << record.tick << ',' << record.call_index << ','
          << jh::hook_point_name(record.point) << ',' << record.cpu << ','
          << arch::reg_name(flip.reg) << ',' << flip.bit << ','
          << util::hex(flip.before) << ',' << util::hex(flip.after) << "\n";
    }
  }
  return out.str();
}

std::string campaign_manifest(const fi::CampaignResult& result) {
  const fi::OutcomeDistribution dist = result.distribution();
  std::ostringstream out;
  out << "plan.name=" << result.plan.name << "\n";
  out << "plan.target=" << jh::hook_point_name(result.plan.target) << "\n";
  out << "plan.fault_model=" << fi::fault_model_kind_name(result.plan.fault)
      << "\n";
  out << "plan.rate=" << result.plan.rate << "\n";
  out << "plan.phase=" << result.plan.phase << "\n";
  out << "plan.cpu_filter=" << result.plan.cpu_filter << "\n";
  out << "plan.duration_ticks=" << result.plan.duration_ticks << "\n";
  out << "plan.runs=" << result.plan.runs << "\n";
  out << "plan.seed=" << util::hex(result.plan.seed) << "\n";
  out << "plan.inject_during_boot="
      << (result.plan.inject_during_boot ? 1 : 0) << "\n";
  out << "result.total_runs=" << dist.total() << "\n";
  out << "result.total_injections=" << result.total_injections() << "\n";
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    out << "result.outcome." << fi::outcome_name(outcome) << "="
        << dist.count(outcome) << "\n";
  }
  out << "result.mean_detection_latency_ms=" << result.mean_detection_latency()
      << "\n";
  return out.str();
}

ParsedRunsCsv parse_runs_csv(const std::string& csv) {
  ParsedRunsCsv parsed;
  bool header = true;
  for (const std::string& line : util::split(csv, '\n')) {
    if (util::trim(line).empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const std::vector<std::string> fields = util::split(line, ',');
    if (fields.size() < 2) {
      ++parsed.malformed;
      continue;
    }
    bool known = false;
    for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
      const auto outcome = static_cast<fi::Outcome>(i);
      if (fields[1] == fi::outcome_name(outcome)) {
        parsed.distribution.add(outcome);
        known = true;
        break;
      }
    }
    if (known) {
      ++parsed.rows;
    } else {
      ++parsed.malformed;
    }
  }
  return parsed;
}

}  // namespace mcs::analysis
