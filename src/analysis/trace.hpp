// Machine-readable campaign artefacts: CSV exports of run results and
// injection records, and a flat key=value experiment manifest. These are
// the files an assessor archives next to the ISO 26262 work products —
// everything needed to re-analyse a campaign without re-running it.
#pragma once

#include <string>

#include "core/campaign.hpp"
#include "core/injector.hpp"

namespace mcs::analysis {

/// One CSV row per run: index, outcome, injections, flipped bits, ticks,
/// observables, management results, recovery probe.
[[nodiscard]] std::string runs_to_csv(const fi::CampaignResult& result);

/// One CSV row per injection of a single run's injector records.
[[nodiscard]] std::string injections_to_csv(
    const std::vector<fi::InjectionRecord>& records);

/// Flat manifest (key=value per line) capturing the plan and the
/// aggregate outcome — the reproducibility header of a campaign archive.
[[nodiscard]] std::string campaign_manifest(const fi::CampaignResult& result);

/// Parse a runs CSV back into outcome counts (round-trip for archival
/// integrity checks). Unknown outcome strings are counted as malformed.
struct ParsedRunsCsv {
  fi::OutcomeDistribution distribution;
  std::size_t rows = 0;
  std::size_t malformed = 0;
};
[[nodiscard]] ParsedRunsCsv parse_runs_csv(const std::string& csv);

}  // namespace mcs::analysis
