#include "analysis/log_parser.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace mcs::analysis {
namespace {

util::Expected<util::Severity> parse_severity(std::string_view token) {
  if (token == "DEBUG") return util::Severity::Debug;
  if (token == "INFO") return util::Severity::Info;
  if (token == "WARN") return util::Severity::Warning;
  if (token == "ERROR") return util::Severity::Error;
  if (token == "FATAL") return util::Severity::Fatal;
  return util::invalid_argument("unknown severity token");
}

}  // namespace

util::Expected<util::LogRecord> parse_log_line(std::string_view line) {
  // "[<ticks>ms] <LEVEL> <component>[/cpuN]: <message>"
  if (line.empty() || line.front() != '[') {
    return util::invalid_argument("missing timestamp bracket");
  }
  const std::size_t close = line.find("ms]");
  if (close == std::string_view::npos) {
    return util::invalid_argument("missing 'ms]'");
  }
  util::LogRecord record;
  {
    const std::string_view digits = line.substr(1, close - 1);
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      return util::invalid_argument("bad timestamp");
    }
    record.timestamp = util::Ticks{value};
  }
  std::string_view rest = util::trim(line.substr(close + 3));

  const std::size_t severity_end = rest.find(' ');
  if (severity_end == std::string_view::npos) {
    return util::invalid_argument("missing severity");
  }
  auto severity = parse_severity(rest.substr(0, severity_end));
  if (!severity.is_ok()) return severity.status();
  record.severity = severity.value();
  rest = util::trim(rest.substr(severity_end + 1));

  const std::size_t colon = rest.find(": ");
  if (colon == std::string_view::npos) {
    return util::invalid_argument("missing component separator");
  }
  std::string_view component = rest.substr(0, colon);
  record.message = std::string(rest.substr(colon + 2));

  const std::size_t slash = component.find("/cpu");
  if (slash != std::string_view::npos) {
    const std::string_view cpu_digits = component.substr(slash + 4);
    int cpu = -1;
    const auto [ptr, ec] = std::from_chars(
        cpu_digits.data(), cpu_digits.data() + cpu_digits.size(), cpu);
    if (ec == std::errc{} && ptr == cpu_digits.data() + cpu_digits.size()) {
      record.cpu = cpu;
      component = component.substr(0, slash);
    }
  }
  record.component = std::string(component);
  return record;
}

ParsedLog parse_log_text(std::string_view text) {
  ParsedLog parsed;
  for (const std::string& line : util::split(text, '\n')) {
    if (util::trim(line).empty()) continue;
    auto record = parse_log_line(line);
    if (record.is_ok()) {
      parsed.records.push_back(std::move(record).value());
    } else {
      ++parsed.malformed_lines;
    }
  }
  return parsed;
}

std::vector<const util::LogRecord*> ParsedLog::select(
    std::string_view component, util::Severity at_least) const {
  std::vector<const util::LogRecord*> out;
  for (const util::LogRecord& record : records) {
    if (record.component == component && record.severity >= at_least) {
      out.push_back(&record);
    }
  }
  return out;
}

const util::LogRecord* ParsedLog::find_first(std::string_view needle) const {
  for (const util::LogRecord& record : records) {
    if (record.message.find(needle) != std::string::npos) return &record;
  }
  return nullptr;
}

}  // namespace mcs::analysis
