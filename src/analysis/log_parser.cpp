#include "analysis/log_parser.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace mcs::analysis {
namespace {

util::Expected<util::Severity> parse_severity(std::string_view token) {
  if (token == "DEBUG") return util::Severity::Debug;
  if (token == "INFO") return util::Severity::Info;
  if (token == "WARN") return util::Severity::Warning;
  if (token == "ERROR") return util::Severity::Error;
  if (token == "FATAL") return util::Severity::Fatal;
  return util::invalid_argument("unknown severity token");
}

}  // namespace

util::Expected<util::LogRecord> parse_log_line(std::string_view line) {
  // "[<ticks>ms] <LEVEL> <component>[/cpuN]: <message>"
  if (line.empty() || line.front() != '[') {
    return util::invalid_argument("missing timestamp bracket");
  }
  const std::size_t close = line.find("ms]");
  if (close == std::string_view::npos) {
    return util::invalid_argument("missing 'ms]'");
  }
  util::LogRecord record;
  {
    const std::string_view digits = line.substr(1, close - 1);
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      return util::invalid_argument("bad timestamp");
    }
    record.timestamp = util::Ticks{value};
  }
  std::string_view rest = util::trim(line.substr(close + 3));

  const std::size_t severity_end = rest.find(' ');
  if (severity_end == std::string_view::npos) {
    return util::invalid_argument("missing severity");
  }
  auto severity = parse_severity(rest.substr(0, severity_end));
  if (!severity.is_ok()) return severity.status();
  record.severity = severity.value();
  rest = util::trim(rest.substr(severity_end + 1));

  const std::size_t colon = rest.find(": ");
  if (colon == std::string_view::npos) {
    return util::invalid_argument("missing component separator");
  }
  std::string_view component = rest.substr(0, colon);
  record.message = std::string(rest.substr(colon + 2));

  const std::size_t slash = component.find("/cpu");
  if (slash != std::string_view::npos) {
    const std::string_view cpu_digits = component.substr(slash + 4);
    int cpu = -1;
    const auto [ptr, ec] = std::from_chars(
        cpu_digits.data(), cpu_digits.data() + cpu_digits.size(), cpu);
    if (ec == std::errc{} && ptr == cpu_digits.data() + cpu_digits.size()) {
      record.cpu = cpu;
      component = component.substr(0, slash);
    }
  }
  record.component = std::string(component);
  return record;
}

ParsedLog parse_log_text(std::string_view text) {
  ParsedLog parsed;
  for (const std::string& line : util::split(text, '\n')) {
    if (util::trim(line).empty()) continue;
    auto record = parse_log_line(line);
    if (record.is_ok()) {
      parsed.records.push_back(std::move(record).value());
    } else {
      ++parsed.malformed_lines;
    }
  }
  return parsed;
}

std::vector<const util::LogRecord*> ParsedLog::select(
    std::string_view component, util::Severity at_least) const {
  std::vector<const util::LogRecord*> out;
  for (const util::LogRecord& record : records) {
    if (record.component == component && record.severity >= at_least) {
      out.push_back(&record);
    }
  }
  return out;
}

const util::LogRecord* ParsedLog::find_first(std::string_view needle) const {
  for (const util::LogRecord& record : records) {
    if (record.message.find(needle) != std::string::npos) return &record;
  }
  return nullptr;
}

namespace {

bool parse_u64(std::string_view digits, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), out);
  return ec == std::errc{} && ptr == digits.data() + digits.size();
}

/// "key=<digits>" field inside the trailing "(...)" group; false when the
/// key is absent (optional fields), error left to the caller when present
/// but malformed.
bool find_field(std::string_view fields, std::string_view key,
                std::string_view& value) {
  const std::size_t at = fields.find(key);
  if (at == std::string_view::npos) return false;
  std::string_view rest = fields.substr(at + key.size());
  std::size_t end = 0;
  while (end < rest.size() && rest[end] != ',' && rest[end] != ')') ++end;
  value = rest.substr(0, end);
  return true;
}

}  // namespace

util::Expected<RunLogEntry> parse_run_log_line(std::string_view line) {
  // "run <N>: <outcome> — <detail> (injections=…, usart_bytes=…[, …])"
  line = util::trim(line);
  if (!line.starts_with("run ")) {
    return util::invalid_argument("missing 'run ' prefix");
  }
  RunLogEntry entry;
  const std::size_t colon = line.find(": ");
  if (colon == std::string_view::npos) {
    return util::invalid_argument("missing run-index separator");
  }
  {
    std::uint64_t index = 0;
    if (!parse_u64(line.substr(4, colon - 4), index)) {
      return util::invalid_argument("bad run index");
    }
    entry.index = static_cast<std::uint32_t>(index);
  }
  std::string_view rest = line.substr(colon + 2);

  const std::size_t dash = rest.find(" — ");  // " — "
  if (dash == std::string_view::npos) {
    return util::invalid_argument("missing outcome separator");
  }
  if (!fi::outcome_from_name(rest.substr(0, dash), entry.outcome)) {
    return util::invalid_argument("unknown outcome name");
  }
  rest = rest.substr(dash + 5);  // em dash is 3 bytes in UTF-8

  const std::size_t fields_at = rest.rfind(" (injections=");
  if (fields_at == std::string_view::npos || rest.back() != ')') {
    return util::invalid_argument("missing field group");
  }
  entry.detail = std::string(rest.substr(0, fields_at));
  const std::string_view fields = rest.substr(fields_at + 2);

  std::string_view value;
  if (!find_field(fields, "injections=", value) ||
      !parse_u64(value, entry.injections)) {
    return util::invalid_argument("bad injections field");
  }
  if (!find_field(fields, "usart_bytes=", value) ||
      !parse_u64(value, entry.uart_bytes)) {
    return util::invalid_argument("bad usart_bytes field");
  }
  if (find_field(fields, "domain=", value)) {
    if (!fi::fault_domain_from_name(value, entry.domain)) {
      return util::invalid_argument("unknown domain field");
    }
  }
  if (find_field(fields, "detect_latency=", value)) {
    if (value.size() < 3 || !value.ends_with("ms") ||
        !parse_u64(value.substr(0, value.size() - 2), entry.detect_latency_ms)) {
      return util::invalid_argument("bad detect_latency field");
    }
    entry.failure_detected = true;
  }
  if (find_field(fields, "shutdown_reclaimed=", value)) {
    entry.shutdown_reclaimed = value == "yes";
  }
  return entry;
}

fi::OutcomeDistribution ParsedRunLog::distribution() const {
  fi::OutcomeDistribution dist;
  for (const RunLogEntry& entry : entries) dist.add(entry.outcome);
  return dist;
}

CampaignAggregate aggregate_from_log(const ParsedRunLog& log) {
  // Mirrors CampaignAggregate::add field for field; the run log carries
  // everything the aggregate consumes (the outcome, the injection count,
  // the detection flag + latency, the reclaim verdict).
  CampaignAggregate aggregate;
  for (const RunLogEntry& entry : log.entries) {
    aggregate.distribution.add(entry.outcome);
    aggregate.injections += entry.injections;
    aggregate.injections_by_domain[static_cast<std::size_t>(entry.domain)] +=
        entry.injections;
    if (entry.failure_detected) {
      aggregate.detection_latency.add(
          static_cast<double>(entry.detect_latency_ms));
    }
    if (fi::is_cell_failure(entry.outcome)) {
      ++aggregate.cell_failures;
      if (entry.shutdown_reclaimed) ++aggregate.reclaimed;
    }
  }
  return aggregate;
}

ParsedRunLog parse_run_log(std::string_view text) {
  ParsedRunLog parsed;
  for (const std::string& line : util::split(text, '\n')) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    // Lines that aren't run records at all — record kinds from a newer (or
    // older) writer — are skipped and counted, never fatal. Only a line
    // that claims to be a run record and fails to parse is malformed: the
    // distinction is what lets resume trust a log with foreign record
    // kinds while still rejecting one with a truncated run line.
    if (!trimmed.starts_with("run ")) {
      ++parsed.skipped_lines;
      continue;
    }
    auto entry = parse_run_log_line(trimmed);
    if (entry.is_ok()) {
      parsed.entries.push_back(std::move(entry).value());
    } else {
      ++parsed.malformed_lines;
    }
  }
  return parsed;
}

}  // namespace mcs::analysis
