#include "analysis/log_parser.hpp"

#include <cctype>
#include <charconv>
#include <cstring>

#include "util/line_scanner.hpp"
#include "util/logpipe_counters.hpp"
#include "util/strings.hpp"

namespace mcs::analysis {
namespace {

util::Expected<util::Severity> parse_severity(std::string_view token) {
  if (token == "DEBUG") return util::Severity::Debug;
  if (token == "INFO") return util::Severity::Info;
  if (token == "WARN") return util::Severity::Warning;
  if (token == "ERROR") return util::Severity::Error;
  if (token == "FATAL") return util::Severity::Fatal;
  return util::invalid_argument("unknown severity token");
}

}  // namespace

util::Expected<util::LogRecord> parse_log_line(std::string_view line) {
  // "[<ticks>ms] <LEVEL> <component>[/cpuN]: <message>"
  if (line.empty() || line.front() != '[') {
    return util::invalid_argument("missing timestamp bracket");
  }
  const std::size_t close = line.find("ms]");
  if (close == std::string_view::npos) {
    return util::invalid_argument("missing 'ms]'");
  }
  util::LogRecord record;
  {
    const std::string_view digits = line.substr(1, close - 1);
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      return util::invalid_argument("bad timestamp");
    }
    record.timestamp = util::Ticks{value};
  }
  std::string_view rest = util::trim(line.substr(close + 3));

  const std::size_t severity_end = rest.find(' ');
  if (severity_end == std::string_view::npos) {
    return util::invalid_argument("missing severity");
  }
  auto severity = parse_severity(rest.substr(0, severity_end));
  if (!severity.is_ok()) return severity.status();
  record.severity = severity.value();
  rest = util::trim(rest.substr(severity_end + 1));

  const std::size_t colon = rest.find(": ");
  if (colon == std::string_view::npos) {
    return util::invalid_argument("missing component separator");
  }
  std::string_view component = rest.substr(0, colon);
  record.message = std::string(rest.substr(colon + 2));

  const std::size_t slash = component.find("/cpu");
  if (slash != std::string_view::npos) {
    const std::string_view cpu_digits = component.substr(slash + 4);
    int cpu = -1;
    const auto [ptr, ec] = std::from_chars(
        cpu_digits.data(), cpu_digits.data() + cpu_digits.size(), cpu);
    if (ec == std::errc{} && ptr == cpu_digits.data() + cpu_digits.size()) {
      record.cpu = cpu;
      component = component.substr(0, slash);
    }
  }
  record.component = std::string(component);
  return record;
}

ParsedLog parse_log_text(std::string_view text) {
  ParsedLog parsed;
  util::for_each_line(text, [&parsed](std::string_view line) {
    if (util::trim(line).empty()) return;
    auto record = parse_log_line(line);
    if (record.is_ok()) {
      parsed.records.push_back(std::move(record).value());
    } else {
      ++parsed.malformed_lines;
    }
  });
  return parsed;
}

std::vector<const util::LogRecord*> ParsedLog::select(
    std::string_view component, util::Severity at_least) const {
  std::vector<const util::LogRecord*> out;
  for (const util::LogRecord& record : records) {
    if (record.component == component && record.severity >= at_least) {
      out.push_back(&record);
    }
  }
  return out;
}

const util::LogRecord* ParsedLog::find_first(std::string_view needle) const {
  for (const util::LogRecord& record : records) {
    if (record.message.find(needle) != std::string::npos) return &record;
  }
  return nullptr;
}

namespace {

/// Single-compare outcome lookup: every outcome name has a distinct
/// (size, spelling) pair, so dispatching on size leaves exactly one
/// candidate to memcmp (two for size 17). Falls back to the generic
/// table walk so a newly added outcome can never silently stop parsing.
bool fast_outcome(std::string_view name, fi::Outcome& out) {
  switch (name.size()) {
    case 7:
      if (name == "correct") return out = fi::Outcome::Correct, true;
      break;
    case 8:
      if (name == "cpu-park") return out = fi::Outcome::CpuPark, true;
      break;
    case 10:
      if (name == "panic-park") return out = fi::Outcome::PanicPark, true;
      break;
    case 11:
      if (name == "silent-hang") return out = fi::Outcome::SilentHang, true;
      break;
    case 13:
      if (name == "harness-error") {
        return out = fi::Outcome::HarnessError, true;
      }
      break;
    case 17:
      if (name == "invalid-arguments") {
        return out = fi::Outcome::InvalidArguments, true;
      }
      if (name == "inconsistent-cell") {
        return out = fi::Outcome::InconsistentCell, true;
      }
      break;
    case 21:
      if (name == "cross-cell-corruption") {
        return out = fi::Outcome::CrossCellCorruption, true;
      }
      break;
    default:
      break;
  }
  return fi::outcome_from_name(name, out);
}

/// Same shape for fault domains (all five names have distinct sizes).
bool fast_domain(std::string_view name, fi::FaultDomain& out) {
  switch (name.size()) {
    case 3:
      if (name == "gic") return out = fi::FaultDomain::Gic, true;
      break;
    case 4:
      if (name == "dram") return out = fi::FaultDomain::Dram, true;
      break;
    case 8:
      if (name == "register") return out = fi::FaultDomain::Register, true;
      break;
    case 11:
      if (name == "device-mmio") {
        return out = fi::FaultDomain::DeviceMmio, true;
      }
      break;
    case 12:
      if (name == "irq-delivery") {
        return out = fi::FaultDomain::IrqDelivery, true;
      }
      break;
    default:
      break;
  }
  return fi::fault_domain_from_name(name, out);
}

/// Fold one entry the way CampaignAggregate::add folds a live run —
/// field for field, in this order. Shared by the materialising and the
/// zero-copy tier so the two can never drift apart.
template <typename Entry>
void fold_entry(CampaignAggregate& aggregate, const Entry& entry) {
  aggregate.distribution.add(entry.outcome);
  aggregate.injections += entry.injections;
  aggregate.injections_by_domain[static_cast<std::size_t>(entry.domain)] +=
      entry.injections;
  if (entry.failure_detected) {
    aggregate.detection_latency.add(
        static_cast<double>(entry.detect_latency_ms));
  }
  if (fi::is_cell_failure(entry.outcome)) {
    ++aggregate.cell_failures;
    if (entry.shutdown_reclaimed) ++aggregate.reclaimed;
  }
}

/// C-locale whitespace without the per-byte libc call util::trim pays;
/// the run-log hot loop trims every line.
inline bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

inline std::string_view trim_fast(std::string_view text) {
  while (!text.empty() && is_ws(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_ws(text.back())) text.remove_suffix(1);
  return text;
}

/// Last '(' in [begin, begin+len): one vectorised libc call where the
/// glibc extension exists, a plain backward loop elsewhere.
inline const char* last_open_paren(const char* begin, std::size_t len) {
#if defined(__GLIBC__)
  return static_cast<const char*>(memrchr(begin, '(', len));
#else
  for (const char* q = begin + len; q-- > begin;) {
    if (*q == '(') return q;
  }
  return nullptr;
#endif
}

/// The run-line grammar, pointer-at-a-time:
///   "run <N>: <outcome> — <detail> (injections=…, usart_bytes=…[, …])"
/// This is THE hot loop of resume and replay — millions of lines stream
/// through it — so it avoids generic substring searches in favour of
/// from_chars runs and length-dispatched key memcmps: the field group
/// starts at the LAST "(injections=" (the detail may contain parens of
/// its own), and every field key has a distinct length, so each token
/// costs one compare. False on any shape mismatch; the same verdicts and
/// values as the original find-based parser (the differential suite and
/// the adversarial-line tests pin both).
/// `line` must already be trimmed (both call sites trim once, up front).
bool parse_line_into(std::string_view line, RunLogEntryView& entry) {
  const char* p = line.data();
  const char* end = p + line.size();
  if (end - p < 4 || std::memcmp(p, "run ", 4) != 0) return false;

  const char* cursor = p + 4;
  {
    std::uint64_t index = 0;
    const auto [q, ec] = std::from_chars(cursor, end, index);
    if (ec != std::errc{} || q == cursor || q + 2 > end || q[0] != ':' ||
        q[1] != ' ') {
      return false;
    }
    entry.index = static_cast<std::uint32_t>(index);
    cursor = q + 2;
  }

  // The first " — " ends the outcome name (em dash: 3 UTF-8 bytes).
  const char* dash = nullptr;
  for (const char* q = cursor; q + 5 <= end; ++q) {
    if (q[0] == ' ' && q[1] == '\xe2' && q[2] == '\x80' && q[3] == '\x94' &&
        q[4] == ' ') {
      dash = q;
      break;
    }
  }
  if (dash == nullptr) return false;
  if (!fast_outcome(
          std::string_view(cursor, static_cast<std::size_t>(dash - cursor)),
          entry.outcome)) {
    return false;
  }
  const char* rest = dash + 5;
  if (rest >= end || end[-1] != ')') return false;

  const char* open = nullptr;
  for (const char* hi = end; hi > rest;) {
    const char* q = last_open_paren(rest, static_cast<std::size_t>(hi - rest));
    if (q == nullptr) break;
    if (q > rest && q[-1] == ' ' && end - q >= 13 &&
        std::memcmp(q, "(injections=", 12) == 0) {
      open = q;
      break;
    }
    hi = q;
  }
  if (open == nullptr) return false;
  entry.detail =
      std::string_view(rest, static_cast<std::size_t>(open - 1 - rest));

  // Fields: "(injections=…" is guaranteed first by the search above; the
  // rest dispatch in any order. Unknown keys (a newer writer's
  // extensions) are skipped, like the find-based parser skipped them.
  const char* q = open + 12;
  {
    const auto [r, ec] = std::from_chars(q, end, entry.injections);
    if (ec != std::errc{} || r == q) return false;
    q = r;
  }
  bool saw_usart = false;
  for (;;) {
    if (q >= end) return false;
    if (*q == ')') {
      if (q + 1 != end) return false;
      break;
    }
    if (*q != ',') return false;
    ++q;
    while (q < end && *q == ' ') ++q;
    const std::size_t left = static_cast<std::size_t>(end - q);
    if (left >= 12 && std::memcmp(q, "usart_bytes=", 12) == 0) {
      q += 12;
      const auto [r, ec] = std::from_chars(q, end, entry.uart_bytes);
      if (ec != std::errc{} || r == q) return false;
      q = r;
      saw_usart = true;
      continue;
    }
    if (left >= 7 && std::memcmp(q, "domain=", 7) == 0) {
      q += 7;
      const char* value = q;
      while (q < end && *q != ',' && *q != ')') ++q;
      if (!fast_domain(
              std::string_view(value, static_cast<std::size_t>(q - value)),
              entry.domain)) {
        return false;
      }
      continue;
    }
    if (left >= 15 && std::memcmp(q, "detect_latency=", 15) == 0) {
      q += 15;
      const char* value = q;
      const auto [r, ec] = std::from_chars(q, end, entry.detect_latency_ms);
      if (ec != std::errc{} || r == value || end - r < 2 || r[0] != 'm' ||
          r[1] != 's') {
        return false;
      }
      q = r + 2;
      if (q < end && *q != ',' && *q != ')') return false;
      entry.failure_detected = true;
      continue;
    }
    if (left >= 19 && std::memcmp(q, "shutdown_reclaimed=", 19) == 0) {
      q += 19;
      const char* value = q;
      while (q < end && *q != ',' && *q != ')') ++q;
      entry.shutdown_reclaimed = static_cast<std::size_t>(q - value) == 3 &&
                                 std::memcmp(value, "yes", 3) == 0;
      continue;
    }
    while (q < end && *q != ',' && *q != ')') ++q;  // unknown key: skip token
  }
  return saw_usart;
}

}  // namespace

util::Expected<RunLogEntryView> parse_run_log_line_view(std::string_view line) {
  RunLogEntryView entry;
  if (!parse_line_into(trim_fast(line), entry)) {
    return util::invalid_argument("malformed run log line");
  }
  return entry;
}

util::Expected<RunLogEntry> parse_run_log_line(std::string_view line) {
  auto view = parse_run_log_line_view(line);
  if (!view.is_ok()) return view.status();
  const RunLogEntryView& v = view.value();
  RunLogEntry entry;
  entry.index = v.index;
  entry.outcome = v.outcome;
  entry.detail = std::string(v.detail);
  entry.domain = v.domain;
  entry.injections = v.injections;
  entry.uart_bytes = v.uart_bytes;
  entry.failure_detected = v.failure_detected;
  entry.detect_latency_ms = v.detect_latency_ms;
  entry.shutdown_reclaimed = v.shutdown_reclaimed;
  return entry;
}

fi::OutcomeDistribution ParsedRunLog::distribution() const {
  fi::OutcomeDistribution dist;
  for (const RunLogEntry& entry : entries) dist.add(entry.outcome);
  return dist;
}

CampaignAggregate aggregate_from_log(const ParsedRunLog& log) {
  // Mirrors CampaignAggregate::add field for field; the run log carries
  // everything the aggregate consumes (the outcome, the injection count,
  // the detection flag + latency, the reclaim verdict).
  CampaignAggregate aggregate;
  for (const RunLogEntry& entry : log.entries) fold_entry(aggregate, entry);
  return aggregate;
}

ParsedRunLog parse_run_log(std::string_view text) {
  ParsedRunLog parsed;
  util::for_each_line(text, [&parsed](std::string_view raw) {
    const std::string_view trimmed = trim_fast(raw);
    if (trimmed.empty()) return;
    // Lines that aren't run records at all — record kinds from a newer (or
    // older) writer — are skipped and counted, never fatal. Only a line
    // that claims to be a run record and fails to parse is malformed: the
    // distinction is what lets resume trust a log with foreign record
    // kinds while still rejecting one with a truncated run line.
    if (!trimmed.starts_with("run ")) {
      ++parsed.skipped_lines;
      return;
    }
    auto entry = parse_run_log_line(trimmed);
    if (entry.is_ok()) {
      parsed.entries.push_back(std::move(entry).value());
    } else {
      ++parsed.malformed_lines;
    }
  });
  return parsed;
}

RunLogScan scan_run_log(std::string_view text) {
  RunLogScan scan;
  // One fused pointer walk — line split, trim and record dispatch in the
  // same loop. Same line boundaries as util::for_each_line (every
  // '\n'-separated segment, no phantom segment after a trailing '\n')
  // and the same skip/malformed split as parse_run_log — the
  // differential suite pins the counts equal on every input.
  const char* p = text.data();
  const char* const end = p + text.size();
  while (p < end) {
    const char* nl = static_cast<const char*>(
        memchr(p, '\n', static_cast<std::size_t>(end - p)));
    const char* const line_end = nl != nullptr ? nl : end;
    const char* b = p;
    p = nl != nullptr ? nl + 1 : end;
    while (b < line_end && is_ws(*b)) ++b;
    const char* e = line_end;
    while (e > b && is_ws(e[-1])) --e;
    if (b == e) continue;
    const std::string_view trimmed(b, static_cast<std::size_t>(e - b));
    if (!trimmed.starts_with("run ")) {
      ++scan.skipped_lines;
      continue;
    }
    RunLogEntryView entry;
    if (!parse_line_into(trimmed, entry)) {
      ++scan.malformed_lines;
      continue;
    }
    if (entry.index != scan.entries) scan.indices_sequential = false;
    fold_entry(scan.aggregate, entry);
    ++scan.entries;
  }
  util::LogPipeCounters::instance().record_parse(
      scan.entries + scan.skipped_lines + scan.malformed_lines, text.size());
  return scan;
}

}  // namespace mcs::analysis
