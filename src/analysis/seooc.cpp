#include "analysis/seooc.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace mcs::analysis {

std::string_view claim_verdict_name(ClaimVerdict verdict) noexcept {
  switch (verdict) {
    case ClaimVerdict::Supported: return "SUPPORTED";
    case ClaimVerdict::Refuted: return "REFUTED";
    case ClaimVerdict::Inconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

bool SeoocReport::all_supported() const noexcept {
  for (const ClaimAssessment& claim : claims) {
    if (claim.verdict != ClaimVerdict::Supported) return false;
  }
  return true;
}

std::string SeoocReport::to_text() const {
  std::ostringstream out;
  out << "ISO 26262 SEooC evidence assessment — Jailhouse-class partitioning "
         "hypervisor\n";
  out << std::string(76, '=') << "\n\n";
  for (std::size_t i = 0; i < claims.size(); ++i) {
    const ClaimAssessment& claim = claims[i];
    out << "Claim " << i + 1 << ": " << claim.claim << "\n";
    out << "  verdict:  " << claim_verdict_name(claim.verdict) << "\n";
    out << "  evidence: " << claim.evidence << "\n\n";
  }
  out << "Residual risks (impact analysis required before integration):\n";
  if (residual_risks.empty()) {
    out << "  none identified by the executed campaigns\n";
  }
  for (const std::string& risk : residual_risks) {
    out << "  * " << risk << "\n";
  }
  out << "\nOverall: "
      << (all_supported()
              ? "campaigns support the isolation claims tested"
              : "open findings block an unconditional SEooC argument")
      << "\n";
  return out.str();
}

SeoocReport build_seooc_report(const fi::CampaignResult& medium_nonroot,
                               const fi::CampaignResult& high_root,
                               const fi::CampaignResult& high_nonroot) {
  // The per-run vectors reduce to the mergeable aggregates; everything the
  // claims need survives the reduction.
  const auto aggregate_of = [](const fi::CampaignResult& result) {
    CampaignAggregate aggregate;
    for (const fi::RunResult& run : result.runs) aggregate.add(run);
    return aggregate;
  };
  return build_seooc_report(aggregate_of(medium_nonroot),
                            aggregate_of(high_root),
                            aggregate_of(high_nonroot));
}

SeoocReport build_seooc_report(const CampaignAggregate& medium_nonroot,
                               const CampaignAggregate& high_root,
                               const CampaignAggregate& high_nonroot) {
  SeoocReport report;
  const fi::OutcomeDistribution& medium = medium_nonroot.distribution;
  const fi::OutcomeDistribution& root = high_root.distribution;
  const fi::OutcomeDistribution& nonroot = high_nonroot.distribution;

  // Claim 1 — management fail-stop: corrupted management hypercalls are
  // rejected with "invalid arguments" and never allocate a broken cell.
  {
    ClaimAssessment claim;
    claim.claim =
        "Corrupted management hypercalls fail stop (EINVAL) without "
        "allocating the cell";
    const std::uint64_t ok = root.count(fi::Outcome::InvalidArguments);
    claim.verdict = (root.total() > 0 && ok == root.total())
                        ? ClaimVerdict::Supported
                        : (root.total() == 0 ? ClaimVerdict::Inconclusive
                                             : ClaimVerdict::Refuted);
    claim.evidence = std::to_string(ok) + "/" + std::to_string(root.total()) +
                     " high-intensity root-context runs ended in "
                     "invalid-arguments fail-stop";
    report.claims.push_back(std::move(claim));
  }

  // Claim 2 — fault containment: non-root faults never corrupt the root
  // cell silently; every system-level failure is an explicit detected
  // panic, never silent root corruption.
  {
    ClaimAssessment claim;
    claim.claim =
        "Non-root faults are contained or detected (no silent root-cell "
        "corruption)";
    const std::uint64_t silent = medium.count(fi::Outcome::SilentHang);
    claim.verdict = silent == 0 ? ClaimVerdict::Supported : ClaimVerdict::Refuted;
    claim.evidence = "0 silent outcomes required, observed " +
                     std::to_string(silent) + " in " +
                     std::to_string(medium.total()) + " medium-intensity runs";
    report.claims.push_back(std::move(claim));
  }

  // Claim 3 — recoverability: after a cell-level failure, `cell shutdown`
  // reclaims the CPU and peripherals for the root cell.
  {
    ClaimAssessment claim;
    claim.claim =
        "After cell-level failure, shutdown returns CPU and peripherals to "
        "the root cell";
    const std::uint64_t failed_runs =
        medium_nonroot.cell_failures + high_nonroot.cell_failures;
    const std::uint64_t reclaimed =
        medium_nonroot.reclaimed + high_nonroot.reclaimed;
    claim.verdict = failed_runs == 0
                        ? ClaimVerdict::Inconclusive
                        : (reclaimed == failed_runs ? ClaimVerdict::Supported
                                                    : ClaimVerdict::Refuted);
    claim.evidence = std::to_string(reclaimed) + "/" +
                     std::to_string(failed_runs) +
                     " cell-level failures recovered by cell shutdown";
    report.claims.push_back(std::move(claim));
  }

  // Residual risks from the campaigns — §III's findings verbatim.
  const double panic_share = medium.fraction(fi::Outcome::PanicPark);
  if (panic_share > 0.0) {
    report.residual_risks.push_back(
        "panic park: " +
        util::percent(medium.count(fi::Outcome::PanicPark), medium.total()) +
        " of medium-intensity non-root faults propagate to a whole-system "
        "kernel panic — the root cell is NOT protected from them");
  }
  const std::uint64_t inconsistent =
      nonroot.count(fi::Outcome::InconsistentCell);
  if (inconsistent > 0) {
    report.residual_risks.push_back(
        "inconsistent cell state: " + std::to_string(inconsistent) + "/" +
        std::to_string(nonroot.total()) +
        " high-intensity non-root runs left a cell reported RUNNING while "
        "broken and unusable; only destroy+recreate recovers");
  }
  return report;
}

}  // namespace mcs::analysis
