#include "analysis/log_sink.hpp"

#include <cmath>
#include <mutex>

#include "util/logpipe_counters.hpp"

namespace mcs::analysis {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::stddev() const noexcept {
  return n_ == 0 ? 0.0 : std::sqrt(m2_ / static_cast<double>(n_));
}

void CampaignAggregate::add(const fi::RunResult& run) {
  distribution.add(run.outcome);
  injections += run.injections;
  injections_by_domain[static_cast<std::size_t>(run.fault_domain)] +=
      run.injections;
  if (run.failure_detected()) {
    detection_latency.add(static_cast<double>(run.detection_latency()));
  }
  if (fi::is_cell_failure(run.outcome)) {
    ++cell_failures;
    if (run.shutdown_reclaimed) ++reclaimed;
  }
}

void CampaignAggregate::merge(const CampaignAggregate& other) {
  distribution.merge(other.distribution);
  detection_latency.merge(other.detection_latency);
  injections += other.injections;
  for (std::size_t i = 0; i < injections_by_domain.size(); ++i) {
    injections_by_domain[i] += other.injections_by_domain[i];
  }
  cell_failures += other.cell_failures;
  reclaimed += other.reclaimed;
}

void LogSink::lock_release_window() const {
  if (!release_mutex_.try_lock()) {
    util::LogPipeCounters::instance().record_sink_contention();
    release_mutex_.lock();
  }
}

void LogSink::release_one(std::uint32_t index, const fi::RunResult& run) {
  // Folding here — in run order, not completion order — keeps the
  // aggregate's floating-point accumulation deterministic across thread
  // counts and identical to a replay of the persisted log.
  aggregate_.add(run);
  ++records_;
  line_buf_.clear();
  fi::append_run_log_line(line_buf_, index, run);
  line_buf_.push_back('\n');
  // A streaming sink hands lines straight to its stream; only a retaining
  // sink keeps the body (an unbounded campaign must not also grow an
  // unread in-memory copy).
  if (stream_ != nullptr) {
    stream_->write(line_buf_.data(),
                   static_cast<std::streamsize>(line_buf_.size()));
  } else {
    // Grow from the running size estimate — the body written so far is
    // the best predictor of what is still to come — instead of letting
    // append() creep capacity up line by line: O(log n) reallocations
    // over a campaign, bounded ~2× overshoot at the end.
    const std::size_t needed = text_.size() + line_buf_.size();
    if (text_.capacity() < needed) {
      text_.reserve(std::max<std::size_t>(needed * 2, 4096));
    }
    text_.append(line_buf_);
  }
}

void LogSink::drain_locked(std::uint64_t already_released) {
  // Caller holds release_mutex_. Walk the contiguous staged prefix; each
  // probe re-checks its stripe under that stripe's lock, so a stage that
  // raced with the previous probe is either seen here or — when it landed
  // after this window moved on — drained by its own stager, which always
  // re-reads next_index_ after staging.
  std::uint64_t released = already_released;
  for (;;) {
    const std::uint32_t next = next_index_.load(std::memory_order_relaxed);
    Stripe& stripe = stripes_[next % kNumStripes];
    const std::lock_guard<std::mutex> stripe_lock(stripe.mutex);
    const auto it = stripe.pending.find(next);
    if (it == stripe.pending.end()) break;
    release_one(it->first, it->second);
    stripe.pending.erase(it);
    next_index_.store(next + 1, std::memory_order_release);
    ++released;
  }
  if (released != 0) {
    util::LogPipeCounters::instance().record_sink_release(released);
  }
}

void LogSink::record(std::uint32_t index, const fi::RunResult& run) {
  util::LogPipeCounters::instance().record_sink_record();
  // Duplicate or already-released index: drop. Without this, a replayed
  // run double-counts in the aggregate and — for a staged index — parks
  // in a stripe forever, below next_index_.
  if (index < next_index_.load(std::memory_order_acquire)) {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Stripe& stripe = stripes_[index % kNumStripes];

  if (index == next_index_.load(std::memory_order_acquire)) {
    // In-order fast path: this run is the very next to release, so take
    // the window and emit it directly — no staging map, no copy of the
    // RunResult, no allocation once line_buf_'s capacity is warm.
    lock_release_window();
    std::unique_lock<std::mutex> window(release_mutex_, std::adopt_lock);
    if (next_index_.load(std::memory_order_relaxed) == index) {
      {
        // Advance under the stripe lock: a concurrent duplicate of this
        // index either staged before (found here) or stages after and
        // then fails the `< next_index_` check — never lingers unseen.
        const std::lock_guard<std::mutex> stripe_lock(stripe.mutex);
        if (stripe.pending.find(index) != stripe.pending.end()) {
          duplicates_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        release_one(index, run);
        next_index_.store(index + 1, std::memory_order_release);
      }
      drain_locked(1);
      return;
    }
    // Lost the race: another thread released this index first (it can
    // only advance past us by releasing a staged copy — a duplicate).
    window.unlock();
    if (index < next_index_.load(std::memory_order_acquire)) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // Out-of-order: stage into this index's stripe.
  {
    const std::lock_guard<std::mutex> stripe_lock(stripe.mutex);
    if (index < next_index_.load(std::memory_order_acquire) ||
        !stripe.pending.emplace(index, run).second) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // The stager of the current next index is responsible for draining it:
  // if the window advanced to this index between the check above and the
  // stage, the drainer that advanced it may already have probed this
  // stripe and moved on, so re-check and drain ourselves.
  if (index == next_index_.load(std::memory_order_acquire)) {
    lock_release_window();
    const std::lock_guard<std::mutex> window(release_mutex_, std::adopt_lock);
    drain_locked(0);
  }
}

void LogSink::record_all(const fi::CampaignResult& result) {
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    record(static_cast<std::uint32_t>(i), result.runs[i]);
  }
}

CampaignAggregate LogSink::aggregate() const {
  lock_release_window();
  const std::lock_guard<std::mutex> lock(release_mutex_, std::adopt_lock);
  return aggregate_;
}

std::uint64_t LogSink::records() const {
  lock_release_window();
  const std::lock_guard<std::mutex> lock(release_mutex_, std::adopt_lock);
  return records_;
}

std::uint64_t LogSink::duplicates() const {
  return duplicates_.load(std::memory_order_relaxed);
}

std::string LogSink::text() const {
  lock_release_window();
  const std::lock_guard<std::mutex> lock(release_mutex_, std::adopt_lock);
  return text_;
}

void LogSink::flush() {
  lock_release_window();
  const std::lock_guard<std::mutex> lock(release_mutex_, std::adopt_lock);
  if (stream_ != nullptr) stream_->flush();
  util::LogPipeCounters::instance().record_sink_flush();
}

}  // namespace mcs::analysis
