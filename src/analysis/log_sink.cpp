#include "analysis/log_sink.hpp"

#include <cmath>

namespace mcs::analysis {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::stddev() const noexcept {
  return n_ == 0 ? 0.0 : std::sqrt(m2_ / static_cast<double>(n_));
}

void CampaignAggregate::add(const fi::RunResult& run) {
  distribution.add(run.outcome);
  injections += run.injections;
  if (run.failure_detected()) {
    detection_latency.add(static_cast<double>(run.detection_latency()));
  }
  if (run.outcome == fi::Outcome::CpuPark ||
      run.outcome == fi::Outcome::InconsistentCell) {
    ++cell_failures;
    if (run.shutdown_reclaimed) ++reclaimed;
  }
}

void CampaignAggregate::merge(const CampaignAggregate& other) {
  distribution.merge(other.distribution);
  detection_latency.merge(other.detection_latency);
  injections += other.injections;
  cell_failures += other.cell_failures;
  reclaimed += other.reclaimed;
}

void LogSink::record(std::uint32_t index, const fi::RunResult& run) {
  const std::lock_guard<std::mutex> lock(mutex_);
  aggregate_.add(run);
  ++records_;
  pending_.emplace(index, fi::run_log_line(index, run));
  // Release the contiguous prefix. A streaming sink hands lines straight
  // to its stream; only a retaining sink keeps the body (an unbounded
  // campaign must not also grow an unread in-memory copy).
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_index_;
       it = pending_.erase(it), ++next_index_) {
    if (stream_ != nullptr) {
      (*stream_) << it->second << '\n';
    } else {
      text_ += it->second;
      text_ += '\n';
    }
  }
}

void LogSink::record_all(const fi::CampaignResult& result) {
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    record(static_cast<std::uint32_t>(i), result.runs[i]);
  }
}

CampaignAggregate LogSink::aggregate() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return aggregate_;
}

std::uint64_t LogSink::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::string LogSink::text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return text_;
}

}  // namespace mcs::analysis
