#include "analysis/log_sink.hpp"

#include <cmath>

namespace mcs::analysis {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::stddev() const noexcept {
  return n_ == 0 ? 0.0 : std::sqrt(m2_ / static_cast<double>(n_));
}

void CampaignAggregate::add(const fi::RunResult& run) {
  distribution.add(run.outcome);
  injections += run.injections;
  injections_by_domain[static_cast<std::size_t>(run.fault_domain)] +=
      run.injections;
  if (run.failure_detected()) {
    detection_latency.add(static_cast<double>(run.detection_latency()));
  }
  if (fi::is_cell_failure(run.outcome)) {
    ++cell_failures;
    if (run.shutdown_reclaimed) ++reclaimed;
  }
}

void CampaignAggregate::merge(const CampaignAggregate& other) {
  distribution.merge(other.distribution);
  detection_latency.merge(other.detection_latency);
  injections += other.injections;
  for (std::size_t i = 0; i < injections_by_domain.size(); ++i) {
    injections_by_domain[i] += other.injections_by_domain[i];
  }
  cell_failures += other.cell_failures;
  reclaimed += other.reclaimed;
}

void LogSink::release(std::uint32_t index, const fi::RunResult& run) {
  // Folding here — in run order, not completion order — keeps the
  // aggregate's floating-point accumulation deterministic across thread
  // counts and identical to a replay of the persisted log.
  aggregate_.add(run);
  ++records_;
  const std::string line = fi::run_log_line(index, run);
  // A streaming sink hands lines straight to its stream; only a retaining
  // sink keeps the body (an unbounded campaign must not also grow an
  // unread in-memory copy).
  if (stream_ != nullptr) {
    (*stream_) << line << '\n';
  } else {
    text_ += line;
    text_ += '\n';
  }
}

void LogSink::record(std::uint32_t index, const fi::RunResult& run) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Duplicate or already-released index: drop. Without this, a replayed
  // run double-counts in the aggregate and — for a released index —
  // parks in pending_ forever, below next_index_.
  if (index < next_index_ || pending_.find(index) != pending_.end()) {
    ++duplicates_;
    return;
  }
  pending_.emplace(index, run);
  // Release the contiguous prefix.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_index_;
       it = pending_.erase(it), ++next_index_) {
    release(it->first, it->second);
  }
}

void LogSink::record_all(const fi::CampaignResult& result) {
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    record(static_cast<std::uint32_t>(i), result.runs[i]);
  }
}

CampaignAggregate LogSink::aggregate() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return aggregate_;
}

std::uint64_t LogSink::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::uint64_t LogSink::duplicates() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return duplicates_;
}

std::string LogSink::text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return text_;
}

}  // namespace mcs::analysis
