// Statistics for campaign analytics: proportions with Wilson confidence
// intervals (the right interval for small-n fault-injection campaigns),
// plus simple summary stats for latency series.
#pragma once

#include <cstdint>
#include <vector>

namespace mcs::analysis {

/// A proportion estimate with a confidence interval.
struct Proportion {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Wilson score interval for k successes in n trials at confidence given
/// by `z` (1.96 → 95 %). n == 0 yields {0,0,0}.
[[nodiscard]] Proportion wilson_interval(std::uint64_t k, std::uint64_t n,
                                         double z = 1.96);

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t n = 0;
};

/// Summary statistics of a sample (population stddev; empty → zeros).
[[nodiscard]] Summary summarize(std::vector<double> values);

}  // namespace mcs::analysis
