// Campaign reporting: the tables and the Figure-3-style chart the paper's
// "analytics" stage produces from the collected log file.
//
// Every renderer has two forms: one over a full CampaignResult (the serial
// replay path) and one over the mergeable LogSink aggregates, so a sharded
// campaign can be reported without ever materialising run results twice.
#pragma once

#include <string>
#include <vector>

#include "analysis/log_sink.hpp"
#include "core/campaign.hpp"

namespace mcs::analysis {

/// Figure 3 rendering: outcome distribution as an ASCII bar chart with
/// Wilson 95 % intervals per class.
[[nodiscard]] std::string render_distribution_chart(const fi::CampaignResult& result,
                                                    const std::string& title);
[[nodiscard]] std::string render_distribution_chart(const CampaignAggregate& aggregate,
                                                    const std::string& plan_name,
                                                    const std::string& title);

/// One row per outcome class that actually occurred: count, share,
/// confidence interval. Zero-count classes are skipped (like the chart),
/// so sparse multi-scenario comparisons stay readable; an empty campaign
/// renders a "(no runs)" marker instead of eight zero rows.
[[nodiscard]] std::string render_distribution_table(const fi::CampaignResult& result);
[[nodiscard]] std::string render_distribution_table(const fi::OutcomeDistribution& dist);

/// One labelled grid cell of a sweep, as the comparison report consumes it.
struct ComparisonColumn {
  std::string label;
  CampaignAggregate aggregate;
};

/// Side-by-side sweep comparison: one column per grid cell, one row per
/// outcome class that occurred in any cell — count, share and Wilson 95 %
/// interval per cell — plus a footer block (runs, injections, cell
/// failures, shutdown reclaims, detection latency). Deterministic byte
/// output for a given input, so resumed sweeps can be diffed against
/// fresh ones.
[[nodiscard]] std::string render_comparison_report(
    const std::vector<ComparisonColumn>& columns, const std::string& title);

/// Per-run detail listing (the campaign log file body).
[[nodiscard]] std::string render_run_log(const fi::CampaignResult& result);

/// Detection-latency summary paragraph.
[[nodiscard]] std::string render_latency_summary(const fi::CampaignResult& result);
[[nodiscard]] std::string render_latency_summary(const RunningStats& latency);

}  // namespace mcs::analysis
