// Campaign reporting: the tables and the Figure-3-style chart the paper's
// "analytics" stage produces from the collected log file.
#pragma once

#include <string>

#include "core/campaign.hpp"

namespace mcs::analysis {

/// Figure 3 rendering: outcome distribution as an ASCII bar chart with
/// Wilson 95 % intervals per class.
[[nodiscard]] std::string render_distribution_chart(const fi::CampaignResult& result,
                                                    const std::string& title);

/// One row per outcome class: count, share, confidence interval.
[[nodiscard]] std::string render_distribution_table(const fi::CampaignResult& result);

/// Per-run detail listing (the campaign log file body).
[[nodiscard]] std::string render_run_log(const fi::CampaignResult& result);

/// Detection-latency summary paragraph.
[[nodiscard]] std::string render_latency_summary(const fi::CampaignResult& result);

}  // namespace mcs::analysis
