// ISO 26262 SEooC evidence assembly.
//
// The paper's end goal: "we need to provide evidence about isolation
// guarantees needed for treating a hypervisor as SEooC". This module turns
// campaign results into that evidence: a claim-by-claim assessment with
// the measured support and the residual risks (the inconsistent cell
// state being the headline one).
#pragma once

#include <string>
#include <vector>

#include "analysis/log_sink.hpp"
#include "core/campaign.hpp"

namespace mcs::analysis {

/// Verdict for one safety claim.
enum class ClaimVerdict : std::uint8_t {
  Supported,       ///< evidence supports the claim
  Refuted,         ///< evidence contradicts the claim
  Inconclusive,    ///< not enough data
};

[[nodiscard]] std::string_view claim_verdict_name(ClaimVerdict verdict) noexcept;

struct ClaimAssessment {
  std::string claim;
  ClaimVerdict verdict = ClaimVerdict::Inconclusive;
  std::string evidence;
};

struct SeoocReport {
  std::vector<ClaimAssessment> claims;
  std::vector<std::string> residual_risks;

  [[nodiscard]] bool all_supported() const noexcept;
  [[nodiscard]] std::string to_text() const;
};

/// Build the SEooC assessment from the three paper campaigns:
/// medium (Figure 3), high/root, high/non-root.
[[nodiscard]] SeoocReport build_seooc_report(
    const fi::CampaignResult& medium_nonroot,
    const fi::CampaignResult& high_root,
    const fi::CampaignResult& high_nonroot);

/// Same assessment from the LogSink's mergeable aggregates — the form a
/// sharded campaign produces without retaining per-run results.
[[nodiscard]] SeoocReport build_seooc_report(
    const CampaignAggregate& medium_nonroot,
    const CampaignAggregate& high_root,
    const CampaignAggregate& high_nonroot);

}  // namespace mcs::analysis
