// Streaming campaign log collection for the sharded executor.
//
// The paper's framework writes each run "into a log file, which is further
// analyzed". With runs completing out of order across executor shards,
// ad-hoc line accumulation no longer works: LogSink restores run order
// before anything reaches the log stream, and folds every finished run
// into mergeable aggregates (OutcomeDistribution + RunningStats) so the
// analytics never need the full RunResult vector.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "core/campaign.hpp"
#include "core/outcome.hpp"

namespace mcs::analysis {

/// Mergeable streaming summary (Welford): the per-shard partial behind
/// campaign latency stats. Unlike analysis::summarize() it never stores
/// the sample, so shards can keep one per worker and merge at the end.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double stddev() const noexcept;  ///< population, like summarize()
  [[nodiscard]] double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Everything the analytics layer aggregates per campaign, as a mergeable
/// value: per-shard partials merge into the campaign total.
struct CampaignAggregate {
  fi::OutcomeDistribution distribution;
  RunningStats detection_latency;  ///< ms, over detected failures only
  std::uint64_t injections = 0;
  /// injections split by the fault domain that delivered them, indexed by
  /// fi::FaultDomain. Register-only campaigns put everything in slot 0, so
  /// the breakdown is free for legacy logs too.
  std::array<std::uint64_t, fi::kNumFaultDomains> injections_by_domain{};
  std::uint64_t cell_failures = 0;  ///< fi::is_cell_failure() runs
  std::uint64_t reclaimed = 0;      ///< …of those, recovered by shutdown

  void add(const fi::RunResult& run);
  void merge(const CampaignAggregate& other);
};

/// Thread-safe, order-restoring run sink. record() may be called from any
/// executor worker in any order; the rendered run_log_line()s are released
/// to the attached stream strictly in run order, so a campaign sharded
/// over N threads streams the exact log file the serial engine wrote.
///
/// Internally the sink is striped: out-of-order completions stage into one
/// of kNumStripes independently-locked pending maps (stripe = index mod
/// kNumStripes), so workers finishing far-apart indices never contend on
/// one mutex. A separate *release window* — the only place lines are
/// rendered, folded and emitted — drains the contiguous prefix in run
/// order. An arrival that IS the next index to release takes a fast path
/// straight through the window without touching any staging map, so a
/// serial (or mostly-in-order) campaign stages nothing: one reusable
/// render buffer plus fi::append_run_log_line keep the steady-state
/// release path allocation-free (pinned by AllocationObserver in the
/// tests).
///
/// Lock order: the release mutex is always taken before any stripe mutex,
/// never the reverse, so the window can inspect stripes while stagers
/// only ever hold their own stripe.
class LogSink {
 public:
  /// Retaining sink: the ordered log body accumulates and is read back
  /// with text().
  LogSink() = default;
  /// Streaming sink: lines go to `stream` (in order) as they become
  /// contiguous and are NOT retained — text() stays empty, so unbounded
  /// campaigns don't grow an unread in-memory copy. The stream must
  /// outlive the sink; it is only touched under the sink's lock.
  explicit LogSink(std::ostream& stream) : stream_(&stream) {}

  /// Fold in one finished run. Matches CampaignExecutor::ProgressFn.
  ///
  /// Idempotent: an index that was already recorded — still pending or
  /// already released (`< next_index_`) — is dropped and counted in
  /// duplicates(), never double-counted in the aggregate or re-emitted
  /// to the log. Replaying an already-ingested log over a live sink is
  /// therefore safe, which is what campaign resume relies on.
  void record(std::uint32_t index, const fi::RunResult& run);

  /// Fold an entire result in run order (serial campaigns, replays).
  void record_all(const fi::CampaignResult& result);

  /// Aggregate over the *released* (contiguous-from-0) runs, folded in
  /// run order — not completion order — so the final aggregate of a
  /// sharded campaign is bit-identical for any thread count, and to the
  /// aggregate rebuilt offline from the persisted log.
  [[nodiscard]] CampaignAggregate aggregate() const;
  /// Runs released (and aggregated) so far.
  [[nodiscard]] std::uint64_t records() const;
  /// record() calls dropped as duplicate / already-released indices.
  [[nodiscard]] std::uint64_t duplicates() const;

  /// The ordered log body retained so far (always empty for a streaming
  /// sink — read the stream instead).
  [[nodiscard]] std::string text() const;

  /// Flush the attached stream (no-op for a retaining sink). Recorded in
  /// LogPipeCounters so the pipeline stats show explicit flushes.
  void flush();

  /// Staging stripes: a power of two so the index→stripe map is a mask.
  static constexpr std::size_t kNumStripes = 8;

 private:
  struct Stripe {
    std::mutex mutex;
    std::map<std::uint32_t, fi::RunResult> pending;  ///< out-of-order backlog
  };

  /// Acquire the release window, counting a failed try_lock as contention.
  void lock_release_window() const;

  /// Render + fold + emit one run. Caller holds release_mutex_.
  void release_one(std::uint32_t index, const fi::RunResult& run);

  /// Drain the contiguous staged prefix starting at next_index_. Caller
  /// holds release_mutex_; `already_released` folds fast-path lines into
  /// the batch counter.
  void drain_locked(std::uint64_t already_released);

  mutable std::mutex release_mutex_;  ///< guards everything below
  std::ostream* stream_ = nullptr;
  std::string text_;
  std::string line_buf_;  ///< reusable render scratch, capacity stays warm
  std::uint64_t records_ = 0;
  CampaignAggregate aggregate_;

  std::array<Stripe, kNumStripes> stripes_;
  std::atomic<std::uint32_t> next_index_{0};
  std::atomic<std::uint64_t> duplicates_{0};
};

}  // namespace mcs::analysis
