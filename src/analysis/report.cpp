#include "analysis/report.hpp"

#include <iomanip>
#include <sstream>

#include "analysis/stats.hpp"

namespace mcs::analysis {
namespace {

constexpr int kBarWidth = 46;

std::string bar(double fraction) {
  const int filled = static_cast<int>(fraction * kBarWidth + 0.5);
  std::string out(static_cast<std::size_t>(filled), '#');
  out.resize(kBarWidth, ' ');
  return out;
}

std::string chart_body(const fi::OutcomeDistribution& dist,
                       std::uint64_t injections, const std::string& plan_name,
                       const std::string& title) {
  std::ostringstream out;
  out << title << "\n";
  out << std::string(title.size(), '=') << "\n";
  out << "plan: " << plan_name << ", runs: " << dist.total()
      << ", injections: " << injections << "\n\n";
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    const std::uint64_t count = dist.count(outcome);
    if (count == 0) continue;
    const double fraction = dist.fraction(outcome);
    out << std::setw(18) << std::left << fi::outcome_name(outcome) << " |"
        << bar(fraction) << "| " << std::setw(4) << std::right << count << "  "
        << std::fixed << std::setprecision(1) << fraction * 100.0 << "%\n";
  }
  return out.str();
}

}  // namespace

std::string render_distribution_chart(const fi::CampaignResult& result,
                                      const std::string& title) {
  return chart_body(result.distribution(), result.total_injections(),
                    result.plan.name, title);
}

std::string render_distribution_chart(const CampaignAggregate& aggregate,
                                      const std::string& plan_name,
                                      const std::string& title) {
  return chart_body(aggregate.distribution, aggregate.injections, plan_name,
                    title);
}

std::string render_distribution_table(const fi::OutcomeDistribution& dist) {
  std::ostringstream out;
  out << std::left << std::setw(20) << "outcome" << std::right << std::setw(8)
      << "count" << std::setw(9) << "share" << std::setw(20) << "95% Wilson CI"
      << "\n";
  out << std::string(57, '-') << "\n";
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    const std::uint64_t count = dist.count(outcome);
    // Zero-count classes are noise in a sparse comparison; skip them like
    // the chart does. The total line below still accounts for every run.
    if (count == 0) continue;
    const Proportion ci = wilson_interval(count, dist.total());
    out << std::left << std::setw(20) << fi::outcome_name(outcome) << std::right
        << std::setw(8) << count << std::setw(8) << std::fixed
        << std::setprecision(1) << ci.estimate * 100.0 << "%"
        << "    [" << std::setw(5) << ci.lower * 100.0 << "%, " << std::setw(5)
        << ci.upper * 100.0 << "%]\n";
  }
  if (dist.total() == 0) out << "(no runs)\n";
  out << std::string(57, '-') << "\n";
  out << std::left << std::setw(20) << "total" << std::right << std::setw(8)
      << dist.total() << "\n";
  return out.str();
}

std::string render_distribution_table(const fi::CampaignResult& result) {
  return render_distribution_table(result.distribution());
}

namespace {

constexpr int kCompareLabelWidth = 22;
constexpr int kCompareColWidth = 31;

/// Pad (or clip) to the comparison column width.
std::string compare_cell(std::string text) {
  text.resize(static_cast<std::size_t>(kCompareColWidth), ' ');
  return text;
}

std::string compare_count_cell(std::uint64_t count, std::uint64_t total) {
  const Proportion ci = wilson_interval(count, total);
  std::ostringstream out;
  out << std::setw(5) << count << "  " << std::fixed << std::setprecision(1)
      << std::setw(5) << ci.estimate * 100.0 << "% [" << std::setw(5)
      << ci.lower * 100.0 << "%," << std::setw(5) << ci.upper * 100.0 << "%]";
  return compare_cell(out.str());
}

std::string compare_number_cell(std::uint64_t value) {
  std::ostringstream out;
  out << std::setw(5) << value;
  return compare_cell(out.str());
}

}  // namespace

std::string render_comparison_report(
    const std::vector<ComparisonColumn>& columns, const std::string& title) {
  std::ostringstream out;
  out << title << "\n" << std::string(title.size(), '=') << "\n";
  if (columns.empty()) {
    out << "(no cells)\n";
    return out.str();
  }

  const std::size_t rule_width =
      kCompareLabelWidth + columns.size() * kCompareColWidth;
  out << "\n" << std::left << std::setw(kCompareLabelWidth) << "outcome";
  for (const ComparisonColumn& column : columns) {
    out << compare_cell(column.label);
  }
  out << "\n" << std::string(rule_width, '-') << "\n";

  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    // A row earns its place if the class occurred in any cell; the cells
    // where it did not then legitimately show 0, for the comparison.
    bool occurred = false;
    for (const ComparisonColumn& column : columns) {
      occurred = occurred || column.aggregate.distribution.count(outcome) > 0;
    }
    if (!occurred) continue;
    out << std::left << std::setw(kCompareLabelWidth)
        << fi::outcome_name(outcome);
    for (const ComparisonColumn& column : columns) {
      out << compare_count_cell(column.aggregate.distribution.count(outcome),
                                column.aggregate.distribution.total());
    }
    out << "\n";
  }

  out << std::string(rule_width, '-') << "\n";
  const auto footer_row = [&out, &columns](
                              const std::string& label,
                              const auto& value_of) {
    out << std::left << std::setw(kCompareLabelWidth) << label;
    for (const ComparisonColumn& column : columns) out << value_of(column);
    out << "\n";
  };
  footer_row("runs", [](const ComparisonColumn& c) {
    return compare_number_cell(c.aggregate.distribution.total());
  });
  footer_row("injections", [](const ComparisonColumn& c) {
    return compare_number_cell(c.aggregate.injections);
  });
  // Per-domain injection rows, one per non-register domain that delivered
  // anything in any column. Register-only reports render byte-identically
  // to the pre-domain format: slot 0 is the total already printed above.
  for (std::size_t d = 1; d < fi::kNumFaultDomains; ++d) {
    bool occurred = false;
    for (const ComparisonColumn& column : columns) {
      occurred = occurred || column.aggregate.injections_by_domain[d] > 0;
    }
    if (!occurred) continue;
    const auto domain = static_cast<fi::FaultDomain>(d);
    footer_row("inj " + std::string(fi::fault_domain_name(domain)),
               [d](const ComparisonColumn& c) {
                 return compare_number_cell(c.aggregate.injections_by_domain[d]);
               });
  }
  footer_row("cell failures", [](const ComparisonColumn& c) {
    return compare_number_cell(c.aggregate.cell_failures);
  });
  footer_row("shutdown reclaimed", [](const ComparisonColumn& c) {
    return compare_number_cell(c.aggregate.reclaimed);
  });
  footer_row("detect latency", [](const ComparisonColumn& c) {
    const RunningStats& latency = c.aggregate.detection_latency;
    std::ostringstream cell;
    cell << std::fixed << std::setprecision(1) << latency.mean() << "ms (n="
         << latency.n() << ")";
    return compare_cell(cell.str());
  });
  return out.str();
}

std::string render_run_log(const fi::CampaignResult& result) {
  // The LogSink is the one place that renders run logs; the serial path
  // just replays the result through it.
  LogSink sink;
  sink.record_all(result);
  return sink.text();
}

std::string render_latency_summary(const RunningStats& latency) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << "failure detection latency (first injection -> first hypervisor "
         "error): n="
      << latency.n() << ", mean=" << latency.mean()
      << "ms, stddev=" << latency.stddev() << "ms, max=" << latency.max()
      << "ms\n";
  return out.str();
}

std::string render_latency_summary(const fi::CampaignResult& result) {
  // Delegate to the streaming form so serial and sharded campaigns report
  // the same fields for the same data.
  RunningStats latency;
  for (const fi::RunResult& run : result.runs) {
    if (run.failure_detected()) {
      latency.add(static_cast<double>(run.detection_latency()));
    }
  }
  return render_latency_summary(latency);
}

}  // namespace mcs::analysis
