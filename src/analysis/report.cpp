#include "analysis/report.hpp"

#include <iomanip>
#include <sstream>

#include "analysis/stats.hpp"

namespace mcs::analysis {
namespace {

constexpr int kBarWidth = 46;

std::string bar(double fraction) {
  const int filled = static_cast<int>(fraction * kBarWidth + 0.5);
  std::string out(static_cast<std::size_t>(filled), '#');
  out.resize(kBarWidth, ' ');
  return out;
}

}  // namespace

std::string render_distribution_chart(const fi::CampaignResult& result,
                                      const std::string& title) {
  const fi::OutcomeDistribution dist = result.distribution();
  std::ostringstream out;
  out << title << "\n";
  out << std::string(title.size(), '=') << "\n";
  out << "plan: " << result.plan.name << ", runs: " << dist.total()
      << ", injections: " << result.total_injections() << "\n\n";
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    const std::uint64_t count = dist.count(outcome);
    if (count == 0) continue;
    const double fraction = dist.fraction(outcome);
    out << std::setw(18) << std::left << fi::outcome_name(outcome) << " |"
        << bar(fraction) << "| " << std::setw(4) << std::right << count << "  "
        << std::fixed << std::setprecision(1) << fraction * 100.0 << "%\n";
  }
  return out.str();
}

std::string render_distribution_table(const fi::CampaignResult& result) {
  const fi::OutcomeDistribution dist = result.distribution();
  std::ostringstream out;
  out << std::left << std::setw(20) << "outcome" << std::right << std::setw(8)
      << "count" << std::setw(9) << "share" << std::setw(20) << "95% Wilson CI"
      << "\n";
  out << std::string(57, '-') << "\n";
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    const std::uint64_t count = dist.count(outcome);
    const Proportion ci = wilson_interval(count, dist.total());
    out << std::left << std::setw(20) << fi::outcome_name(outcome) << std::right
        << std::setw(8) << count << std::setw(8) << std::fixed
        << std::setprecision(1) << ci.estimate * 100.0 << "%"
        << "    [" << std::setw(5) << ci.lower * 100.0 << "%, " << std::setw(5)
        << ci.upper * 100.0 << "%]\n";
  }
  out << std::string(57, '-') << "\n";
  out << std::left << std::setw(20) << "total" << std::right << std::setw(8)
      << dist.total() << "\n";
  return out.str();
}

std::string render_run_log(const fi::CampaignResult& result) {
  std::ostringstream out;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    out << fi::run_log_line(static_cast<std::uint32_t>(i), result.runs[i])
        << "\n";
  }
  return out.str();
}

std::string render_latency_summary(const fi::CampaignResult& result) {
  std::vector<double> latencies;
  for (const fi::RunResult& run : result.runs) {
    if (run.failure_detected()) {
      latencies.push_back(static_cast<double>(run.detection_latency()));
    }
  }
  const Summary summary = summarize(std::move(latencies));
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << "failure detection latency (first injection -> first hypervisor "
         "error): n="
      << summary.n << ", mean=" << summary.mean << "ms, median="
      << summary.median << "ms, max=" << summary.max << "ms\n";
  return out.str();
}

}  // namespace mcs::analysis
