#include "analysis/report.hpp"

#include <iomanip>
#include <sstream>

#include "analysis/stats.hpp"

namespace mcs::analysis {
namespace {

constexpr int kBarWidth = 46;

std::string bar(double fraction) {
  const int filled = static_cast<int>(fraction * kBarWidth + 0.5);
  std::string out(static_cast<std::size_t>(filled), '#');
  out.resize(kBarWidth, ' ');
  return out;
}

std::string chart_body(const fi::OutcomeDistribution& dist,
                       std::uint64_t injections, const std::string& plan_name,
                       const std::string& title) {
  std::ostringstream out;
  out << title << "\n";
  out << std::string(title.size(), '=') << "\n";
  out << "plan: " << plan_name << ", runs: " << dist.total()
      << ", injections: " << injections << "\n\n";
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    const std::uint64_t count = dist.count(outcome);
    if (count == 0) continue;
    const double fraction = dist.fraction(outcome);
    out << std::setw(18) << std::left << fi::outcome_name(outcome) << " |"
        << bar(fraction) << "| " << std::setw(4) << std::right << count << "  "
        << std::fixed << std::setprecision(1) << fraction * 100.0 << "%\n";
  }
  return out.str();
}

}  // namespace

std::string render_distribution_chart(const fi::CampaignResult& result,
                                      const std::string& title) {
  return chart_body(result.distribution(), result.total_injections(),
                    result.plan.name, title);
}

std::string render_distribution_chart(const CampaignAggregate& aggregate,
                                      const std::string& plan_name,
                                      const std::string& title) {
  return chart_body(aggregate.distribution, aggregate.injections, plan_name,
                    title);
}

std::string render_distribution_table(const fi::OutcomeDistribution& dist) {
  std::ostringstream out;
  out << std::left << std::setw(20) << "outcome" << std::right << std::setw(8)
      << "count" << std::setw(9) << "share" << std::setw(20) << "95% Wilson CI"
      << "\n";
  out << std::string(57, '-') << "\n";
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto outcome = static_cast<fi::Outcome>(i);
    const std::uint64_t count = dist.count(outcome);
    const Proportion ci = wilson_interval(count, dist.total());
    out << std::left << std::setw(20) << fi::outcome_name(outcome) << std::right
        << std::setw(8) << count << std::setw(8) << std::fixed
        << std::setprecision(1) << ci.estimate * 100.0 << "%"
        << "    [" << std::setw(5) << ci.lower * 100.0 << "%, " << std::setw(5)
        << ci.upper * 100.0 << "%]\n";
  }
  out << std::string(57, '-') << "\n";
  out << std::left << std::setw(20) << "total" << std::right << std::setw(8)
      << dist.total() << "\n";
  return out.str();
}

std::string render_distribution_table(const fi::CampaignResult& result) {
  return render_distribution_table(result.distribution());
}

std::string render_run_log(const fi::CampaignResult& result) {
  // The LogSink is the one place that renders run logs; the serial path
  // just replays the result through it.
  LogSink sink;
  sink.record_all(result);
  return sink.text();
}

std::string render_latency_summary(const RunningStats& latency) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << "failure detection latency (first injection -> first hypervisor "
         "error): n="
      << latency.n() << ", mean=" << latency.mean()
      << "ms, stddev=" << latency.stddev() << "ms, max=" << latency.max()
      << "ms\n";
  return out.str();
}

std::string render_latency_summary(const fi::CampaignResult& result) {
  // Delegate to the streaming form so serial and sharded campaigns report
  // the same fields for the same data.
  RunningStats latency;
  for (const fi::RunResult& run : result.runs) {
    if (run.failure_detected()) {
      latency.add(static_cast<double>(run.detection_latency()));
    }
  }
  return render_latency_summary(latency);
}

}  // namespace mcs::analysis
