// Bit-manipulation helpers shared by the fault models and the architecture
// model. All operate on explicit-width unsigned types; signed arithmetic is
// never used for register values (Core Guidelines ES.101).
#pragma once

#include <bit>
#include <cstdint>

namespace mcs::util {

/// Flip bit `bit` (0 = LSB) of `value`. Involution: flipping twice restores.
template <typename U>
[[nodiscard]] constexpr U flip_bit(U value, unsigned bit) noexcept {
  static_assert(std::is_unsigned_v<U>);
  return value ^ (U{1} << bit);
}

/// Test bit `bit` of `value`.
template <typename U>
[[nodiscard]] constexpr bool test_bit(U value, unsigned bit) noexcept {
  static_assert(std::is_unsigned_v<U>);
  return (value >> bit) & U{1};
}

/// Set bit `bit` of `value`.
template <typename U>
[[nodiscard]] constexpr U set_bit(U value, unsigned bit) noexcept {
  static_assert(std::is_unsigned_v<U>);
  return value | (U{1} << bit);
}

/// Clear bit `bit` of `value`.
template <typename U>
[[nodiscard]] constexpr U clear_bit(U value, unsigned bit) noexcept {
  static_assert(std::is_unsigned_v<U>);
  return value & ~(U{1} << bit);
}

/// Extract bits [hi:lo] (inclusive, ARM reference-manual style).
template <typename U>
[[nodiscard]] constexpr U bits(U value, unsigned hi, unsigned lo) noexcept {
  static_assert(std::is_unsigned_v<U>);
  const unsigned width = hi - lo + 1;
  const U mask = width >= sizeof(U) * 8 ? ~U{0} : (U{1} << width) - 1;
  return (value >> lo) & mask;
}

/// Deposit `field` into bits [hi:lo] of `value`.
template <typename U>
[[nodiscard]] constexpr U deposit_bits(U value, unsigned hi, unsigned lo, U field) noexcept {
  static_assert(std::is_unsigned_v<U>);
  const unsigned width = hi - lo + 1;
  const U mask = width >= sizeof(U) * 8 ? ~U{0} : (U{1} << width) - 1;
  return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/// Number of set bits.
template <typename U>
[[nodiscard]] constexpr int popcount(U value) noexcept {
  static_assert(std::is_unsigned_v<U>);
  return std::popcount(value);
}

/// True iff `value` is aligned to `alignment` (power of two).
[[nodiscard]] constexpr bool is_aligned(std::uint64_t value, std::uint64_t alignment) noexcept {
  return (value & (alignment - 1)) == 0;
}

/// Round `value` down to a multiple of `alignment` (power of two).
[[nodiscard]] constexpr std::uint64_t align_down(std::uint64_t value,
                                                 std::uint64_t alignment) noexcept {
  return value & ~(alignment - 1);
}

/// Round `value` up to a multiple of `alignment` (power of two).
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t value,
                                               std::uint64_t alignment) noexcept {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace mcs::util
