// Structured event log. The paper collects every observation into "a log
// file, which is further analyzed"; EventLog is that file. Records carry
// the simulated timestamp, the originating component and CPU, and a
// severity, so the analysis stage can classify runs without re-running.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"

namespace mcs::util {

enum class Severity : std::uint8_t { Debug, Info, Warning, Error, Fatal };

std::string_view severity_name(Severity severity) noexcept;

struct LogRecord {
  Ticks timestamp{};
  Severity severity = Severity::Info;
  std::string component;  ///< e.g. "hypervisor", "uart1", "rtos"
  int cpu = -1;           ///< originating CPU, -1 if not CPU-bound
  std::string message;
};

/// Append-only in-memory log with optional mirroring to a callback (used by
/// the campaign orchestrator to stream records into the run log file).
class EventLog {
 public:
  using Mirror = std::function<void(const LogRecord&)>;

  void append(LogRecord record);

  void log(Ticks now, Severity severity, std::string component, int cpu,
           std::string message) {
    append(LogRecord{now, severity, std::move(component), cpu, std::move(message)});
  }

  [[nodiscard]] const std::vector<LogRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  void clear() noexcept { records_.clear(); }

  /// Drop every record past the first `count` (testbed snapshot restore:
  /// the log is append-only between resets, so rewinding to a captured
  /// length reproduces the captured log exactly, without copying records).
  void truncate(std::size_t count) noexcept {
    if (count < records_.size()) records_.resize(count);
  }

  /// Count records at or above `severity`.
  [[nodiscard]] std::size_t count_at_least(Severity severity) const noexcept;

  /// True iff any record from `component` contains `needle`.
  [[nodiscard]] bool contains(std::string_view component, std::string_view needle) const;

  void set_mirror(Mirror mirror) { mirror_ = std::move(mirror); }

  /// Render the whole log as the text file the paper's framework writes.
  [[nodiscard]] std::string to_text() const;

 private:
  std::vector<LogRecord> records_;
  Mirror mirror_;
};

}  // namespace mcs::util
