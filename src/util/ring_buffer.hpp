// Fixed-capacity ring buffer. Used for UART FIFOs and inter-task queues in
// the mini-RTOS; overwrite semantics are explicit (push fails when full —
// devices decide whether to drop or overwrite).
#pragma once

#include <array>
#include <cstddef>
#include <optional>

namespace mcs::util {

template <typename T, std::size_t Capacity>
class RingBuffer {
  static_assert(Capacity > 0, "ring buffer needs a positive capacity");

 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == Capacity; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return Capacity; }

  /// Append; returns false (and drops the element) when full.
  bool push(T value) noexcept {
    if (full()) return false;
    items_[(head_ + size_) % Capacity] = std::move(value);
    ++size_;
    return true;
  }

  /// Append, evicting the oldest element when full.
  void push_overwrite(T value) noexcept {
    if (full()) {
      items_[head_] = std::move(value);
      head_ = (head_ + 1) % Capacity;
    } else {
      push(std::move(value));
    }
  }

  /// Remove and return the oldest element.
  std::optional<T> pop() noexcept {
    if (empty()) return std::nullopt;
    T out = std::move(items_[head_]);
    head_ = (head_ + 1) % Capacity;
    --size_;
    return out;
  }

  [[nodiscard]] const T* peek() const noexcept {
    return empty() ? nullptr : &items_[head_];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::array<T, Capacity> items_{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mcs::util
