#include "util/rng.hpp"

namespace mcs::util {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;  // degenerate; callers must not rely on this
#if defined(__SIZEOF_INT128__)
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
#else
  // Portable rejection sampling fallback.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % bound;
#endif
}

}  // namespace mcs::util
