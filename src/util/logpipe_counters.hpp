// LogPipeCounters: lock-free activity counters for the run-log pipeline,
// the same plumbing pattern as fi::TestbedPool's per-run counters.
//
// The pipeline has three tiers — write (LogSink render/release), read
// (MappedFile + the zero-copy run-log scanner) and resume (parallel
// rebuild of completed sweep cells) — and each records what it actually
// did here, so `sweep`'s stderr epilogue and bench_logpipe can report
// lines/sec, bytes mapped, sink contention and flush counts without any
// instrumentation in the hot paths beyond one relaxed atomic add.
#pragma once

#include <atomic>
#include <cstdint>

namespace mcs::util {

class LogPipeCounters {
 public:
  /// The process-wide instance every pipeline tier records into.
  static LogPipeCounters& instance();

  LogPipeCounters() = default;
  LogPipeCounters(const LogPipeCounters&) = delete;
  LogPipeCounters& operator=(const LogPipeCounters&) = delete;

  struct Stats {
    // Write tier (LogSink).
    std::uint64_t sink_records = 0;     ///< record() calls accepted or dropped
    std::uint64_t sink_lines = 0;       ///< lines rendered + released, in order
    std::uint64_t sink_batches = 0;     ///< release-window drain sessions
    std::uint64_t sink_contention = 0;  ///< release-window lock waits
    std::uint64_t sink_flushes = 0;     ///< explicit stream flushes
    // Read tier (MappedFile + run-log scanner).
    std::uint64_t bytes_mapped = 0;     ///< bytes served via mmap views
    std::uint64_t map_fallbacks = 0;    ///< files served by the read fallback
    std::uint64_t parse_lines = 0;      ///< run-log lines scanned zero-copy
    std::uint64_t parse_bytes = 0;      ///< run-log bytes scanned zero-copy
    // Resume tier (sweep cold-start over a populated logdir).
    std::uint64_t resumed_cells = 0;    ///< cells rebuilt from persisted logs
    std::uint64_t parallel_resume_batches = 0;  ///< parallel resume scans
  };
  [[nodiscard]] Stats stats() const noexcept;

  /// Zero every counter (benchmarks and tests window by resetting).
  void reset() noexcept;

  void record_sink_record() noexcept { add(sink_records_); }
  void record_sink_release(std::uint64_t lines) noexcept {
    sink_lines_.fetch_add(lines, std::memory_order_relaxed);
    add(sink_batches_);
  }
  void record_sink_contention() noexcept { add(sink_contention_); }
  void record_sink_flush() noexcept { add(sink_flushes_); }
  void record_map(std::uint64_t bytes) noexcept {
    bytes_mapped_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void record_map_fallback(std::uint64_t bytes) noexcept {
    bytes_mapped_.fetch_add(bytes, std::memory_order_relaxed);
    add(map_fallbacks_);
  }
  void record_parse(std::uint64_t lines, std::uint64_t bytes) noexcept {
    parse_lines_.fetch_add(lines, std::memory_order_relaxed);
    parse_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void record_resumed_cell() noexcept { add(resumed_cells_); }
  void record_parallel_resume() noexcept { add(parallel_resume_batches_); }

 private:
  void add(std::atomic<std::uint64_t>& counter) noexcept {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> sink_records_{0};
  std::atomic<std::uint64_t> sink_lines_{0};
  std::atomic<std::uint64_t> sink_batches_{0};
  std::atomic<std::uint64_t> sink_contention_{0};
  std::atomic<std::uint64_t> sink_flushes_{0};
  std::atomic<std::uint64_t> bytes_mapped_{0};
  std::atomic<std::uint64_t> map_fallbacks_{0};
  std::atomic<std::uint64_t> parse_lines_{0};
  std::atomic<std::uint64_t> parse_bytes_{0};
  std::atomic<std::uint64_t> resumed_cells_{0};
  std::atomic<std::uint64_t> parallel_resume_batches_{0};
};

}  // namespace mcs::util
