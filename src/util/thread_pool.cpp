#include "util/thread_pool.hpp"

#include <cstdlib>

namespace mcs::util {

unsigned ThreadPool::default_threads() noexcept {
  if (const char* env = std::getenv("MCS_CAMPAIGN_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return parsed > kMaxThreads ? kMaxThreads : static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  if (threads > kMaxThreads) threads = kMaxThreads;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace mcs::util
