// MappedFile: read-only, zero-copy access to a whole file.
//
// The log pipeline reads the same bytes it wrote — per-cell run logs,
// fingerprint sidecars, sweep specs — and the historical idiom was
// ifstream → ostringstream::rdbuf → .str(): two full copies of the file
// before a single line is parsed. MappedFile replaces that with mmap(2)
// (one view, no copies, the page cache is the buffer) and degrades to a
// single read(2) into an owned buffer when mmap is unavailable for the
// fd (pipes, some filesystems) — callers see a std::string_view either
// way and never know which path served them.
//
// Lifetime: the view is valid exactly as long as the MappedFile object.
// Parsers that keep string_views into the file (the zero-copy run-log
// scanner) must finish — or copy out — before the object dies.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace mcs::util {

class MappedFile {
 public:
  /// Map `path` read-only. ENoEnt when the file does not exist, EIo for
  /// directories and read errors. An empty file maps to an empty view.
  /// `allow_mmap = false` forces the read(2) fallback (tests pin that the
  /// two paths serve identical bytes).
  [[nodiscard]] static Expected<MappedFile> open(const std::string& path,
                                                 bool allow_mmap = true);

  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The whole file. Valid for this object's lifetime only.
  [[nodiscard]] std::string_view view() const noexcept {
    return mapped_ != nullptr
               ? std::string_view(static_cast<const char*>(mapped_), size_)
               : std::string_view(fallback_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return view().size(); }

  /// True when the bytes are served by mmap (vs the read fallback).
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_ != nullptr; }

 private:
  void reset() noexcept;

  void* mapped_ = nullptr;   ///< non-null ⇔ mmap path
  std::size_t size_ = 0;     ///< mapped length (mmap path only)
  std::string fallback_;     ///< owned bytes (read path)
};

/// Read a whole file into a string (one read, no double buffer). The
/// convenience form for small metadata files where a copy is fine.
[[nodiscard]] Expected<std::string> read_file(const std::string& path);

}  // namespace mcs::util
