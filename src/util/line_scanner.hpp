// Zero-copy line iteration over an in-memory text buffer.
//
// util::split(text, '\n') materialises a std::string per line — one heap
// allocation per log line, twice the bytes of the file. The parsers that
// walk multi-million-line run logs iterate string_views into the original
// buffer instead: no copies, no allocations, same line boundaries split()
// produced (every '\n'-separated segment; the callers skip blanks, and
// util::trim strips the '\r' of CRLF logs exactly as before).
#pragma once

#include <string_view>
#include <utility>

namespace mcs::util {

/// Call `fn(std::string_view line)` for each '\n'-separated segment of
/// `text`, in order. Interior empty segments are visited (callers decide
/// what a blank line means); the empty segment after a trailing '\n' is
/// not, matching how every split()-based caller skipped it.
template <typename Fn>
void for_each_line(std::string_view text, Fn&& fn) {
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      fn(text.substr(begin));
      return;
    }
    fn(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

}  // namespace mcs::util
