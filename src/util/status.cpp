#include "util/status.hpp"

#include "util/strings.hpp"

namespace mcs::util {

std::string_view code_name(Code code) noexcept {
  switch (code) {
    case Code::Ok: return "OK";
    case Code::EPerm: return "EPERM";
    case Code::ENoEnt: return "ENOENT";
    case Code::EIo: return "EIO";
    case Code::ENoMem: return "ENOMEM";
    case Code::EFault: return "EFAULT";
    case Code::EBusy: return "EBUSY";
    case Code::EExist: return "EEXIST";
    case Code::EInval: return "EINVAL";
    case Code::ERange: return "ERANGE";
    case Code::ENoSys: return "ENOSYS";
    case Code::ETimedOut: return "ETIMEDOUT";
    case Code::Internal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::message() const {
  if (lazy_prefix_ == nullptr) return message_;
  std::string out{lazy_prefix_};
  out += hex(lazy_arg_);
  return out;
}

std::string Status::to_string() const {
  std::string out{code_name(code_)};
  const std::string detail = message();
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.to_string();
}

}  // namespace mcs::util
