// A small fixed-size worker pool for sharding embarrassingly parallel
// campaign work. Deliberately minimal: submit fire-and-forget jobs, wait
// for the queue to drain. Determinism is the caller's job (the campaign
// executor pre-computes per-run seeds and pre-sizes result slots, so the
// scheduling order the pool picks can never leak into results).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcs::util {

class ThreadPool {
 public:
  /// Upper bound on pool width; requests beyond it (including garbage
  /// negative CLI values cast to unsigned) are clamped, never honoured.
  static constexpr unsigned kMaxThreads = 256;

  /// Spin up `threads` workers; 0 → default_threads(), clamped to
  /// kMaxThreads.
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs must not throw (the simulator reports failures
  /// through Status/RunResult, never exceptions).
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Pool width when the caller does not choose: the MCS_CAMPAIGN_THREADS
  /// environment variable when set (clamped to [1, 256]), otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  [[nodiscard]] static unsigned default_threads() noexcept;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace mcs::util
