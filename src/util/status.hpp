// Status and Expected<T>: lightweight error propagation for the simulator.
//
// The hypervisor ABI surfaces POSIX-style negative error codes (Jailhouse
// returns -EINVAL and friends to its root-cell driver); Status mirrors that
// so hypercall results can be reported exactly the way the paper observes
// them ("invalid arguments").
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mcs::util {

/// Error categories used across the simulator. Values of the E* members
/// match the Linux errno the Jailhouse driver would surface.
enum class Code : std::int32_t {
  Ok = 0,
  EPerm = 1,         ///< operation not permitted
  ENoEnt = 2,        ///< no such cell / object
  EIo = 5,           ///< device I/O error
  ENoMem = 12,       ///< out of memory / no free region
  EFault = 14,       ///< bad address (wild pointer dereference)
  EBusy = 16,        ///< resource busy (cell running, CPU assigned...)
  EExist = 17,       ///< cell id already allocated
  EInval = 22,       ///< invalid arguments — the paper's headline error
  ERange = 34,       ///< value out of representable range
  ENoSys = 38,       ///< unknown hypercall number
  ETimedOut = 110,   ///< simulated operation deadline expired
  Internal = 1000,   ///< simulator bug (never expected in a passing run)
};

/// Human-readable name for an error category ("EINVAL", "OK", ...).
std::string_view code_name(Code code) noexcept;

/// A success/error result with an optional context message.
///
/// Hot failure paths (stage-2 faults, out-of-DRAM accesses) use the
/// *lazy* form: a static-storage prefix plus a numeric argument, rendered
/// into a string only when someone actually asks for the message. An
/// injection campaign that provokes millions of faults never touches the
/// heap for them (pinned by the AllocationObserver fault-path test).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(Code code, std::string message) : code_(code), message_(std::move(message)) {}
  explicit Status(Code code) : code_(code) {}

  /// Lazy form: `prefix` must have static storage duration (a string
  /// literal); the rendered message is `prefix` + hex(arg). Allocation-free
  /// to construct, copy and move.
  Status(Code code, const char* prefix, std::uint64_t arg) noexcept
      : code_(code), lazy_prefix_(prefix), lazy_arg_(arg) {}

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Code::Ok; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Code code() const noexcept { return code_; }

  /// Renders the message on demand (lazy statuses materialise their string
  /// here, not at construction).
  [[nodiscard]] std::string message() const;

  /// Jailhouse-style negative errno (0 on success); what the root-cell
  /// driver prints, e.g. -22 → "invalid arguments".
  [[nodiscard]] std::int32_t errno_value() const noexcept {
    return is_ok() ? 0 : -static_cast<std::int32_t>(code_);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  Code code_ = Code::Ok;
  std::string message_;
  const char* lazy_prefix_ = nullptr;  ///< static storage; see lazy ctor
  std::uint64_t lazy_arg_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

inline Status ok_status() { return Status::ok(); }
inline Status invalid_argument(std::string msg) { return {Code::EInval, std::move(msg)}; }
inline Status not_found(std::string msg) { return {Code::ENoEnt, std::move(msg)}; }
inline Status already_exists(std::string msg) { return {Code::EExist, std::move(msg)}; }
inline Status busy(std::string msg) { return {Code::EBusy, std::move(msg)}; }
inline Status fault(std::string msg) { return {Code::EFault, std::move(msg)}; }
inline Status no_mem(std::string msg) { return {Code::ENoMem, std::move(msg)}; }
inline Status perm(std::string msg) { return {Code::EPerm, std::move(msg)}; }
inline Status nosys(std::string msg) { return {Code::ENoSys, std::move(msg)}; }
inline Status internal(std::string msg) { return {Code::Internal, std::move(msg)}; }

/// Minimal expected-or-status: value on success, Status on failure.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Expected(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace mcs::util

/// Propagate a non-OK Status to the caller.
#define MCS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::mcs::util::Status mcs_status_ = (expr);       \
    if (!mcs_status_.is_ok()) return mcs_status_;   \
  } while (false)
