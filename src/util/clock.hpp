// Simulated time. The whole testbed advances on a single discrete clock;
// one Tick is one scheduling quantum of the board model (nominally 1 ms of
// wall time on the Banana Pi, so a paper-style 1-minute test is 60'000
// ticks).
#pragma once

#include <compare>
#include <cstdint>

namespace mcs::util {

/// Strongly-typed simulated time point / duration (ticks since boot).
struct Ticks {
  std::uint64_t value = 0;

  constexpr auto operator<=>(const Ticks&) const = default;

  constexpr Ticks operator+(Ticks other) const noexcept { return {value + other.value}; }
  constexpr Ticks operator-(Ticks other) const noexcept { return {value - other.value}; }
  Ticks& operator+=(Ticks other) noexcept {
    value += other.value;
    return *this;
  }
};

/// One tick models one millisecond of board time.
constexpr Ticks from_millis(std::uint64_t ms) noexcept { return {ms}; }
constexpr Ticks from_seconds(std::uint64_t s) noexcept { return {s * 1000}; }
constexpr Ticks from_minutes(std::uint64_t m) noexcept { return {m * 60'000}; }
constexpr std::uint64_t to_millis(Ticks t) noexcept { return t.value; }

/// Monotonic simulation clock owned by the board; everything else holds a
/// const reference and may only read.
class SimClock {
 public:
  [[nodiscard]] Ticks now() const noexcept { return now_; }
  void advance(Ticks delta) noexcept { now_ += delta; }
  void tick() noexcept { now_ += Ticks{1}; }

  /// Power-on restore (Board::reset only): time starts again at tick 0,
  /// so a reused board is indistinguishable from a freshly built one.
  void reset() noexcept { now_ = Ticks{}; }

  /// Snapshot restore (Board::restore_from only): rewind to the captured
  /// tick so absolute device deadlines line up with the restored state.
  void restore(Ticks now) noexcept { now_ = now; }

 private:
  Ticks now_{};
};

}  // namespace mcs::util
