// AllocationObserver: a test hook counting global operator-new calls.
//
// The testbed-reuse contract is "zero board/testbed heap allocations in
// steady state": after warm-up, checking a pooled testbed out and
// resetting it to power-on must not touch the general-purpose heap at
// all (arena rewinds, container clear()s that keep capacity, plain
// deallocations are all fine — new allocations are not). Asserting that
// needs an observable the allocator itself provides; this header's
// companion .cpp replaces the global operator new/delete with counting
// forwarders to malloc/free.
//
// The replacement is linked into a binary only when something in it
// references this interface (static-library pull-in), i.e. into the test
// suite — production binaries keep the stock allocator.
#pragma once

#include <cstdint>

namespace mcs::util {

class AllocationObserver {
 public:
  /// Global operator-new invocations (all forms) since process start.
  /// Monotonic; callers measure windows by differencing.
  [[nodiscard]] static std::uint64_t allocations() noexcept;

  /// Scoped window: allocations performed since construction.
  class Window {
   public:
    Window() noexcept : start_(allocations()) {}
    [[nodiscard]] std::uint64_t allocations() const noexcept {
      return AllocationObserver::allocations() - start_;
    }

   private:
    std::uint64_t start_;
  };
};

}  // namespace mcs::util
