// Deterministic random number generation for reproducible experiments.
//
// Every stochastic decision in a fault-injection campaign (which call to
// hit, which register, which bit) flows from one seeded generator, so a
// campaign replays bit-identically given (seed, plan). SplitMix64 is used
// for seed expansion, Xoshiro256** as the workhorse stream.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mcs::util {

/// SplitMix64: tiny, full-period seed expander (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna): fast, high-quality 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Fork a statistically independent child stream (for per-run RNGs).
  Xoshiro256 fork() noexcept { return Xoshiro256(next() ^ 0xd6e8feb86659fd93ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mcs::util
