#include "util/strings.hpp"

#include <cctype>
#include <cstdint>
#include <sstream>

namespace mcs::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string hex(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

std::string hex(std::uint64_t value, int digits) {
  std::ostringstream out;
  out << std::hex << value;
  std::string body = out.str();
  while (static_cast<int>(body.size()) < digits) body.insert(body.begin(), '0');
  return "0x" + body;
}

std::string percent(std::size_t numerator, std::size_t denominator) {
  if (denominator == 0) return "n/a";
  const double pct = 100.0 * static_cast<double>(numerator) /
                     static_cast<double>(denominator);
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  out << pct << '%';
  return out.str();
}

}  // namespace mcs::util
