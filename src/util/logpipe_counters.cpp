#include "util/logpipe_counters.hpp"

namespace mcs::util {

LogPipeCounters& LogPipeCounters::instance() {
  static LogPipeCounters counters;
  return counters;
}

LogPipeCounters::Stats LogPipeCounters::stats() const noexcept {
  Stats out;
  out.sink_records = sink_records_.load(std::memory_order_relaxed);
  out.sink_lines = sink_lines_.load(std::memory_order_relaxed);
  out.sink_batches = sink_batches_.load(std::memory_order_relaxed);
  out.sink_contention = sink_contention_.load(std::memory_order_relaxed);
  out.sink_flushes = sink_flushes_.load(std::memory_order_relaxed);
  out.bytes_mapped = bytes_mapped_.load(std::memory_order_relaxed);
  out.map_fallbacks = map_fallbacks_.load(std::memory_order_relaxed);
  out.parse_lines = parse_lines_.load(std::memory_order_relaxed);
  out.parse_bytes = parse_bytes_.load(std::memory_order_relaxed);
  out.resumed_cells = resumed_cells_.load(std::memory_order_relaxed);
  out.parallel_resume_batches =
      parallel_resume_batches_.load(std::memory_order_relaxed);
  return out;
}

void LogPipeCounters::reset() noexcept {
  sink_records_.store(0, std::memory_order_relaxed);
  sink_lines_.store(0, std::memory_order_relaxed);
  sink_batches_.store(0, std::memory_order_relaxed);
  sink_contention_.store(0, std::memory_order_relaxed);
  sink_flushes_.store(0, std::memory_order_relaxed);
  bytes_mapped_.store(0, std::memory_order_relaxed);
  map_fallbacks_.store(0, std::memory_order_relaxed);
  parse_lines_.store(0, std::memory_order_relaxed);
  parse_bytes_.store(0, std::memory_order_relaxed);
  resumed_cells_.store(0, std::memory_order_relaxed);
  parallel_resume_batches_.store(0, std::memory_order_relaxed);
}

}  // namespace mcs::util
