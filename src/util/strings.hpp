// Small string helpers used by the log parser and report generators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcs::util {

/// Split on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// True iff `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Render `value` as 0x-prefixed lowercase hex (no leading zeros).
[[nodiscard]] std::string hex(std::uint64_t value);

/// Render `value` as 0x-prefixed hex padded to `digits` digits.
[[nodiscard]] std::string hex(std::uint64_t value, int digits);

/// Percentage "12.3%" with one decimal; `denominator` 0 renders "n/a".
[[nodiscard]] std::string percent(std::size_t numerator, std::size_t denominator);

}  // namespace mcs::util
