// Monotonic bump allocator for run-scoped and board-scoped storage.
//
// The campaign hot path provisions the same objects over and over — DRAM
// pages, CPU blocks, per-run scratch — and the per-run cost is dominated
// by general-purpose heap churn, not by the bytes themselves. An Arena
// trades free() for reset(): allocation is a pointer bump into large
// blocks, nothing is ever freed individually, and reset() rewinds the
// whole arena to empty while keeping every block for the next run. After
// the first run warms the arena up, steady-state reuse performs zero heap
// allocations (asserted via util::AllocationObserver).
//
// Ownership rule: memory handed out by an arena lives until the *owner's*
// reset()/destruction, not the borrower's. Holders must not outlive the
// scope the arena models (a board, a run). Trivially-destructible payloads
// only, unless the caller runs destructors itself (Board does, for its
// CPU storage).
//
// Not thread-safe: every arena has exactly one owner (a board, a testbed);
// executor workers never share one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mcs::util {

class Arena {
 public:
  /// Default block granularity: big enough that a whole testbed boot fits
  /// in a handful of blocks, small enough not to dwarf a board model.
  static constexpr std::size_t kDefaultBlockSize = 256 * 1024;

  explicit Arena(std::size_t block_size = kDefaultBlockSize) noexcept
      : block_size_(block_size == 0 ? kDefaultBlockSize : block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `size` bytes at `align`. Never returns nullptr for
  /// size > 0 (grows by appending blocks); size 0 yields a unique,
  /// well-aligned pointer like operator new.
  [[nodiscard]] void* allocate(std::size_t size,
                               std::size_t align = alignof(std::max_align_t));

  /// Typed helper: uninitialised storage for `count` objects of T.
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
  }

  /// Construct a T in arena storage. The arena never runs destructors;
  /// the caller does, or T is trivially destructible.
  template <typename T, typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    return new (allocate(sizeof(T), alignof(T))) T(static_cast<Args&&>(args)...);
  }

  /// Rewind to empty. Every block is kept, so the next fill of the same
  /// shape allocates nothing from the heap. Outstanding pointers are
  /// invalidated (the ownership rule above).
  void reset() noexcept;

  /// A position in the allocation stream. Everything allocated before the
  /// mark survives a rewind_to(); everything after it is discarded. Lets
  /// long-lived storage (a testbed snapshot buffer) and run-scoped scratch
  /// coexist in one arena: allocate the long-lived part, take a mark, and
  /// rewind to it between runs instead of reset()ting the whole arena.
  struct Mark {
    std::size_t active = 0;       ///< block cursor at mark time
    std::size_t active_used = 0;  ///< that block's fill level
    std::size_t in_use = 0;       ///< bytes_in_use() at mark time
  };

  [[nodiscard]] Mark mark() const noexcept {
    return {active_, active_ < blocks_.size() ? blocks_[active_].used : 0,
            in_use_};
  }

  /// Rewind to a previously taken mark: allocations made after it are
  /// discarded (their pointers invalidated), allocations made before it
  /// are untouched. Blocks are kept, nothing is freed. The mark must come
  /// from this arena with no intervening reset()/release().
  void rewind_to(const Mark& mark) noexcept;

  /// Peak bytes_in_use() ever observed — sizing feedback for callers that
  /// partition one arena between snapshot storage and run scratch.
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

  /// Drop the blocks themselves (cold teardown; tests).
  void release() noexcept;

  /// Bytes handed out since construction/reset (excludes alignment waste).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return in_use_; }
  /// Total bytes owned across all blocks.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// Make `blocks_[active_]` able to hold `size` more bytes at `align`,
  /// appending a block when every existing one is exhausted.
  Block& block_for(std::size_t size, std::size_t align);

  std::size_t block_size_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< cursor: blocks before it are full
  std::size_t in_use_ = 0;
  std::size_t capacity_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mcs::util
