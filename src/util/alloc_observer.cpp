#include "util/alloc_observer.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed is enough: tests difference the counter on one thread, and the
// count itself carries no ordering obligation.
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must not.
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* ptr = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

namespace mcs::util {

std::uint64_t AllocationObserver::allocations() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace mcs::util

// --- global replacements (linked only with the observer, see header) --------

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
