#include "util/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logpipe_counters.hpp"

namespace mcs::util {

namespace {

/// RAII fd so every early return below closes it.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

Expected<MappedFile> MappedFile::open(const std::string& path,
                                      bool allow_mmap) {
  Fd file;
  file.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file.fd < 0) {
    const int err = errno;
    if (err == ENOENT) {
      return not_found("no such file '" + path + "'");
    }
    return Status(Code::EIo,
                  "cannot open '" + path + "': " + std::strerror(err));
  }

  struct stat st{};
  if (::fstat(file.fd, &st) != 0) {
    return Status(Code::EIo,
                  "cannot stat '" + path + "': " + std::strerror(errno));
  }
  if (S_ISDIR(st.st_mode)) {
    return Status(Code::EIo, "'" + path + "' is a directory");
  }

  MappedFile out;
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0 && S_ISREG(st.st_mode)) {
    return out;  // empty view; mmap(0) would fail
  }

  if (allow_mmap && S_ISREG(st.st_mode)) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, file.fd, 0);
    if (mapped != MAP_FAILED) {
      out.mapped_ = mapped;
      out.size_ = size;
      // The fd can close immediately — the mapping keeps the pages.
      LogPipeCounters::instance().record_map(size);
      return out;
    }
  }

  // Fallback: one read(2) loop into an owned buffer (non-regular files,
  // mmap refusals). Still a single copy — never the double-buffer idiom.
  std::string buffer;
  if (S_ISREG(st.st_mode)) buffer.reserve(size);
  char chunk[1 << 16];
  for (;;) {
    const ssize_t got = ::read(file.fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status(Code::EIo,
                    "error reading '" + path + "': " + std::strerror(errno));
    }
    if (got == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  out.fallback_ = std::move(buffer);
  LogPipeCounters::instance().record_map_fallback(out.fallback_.size());
  return out;
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : mapped_(std::exchange(other.mapped_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fallback_(std::move(other.fallback_)) {
  other.fallback_.clear();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    mapped_ = std::exchange(other.mapped_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fallback_ = std::move(other.fallback_);
    other.fallback_.clear();
  }
  return *this;
}

void MappedFile::reset() noexcept {
  if (mapped_ != nullptr) {
    ::munmap(mapped_, size_);
    mapped_ = nullptr;
    size_ = 0;
  }
  fallback_.clear();
}

Expected<std::string> read_file(const std::string& path) {
  auto mapped = MappedFile::open(path);
  if (!mapped.is_ok()) return mapped.status();
  return std::string(mapped.value().view());
}

}  // namespace mcs::util
