#include "util/log.hpp"

#include <sstream>

namespace mcs::util {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::Debug: return "DEBUG";
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARN";
    case Severity::Error: return "ERROR";
    case Severity::Fatal: return "FATAL";
  }
  return "?";
}

void EventLog::append(LogRecord record) {
  if (mirror_) mirror_(record);
  records_.push_back(std::move(record));
}

std::size_t EventLog::count_at_least(Severity severity) const noexcept {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.severity >= severity) ++n;
  }
  return n;
}

bool EventLog::contains(std::string_view component, std::string_view needle) const {
  for (const auto& r : records_) {
    if (r.component == component && r.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string EventLog::to_text() const {
  std::ostringstream out;
  for (const auto& r : records_) {
    out << '[' << r.timestamp.value << "ms] " << severity_name(r.severity) << ' '
        << r.component;
    if (r.cpu >= 0) out << "/cpu" << r.cpu;
    out << ": " << r.message << '\n';
  }
  return out.str();
}

}  // namespace mcs::util
