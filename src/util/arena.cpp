#include "util/arena.hpp"

#include <algorithm>

namespace mcs::util {

namespace {

std::size_t align_up(std::size_t value, std::size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Block& Arena::block_for(std::size_t size, std::size_t align) {
  // Advance the cursor past blocks that cannot fit the request. Blocks are
  // never revisited until reset(), which keeps allocation O(1) amortised.
  // Worst-case alignment padding is align-1 bytes; reserving the full
  // `size + align` keeps the fit check conservative for any alignment,
  // including over-aligned requests on a block whose cursor (or whose
  // new[]'d base, which only guarantees max_align) is less aligned.
  while (active_ < blocks_.size()) {
    Block& block = blocks_[active_];
    if (block.used + size + align <= block.size) {
      return block;
    }
    ++active_;
  }
  Block block;
  block.size = std::max(block_size_, size + align);
  block.data = std::make_unique<std::uint8_t[]>(block.size);
  capacity_ += block.size;
  blocks_.push_back(std::move(block));
  active_ = blocks_.size() - 1;
  return blocks_.back();
}

void* Arena::allocate(std::size_t size, std::size_t align) {
  if (align == 0) align = 1;
  Block& block = block_for(std::max<std::size_t>(size, 1), align);
  const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
  const std::size_t aligned = align_up(block.used + base, align) - base;
  block.used = aligned + std::max<std::size_t>(size, 1);
  in_use_ += size;
  high_water_ = std::max(high_water_, in_use_);
  return block.data.get() + aligned;
}

void Arena::rewind_to(const Mark& mark) noexcept {
  // Blocks before the marked cursor were full at mark time and stay as
  // they are; the marked block rolls back to its recorded fill level and
  // everything after it empties.
  for (std::size_t i = mark.active; i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
  if (mark.active < blocks_.size()) {
    blocks_[mark.active].used = mark.active_used;
  }
  active_ = mark.active;
  in_use_ = mark.in_use;
}

void Arena::reset() noexcept {
  for (Block& block : blocks_) block.used = 0;
  active_ = 0;
  in_use_ = 0;
}

void Arena::release() noexcept {
  blocks_.clear();
  active_ = 0;
  in_use_ = 0;
  capacity_ = 0;
}

}  // namespace mcs::util
