// Sparse physical memory model for the Banana Pi's 1 GB of DRAM.
//
// Backed by 4 KiB pages allocated on first touch so a full-board model
// costs only what the workload actually dirties. Page storage comes from
// a util::Arena owned by the memory itself: materialising a page is a
// pointer bump, and reset_contents() restores every resident page to
// power-on zeroes *in place* — no frees, no allocations — which is what
// lets a pooled testbed reuse its board RAM windows run after run.
//
// Page lookup is a *flat pointer table* indexed by page number (2 MiB of
// pointers for the 1 GiB window) instead of a hash map: the per-access
// cost is one shift, one load and one null check. Aligned u32/u64
// accesses take an inline fast path straight into the page — no
// byte-buffer hop, no page-cross handling (a 4-aligned u32 / 8-aligned
// u64 can never cross a 4 KiB boundary). Unaligned or page-crossing
// accesses fall back to the block path, which is bit-identical.
//
// Pages are dirty-tracked: every write path marks its page, and the
// invariant "a resident page not on the dirty list is all-zero" lets
// reset_contents(), snapshot capture and snapshot restore touch only the
// pages a run actually wrote instead of the whole resident set. All
// accesses are bounds checked against the DRAM window; device windows
// live *outside* DRAM and are handled by the board's MMIO dispatch, not
// here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/arena.hpp"
#include "util/status.hpp"

namespace mcs::mem {

using PhysAddr = std::uint64_t;

/// Banana Pi (Allwinner A20) DRAM window.
inline constexpr PhysAddr kDramBase = 0x4000'0000;
inline constexpr std::uint64_t kDramSize = 1ULL << 30;  // 1 GiB
inline constexpr std::uint64_t kPageSize = 4096;

class PhysicalMemory {
 public:
  PhysicalMemory() : PhysicalMemory(kDramBase, kDramSize) {}
  PhysicalMemory(PhysAddr base, std::uint64_t size)
      : base_(base),
        size_(size),
        table_((size + kPageSize - 1) / kPageSize, nullptr),
        dirty_flags_((size + kPageSize - 1) / kPageSize, 0) {}

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  [[nodiscard]] PhysAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] bool contains(PhysAddr addr, std::uint64_t len = 1) const noexcept {
    return addr >= base_ && len <= size_ && addr - base_ <= size_ - len;
  }

  util::Status write_u8(PhysAddr addr, std::uint8_t value);

  /// Aligned word fast path: one table load, one memcpy into the page.
  /// The page must already be materialised *and* dirty (the steady state
  /// once a run has written it once); first touches take the slow path,
  /// which materialises and dirty-marks exactly as before.
  util::Status write_u32(PhysAddr addr, std::uint32_t value) {
    const std::uint64_t off = addr - base_;  // wraps huge when addr < base_
    if ((off & 3) == 0 && (off | 3) < size_) [[likely]] {
      const std::uint64_t index = off / kPageSize;
      if (std::uint8_t* page = table_[index];
          page != nullptr && dirty_flags_[index] != 0) {
        ++fast_ops_;
        std::memcpy(page + (off & (kPageSize - 1)), &value, 4);
        return util::ok_status();
      }
    }
    return write_u32_slow(addr, value);
  }

  util::Status write_u64(PhysAddr addr, std::uint64_t value) {
    const std::uint64_t off = addr - base_;
    if ((off & 7) == 0 && (off | 7) < size_) [[likely]] {
      const std::uint64_t index = off / kPageSize;
      if (std::uint8_t* page = table_[index];
          page != nullptr && dirty_flags_[index] != 0) {
        ++fast_ops_;
        std::memcpy(page + (off & (kPageSize - 1)), &value, 8);
        return util::ok_status();
      }
    }
    return write_u64_slow(addr, value);
  }

  util::Status write_block(PhysAddr addr, std::span<const std::uint8_t> data);

  [[nodiscard]] util::Expected<std::uint8_t> read_u8(PhysAddr addr) const;

  /// Aligned word fast path; a hole (non-resident page) reads zero
  /// without materialising anything, exactly like the block path.
  [[nodiscard]] util::Expected<std::uint32_t> read_u32(PhysAddr addr) const {
    const std::uint64_t off = addr - base_;
    if ((off & 3) == 0 && (off | 3) < size_) [[likely]] {
      ++fast_ops_;
      const std::uint8_t* page = table_[off / kPageSize];
      if (page == nullptr) return std::uint32_t{0};
      std::uint32_t value;
      std::memcpy(&value, page + (off & (kPageSize - 1)), 4);
      return value;
    }
    return read_u32_slow(addr);
  }

  [[nodiscard]] util::Expected<std::uint64_t> read_u64(PhysAddr addr) const {
    const std::uint64_t off = addr - base_;
    if ((off & 7) == 0 && (off | 7) < size_) [[likely]] {
      ++fast_ops_;
      const std::uint8_t* page = table_[off / kPageSize];
      if (page == nullptr) return std::uint64_t{0};
      std::uint64_t value;
      std::memcpy(&value, page + (off & (kPageSize - 1)), 8);
      return value;
    }
    return read_u64_slow(addr);
  }

  util::Status read_block(PhysAddr addr, std::span<std::uint8_t> out) const;

  /// Fill [addr, addr+len) with `value`.
  util::Status fill(PhysAddr addr, std::uint64_t len, std::uint8_t value);

  /// Number of 4 KiB pages materialised so far.
  [[nodiscard]] std::size_t resident_pages() const noexcept { return resident_; }

  /// Pages written since the last reset_contents()/restore_from() — the
  /// set the next power-on restore has to zero (and a snapshot has to
  /// copy). Always ≤ resident_pages().
  [[nodiscard]] std::size_t dirty_pages() const noexcept {
    return dirty_list_.size();
  }

  // --- instrumentation (monotonic; never reset, never snapshotted) ------
  /// Aligned word accesses served by the inline fast path.
  [[nodiscard]] std::uint64_t fast_ops() const noexcept { return fast_ops_; }
  /// Accesses that went through the byte-block slow path (unaligned,
  /// page-crossing, first-touch writes, block transfers, faults).
  [[nodiscard]] std::uint64_t slow_ops() const noexcept { return slow_ops_; }

  /// Drop all contents and page residency (cold reset: the next touch
  /// re-materialises from the rewound arena).
  void clear() noexcept {
    std::fill(table_.begin(), table_.end(), nullptr);
    std::fill(dirty_flags_.begin(), dirty_flags_.end(), std::uint8_t{0});
    dirty_list_.clear();
    resident_ = 0;
    arena_.reset();
  }

  /// Power-on restore without freeing: every *dirty* resident page is
  /// zeroed in place and stays resident (clean resident pages are already
  /// zero by invariant), so reads are indistinguishable from a fresh
  /// memory while the steady-state reuse path performs zero heap
  /// allocations for pages it already touched.
  void reset_contents() noexcept;

  /// Copy-on-capture image of the dirty page set. Page payloads live in
  /// the arena handed to snapshot_to(); the snapshot is valid until that
  /// arena rewinds past them.
  struct Snapshot {
    struct Page {
      std::uint64_t index = 0;       ///< page number within the DRAM window
      const std::uint8_t* data = nullptr;  ///< kPageSize bytes, arena-owned
    };
    std::vector<Page> pages;  ///< sorted by index (binary-search restore)
    [[nodiscard]] std::size_t bytes() const noexcept {
      return pages.size() * kPageSize;
    }
  };

  /// Capture every dirty page into `arena`-owned storage. The capture is
  /// exact: restore_from() reproduces the memory contents bit for bit.
  void snapshot_to(Snapshot& out, util::Arena& arena) const;

  /// Restore the captured contents in place. Touches only pages that are
  /// currently dirty (a superset of the snapshot's page set — dirty flags
  /// are only ever cleared by reset/restore themselves), so the cost
  /// scales with what the run wrote, and the dirty set afterwards equals
  /// the snapshot's. Zero heap allocations in steady state.
  void restore_from(const Snapshot& snapshot) noexcept;

 private:
  /// Pages are arena chunks; a resident page is always fully initialised.
  [[nodiscard]] const std::uint8_t* find_page(PhysAddr addr) const noexcept {
    return table_[(addr - base_) / kPageSize];
  }
  std::uint8_t* touch_page(PhysAddr addr);

  // Out-of-line slow halves of the word accessors (unaligned, crossing,
  // out-of-range, first touch); all funnel through the block path.
  util::Status write_u32_slow(PhysAddr addr, std::uint32_t value);
  util::Status write_u64_slow(PhysAddr addr, std::uint64_t value);
  [[nodiscard]] util::Expected<std::uint32_t> read_u32_slow(PhysAddr addr) const;
  [[nodiscard]] util::Expected<std::uint64_t> read_u64_slow(PhysAddr addr) const;

  PhysAddr base_ = kDramBase;
  std::uint64_t size_ = kDramSize;
  /// 64 pages per block: a booted testbed dirties a few dozen pages, so
  /// the whole working set fits in one or two blocks.
  util::Arena arena_{64 * kPageSize};
  /// Page number → page storage (nullptr while not materialised).
  std::vector<std::uint8_t*> table_;
  /// Page number → written-since-last-reset flag (mirrors dirty_list_).
  std::vector<std::uint8_t> dirty_flags_;
  /// Indexes of pages written since the last reset/restore (unordered;
  /// capacity kept across resets for the zero-allocation steady state).
  std::vector<std::uint64_t> dirty_list_;
  std::size_t resident_ = 0;
  mutable std::uint64_t fast_ops_ = 0;
  mutable std::uint64_t slow_ops_ = 0;
};

}  // namespace mcs::mem
