// Sparse physical memory model for the Banana Pi's 1 GB of DRAM.
//
// Backed by 4 KiB pages allocated on first touch so a full-board model
// costs only what the workload actually dirties. All accesses are bounds
// checked against the DRAM window; device windows live *outside* DRAM and
// are handled by the board's MMIO dispatch, not here.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/status.hpp"

namespace mcs::mem {

using PhysAddr = std::uint64_t;

/// Banana Pi (Allwinner A20) DRAM window.
inline constexpr PhysAddr kDramBase = 0x4000'0000;
inline constexpr std::uint64_t kDramSize = 1ULL << 30;  // 1 GiB
inline constexpr std::uint64_t kPageSize = 4096;

class PhysicalMemory {
 public:
  PhysicalMemory() noexcept = default;
  PhysicalMemory(PhysAddr base, std::uint64_t size) noexcept
      : base_(base), size_(size) {}

  [[nodiscard]] PhysAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] bool contains(PhysAddr addr, std::uint64_t len = 1) const noexcept {
    return addr >= base_ && len <= size_ && addr - base_ <= size_ - len;
  }

  util::Status write_u8(PhysAddr addr, std::uint8_t value);
  util::Status write_u32(PhysAddr addr, std::uint32_t value);
  util::Status write_u64(PhysAddr addr, std::uint64_t value);
  util::Status write_block(PhysAddr addr, std::span<const std::uint8_t> data);

  [[nodiscard]] util::Expected<std::uint8_t> read_u8(PhysAddr addr) const;
  [[nodiscard]] util::Expected<std::uint32_t> read_u32(PhysAddr addr) const;
  [[nodiscard]] util::Expected<std::uint64_t> read_u64(PhysAddr addr) const;
  util::Status read_block(PhysAddr addr, std::span<std::uint8_t> out) const;

  /// Fill [addr, addr+len) with `value`.
  util::Status fill(PhysAddr addr, std::uint64_t len, std::uint8_t value);

  /// Number of 4 KiB pages materialised so far.
  [[nodiscard]] std::size_t resident_pages() const noexcept { return pages_.size(); }

  /// Drop all contents (cold reset).
  void clear() noexcept { pages_.clear(); }

 private:
  using Page = std::vector<std::uint8_t>;

  [[nodiscard]] const Page* find_page(PhysAddr addr) const noexcept;
  Page& touch_page(PhysAddr addr);

  PhysAddr base_ = kDramBase;
  std::uint64_t size_ = kDramSize;
  std::unordered_map<std::uint64_t, Page> pages_;
};

}  // namespace mcs::mem
