// Sparse physical memory model for the Banana Pi's 1 GB of DRAM.
//
// Backed by 4 KiB pages allocated on first touch so a full-board model
// costs only what the workload actually dirties. Page storage comes from
// a util::Arena owned by the memory itself: materialising a page is a
// pointer bump, and reset_contents() restores every resident page to
// power-on zeroes *in place* — no frees, no allocations — which is what
// lets a pooled testbed reuse its board RAM windows run after run. All
// accesses are bounds checked against the DRAM window; device windows
// live *outside* DRAM and are handled by the board's MMIO dispatch, not
// here.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "util/arena.hpp"
#include "util/status.hpp"

namespace mcs::mem {

using PhysAddr = std::uint64_t;

/// Banana Pi (Allwinner A20) DRAM window.
inline constexpr PhysAddr kDramBase = 0x4000'0000;
inline constexpr std::uint64_t kDramSize = 1ULL << 30;  // 1 GiB
inline constexpr std::uint64_t kPageSize = 4096;

class PhysicalMemory {
 public:
  PhysicalMemory() noexcept = default;
  PhysicalMemory(PhysAddr base, std::uint64_t size) noexcept
      : base_(base), size_(size) {}

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  [[nodiscard]] PhysAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] bool contains(PhysAddr addr, std::uint64_t len = 1) const noexcept {
    return addr >= base_ && len <= size_ && addr - base_ <= size_ - len;
  }

  util::Status write_u8(PhysAddr addr, std::uint8_t value);
  util::Status write_u32(PhysAddr addr, std::uint32_t value);
  util::Status write_u64(PhysAddr addr, std::uint64_t value);
  util::Status write_block(PhysAddr addr, std::span<const std::uint8_t> data);

  [[nodiscard]] util::Expected<std::uint8_t> read_u8(PhysAddr addr) const;
  [[nodiscard]] util::Expected<std::uint32_t> read_u32(PhysAddr addr) const;
  [[nodiscard]] util::Expected<std::uint64_t> read_u64(PhysAddr addr) const;
  util::Status read_block(PhysAddr addr, std::span<std::uint8_t> out) const;

  /// Fill [addr, addr+len) with `value`.
  util::Status fill(PhysAddr addr, std::uint64_t len, std::uint8_t value);

  /// Number of 4 KiB pages materialised so far.
  [[nodiscard]] std::size_t resident_pages() const noexcept { return pages_.size(); }

  /// Drop all contents and page residency (cold reset: the next touch
  /// re-materialises from the rewound arena).
  void clear() noexcept {
    pages_.clear();
    arena_.reset();
  }

  /// Power-on restore without freeing: every resident page is zeroed in
  /// place and stays resident, so reads are indistinguishable from a
  /// fresh memory while the steady-state reuse path performs zero heap
  /// allocations for pages it already touched.
  void reset_contents() noexcept;

 private:
  /// Pages are arena chunks; a resident page is always fully initialised.
  [[nodiscard]] const std::uint8_t* find_page(PhysAddr addr) const noexcept;
  std::uint8_t* touch_page(PhysAddr addr);

  PhysAddr base_ = kDramBase;
  std::uint64_t size_ = kDramSize;
  /// 64 pages per block: a booted testbed dirties a few dozen pages, so
  /// the whole working set fits in one or two blocks.
  util::Arena arena_{64 * kPageSize};
  std::unordered_map<std::uint64_t, std::uint8_t*> pages_;
};

}  // namespace mcs::mem
