#include "mem/memory_map.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mcs::mem {

util::Status MemoryMap::add_region(MemRegion region) {
  if (region.size == 0) {
    return util::invalid_argument("zero-sized memory region '" + region.name + "'");
  }
  for (const MemRegion& existing : regions_) {
    if (existing.overlaps_guest(region)) {
      return util::invalid_argument("region '" + region.name +
                                    "' overlaps '" + existing.name +
                                    "' in guest space");
    }
  }
  regions_.push_back(std::move(region));
  return util::ok_status();
}

std::size_t MemoryMap::remove_regions_named(const std::string& name) {
  const auto before = regions_.size();
  std::erase_if(regions_, [&](const MemRegion& r) { return r.name == name; });
  return before - regions_.size();
}

std::vector<MemRegion> MemoryMap::carve_out_phys(PhysAddr start, std::uint64_t size) {
  std::vector<MemRegion> removed;
  std::vector<MemRegion> rebuilt;
  const PhysAddr end = start + size;
  for (MemRegion& region : regions_) {
    const PhysAddr r_start = region.phys_start;
    const PhysAddr r_end = region.phys_start + region.size;
    if (r_end <= start || end <= r_start) {  // no overlap
      rebuilt.push_back(std::move(region));
      continue;
    }
    const PhysAddr cut_start = std::max(start, r_start);
    const PhysAddr cut_end = std::min(end, r_end);

    // Identity between guest offset and phys offset within one region.
    const auto to_virt = [&region, r_start](PhysAddr p) {
      return region.virt_start + (p - r_start);
    };

    MemRegion cut = region;
    cut.phys_start = cut_start;
    cut.virt_start = to_virt(cut_start);
    cut.size = cut_end - cut_start;
    removed.push_back(cut);

    if (cut_start > r_start) {  // left remainder
      MemRegion left = region;
      left.size = cut_start - r_start;
      rebuilt.push_back(left);
    }
    if (cut_end < r_end) {  // right remainder
      MemRegion right = region;
      right.phys_start = cut_end;
      right.virt_start = to_virt(cut_end);
      right.size = r_end - cut_end;
      rebuilt.push_back(right);
    }
  }
  regions_ = std::move(rebuilt);
  return removed;
}

bool MemoryMap::covers_phys(PhysAddr start, std::uint64_t size) const noexcept {
  // Walk forward through the range, extending coverage region by region.
  PhysAddr cursor = start;
  const PhysAddr end = start + size;
  bool progressed = true;
  while (cursor < end && progressed) {
    progressed = false;
    for (const MemRegion& region : regions_) {
      if (region.phys_start <= cursor && cursor < region.phys_start + region.size) {
        cursor = region.phys_start + region.size;
        progressed = true;
        break;
      }
    }
  }
  return cursor >= end;
}

util::Expected<Translation> MemoryMap::translate(GuestAddr addr, Access access,
                                                 std::uint64_t len) const {
  for (const MemRegion& region : regions_) {
    if (!region.contains(addr, len)) continue;
    if (!region.allows(access)) {
      last_fault_ = Stage2Fault{addr, access, FaultKind::Permission};
      return util::perm("stage-2 permission fault at " + util::hex(addr) +
                        " in region '" + region.name + "'");
    }
    last_fault_.reset();
    return Translation{region.phys_start + (addr - region.virt_start), &region};
  }
  last_fault_ = Stage2Fault{addr, access, FaultKind::NoMapping};
  return util::fault("stage-2 translation fault at " + util::hex(addr));
}

bool MemoryMap::maps_phys(PhysAddr phys, std::uint64_t len) const noexcept {
  for (const MemRegion& region : regions_) {
    if (phys < region.phys_start + region.size &&
        region.phys_start < phys + len) {
      return true;
    }
  }
  return false;
}

}  // namespace mcs::mem
