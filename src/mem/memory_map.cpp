#include "mem/memory_map.hpp"

#include <algorithm>
#include <limits>

namespace mcs::mem {

namespace {
inline constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

std::size_t MemoryMap::candidate_for(GuestAddr addr) const noexcept {
  // First sorted entry whose virt_start exceeds addr; the candidate (the
  // unique region that can contain addr, regions being non-overlapping)
  // is its predecessor.
  const auto it = std::upper_bound(
      sorted_.begin(), sorted_.end(), addr,
      [this](GuestAddr a, std::uint32_t index) {
        return a < regions_[index].virt_start;
      });
  if (it == sorted_.begin()) return kNpos;
  return *(it - 1);
}

void MemoryMap::rebuild_sorted() {
  sorted_.resize(regions_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    sorted_[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(sorted_.begin(), sorted_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return regions_[a].virt_start < regions_[b].virt_start;
            });
}

util::Status MemoryMap::add_region(MemRegion region) {
  if (region.size == 0) {
    return util::invalid_argument("zero-sized memory region '" + region.name + "'");
  }
  // Existing regions are pairwise non-overlapping, so only the sorted
  // neighbours of the insertion point can overlap the newcomer: two
  // comparisons instead of a full scan.
  const auto insert_at = std::upper_bound(
      sorted_.begin(), sorted_.end(), region.virt_start,
      [this](GuestAddr start, std::uint32_t index) {
        return start < regions_[index].virt_start;
      });
  if (insert_at != sorted_.begin()) {
    const MemRegion& pred = regions_[*(insert_at - 1)];
    if (pred.overlaps_guest(region)) {
      return util::invalid_argument("region '" + region.name + "' overlaps '" +
                                    pred.name + "' in guest space");
    }
  }
  if (insert_at != sorted_.end()) {
    const MemRegion& succ = regions_[*insert_at];
    if (succ.overlaps_guest(region)) {
      return util::invalid_argument("region '" + region.name + "' overlaps '" +
                                    succ.name + "' in guest space");
    }
  }
  sorted_.insert(insert_at, static_cast<std::uint32_t>(regions_.size()));
  regions_.push_back(std::move(region));
  ++generation_;
  return util::ok_status();
}

std::size_t MemoryMap::remove_regions_named(const std::string& name) {
  const auto before = regions_.size();
  std::erase_if(regions_, [&](const MemRegion& r) { return r.name == name; });
  rebuild_sorted();
  ++generation_;
  return before - regions_.size();
}

std::vector<MemRegion> MemoryMap::carve_out_phys(PhysAddr start, std::uint64_t size) {
  std::vector<MemRegion> removed;
  std::vector<MemRegion> rebuilt;
  const PhysAddr end = start + size;
  for (MemRegion& region : regions_) {
    const PhysAddr r_start = region.phys_start;
    const PhysAddr r_end = region.phys_start + region.size;
    if (r_end <= start || end <= r_start) {  // no overlap
      rebuilt.push_back(std::move(region));
      continue;
    }
    const PhysAddr cut_start = std::max(start, r_start);
    const PhysAddr cut_end = std::min(end, r_end);

    // Identity between guest offset and phys offset within one region.
    const auto to_virt = [&region, r_start](PhysAddr p) {
      return region.virt_start + (p - r_start);
    };

    MemRegion cut = region;
    cut.phys_start = cut_start;
    cut.virt_start = to_virt(cut_start);
    cut.size = cut_end - cut_start;
    removed.push_back(cut);

    if (cut_start > r_start) {  // left remainder
      MemRegion left = region;
      left.size = cut_start - r_start;
      rebuilt.push_back(left);
    }
    if (cut_end < r_end) {  // right remainder
      MemRegion right = region;
      right.phys_start = cut_end;
      right.virt_start = to_virt(cut_end);
      right.size = r_end - cut_end;
      rebuilt.push_back(right);
    }
  }
  regions_ = std::move(rebuilt);
  rebuild_sorted();
  ++generation_;
  return removed;
}

bool MemoryMap::covers_phys(PhysAddr start, std::uint64_t size) const noexcept {
  // Walk forward through the range, extending coverage region by region.
  PhysAddr cursor = start;
  const PhysAddr end = start + size;
  bool progressed = true;
  while (cursor < end && progressed) {
    progressed = false;
    for (const MemRegion& region : regions_) {
      if (region.phys_start <= cursor && cursor < region.phys_start + region.size) {
        cursor = region.phys_start + region.size;
        progressed = true;
        break;
      }
    }
  }
  return cursor >= end;
}

util::Expected<Translation> MemoryMap::translate(GuestAddr addr, Access access,
                                                 std::uint64_t len) const {
  const std::size_t index = candidate_for(addr);
  if (index != kNpos) {
    const MemRegion& region = regions_[index];
    if (region.contains(addr, len)) {
      if (!region.allows(access)) {
        last_fault_ = Stage2Fault{addr, access, FaultKind::Permission};
        // Lazy statuses: the fault path allocates nothing (pinned by the
        // AllocationObserver fault tests).
        return util::Status{util::Code::EPerm, "stage-2 permission fault at ",
                            addr};
      }
      last_fault_.reset();
      return Translation{region.phys_start + (addr - region.virt_start), &region};
    }
  }
  last_fault_ = Stage2Fault{addr, access, FaultKind::NoMapping};
  return util::Status{util::Code::EFault, "stage-2 translation fault at ", addr};
}

bool MemoryMap::maps_phys(PhysAddr phys, std::uint64_t len) const noexcept {
  for (const MemRegion& region : regions_) {
    if (phys < region.phys_start + region.size &&
        region.phys_start < phys + len) {
      return true;
    }
  }
  return false;
}

}  // namespace mcs::mem
