// AddressSpace: a cell's guarded view onto physical memory.
//
// Every guest access goes through the cell's MemoryMap first; permission or
// mapping failures are reported as stage-2 faults (and counted), successful
// walks hit the shared PhysicalMemory. This is the mechanism the isolation
// invariant rests on: two cells whose maps don't share physical ranges
// cannot observe each other's writes, which the property tests assert
// under random fault sweeps.
#pragma once

#include <cstdint>
#include <span>

#include "mem/memory_map.hpp"
#include "mem/phys_mem.hpp"
#include "util/status.hpp"

namespace mcs::mem {

class AddressSpace {
 public:
  /// Both references must outlive the AddressSpace (the board owns them).
  AddressSpace(MemoryMap& map, PhysicalMemory& phys) noexcept
      : map_(&map), phys_(&phys) {}

  [[nodiscard]] const MemoryMap& map() const noexcept { return *map_; }
  [[nodiscard]] MemoryMap& map() noexcept { return *map_; }

  [[nodiscard]] util::Expected<std::uint32_t> read_u32(GuestAddr addr);
  [[nodiscard]] util::Expected<std::uint64_t> read_u64(GuestAddr addr);
  util::Status write_u32(GuestAddr addr, std::uint32_t value);
  util::Status write_u64(GuestAddr addr, std::uint64_t value);
  util::Status read_block(GuestAddr addr, std::span<std::uint8_t> out);
  util::Status write_block(GuestAddr addr, std::span<const std::uint8_t> data);

  /// Stage-2 faults taken through this address space since construction.
  [[nodiscard]] std::uint64_t fault_count() const noexcept { return faults_; }

  /// Testbed snapshot restore only: rewind the fault counter to a
  /// captured value.
  void set_fault_count(std::uint64_t faults) noexcept { faults_ = faults; }

 private:
  template <typename Op>
  auto guarded(GuestAddr addr, Access access, std::uint64_t len, Op op)
      -> decltype(op(PhysAddr{}));

  MemoryMap* map_;
  PhysicalMemory* phys_;
  std::uint64_t faults_ = 0;
};

}  // namespace mcs::mem
