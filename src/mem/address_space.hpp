// AddressSpace: a cell's guarded view onto physical memory.
//
// Every guest access goes through the cell's MemoryMap first; permission or
// mapping failures are reported as stage-2 faults (and counted), successful
// walks hit the shared PhysicalMemory. This is the mechanism the isolation
// invariant rests on: two cells whose maps don't share physical ranges
// cannot observe each other's writes, which the property tests assert
// under random fault sweeps.
//
// Translation cache (the stage-2 "TLB"): guest workloads hammer the same
// region — a UART ring, an ivshmem window, the RAM image — so the space
// keeps the last-hit region per access kind and revalidates it with two
// compares (map generation + range) instead of a full walk. A cached
// entry is valid iff its recorded MemoryMap generation still matches:
// cell create/destroy, root carve-outs and snapshot restore all bump the
// generation, so a stale region pointer can never be dereferenced. Fills
// happen only on a *successful* walk for that access kind, so permission
// is pre-validated for every hit. Misses run the full translate(), which
// records stage-2 faults byte-identically to the uncached walk.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "mem/memory_map.hpp"
#include "mem/phys_mem.hpp"
#include "util/status.hpp"

namespace mcs::mem {

class AddressSpace {
 public:
  /// Both references must outlive the AddressSpace (the board owns them).
  AddressSpace(MemoryMap& map, PhysicalMemory& phys) noexcept
      : map_(&map), phys_(&phys) {}

  [[nodiscard]] const MemoryMap& map() const noexcept { return *map_; }
  [[nodiscard]] MemoryMap& map() noexcept { return *map_; }

  [[nodiscard]] util::Expected<std::uint32_t> read_u32(GuestAddr addr);
  [[nodiscard]] util::Expected<std::uint64_t> read_u64(GuestAddr addr);
  util::Status write_u32(GuestAddr addr, std::uint32_t value);
  util::Status write_u64(GuestAddr addr, std::uint64_t value);
  util::Status read_block(GuestAddr addr, std::span<std::uint8_t> out);
  util::Status write_block(GuestAddr addr, std::span<const std::uint8_t> data);

  /// Cached stage-2 walk: TLB hit → physical address in two compares;
  /// miss → full MemoryMap::translate() (fault recording identical) and a
  /// TLB fill on success. Does NOT bump fault_count() — that counter
  /// belongs to the guarded block/word accessors above; the hypervisor's
  /// MMIO path accounts its faults as cell stage-2 trap statistics
  /// instead.
  [[nodiscard]] util::Expected<Translation> translate_cached(
      GuestAddr addr, Access access, std::uint64_t len = 1) {
    TlbEntry& entry = tlb_[static_cast<std::size_t>(access)];
    if (entry.generation == map_->generation() &&
        entry.region->contains(addr, len)) {
      ++tlb_hits_;
      return Translation{entry.region->phys_start + (addr - entry.region->virt_start),
                         entry.region};
    }
    ++tlb_misses_;
    auto walk = map_->translate(addr, access, len);
    if (walk.is_ok()) {
      entry = TlbEntry{walk.value().region, map_->generation()};
    }
    return walk;
  }

  /// Drop every cached translation (entries also self-invalidate via the
  /// map generation; this is for tests and explicit hygiene).
  void invalidate_tlb() noexcept { tlb_.fill(TlbEntry{}); }

  /// Stage-2 faults taken through this address space since construction.
  [[nodiscard]] std::uint64_t fault_count() const noexcept { return faults_; }

  /// Testbed snapshot restore only: rewind the fault counter to a
  /// captured value.
  void set_fault_count(std::uint64_t faults) noexcept { faults_ = faults; }

  // --- instrumentation (monotonic; never reset, never snapshotted) ------
  [[nodiscard]] std::uint64_t tlb_hits() const noexcept { return tlb_hits_; }
  [[nodiscard]] std::uint64_t tlb_misses() const noexcept { return tlb_misses_; }

 private:
  /// One cached translation per access kind. `generation == 0` never
  /// validates (MemoryMap generations start at 1), so `region` is only
  /// dereferenced for entries filled from a live walk.
  struct TlbEntry {
    const MemRegion* region = nullptr;
    std::uint64_t generation = 0;
  };

  template <typename Op>
  auto guarded(GuestAddr addr, Access access, std::uint64_t len, Op op)
      -> decltype(op(PhysAddr{}));

  MemoryMap* map_;
  PhysicalMemory* phys_;
  std::uint64_t faults_ = 0;
  std::array<TlbEntry, 3> tlb_{};  ///< indexed by Access
  std::uint64_t tlb_hits_ = 0;
  std::uint64_t tlb_misses_ = 0;
};

}  // namespace mcs::mem
