#include "mem/address_space.hpp"

namespace mcs::mem {

template <typename Op>
auto AddressSpace::guarded(GuestAddr addr, Access access, std::uint64_t len, Op op)
    -> decltype(op(PhysAddr{})) {
  auto walk = translate_cached(addr, access, len);
  if (!walk.is_ok()) {
    ++faults_;
    return walk.status();
  }
  return op(walk.value().phys);
}

util::Expected<std::uint32_t> AddressSpace::read_u32(GuestAddr addr) {
  return guarded(addr, Access::Read, 4,
                 [this](PhysAddr phys) { return phys_->read_u32(phys); });
}

util::Expected<std::uint64_t> AddressSpace::read_u64(GuestAddr addr) {
  return guarded(addr, Access::Read, 8,
                 [this](PhysAddr phys) { return phys_->read_u64(phys); });
}

util::Status AddressSpace::write_u32(GuestAddr addr, std::uint32_t value) {
  return guarded(addr, Access::Write, 4, [this, value](PhysAddr phys) {
    return phys_->write_u32(phys, value);
  });
}

util::Status AddressSpace::write_u64(GuestAddr addr, std::uint64_t value) {
  return guarded(addr, Access::Write, 8, [this, value](PhysAddr phys) {
    return phys_->write_u64(phys, value);
  });
}

util::Status AddressSpace::read_block(GuestAddr addr, std::span<std::uint8_t> out) {
  return guarded(addr, Access::Read, out.size(), [this, out](PhysAddr phys) {
    return phys_->read_block(phys, out);
  });
}

util::Status AddressSpace::write_block(GuestAddr addr,
                                       std::span<const std::uint8_t> data) {
  return guarded(addr, Access::Write, data.size(), [this, data](PhysAddr phys) {
    return phys_->write_block(phys, data);
  });
}

}  // namespace mcs::mem
