// Per-cell memory map: the stage-2 view Jailhouse programs for each cell.
//
// A cell config lists memory regions with Jailhouse-style access flags;
// the hypervisor turns them into stage-2 mappings. Any guest access outside
// its regions (or violating permissions) raises a stage-2 data abort with
// EC 0x24 — the very trap class the paper's experiments exercise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace mcs::mem {

using PhysAddr = std::uint64_t;
using GuestAddr = std::uint64_t;

/// Jailhouse memory-region flags (names follow the cell-config macros).
enum MemFlags : std::uint32_t {
  kMemRead = 1u << 0,      // JAILHOUSE_MEM_READ
  kMemWrite = 1u << 1,     // JAILHOUSE_MEM_WRITE
  kMemExecute = 1u << 2,   // JAILHOUSE_MEM_EXECUTE
  kMemDma = 1u << 3,       // JAILHOUSE_MEM_DMA
  kMemIo = 1u << 4,        // JAILHOUSE_MEM_IO (device window)
  kMemCommRegion = 1u << 5,// JAILHOUSE_MEM_COMM_REGION
  kMemRootShared = 1u << 6,// JAILHOUSE_MEM_ROOTSHARED (ivshmem backing)
  kMemLoadable = 1u << 7,  // JAILHOUSE_MEM_LOADABLE
};

/// Type of access being checked.
enum class Access : std::uint8_t { Read, Write, Execute };

/// One contiguous mapping: guest window [virt_start, virt_start+size) →
/// physical [phys_start, phys_start+size), with access flags.
struct MemRegion {
  PhysAddr phys_start = 0;
  GuestAddr virt_start = 0;
  std::uint64_t size = 0;
  std::uint32_t flags = 0;
  std::string name;  ///< for logs/reports ("ram", "uart", "ivshmem", ...)

  [[nodiscard]] bool operator==(const MemRegion&) const = default;

  [[nodiscard]] bool contains(GuestAddr addr, std::uint64_t len = 1) const noexcept {
    return addr >= virt_start && len <= size && addr - virt_start <= size - len;
  }
  [[nodiscard]] bool overlaps_guest(const MemRegion& other) const noexcept {
    return virt_start < other.virt_start + other.size &&
           other.virt_start < virt_start + size;
  }
  [[nodiscard]] bool overlaps_phys(const MemRegion& other) const noexcept {
    return phys_start < other.phys_start + other.size &&
           other.phys_start < phys_start + size;
  }
  [[nodiscard]] bool allows(Access access) const noexcept {
    switch (access) {
      case Access::Read: return (flags & kMemRead) != 0;
      case Access::Write: return (flags & kMemWrite) != 0;
      case Access::Execute: return (flags & kMemExecute) != 0;
    }
    return false;
  }
};

/// Result of a successful stage-2 walk.
struct Translation {
  PhysAddr phys = 0;
  const MemRegion* region = nullptr;
};

/// Reason a stage-2 walk failed; becomes the ISS of the data abort.
enum class FaultKind : std::uint8_t { NoMapping, Permission };

struct Stage2Fault {
  GuestAddr addr = 0;
  Access access = Access::Read;
  FaultKind kind = FaultKind::NoMapping;

  [[nodiscard]] bool operator==(const Stage2Fault&) const = default;
};

/// Ordered collection of regions forming one cell's guest-physical view.
///
/// Alongside the insertion-ordered `regions_` (the observable order cell
/// configs and reports rely on), the map keeps a virt-sorted index:
/// regions are pairwise non-overlapping in guest space, so the region
/// with the greatest virt_start ≤ addr is the *only* possible match —
/// translate() and add_region()'s overlap check are both O(log n).
///
/// Every mutation bumps `generation_`; AddressSpace TLBs cache region
/// pointers keyed by that counter, so cell create/destroy and root-cell
/// carve-outs invalidate every cached translation at once.
class MemoryMap {
 public:
  /// Add a region; rejects zero-sized or guest-overlapping regions.
  util::Status add_region(MemRegion region);

  /// Remove all regions whose name matches (used by cell destroy).
  std::size_t remove_regions_named(const std::string& name);

  /// Carve the physical range [start, start+size) out of this map — the
  /// Jailhouse "root cell shrink" at cell create: the root loses access to
  /// memory loaned to a new cell. Overlapping regions are split; the
  /// removed intersections are returned (with their original flags and
  /// names) so cell destroy can hand them back verbatim.
  std::vector<MemRegion> carve_out_phys(PhysAddr start, std::uint64_t size);

  /// True iff every byte of the physical range is covered by some region
  /// of this map (Jailhouse requires cell memory to be backed by root
  /// memory).
  [[nodiscard]] bool covers_phys(PhysAddr start, std::uint64_t size) const noexcept;

  [[nodiscard]] const std::vector<MemRegion>& regions() const noexcept {
    return regions_;
  }

  /// Walk: guest address + access type → physical address or fault.
  [[nodiscard]] util::Expected<Translation> translate(GuestAddr addr, Access access,
                                                      std::uint64_t len = 1) const;

  /// Last failed walk, for syndrome construction. Cleared by translate()
  /// on success.
  [[nodiscard]] const std::optional<Stage2Fault>& last_fault() const noexcept {
    return last_fault_;
  }

  /// True iff any region maps (any part of) the given physical range.
  [[nodiscard]] bool maps_phys(PhysAddr phys, std::uint64_t len = 1) const noexcept;

  /// Mutation counter: bumped by every add_region / remove_regions_named /
  /// carve_out_phys / clear / restore_from, *unconditionally* — a cached
  /// region pointer is valid iff its recorded generation still matches.
  /// Never zero (so a TLB entry with gen 0 can never validate).
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  void clear() noexcept {
    regions_.clear();
    sorted_.clear();
    last_fault_.reset();
    ++generation_;
  }

  // --- snapshot / restore (testbed warm-start) --------------------------
  struct Snapshot {
    std::vector<MemRegion> regions;
    std::optional<Stage2Fault> last_fault;
  };

  void snapshot_to(Snapshot& out) const {
    out.regions = regions_;
    out.last_fault = last_fault_;
  }

  /// Compare-and-skip assignment: on the steady executor path the map is
  /// unchanged between capture and restore, so restore performs no vector
  /// or string allocations. The generation is bumped even when nothing
  /// changed — restore moves the map to a (possibly) different point in
  /// time, so every cached translation must revalidate (the stale-TLB-
  /// after-restore tests pin this).
  void restore_from(const Snapshot& snapshot) {
    if (regions_ != snapshot.regions) {
      regions_ = snapshot.regions;
      rebuild_sorted();
    }
    last_fault_ = snapshot.last_fault;
    ++generation_;
  }

 private:
  /// Index of the region with the greatest virt_start ≤ addr, or npos.
  [[nodiscard]] std::size_t candidate_for(GuestAddr addr) const noexcept;
  void rebuild_sorted();

  std::vector<MemRegion> regions_;         ///< insertion order (observable)
  std::vector<std::uint32_t> sorted_;      ///< indexes into regions_, by virt_start
  std::uint64_t generation_ = 1;
  mutable std::optional<Stage2Fault> last_fault_;
};

}  // namespace mcs::mem
