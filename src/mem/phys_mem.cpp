#include "mem/phys_mem.hpp"

#include <algorithm>

namespace mcs::mem {
namespace {

util::Status out_of_range(PhysAddr addr) noexcept {
  // Lazy status: the message renders only if someone reads it, so the
  // fault path itself never allocates.
  return {util::Code::EFault, "physical access outside DRAM at ", addr};
}

}  // namespace

std::uint8_t* PhysicalMemory::touch_page(PhysAddr addr) {
  const std::uint64_t index = (addr - base_) / kPageSize;
  std::uint8_t* page = table_[index];
  if (page == nullptr) {
    page = arena_.allocate_array<std::uint8_t>(kPageSize);
    std::memset(page, 0, kPageSize);
    table_[index] = page;
    ++resident_;
  }
  // Every caller is a write path, so touching *is* dirtying. Marking on
  // the transition only keeps the dirty list duplicate-free.
  if (dirty_flags_[index] == 0) {
    dirty_flags_[index] = 1;
    dirty_list_.push_back(index);
  }
  return page;
}

void PhysicalMemory::reset_contents() noexcept {
  // Clean resident pages are all-zero by invariant; only written pages
  // need scrubbing.
  for (const std::uint64_t index : dirty_list_) {
    std::memset(table_[index], 0, kPageSize);
    dirty_flags_[index] = 0;
  }
  dirty_list_.clear();
}

void PhysicalMemory::snapshot_to(Snapshot& out, util::Arena& arena) const {
  out.pages.clear();
  out.pages.reserve(dirty_list_.size());
  for (const std::uint64_t index : dirty_list_) {
    auto* copy = arena.allocate_array<std::uint8_t>(kPageSize);
    std::memcpy(copy, table_[index], kPageSize);
    out.pages.push_back({index, copy});
  }
  std::sort(out.pages.begin(), out.pages.end(),
            [](const Snapshot::Page& a, const Snapshot::Page& b) {
              return a.index < b.index;
            });
}

void PhysicalMemory::restore_from(const Snapshot& snapshot) noexcept {
  // The current dirty list is a superset of the snapshot's page set
  // (flags are cleared only here and in reset_contents), so one pass over
  // it reaches every page whose contents can differ from the capture.
  const auto begin = snapshot.pages.begin();
  const auto end = snapshot.pages.end();
  for (const std::uint64_t index : dirty_list_) {
    std::uint8_t* page = table_[index];
    const auto it = std::lower_bound(
        begin, end, index, [](const Snapshot::Page& p, std::uint64_t want) {
          return p.index < want;
        });
    if (it != end && it->index == index) {
      std::memcpy(page, it->data, kPageSize);
    } else {
      std::memset(page, 0, kPageSize);
      dirty_flags_[index] = 0;
    }
  }
  // The dirty set is now exactly the snapshot's (those flags stayed set).
  dirty_list_.clear();
  for (const Snapshot::Page& page : snapshot.pages) {
    dirty_list_.push_back(page.index);
  }
}

util::Status PhysicalMemory::write_u8(PhysAddr addr, std::uint8_t value) {
  if (!contains(addr)) return out_of_range(addr);
  ++slow_ops_;
  touch_page(addr)[(addr - base_) % kPageSize] = value;
  return util::ok_status();
}

util::Status PhysicalMemory::write_u32_slow(PhysAddr addr, std::uint32_t value) {
  std::uint8_t bytes[4];
  std::memcpy(bytes, &value, sizeof bytes);
  return write_block(addr, bytes);
}

util::Status PhysicalMemory::write_u64_slow(PhysAddr addr, std::uint64_t value) {
  std::uint8_t bytes[8];
  std::memcpy(bytes, &value, sizeof bytes);
  return write_block(addr, bytes);
}

util::Status PhysicalMemory::write_block(PhysAddr addr,
                                         std::span<const std::uint8_t> data) {
  if (!contains(addr, data.size())) return out_of_range(addr);
  ++slow_ops_;
  std::uint64_t offset = addr - base_;
  std::size_t written = 0;
  while (written < data.size()) {
    std::uint8_t* page = touch_page(base_ + offset);
    const std::uint64_t in_page = offset % kPageSize;
    const std::size_t chunk =
        std::min<std::size_t>(data.size() - written,
                              static_cast<std::size_t>(kPageSize - in_page));
    std::memcpy(page + in_page, data.data() + written, chunk);
    written += chunk;
    offset += chunk;
  }
  return util::ok_status();
}

util::Expected<std::uint8_t> PhysicalMemory::read_u8(PhysAddr addr) const {
  if (!contains(addr)) return out_of_range(addr);
  ++slow_ops_;
  const std::uint8_t* page = find_page(addr);
  if (page == nullptr) return std::uint8_t{0};
  return page[(addr - base_) % kPageSize];
}

util::Expected<std::uint32_t> PhysicalMemory::read_u32_slow(PhysAddr addr) const {
  std::uint8_t bytes[4]{};
  MCS_RETURN_IF_ERROR(read_block(addr, bytes));
  std::uint32_t value = 0;
  std::memcpy(&value, bytes, sizeof value);
  return value;
}

util::Expected<std::uint64_t> PhysicalMemory::read_u64_slow(PhysAddr addr) const {
  std::uint8_t bytes[8]{};
  MCS_RETURN_IF_ERROR(read_block(addr, bytes));
  std::uint64_t value = 0;
  std::memcpy(&value, bytes, sizeof value);
  return value;
}

util::Status PhysicalMemory::read_block(PhysAddr addr,
                                        std::span<std::uint8_t> out) const {
  if (!contains(addr, out.size())) return out_of_range(addr);
  ++slow_ops_;
  std::uint64_t offset = addr - base_;
  std::size_t read = 0;
  while (read < out.size()) {
    const std::uint64_t in_page = offset % kPageSize;
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - read,
                              static_cast<std::size_t>(kPageSize - in_page));
    const std::uint8_t* page = find_page(base_ + offset);
    if (page == nullptr) {
      std::memset(out.data() + read, 0, chunk);
    } else {
      std::memcpy(out.data() + read, page + in_page, chunk);
    }
    read += chunk;
    offset += chunk;
  }
  return util::ok_status();
}

util::Status PhysicalMemory::fill(PhysAddr addr, std::uint64_t len,
                                  std::uint8_t value) {
  if (!contains(addr, len)) return out_of_range(addr);
  ++slow_ops_;
  std::uint64_t offset = 0;
  while (offset < len) {
    const std::uint64_t in_page = (addr + offset - base_) % kPageSize;
    const std::uint64_t chunk = std::min(kPageSize - in_page, len - offset);
    std::uint8_t* page = touch_page(addr + offset);
    std::memset(page + in_page, value, chunk);
    offset += chunk;
  }
  return util::ok_status();
}

}  // namespace mcs::mem
