// 16550-style UART with full serial capture.
//
// §III: "the outcome is sent to an empty shell where the board serial port
// is connected" and the inconsistent-cell finding is detected by "the
// USART output left completely blank". The capture buffer is therefore a
// first-class experiment observable: the run monitor asserts liveness by
// watching bytes and complete lines emitted per cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "irq/gic.hpp"
#include "platform/device.hpp"

namespace mcs::platform {

/// Register offsets (subset of the 16550 map the guests use).
inline constexpr std::uint64_t kUartThr = 0x00;  ///< transmit holding (W)
inline constexpr std::uint64_t kUartRbr = 0x00;  ///< receive buffer (R)
inline constexpr std::uint64_t kUartIer = 0x04;  ///< interrupt enable
inline constexpr std::uint64_t kUartLsr = 0x14;  ///< line status
inline constexpr std::uint32_t kLsrThrEmpty = 1u << 5;
inline constexpr std::uint32_t kLsrDataReady = 1u << 0;

/// Time-quiescent device: transmission is instantaneous in the model, so
/// the UART publishes no deadline (inherits kNoDeadline) and never
/// constrains the board's event-driven leaps.
class Uart final : public Device {
 public:
  /// `gic`/`tx_irq` may be null/0 for a polled-only port.
  Uart(std::string name, PhysAddr base, irq::Gic* gic, irq::IrqId tx_irq);

  [[nodiscard]] util::Expected<std::uint32_t> mmio_read(std::uint64_t offset) override;
  util::Status mmio_write(std::uint64_t offset, std::uint32_t value) override;
  void reset() override;

  /// Everything ever transmitted (the log the paper collects).
  [[nodiscard]] const std::string& captured() const noexcept { return captured_; }

  /// Transmitted bytes since the given high-water mark; used by the run
  /// monitor to detect a silent (blank-output) cell.
  [[nodiscard]] std::size_t bytes_since(std::size_t mark) const noexcept {
    return captured_.size() >= mark ? captured_.size() - mark : 0;
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept { return captured_.size(); }

  /// Completed lines (split on '\n').
  [[nodiscard]] std::vector<std::string> lines() const;

  /// Host-side input (loopback/test support).
  void feed_rx(std::string_view data);

  void clear_capture() noexcept { captured_.clear(); }

  // --- snapshot / restore (testbed warm-start) --------------------------
  /// The capture buffer is append-only between board resets, so its
  /// snapshot is just a length: restore truncates back to the captured
  /// prefix (no byte copies, no allocations).
  struct Snapshot {
    std::size_t captured_size = 0;
    std::string rx_fifo;
    bool tx_irq_enabled = false;
  };

  void snapshot_to(Snapshot& out) const {
    out.captured_size = captured_.size();
    out.rx_fifo = rx_fifo_;
    out.tx_irq_enabled = tx_irq_enabled_;
  }

  void restore_from(const Snapshot& snapshot) {
    captured_.resize(snapshot.captured_size);
    if (rx_fifo_ != snapshot.rx_fifo) rx_fifo_ = snapshot.rx_fifo;
    tx_irq_enabled_ = snapshot.tx_irq_enabled;
  }

 private:
  irq::Gic* gic_;
  irq::IrqId tx_irq_;
  std::string captured_;
  std::string rx_fifo_;
  bool tx_irq_enabled_ = false;
};

}  // namespace mcs::platform
