// GPIO port with the Banana Pi's green on-board LED (PH24).
//
// The FreeRTOS workload's first task "blink[s] an onboard led"; LED edge
// counts are a liveness observable independent of the UART, used by the
// run monitor to corroborate blank-USART verdicts.
#pragma once

#include <cstdint>

#include "platform/device.hpp"

namespace mcs::platform {

inline constexpr std::uint64_t kGpioData = 0x0;   ///< bit per line, RW
inline constexpr std::uint64_t kGpioDir = 0x4;    ///< 1 = output
inline constexpr unsigned kGreenLedLine = 24;      ///< PH24 on the Banana Pi

/// Time-quiescent device: lines change only under MMIO writes, so the
/// GPIO block publishes no deadline (inherits kNoDeadline) and never
/// constrains the board's event-driven leaps.
class Gpio final : public Device {
 public:
  Gpio(std::string name, PhysAddr base);

  [[nodiscard]] util::Expected<std::uint32_t> mmio_read(std::uint64_t offset) override;
  util::Status mmio_write(std::uint64_t offset, std::uint32_t value) override;
  void reset() override;

  [[nodiscard]] bool led_on() const noexcept;
  [[nodiscard]] std::uint64_t led_toggles() const noexcept { return led_toggles_; }

  /// Drop the toggle counter. Device reset() keeps it on purpose (it is
  /// an experiment observable); the board's power-on restore clears it so
  /// a reused board starts every run from the same baseline.
  void clear_toggles() noexcept { led_toggles_ = 0; }

  /// Guest-facing helpers (bypass MMIO encoding).
  void set_line(unsigned line, bool high);
  [[nodiscard]] bool line(unsigned line) const noexcept;

  // --- snapshot / restore (testbed warm-start) --------------------------
  struct Snapshot {
    std::uint32_t data = 0;
    std::uint32_t direction = 0;
    std::uint64_t led_toggles = 0;
  };

  void snapshot_to(Snapshot& out) const noexcept {
    out.data = data_;
    out.direction = direction_;
    out.led_toggles = led_toggles_;
  }

  void restore_from(const Snapshot& snapshot) noexcept {
    data_ = snapshot.data;
    direction_ = snapshot.direction;
    led_toggles_ = snapshot.led_toggles;
  }

 private:
  std::uint32_t data_ = 0;
  std::uint32_t direction_ = 0;
  std::uint64_t led_toggles_ = 0;
};

}  // namespace mcs::platform
