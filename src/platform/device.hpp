// MMIO device interface. Devices live in the Allwinner A20 peripheral
// window (below DRAM); the bus routes physical accesses by range.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace mcs::platform {

using PhysAddr = std::uint64_t;

class Device {
 public:
  Device(std::string name, PhysAddr base, std::uint64_t size)
      : name_(std::move(name)), base_(base), size_(size) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] PhysAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] bool contains(PhysAddr addr) const noexcept {
    return addr >= base_ && addr - base_ < size_;
  }

  /// Register read at byte offset from base.
  [[nodiscard]] virtual util::Expected<std::uint32_t> mmio_read(std::uint64_t offset) = 0;

  /// Register write at byte offset from base.
  virtual util::Status mmio_write(std::uint64_t offset, std::uint32_t value) = 0;

  /// Advance device time by one board tick (default: nothing to do).
  virtual void tick(util::Ticks /*now*/) {}

  /// Cold reset.
  virtual void reset() {}

 private:
  std::string name_;
  PhysAddr base_;
  std::uint64_t size_;
};

}  // namespace mcs::platform
