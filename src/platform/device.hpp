// MMIO device interface. Devices live in the Allwinner A20 peripheral
// window (below DRAM); the bus routes physical accesses by range.
//
// Time contract (the event-driven tick scheduler):
//
//   Devices no longer receive an unconditional tick() callback on every
//   board tick. Instead each device *publishes* the absolute tick of the
//   next moment it needs service through next_deadline(), and the board
//   calls tick(now) only when that deadline arrives. The board may leap
//   the clock across any span that contains no published deadline, so
//   tick(now) must treat `now` as authoritative absolute time — never
//   count invocations. Deadlines are *absolute*, so the board caches the
//   earliest one and devices signal re-arms through a shared deadline
//   generation: every code path that can change a device's published
//   deadline (MMIO reprogramming, internal re-arm in tick(), reset,
//   snapshot restore) must call note_deadline_change(), and the board
//   re-polls only when the generation moved. A device that never calls
//   it must publish kNoDeadline forever (the quiescent default). New
//   device models (e.g. a NIC) inherit this contract.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace mcs::platform {

using PhysAddr = std::uint64_t;

/// "Nothing scheduled": a deadline no simulation can reach.
inline constexpr util::Ticks kNoDeadline{
    std::numeric_limits<std::uint64_t>::max()};

class Device {
 public:
  Device(std::string name, PhysAddr base, std::uint64_t size)
      : name_(std::move(name)), base_(base), size_(size) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] PhysAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] bool contains(PhysAddr addr) const noexcept {
    return addr >= base_ && addr - base_ < size_;
  }

  /// Register read at byte offset from base.
  [[nodiscard]] virtual util::Expected<std::uint32_t> mmio_read(std::uint64_t offset) = 0;

  /// Register write at byte offset from base.
  virtual util::Status mmio_write(std::uint64_t offset, std::uint32_t value) = 0;

  /// Absolute tick of the next self-scheduled event (strictly in the
  /// future), or kNoDeadline when the device is quiescent. The board
  /// skips straight to the earliest published deadline.
  [[nodiscard]] virtual util::Ticks next_deadline(util::Ticks /*now*/) const {
    return kNoDeadline;
  }

  /// Service the device at absolute time `now`. Called only when a
  /// published deadline is due; `now` may be arbitrarily far past the
  /// previous call (default: nothing to do).
  virtual void tick(util::Ticks /*now*/) {}

  /// Cold reset.
  virtual void reset() {}

  /// Board wiring: point the device at the board's deadline generation
  /// counter so note_deadline_change() can invalidate the board's cached
  /// earliest deadline. Unbound devices (unit tests) bump nothing.
  void bind_deadline_gen(std::uint64_t* gen) noexcept { deadline_gen_ = gen; }

 protected:
  /// Call from every code path that may change next_deadline()'s answer.
  void note_deadline_change() noexcept {
    if (deadline_gen_ != nullptr) ++*deadline_gen_;
  }

 private:
  std::string name_;
  PhysAddr base_;
  std::uint64_t size_;
  std::uint64_t* deadline_gen_ = nullptr;
};

}  // namespace mcs::platform
