#include "platform/gpio.hpp"

#include "util/bitops.hpp"
#include "util/strings.hpp"

namespace mcs::platform {

Gpio::Gpio(std::string name, PhysAddr base) : Device(std::move(name), base, 0x100) {}

util::Expected<std::uint32_t> Gpio::mmio_read(std::uint64_t offset) {
  switch (offset) {
    case kGpioData: return data_;
    case kGpioDir: return direction_;
    default:
      return util::invalid_argument("gpio read at bad offset " + util::hex(offset));
  }
}

util::Status Gpio::mmio_write(std::uint64_t offset, std::uint32_t value) {
  switch (offset) {
    case kGpioData: {
      const bool led_before = util::test_bit(data_, kGreenLedLine);
      data_ = value;
      if (util::test_bit(data_, kGreenLedLine) != led_before) ++led_toggles_;
      return util::ok_status();
    }
    case kGpioDir:
      direction_ = value;
      return util::ok_status();
    default:
      return util::invalid_argument("gpio write at bad offset " + util::hex(offset));
  }
}

void Gpio::reset() {
  data_ = 0;
  direction_ = 0;
  // led_toggles_ survives: it is an experiment counter, not device state.
}

bool Gpio::led_on() const noexcept { return util::test_bit(data_, kGreenLedLine); }

void Gpio::set_line(unsigned line, bool high) {
  const bool led_before = util::test_bit(data_, kGreenLedLine);
  data_ = high ? util::set_bit(data_, line) : util::clear_bit(data_, line);
  if (util::test_bit(data_, kGreenLedLine) != led_before) ++led_toggles_;
}

bool Gpio::line(unsigned line) const noexcept { return util::test_bit(data_, line); }

}  // namespace mcs::platform
