#include "platform/board_registry.hpp"

#include <map>
#include <mutex>

namespace mcs::platform {

struct BoardRegistry::Impl {
  mutable std::mutex mutex;
  /// Entries are shared_ptrs so a cached handle (BoardRegistry::entry)
  /// survives a later re-registration of the same key.
  std::map<std::string, std::shared_ptr<const Entry>, std::less<>> boards;
};

BoardRegistry::BoardRegistry() : impl_(std::make_shared<Impl>()) {}

BoardRegistry& BoardRegistry::instance() {
  static BoardRegistry registry = [] {
    BoardRegistry r;
    r.add(bananapi_spec(), [] { return std::make_unique<BananaPiBoard>(); });
    r.add(quad_a7_spec(), [] { return std::make_unique<QuadA7Board>(); });
    return r;
  }();
  return registry;
}

void BoardRegistry::add(BoardSpec spec, Factory factory) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string key = spec.name;
  auto entry = std::make_shared<Entry>(Entry{std::move(spec), std::move(factory)});
  impl_->boards.insert_or_assign(std::move(key), std::move(entry));
}

std::shared_ptr<const BoardRegistry::Entry> BoardRegistry::entry(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->boards.find(name);
  return it == impl_->boards.end() ? nullptr : it->second;
}

std::unique_ptr<Board> BoardRegistry::make(std::string_view name) const {
  const std::shared_ptr<const Entry> found = entry(name);
  return found == nullptr ? nullptr : found->factory();
}

const BoardSpec* BoardRegistry::find_spec(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->boards.find(name);
  return it == impl_->boards.end() ? nullptr : &it->second->spec;
}

std::vector<std::string> BoardRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->boards.size());
  for (const auto& [key, entry] : impl_->boards) out.push_back(key);
  return out;  // std::map iteration is already sorted
}

std::size_t BoardRegistry::size() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->boards.size();
}

const BoardSpec* find_board_spec(std::string_view name) {
  return BoardRegistry::instance().find_spec(name);
}

std::unique_ptr<Board> make_board(std::string_view name) {
  return BoardRegistry::instance().make(name);
}

}  // namespace mcs::platform
