#include "platform/board_registry.hpp"

#include <map>
#include <mutex>

namespace mcs::platform {

struct BoardRegistry::Impl {
  struct Entry {
    BoardSpec spec;
    Factory factory;
  };
  mutable std::mutex mutex;
  std::map<std::string, Entry, std::less<>> boards;
};

BoardRegistry::BoardRegistry() : impl_(std::make_shared<Impl>()) {}

BoardRegistry& BoardRegistry::instance() {
  static BoardRegistry registry = [] {
    BoardRegistry r;
    r.add(bananapi_spec(), [] { return std::make_unique<BananaPiBoard>(); });
    r.add(quad_a7_spec(), [] { return std::make_unique<QuadA7Board>(); });
    return r;
  }();
  return registry;
}

void BoardRegistry::add(BoardSpec spec, Factory factory) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string key = spec.name;
  impl_->boards.insert_or_assign(std::move(key),
                                 Impl::Entry{std::move(spec), std::move(factory)});
}

std::unique_ptr<Board> BoardRegistry::make(std::string_view name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->boards.find(name);
    if (it == impl_->boards.end()) return nullptr;
    factory = it->second.factory;
  }
  return factory();
}

const BoardSpec* BoardRegistry::find_spec(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->boards.find(name);
  return it == impl_->boards.end() ? nullptr : &it->second.spec;
}

std::vector<std::string> BoardRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->boards.size());
  for (const auto& [key, entry] : impl_->boards) out.push_back(key);
  return out;  // std::map iteration is already sorted
}

std::size_t BoardRegistry::size() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->boards.size();
}

const BoardSpec* find_board_spec(std::string_view name) {
  return BoardRegistry::instance().find_spec(name);
}

std::unique_ptr<Board> make_board(std::string_view name) {
  return BoardRegistry::instance().make(name);
}

}  // namespace mcs::platform
