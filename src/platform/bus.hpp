// Physical bus: routes physical addresses either to DRAM or to an MMIO
// device window. Cells reach it only through their AddressSpace (stage-2
// checked); the hypervisor reaches it directly.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/phys_mem.hpp"
#include "platform/device.hpp"
#include "util/status.hpp"

namespace mcs::platform {

class Bus {
 public:
  explicit Bus(mem::PhysicalMemory& dram) noexcept : dram_(&dram) {}

  /// Register a device window. Devices are owned by the board; the bus
  /// only routes. Rejects overlapping windows.
  util::Status attach(Device& device);

  [[nodiscard]] Device* find_device(PhysAddr addr) noexcept;
  [[nodiscard]] const std::vector<Device*>& devices() const noexcept {
    return devices_;
  }

  [[nodiscard]] util::Expected<std::uint32_t> read_u32(PhysAddr addr);
  util::Status write_u32(PhysAddr addr, std::uint32_t value);

  [[nodiscard]] mem::PhysicalMemory& dram() noexcept { return *dram_; }

 private:
  mem::PhysicalMemory* dram_;
  std::vector<Device*> devices_;
};

}  // namespace mcs::platform
