// Physical bus: routes physical addresses either to DRAM or to an MMIO
// device window. Cells reach it only through their AddressSpace (stage-2
// checked); the hypervisor reaches it directly.
//
// Dispatch is two-tier: a branch-predictable DRAM range pre-check first
// (the overwhelming majority of guest accesses are RAM, and attach()
// guarantees no device window overlaps DRAM, so the check is exact), then
// a binary search over a base-sorted window table for the peripheral
// block. Device lookup is O(log n) and the DRAM path never touches it.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/phys_mem.hpp"
#include "platform/device.hpp"
#include "util/status.hpp"

namespace mcs::platform {

class Bus {
 public:
  explicit Bus(mem::PhysicalMemory& dram) noexcept : dram_(&dram) {}

  /// Register a device window. Devices are owned by the board; the bus
  /// only routes. Rejects overlapping windows, and windows that overlap
  /// DRAM (those would shadow RAM and break the DRAM fast path's
  /// pre-check soundness).
  util::Status attach(Device& device);

  [[nodiscard]] Device* find_device(PhysAddr addr) noexcept;

  /// Attached devices in attach order (reports/tests iterate this).
  [[nodiscard]] const std::vector<Device*>& devices() const noexcept {
    return devices_;
  }

  [[nodiscard]] util::Expected<std::uint32_t> read_u32(PhysAddr addr) {
    if (dram_->contains(addr, 4)) [[likely]] return dram_->read_u32(addr);
    if (Device* device = find_device(addr)) {
      return device->mmio_read(addr - device->base());
    }
    return dram_->read_u32(addr);  // out-of-range fault, same as before
  }

  util::Status write_u32(PhysAddr addr, std::uint32_t value) {
    if (dram_->contains(addr, 4)) [[likely]] return dram_->write_u32(addr, value);
    if (Device* device = find_device(addr)) {
      return device->mmio_write(addr - device->base(), value);
    }
    return dram_->write_u32(addr, value);
  }

  [[nodiscard]] mem::PhysicalMemory& dram() noexcept { return *dram_; }

 private:
  struct Window {
    PhysAddr base = 0;
    PhysAddr end = 0;  ///< exclusive
    Device* device = nullptr;
  };

  mem::PhysicalMemory* dram_;
  std::vector<Device*> devices_;  ///< attach order (observable)
  std::vector<Window> windows_;   ///< sorted by base (dispatch)
};

}  // namespace mcs::platform
