#include "platform/board.hpp"

#include <algorithm>

namespace mcs::platform {

namespace {

// Enforced before any member sizes itself from the spec: the GIC, the
// hypervisor's per-CPU ownership tables and the machine's bring-up flags
// are all bounded by irq::kMaxCpus, so a registered variant can never
// exceed it (or go below one core).
BoardSpec sanitize(BoardSpec spec) {
  spec.num_cpus = std::clamp(spec.num_cpus, 1, irq::kMaxCpus);
  return spec;
}

}  // namespace

BoardSpec bananapi_spec() {
  BoardSpec spec;
  spec.name = "bananapi";
  spec.model = "Banana Pi (Allwinner A20, dual-core Cortex-A7, 1 GiB)";
  spec.num_cpus = 2;
  spec.ram_size = mem::kDramSize;
  spec.devices = {"uart0", "uart1", "timer", "gpio"};
  return spec;
}

BoardSpec quad_a7_spec() {
  BoardSpec spec;
  spec.name = "quad-a7";
  spec.model = "quad-core Cortex-A7 (A20 peripheral block, 1 GiB)";
  spec.num_cpus = 4;
  spec.ram_size = mem::kDramSize;
  spec.devices = {"uart0", "uart1", "timer", "gpio"};
  return spec;
}

Board::Board(BoardSpec spec)
    : spec_(sanitize(std::move(spec))),
      dram_(mem::kDramBase, spec_.ram_size),
      gic_(spec_.num_cpus),
      bus_(dram_),
      uart0_("uart0", kUart0Base, &gic_, kUart0Irq),
      uart1_("uart1", kUart1Base, &gic_, kUart1Irq),
      timer_("timer", kTimerBase, gic_, spec_.num_cpus, clock_),
      gpio_("gpio", kGpioBase) {
  cpus_.reserve(static_cast<std::size_t>(spec_.num_cpus));
  // CPU blocks live in the board arena: one bump-allocated block instead
  // of a heap node per core, freed wholesale with the board.
  for (int i = 0; i < spec_.num_cpus; ++i) {
    cpus_.push_back(arena_.create<arch::Cpu>(i));
  }
  // Window overlaps are a wiring bug, not a runtime condition.
  (void)bus_.attach(uart0_);
  (void)bus_.attach(uart1_);
  (void)bus_.attach(timer_);
  (void)bus_.attach(gpio_);
  scheduled_ = {&uart0_, &uart1_, &timer_, &gpio_};
  // Wire every scheduled device into the deadline cache: a re-arm bumps
  // the generation, so next_device_deadline() re-polls only then.
  for (Device* device : scheduled_) device->bind_deadline_gen(&deadline_gen_);
}

Board::~Board() {
  // Arena storage is freed wholesale; the objects inside still need their
  // destructors (Cpu owns a halt-reason string).
  for (arch::Cpu* cpu : cpus_) cpu->~Cpu();
}

util::Ticks Board::next_device_deadline() const {
  // Deadlines are absolute and devices bump the generation on every
  // re-arm, so a matching generation means the cached minimum is exact.
  if (cached_deadline_gen_ != deadline_gen_) {
    const util::Ticks now = clock_.now();
    util::Ticks earliest = kNoDeadline;
    for (const Device* device : scheduled_) {
      earliest = std::min(earliest, device->next_deadline(now));
    }
    cached_deadline_ = earliest;
    cached_deadline_gen_ = deadline_gen_;
    ++deadline_refreshes_;
  }
  return cached_deadline_;
}

void Board::service_due_devices(util::Ticks now) {
  // Nothing due: one cached compare instead of a virtual poll per device
  // — the dominant case on busy per-tick spans between timer fires.
  if (next_device_deadline() > now) return;
  for (Device* device : scheduled_) {
    if (device->next_deadline(now) <= now) device->tick(now);
  }
}

void Board::tick() {
  clock_.tick();
  service_due_devices(clock_.now());
}

void Board::advance_to(util::Ticks target) {
  while (clock_.now() < target) {
    const util::Ticks deadline = next_device_deadline();
    if (deadline > target) {
      // Nothing can fire before the window closes: one leap.
      clock_.advance(target - clock_.now());
      return;
    }
    // Deadlines are strictly future by contract; guard against a device
    // that violates it so time always makes progress.
    const util::Ticks stop = std::max(deadline, clock_.now() + util::Ticks{1});
    clock_.advance(stop - clock_.now());
    service_due_devices(clock_.now());
  }
}

void Board::run_ticks(std::uint64_t n) {
  advance_to(clock_.now() + util::Ticks{n});
}

void Board::reset() {
  // Full power-on restore, nothing freed: a pooled testbed's next run
  // must be bit-identical to one on a freshly built board.
  clock_.reset();
  for (arch::Cpu* cpu : cpus_) cpu->reset();
  uart0_.reset();
  uart0_.clear_capture();
  uart1_.reset();
  uart1_.clear_capture();
  timer_.reset();
  gpio_.reset();
  gpio_.clear_toggles();
  gic_.reset();
  dram_.reset_contents();
  log_.clear();
}

void Board::snapshot_to(Snapshot& out, util::Arena& page_arena) const {
  out.clock_now = clock_.now();
  out.cpus.resize(cpus_.size());
  for (std::size_t i = 0; i < cpus_.size(); ++i) cpus_[i]->snapshot_to(out.cpus[i]);
  gic_.snapshot_to(out.gic);
  uart0_.snapshot_to(out.uart0);
  uart1_.snapshot_to(out.uart1);
  timer_.snapshot_to(out.timer);
  gpio_.snapshot_to(out.gpio);
  dram_.snapshot_to(out.dram, page_arena);
  out.log_records = log_.size();
}

void Board::restore_from(const Snapshot& snapshot) {
  clock_.restore(snapshot.clock_now);
  for (std::size_t i = 0; i < cpus_.size() && i < snapshot.cpus.size(); ++i) {
    cpus_[i]->restore_from(snapshot.cpus[i]);
  }
  gic_.restore_from(snapshot.gic);
  uart0_.restore_from(snapshot.uart0);
  uart1_.restore_from(snapshot.uart1);
  timer_.restore_from(snapshot.timer);
  gpio_.restore_from(snapshot.gpio);
  dram_.restore_from(snapshot.dram);
  log_.truncate(snapshot.log_records);
}

}  // namespace mcs::platform
