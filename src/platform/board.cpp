#include "platform/board.hpp"

#include <algorithm>

namespace mcs::platform {

BananaPiBoard::BananaPiBoard()
    : dram_(mem::kDramBase, mem::kDramSize),
      gic_(kNumCpus),
      bus_(dram_),
      uart0_("uart0", kUart0Base, &gic_, kUart0Irq),
      uart1_("uart1", kUart1Base, &gic_, kUart1Irq),
      timer_("timer", kTimerBase, gic_, kNumCpus, clock_),
      gpio_("gpio", kGpioBase) {
  for (int i = 0; i < kNumCpus; ++i) {
    cpus_[static_cast<std::size_t>(i)] = std::make_unique<arch::Cpu>(i);
  }
  // Window overlaps are a wiring bug, not a runtime condition.
  (void)bus_.attach(uart0_);
  (void)bus_.attach(uart1_);
  (void)bus_.attach(timer_);
  (void)bus_.attach(gpio_);
  scheduled_ = {&uart0_, &uart1_, &timer_, &gpio_};
}

util::Ticks BananaPiBoard::next_device_deadline() const {
  const util::Ticks now = clock_.now();
  util::Ticks earliest = kNoDeadline;
  for (const Device* device : scheduled_) {
    earliest = std::min(earliest, device->next_deadline(now));
  }
  return earliest;
}

void BananaPiBoard::service_due_devices(util::Ticks now) {
  for (Device* device : scheduled_) {
    if (device->next_deadline(now) <= now) device->tick(now);
  }
}

void BananaPiBoard::tick() {
  clock_.tick();
  service_due_devices(clock_.now());
}

void BananaPiBoard::advance_to(util::Ticks target) {
  while (clock_.now() < target) {
    const util::Ticks deadline = next_device_deadline();
    if (deadline > target) {
      // Nothing can fire before the window closes: one leap.
      clock_.advance(target - clock_.now());
      return;
    }
    // Deadlines are strictly future by contract; guard against a device
    // that violates it so time always makes progress.
    const util::Ticks stop = std::max(deadline, clock_.now() + util::Ticks{1});
    clock_.advance(stop - clock_.now());
    service_due_devices(clock_.now());
  }
}

void BananaPiBoard::run_ticks(std::uint64_t n) {
  advance_to(clock_.now() + util::Ticks{n});
}

void BananaPiBoard::reset() {
  for (auto& cpu : cpus_) cpu->reset();
  uart0_.reset();
  uart1_.reset();
  timer_.reset();
  gpio_.reset();
  for (int i = 0; i < kNumCpus; ++i) gic_.reset_cpu(i);
}

}  // namespace mcs::platform
