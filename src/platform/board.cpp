#include "platform/board.hpp"

namespace mcs::platform {

BananaPiBoard::BananaPiBoard()
    : dram_(mem::kDramBase, mem::kDramSize),
      gic_(kNumCpus),
      bus_(dram_),
      uart0_("uart0", kUart0Base, &gic_, kUart0Irq),
      uart1_("uart1", kUart1Base, &gic_, kUart1Irq),
      timer_("timer", kTimerBase, gic_, kNumCpus),
      gpio_("gpio", kGpioBase) {
  for (int i = 0; i < kNumCpus; ++i) {
    cpus_[static_cast<std::size_t>(i)] = std::make_unique<arch::Cpu>(i);
  }
  // Window overlaps are a wiring bug, not a runtime condition.
  (void)bus_.attach(uart0_);
  (void)bus_.attach(uart1_);
  (void)bus_.attach(timer_);
  (void)bus_.attach(gpio_);
}

void BananaPiBoard::tick() {
  clock_.tick();
  uart0_.tick(clock_.now());
  uart1_.tick(clock_.now());
  timer_.tick(clock_.now());
  gpio_.tick(clock_.now());
}

void BananaPiBoard::run_ticks(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) tick();
}

void BananaPiBoard::reset() {
  for (auto& cpu : cpus_) cpu->reset();
  uart0_.reset();
  uart1_.reset();
  timer_.reset();
  gpio_.reset();
  for (int i = 0; i < kNumCpus; ++i) gic_.reset_cpu(i);
}

}  // namespace mcs::platform
