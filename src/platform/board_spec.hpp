// BoardSpec: the compile-time-free description of a board variant.
//
// The paper's testbed is a dual-core Banana Pi, but the methodology is
// board-agnostic: a partitioning hypervisor pins cells to *cores*, so
// hosting two concurrent non-root cells merely needs a board with spare
// CPUs. A BoardSpec carries everything that differs between variants —
// name, CPU count, DRAM size, the peripheral set — so every layer above
// the platform can size itself from the spec instead of a constant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/phys_mem.hpp"

namespace mcs::platform {

struct BoardSpec {
  std::string name;         ///< registry key ("bananapi", "quad-a7")
  std::string model;        ///< human-readable description
  /// Clamped by Board construction to [1, irq::kMaxCpus]: every per-CPU
  /// table above the platform layer is bounded by that constant.
  int num_cpus = 2;
  std::uint64_t ram_size = mem::kDramSize;
  /// Peripheral windows the board instantiates, in legacy tick order.
  std::vector<std::string> devices;
};

/// The paper's board: dual-core Cortex-A7 Allwinner A20, 1 GiB DRAM.
[[nodiscard]] BoardSpec bananapi_spec();

/// A 4-CPU Cortex-A7 variant with the same A20 peripheral block: room for
/// the root cell plus two *concurrent* non-root cells on dedicated cores.
[[nodiscard]] BoardSpec quad_a7_spec();

}  // namespace mcs::platform
