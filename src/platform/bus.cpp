#include "platform/bus.hpp"

#include "util/strings.hpp"

namespace mcs::platform {

util::Status Bus::attach(Device& device) {
  for (const Device* existing : devices_) {
    const bool overlap = device.base() < existing->base() + existing->size() &&
                         existing->base() < device.base() + device.size();
    if (overlap) {
      return util::invalid_argument("device window '" + device.name() +
                                    "' overlaps '" + existing->name() + "'");
    }
  }
  devices_.push_back(&device);
  return util::ok_status();
}

Device* Bus::find_device(PhysAddr addr) noexcept {
  for (Device* device : devices_) {
    if (device->contains(addr)) return device;
  }
  return nullptr;
}

util::Expected<std::uint32_t> Bus::read_u32(PhysAddr addr) {
  if (Device* device = find_device(addr)) {
    return device->mmio_read(addr - device->base());
  }
  return dram_->read_u32(addr);
}

util::Status Bus::write_u32(PhysAddr addr, std::uint32_t value) {
  if (Device* device = find_device(addr)) {
    return device->mmio_write(addr - device->base(), value);
  }
  return dram_->write_u32(addr, value);
}

}  // namespace mcs::platform
