#include "platform/bus.hpp"

#include <algorithm>

namespace mcs::platform {

util::Status Bus::attach(Device& device) {
  const PhysAddr base = device.base();
  const PhysAddr end = device.base() + device.size();
  // The DRAM pre-check in read/write assumes every device lives outside
  // the DRAM window; reject wiring that would break it.
  if (base < dram_->base() + dram_->size() && dram_->base() < end) {
    return util::invalid_argument("device window '" + device.name() +
                                  "' overlaps DRAM");
  }
  // Windows are kept sorted and pairwise disjoint, so only the sorted
  // neighbours of the insertion point can overlap the newcomer.
  const auto insert_at = std::upper_bound(
      windows_.begin(), windows_.end(), base,
      [](PhysAddr b, const Window& w) { return b < w.base; });
  const Window* overlapping = nullptr;
  if (insert_at != windows_.begin() && (insert_at - 1)->end > base) {
    overlapping = &*(insert_at - 1);
  } else if (insert_at != windows_.end() && insert_at->base < end) {
    overlapping = &*insert_at;
  }
  if (overlapping != nullptr) {
    return util::invalid_argument("device window '" + device.name() +
                                  "' overlaps '" +
                                  overlapping->device->name() + "'");
  }
  windows_.insert(insert_at, Window{base, end, &device});
  devices_.push_back(&device);
  return util::ok_status();
}

Device* Bus::find_device(PhysAddr addr) noexcept {
  // Greatest base ≤ addr; windows are disjoint, so it is the only
  // candidate.
  const auto it = std::upper_bound(
      windows_.begin(), windows_.end(), addr,
      [](PhysAddr a, const Window& w) { return a < w.base; });
  if (it == windows_.begin()) return nullptr;
  const Window& window = *(it - 1);
  return addr < window.end ? window.device : nullptr;
}

}  // namespace mcs::platform
