#include "platform/uart.hpp"

#include "util/strings.hpp"

namespace mcs::platform {

Uart::Uart(std::string name, PhysAddr base, irq::Gic* gic, irq::IrqId tx_irq)
    : Device(std::move(name), base, 0x400), gic_(gic), tx_irq_(tx_irq) {}

util::Expected<std::uint32_t> Uart::mmio_read(std::uint64_t offset) {
  switch (offset) {
    case kUartRbr: {
      if (rx_fifo_.empty()) return std::uint32_t{0};
      const auto byte = static_cast<std::uint32_t>(
          static_cast<unsigned char>(rx_fifo_.front()));
      rx_fifo_.erase(rx_fifo_.begin());
      return byte;
    }
    case kUartIer:
      return static_cast<std::uint32_t>(tx_irq_enabled_ ? 1 : 0);
    case kUartLsr: {
      // Transmitter is always ready in the model; data-ready mirrors the
      // RX FIFO.
      std::uint32_t lsr = kLsrThrEmpty;
      if (!rx_fifo_.empty()) lsr |= kLsrDataReady;
      return lsr;
    }
    default:
      return util::invalid_argument("uart read at bad offset " + util::hex(offset));
  }
}

util::Status Uart::mmio_write(std::uint64_t offset, std::uint32_t value) {
  switch (offset) {
    case kUartThr:
      captured_.push_back(static_cast<char>(value & 0xff));
      if (tx_irq_enabled_ && gic_ != nullptr) {
        MCS_RETURN_IF_ERROR(gic_->raise_spi(tx_irq_));
      }
      return util::ok_status();
    case kUartIer:
      tx_irq_enabled_ = (value & 1) != 0;
      return util::ok_status();
    case kUartLsr:
      return util::perm("uart LSR is read-only");
    default:
      return util::invalid_argument("uart write at bad offset " + util::hex(offset));
  }
}

void Uart::reset() {
  rx_fifo_.clear();
  tx_irq_enabled_ = false;
  // The capture survives reset on purpose: it is the experiment log.
}

std::vector<std::string> Uart::lines() const {
  std::vector<std::string> out;
  std::string current;
  for (const char c : captured_) {
    if (c == '\n') {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  return out;
}

void Uart::feed_rx(std::string_view data) { rx_fifo_.append(data); }

}  // namespace mcs::platform
