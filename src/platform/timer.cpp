#include "platform/timer.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mcs::platform {

PeriodicTimer::PeriodicTimer(std::string name, PhysAddr base, irq::Gic& gic,
                             int num_cpus, const util::SimClock& clock)
    : Device(std::move(name), base,
             kTimerStride * static_cast<std::uint64_t>(irq::kMaxCpus)),
      gic_(&gic),
      num_cpus_(std::clamp(num_cpus, 1, irq::kMaxCpus)),
      clock_(&clock) {}

std::uint32_t PeriodicTimer::remaining(const PerCpu& state) const noexcept {
  if (!state.enabled) return state.paused_remaining;
  if (state.next_fire == kNoDeadline) return 0;
  const util::Ticks now = clock_->now();
  return state.next_fire > now
             ? static_cast<std::uint32_t>((state.next_fire - now).value)
             : 0;
}

util::Expected<std::uint32_t> PeriodicTimer::mmio_read(std::uint64_t offset) {
  const auto cpu = static_cast<int>(offset / kTimerStride);
  const std::uint64_t reg = offset % kTimerStride;
  if (cpu >= num_cpus_) {
    return util::invalid_argument("timer read for absent cpu");
  }
  const PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
  switch (reg) {
    case kTimerCtl: return static_cast<std::uint32_t>(state.enabled ? 1 : 0);
    case kTimerInterval: return state.interval;
    case kTimerCount: return remaining(state);
    default:
      return util::invalid_argument("timer read at bad offset " + util::hex(offset));
  }
}

util::Status PeriodicTimer::mmio_write(std::uint64_t offset, std::uint32_t value) {
  const auto cpu = static_cast<int>(offset / kTimerStride);
  const std::uint64_t reg = offset % kTimerStride;
  if (cpu >= num_cpus_) {
    return util::invalid_argument("timer write for absent cpu");
  }
  PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
  const util::Ticks now = clock_->now();
  switch (reg) {
    case kTimerCtl: {
      const bool enable = (value & 1) != 0;
      if (enable && !state.enabled) {
        // Re-arm relative to now: a frozen residual resumes its countdown,
        // otherwise a fresh period starts (the countdown model's
        // "remaining == 0 → remaining = interval").
        const std::uint32_t resume =
            state.paused_remaining != 0 ? state.paused_remaining : state.interval;
        state.next_fire =
            resume != 0 ? now + util::Ticks{resume} : kNoDeadline;
        state.paused_remaining = 0;
      } else if (!enable && state.enabled) {
        state.paused_remaining = remaining(state);
        state.next_fire = kNoDeadline;
      }
      state.enabled = enable;
      note_deadline_change();
      return util::ok_status();
    }
    case kTimerInterval:
      state.interval = value;
      if (state.enabled) {
        state.next_fire = value != 0 ? now + util::Ticks{value} : kNoDeadline;
      } else {
        state.paused_remaining = value;
      }
      note_deadline_change();
      return util::ok_status();
    default:
      return util::invalid_argument("timer write at bad offset " + util::hex(offset));
  }
}

util::Ticks PeriodicTimer::next_deadline(util::Ticks /*now*/) const {
  util::Ticks earliest = kNoDeadline;
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    const PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
    if (!state.enabled || state.interval == 0) continue;
    earliest = std::min(earliest, state.next_fire);
  }
  return earliest;
}

void PeriodicTimer::tick(util::Ticks now) {
  bool rearmed = false;
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
    if (!state.enabled || state.interval == 0 || state.next_fire == kNoDeadline) {
      continue;
    }
    while (state.next_fire <= now) {
      state.next_fire += util::Ticks{state.interval};
      ++state.fires;
      rearmed = true;
      (void)gic_->raise_ppi(cpu, kVirtualTimerPpi);
    }
  }
  if (rearmed) note_deadline_change();
}

void PeriodicTimer::reset() {
  cpus_.fill(PerCpu{});
  note_deadline_change();
}

void PeriodicTimer::start(int cpu, std::uint32_t period_ticks) {
  if (cpu < 0 || cpu >= num_cpus_ || period_ticks == 0) return;
  PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
  state.enabled = true;
  state.interval = period_ticks;
  state.next_fire = clock_->now() + util::Ticks{period_ticks};
  state.paused_remaining = 0;
  note_deadline_change();
}

void PeriodicTimer::stop(int cpu) {
  if (cpu < 0 || cpu >= num_cpus_) return;
  PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
  if (state.enabled) {
    state.paused_remaining = remaining(state);
    state.next_fire = kNoDeadline;
  }
  state.enabled = false;
  note_deadline_change();
}

bool PeriodicTimer::is_running(int cpu) const noexcept {
  return cpu >= 0 && cpu < num_cpus_ &&
         cpus_[static_cast<std::size_t>(cpu)].enabled;
}

std::uint64_t PeriodicTimer::fires(int cpu) const noexcept {
  return (cpu >= 0 && cpu < num_cpus_)
             ? cpus_[static_cast<std::size_t>(cpu)].fires
             : 0;
}

}  // namespace mcs::platform
