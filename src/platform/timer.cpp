#include "platform/timer.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mcs::platform {

PeriodicTimer::PeriodicTimer(std::string name, PhysAddr base, irq::Gic& gic,
                             int num_cpus)
    : Device(std::move(name), base,
             kTimerStride * static_cast<std::uint64_t>(irq::kMaxCpus)),
      gic_(&gic),
      num_cpus_(std::clamp(num_cpus, 1, irq::kMaxCpus)) {}

util::Expected<std::uint32_t> PeriodicTimer::mmio_read(std::uint64_t offset) {
  const auto cpu = static_cast<int>(offset / kTimerStride);
  const std::uint64_t reg = offset % kTimerStride;
  if (cpu >= num_cpus_) {
    return util::invalid_argument("timer read for absent cpu");
  }
  const PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
  switch (reg) {
    case kTimerCtl: return static_cast<std::uint32_t>(state.enabled ? 1 : 0);
    case kTimerInterval: return state.interval;
    case kTimerCount: return state.remaining;
    default:
      return util::invalid_argument("timer read at bad offset " + util::hex(offset));
  }
}

util::Status PeriodicTimer::mmio_write(std::uint64_t offset, std::uint32_t value) {
  const auto cpu = static_cast<int>(offset / kTimerStride);
  const std::uint64_t reg = offset % kTimerStride;
  if (cpu >= num_cpus_) {
    return util::invalid_argument("timer write for absent cpu");
  }
  PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
  switch (reg) {
    case kTimerCtl:
      state.enabled = (value & 1) != 0;
      if (state.enabled && state.remaining == 0) state.remaining = state.interval;
      return util::ok_status();
    case kTimerInterval:
      state.interval = value;
      state.remaining = value;
      return util::ok_status();
    default:
      return util::invalid_argument("timer write at bad offset " + util::hex(offset));
  }
}

void PeriodicTimer::tick(util::Ticks /*now*/) {
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
    if (!state.enabled || state.interval == 0) continue;
    if (--state.remaining == 0) {
      state.remaining = state.interval;
      ++state.fires;
      (void)gic_->raise_ppi(cpu, kVirtualTimerPpi);
    }
  }
}

void PeriodicTimer::reset() { cpus_.fill(PerCpu{}); }

void PeriodicTimer::start(int cpu, std::uint32_t period_ticks) {
  if (cpu < 0 || cpu >= num_cpus_ || period_ticks == 0) return;
  PerCpu& state = cpus_[static_cast<std::size_t>(cpu)];
  state.enabled = true;
  state.interval = period_ticks;
  state.remaining = period_ticks;
}

void PeriodicTimer::stop(int cpu) {
  if (cpu < 0 || cpu >= num_cpus_) return;
  cpus_[static_cast<std::size_t>(cpu)].enabled = false;
}

bool PeriodicTimer::is_running(int cpu) const noexcept {
  return cpu >= 0 && cpu < num_cpus_ &&
         cpus_[static_cast<std::size_t>(cpu)].enabled;
}

std::uint64_t PeriodicTimer::fires(int cpu) const noexcept {
  return (cpu >= 0 && cpu < num_cpus_)
             ? cpus_[static_cast<std::size_t>(cpu)].fires
             : 0;
}

}  // namespace mcs::platform
