// Board models: the testbed hardware behind every layer above.
//
// `Board` is the interface the hypervisor, machine and testbed program
// against: a spec-described SoC (CPU count and DRAM size taken from the
// BoardSpec at construction, never from a compile-time constant) composed
// with the Allwinner A20 peripheral block — two UARTs, the PIO controller
// and the per-CPU timer, at the real physical addresses so cell configs
// read like the genuine Jailhouse ones.
//
// Variants are thin subclasses that pass their spec: `BananaPiBoard` is
// the paper's dual-core testbed ("The tested hardware comprises a Banana
// PI, which is a dual-core Cortex-A7 board, equipped with 1 GB of RAM",
// §III); `QuadA7Board` is a 4-CPU variant hosting two concurrent non-root
// cells. New variants register in the BoardRegistry (board_registry.hpp).
#pragma once

#include <memory>
#include <vector>

#include "arch/cpu.hpp"
#include "irq/gic.hpp"
#include "mem/phys_mem.hpp"
#include "platform/board_spec.hpp"
#include "platform/bus.hpp"
#include "platform/gpio.hpp"
#include "platform/timer.hpp"
#include "platform/uart.hpp"
#include "util/arena.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace mcs::platform {

/// Allwinner A20 peripheral window addresses.
inline constexpr PhysAddr kUart0Base = 0x01c2'8000;  ///< root-cell console
inline constexpr PhysAddr kUart1Base = 0x01c2'8400;  ///< non-root USART
inline constexpr PhysAddr kGpioBase = 0x01c2'0800;   ///< PIO controller
inline constexpr PhysAddr kTimerBase = 0x01c2'0c00;  ///< timer block

/// SPI lines for the UARTs (GIC id = 32 + A20 interrupt source).
inline constexpr irq::IrqId kUart0Irq = 33;
inline constexpr irq::IrqId kUart1Irq = 34;

/// The composed board. Owns every hardware model; higher layers hold
/// references. Copying a board is meaningless — moved/copied never.
/// CPU storage is sized from the spec at construction and placed in the
/// board's arena (one block, no per-CPU heap nodes).
class Board {
 public:
  explicit Board(BoardSpec spec);
  virtual ~Board();

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  [[nodiscard]] const BoardSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }

  [[nodiscard]] util::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] util::Ticks now() const noexcept { return clock_.now(); }

  [[nodiscard]] arch::Cpu& cpu(int index) noexcept { return *cpus_[static_cast<std::size_t>(index)]; }
  [[nodiscard]] const arch::Cpu& cpu(int index) const noexcept {
    return *cpus_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] int num_cpus() const noexcept {
    return static_cast<int>(cpus_.size());
  }

  [[nodiscard]] mem::PhysicalMemory& dram() noexcept { return dram_; }
  [[nodiscard]] irq::Gic& gic() noexcept { return gic_; }
  [[nodiscard]] Bus& bus() noexcept { return bus_; }
  [[nodiscard]] Uart& uart0() noexcept { return uart0_; }
  [[nodiscard]] Uart& uart1() noexcept { return uart1_; }
  [[nodiscard]] PeriodicTimer& timer() noexcept { return timer_; }
  [[nodiscard]] Gpio& gpio() noexcept { return gpio_; }
  [[nodiscard]] util::EventLog& log() noexcept { return log_; }

  /// Advance board time by one tick: clock, then every device whose
  /// published deadline is due (O(changed devices), not O(devices)).
  void tick();

  /// Advance by `n` ticks. Delegates to advance_to(): one loop owns time
  /// advancement for the whole platform layer.
  void run_ticks(std::uint64_t n);

  /// Event-driven time advance: leap straight from device deadline to
  /// device deadline until `target`, servicing only the devices that are
  /// due at each stop. Equivalent to ticking every device every tick —
  /// devices keep absolute deadlines — but idle spans cost O(1).
  void advance_to(util::Ticks target);

  /// Earliest deadline any device has published (kNoDeadline when the
  /// whole board is quiescent). Cached behind the deadline generation:
  /// devices bump it (via Device::note_deadline_change) whenever they
  /// re-arm, so the steady-state cost is one compare instead of a
  /// virtual next_deadline() call per device.
  [[nodiscard]] util::Ticks next_device_deadline() const;

  /// Times the deadline cache had to re-poll the devices (monotonic
  /// instrumentation; a busy-tick span should refresh once per re-arm,
  /// not once per query).
  [[nodiscard]] std::uint64_t deadline_refreshes() const noexcept {
    return deadline_refreshes_;
  }

  /// Power-on restore without freeing memory: clock back to tick 0, CPUs
  /// (including profiling counters), devices and serial captures, irqchip
  /// line state, DRAM contents (resident pages zeroed in place) and the
  /// event log. After reset() the board is observably indistinguishable
  /// from a freshly constructed one — the contract the testbed pool's
  /// reuse-equivalence suite pins — while every backing allocation (CPU
  /// arena block, DRAM pages, capture/log capacity) stays resident for
  /// the next run.
  void reset();

  // --- snapshot / restore (testbed warm-start) --------------------------
  /// Everything a run mutates below the hypervisor: clock, CPUs, devices,
  /// irqchip, DRAM (dirty pages only) and the log length. Page payloads
  /// are copied into `page_arena` (the testbed's run arena), everything
  /// else lives inline in the struct.
  struct Snapshot {
    util::Ticks clock_now{};
    std::vector<arch::Cpu::Snapshot> cpus;
    irq::Gic::Snapshot gic;
    Uart::Snapshot uart0;
    Uart::Snapshot uart1;
    PeriodicTimer::Snapshot timer;
    Gpio::Snapshot gpio;
    mem::PhysicalMemory::Snapshot dram;
    std::size_t log_records = 0;
  };

  void snapshot_to(Snapshot& out, util::Arena& page_arena) const;
  void restore_from(const Snapshot& snapshot);

 private:
  /// Service every device whose deadline is due at `now`.
  void service_due_devices(util::Ticks now);

  BoardSpec spec_;
  /// Construction-scoped storage (CPU blocks); never rewound — the board
  /// keeps its hardware for life, reset() only restores state.
  util::Arena arena_{4 * 1024};
  util::SimClock clock_;
  util::EventLog log_;
  mem::PhysicalMemory dram_;
  irq::Gic gic_;
  Bus bus_;
  Uart uart0_;
  Uart uart1_;
  PeriodicTimer timer_;
  Gpio gpio_;
  std::vector<arch::Cpu*> cpus_;  ///< arena-placed; destroyed by ~Board
  /// The deadline queue: every ticking device, in legacy tick order.
  std::array<Device*, 4> scheduled_{};
  /// Bumped by devices on every re-arm (they hold a pointer to it);
  /// starts at 1 so the never-refreshed cache (gen 0) is always stale.
  std::uint64_t deadline_gen_ = 1;
  mutable util::Ticks cached_deadline_ = kNoDeadline;
  mutable std::uint64_t cached_deadline_gen_ = 0;
  mutable std::uint64_t deadline_refreshes_ = 0;
};

/// The paper's testbed: dual-core Cortex-A7, 1 GiB DRAM.
class BananaPiBoard final : public Board {
 public:
  BananaPiBoard() : Board(bananapi_spec()) {}
};

/// 4-CPU Cortex-A7 variant: root cell plus two concurrent non-root cells.
class QuadA7Board final : public Board {
 public:
  QuadA7Board() : Board(quad_a7_spec()) {}
};

}  // namespace mcs::platform
