// Per-CPU periodic timer (models the Cortex-A7 generic timer's virtual
// timer PPI). Drives both guests' schedulers: FreeRTOS's tick interrupt
// and the root cell's jiffy tick.
//
// Internally the timer keeps *absolute* fire deadlines against the board
// clock instead of per-tick countdowns, so the board's deadline scheduler
// can leap idle spans in one jump: next_deadline() is the earliest armed
// fire tick and tick(now) fires every deadline that is due at `now`.
// Programming semantics are unchanged from the countdown model — a timer
// started at tick T with period p first fires at T+p, and a disabled
// timer's residual count is frozen until re-enable.
#pragma once

#include <array>
#include <cstdint>

#include "irq/gic.hpp"
#include "platform/device.hpp"
#include "util/clock.hpp"

namespace mcs::platform {

/// Virtual timer PPI line (architectural: PPI 27).
inline constexpr irq::IrqId kVirtualTimerPpi = 27;

/// Register offsets (simplified control block per CPU, stride 0x10).
inline constexpr std::uint64_t kTimerCtl = 0x0;     ///< bit0 enable
inline constexpr std::uint64_t kTimerInterval = 0x4;  ///< period in ticks
inline constexpr std::uint64_t kTimerCount = 0x8;   ///< ticks until fire (RO)
inline constexpr std::uint64_t kTimerStride = 0x10;

class PeriodicTimer final : public Device {
 public:
  /// `clock` is the board clock the deadlines are kept against; it must
  /// outlive the timer (the board owns both).
  PeriodicTimer(std::string name, PhysAddr base, irq::Gic& gic, int num_cpus,
                const util::SimClock& clock);

  [[nodiscard]] util::Expected<std::uint32_t> mmio_read(std::uint64_t offset) override;
  util::Status mmio_write(std::uint64_t offset, std::uint32_t value) override;
  [[nodiscard]] util::Ticks next_deadline(util::Ticks now) const override;
  void tick(util::Ticks now) override;
  void reset() override;

  /// Convenience for guests that program the timer directly (the usual
  /// path in the simulation; MMIO exists for device-model completeness).
  void start(int cpu, std::uint32_t period_ticks);
  void stop(int cpu);
  [[nodiscard]] bool is_running(int cpu) const noexcept;
  [[nodiscard]] std::uint64_t fires(int cpu) const noexcept;

  // --- snapshot / restore (testbed warm-start) --------------------------
  /// Deadlines are absolute board ticks, so a snapshot restored together
  /// with the board clock reproduces the exact fire schedule.
  struct Snapshot;
  void snapshot_to(Snapshot& out) const noexcept;
  void restore_from(const Snapshot& snapshot) noexcept;

 private:
  struct PerCpu {
    bool enabled = false;
    std::uint32_t interval = 0;
    /// Absolute tick of the next fire while enabled; kNoDeadline when
    /// nothing is scheduled.
    util::Ticks next_fire = kNoDeadline;
    /// Residual ticks-to-fire captured on disable (the countdown model's
    /// frozen `remaining`), re-armed relative to `now` on enable.
    std::uint32_t paused_remaining = 0;
    std::uint64_t fires = 0;
  };

  /// Residual ticks until fire as the countdown model would report it.
  [[nodiscard]] std::uint32_t remaining(const PerCpu& state) const noexcept;

  irq::Gic* gic_;
  int num_cpus_;
  const util::SimClock* clock_;
  std::array<PerCpu, irq::kMaxCpus> cpus_{};
};

struct PeriodicTimer::Snapshot {
  std::array<PerCpu, irq::kMaxCpus> cpus{};
};

inline void PeriodicTimer::snapshot_to(Snapshot& out) const noexcept {
  out.cpus = cpus_;
}

inline void PeriodicTimer::restore_from(const Snapshot& snapshot) noexcept {
  cpus_ = snapshot.cpus;
  note_deadline_change();
}

}  // namespace mcs::platform
