// Per-CPU periodic timer (models the Cortex-A7 generic timer's virtual
// timer PPI). Drives both guests' schedulers: FreeRTOS's tick interrupt
// and the root cell's jiffy tick.
#pragma once

#include <array>
#include <cstdint>

#include "irq/gic.hpp"
#include "platform/device.hpp"

namespace mcs::platform {

/// Virtual timer PPI line (architectural: PPI 27).
inline constexpr irq::IrqId kVirtualTimerPpi = 27;

/// Register offsets (simplified control block per CPU, stride 0x10).
inline constexpr std::uint64_t kTimerCtl = 0x0;     ///< bit0 enable
inline constexpr std::uint64_t kTimerInterval = 0x4;  ///< period in ticks
inline constexpr std::uint64_t kTimerCount = 0x8;   ///< ticks until fire (RO)
inline constexpr std::uint64_t kTimerStride = 0x10;

class PeriodicTimer final : public Device {
 public:
  PeriodicTimer(std::string name, PhysAddr base, irq::Gic& gic, int num_cpus);

  [[nodiscard]] util::Expected<std::uint32_t> mmio_read(std::uint64_t offset) override;
  util::Status mmio_write(std::uint64_t offset, std::uint32_t value) override;
  void tick(util::Ticks now) override;
  void reset() override;

  /// Convenience for guests that program the timer directly (the usual
  /// path in the simulation; MMIO exists for device-model completeness).
  void start(int cpu, std::uint32_t period_ticks);
  void stop(int cpu);
  [[nodiscard]] bool is_running(int cpu) const noexcept;
  [[nodiscard]] std::uint64_t fires(int cpu) const noexcept;

 private:
  struct PerCpu {
    bool enabled = false;
    std::uint32_t interval = 0;
    std::uint32_t remaining = 0;
    std::uint64_t fires = 0;
  };

  irq::Gic* gic_;
  int num_cpus_;
  std::array<PerCpu, irq::kMaxCpus> cpus_{};
};

}  // namespace mcs::platform
