// String-keyed board registry: the platform-layer twin of the scenario
// registry. Campaign plans select their testbed hardware by name
// ("board quad-a7" in the config-text vocabulary); the executor builds a
// fresh board per run through this registry, so adding a variant is one
// add() call — no layer above the platform names a concrete board type.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "platform/board.hpp"

namespace mcs::platform {

/// The registry key every plan defaults to (the paper's testbed).
inline constexpr std::string_view kDefaultBoard = "bananapi";

class BoardRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Board>()>;

  /// A registered variant: the spec plus its factory, shared so holders
  /// stay valid even if the key is later re-registered.
  struct Entry {
    BoardSpec spec;
    Factory factory;
  };

  /// Singleton with the built-in variants ("bananapi", "quad-a7")
  /// registered on first access. Lookup is thread-safe; registration of
  /// additional boards must happen before campaigns start executing.
  static BoardRegistry& instance();

  /// Register a variant. Replaces an existing entry with the same key.
  void add(BoardSpec spec, Factory factory);

  /// Construct a fresh board; nullptr when the name is unknown.
  [[nodiscard]] std::unique_ptr<Board> make(std::string_view name) const;

  /// Cached per-key lookup: resolve the key once (one lock, one map
  /// walk), then construct boards and read the spec through the returned
  /// handle with no registry involvement — the executor hoists this out
  /// of its per-run loop. nullptr when unknown.
  [[nodiscard]] std::shared_ptr<const Entry> entry(std::string_view name) const;

  /// Spec lookup without constructing hardware (plan validation);
  /// nullptr when unknown.
  [[nodiscard]] const BoardSpec* find_spec(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const;

 private:
  BoardRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience: spec lookup in the singleton registry.
[[nodiscard]] const BoardSpec* find_board_spec(std::string_view name);

/// Convenience: build a board from the singleton registry.
[[nodiscard]] std::unique_ptr<Board> make_board(std::string_view name);

}  // namespace mcs::platform
