#include "guests/osek_image.hpp"

#include "hypervisor/hypercall.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/ivshmem.hpp"

namespace mcs::guest {

void OsekImage::on_start(jh::GuestContext& ctx) {
  ctx.console_puts("AUTOSAR-classic OS (OSEK BCC1) up in cell '" +
                   std::string(ctx.cell().name()) + "'\n");
  ctx.start_periodic_timer(1);
  if (configured_) return;
  declare_workload();
  configured_ = true;
  ctx.console_puts("OSEK: " + std::to_string(os_.task_count()) +
                   " tasks declared\n");
}

void OsekImage::declare_workload() {
  // 10 ms brake-pressure acquisition: sample, range-check, filter.
  const osek::TaskId brake = os_.declare_task(
      "BrakeAcq", 4, [this](osek::TaskContext&) {
        // Triangle-wave "ADC" with a plausibility check (ISO 26262 E/E
        // mitigation at the application level).
        pressure_raw_ = (pressure_raw_ + 0x31) & 0xfff;
        if (pressure_raw_ > 0xfff) ++errors_;  // cannot happen unless corrupted
        ++samples_;
      });

  // 50 ms frame transmit: length-checked line on the cell console.
  const osek::TaskId frame = os_.declare_task(
      "FrameTx", 3, [this](osek::TaskContext&) {
        ++frame_seq_;
        ++frames_;
        pending_frame_ = true;
      });

  // 100 ms alive supervision: the classical external-watchdog kick.
  const osek::TaskId wdg = os_.declare_task(
      "WdgKick", 2, [this](osek::TaskContext&) { ++kicks_; });

  // Idle-level self-test task, chained from the watchdog every 10th kick.
  const osek::TaskId self_test = os_.declare_task(
      "SelfTest", 1, [this](osek::TaskContext&) {
        if ((pressure_raw_ & 0xfff) != pressure_raw_) ++errors_;
      });
  (void)self_test;

  (void)os_.set_rel_alarm(os_.declare_alarm("AlBrake", brake), 10, 10);
  (void)os_.set_rel_alarm(os_.declare_alarm("AlFrame", frame), 50, 50);
  (void)os_.set_rel_alarm(os_.declare_alarm("AlWdg", wdg), 100, 100);
}

void OsekImage::run_quantum(jh::GuestContext& ctx) {
  ++quantum_counter_;
  // Run all pending activations to completion (OSEK tasks are short).
  for (int i = 0; i < 4; ++i) {
    if (!os_.dispatch().has_value()) break;
  }
  // Console output happens at quantum level so a parked CPU stops
  // transmitting exactly like the FreeRTOS cell does.
  if (pending_frame_) {
    pending_frame_ = false;
    ctx.console_puts("frame " + std::to_string(frame_seq_) + " len=8 ok\n");
  }
  if (quantum_counter_ % 750 == 0) {
    (void)ctx.hypercall(
        static_cast<std::uint32_t>(jh::Hypercall::DebugConsolePutc),
        static_cast<std::uint32_t>('*'));
  }
  if (quantum_counter_ % 1500 == 500) {
    (void)ctx.mmio_read_u32(jh::kGicDistBase + 0x104);
  }
}

void OsekImage::on_timer(jh::GuestContext& ctx) {
  (void)ctx;
  os_.on_counter_tick();
}

void OsekImage::on_irq(jh::GuestContext& ctx, std::uint32_t irq) {
  (void)ctx;
  if (irq == jh::kIvshmemDoorbellSgi) {
    // ivshmem peer rang: a CAN-gateway task would drain the ring here.
    ++doorbells_;
    return;
  }
  // Any other delivered vector is counted and ignored (predictable error
  // handling, as §III expects from corrupted IRQ vectors).
  ++unknown_irqs_;
}

}  // namespace mcs::guest
