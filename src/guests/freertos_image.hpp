// The paper's FreeRTOS non-root cell workload (§III):
//
//   "within FreeRTOS we spawned several tasks to be managed, including a
//    task to blink an onboard led, a couple of send/receive tasks, two
//    floating-point arithmetic tasks, and fifteen integer ones."
//
// Every task prints self-validating heartbeats on the cell console (USART/
// UART1, trapped MMIO), which is the availability observable the run
// monitor classifies: a live cell produces a steady line flow; a broken
// one leaves the USART "completely blank".
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "guests/rtos/kernel.hpp"
#include "hypervisor/guest.hpp"

namespace mcs::guest {

class FreeRtosImage final : public jh::GuestImage {
 public:
  FreeRtosImage() = default;

  [[nodiscard]] std::string_view name() const override { return "freertos"; }
  void on_start(jh::GuestContext& ctx) override;
  void run_quantum(jh::GuestContext& ctx) override;
  void on_timer(jh::GuestContext& ctx) override;
  void on_irq(jh::GuestContext& ctx, std::uint32_t irq) override;

  [[nodiscard]] rtos::Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] const rtos::Kernel& kernel() const noexcept { return kernel_; }

  // --- workload health counters (read by tests and the run monitor) ------
  [[nodiscard]] std::uint64_t blink_count() const noexcept { return blinks_; }
  [[nodiscard]] std::uint64_t messages_validated() const noexcept {
    return rx_validated_;
  }
  [[nodiscard]] std::uint64_t data_errors() const noexcept { return data_errors_; }
  [[nodiscard]] std::uint64_t unknown_irqs() const noexcept { return unknown_irqs_; }
  [[nodiscard]] std::uint64_t doorbells() const noexcept { return doorbells_; }

  /// Power-on restore: kernel, task set and every workload counter back
  /// to the freshly constructed state; on_start() re-spawns the workload.
  void reset() noexcept {
    kernel_.reset();
    spawned_ = false;
    led_on_ = false;
    msg_queue_ = 0;
    tx_seq_ = 0;
    rx_seq_ = 0;
    rx_validated_ = 0;
    blinks_ = 0;
    data_errors_ = 0;
    unknown_irqs_ = 0;
    doorbells_ = 0;
    heartbeat_counter_ = 0;
    fp_accumulators_ = {};
    fp_shadows_ = {};
    fp_iterations_ = {};
    int_iterations_ = {};
  }

  /// Tick period of the guest tick interrupt (1 board tick = 1 ms).
  static constexpr std::uint32_t kTickPeriod = 1;

  /// Task counts per the paper.
  static constexpr int kIntegerTasks = 15;

  /// Guest-RAM state block: the integer tasks keep their hash chains in
  /// cell memory with a redundant second copy (the classic ASIL
  /// dual-storage pattern), so DRAM faults are *detectable* by the
  /// application — the observable of the memory-fault campaign.
  static constexpr std::uint64_t kStateBase = 0x7800'2000;
  static constexpr std::uint64_t kShadowBase = 0x7800'2200;

  // --- snapshot / restore (testbed warm-start) --------------------------
  struct Snapshot {
    rtos::Kernel::Snapshot kernel;
    bool spawned = false;
    bool led_on = false;
    rtos::QueueId msg_queue = 0;
    std::uint32_t tx_seq = 0;
    std::uint32_t rx_seq = 0;
    std::uint64_t rx_validated = 0;
    std::uint64_t blinks = 0;
    std::uint64_t data_errors = 0;
    std::uint64_t unknown_irqs = 0;
    std::uint64_t doorbells = 0;
    std::uint64_t heartbeat_counter = 0;
    std::array<double, 2> fp_accumulators{};
    std::array<double, 2> fp_shadows{};
    std::array<std::uint64_t, 2> fp_iterations{};
    std::array<std::uint64_t, kIntegerTasks> int_iterations{};
  };

  void snapshot_to(Snapshot& out) const {
    kernel_.snapshot_to(out.kernel);
    out.spawned = spawned_;
    out.led_on = led_on_;
    out.msg_queue = msg_queue_;
    out.tx_seq = tx_seq_;
    out.rx_seq = rx_seq_;
    out.rx_validated = rx_validated_;
    out.blinks = blinks_;
    out.data_errors = data_errors_;
    out.unknown_irqs = unknown_irqs_;
    out.doorbells = doorbells_;
    out.heartbeat_counter = heartbeat_counter_;
    out.fp_accumulators = fp_accumulators_;
    out.fp_shadows = fp_shadows_;
    out.fp_iterations = fp_iterations_;
    out.int_iterations = int_iterations_;
  }

  void restore_from(const Snapshot& snapshot) {
    kernel_.restore_from(snapshot.kernel);
    spawned_ = snapshot.spawned;
    led_on_ = snapshot.led_on;
    msg_queue_ = snapshot.msg_queue;
    tx_seq_ = snapshot.tx_seq;
    rx_seq_ = snapshot.rx_seq;
    rx_validated_ = snapshot.rx_validated;
    blinks_ = snapshot.blinks;
    data_errors_ = snapshot.data_errors;
    unknown_irqs_ = snapshot.unknown_irqs;
    doorbells_ = snapshot.doorbells;
    heartbeat_counter_ = snapshot.heartbeat_counter;
    fp_accumulators_ = snapshot.fp_accumulators;
    fp_shadows_ = snapshot.fp_shadows;
    fp_iterations_ = snapshot.fp_iterations;
    int_iterations_ = snapshot.int_iterations;
  }

 private:
  void spawn_workload();

  /// Reference checksum for the tx/rx stream (Fletcher-style).
  [[nodiscard]] static std::uint32_t message_checksum(std::uint32_t seq) noexcept;

  rtos::Kernel kernel_;
  bool spawned_ = false;
  bool led_on_ = false;

  rtos::QueueId msg_queue_ = 0;
  std::uint32_t tx_seq_ = 0;
  std::uint32_t rx_seq_ = 0;
  std::uint64_t rx_validated_ = 0;
  std::uint64_t blinks_ = 0;
  std::uint64_t data_errors_ = 0;
  std::uint64_t unknown_irqs_ = 0;
  std::uint64_t doorbells_ = 0;
  std::uint64_t heartbeat_counter_ = 0;

  std::array<double, 2> fp_accumulators_{};
  std::array<double, 2> fp_shadows_{};
  std::array<std::uint64_t, 2> fp_iterations_{};
  std::array<std::uint64_t, kIntegerTasks> int_iterations_{};
};

}  // namespace mcs::guest
