// Mini-RTOS kernel: priority-preemptive scheduler with delays and
// blocking queues — the FreeRTOS stand-in for the non-root cell.
//
// The kernel is deliberately a *functional* model: one `run_slice()` call
// dispatches one task step, and `on_tick()` is the tick-interrupt hook.
// That is all the paper's workload needs ("several tasks to be managed,
// including a task to blink an onboard led, a couple of send/receive
// tasks, two floating-point arithmetic tasks, and fifteen integer ones",
// §III) while keeping every scheduling decision deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "guests/rtos/queue.hpp"
#include "guests/rtos/task.hpp"
#include "hypervisor/guest.hpp"
#include "util/clock.hpp"

namespace mcs::guest::rtos {

/// Services available to a running task step.
struct TaskContext {
  Kernel& kernel;
  jh::GuestContext& guest;  ///< the vCPU window (console, LED, hypercalls)
  TaskId self;
};

class Kernel {
 public:
  Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- task API (xTaskCreate / vTaskDelay analogues) ---------------------
  TaskId add_task(std::string name, unsigned priority, TaskStep step);

  /// Block the calling task for `ticks` tick-interrupts.
  void delay(TaskId task, std::uint64_t ticks);

  void suspend(TaskId task);
  void resume(TaskId task);

  // --- queue API (xQueueCreate / Send / Receive analogues) ---------------
  QueueId create_queue(std::size_t capacity);

  /// Send, blocking the caller when the queue is full.
  bool queue_send(TaskId task, QueueId queue, std::uint32_t item);

  /// Receive; blocks the caller (and returns nullopt) when empty.
  std::optional<std::uint32_t> queue_receive(TaskId task, QueueId queue);

  // --- scheduler ---------------------------------------------------------
  /// Tick interrupt: advances kernel time, wakes expired delays.
  void on_tick();

  /// Dispatch the highest-priority ready task for one step.
  /// Returns the task dispatched, or nullopt when all tasks are idle.
  std::optional<TaskId> run_slice(jh::GuestContext& guest);

  // --- introspection ------------------------------------------------------
  [[nodiscard]] const Task& task(TaskId id) const { return tasks_.at(id); }
  [[nodiscard]] Task& task(TaskId id) { return tasks_.at(id); }
  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] const MessageQueue& queue(QueueId id) const { return *queues_.at(id); }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return tick_count_; }
  [[nodiscard]] std::uint64_t dispatches() const noexcept { return dispatches_; }
  [[nodiscard]] std::optional<TaskId> find_task(std::string_view name) const;

  /// Scheduler invariant checks (used by the property tests): no Running
  /// residue between slices; blocked tasks have a wake reason.
  [[nodiscard]] bool invariants_hold() const noexcept;

  /// Power-on restore: drop every task and queue, rewind kernel time.
  /// Container capacity is kept, so a reused image re-spawning the same
  /// workload allocates (almost) nothing.
  void reset() noexcept;

  // --- snapshot / restore (testbed warm-start) --------------------------
  /// Tasks and queues are created only during guest start-up (pre-capture)
  /// and never removed mid-run, so the snapshot stores per-task/queue
  /// mutable fields by index plus the captured counts. Restore truncates
  /// back to those counts and rewinds the mutable fields in place — task
  /// identity (name, priority, step closure) is never copied.
  struct Snapshot {
    struct TaskData {
      TaskState state = TaskState::Ready;
      util::Ticks wake_at{};
      std::size_t waiting_queue = 0;
      bool waiting_for_space = false;
      std::uint64_t dispatches = 0;
      std::uint64_t errors = 0;
    };
    std::vector<TaskData> tasks;
    std::vector<MessageQueue::Snapshot> queues;
    std::uint64_t tick_count = 0;
    std::uint64_t dispatches = 0;
    std::size_t rr_cursor = static_cast<std::size_t>(-1);
  };

  void snapshot_to(Snapshot& out) const {
    out.tasks.resize(tasks_.size());
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const Task& task = tasks_[i];
      out.tasks[i] = {task.state,         task.wake_at,    task.waiting_queue,
                      task.waiting_for_space, task.dispatches, task.errors};
    }
    out.queues.resize(queues_.size());
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      queues_[i]->snapshot_to(out.queues[i]);
    }
    out.tick_count = tick_count_;
    out.dispatches = dispatches_;
    out.rr_cursor = rr_cursor_;
  }

  void restore_from(const Snapshot& snapshot) {
    if (tasks_.size() > snapshot.tasks.size()) tasks_.resize(snapshot.tasks.size());
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const Snapshot::TaskData& data = snapshot.tasks[i];
      Task& task = tasks_[i];
      task.state = data.state;
      task.wake_at = data.wake_at;
      task.waiting_queue = data.waiting_queue;
      task.waiting_for_space = data.waiting_for_space;
      task.dispatches = data.dispatches;
      task.errors = data.errors;
    }
    if (queues_.size() > snapshot.queues.size()) queues_.resize(snapshot.queues.size());
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      queues_[i]->restore_from(snapshot.queues[i]);
    }
    tick_count_ = snapshot.tick_count;
    dispatches_ = snapshot.dispatches;
    rr_cursor_ = snapshot.rr_cursor;
  }

 private:
  /// Wake every task blocked on `queue` (space or data became available).
  void wake_queue_waiters(QueueId queue, bool for_space);

  std::vector<Task> tasks_;
  std::vector<std::unique_ptr<MessageQueue>> queues_;
  std::uint64_t tick_count_ = 0;
  std::uint64_t dispatches_ = 0;
  /// Round-robin cursor within equal priority; starts "before task 0" so
  /// the first dispatch is task 0 (unsigned wrap makes cursor+1 == 0).
  std::size_t rr_cursor_ = static_cast<std::size_t>(-1);
};

}  // namespace mcs::guest::rtos
