// Task control block for the mini-RTOS (FreeRTOS-flavoured).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/clock.hpp"

namespace mcs::guest::rtos {

using TaskId = std::size_t;
inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/// FreeRTOS-style task states.
enum class TaskState : std::uint8_t {
  Ready,
  Running,
  BlockedOnDelay,   ///< vTaskDelay(): sleeps until a wake tick
  BlockedOnQueue,   ///< xQueueReceive/Send(): waits for queue space/data
  Suspended,
};

class Kernel;
struct TaskContext;

/// One work unit of a task: called each time the scheduler dispatches it.
/// Tasks structure themselves as repeated short steps (the usual
/// "for(;;){ work; vTaskDelay(); }" body, one lap per call).
using TaskStep = std::function<void(TaskContext&)>;

struct Task {
  std::string name;
  unsigned priority = 1;  ///< higher value = more urgent (FreeRTOS style)
  TaskState state = TaskState::Ready;
  TaskStep step;

  util::Ticks wake_at{};          ///< for BlockedOnDelay
  std::size_t waiting_queue = 0;  ///< for BlockedOnQueue
  bool waiting_for_space = false; ///< blocked sender (vs blocked receiver)

  // -- statistics ---------------------------------------------------------
  std::uint64_t dispatches = 0;   ///< times the scheduler ran this task
  std::uint64_t errors = 0;       ///< self-detected data errors
};

}  // namespace mcs::guest::rtos
