#include "guests/rtos/queue.hpp"

namespace mcs::guest::rtos {

bool MessageQueue::try_send(std::uint32_t item) {
  if (full()) {
    ++send_failures;
    return false;
  }
  items_.push_back(item);
  ++sends;
  return true;
}

std::optional<std::uint32_t> MessageQueue::try_receive() {
  if (items_.empty()) return std::nullopt;
  const std::uint32_t item = items_.front();
  items_.erase(items_.begin());
  ++receives;
  return item;
}

}  // namespace mcs::guest::rtos
