#include "guests/rtos/kernel.hpp"

#include <algorithm>

namespace mcs::guest::rtos {

TaskId Kernel::add_task(std::string name, unsigned priority, TaskStep step) {
  Task task;
  task.name = std::move(name);
  task.priority = priority;
  task.step = std::move(step);
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

void Kernel::delay(TaskId task, std::uint64_t ticks) {
  Task& t = tasks_.at(task);
  t.state = TaskState::BlockedOnDelay;
  t.wake_at = util::Ticks{tick_count_ + ticks};
}

void Kernel::suspend(TaskId task) { tasks_.at(task).state = TaskState::Suspended; }

void Kernel::resume(TaskId task) {
  Task& t = tasks_.at(task);
  if (t.state == TaskState::Suspended) t.state = TaskState::Ready;
}

QueueId Kernel::create_queue(std::size_t capacity) {
  queues_.push_back(std::make_unique<MessageQueue>(capacity));
  return queues_.size() - 1;
}

bool Kernel::queue_send(TaskId task, QueueId queue, std::uint32_t item) {
  MessageQueue& q = *queues_.at(queue);
  if (q.try_send(item)) {
    wake_queue_waiters(queue, /*for_space=*/false);  // data available
    return true;
  }
  Task& t = tasks_.at(task);
  t.state = TaskState::BlockedOnQueue;
  t.waiting_queue = queue;
  t.waiting_for_space = true;
  return false;
}

std::optional<std::uint32_t> Kernel::queue_receive(TaskId task, QueueId queue) {
  MessageQueue& q = *queues_.at(queue);
  if (auto item = q.try_receive()) {
    wake_queue_waiters(queue, /*for_space=*/true);  // space available
    return item;
  }
  Task& t = tasks_.at(task);
  t.state = TaskState::BlockedOnQueue;
  t.waiting_queue = queue;
  t.waiting_for_space = false;
  return std::nullopt;
}

void Kernel::wake_queue_waiters(QueueId queue, bool for_space) {
  for (Task& t : tasks_) {
    if (t.state == TaskState::BlockedOnQueue && t.waiting_queue == queue &&
        t.waiting_for_space == for_space) {
      t.state = TaskState::Ready;
    }
  }
}

void Kernel::on_tick() {
  ++tick_count_;
  for (Task& t : tasks_) {
    if (t.state == TaskState::BlockedOnDelay &&
        t.wake_at.value <= tick_count_) {
      t.state = TaskState::Ready;
    }
  }
}

std::optional<TaskId> Kernel::run_slice(jh::GuestContext& guest) {
  // Highest priority wins; round-robin among equals, starting after the
  // previously dispatched task so equal-priority tasks share fairly.
  unsigned best_priority = 0;
  bool found = false;
  for (const Task& t : tasks_) {
    if (t.state == TaskState::Ready && (!found || t.priority > best_priority)) {
      best_priority = t.priority;
      found = true;
    }
  }
  if (!found) return std::nullopt;

  const std::size_t n = tasks_.size();
  for (std::size_t offset = 1; offset <= n; ++offset) {
    const std::size_t index = (rr_cursor_ + offset) % n;
    Task& t = tasks_[index];
    if (t.state != TaskState::Ready || t.priority != best_priority) continue;
    rr_cursor_ = index;
    t.state = TaskState::Running;
    ++t.dispatches;
    ++dispatches_;
    TaskContext ctx{*this, guest, index};
    t.step(ctx);
    // A step may have blocked/suspended itself; otherwise it yields.
    if (t.state == TaskState::Running) t.state = TaskState::Ready;
    return index;
  }
  return std::nullopt;
}

std::optional<TaskId> Kernel::find_task(std::string_view name) const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name == name) return i;
  }
  return std::nullopt;
}

void Kernel::reset() noexcept {
  tasks_.clear();
  queues_.clear();
  tick_count_ = 0;
  dispatches_ = 0;
  rr_cursor_ = static_cast<std::size_t>(-1);
}

bool Kernel::invariants_hold() const noexcept {
  for (const Task& t : tasks_) {
    if (t.state == TaskState::Running) return false;  // residue between slices
    if (t.state == TaskState::BlockedOnQueue && t.waiting_queue >= queues_.size()) {
      return false;
    }
  }
  return true;
}

}  // namespace mcs::guest::rtos
