// Fixed-capacity message queue with blocking semantics (xQueue-like).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ring_buffer.hpp"

namespace mcs::guest::rtos {

using QueueId = std::size_t;

/// 32-bit item queue; capacity fixed at creation.
class MessageQueue {
 public:
  explicit MessageQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool full() const noexcept { return items_.size() >= capacity_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Non-blocking primitive ops; the kernel layers blocking on top.
  bool try_send(std::uint32_t item);
  std::optional<std::uint32_t> try_receive();

  // -- statistics ---------------------------------------------------------
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t send_failures = 0;  ///< attempted sends while full

 private:
  std::size_t capacity_;
  std::vector<std::uint32_t> items_;
};

}  // namespace mcs::guest::rtos
