// Fixed-capacity message queue with blocking semantics (xQueue-like).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ring_buffer.hpp"

namespace mcs::guest::rtos {

using QueueId = std::size_t;

/// 32-bit item queue; capacity fixed at creation.
class MessageQueue {
 public:
  explicit MessageQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool full() const noexcept { return items_.size() >= capacity_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Non-blocking primitive ops; the kernel layers blocking on top.
  bool try_send(std::uint32_t item);
  std::optional<std::uint32_t> try_receive();

  // -- statistics ---------------------------------------------------------
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t send_failures = 0;  ///< attempted sends while full

  // --- snapshot / restore (testbed warm-start) --------------------------
  struct Snapshot {
    std::vector<std::uint32_t> items;
    std::uint64_t sends = 0;
    std::uint64_t receives = 0;
    std::uint64_t send_failures = 0;
  };

  void snapshot_to(Snapshot& out) const {
    out.items = items_;
    out.sends = sends;
    out.receives = receives;
    out.send_failures = send_failures;
  }

  /// Item storage never exceeds `capacity_` entries, so after a warm run
  /// the vector's capacity covers any captured fill level and the copy
  /// assignment below reuses it without allocating.
  void restore_from(const Snapshot& snapshot) {
    if (items_ != snapshot.items) items_ = snapshot.items;
    sends = snapshot.sends;
    receives = snapshot.receives;
    send_failures = snapshot.send_failures;
  }

 private:
  std::size_t capacity_;
  std::vector<std::uint32_t> items_;
};

}  // namespace mcs::guest::rtos
