#include "guests/freertos_image.hpp"

#include <cmath>

#include "hypervisor/cell.hpp"
#include "hypervisor/hypercall.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/ivshmem.hpp"
#include "platform/board.hpp"

namespace mcs::guest {
namespace {

/// xorshift-style integer hash used by the fifteen integer tasks; chosen
/// so each iteration is cheap and the chain is order-sensitive (a skipped
/// or duplicated iteration is detectable).
std::uint32_t int_chain_step(std::uint32_t h, std::uint32_t salt) noexcept {
  h ^= h << 13;
  h ^= h >> 17;
  h ^= h << 5;
  return h + salt;
}

}  // namespace

std::uint32_t FreeRtosImage::message_checksum(std::uint32_t seq) noexcept {
  // 16-bit payload + 16-bit Fletcher-ish tag, packed into one queue item.
  const std::uint32_t payload = seq & 0xffff;
  std::uint32_t a = 0xf0, b = 0x0d;
  for (unsigned i = 0; i < 16; ++i) {
    a = (a + ((payload >> i) & 1u) + i) % 255;
    b = (b + a) % 255;
  }
  return payload | (((a << 8) | b) << 16);
}

void FreeRtosImage::on_start(jh::GuestContext& ctx) {
  ctx.console_puts("FreeRTOS v10 on Jailhouse cell '" +
                   std::string(ctx.cell().name()) + "'\n");
  ctx.start_periodic_timer(kTickPeriod);
  // Enable the cell's USART interrupt line through the virtualised GIC
  // distributor (a trapped MMIO write, as on real Jailhouse).
  const std::uint32_t uart1_bit = 1u << (platform::kUart1Irq - 32);
  (void)ctx.mmio_write_u32(jh::kGicDistBase + 0x104, uart1_bit);
  if (!spawned_) {
    spawn_workload();
    spawned_ = true;
  }
  ctx.console_puts("scheduler started, " +
                   std::to_string(kernel_.task_count()) + " tasks\n");
}

void FreeRtosImage::spawn_workload() {
  msg_queue_ = kernel_.create_queue(8);

  // 1) LED blink task — priority 3, 500 ms period (visible heartbeat).
  kernel_.add_task("blink", 3, [this](rtos::TaskContext& t) {
    led_on_ = !led_on_;
    t.guest.set_led(led_on_);
    ++blinks_;
    if (blinks_ % 4 == 0) {
      t.guest.console_puts("blink " + std::to_string(blinks_) + "\n");
    }
    t.kernel.delay(t.self, 500);
  });

  // 2) Send/receive pair — priority 4, queue-coupled, checksum-validated.
  kernel_.add_task("tx", 4, [this](rtos::TaskContext& t) {
    const std::uint32_t item = message_checksum(tx_seq_);
    if (t.kernel.queue_send(t.self, msg_queue_, item)) {
      ++tx_seq_;
      t.kernel.delay(t.self, 20);
    }
    // If the queue was full the task is now blocked; retried on wake.
  });
  kernel_.add_task("rx", 4, [this](rtos::TaskContext& t) {
    const auto item = t.kernel.queue_receive(t.self, msg_queue_);
    if (!item.has_value()) return;  // blocked until data arrives
    if (*item == message_checksum(rx_seq_)) {
      ++rx_validated_;
      if (rx_validated_ % 25 == 0) {
        t.guest.console_puts("rx " + std::to_string(rx_validated_) + " ok\n");
      }
    } else {
      ++data_errors_;
      t.guest.console_puts("rx CHECKSUM ERROR at seq " +
                           std::to_string(rx_seq_) + "\n");
    }
    ++rx_seq_;
  });

  // 3) Two floating-point tasks — priority 2, periodically self-check
  //    against an independent recomputation.
  for (int fp = 0; fp < 2; ++fp) {
    kernel_.add_task("fp" + std::to_string(fp), 2,
                     [this, fp](rtos::TaskContext& t) {
      const auto index = static_cast<std::size_t>(fp);
      auto& acc = fp_accumulators_[index];
      auto& shadow = fp_shadows_[index];
      auto& iter = fp_iterations_[index];
      // 32 accumulation steps per lap of a convergent series, applied to
      // the working accumulator and, in reverse association, to a shadow
      // copy. State corruption shows up as divergence between the two.
      double lap = 0.0;
      for (int i = 31; i >= 0; --i) {
        const double k = static_cast<double>(iter * 32 + static_cast<std::uint64_t>(i) + 1);
        lap += (fp == 0 ? 1.0 : -1.0) / (k * k);
      }
      for (int i = 0; i < 32; ++i) {
        const double k = static_cast<double>(iter * 32 + static_cast<std::uint64_t>(i) + 1);
        acc += (fp == 0 ? 1.0 : -1.0) / (k * k);
      }
      shadow += lap;
      ++iter;
      if (iter % 50 == 0) {
        const bool ok = std::abs(shadow - acc) < 1e-9;
        if (!ok) ++data_errors_;
        t.guest.console_puts("fp" + std::to_string(fp) +
                             (ok ? " ok " : " BAD ") + std::to_string(iter) + "\n");
      }
      t.kernel.delay(t.self, 5 + static_cast<std::uint64_t>(fp) * 2);
    });
  }

  // 4) Fifteen integer tasks — priority 1, xorshift hash chains with
  //    staggered periods so their heartbeats interleave. The chain state
  //    lives in guest RAM, stored twice (dual-redundant) and compared on
  //    every lap: a flipped DRAM bit in either copy is caught here.
  for (int n = 0; n < kIntegerTasks; ++n) {
    kernel_.add_task(
        (n < 10 ? "int0" : "int") + std::to_string(n), 1,
        [this, n](rtos::TaskContext& t) {
          const auto index = static_cast<std::size_t>(n);
          const std::uint64_t addr = kStateBase + static_cast<std::uint64_t>(n) * 4;
          const std::uint64_t shadow_addr =
              kShadowBase + static_cast<std::uint64_t>(n) * 4;
          auto primary = t.guest.ram_read_u32(addr);
          auto shadow = t.guest.ram_read_u32(shadow_addr);
          if (!primary.is_ok() || !shadow.is_ok()) {
            ++data_errors_;
            return;
          }
          std::uint32_t hash = primary.value();
          if (hash == 0) {  // first lap: seed both copies
            hash = 0x9e37'79b9u + static_cast<std::uint32_t>(n);
          } else if (hash != shadow.value()) {
            ++data_errors_;
            t.guest.console_puts("int" + std::to_string(n) + " MISMATCH\n");
            // Recover by majority-of-one: rewrite both from the primary.
          }
          for (int i = 0; i < 64; ++i) {
            hash = int_chain_step(hash, static_cast<std::uint32_t>(n));
          }
          (void)t.guest.ram_write_u32(addr, hash);
          (void)t.guest.ram_write_u32(shadow_addr, hash);
          ++int_iterations_[index];
          if (int_iterations_[index] % 40 == 0) {
            t.guest.console_puts("int" + std::to_string(n) + " ok\n");
          }
          t.kernel.delay(t.self, 25 + static_cast<std::uint64_t>(n) * 3);
        });
  }
}

void FreeRtosImage::run_quantum(jh::GuestContext& ctx) {
  // A few scheduler slices per quantum: the Cortex-A7 retires many task
  // steps per millisecond; three keeps the console line rate realistic.
  for (int slice = 0; slice < 3; ++slice) {
    if (!kernel_.run_slice(ctx).has_value()) break;
  }
  ++heartbeat_counter_;
  // Periodic hypervisor heartbeat through the debug console hypercall —
  // the cell's arch_handle_hvc() traffic. Together with the GICD poke
  // below this yields ~120 HYP trap entries per minute on the cell CPU,
  // the traffic level the medium campaign's 1-per-100-calls rate samples.
  if (heartbeat_counter_ % 750 == 0) {
    (void)ctx.hypercall(static_cast<std::uint32_t>(jh::Hypercall::DebugConsolePutc),
                        static_cast<std::uint32_t>('.'));
  }
  // Periodic interrupt-controller maintenance: read back the SPI enable
  // bank through the *virtualised* GIC distributor — a trapped MMIO read
  // (stage-2 data abort, EC 0x24) emulated by the hypervisor.
  if (heartbeat_counter_ % 1500 == 500) {
    (void)ctx.mmio_read_u32(jh::kGicDistBase + 0x104);
  }
}

void FreeRtosImage::on_timer(jh::GuestContext& ctx) {
  (void)ctx;
  kernel_.on_tick();
}

void FreeRtosImage::on_irq(jh::GuestContext& ctx, std::uint32_t irq) {
  (void)ctx;
  if (irq == jh::kIvshmemDoorbellSgi) {
    // ivshmem peer rang: a receiver task would drain the ring here.
    ++doorbells_;
    return;
  }
  // The paper's workload owns no other device interrupts beyond the tick;
  // a delivered unknown vector is counted and ignored (predictable error
  // handling, as §III expects from corrupted IRQ vectors).
  ++unknown_irqs_;
}

}  // namespace mcs::guest
