#include "guests/osek/os.hpp"

namespace mcs::guest::osek {

std::string_view status_name(Status status) noexcept {
  switch (status) {
    case Status::E_OK: return "E_OK";
    case Status::E_OS_ID: return "E_OS_ID";
    case Status::E_OS_LIMIT: return "E_OS_LIMIT";
    case Status::E_OS_STATE: return "E_OS_STATE";
    case Status::E_OS_NOFUNC: return "E_OS_NOFUNC";
  }
  return "?";
}

TaskId Os::declare_task(std::string name, unsigned priority, TaskBody body) {
  Task task;
  task.name = std::move(name);
  task.priority = priority;
  task.body = std::move(body);
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

AlarmId Os::declare_alarm(std::string name, TaskId activates) {
  Alarm alarm;
  alarm.name = std::move(name);
  alarm.activates = activates;
  alarms_.push_back(std::move(alarm));
  return alarms_.size() - 1;
}

Status Os::activate_task(TaskId task) {
  if (task >= tasks_.size()) return Status::E_OS_ID;
  Task& t = tasks_[task];
  if (t.state == TaskState::Suspended) {
    t.state = TaskState::Ready;
    return Status::E_OK;
  }
  // Ready or Running: queue exactly one further activation (BCC1 limit).
  if (t.pending) return Status::E_OS_LIMIT;
  t.pending = true;
  return Status::E_OK;
}

Status Os::chain_task(TaskContext& ctx, TaskId next) {
  if (next >= tasks_.size()) return Status::E_OS_ID;
  if (ctx.self >= tasks_.size() ||
      tasks_[ctx.self].state != TaskState::Running) {
    return Status::E_OS_STATE;
  }
  tasks_[ctx.self].chained = true;
  // Chaining to self is the OSEK idiom for "run me again".
  return activate_task(next);
}

Status Os::set_rel_alarm(AlarmId alarm, std::uint64_t offset,
                         std::uint64_t cycle) {
  if (alarm >= alarms_.size()) return Status::E_OS_ID;
  Alarm& a = alarms_[alarm];
  if (a.armed) return Status::E_OS_STATE;
  a.armed = true;
  a.expires_at = counter_ + (offset == 0 ? 1 : offset);
  a.cycle = cycle;
  return Status::E_OK;
}

Status Os::cancel_alarm(AlarmId alarm) {
  if (alarm >= alarms_.size()) return Status::E_OS_ID;
  if (!alarms_[alarm].armed) return Status::E_OS_NOFUNC;
  alarms_[alarm].armed = false;
  return Status::E_OK;
}

void Os::on_counter_tick() {
  ++counter_;
  for (Alarm& alarm : alarms_) {
    if (!alarm.armed || alarm.expires_at != counter_) continue;
    (void)activate_task(alarm.activates);  // E_OS_LIMIT drops are per spec
    if (alarm.cycle != 0) {
      alarm.expires_at = counter_ + alarm.cycle;
    } else {
      alarm.armed = false;
    }
  }
}

std::optional<TaskId> Os::dispatch() {
  TaskId best = 0;
  bool found = false;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].state != TaskState::Ready) continue;
    if (!found || tasks_[id].priority > tasks_[best].priority) {
      best = id;
      found = true;
    }
  }
  if (!found) return std::nullopt;

  Task& task = tasks_[best];
  task.state = TaskState::Running;
  ++task.activations;
  ++dispatches_;
  TaskContext ctx{*this, best};
  task.body(ctx);
  // TerminateTask semantics: the body ran to completion.
  task.state = TaskState::Suspended;
  task.chained = false;
  if (task.pending) {  // a queued activation becomes ready immediately
    task.pending = false;
    task.state = TaskState::Ready;
  }
  return best;
}

TaskState Os::task_state(TaskId task) const {
  return task < tasks_.size() ? tasks_[task].state : TaskState::Suspended;
}

std::uint64_t Os::activations(TaskId task) const {
  return task < tasks_.size() ? tasks_[task].activations : 0;
}

std::optional<TaskId> Os::find_task(std::string_view name) const {
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].name == name) return id;
  }
  return std::nullopt;
}

void Os::reset() noexcept {
  tasks_.clear();
  alarms_.clear();
  counter_ = 0;
  dispatches_ = 0;
}

void Os::snapshot_to(Snapshot& out) const {
  out.tasks.resize(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const Task& task = tasks_[i];
    out.tasks[i] = {task.state, task.pending, task.activations, task.chained};
  }
  out.alarms.resize(alarms_.size());
  for (std::size_t i = 0; i < alarms_.size(); ++i) {
    const Alarm& alarm = alarms_[i];
    out.alarms[i] = {alarm.armed, alarm.expires_at, alarm.cycle};
  }
  out.counter = counter_;
  out.dispatches = dispatches_;
}

void Os::restore_from(const Snapshot& snapshot) {
  if (tasks_.size() > snapshot.tasks.size()) tasks_.resize(snapshot.tasks.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const Snapshot::TaskData& data = snapshot.tasks[i];
    Task& task = tasks_[i];
    task.state = data.state;
    task.pending = data.pending;
    task.activations = data.activations;
    task.chained = data.chained;
  }
  if (alarms_.size() > snapshot.alarms.size()) alarms_.resize(snapshot.alarms.size());
  for (std::size_t i = 0; i < alarms_.size(); ++i) {
    const Snapshot::AlarmData& data = snapshot.alarms[i];
    Alarm& alarm = alarms_[i];
    alarm.armed = data.armed;
    alarm.expires_at = data.expires_at;
    alarm.cycle = data.cycle;
  }
  counter_ = snapshot.counter;
  dispatches_ = snapshot.dispatches;
}

bool Os::invariants_hold() const noexcept {
  for (const Task& task : tasks_) {
    if (task.state == TaskState::Running) return false;  // between dispatches
    if (task.pending && task.state == TaskState::Suspended) return false;
  }
  return true;
}

}  // namespace mcs::guest::osek
