// Mini OSEK/VDX operating system — the AUTOSAR-classic flavour of the
// automotive stack (§IV: MICROSAR's OS "is based on the AUTOSAR OS
// specification, which is an extension of the OSEK/VDX-OS standard").
//
// Implements the OSEK conformance-class-BCC1 core:
//   * basic tasks: run-to-completion, fixed priority, no blocking;
//   * ActivateTask / TerminateTask / ChainTask;
//   * counters and cyclic alarms (SetRelAlarm → ActivateTask);
//   * E_OS_LIMIT on over-activation (one pending activation per task).
//
// Deliberately distinct from the FreeRTOS-style kernel in guests/rtos:
// OSEK basic tasks cannot block, so the scheduler is a simple fixed-
// priority dispatch of pending activations — which is exactly what makes
// it attractive for ASIL partitions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace mcs::guest::osek {

using TaskId = std::size_t;
using AlarmId = std::size_t;

/// OSEK StatusType subset.
enum class Status : std::uint8_t {
  E_OK = 0,
  E_OS_ID,       ///< invalid object id
  E_OS_LIMIT,    ///< too many activations
  E_OS_STATE,    ///< object in the wrong state
  E_OS_NOFUNC,   ///< alarm not in use
};

[[nodiscard]] std::string_view status_name(Status status) noexcept;

/// OSEK task states (basic tasks: no Waiting state).
enum class TaskState : std::uint8_t { Suspended, Ready, Running };

class Os;

/// What a task body sees.
struct TaskContext {
  Os& os;
  TaskId self;
};

/// Task body: one run-to-completion execution. The body must finish by
/// returning (TerminateTask) or calling ChainTask via the context.
using TaskBody = std::function<void(TaskContext&)>;

class Os {
 public:
  // --- configuration (build time, like an OIL file) ----------------------
  TaskId declare_task(std::string name, unsigned priority, TaskBody body);
  AlarmId declare_alarm(std::string name, TaskId activates);

  // --- OSEK services ------------------------------------------------------
  Status activate_task(TaskId task);
  /// Called from inside a body: finish and activate another task.
  Status chain_task(TaskContext& ctx, TaskId next);
  Status set_rel_alarm(AlarmId alarm, std::uint64_t offset, std::uint64_t cycle);
  Status cancel_alarm(AlarmId alarm);

  // --- kernel ticks --------------------------------------------------------
  /// Counter tick (the OSEK system counter); expires due alarms.
  void on_counter_tick();

  /// Dispatch the highest-priority ready activation to completion.
  /// Returns the task run, or nullopt when idle.
  std::optional<TaskId> dispatch();

  // --- introspection --------------------------------------------------------
  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] TaskState task_state(TaskId task) const;
  [[nodiscard]] std::uint64_t activations(TaskId task) const;
  [[nodiscard]] std::uint64_t dispatches() const noexcept { return dispatches_; }
  [[nodiscard]] std::uint64_t counter() const noexcept { return counter_; }
  [[nodiscard]] std::optional<TaskId> find_task(std::string_view name) const;

  /// OSEK invariants: at most one Running task (none between dispatches),
  /// pending activations ∈ {0, 1} per basic task.
  [[nodiscard]] bool invariants_hold() const noexcept;

  /// Power-on restore: drop every task and alarm, rewind the system
  /// counter. Container capacity is kept for reuse.
  void reset() noexcept;

  // --- snapshot / restore (testbed warm-start) --------------------------
  /// Tasks and alarms are declared only at configuration time
  /// (pre-capture), so the snapshot stores their mutable fields by index;
  /// restore truncates to the captured counts and rewinds in place —
  /// names, priorities and body closures are never copied.
  struct Snapshot {
    struct TaskData {
      TaskState state = TaskState::Suspended;
      bool pending = false;
      std::uint64_t activations = 0;
      bool chained = false;
    };
    struct AlarmData {
      bool armed = false;
      std::uint64_t expires_at = 0;
      std::uint64_t cycle = 0;
    };
    std::vector<TaskData> tasks;
    std::vector<AlarmData> alarms;
    std::uint64_t counter = 0;
    std::uint64_t dispatches = 0;
  };

  void snapshot_to(Snapshot& out) const;
  void restore_from(const Snapshot& snapshot);

 private:
  struct Task {
    std::string name;
    unsigned priority = 1;
    TaskBody body;
    TaskState state = TaskState::Suspended;
    bool pending = false;       ///< one queued activation (BCC1)
    std::uint64_t activations = 0;
    bool chained = false;       ///< ChainTask target of the current body
  };

  struct Alarm {
    std::string name;
    TaskId activates = 0;
    bool armed = false;
    std::uint64_t expires_at = 0;
    std::uint64_t cycle = 0;  ///< 0 = one-shot
  };

  std::vector<Task> tasks_;
  std::vector<Alarm> alarms_;
  std::uint64_t counter_ = 0;
  std::uint64_t dispatches_ = 0;
};

}  // namespace mcs::guest::osek
