// Root-cell model: general-purpose Linux plus the Jailhouse kernel driver
// and its management CLI.
//
// The experiments drive cell lifecycle from here exactly like `jailhouse
// cell create/start/shutdown/destroy` on the real board: commands are
// queued, the driver issues the hypercalls from CPU 0 and records each
// result — including the "Invalid argument" failures §III reports under
// high-intensity injection.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "hypervisor/guest.hpp"
#include "hypervisor/hypercall.hpp"

namespace mcs::guest {

/// One management command (a `jailhouse` CLI invocation).
struct MgmtCommand {
  jh::Hypercall op = jh::Hypercall::CellGetState;
  std::uint32_t arg = 0;  ///< config address for create, cell id otherwise
};

/// Result record the driver keeps (what the shell would have printed).
struct MgmtRecord {
  jh::Hypercall op;
  std::uint32_t arg = 0;
  jh::HvcResult result = 0;
  std::uint64_t tick = 0;
};

class LinuxRootImage final : public jh::GuestImage {
 public:
  LinuxRootImage() = default;

  [[nodiscard]] std::string_view name() const override { return "linux-root"; }
  void on_start(jh::GuestContext& ctx) override;
  void run_quantum(jh::GuestContext& ctx) override;
  void on_timer(jh::GuestContext& ctx) override;

  // --- management interface (the `jailhouse` CLI) ------------------------
  void enqueue(MgmtCommand command) { pending_.push_back(command); }
  void cell_create(std::uint32_t config_addr) {
    enqueue({jh::Hypercall::CellCreate, config_addr});
  }
  void cell_start(std::uint32_t id) { enqueue({jh::Hypercall::CellStart, id}); }
  void cell_shutdown(std::uint32_t id) {
    enqueue({jh::Hypercall::CellShutdown, id});
  }
  void cell_destroy(std::uint32_t id) {
    enqueue({jh::Hypercall::CellDestroy, id});
  }

  [[nodiscard]] const std::vector<MgmtRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }

  /// Last result for an op, or ENOSYS when never issued.
  [[nodiscard]] jh::HvcResult last_result(jh::Hypercall op) const noexcept;

  /// Id returned by the most recent successful cell create (0 = none).
  [[nodiscard]] std::uint32_t last_created_cell() const noexcept {
    return last_created_cell_;
  }

  /// Periodic `jailhouse cell list` polling target (0 disables polling).
  void set_monitored_cell(std::uint32_t id) noexcept { monitored_cell_ = id; }
  [[nodiscard]] jh::HvcResult last_poll_state() const noexcept {
    return last_poll_state_;
  }

  [[nodiscard]] std::uint64_t jiffies() const noexcept { return jiffies_; }

  // --- snapshot / restore (testbed warm-start) --------------------------
  /// The record vector is append-only between resets, so it snapshots as
  /// a length and restores by truncation.
  struct Snapshot {
    std::vector<MgmtCommand> pending;
    std::size_t record_count = 0;
    std::uint32_t last_created_cell = 0;
    std::uint32_t monitored_cell = 0;
    jh::HvcResult last_poll_state = jh::kHvcENoEnt;
    std::uint64_t jiffies = 0;
    std::uint64_t quantum_counter = 0;
  };

  void snapshot_to(Snapshot& out) const {
    out.pending.assign(pending_.begin(), pending_.end());
    out.record_count = records_.size();
    out.last_created_cell = last_created_cell_;
    out.monitored_cell = monitored_cell_;
    out.last_poll_state = last_poll_state_;
    out.jiffies = jiffies_;
    out.quantum_counter = quantum_counter_;
  }

  void restore_from(const Snapshot& snapshot) {
    pending_.clear();  // keeps the deque's blocks: the refill allocates nothing
    for (const MgmtCommand& command : snapshot.pending) pending_.push_back(command);
    if (records_.size() > snapshot.record_count) records_.resize(snapshot.record_count);
    last_created_cell_ = snapshot.last_created_cell;
    monitored_cell_ = snapshot.monitored_cell;
    last_poll_state_ = snapshot.last_poll_state;
    jiffies_ = snapshot.jiffies;
    quantum_counter_ = snapshot.quantum_counter;
  }

  /// Power-on restore: pending commands, management records and driver
  /// bookkeeping back to the freshly constructed state (capacity kept).
  void reset() noexcept {
    pending_.clear();
    records_.clear();
    last_created_cell_ = 0;
    monitored_cell_ = 0;
    last_poll_state_ = jh::kHvcENoEnt;
    jiffies_ = 0;
    quantum_counter_ = 0;
  }

 private:
  std::deque<MgmtCommand> pending_;
  std::vector<MgmtRecord> records_;
  std::uint32_t last_created_cell_ = 0;
  std::uint32_t monitored_cell_ = 0;
  jh::HvcResult last_poll_state_ = jh::kHvcENoEnt;
  std::uint64_t jiffies_ = 0;
  std::uint64_t quantum_counter_ = 0;
};

}  // namespace mcs::guest
