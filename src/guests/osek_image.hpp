// AUTOSAR-classic-style guest image: the OSEK OS running an automotive
// task set (brake-pressure sampling, CAN-ish frame exchange over the cell
// console, and a watchdog-kick task). An alternative non-root payload that
// shows the fault-injection methodology is guest-agnostic — the hypervisor
// entry points, not the guest, define the failure modes.
#pragma once

#include <cstdint>
#include <string>

#include "guests/osek/os.hpp"
#include "hypervisor/guest.hpp"

namespace mcs::guest {

class OsekImage final : public jh::GuestImage {
 public:
  OsekImage() = default;

  [[nodiscard]] std::string_view name() const override { return "autosar-osek"; }
  void on_start(jh::GuestContext& ctx) override;
  void run_quantum(jh::GuestContext& ctx) override;
  void on_timer(jh::GuestContext& ctx) override;
  void on_irq(jh::GuestContext& ctx, std::uint32_t irq) override;

  [[nodiscard]] osek::Os& os() noexcept { return os_; }

  // --- workload health ----------------------------------------------------
  [[nodiscard]] std::uint64_t brake_samples() const noexcept { return samples_; }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t wdg_kicks() const noexcept { return kicks_; }
  [[nodiscard]] std::uint64_t data_errors() const noexcept { return errors_; }
  [[nodiscard]] std::uint64_t doorbells() const noexcept { return doorbells_; }
  [[nodiscard]] std::uint64_t unknown_irqs() const noexcept { return unknown_irqs_; }

  // --- snapshot / restore (testbed warm-start) --------------------------
  struct Snapshot {
    osek::Os::Snapshot os;
    bool configured = false;
    std::uint64_t samples = 0;
    std::uint64_t frames = 0;
    std::uint64_t kicks = 0;
    std::uint64_t errors = 0;
    std::uint64_t doorbells = 0;
    std::uint64_t unknown_irqs = 0;
    std::uint32_t pressure_raw = 0x800;
    std::uint32_t frame_seq = 0;
    bool pending_frame = false;
    std::uint64_t quantum_counter = 0;
  };

  void snapshot_to(Snapshot& out) const {
    os_.snapshot_to(out.os);
    out.configured = configured_;
    out.samples = samples_;
    out.frames = frames_;
    out.kicks = kicks_;
    out.errors = errors_;
    out.doorbells = doorbells_;
    out.unknown_irqs = unknown_irqs_;
    out.pressure_raw = pressure_raw_;
    out.frame_seq = frame_seq_;
    out.pending_frame = pending_frame_;
    out.quantum_counter = quantum_counter_;
  }

  void restore_from(const Snapshot& snapshot) {
    os_.restore_from(snapshot.os);
    configured_ = snapshot.configured;
    samples_ = snapshot.samples;
    frames_ = snapshot.frames;
    kicks_ = snapshot.kicks;
    errors_ = snapshot.errors;
    doorbells_ = snapshot.doorbells;
    unknown_irqs_ = snapshot.unknown_irqs;
    pressure_raw_ = snapshot.pressure_raw;
    frame_seq_ = snapshot.frame_seq;
    pending_frame_ = snapshot.pending_frame;
    quantum_counter_ = snapshot.quantum_counter;
  }

  /// Power-on restore: OS, task set and every workload counter back to
  /// the freshly constructed state; on_start() re-declares the workload.
  void reset() noexcept {
    os_.reset();
    configured_ = false;
    samples_ = 0;
    frames_ = 0;
    kicks_ = 0;
    errors_ = 0;
    doorbells_ = 0;
    unknown_irqs_ = 0;
    pressure_raw_ = 0x800;
    frame_seq_ = 0;
    pending_frame_ = false;
    quantum_counter_ = 0;
  }

 private:
  void declare_workload();

  osek::Os os_;
  bool configured_ = false;

  std::uint64_t samples_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t kicks_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t doorbells_ = 0;
  std::uint64_t unknown_irqs_ = 0;
  std::uint32_t pressure_raw_ = 0x800;  ///< simulated ADC mid-scale
  std::uint32_t frame_seq_ = 0;
  bool pending_frame_ = false;
  std::uint64_t quantum_counter_ = 0;
};

}  // namespace mcs::guest
