#include "guests/linux_root.hpp"

namespace mcs::guest {

void LinuxRootImage::on_start(jh::GuestContext& ctx) {
  // on_start fires once per vCPU (Linux is SMP on the root CPUs); the
  // boot banner belongs to the boot CPU only.
  if (ctx.cpu() == 0) {
    ctx.console_puts("Linux 5.10 (jailhouse-patched) root cell up\n");
  }
  // 100 Hz jiffy tick on every root CPU.
  ctx.start_periodic_timer(10);
}

void LinuxRootImage::on_timer(jh::GuestContext& ctx) {
  ++jiffies_;
  if (jiffies_ % 500 == 0) {
    ctx.console_puts("[root] jiffies " + std::to_string(jiffies_) + "\n");
  }
}

jh::HvcResult LinuxRootImage::last_result(jh::Hypercall op) const noexcept {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->op == op) return it->result;
  }
  return jh::kHvcENoSys;
}

void LinuxRootImage::run_quantum(jh::GuestContext& ctx) {
  // The jailhouse driver's ioctls and the management shell run on the
  // boot CPU; secondary root CPUs just run background load.
  if (ctx.cpu() != 0) return;
  ++quantum_counter_;

  // One management command per quantum: the driver's ioctl path.
  if (!pending_.empty()) {
    const MgmtCommand command = pending_.front();
    pending_.pop_front();
    const jh::HvcResult result =
        ctx.hypercall(static_cast<std::uint32_t>(command.op), command.arg);
    records_.push_back(
        {command.op, command.arg, result, ctx.now().value});
    const std::string verdict =
        result >= 0 ? "ok"
                    : (jh::is_invalid_arguments(result) ? "Invalid argument"
                                                        : "failed");
    ctx.console_puts("jailhouse " + std::string(hypercall_name(command.op)) +
                     " -> " + verdict + " (" + std::to_string(result) + ")\n");
    if (command.op == jh::Hypercall::CellCreate && result > 0) {
      last_created_cell_ = static_cast<std::uint32_t>(result);
    }
    return;
  }

  // Steady-state root workload: poll the monitored cell's state every
  // 50 ms (`jailhouse cell list` in a watch loop) — the root cell's
  // arch_handle_hvc() traffic for root-targeted campaigns.
  if (monitored_cell_ != 0 && quantum_counter_ % 50 == 0) {
    last_poll_state_ = ctx.hypercall(
        static_cast<std::uint32_t>(jh::Hypercall::CellGetState), monitored_cell_);
  }
}

}  // namespace mcs::guest
