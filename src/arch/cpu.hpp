// Functional model of one Cortex-A7 core as managed by a HYP-mode
// hypervisor.
//
// The model is *functional*, not cycle-accurate: guests are C++ code that
// manipulates CPU state through the board scheduler, and the hypervisor
// sees the same entry frames (register snapshots) it would see on hardware.
// That is exactly the surface the paper's fault model attacks — register
// contents at the boundary of `irqchip_handle_irq` / `arch_handle_trap` /
// `arch_handle_hvc` — so nothing finer-grained is needed to reproduce the
// observed failure modes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "arch/cpsr.hpp"
#include "arch/registers.hpp"
#include "arch/syndrome.hpp"
#include "util/status.hpp"

namespace mcs::arch {

/// Power/run state of a core, including the two paper-relevant terminal
/// states: Parked (the hypervisor's cpu_park() — core spins in HYP, guest
/// never runs again) and Failed (never completed hot-plug bring-up).
enum class PowerState : std::uint8_t {
  Off,       ///< powered down, no state retained
  Booting,   ///< CPU_ON accepted, core not yet past its entry gate
  On,        ///< executing guest/root code
  Parked,    ///< cpu_park(): idles in the hypervisor until reset
  Failed,    ///< hot-plug bring-up failed; core wedged outside any cell
};

[[nodiscard]] std::string_view power_state_name(PowerState state) noexcept;

// ---------------------------------------------------------------------------
// Hypervisor firmware layout (top of the Banana Pi's DRAM, reserved at boot
// the way Jailhouse's kernel driver reserves its firmware region). These are
// architectural ground truth for entry-frame validation: the trap handler
// can check a possibly-corrupted register against the value the entry stub
// is guaranteed to have produced.
// ---------------------------------------------------------------------------

inline constexpr Word kHypFirmwareBase = 0x7c00'0000;
inline constexpr Word kHypStackSize = 0x2000;  ///< 8 KiB HYP stack per core

/// Exception-return stub in the hypervisor text; the entry path leaves it
/// in lr so a plain `bx lr` resumes the guest.
inline constexpr Word kReturnTrampoline = kHypFirmwareBase + 0x0010'0040;

/// Address of the common trap handler (what pc holds while it runs).
inline constexpr Word kTrapHandlerPc = kHypFirmwareBase + 0x0010'1000;

/// Per-CPU data blocks; the entry stub keeps the current CPU's block
/// pointer in r12 (the Jailhouse ARM port keeps it in TPIDRPRW and loads
/// it into a scratch register on entry — r12 in this model).
inline constexpr Word kPerCpuBase = kHypFirmwareBase + 0x0002'0000;
inline constexpr Word kPerCpuStride = 0x1000;

[[nodiscard]] constexpr Word percpu_base(int cpu) noexcept {
  return kPerCpuBase + static_cast<Word>(cpu) * kPerCpuStride;
}

/// Snapshot of the architectural registers at a hypervisor entry, plus the
/// semantic bindings the entry path establishes (context pointer in r0,
/// syndrome in r1, ...). This is the object the injector corrupts.
struct EntryFrame {
  RegisterBank bank;   ///< r0-r12, sp, lr, pc *as loaded at handler entry*
  Syndrome hsr;        ///< hardware-captured syndrome (HSR read lands in r1)
  Cpsr guest_cpsr;     ///< SPSR_hyp: interrupted guest CPSR
  Word guest_pc = 0;   ///< ELR_hyp: return address into the guest
  int cpu = 0;
};

/// One core. Owns its register bank, HYP banked state and power FSM.
class Cpu {
 public:
  explicit Cpu(int id) noexcept;

  [[nodiscard]] int id() const noexcept { return id_; }

  [[nodiscard]] RegisterBank& regs() noexcept { return regs_; }
  [[nodiscard]] const RegisterBank& regs() const noexcept { return regs_; }

  [[nodiscard]] Cpsr& cpsr() noexcept { return cpsr_; }
  [[nodiscard]] const Cpsr& cpsr() const noexcept { return cpsr_; }

  // --- HYP-mode banked state -------------------------------------------
  [[nodiscard]] Syndrome hsr() const noexcept { return hsr_; }
  void set_hsr(Syndrome hsr) noexcept { hsr_ = hsr; }
  [[nodiscard]] Word elr_hyp() const noexcept { return elr_hyp_; }
  void set_elr_hyp(Word pc) noexcept { elr_hyp_ = pc; }
  [[nodiscard]] Cpsr spsr_hyp() const noexcept { return spsr_hyp_; }
  void set_spsr_hyp(Cpsr cpsr) noexcept { spsr_hyp_ = cpsr; }

  /// Per-core HYP stack bounds; the trap-context pointer always lies in
  /// this window on an uncorrupted entry, which is what the hypervisor's
  /// sanity check (and our wild-pointer detection) relies on.
  [[nodiscard]] Word hyp_stack_base() const noexcept;
  [[nodiscard]] Word hyp_stack_top() const noexcept;

  /// Exact register values the entry stub produces for this core: the
  /// on-stack trap-context address (r0), the HYP stack pointer (sp) and
  /// the per-CPU block pointer (r12).
  [[nodiscard]] Word expected_trap_context() const noexcept {
    return hyp_stack_top() - 0x40;
  }
  [[nodiscard]] Word expected_hyp_sp() const noexcept {
    return hyp_stack_top() - 0x80;
  }
  [[nodiscard]] Word expected_percpu() const noexcept { return percpu_base(id_); }

  // --- power FSM --------------------------------------------------------
  [[nodiscard]] PowerState power_state() const noexcept { return state_; }
  [[nodiscard]] bool is_online() const noexcept { return state_ == PowerState::On; }
  [[nodiscard]] bool is_parked() const noexcept { return state_ == PowerState::Parked; }

  /// PSCI-style CPU_ON: Off/Failed → Booting at `entry`. EBUSY if running.
  util::Status power_on(Word entry) noexcept;

  /// Complete hot-plug bring-up: Booting → On. The board calls this after
  /// the bring-up latency; a corrupted entry gate makes it fail instead.
  util::Status complete_boot() noexcept;

  /// Mark hot-plug bring-up as failed: Booting → Failed ("the CPU fails to
  /// come online as per the swap feature of the CPU hot plug", §III).
  void fail_boot(std::string reason);

  /// cpu_park(): spin the core in HYP until reset. Terminal for the guest.
  void park(std::string reason);

  /// PSCI-style CPU_OFF / cell destruction: any state → Off, state cleared.
  void power_off() noexcept;

  /// Full power-on reset: registers cleared, SVC mode, state Off,
  /// profiling counters zeroed — a reused core is indistinguishable from
  /// a freshly constructed one.
  void reset() noexcept;

  [[nodiscard]] const std::string& halt_reason() const noexcept { return halt_reason_; }
  [[nodiscard]] Word entry_point() const noexcept { return entry_point_; }

  // --- snapshot / restore (testbed warm-start) --------------------------
  /// Everything run-mutable on a core. Mirrors reset()'s coverage: a
  /// restore_from() of a snapshot taken at state S makes the core
  /// observably identical to when S was captured.
  struct Snapshot {
    RegisterBank regs{};
    Cpsr cpsr{};
    Syndrome hsr{};
    Word elr_hyp = 0;
    Cpsr spsr_hyp{};
    PowerState state = PowerState::Off;
    Word entry_point = 0;
    std::string halt_reason;
    std::uint64_t trap_entries = 0;
    std::uint64_t hvc_entries = 0;
    std::uint64_t irq_entries = 0;
  };

  void snapshot_to(Snapshot& out) const {
    out.regs = regs_;
    out.cpsr = cpsr_;
    out.hsr = hsr_;
    out.elr_hyp = elr_hyp_;
    out.spsr_hyp = spsr_hyp_;
    out.state = state_;
    out.entry_point = entry_point_;
    out.halt_reason = halt_reason_;
    out.trap_entries = trap_entries;
    out.hvc_entries = hvc_entries;
    out.irq_entries = irq_entries;
  }

  void restore_from(const Snapshot& snapshot) {
    regs_ = snapshot.regs;
    cpsr_ = snapshot.cpsr;
    hsr_ = snapshot.hsr;
    elr_hyp_ = snapshot.elr_hyp;
    spsr_hyp_ = snapshot.spsr_hyp;
    state_ = snapshot.state;
    entry_point_ = snapshot.entry_point;
    halt_reason_ = snapshot.halt_reason;
    trap_entries = snapshot.trap_entries;
    hvc_entries = snapshot.hvc_entries;
    irq_entries = snapshot.irq_entries;
  }

  // --- entry frames -----------------------------------------------------
  /// Build the architecturally-correct entry frame for a hypervisor trap
  /// with syndrome `hsr`, hypercall/abort arguments already in r0-r3 of
  /// the *guest* bank. Mirrors the Jailhouse vectors: the entry stub saves
  /// the guest registers, then loads r0 with the trap-context pointer.
  [[nodiscard]] EntryFrame make_trap_frame(Syndrome hsr) const;

  // --- bookkeeping used by profiling (golden runs) ----------------------
  std::uint64_t trap_entries = 0;  ///< arch_handle_trap invocations
  std::uint64_t hvc_entries = 0;   ///< arch_handle_hvc invocations
  std::uint64_t irq_entries = 0;   ///< irqchip_handle_irq invocations

 private:
  int id_;
  RegisterBank regs_{};
  Cpsr cpsr_{};
  Syndrome hsr_{};
  Word elr_hyp_ = 0;
  Cpsr spsr_hyp_{};
  PowerState state_ = PowerState::Off;
  Word entry_point_ = 0;
  std::string halt_reason_;
};

}  // namespace mcs::arch
