// Current Program Status Register model (ARMv7-A).
//
// Only the fields the hypervisor and the fault classifier inspect are
// modelled: processor mode (M[4:0]), the IRQ/FIQ mask bits and the NZCV
// condition flags. Layout matches the architecture so bit flips injected
// into the CPSR corrupt real fields.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bitops.hpp"

namespace mcs::arch {

/// ARMv7 processor modes (CPSR.M values).
enum class Mode : std::uint8_t {
  User = 0b10000,
  Fiq = 0b10001,
  Irq = 0b10010,
  Supervisor = 0b10011,
  Monitor = 0b10110,
  Abort = 0b10111,
  Hyp = 0b11010,   ///< virtualization extensions — where Jailhouse runs
  Undefined = 0b11011,
  System = 0b11111,
};

[[nodiscard]] std::string_view mode_name(Mode mode) noexcept;

/// True iff the 5-bit mode encoding is architecturally defined.
[[nodiscard]] bool is_valid_mode(std::uint8_t bits) noexcept;

/// CPSR value wrapper. Keeps the raw 32-bit word authoritative so injected
/// bit flips hit real encoding bits.
class Cpsr {
 public:
  Cpsr() noexcept = default;
  explicit Cpsr(std::uint32_t raw) noexcept : raw_(raw) {}

  [[nodiscard]] std::uint32_t raw() const noexcept { return raw_; }
  void set_raw(std::uint32_t raw) noexcept { raw_ = raw; }

  [[nodiscard]] std::uint8_t mode_bits() const noexcept {
    return static_cast<std::uint8_t>(util::bits(raw_, 4u, 0u));
  }
  [[nodiscard]] Mode mode() const noexcept { return static_cast<Mode>(mode_bits()); }
  void set_mode(Mode mode) noexcept {
    raw_ = util::deposit_bits(raw_, 4u, 0u,
                              static_cast<std::uint32_t>(mode));
  }

  /// I bit (7): IRQs masked when set.
  [[nodiscard]] bool irq_masked() const noexcept { return util::test_bit(raw_, 7u); }
  void set_irq_masked(bool masked) noexcept {
    raw_ = masked ? util::set_bit(raw_, 7u) : util::clear_bit(raw_, 7u);
  }

  /// F bit (6): FIQs masked when set.
  [[nodiscard]] bool fiq_masked() const noexcept { return util::test_bit(raw_, 6u); }
  void set_fiq_masked(bool masked) noexcept {
    raw_ = masked ? util::set_bit(raw_, 6u) : util::clear_bit(raw_, 6u);
  }

  // NZCV condition flags (31..28).
  [[nodiscard]] bool n() const noexcept { return util::test_bit(raw_, 31u); }
  [[nodiscard]] bool z() const noexcept { return util::test_bit(raw_, 30u); }
  [[nodiscard]] bool c() const noexcept { return util::test_bit(raw_, 29u); }
  [[nodiscard]] bool v() const noexcept { return util::test_bit(raw_, 28u); }

  friend bool operator==(const Cpsr&, const Cpsr&) noexcept = default;

 private:
  std::uint32_t raw_ = static_cast<std::uint32_t>(Mode::Supervisor);
};

}  // namespace mcs::arch
