// ARMv7-A general-purpose register file as seen from HYP mode.
//
// The fault model of the paper flips random bits of random *architecture
// registers* at hypervisor entry, so the register file is the central
// attack surface: r0-r12 general purpose, r13 (SP), r14 (LR), r15 (PC),
// plus the CPSR. Registers are 32-bit, matching the Cortex-A7 target.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace mcs::arch {

using Word = std::uint32_t;

/// Register indices. r13-r15 have architectural roles.
enum class Reg : std::uint8_t {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12,
  SP = 13,   ///< r13 — stack pointer
  LR = 14,   ///< r14 — link register
  PC = 15,   ///< r15 — program counter
};

inline constexpr std::size_t kNumGeneralRegs = 16;
inline constexpr unsigned kWordBits = 32;

[[nodiscard]] std::string_view reg_name(Reg reg) noexcept;

/// Plain register bank: 16 words. No invariant — a struct (C.2).
struct RegisterBank {
  std::array<Word, kNumGeneralRegs> r{};

  [[nodiscard]] Word get(Reg reg) const noexcept {
    return r[static_cast<std::size_t>(reg)];
  }
  void set(Reg reg, Word value) noexcept {
    r[static_cast<std::size_t>(reg)] = value;
  }

  [[nodiscard]] Word& operator[](Reg reg) noexcept {
    return r[static_cast<std::size_t>(reg)];
  }
  [[nodiscard]] Word operator[](Reg reg) const noexcept {
    return r[static_cast<std::size_t>(reg)];
  }
};

inline std::string_view reg_name(Reg reg) noexcept {
  constexpr std::array<std::string_view, kNumGeneralRegs> kNames{
      "r0", "r1", "r2",  "r3",  "r4",  "r5", "r6", "r7",
      "r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc"};
  return kNames[static_cast<std::size_t>(reg)];
}

}  // namespace mcs::arch
