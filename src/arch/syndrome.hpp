// Hyp Syndrome Register (HSR) model — ARMv7 virtualization extensions.
//
// When a guest traps into HYP mode the hardware reports *why* in the HSR:
// bits [31:26] hold the Exception Class (EC), bit 25 the instruction-length
// flag, bits [24:0] the instruction-specific syndrome (ISS).
//
// The paper's "error code 0x24" is the EC for a data abort taken from a
// lower exception level; when Jailhouse's trap dispatcher has no handler
// for the reported class it logs "unhandled trap exception", prints the EC
// and parks the CPU. Our dispatcher reproduces exactly that path, so bit
// flips that land in HSR[31:26] manufacture unknown classes and surface as
// CPU parks, just as §III of the paper observes.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bitops.hpp"

namespace mcs::arch {

/// HSR exception classes (subset the Cortex-A7 can generate; values from
/// the ARMv7-A reference manual, B3.13.6).
enum class ExceptionClass : std::uint8_t {
  Unknown = 0x00,
  Wfx = 0x01,              ///< trapped WFI/WFE
  Cp15Access = 0x03,       ///< trapped CP15 MCR/MRC access
  Cp14Access = 0x05,       ///< trapped CP14 access
  CpAccess = 0x07,         ///< trapped coprocessor access (HCPTR)
  Cp10Access = 0x08,       ///< trapped VMRS / FP access
  Svc = 0x11,              ///< SVC taken to HYP
  Hvc = 0x12,              ///< hypervisor call — arch_handle_hvc target
  Smc = 0x13,              ///< secure monitor call
  PrefetchAbortLower = 0x20,  ///< instruction abort from guest
  PrefetchAbortHyp = 0x21,    ///< instruction abort within HYP itself
  DataAbortLower = 0x24,      ///< data abort from guest — the 0x24 of §III
  DataAbortHyp = 0x25,        ///< data abort within HYP itself
};

inline constexpr unsigned kEcHi = 31;
inline constexpr unsigned kEcLo = 26;
inline constexpr unsigned kIssHi = 24;
inline constexpr unsigned kIssLo = 0;

/// ISS layout for data aborts (subset): bit 24 ISV (syndrome valid),
/// bits [19:16] SRT (register transferred), bit 6 WnR (write-not-read).
inline constexpr unsigned kIssIsvBit = 24;
inline constexpr unsigned kIssWnrBit = 6;

[[nodiscard]] std::string_view exception_class_name(ExceptionClass ec) noexcept;

/// True iff `ec_bits` names a class this CPU model can legitimately report.
[[nodiscard]] bool is_architected_class(std::uint8_t ec_bits) noexcept;

/// HSR value type. The raw word stays authoritative so injected flips land
/// in architecture-defined fields.
class Syndrome {
 public:
  Syndrome() noexcept = default;
  explicit Syndrome(std::uint32_t raw) noexcept : raw_(raw) {}

  static Syndrome make(ExceptionClass ec, std::uint32_t iss) noexcept {
    std::uint32_t raw = 0;
    raw = util::deposit_bits(raw, kEcHi, kEcLo, static_cast<std::uint32_t>(ec));
    raw = util::deposit_bits(raw, kIssHi, kIssLo, iss);
    return Syndrome{raw};
  }

  [[nodiscard]] std::uint32_t raw() const noexcept { return raw_; }
  void set_raw(std::uint32_t raw) noexcept { raw_ = raw; }

  [[nodiscard]] std::uint8_t ec_bits() const noexcept {
    return static_cast<std::uint8_t>(util::bits(raw_, kEcHi, kEcLo));
  }
  [[nodiscard]] ExceptionClass ec() const noexcept {
    return static_cast<ExceptionClass>(ec_bits());
  }
  [[nodiscard]] std::uint32_t iss() const noexcept {
    return util::bits(raw_, kIssHi, kIssLo);
  }

  [[nodiscard]] bool data_abort_syndrome_valid() const noexcept {
    return util::test_bit(raw_, kIssIsvBit);
  }
  [[nodiscard]] bool data_abort_is_write() const noexcept {
    return util::test_bit(raw_, kIssWnrBit);
  }

  friend bool operator==(const Syndrome&, const Syndrome&) noexcept = default;

 private:
  std::uint32_t raw_ = 0;
};

}  // namespace mcs::arch
