#include "arch/syndrome.hpp"

namespace mcs::arch {

std::string_view exception_class_name(ExceptionClass ec) noexcept {
  switch (ec) {
    case ExceptionClass::Unknown: return "unknown";
    case ExceptionClass::Wfx: return "wfi/wfe";
    case ExceptionClass::Cp15Access: return "cp15";
    case ExceptionClass::Cp14Access: return "cp14";
    case ExceptionClass::CpAccess: return "coproc";
    case ExceptionClass::Cp10Access: return "fp/vmrs";
    case ExceptionClass::Svc: return "svc";
    case ExceptionClass::Hvc: return "hvc";
    case ExceptionClass::Smc: return "smc";
    case ExceptionClass::PrefetchAbortLower: return "iabt-lower";
    case ExceptionClass::PrefetchAbortHyp: return "iabt-hyp";
    case ExceptionClass::DataAbortLower: return "dabt-lower";
    case ExceptionClass::DataAbortHyp: return "dabt-hyp";
  }
  return "undefined-class";
}

bool is_architected_class(std::uint8_t ec_bits) noexcept {
  switch (static_cast<ExceptionClass>(ec_bits)) {
    case ExceptionClass::Unknown:
    case ExceptionClass::Wfx:
    case ExceptionClass::Cp15Access:
    case ExceptionClass::Cp14Access:
    case ExceptionClass::CpAccess:
    case ExceptionClass::Cp10Access:
    case ExceptionClass::Svc:
    case ExceptionClass::Hvc:
    case ExceptionClass::Smc:
    case ExceptionClass::PrefetchAbortLower:
    case ExceptionClass::PrefetchAbortHyp:
    case ExceptionClass::DataAbortLower:
    case ExceptionClass::DataAbortHyp:
      return true;
  }
  return false;
}

}  // namespace mcs::arch
