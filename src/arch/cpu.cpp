#include "arch/cpu.hpp"

#include <utility>

namespace mcs::arch {

std::string_view power_state_name(PowerState state) noexcept {
  switch (state) {
    case PowerState::Off: return "off";
    case PowerState::Booting: return "booting";
    case PowerState::On: return "on";
    case PowerState::Parked: return "parked";
    case PowerState::Failed: return "failed";
  }
  return "?";
}

Cpu::Cpu(int id) noexcept : id_(id) {
  cpsr_.set_mode(Mode::Supervisor);
}

Word Cpu::hyp_stack_base() const noexcept {
  return kHypFirmwareBase + static_cast<Word>(id_) * kHypStackSize;
}

Word Cpu::hyp_stack_top() const noexcept {
  return hyp_stack_base() + kHypStackSize;
}

util::Status Cpu::power_on(Word entry) noexcept {
  switch (state_) {
    case PowerState::On:
    case PowerState::Booting:
      return util::busy("cpu already on");
    case PowerState::Parked:
      return util::busy("cpu parked; reset required");
    case PowerState::Off:
    case PowerState::Failed:
      break;
  }
  entry_point_ = entry;
  state_ = PowerState::Booting;
  halt_reason_.clear();
  return util::ok_status();
}

util::Status Cpu::complete_boot() noexcept {
  if (state_ != PowerState::Booting) {
    return util::Status(util::Code::EInval, "cpu not in bring-up");
  }
  state_ = PowerState::On;
  regs_.set(Reg::PC, entry_point_);
  cpsr_.set_mode(Mode::Supervisor);
  return util::ok_status();
}

void Cpu::fail_boot(std::string reason) {
  state_ = PowerState::Failed;
  halt_reason_ = std::move(reason);
}

void Cpu::park(std::string reason) {
  state_ = PowerState::Parked;
  halt_reason_ = std::move(reason);
}

void Cpu::power_off() noexcept {
  state_ = PowerState::Off;
  halt_reason_.clear();
  entry_point_ = 0;
}

void Cpu::reset() noexcept {
  regs_ = RegisterBank{};
  cpsr_ = Cpsr{};
  cpsr_.set_mode(Mode::Supervisor);
  hsr_ = Syndrome{};
  elr_hyp_ = 0;
  spsr_hyp_ = Cpsr{};
  trap_entries = 0;
  hvc_entries = 0;
  irq_entries = 0;
  power_off();
}

EntryFrame Cpu::make_trap_frame(Syndrome hsr) const {
  EntryFrame frame;
  frame.cpu = id_;
  frame.hsr = hsr;
  frame.guest_cpsr = cpsr_;
  frame.guest_pc = regs_.get(Reg::PC);
  frame.bank = regs_;
  // The entry stub materialises the handler's working set: r0 holds the
  // pointer to the on-stack trap context, r1 the HSR value just read,
  // r2-r4 the trap payload (hypercall code/args, or fault address/value —
  // the caller fills them), r12 the per-CPU block pointer, sp the HYP
  // stack pointer, lr the return trampoline, pc the handler itself. The
  // guest return address lives in ELR_hyp (a banked system register), so
  // it is *not* exposed to general-purpose-register bit flips — which is
  // architecturally accurate for HYP-mode entries.
  frame.bank.set(Reg::R0, expected_trap_context());
  frame.bank.set(Reg::R1, hsr.raw());
  frame.bank.set(Reg::R12, expected_percpu());
  frame.bank.set(Reg::SP, expected_hyp_sp());
  frame.bank.set(Reg::LR, kReturnTrampoline);
  frame.bank.set(Reg::PC, kTrapHandlerPc);
  return frame;
}

}  // namespace mcs::arch
