// PSCI (Power State Coordination Interface) constants — the firmware ABI
// the hypervisor uses for CPU hot-plug. Jailhouse hands CPUs between Linux
// and cells through exactly this interface ("the swap feature of the CPU
// hot plug" in §III), so the bring-up failure mode the paper observes is a
// PSCI CPU_ON that never reaches its entry gate.
#pragma once

#include <cstdint>
#include <string_view>

namespace mcs::arch::psci {

/// SMC/HVC function identifiers (PSCI 0.2, 32-bit calling convention).
inline constexpr std::uint32_t kPsciVersion = 0x8400'0000;
inline constexpr std::uint32_t kCpuSuspend = 0x8400'0001;
inline constexpr std::uint32_t kCpuOff = 0x8400'0002;
inline constexpr std::uint32_t kCpuOn = 0x8400'0003;
inline constexpr std::uint32_t kAffinityInfo = 0x8400'0004;
inline constexpr std::uint32_t kSystemOff = 0x8400'0008;
inline constexpr std::uint32_t kSystemReset = 0x8400'0009;

/// PSCI return codes (negative values per the spec).
enum class Result : std::int32_t {
  Success = 0,
  NotSupported = -1,
  InvalidParameters = -2,
  Denied = -3,
  AlreadyOn = -4,
  OnPending = -5,
  InternalFailure = -6,
  NotPresent = -7,
  Disabled = -8,
};

[[nodiscard]] constexpr std::string_view result_name(Result r) noexcept {
  switch (r) {
    case Result::Success: return "SUCCESS";
    case Result::NotSupported: return "NOT_SUPPORTED";
    case Result::InvalidParameters: return "INVALID_PARAMETERS";
    case Result::Denied: return "DENIED";
    case Result::AlreadyOn: return "ALREADY_ON";
    case Result::OnPending: return "ON_PENDING";
    case Result::InternalFailure: return "INTERNAL_FAILURE";
    case Result::NotPresent: return "NOT_PRESENT";
    case Result::Disabled: return "DISABLED";
  }
  return "?";
}

/// AFFINITY_INFO states.
enum class AffinityState : std::int32_t { On = 0, Off = 1, OnPending = 2 };

}  // namespace mcs::arch::psci
