#include "arch/cpsr.hpp"

namespace mcs::arch {

std::string_view mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::User: return "usr";
    case Mode::Fiq: return "fiq";
    case Mode::Irq: return "irq";
    case Mode::Supervisor: return "svc";
    case Mode::Monitor: return "mon";
    case Mode::Abort: return "abt";
    case Mode::Hyp: return "hyp";
    case Mode::Undefined: return "und";
    case Mode::System: return "sys";
  }
  return "invalid";
}

bool is_valid_mode(std::uint8_t bits) noexcept {
  switch (static_cast<Mode>(bits)) {
    case Mode::User:
    case Mode::Fiq:
    case Mode::Irq:
    case Mode::Supervisor:
    case Mode::Monitor:
    case Mode::Abort:
    case Mode::Hyp:
    case Mode::Undefined:
    case Mode::System:
      return true;
  }
  return false;
}

}  // namespace mcs::arch
