// The injector: the paper's "dozen of lines of code added to Jailhouse".
//
// Registers as the hypervisor's entry hook and, for every call of the
// targeted function that passes the CPU filter, counts; every Nth call it
// applies the fault model to the live register frame and records what it
// did. The hypervisor handler then consumes the corrupted frame — outcome
// classes *emerge* from handler semantics, never from the injector.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/cpu.hpp"
#include "core/fault_model.hpp"
#include "core/injection_target.hpp"
#include "core/plan.hpp"
#include "hypervisor/hypervisor.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace mcs::fi {

/// One injection event, as written to the campaign log. `flips` holds
/// the domain-tagged mutations (register flips for the register domain,
/// GIC/device/DRAM records otherwise).
struct InjectionRecord {
  std::uint64_t tick = 0;       ///< board time of the injection
  std::uint64_t call_index = 0; ///< filtered-call counter value
  jh::HookPoint point = jh::HookPoint::ArchHandleTrap;
  int cpu = 0;
  std::vector<FaultRecord> flips;
};

class Injector {
 public:
  /// `clock` must outlive the injector (it stamps records).
  Injector(const TestPlan& plan, std::uint64_t seed, const util::SimClock& clock);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Install as `hv`'s entry hook. The injector must outlive the
  /// hypervisor's use of the hook (detach() or destroy the hv first).
  void attach(jh::Hypervisor& hv);
  void detach(jh::Hypervisor& hv);

  /// The hook body (public so tests can drive it directly).
  void on_entry(jh::HookPoint point, arch::EntryFrame& frame);

  /// Pause/resume injection without losing counters (campaigns disarm
  /// the injector during the observation-only epilogue).
  void set_armed(bool armed) noexcept { armed_ = armed; }
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  // --- statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t filtered_calls() const noexcept { return calls_; }
  [[nodiscard]] std::uint64_t injections() const noexcept {
    return records_.size();
  }
  [[nodiscard]] const std::vector<InjectionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t first_injection_tick() const noexcept {
    return records_.empty() ? 0 : records_.front().tick;
  }

 private:
  TestPlan plan_;
  std::unique_ptr<InjectionTarget> target_;
  util::Xoshiro256 rng_;
  const util::SimClock* clock_;
  /// The machine under attack; set by attach() so non-register domains
  /// can reach the board. Null until attached (register-domain tests
  /// drive on_entry() bare; other domains then inject nothing).
  jh::Hypervisor* hv_ = nullptr;
  bool armed_ = true;
  std::uint64_t calls_ = 0;
  std::vector<InjectionRecord> records_;
};

}  // namespace mcs::fi
