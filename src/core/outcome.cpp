#include "core/outcome.hpp"

namespace mcs::fi {

std::string_view outcome_name(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::Correct: return "correct";
    case Outcome::InvalidArguments: return "invalid-arguments";
    case Outcome::InconsistentCell: return "inconsistent-cell";
    case Outcome::PanicPark: return "panic-park";
    case Outcome::CpuPark: return "cpu-park";
    case Outcome::SilentHang: return "silent-hang";
    case Outcome::HarnessError: return "harness-error";
    case Outcome::CrossCellCorruption: return "cross-cell-corruption";
  }
  return "?";
}

bool outcome_from_name(std::string_view name, Outcome& out) noexcept {
  for (std::size_t i = 0; i < kNumOutcomes; ++i) {
    const auto candidate = static_cast<Outcome>(i);
    if (outcome_name(candidate) == name) {
      out = candidate;
      return true;
    }
  }
  return false;
}

bool is_figure3_bucket(Outcome outcome) noexcept {
  return outcome == Outcome::Correct || outcome == Outcome::PanicPark ||
         outcome == Outcome::CpuPark;
}

bool is_cell_failure(Outcome outcome) noexcept {
  return outcome == Outcome::CpuPark || outcome == Outcome::InconsistentCell ||
         outcome == Outcome::CrossCellCorruption;
}

}  // namespace mcs::fi
