#include "core/outcome.hpp"

namespace mcs::fi {

std::string_view outcome_name(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::Correct: return "correct";
    case Outcome::InvalidArguments: return "invalid-arguments";
    case Outcome::InconsistentCell: return "inconsistent-cell";
    case Outcome::PanicPark: return "panic-park";
    case Outcome::CpuPark: return "cpu-park";
    case Outcome::SilentHang: return "silent-hang";
  }
  return "?";
}

bool is_figure3_bucket(Outcome outcome) noexcept {
  return outcome == Outcome::Correct || outcome == Outcome::PanicPark ||
         outcome == Outcome::CpuPark;
}

}  // namespace mcs::fi
