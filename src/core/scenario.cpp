#include "core/scenario.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "hypervisor/config_text.hpp"

namespace mcs::fi {

util::Status Scenario::setup(Testbed& testbed) const {
  return testbed.enable_hypervisor();
}

void Scenario::observe(Testbed& testbed, const TestPlan& plan) const {
  testbed.run_until(testbed.board().now() + util::Ticks{plan.duration_ticks});
}

TestPlan Scenario::make_plan() const { return make_plan(paper_medium_trap_plan()); }

TestPlan Scenario::make_plan(TestPlan base) const {
  base.scenario = std::string(name());
  apply_plan_defaults(base);
  return base;
}

namespace {

// --- freertos-steady --------------------------------------------------------
// The Figure 3 shape: boot the FreeRTOS cell clean, open the observation
// window, then inject into the steady state.
class FreeRtosSteadyScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "freertos-steady";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "FreeRTOS cell, clean boot, steady-state injection (Fig. 3)";
  }
  void apply_plan_defaults(TestPlan& plan) const override {
    plan.inject_during_boot = false;
  }
  void boot(Testbed& testbed) const override { testbed.boot_freertos_cell(); }
};

// --- inject-during-boot -----------------------------------------------------
// §III high intensity: the injector is live while the root shell creates
// and starts the cell, so the management hypercalls and the CPU hot-plug
// bring-up are in the fault space.
class InjectDuringBootScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "inject-during-boot";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "FreeRTOS cell, injector armed across create/start (§III high)";
  }
  void apply_plan_defaults(TestPlan& plan) const override {
    plan.inject_during_boot = true;
  }
  [[nodiscard]] bool arm_during_boot(const TestPlan&) const override {
    return true;
  }
  void boot(Testbed& testbed) const override { testbed.boot_freertos_cell(); }
};

// --- osek-cell --------------------------------------------------------------
// The AUTOSAR-classic payload in the non-root partition: shows the
// methodology is guest-agnostic — the hypervisor entry points, not the
// guest, define the failure modes.
class OsekCellScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "osek-cell";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "OSEK/AUTOSAR cell on CPU 1 instead of FreeRTOS";
  }
  void boot(Testbed& testbed) const override { testbed.boot_osek_cell(); }
};

// --- dual-cell --------------------------------------------------------------
// Both payloads in one run. The Banana Pi has a single non-root CPU, so
// the two cells time-share it through the management path: FreeRTOS runs
// the first half of the window, then the root shell performs the full
// shutdown → destroy → create → start swap to OSEK — under injection, the
// swap itself is part of the fault space. Classification at window close
// applies to whichever cell the swap left on CPU 1.
class DualCellScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dual-cell";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "FreeRTOS first half, managed mid-window swap to OSEK";
  }
  void boot(Testbed& testbed) const override { testbed.boot_freertos_cell(); }
  void observe(Testbed& testbed, const TestPlan& plan) const override {
    // Window phases are deadline-driven: whatever the swap costs, the
    // window still closes exactly duration_ticks after it opened, so
    // latencies stay comparable across scenarios.
    const util::Ticks window_close =
        testbed.board().now() + util::Ticks{plan.duration_ticks};
    testbed.run(plan.duration_ticks / 2);
    testbed.shutdown_workload_cell();
    testbed.destroy_workload_cell();
    testbed.boot_osek_cell();
    testbed.run_until(window_close);
  }
};

}  // namespace

struct ScenarioRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Scenario>, std::less<>> scenarios;
};

ScenarioRegistry::ScenarioRegistry() : impl_(std::make_shared<Impl>()) {}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    r.add(std::make_unique<FreeRtosSteadyScenario>());
    r.add(std::make_unique<InjectDuringBootScenario>());
    r.add(std::make_unique<OsekCellScenario>());
    r.add(std::make_unique<DualCellScenario>());
    return r;
  }();
  return registry;
}

void ScenarioRegistry::add(std::unique_ptr<Scenario> scenario) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string key(scenario->name());
  impl_->scenarios.insert_or_assign(std::move(key), std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->scenarios.find(name);
  return it == impl_->scenarios.end() ? nullptr : it->second.get();
}

util::Expected<TestPlan> ScenarioRegistry::make(std::string_view name,
                                                const MakeOptions& options) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    return util::invalid_argument("unknown scenario '" + std::string(name) + "'");
  }
  // Validate the tuning up front: a bad knob should fail plan
  // construction, not surface as per-run harness errors later.
  if (!options.cell_tuning.empty()) {
    auto tuning = jh::parse_cell_tuning(options.cell_tuning);
    if (!tuning.is_ok()) {
      return util::invalid_argument("cell tuning: " +
                                    tuning.status().message());
    }
  }
  TestPlan plan = options.base != nullptr ? scenario->make_plan(*options.base)
                                          : scenario->make_plan();
  plan.cell_tuning = options.cell_tuning;
  return plan;
}

std::vector<std::string> ScenarioRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->scenarios.size());
  for (const auto& [key, scenario] : impl_->scenarios) out.push_back(key);
  return out;  // std::map iteration is already sorted
}

std::size_t ScenarioRegistry::size() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->scenarios.size();
}

const Scenario* find_scenario(std::string_view name) {
  return ScenarioRegistry::instance().find(name);
}

}  // namespace mcs::fi
