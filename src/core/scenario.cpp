#include "core/scenario.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "hypervisor/config_text.hpp"
#include "hypervisor/ivshmem.hpp"
#include "platform/board_registry.hpp"

namespace mcs::fi {

util::Status Scenario::setup(Testbed& testbed) const {
  return testbed.enable_hypervisor();
}

void Scenario::observe(Testbed& testbed, const TestPlan& plan) const {
  testbed.run_until(testbed.board().now() + util::Ticks{plan.duration_ticks});
}

TestPlan Scenario::make_plan() const { return make_plan(paper_medium_trap_plan()); }

TestPlan Scenario::make_plan(TestPlan base) const {
  base.scenario = std::string(name());
  apply_plan_defaults(base);
  return base;
}

namespace {

// --- freertos-steady --------------------------------------------------------
// The Figure 3 shape: boot the FreeRTOS cell clean, open the observation
// window, then inject into the steady state.
class FreeRtosSteadyScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "freertos-steady";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "FreeRTOS cell, clean boot, steady-state injection (Fig. 3)";
  }
  void apply_plan_defaults(TestPlan& plan) const override {
    plan.inject_during_boot = false;
  }
  void boot(Testbed& testbed) const override { testbed.boot_freertos_cell(); }
};

// --- inject-during-boot -----------------------------------------------------
// §III high intensity: the injector is live while the root shell creates
// and starts the cell, so the management hypercalls and the CPU hot-plug
// bring-up are in the fault space.
class InjectDuringBootScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "inject-during-boot";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "FreeRTOS cell, injector armed across create/start (§III high)";
  }
  void apply_plan_defaults(TestPlan& plan) const override {
    plan.inject_during_boot = true;
  }
  [[nodiscard]] bool arm_during_boot(const TestPlan&) const override {
    return true;
  }
  void boot(Testbed& testbed) const override { testbed.boot_freertos_cell(); }
};

// --- osek-cell --------------------------------------------------------------
// The AUTOSAR-classic payload in the non-root partition: shows the
// methodology is guest-agnostic — the hypervisor entry points, not the
// guest, define the failure modes.
class OsekCellScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "osek-cell";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "OSEK/AUTOSAR cell on CPU 1 instead of FreeRTOS";
  }
  void boot(Testbed& testbed) const override { testbed.boot_osek_cell(); }
};

// --- dual-cell --------------------------------------------------------------
// Both payloads in one run. On the paper's Banana Pi there is a single
// non-root CPU, so the two cells time-share it through the management
// path: FreeRTOS runs the first half of the window, then the root shell
// performs the full shutdown → destroy → create → start swap to OSEK —
// under injection, the swap itself is part of the fault space. On boards
// with spare cores (quad-a7) both cells are booted up front and stay
// *resident on dedicated cores simultaneously* for the whole window: the
// partitioning-hypervisor deployment the paper's isolation claims are
// about, with no swap in the fault space.
class DualCellScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dual-cell";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "FreeRTOS + OSEK: concurrent when the board has a spare core, else managed mid-window swap";
  }
  void boot(Testbed& testbed) const override {
    testbed.boot_freertos_cell();
    if (testbed.supports_concurrent_cells()) testbed.boot_secondary_osek_cell();
  }
  void observe(Testbed& testbed, const TestPlan& plan) const override {
    if (testbed.supports_concurrent_cells()) {
      // True concurrency: both cells already resident, one flat window.
      Scenario::observe(testbed, plan);
      return;
    }
    // Window phases are deadline-driven: whatever the swap costs, the
    // window still closes exactly duration_ticks after it opened, so
    // latencies stay comparable across scenarios.
    const util::Ticks window_close =
        testbed.board().now() + util::Ticks{plan.duration_ticks};
    testbed.run(plan.duration_ticks / 2);
    testbed.shutdown_workload_cell();
    testbed.destroy_workload_cell();
    testbed.boot_osek_cell();
    testbed.run_until(window_close);
  }
};

// --- ivshmem-traffic --------------------------------------------------------
// The inter-cell communication scenario: two concurrent non-root cells
// exchange request/echo messages over the ivshmem shared window — SPSC
// rings through each cell's stage-2-checked address space, doorbell SGIs
// to wake the peer — while faults land in the hypervisor. The doorbell
// path runs through irqchip_handle_irq, so a corrupted vector loses the
// wake-up; the monitor classifies disrupted traffic (stale/mismatched
// payloads, lost doorbells, ring faults) as cross-cell-corruption, the
// isolation-threat bucket single-cell observables cannot see.
class IvshmemTrafficScenario final : public Scenario {
 public:
  /// One request/echo exchange per slice; the window is sliced so traffic
  /// is spread across the whole observation period.
  static constexpr std::uint64_t kSliceTicks = 500;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ivshmem-traffic";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "two concurrent cells exchanging ivshmem doorbell+ring traffic (quad-a7)";
  }
  void apply_plan_defaults(TestPlan& plan) const override {
    plan.board = "quad-a7";  // needs spare cores; tuning may override
    plan.inject_during_boot = false;
    // The doorbell fault space: irqchip_handle_irq on whichever CPU
    // acknowledges. The model's full register surface stays in play —
    // only r0 (the vector) is live at this entry, so which injections
    // actually lose a wake-up varies run to run, like the paper's
    // register-liveness findings.
    plan.target = jh::HookPoint::IrqchipHandleIrq;
    plan.fault_registers.clear();
    plan.cpu_filter = -1;
  }
  [[nodiscard]] util::Status setup(Testbed& testbed) const override {
    if (!testbed.supports_concurrent_cells()) {
      return util::invalid_argument(
          "ivshmem-traffic needs a board with two spare cores (try 'board "
          "quad-a7')");
    }
    testbed.set_ivshmem(true);
    return testbed.enable_hypervisor();
  }
  void boot(Testbed& testbed) const override {
    testbed.boot_freertos_cell();
    testbed.boot_secondary_osek_cell();
    // Producer-side ring formatting, one ring per direction. A failure
    // here (cell never allocated, window unmapped) is counted as a
    // protocol error and surfaces at classification.
    jh::Cell* a = testbed.workload_cell();
    jh::Cell* b = testbed.secondary_cell();
    IvshmemTrafficStats& stats = testbed.ivshmem_stats();
    if (a == nullptr || b == nullptr) {
      ++stats.protocol_errors;
      return;
    }
    jh::IvshmemChannel a_to_b(a->address_space(), jh::kIvshmemRingAToB,
                              jh::kIvshmemRingCapacity);
    jh::IvshmemChannel b_to_a(b->address_space(), jh::kIvshmemRingBToA,
                              jh::kIvshmemRingCapacity);
    if (!a_to_b.init().is_ok()) ++stats.protocol_errors;
    if (!b_to_a.init().is_ok()) ++stats.protocol_errors;
  }
  void observe(Testbed& testbed, const TestPlan& plan) const override {
    const util::Ticks window_close =
        testbed.board().now() + util::Ticks{plan.duration_ticks};
    jh::Cell* a = testbed.workload_cell();
    jh::Cell* b = testbed.secondary_cell();
    if (a == nullptr || b == nullptr) {
      // Nothing to exchange; run the window out so classification sees
      // the same deadline every scenario promises.
      testbed.run_until(window_close);
      return;
    }

    const int cpu_a = Testbed::kFreeRtosCpu;
    const int cpu_b = testbed.osek_cpu();
    jh::IvshmemChannel a_tx(a->address_space(), jh::kIvshmemRingAToB,
                            jh::kIvshmemRingCapacity);
    jh::IvshmemChannel b_rx(b->address_space(), jh::kIvshmemRingAToB,
                            jh::kIvshmemRingCapacity);
    jh::IvshmemChannel b_tx(b->address_space(), jh::kIvshmemRingBToA,
                            jh::kIvshmemRingCapacity);
    jh::IvshmemChannel a_rx(a->address_space(), jh::kIvshmemRingBToA,
                            jh::kIvshmemRingCapacity);
    IvshmemTrafficStats& stats = testbed.ivshmem_stats();
    irq::Gic& gic = testbed.board().gic();

    std::uint32_t seq = 0;
    while (testbed.board().now() + util::Ticks{kSliceTicks} <= window_close) {
      ++seq;
      // Stagger each exchange inside its slice (deterministically, by
      // sequence number) so the doorbell acknowledgements sweep across
      // the injector's every-Nth-call grid instead of phase-locking with
      // it — real traffic is not synchronous with the fault process.
      const std::uint64_t stagger = (seq * 37) % (kSliceTicks / 4);
      testbed.run(stagger);
      // A → B: request, doorbell, the rest of the half-slice to deliver.
      const std::string ping = "ping " + std::to_string(seq);
      const std::uint64_t b_bells = testbed.osek().doorbells();
      if (a_tx.send_text(ping).is_ok()) {
        ++stats.sent;
        (void)a_tx.ring_doorbell(gic, cpu_a, cpu_b);
      } else {
        ++stats.send_failures;
      }
      testbed.run(kSliceTicks / 2 - stagger);

      // B drains only when its doorbell actually arrived — a corrupted
      // vector in irqchip_handle_irq silently loses the wake-up, and the
      // next drained message is stale (payload mismatch).
      bool echoed = false;
      std::string pong;
      std::uint64_t a_bells = 0;
      if (testbed.osek().doorbells() == b_bells) {
        ++stats.lost_doorbells;
      } else {
        auto got = b_rx.receive_text();
        if (!got.is_ok()) {
          ++stats.protocol_errors;
        } else if (got.value() != ping) {
          ++stats.corrupted;
        } else {
          ++stats.received;
          // B → A: echo, doorbell back.
          pong = "pong " + std::to_string(seq);
          a_bells = testbed.freertos().doorbells();
          if (b_tx.send_text(pong).is_ok()) {
            ++stats.sent;
            (void)b_tx.ring_doorbell(gic, cpu_b, cpu_a);
            echoed = true;
          } else {
            ++stats.send_failures;
          }
        }
      }
      testbed.run(kSliceTicks / 2);

      if (echoed) {
        if (testbed.freertos().doorbells() == a_bells) {
          ++stats.lost_doorbells;
        } else {
          auto got = a_rx.receive_text();
          if (!got.is_ok()) {
            ++stats.protocol_errors;
          } else if (got.value() != pong) {
            ++stats.corrupted;
          } else {
            ++stats.received;
          }
        }
      }
    }
    testbed.run_until(window_close);
  }
};

}  // namespace

struct ScenarioRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Scenario>, std::less<>> scenarios;
};

ScenarioRegistry::ScenarioRegistry() : impl_(std::make_shared<Impl>()) {}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    r.add(std::make_unique<FreeRtosSteadyScenario>());
    r.add(std::make_unique<InjectDuringBootScenario>());
    r.add(std::make_unique<OsekCellScenario>());
    r.add(std::make_unique<DualCellScenario>());
    r.add(std::make_unique<IvshmemTrafficScenario>());
    return r;
  }();
  return registry;
}

void ScenarioRegistry::add(std::unique_ptr<Scenario> scenario) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string key(scenario->name());
  impl_->scenarios.insert_or_assign(std::move(key), std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->scenarios.find(name);
  return it == impl_->scenarios.end() ? nullptr : it->second.get();
}

util::Expected<TestPlan> ScenarioRegistry::make(std::string_view name,
                                                const MakeOptions& options) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    return util::invalid_argument("unknown scenario '" + std::string(name) + "'");
  }
  // Validate the tuning up front: a bad knob should fail plan
  // construction, not surface as per-run harness errors later.
  std::string tuned_board;
  std::string tuned_domain;
  FaultDomain tuned_domain_value = FaultDomain::Register;
  if (!options.cell_tuning.empty()) {
    auto tuning = jh::parse_cell_tuning(options.cell_tuning);
    if (!tuning.is_ok()) {
      return util::invalid_argument("cell tuning: " +
                                    tuning.status().message());
    }
    tuned_board = tuning.value().board;
    if (!tuned_board.empty() &&
        platform::find_board_spec(tuned_board) == nullptr) {
      return util::invalid_argument("unknown board '" + tuned_board + "'");
    }
    tuned_domain = tuning.value().fault_domain;
    if (!tuned_domain.empty() &&
        !fault_domain_from_name(tuned_domain, tuned_domain_value)) {
      return util::invalid_argument("unknown fault domain '" + tuned_domain +
                                    "'");
    }
  }
  TestPlan plan = options.base != nullptr ? scenario->make_plan(*options.base)
                                          : scenario->make_plan();
  plan.cell_tuning = options.cell_tuning;
  // The tuning's board and fault-domain keys override the scenario/base
  // defaults.
  if (!tuned_board.empty()) plan.board = tuned_board;
  if (!tuned_domain.empty()) plan.fault_domain = tuned_domain_value;
  return plan;
}

std::vector<std::string> ScenarioRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->scenarios.size());
  for (const auto& [key, scenario] : impl_->scenarios) out.push_back(key);
  return out;  // std::map iteration is already sorted
}

std::size_t ScenarioRegistry::size() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->scenarios.size();
}

const Scenario* find_scenario(std::string_view name) {
  return ScenarioRegistry::instance().find(name);
}

}  // namespace mcs::fi
