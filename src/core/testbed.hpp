// Testbed: the paper's hardware/software setup in one object.
//
// "The tested hardware comprises a Banana PI [...]. We evaluated Jailhouse
// v0.12 with Linux Kernel v5.10 [...]. The test plan was executed by
// exercising a workload consisting of a root cell where the general-
// purpose Linux was running and a non-root cell in which we run FreeRTOS
// [...]. We statically assigned the board CPU core 0 to the root cell and
// the CPU core 1 to the non-root cell."
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "guests/freertos_image.hpp"
#include "guests/linux_root.hpp"
#include "guests/osek_image.hpp"
#include "hypervisor/config_text.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/machine.hpp"
#include "platform/board.hpp"
#include "util/status.hpp"

namespace mcs::fi {

/// Where the root driver "copies" the non-root cell configs (addresses in
/// root RAM passed to the create hypercall).
inline constexpr std::uint64_t kFreeRtosConfigAddr = 0x4800'0000;
inline constexpr std::uint64_t kOsekConfigAddr = 0x4810'0000;

class Testbed {
 public:
  Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Enable the hypervisor with the root cell and bind the Linux image.
  /// Idempotent per instance; returns an error status on config problems.
  util::Status enable_hypervisor();

  /// Workload-cell tuning (RAM size, console kind) applied to the staged
  /// non-root cell configs. Must be set before enable_hypervisor().
  void set_cell_tuning(const jh::CellTuning& tuning) { tuning_ = tuning; }

  /// Time-advance policy for the underlying machine; TickPolicy::PerTick
  /// forces the legacy polling loop (golden-equivalence comparisons).
  void set_tick_policy(jh::TickPolicy policy) noexcept {
    machine_.set_tick_policy(policy);
  }

  /// Drive the root driver through `jailhouse cell create && cell start`
  /// for the cell whose config was registered at `config_addr`, bind
  /// `image` to it, and wait for the bring-up to settle (or fail — under
  /// injection every failure mode of §III can surface here, which is the
  /// point; the caller classifies afterwards). The booted cell becomes the
  /// monitored workload cell.
  void boot_cell(std::uint64_t config_addr, jh::GuestImage& image);

  /// The paper's two non-root payloads, both on CPU 1 (one at a time).
  void boot_freertos_cell() { boot_cell(kFreeRtosConfigAddr, freertos_); }
  void boot_osek_cell() { boot_cell(kOsekConfigAddr, osek_); }

  /// Management operations from the root shell, post-boot, against the
  /// current workload cell.
  void shutdown_workload_cell();
  void destroy_workload_cell();

  // Legacy names from the single-scenario harness; same cell.
  void shutdown_freertos_cell() { shutdown_workload_cell(); }
  void destroy_freertos_cell() { destroy_workload_cell(); }

  /// Run the whole machine for `ticks` board ticks.
  void run(std::uint64_t ticks);

  /// Run the whole machine up to the absolute board tick `target` — the
  /// deadline-driven window primitive (no-op when already past it).
  void run_until(util::Ticks target);

  /// Golden-run profiling (§III): run fault-free and report how often
  /// each candidate hypervisor function was entered.
  struct GoldenProfile {
    std::uint64_t irqchip_entries = 0;
    std::uint64_t trap_entries = 0;
    std::uint64_t hvc_entries = 0;
    std::uint64_t per_cpu_traps[2] = {0, 0};
  };
  GoldenProfile profile_golden(std::uint64_t ticks);

  // --- accessors ----------------------------------------------------------
  [[nodiscard]] platform::BananaPiBoard& board() noexcept { return board_; }
  [[nodiscard]] jh::Hypervisor& hypervisor() noexcept { return hv_; }
  [[nodiscard]] jh::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] guest::LinuxRootImage& linux_root() noexcept { return linux_; }
  [[nodiscard]] guest::FreeRtosImage& freertos() noexcept { return freertos_; }
  [[nodiscard]] guest::OsekImage& osek() noexcept { return osek_; }

  /// Cell id of the current workload (non-root) cell — 0 while none has
  /// been created. Scenarios that swap payloads retarget this on re-boot.
  [[nodiscard]] jh::CellId workload_cell_id() const noexcept { return cell_id_; }
  [[nodiscard]] jh::Cell* workload_cell() noexcept {
    return cell_id_ == 0 ? nullptr : hv_.find_cell(cell_id_);
  }

  // Legacy names; the FreeRTOS cell is the default workload.
  [[nodiscard]] jh::CellId freertos_cell_id() const noexcept { return cell_id_; }
  [[nodiscard]] jh::Cell* freertos_cell() noexcept { return workload_cell(); }

  /// The CPU statically assigned to the non-root cell.
  static constexpr int kFreeRtosCpu = 1;
  static constexpr int kRootCpu = 0;

 private:
  platform::BananaPiBoard board_;
  jh::Hypervisor hv_;
  jh::Machine machine_;
  guest::LinuxRootImage linux_;
  guest::FreeRtosImage freertos_;
  guest::OsekImage osek_;
  jh::CellId cell_id_ = 0;
  bool enabled_ = false;
  jh::CellTuning tuning_;
};

}  // namespace mcs::fi
