// Testbed: the paper's hardware/software setup in one object.
//
// "The tested hardware comprises a Banana PI [...]. We evaluated Jailhouse
// v0.12 with Linux Kernel v5.10 [...]. The test plan was executed by
// exercising a workload consisting of a root cell where the general-
// purpose Linux was running and a non-root cell in which we run FreeRTOS
// [...]. We statically assigned the board CPU core 0 to the root cell and
// the CPU core 1 to the non-root cell."
//
// The board itself is pluggable: by default the paper's Banana Pi, but any
// platform::Board (e.g. the 4-CPU quad-a7 variant) can be injected, in
// which case a *secondary* non-root cell can run concurrently on its own
// core and the two cells can exchange ivshmem traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "guests/freertos_image.hpp"
#include "guests/linux_root.hpp"
#include "guests/osek_image.hpp"
#include "hypervisor/config_text.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/machine.hpp"
#include "platform/board.hpp"
#include "util/arena.hpp"
#include "util/status.hpp"

namespace mcs::fi {

/// Where the root driver "copies" the non-root cell configs (addresses in
/// root RAM passed to the create hypercall).
inline constexpr std::uint64_t kFreeRtosConfigAddr = 0x4800'0000;
inline constexpr std::uint64_t kOsekConfigAddr = 0x4810'0000;

/// Harness-side counters for the ivshmem cross-cell-traffic protocol
/// (filled by the ivshmem-traffic scenario, classified by the monitor).
struct IvshmemTrafficStats {
  std::uint64_t sent = 0;             ///< messages queued on either ring
  std::uint64_t received = 0;         ///< messages popped and validated OK
  std::uint64_t corrupted = 0;        ///< payload mismatch on receive
  std::uint64_t protocol_errors = 0;  ///< ring faults (corrupt length, EBUSY…)
  std::uint64_t lost_doorbells = 0;   ///< doorbell rung but never delivered
  std::uint64_t send_failures = 0;    ///< ring full / unmapped on send

  [[nodiscard]] bool traffic_disrupted() const noexcept {
    return corrupted + protocol_errors + lost_doorbells + send_failures > 0;
  }
};

/// Everything a run can mutate, captured once after a slot's first boot
/// for a given (scenario, board, tuning, tick-policy) identity key and
/// bulk-copied back by Testbed::restore_snapshot() instead of a full
/// reset() + re-boot. Page payloads live in the testbed's run arena
/// *below* `arena_mark`; per-run scratch is placed above the mark, and
/// restore rewinds to it — so the snapshot survives any number of runs
/// while run-scoped allocations are reclaimed.
struct TestbedSnapshot {
  platform::Board::Snapshot board;
  jh::Hypervisor::Snapshot hv;
  jh::Machine::Snapshot machine;
  guest::LinuxRootImage::Snapshot linux_root;
  guest::FreeRtosImage::Snapshot freertos;
  guest::OsekImage::Snapshot osek;

  // Testbed bookkeeping.
  jh::CellId cell_id = 0;
  jh::CellId secondary_cell_id = 0;
  bool enabled = false;
  bool ivshmem = false;
  jh::CellTuning tuning;
  IvshmemTrafficStats ivshmem_stats;

  util::Arena::Mark arena_mark{};  ///< run-arena fill level owned by the snapshot
  std::string key;                 ///< identity: scenario\x1fboard\x1ftuning\x1fpolicy
  std::size_t bytes = 0;           ///< captured DRAM payload bytes (dirty pages)
};

class Testbed {
 public:
  /// The paper's default testbed (Banana Pi board).
  Testbed();

  /// Testbed on an injected board variant (from the BoardRegistry). A
  /// null board falls back to the default Banana Pi.
  explicit Testbed(std::unique_ptr<platform::Board> board);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Power-on restore of the whole testbed without tearing it down: the
  /// board (clock, CPUs, devices, DRAM contents, event log), the
  /// hypervisor (cells, configs, counters, hook), the machine (bindings,
  /// start flags, watchdog, tick policy), all three guest images, and the
  /// testbed's own cell/tuning/ivshmem bookkeeping. After reset() the
  /// testbed behaves bit-identically to a freshly constructed one on the
  /// same board variant — the contract that lets fi::TestbedPool reuse a
  /// (board, testbed) slot across campaign runs. Nothing is heap-
  /// allocated on this path (asserted by the pool's zero-allocation
  /// test); run-scoped arena storage is rewound, not freed.
  void reset();

  /// Run-scoped scratch arena: rewound by reset(), so anything placed
  /// here lives exactly one run. Used for per-run analysis buffers
  /// (golden-profile scratch); scenarios may use it the same way. Never
  /// hand arena pointers to anything that outlives the run. While a
  /// snapshot is held, its page payloads occupy the arena base and
  /// restore_snapshot() rewinds only the scratch above them.
  [[nodiscard]] util::Arena& run_arena() noexcept { return run_arena_; }

  // --- snapshot warm-start ------------------------------------------------
  /// Capture the whole post-boot testbed state under `key`. Rewinds the
  /// run arena first (the snapshot owns its base), so call only at a
  /// run boundary — right after a scenario's setup + boot. Replaces any
  /// previous snapshot.
  void capture_snapshot(const std::string& key);

  /// True iff a snapshot captured under exactly `key` is held.
  [[nodiscard]] bool has_snapshot(const std::string& key) const noexcept {
    return snapshot_valid_ && snapshot_.key == key;
  }

  /// Rewind the testbed to the held snapshot by bulk copy: run arena back
  /// to the snapshot mark, then board/hypervisor/machine/guest state
  /// restored in place. Returns false (and does nothing) when no snapshot
  /// is held. Heap-allocation-free on the steady executor path (pinned by
  /// the pool's zero-allocation test).
  bool restore_snapshot();

  /// Direct restore from a caller-held snapshot captured on *this*
  /// testbed (the layer contracts restore in place; snapshots are not
  /// portable across instances).
  void restore(const TestbedSnapshot& snapshot);

  [[nodiscard]] const TestbedSnapshot& snapshot() const noexcept { return snapshot_; }
  [[nodiscard]] std::size_t snapshot_bytes() const noexcept {
    return snapshot_valid_ ? snapshot_.bytes : 0;
  }

  /// Enable the hypervisor with the root cell and bind the Linux image.
  /// Idempotent per instance; returns an error status on config problems.
  util::Status enable_hypervisor();

  /// Workload-cell tuning (RAM size, console kind) applied to the staged
  /// non-root cell configs. Must be set before enable_hypervisor().
  void set_cell_tuning(const jh::CellTuning& tuning) { tuning_ = tuning; }

  /// Stage the ivshmem shared window in both non-root cell configs so two
  /// concurrent cells can exchange doorbell + shared-memory traffic. Must
  /// be set before enable_hypervisor().
  void set_ivshmem(bool enabled) noexcept { ivshmem_ = enabled; }
  [[nodiscard]] bool ivshmem_enabled() const noexcept { return ivshmem_; }

  /// Time-advance policy for the underlying machine; TickPolicy::PerTick
  /// forces the legacy polling loop (golden-equivalence comparisons).
  void set_tick_policy(jh::TickPolicy policy) noexcept {
    machine_.set_tick_policy(policy);
  }

  /// Drive the root driver through `jailhouse cell create && cell start`
  /// for the cell whose config was registered at `config_addr`, bind
  /// `image` to it, and wait for the bring-up to settle (or fail — under
  /// injection every failure mode of §III can surface here, which is the
  /// point; the caller classifies afterwards). The booted cell becomes the
  /// monitored workload cell.
  void boot_cell(std::uint64_t config_addr, jh::GuestImage& image);

  /// The paper's two non-root payloads (one at a time on the Banana Pi;
  /// concurrently on boards with spare cores).
  void boot_freertos_cell() { boot_cell(kFreeRtosConfigAddr, freertos_); }
  void boot_osek_cell() { boot_cell(kOsekConfigAddr, osek_); }

  /// Boot the OSEK cell as a *secondary* cell alongside the monitored
  /// workload cell — its own core, the monitored cell untouched. Only
  /// meaningful on boards with ≥ 2 spare CPUs (osek_cpu() != the
  /// FreeRTOS CPU); the dual-cell and ivshmem-traffic scenarios use it
  /// for true concurrency instead of the time-shared swap.
  void boot_secondary_osek_cell();

  /// Management operations from the root shell, post-boot, against the
  /// current workload cell.
  void shutdown_workload_cell();
  void destroy_workload_cell();

  // Legacy names from the single-scenario harness; same cell.
  void shutdown_freertos_cell() { shutdown_workload_cell(); }
  void destroy_freertos_cell() { destroy_workload_cell(); }

  /// Run the whole machine for `ticks` board ticks.
  void run(std::uint64_t ticks);

  /// Run the whole machine up to the absolute board tick `target` — the
  /// deadline-driven window primitive (no-op when already past it).
  void run_until(util::Ticks target);

  /// Golden-run profiling (§III): run fault-free and report how often
  /// each candidate hypervisor function was entered.
  struct GoldenProfile {
    std::uint64_t irqchip_entries = 0;
    std::uint64_t trap_entries = 0;
    std::uint64_t hvc_entries = 0;
    std::vector<std::uint64_t> per_cpu_traps;  ///< sized board.num_cpus()
  };
  GoldenProfile profile_golden(std::uint64_t ticks);

  /// Guest-access fast-path instrumentation rolled up across the whole
  /// testbed. Every field is monotonic for the testbed's lifetime —
  /// surviving reset(), snapshot restore and cell destruction (the
  /// hypervisor retires dying cells' TLB counters into its tally) — so
  /// consumers window a run by differencing two samples. Allocation-free.
  struct AccessCounters {
    std::uint64_t tlb_hits = 0;       ///< stage-2 translations served from TLB
    std::uint64_t tlb_misses = 0;     ///< translations that walked the map
    std::uint64_t dram_fast_ops = 0;  ///< direct-map aligned word accesses
    std::uint64_t dram_slow_ops = 0;  ///< bounds-checked byte/block accesses
    std::uint64_t deadline_refreshes = 0;  ///< board deadline-cache re-polls
  };
  [[nodiscard]] AccessCounters access_counters() noexcept;

  // --- accessors ----------------------------------------------------------
  [[nodiscard]] platform::Board& board() noexcept { return *board_; }
  [[nodiscard]] jh::Hypervisor& hypervisor() noexcept { return hv_; }
  [[nodiscard]] jh::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] guest::LinuxRootImage& linux_root() noexcept { return linux_; }
  [[nodiscard]] guest::FreeRtosImage& freertos() noexcept { return freertos_; }
  [[nodiscard]] guest::OsekImage& osek() noexcept { return osek_; }

  /// Cell id of the current workload (non-root) cell — 0 while none has
  /// been created. Scenarios that swap payloads retarget this on re-boot.
  [[nodiscard]] jh::CellId workload_cell_id() const noexcept { return cell_id_; }
  [[nodiscard]] jh::Cell* workload_cell() noexcept {
    return cell_id_ == 0 ? nullptr : hv_.find_cell(cell_id_);
  }

  /// The secondary (concurrent) non-root cell — 0/nullptr while none.
  [[nodiscard]] jh::CellId secondary_cell_id() const noexcept {
    return secondary_cell_id_;
  }
  [[nodiscard]] jh::Cell* secondary_cell() noexcept {
    return secondary_cell_id_ == 0 ? nullptr : hv_.find_cell(secondary_cell_id_);
  }

  /// Cross-cell traffic bookkeeping (mutated by the ivshmem-traffic
  /// scenario, read by the monitor's classification).
  [[nodiscard]] IvshmemTrafficStats& ivshmem_stats() noexcept { return ivshmem_stats_; }
  [[nodiscard]] const IvshmemTrafficStats& ivshmem_stats() const noexcept {
    return ivshmem_stats_;
  }

  // Legacy names; the FreeRTOS cell is the default workload.
  [[nodiscard]] jh::CellId freertos_cell_id() const noexcept { return cell_id_; }
  [[nodiscard]] jh::Cell* freertos_cell() noexcept { return workload_cell(); }

  /// The CPU statically assigned to the primary non-root cell.
  static constexpr int kFreeRtosCpu = 1;
  static constexpr int kRootCpu = 0;

  /// CPU the OSEK cell is pinned to on this board: the first core beyond
  /// the FreeRTOS cell's when the board has one (true concurrency),
  /// otherwise the shared non-root core 1 (the paper's time-shared swap).
  [[nodiscard]] int osek_cpu() const noexcept {
    return board_->num_cpus() >= 3 ? 2 : kFreeRtosCpu;
  }

  /// Whether this board can host both non-root payloads concurrently.
  [[nodiscard]] bool supports_concurrent_cells() const noexcept {
    return osek_cpu() != kFreeRtosCpu;
  }

 private:
  std::unique_ptr<platform::Board> board_;
  jh::Hypervisor hv_;
  jh::Machine machine_;
  guest::LinuxRootImage linux_;
  guest::FreeRtosImage freertos_;
  guest::OsekImage osek_;
  jh::CellId cell_id_ = 0;
  jh::CellId secondary_cell_id_ = 0;
  bool enabled_ = false;
  bool ivshmem_ = false;
  jh::CellTuning tuning_;
  IvshmemTrafficStats ivshmem_stats_;
  /// Per-run analysis scratch; 4 KiB covers the golden-profile buffers.
  /// Snapshot page payloads are placed at the base and survive rewinds.
  util::Arena run_arena_{4 * 1024};
  TestbedSnapshot snapshot_;
  bool snapshot_valid_ = false;
};

}  // namespace mcs::fi
