// Run monitor: watches the §III observables and classifies the outcome.
//
// Observables, exactly as the paper's analysts had them: the non-root
// USART byte stream (blank output = dead cell), the on-board LED, the
// hypervisor's cell bookkeeping, the physical CPU power states, the
// management-command results and the hypervisor event log.
#pragma once

#include <cstdint>
#include <string>

#include "core/outcome.hpp"
#include "core/testbed.hpp"

namespace mcs::fi {

class RunMonitor {
 public:
  /// Snapshot the observation baseline (call when the watch window opens).
  /// Also records the opening tick: windows are deadline-driven (the
  /// scenario closes them at open + duration exactly), so the monitor's
  /// marks are comparable run to run and across tick policies.
  void begin(Testbed& testbed);

  /// Classify at window close. Fills outcome/detail/observable fields of
  /// a RunResult (the campaign adds injection bookkeeping on top).
  [[nodiscard]] RunResult finish(Testbed& testbed) const;

  /// Board tick at which begin() opened the watch window.
  [[nodiscard]] std::uint64_t window_open_tick() const noexcept {
    return window_open_tick_;
  }

  /// Minimum USART bytes in the window for the cell to count as live.
  static constexpr std::uint64_t kLiveOutputThreshold = 8;

 private:
  std::uint64_t window_open_tick_ = 0;
  std::uint64_t uart1_mark_ = 0;
  std::uint64_t led_mark_ = 0;
  std::uint64_t validated_mark_ = 0;
  /// Workload cell's own console-byte counter at window open: on boards
  /// hosting a concurrent secondary cell the shared USART aggregates both
  /// consoles, so workload liveness is judged by the cell's counter.
  std::uint64_t workload_console_mark_ = 0;
};

/// Post-mortem probe for §III's recovery claims: issue `jailhouse cell
/// shutdown` on the (possibly broken) cell and report whether the CPU and
/// peripherals actually returned to the root cell. Mutates the testbed.
[[nodiscard]] bool probe_shutdown_reclaims(Testbed& testbed);

}  // namespace mcs::fi
