// Campaign execution engine: shards a test plan's runs across worker
// threads, each run on a private Testbed, with results written into
// pre-assigned slots.
//
// Determinism contract: a campaign's CampaignResult is bit-identical for
// any thread count. Every run's seed comes from one serial SplitMix64
// expansion of the plan seed, runs share no state (private Testbed, private
// Injector/RNG), and each result lands in its own pre-sized slot — worker
// scheduling can reorder *completion*, never *content*.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/campaign.hpp"
#include "core/scenario.hpp"

namespace mcs::fi {

struct ExecutorConfig {
  /// Worker threads; 0 → util::ThreadPool::default_threads() (the
  /// MCS_CAMPAIGN_THREADS environment variable, else hw_concurrency).
  unsigned threads = 0;

  /// Issue the paper's post-mortem `jailhouse cell shutdown` probe after
  /// failed runs (Campaign::set_probe_recovery's knob).
  bool probe_recovery = true;

  /// Per-run time-advance policy. EventDriven (default) leaps inert
  /// spans between deadlines; PerTick forces the legacy polling loop.
  /// Results are bit-identical either way (the tick-equivalence suite
  /// asserts it); PerTick exists for those golden comparisons.
  jh::TickPolicy tick_policy = jh::TickPolicy::EventDriven;
};

class CampaignExecutor {
 public:
  /// The scenario is resolved from plan.scenario via the ScenarioRegistry
  /// at execute() time; an unknown key yields HarnessError runs.
  explicit CampaignExecutor(TestPlan plan, ExecutorConfig config = {});

  /// Per-run completion callback, fired as runs finish. With more than one
  /// worker the completion order is nondeterministic — the index argument,
  /// not the call order, identifies the run. Called under an internal
  /// mutex: callbacks never race each other.
  using ProgressFn = std::function<void(std::uint32_t, const RunResult&)>;
  void set_progress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Execute all runs of the plan. Deterministic in (plan.seed, plan),
  /// independent of config.threads.
  [[nodiscard]] CampaignResult execute();

  /// Execute a single run with an explicit seed (replay / tests).
  [[nodiscard]] RunResult execute_one(std::uint64_t run_seed) const;

  [[nodiscard]] const TestPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const ExecutorConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] RunResult run_with(const Scenario* scenario,
                                   std::uint64_t run_seed) const;

  TestPlan plan_;
  ExecutorConfig config_;
  ProgressFn progress_;
  /// plan_.cell_tuning parsed once at construction; runs reuse the value
  /// (or report the parse failure as a per-run HarnessError).
  jh::CellTuning tuning_;
  util::Status tuning_status_;
};

}  // namespace mcs::fi
