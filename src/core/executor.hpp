// Campaign execution engine: shards a test plan's runs across worker
// threads, each run on a private Testbed, with results written into
// pre-assigned slots.
//
// Determinism contract: a campaign's CampaignResult is bit-identical for
// any thread count. Every run's seed comes from one serial SplitMix64
// expansion of the plan seed, runs share no state (private Testbed, private
// Injector/RNG), and each result lands in its own pre-sized slot — worker
// scheduling can reorder *completion*, never *content*.
//
// Run lifecycle: by default each worker thread checks one long-lived
// (board, testbed) slot out of the fi::TestbedPool for its whole shard
// and, on the slot's first run for this campaign shape, boots it once and
// captures a post-boot TestbedSnapshot; every later run restores that
// snapshot by bulk copy instead of resetting + re-booting
// (boot-once/inject-many). Scenarios that inject *during* boot are
// snapshot-ineligible and keep reset + boot per run. The board name and
// registry entry are resolved once at construction, never in the per-run
// loop. ExecutorConfig::use_snapshots = false falls back to
// checkout/reset-per-run; reuse_testbeds = false restores build-per-run
// (fresh construction) — results are bit-identical in all three modes
// (the reuse- and snapshot-equivalence suites assert it).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/campaign.hpp"
#include "core/scenario.hpp"
#include "core/testbed_pool.hpp"
#include "platform/board_registry.hpp"

namespace mcs::fi {

struct ExecutorConfig {
  /// Worker threads; 0 → util::ThreadPool::default_threads() (the
  /// MCS_CAMPAIGN_THREADS environment variable, else hw_concurrency).
  unsigned threads = 0;

  /// Issue the paper's post-mortem `jailhouse cell shutdown` probe after
  /// failed runs (Campaign::set_probe_recovery's knob).
  bool probe_recovery = true;

  /// Per-run time-advance policy. EventDriven (default) leaps inert
  /// spans between deadlines; PerTick forces the legacy polling loop.
  /// Results are bit-identical either way (the tick-equivalence suite
  /// asserts it); PerTick exists for those golden comparisons.
  jh::TickPolicy tick_policy = jh::TickPolicy::EventDriven;

  /// Reuse pooled testbeds across runs (reset-per-run) instead of
  /// building a fresh board + testbed per run. Bit-identical results
  /// either way (the reuse-equivalence suite asserts it); false exists
  /// for those golden comparisons and for the pooled-vs-fresh benchmark.
  bool reuse_testbeds = true;

  /// Provision runs from a post-boot snapshot (boot once per slot, then
  /// restore-per-run) when the scenario allows it. Only effective with
  /// reuse_testbeds; false falls back to reset + boot per run.
  /// Bit-identical results either way (the snapshot-equivalence suite
  /// asserts it); false exists for those golden comparisons and for the
  /// snapshot-vs-pooled benchmark.
  bool use_snapshots = true;

  /// Rebuild completed sweep cells from their persisted logs in parallel
  /// (one zero-copy scan per cell on a util::ThreadPool) instead of one
  /// by one. Pure-read phase; the aggregates still fold serially in grid
  /// order, so sweep reports are byte-identical either way (the resume
  /// suite asserts it) — false exists for that comparison and for the
  /// cold-resume benchmark baseline.
  bool parallel_resume = true;
};

class CampaignExecutor {
 public:
  /// The scenario is resolved from plan.scenario via the ScenarioRegistry
  /// at execute() time; an unknown key yields HarnessError runs. The
  /// board is resolved here, once: tuning's `board` key overrides the
  /// plan's, and the registry entry is cached so the per-run path never
  /// re-locks the registry — an unknown board key yields HarnessError
  /// runs, exactly as the per-run lookup did.
  explicit CampaignExecutor(TestPlan plan, ExecutorConfig config = {});

  /// Per-run completion callback, fired as runs finish. With more than one
  /// worker the completion order is nondeterministic — the index argument,
  /// not the call order, identifies the run. Called under an internal
  /// mutex: callbacks never race each other.
  using ProgressFn = std::function<void(std::uint32_t, const RunResult&)>;
  void set_progress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Execute all runs of the plan. Deterministic in (plan.seed, plan),
  /// independent of config.threads and config.reuse_testbeds.
  [[nodiscard]] CampaignResult execute();

  /// Execute a single run with an explicit seed (replay / tests). Always
  /// fresh-constructs its testbed: one-off replays shouldn't grow the
  /// process-wide pool.
  [[nodiscard]] RunResult execute_one(std::uint64_t run_seed) const;

  [[nodiscard]] const TestPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const ExecutorConfig& config() const noexcept { return config_; }

  /// The board registry key this executor's runs resolve to (tuning
  /// override already applied).
  [[nodiscard]] const std::string& board_name() const noexcept {
    return board_name_;
  }

 private:
  /// One run on `reused` (reset to power-on first) or, when null, on a
  /// freshly built testbed.
  [[nodiscard]] RunResult run_with(const Scenario* scenario,
                                   std::uint64_t run_seed,
                                   Testbed* reused) const;

  /// A pool lease for this executor's (board, tuning) key, or an empty
  /// lease when pooling is off or the campaign can only produce
  /// HarnessErrors (unknown scenario/board, malformed tuning) — error
  /// campaigns must not provision hardware.
  [[nodiscard]] TestbedLease lease_slot(const Scenario* scenario) const;

  TestPlan plan_;
  ExecutorConfig config_;
  ProgressFn progress_;
  /// plan_.cell_tuning parsed once at construction; runs reuse the value
  /// (or report the parse failure as a per-run HarnessError).
  jh::CellTuning tuning_;
  util::Status tuning_status_;
  /// Board resolution hoisted out of the per-run loop: the effective
  /// registry key and its cached entry (nullptr → per-run HarnessError).
  std::string board_name_;
  std::shared_ptr<const platform::BoardRegistry::Entry> board_;
  /// Snapshot identity, precomputed once: what of the boot-time state the
  /// plan can influence. setup()/boot() see only (board, tuning, scenario,
  /// tick policy) — never the injection plan — so runs with equal keys
  /// boot to bit-identical state. `pool_extra_key_` is the suffix the
  /// pool adds to its slot key so parked snapshots match their campaigns.
  std::string snapshot_key_;
  std::string pool_extra_key_;
};

}  // namespace mcs::fi
