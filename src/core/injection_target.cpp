#include "core/injection_target.hpp"

#include "hypervisor/hypervisor.hpp"
#include "hypervisor/ivshmem.hpp"
#include "irq/gic.hpp"
#include "platform/board.hpp"
#include "platform/timer.hpp"
#include "platform/uart.hpp"
#include "util/bitops.hpp"

namespace mcs::fi {

FaultRecord inject_dram_fault(util::Xoshiro256& rng,
                              mem::PhysicalMemory& memory, mem::PhysAddr base,
                              std::uint64_t size) {
  FaultRecord record;
  record.domain = FaultDomain::Dram;
  record.addr = base + rng.below(size);
  record.bit = static_cast<unsigned>(rng.below(8));
  const auto before = memory.read_u8(record.addr);
  record.before = before.is_ok() ? before.value() : 0;
  record.after = util::flip_bit(record.before, record.bit);
  (void)memory.write_u8(record.addr, static_cast<std::uint8_t>(record.after));
  return record;
}

namespace {

/// The original behaviour: the plan's register fault model over the live
/// entry frame. The model's records already carry domain = Register.
class RegisterTarget final : public InjectionTarget {
 public:
  explicit RegisterTarget(std::unique_ptr<FaultModel> model)
      : model_(std::move(model)) {}

  [[nodiscard]] FaultDomain domain() const noexcept override {
    return FaultDomain::Register;
  }

  std::vector<FaultRecord> inject(util::Xoshiro256& rng,
                                  arch::EntryFrame& frame,
                                  jh::Hypervisor* /*hv*/) const override {
    return model_->apply(rng, frame.bank);
  }

 private:
  std::unique_ptr<FaultModel> model_;
};

/// GIC distributor corruption: one of four mutations against a random
/// line — enable flip, priority bit flip, SPI retarget, pending set.
/// All state changes go through the Gic's own API, so the pending-bitmap
/// mirror and the snapshot contents stay coherent.
class GicTarget final : public InjectionTarget {
 public:
  [[nodiscard]] FaultDomain domain() const noexcept override {
    return FaultDomain::Gic;
  }

  std::vector<FaultRecord> inject(util::Xoshiro256& rng,
                                  arch::EntryFrame& /*frame*/,
                                  jh::Hypervisor* hv) const override {
    if (hv == nullptr) return {};
    irq::Gic& gic = hv->board().gic();
    FaultRecord record;
    record.domain = FaultDomain::Gic;
    switch (rng.below(4)) {
      case 0: {  // enable-bit flip (GICD_ISENABLER/ICENABLER corruption)
        const auto irq = static_cast<irq::IrqId>(rng.below(irq::kNumIrqs));
        record.addr = irq;
        record.before = gic.is_enabled(irq) ? 1 : 0;
        if (record.before != 0) {
          (void)gic.disable(irq);
        } else {
          (void)gic.enable(irq);
        }
        record.after = record.before ^ 1u;
        break;
      }
      case 1: {  // priority bit flip (GICD_IPRIORITYR corruption)
        const auto irq = static_cast<irq::IrqId>(rng.below(irq::kNumIrqs));
        record.addr = irq;
        record.bit = static_cast<unsigned>(rng.below(8));
        record.before = gic.priority(irq);
        record.after = util::flip_bit(record.before, record.bit);
        (void)gic.set_priority(irq, static_cast<std::uint8_t>(record.after));
        break;
      }
      case 2: {  // SPI retarget (GICD_ITARGETSR corruption)
        const auto irq = static_cast<irq::IrqId>(
            irq::kFirstSpi + rng.below(irq::kNumIrqs - irq::kFirstSpi));
        const int cpu = static_cast<int>(rng.below(gic.num_cpus()));
        record.addr = irq;
        record.before = static_cast<std::uint64_t>(gic.target(irq));
        (void)gic.set_target(irq, cpu);
        record.after = static_cast<std::uint64_t>(cpu);
        break;
      }
      default: {  // pending-bit set (GICD_ISPENDR corruption)
        const auto irq = static_cast<irq::IrqId>(rng.below(irq::kNumIrqs));
        const int cpu = static_cast<int>(rng.below(gic.num_cpus()));
        record.addr = irq;
        record.before = gic.is_pending(irq, cpu) ? 1 : 0;
        gic.force_pending(cpu, irq);
        record.after = 1;
        break;
      }
    }
    return {record};
  }
};

/// IRQ-delivery faults: a pending SPI silently lost at its routed CPU, or
/// a spurious assertion — an SPI at a random CPU or an ivshmem doorbell
/// SGI that no peer ever rang.
class IrqDeliveryTarget final : public InjectionTarget {
 public:
  [[nodiscard]] FaultDomain domain() const noexcept override {
    return FaultDomain::IrqDelivery;
  }

  std::vector<FaultRecord> inject(util::Xoshiro256& rng,
                                  arch::EntryFrame& /*frame*/,
                                  jh::Hypervisor* hv) const override {
    if (hv == nullptr) return {};
    irq::Gic& gic = hv->board().gic();
    FaultRecord record;
    record.domain = FaultDomain::IrqDelivery;
    switch (rng.below(3)) {
      case 0: {  // lost interrupt: squash the line at its routed CPU
        const auto irq = static_cast<irq::IrqId>(
            irq::kFirstSpi + rng.below(irq::kNumIrqs - irq::kFirstSpi));
        const int cpu = gic.target(irq);
        record.addr = irq;
        record.before = gic.is_pending(irq, cpu) ? 1 : 0;
        gic.squash_pending(cpu, irq);
        record.after = 0;
        break;
      }
      case 1: {  // spurious SPI at a random CPU
        const auto irq = static_cast<irq::IrqId>(
            irq::kFirstSpi + rng.below(irq::kNumIrqs - irq::kFirstSpi));
        const int cpu = static_cast<int>(rng.below(gic.num_cpus()));
        record.addr = irq;
        record.before = gic.is_pending(irq, cpu) ? 1 : 0;
        gic.force_pending(cpu, irq);
        record.after = 1;
        break;
      }
      default: {  // spurious ivshmem doorbell SGI
        const int cpu = static_cast<int>(rng.below(gic.num_cpus()));
        record.addr = jh::kIvshmemDoorbellSgi;
        record.before = gic.is_pending(jh::kIvshmemDoorbellSgi, cpu) ? 1 : 0;
        gic.force_pending(cpu, jh::kIvshmemDoorbellSgi);
        record.after = 1;
        break;
      }
    }
    return {record};
  }
};

/// Device MMIO-state faults: flip one bit of a writable device register —
/// a per-CPU timer control or interval word, or the UART1 interrupt
/// enable — through the device's own mmio_read/mmio_write path, so the
/// timer's deadline-generation bump (and any other write side effect)
/// fires exactly as for a guest store.
class DeviceMmioTarget final : public InjectionTarget {
 public:
  [[nodiscard]] FaultDomain domain() const noexcept override {
    return FaultDomain::DeviceMmio;
  }

  std::vector<FaultRecord> inject(util::Xoshiro256& rng,
                                  arch::EntryFrame& /*frame*/,
                                  jh::Hypervisor* hv) const override {
    if (hv == nullptr) return {};
    platform::Board& board = hv->board();
    // The menu of attackable registers, fixed per board: 2 timer words
    // per CPU plus the UART1 IER. Board shape is identical between a
    // fresh boot and a snapshot restore, so the draw is deterministic.
    struct Slot {
      platform::Device* device;
      std::uint64_t offset;
    };
    std::vector<Slot> menu;
    menu.reserve(static_cast<std::size_t>(board.num_cpus()) * 2 + 1);
    for (int cpu = 0; cpu < board.num_cpus(); ++cpu) {
      const std::uint64_t stride =
          static_cast<std::uint64_t>(cpu) * platform::kTimerStride;
      menu.push_back({&board.timer(), stride + platform::kTimerCtl});
      menu.push_back({&board.timer(), stride + platform::kTimerInterval});
    }
    menu.push_back({&board.uart1(), platform::kUartIer});

    const Slot slot = menu[rng.below(menu.size())];
    FaultRecord record;
    record.domain = FaultDomain::DeviceMmio;
    record.addr = slot.device->base() + slot.offset;
    record.bit = static_cast<unsigned>(rng.below(32));
    const auto before = slot.device->mmio_read(slot.offset);
    record.before = before.is_ok() ? before.value() : 0;
    const auto flipped =
        util::flip_bit(static_cast<std::uint32_t>(record.before), record.bit);
    (void)slot.device->mmio_write(slot.offset, flipped);
    // Devices mask reserved bits on write, so record what the register
    // actually holds now — the fault the guest will observe — not the
    // raw xor we attempted.
    const auto after = slot.device->mmio_read(slot.offset);
    record.after = after.is_ok() ? after.value() : flipped;
    return {record};
  }
};

/// DRAM bit flips confined to the guest under test: the lowest-id
/// non-root cell's "ram" region when one exists (the workload's memory),
/// else the root cell's, else the whole DRAM window. Writes go through
/// PhysicalMemory, so pages are dirty-marked and restore() reverts them.
class DramTarget final : public InjectionTarget {
 public:
  [[nodiscard]] FaultDomain domain() const noexcept override {
    return FaultDomain::Dram;
  }

  std::vector<FaultRecord> inject(util::Xoshiro256& rng,
                                  arch::EntryFrame& /*frame*/,
                                  jh::Hypervisor* hv) const override {
    if (hv == nullptr) return {};
    mem::PhysicalMemory& dram = hv->board().dram();
    mem::PhysAddr base = dram.base();
    std::uint64_t size = dram.size();
    if (const mem::MemRegion* ram = pick_window(*hv, dram)) {
      base = ram->phys_start;
      size = ram->size;
    }
    return {inject_dram_fault(rng, dram, base, size)};
  }

 private:
  static const mem::MemRegion* pick_window(jh::Hypervisor& hv,
                                           const mem::PhysicalMemory& dram) {
    const mem::MemRegion* root_ram = nullptr;
    for (jh::Cell* cell : hv.cells()) {  // ascending id; root first
      for (const mem::MemRegion& region : cell->config().mem_regions) {
        if (region.name != "ram" || region.size == 0) continue;
        if (!dram.contains(region.phys_start, region.size)) continue;
        if (cell->id() != jh::kRootCellId) return &region;
        if (root_ram == nullptr) root_ram = &region;
      }
    }
    return root_ram;
  }
};

}  // namespace

std::unique_ptr<InjectionTarget> make_injection_target(const TestPlan& plan) {
  switch (plan.fault_domain) {
    case FaultDomain::Register:
      return std::make_unique<RegisterTarget>(
          make_fault_model(plan.fault, plan.fault_registers, plan.fault_count));
    case FaultDomain::Gic:
      return std::make_unique<GicTarget>();
    case FaultDomain::IrqDelivery:
      return std::make_unique<IrqDeliveryTarget>();
    case FaultDomain::DeviceMmio:
      return std::make_unique<DeviceMmioTarget>();
    case FaultDomain::Dram:
      return std::make_unique<DramTarget>();
  }
  return nullptr;
}

}  // namespace mcs::fi
