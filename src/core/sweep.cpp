#include "core/sweep.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/log_parser.hpp"
#include "core/scenario.hpp"
#include "hypervisor/config_text.hpp"
#include "util/logpipe_counters.hpp"
#include "util/mapped_file.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace mcs::fi {

namespace {

/// "scenario_rN[_board][_domain]": unique per grid cell (the spec parser
/// rejects duplicated axis values), filesystem-safe for registry-style
/// keys. Cells without a board/domain axis keep the historical id, so
/// pre-refactor logdirs still resume.
std::string cell_id(const std::string& scenario, std::uint32_t rate,
                    const std::string& board, const std::string& domain) {
  std::string id = scenario + "_r" + std::to_string(rate);
  if (!board.empty()) id += "_" + board;
  if (!domain.empty()) id += "_" + domain;
  return id;
}

template <typename T>
bool has_duplicates(std::vector<T> values) {
  std::sort(values.begin(), values.end());
  return std::adjacent_find(values.begin(), values.end()) != values.end();
}

/// Grid-level validation shared by the spec parser and expand(): a spec
/// assembled from CLI flags must obey the same rules as a parsed one —
/// in particular no duplicated axis values, which would alias cell ids
/// (and therefore log files), making resume report one cell's data as
/// another's.
util::Status validate_grid(const SweepSpec& spec) {
  if (spec.scenarios.empty()) {
    return util::invalid_argument("sweep spec names no scenario");
  }
  if (spec.rates.empty()) {
    return util::invalid_argument("sweep spec names no rate");
  }
  if (spec.runs == 0) {
    return util::invalid_argument("sweep needs runs ≥ 1");
  }
  for (const std::uint32_t rate : spec.rates) {
    if (rate == 0) return util::invalid_argument("sweep rate must be ≥ 1");
  }
  if (has_duplicates(spec.scenarios)) {
    return util::invalid_argument("duplicate scenario in sweep spec");
  }
  if (has_duplicates(spec.rates)) {
    return util::invalid_argument("duplicate rate in sweep spec");
  }
  if (has_duplicates(spec.boards)) {
    return util::invalid_argument("duplicate board in sweep spec");
  }
  if (has_duplicates(spec.domains)) {
    return util::invalid_argument("duplicate domain in sweep spec");
  }
  return util::ok_status();
}

}  // namespace

std::string plan_fingerprint(const TestPlan& plan) {
  std::string tuning = plan.cell_tuning;
  std::replace(tuning.begin(), tuning.end(), '\n', ';');
  std::ostringstream out;
  out << "scenario " << plan.scenario << "\n"
      << "board " << plan.board << "\n"
      << "target " << static_cast<int>(plan.target) << "\n"
      << "fault " << static_cast<int>(plan.fault) << "\n"
      << "fault_registers";
  for (const arch::Reg reg : plan.fault_registers) {
    out << ' ' << static_cast<int>(reg);
  }
  out << "\n"
      << "fault_count " << plan.fault_count << "\n"
      << "rate " << plan.rate << "\n"
      << "phase " << plan.phase << "\n"
      << "cpu_filter " << plan.cpu_filter << "\n"
      << "duration " << plan.duration_ticks << "\n"
      << "runs " << plan.runs << "\n"
      << "seed " << plan.seed << "\n"
      << "inject_during_boot " << (plan.inject_during_boot ? 1 : 0) << "\n"
      << "tuning " << tuning << "\n";
  // Appended (not inline above) and only for non-register plans: a
  // register-domain plan's fingerprint is byte-identical to the
  // pre-refactor format, so existing logdirs resume instead of
  // re-executing.
  if (plan.fault_domain != FaultDomain::Register) {
    out << "domain " << fault_domain_name(plan.fault_domain) << "\n";
  }
  return out.str();
}

std::string cell_meta_path(const std::string& log_path) {
  return log_path + ".meta";
}

util::Status write_text_atomic(const std::string& path, std::string_view text,
                               const std::string& tag) {
  const std::string effective_tag =
      tag.empty() ? std::to_string(static_cast<long>(::getpid())) : tag;
  const std::string tmp = path + "." + effective_tag + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    out << text;
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return util::Status(util::Code::EIo, "cannot write '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return util::Status(util::Code::EIo, "cannot rename '" + tmp + "' to '" +
                                             path + "': " + ec.message());
  }
  return util::ok_status();
}

bool cell_log_complete(const TestPlan& plan, const std::string& log_path,
                       analysis::CampaignAggregate& aggregate) {
  // The sidecar fingerprint ties the log to the exact plan that wrote
  // it. Absent (interrupted before completion) or mismatched (the
  // logdir was reused with a different spec) → the log is not this
  // cell's data, however complete it looks.
  {
    const auto meta = util::read_file(cell_meta_path(log_path));
    if (!meta.is_ok() || meta.value() != plan_fingerprint(plan)) return false;
  }

  // One zero-copy pass: the log is mapped, scanned in place and folded
  // straight into the aggregate. (The historical path slurped the file
  // into a stringstream and copied it out again before parsing — two
  // full copies per cell, per resume attempt.)
  const auto mapped = util::MappedFile::open(log_path);
  if (!mapped.is_ok()) return false;
  const analysis::RunLogScan scan = analysis::scan_run_log(mapped.value().view());

  // Complete ⇔ every run index 0..runs-1 exactly once, in order, and not
  // a single malformed line — anything else (truncated tail from an
  // interrupt, foreign content) re-executes the cell from scratch.
  if (scan.malformed_lines != 0) return false;
  if (scan.entries != plan.runs) return false;
  if (!scan.indices_sequential) return false;
  aggregate = scan.aggregate;
  return true;
}

util::Expected<analysis::CampaignAggregate> execute_cell(
    const TestPlan& plan, const std::string& log_path,
    const ExecutorConfig& config, const std::string& tag,
    const std::function<void(std::uint32_t)>& per_run) {
  const bool persist = !log_path.empty();
  const std::string effective_tag =
      tag.empty() ? std::to_string(static_cast<long>(::getpid())) : tag;
  const std::string tmp = log_path + "." + effective_tag + ".tmp";

  std::ofstream log_file;
  if (persist) {
    // A stale fingerprint must never outlive the log it described: drop
    // it first, and only commit the new one once the cell's log is
    // complete on disk. An interrupt anywhere in between leaves no
    // fingerprint (and no partially-written log — the stream goes to a
    // temp file renamed into place), so the next invocation re-executes.
    std::error_code ec;
    std::filesystem::remove(cell_meta_path(log_path), ec);
    log_file.open(tmp, std::ios::trunc);
    if (!log_file) {
      return util::Status(util::Code::EIo,
                          "cannot write cell log '" + tmp + "'");
    }
  }
  // Persisted cells stream straight to their temp log file; an in-memory
  // cell streams into a scratch buffer that dies here (the aggregate is
  // all the caller keeps).
  std::ostringstream devnull;
  analysis::LogSink sink(persist ? static_cast<std::ostream&>(log_file)
                                 : devnull);
  CampaignExecutor executor(plan, config);
  executor.set_progress(
      [&sink, &per_run](std::uint32_t index, const RunResult& run) {
        sink.record(index, run);
        if (per_run) per_run(index);
      });
  const CampaignResult campaign = executor.execute();
  (void)campaign;  // every run already reached the sink, in order

  if (persist) {
    sink.flush();
    if (!log_file) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return util::Status(util::Code::EIo,
                          "cannot write cell log '" + tmp + "'");
    }
    log_file.close();
    std::error_code ec;
    std::filesystem::rename(tmp, log_path, ec);
    if (ec) {
      std::filesystem::remove(tmp, ec);
      return util::Status(util::Code::EIo, "cannot rename cell log '" + tmp +
                                               "': " + ec.message());
    }
    const util::Status meta = write_text_atomic(
        cell_meta_path(log_path), plan_fingerprint(plan), effective_tag);
    if (!meta.is_ok()) return meta;
  }
  return sink.aggregate();
}

std::string render_sweep_spec(const SweepSpec& spec) {
  std::ostringstream out;
  out << "sweep \"" << spec.name << "\"\n";
  out << "scenario";
  for (const std::string& scenario : spec.scenarios) out << ' ' << scenario;
  out << "\nrate";
  for (const std::uint32_t rate : spec.rates) out << ' ' << rate;
  out << "\n";
  if (!spec.boards.empty()) {
    out << "board";
    for (const std::string& board : spec.boards) out << ' ' << board;
    out << "\n";
  }
  if (!spec.domains.empty()) {
    out << "domain";
    for (const std::string& domain : spec.domains) out << ' ' << domain;
    out << "\n";
  }
  out << "runs " << spec.runs << "\n"
      << "seed " << spec.seed << "\n";
  if (spec.duration_ticks != 0) out << "duration " << spec.duration_ticks << "\n";
  if (!spec.cell_tuning.empty()) {
    std::string tuning = spec.cell_tuning;
    std::replace(tuning.begin(), tuning.end(), '\n', ';');
    out << "tuning " << tuning << "\n";
  }
  if (!spec.log_dir.empty()) out << "logdir " << spec.log_dir << "\n";
  return out.str();
}

util::Expected<SweepSpec> parse_sweep_spec(std::string_view text) {
  SweepSpec spec;
  int line_number = 0;
  const auto fail = [&line_number](const std::string& what) {
    return util::invalid_argument("line " + std::to_string(line_number) + ": " +
                                  what);
  };

  for (const std::string& raw_line : util::split(text, '\n')) {
    ++line_number;
    const std::string_view line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    const std::size_t space = line.find(' ');
    const std::string_view keyword = line.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{}
                                        : util::trim(line.substr(space + 1));

    if (keyword == "sweep") {
      // sweep "name" — quoted like the cell-config header.
      const std::size_t open = rest.find('"');
      const std::size_t close = rest.rfind('"');
      if (open == std::string_view::npos || close <= open) {
        return fail("sweep name must be quoted");
      }
      spec.name = std::string(rest.substr(open + 1, close - open - 1));
    } else if (keyword == "scenario" || keyword == "board" ||
               keyword == "domain") {
      if (rest.empty()) return fail(std::string(keyword) + " needs a key");
      auto& axis = keyword == "scenario" ? spec.scenarios
                   : keyword == "board"  ? spec.boards
                                         : spec.domains;
      for (const std::string& token : util::split(rest, ' ')) {
        if (!util::trim(token).empty()) {
          axis.emplace_back(util::trim(token));
        }
      }
    } else if (keyword == "rate") {
      if (rest.empty()) return fail("rate needs a value");
      for (const std::string& token : util::split(rest, ' ')) {
        if (util::trim(token).empty()) continue;
        auto value = jh::parse_config_number(util::trim(token));
        if (!value.is_ok() || value.value() == 0) {
          return fail("bad rate '" + token + "' (need a call count ≥ 1)");
        }
        spec.rates.push_back(static_cast<std::uint32_t>(value.value()));
      }
    } else if (keyword == "runs") {
      auto value = jh::parse_config_number(rest);
      if (!value.is_ok() || value.value() == 0) return fail("bad runs count");
      spec.runs = static_cast<std::uint32_t>(value.value());
    } else if (keyword == "seed") {
      auto value = jh::parse_config_number(rest);
      if (!value.is_ok()) return fail("bad seed");
      spec.seed = value.value();
    } else if (keyword == "duration") {
      auto value = jh::parse_config_number(rest);
      if (!value.is_ok() || value.value() == 0) return fail("bad duration");
      spec.duration_ticks = value.value();
    } else if (keyword == "tuning") {
      // The rest of the line is cell-tuning text, ';'-separated like the
      // fault_campaign CLI; multiple tuning lines accumulate.
      std::string tuning(rest);
      std::replace(tuning.begin(), tuning.end(), ';', '\n');
      if (!spec.cell_tuning.empty()) spec.cell_tuning += '\n';
      spec.cell_tuning += tuning;
    } else if (keyword == "logdir") {
      if (rest.empty()) return fail("logdir needs a path");
      spec.log_dir = std::string(rest);
    } else {
      return fail("unknown keyword '" + std::string(keyword) + "'");
    }
  }

  const util::Status valid = validate_grid(spec);
  if (!valid.is_ok()) return valid;
  return spec;
}

SweepDriver::SweepDriver(SweepSpec spec, ExecutorConfig config)
    : spec_(std::move(spec)), config_(config) {}

std::string SweepDriver::cell_log_path(const std::string& log_dir,
                                       const std::string& cell_id) {
  return (std::filesystem::path(log_dir) / (cell_id + ".runlog")).string();
}

util::Expected<std::vector<TestPlan>> SweepDriver::expand() const {
  // Specs can arrive without passing parse_sweep_spec (built from CLI
  // flags or code), so the grid rules are enforced here too.
  const util::Status valid = validate_grid(spec_);
  if (!valid.is_ok()) return valid;

  // No board/domain axis → one pass with the scenario/tuning default.
  const std::vector<std::string> boards =
      spec_.boards.empty() ? std::vector<std::string>{""} : spec_.boards;
  const std::vector<std::string> domains =
      spec_.domains.empty() ? std::vector<std::string>{""} : spec_.domains;

  ScenarioRegistry& registry = ScenarioRegistry::instance();
  std::vector<TestPlan> plans;
  plans.reserve(spec_.cell_count());
  // One serial seed expansion over the full grid, in grid order: a cell's
  // seed depends only on its grid position, never on which cells execute.
  util::SplitMix64 seeder(spec_.seed);
  for (const std::string& scenario : spec_.scenarios) {
    for (const std::uint32_t rate : spec_.rates) {
      for (const std::string& board : boards) {
        for (const std::string& domain : domains) {
          ScenarioRegistry::MakeOptions options;
          options.cell_tuning = spec_.cell_tuning;
          if (!board.empty()) {
            // The board axis rides the tuning vocabulary; appended last
            // so it overrides any `board` line in the shared tuning.
            if (!options.cell_tuning.empty()) options.cell_tuning += '\n';
            options.cell_tuning += "board " + board;
          }
          if (!domain.empty()) {
            // The fault-domain axis rides the same vocabulary.
            if (!options.cell_tuning.empty()) options.cell_tuning += '\n';
            options.cell_tuning += "fault domain " + domain;
          }
          auto made = registry.make(scenario, options);
          if (!made.is_ok()) {
            return util::invalid_argument(
                "cell " + cell_id(scenario, rate, board, domain) + ": " +
                made.status().message());
          }
          TestPlan plan = std::move(made).value();
          plan.name = cell_id(scenario, rate, board, domain);
          plan.rate = rate;
          plan.runs = spec_.runs;
          plan.seed = seeder.next();
          if (spec_.duration_ticks != 0) {
            plan.duration_ticks = spec_.duration_ticks;
          }
          plans.push_back(std::move(plan));
        }
      }
    }
  }
  return plans;
}

util::Expected<SweepResult> SweepDriver::execute() {
  auto plans = expand();
  if (!plans.is_ok()) return plans.status();

  const bool persist = !spec_.log_dir.empty();
  if (persist) {
    std::error_code ec;
    std::filesystem::create_directories(spec_.log_dir, ec);
    if (ec) {
      return util::Status(util::Code::EIo, "cannot create sweep log dir '" +
                                               spec_.log_dir + "': " +
                                               ec.message());
    }
  }

  std::vector<TestPlan>& grid = plans.value();

  // Resume pre-scan. Rebuilding a completed cell from its persisted log
  // is a pure read — mmap + one zero-copy scan, no shared state — so a
  // cold start over a populated logdir validates cells in parallel. Only
  // the *scan* is parallel: the fold below stays serial and in grid
  // order, so the report is byte-identical for any thread count and with
  // parallel_resume off (the resume suite asserts it).
  std::vector<char> resumed(grid.size(), 0);
  std::vector<analysis::CampaignAggregate> recovered(grid.size());
  if (persist) {
    const auto scan_cell = [&](std::size_t i) {
      const std::string path = cell_log_path(spec_.log_dir, grid[i].name);
      if (cell_log_complete(grid[i], path, recovered[i])) {
        resumed[i] = 1;
        util::LogPipeCounters::instance().record_resumed_cell();
      }
    };
    if (config_.parallel_resume && grid.size() > 1) {
      util::LogPipeCounters::instance().record_parallel_resume();
      util::ThreadPool pool(config_.threads);
      std::atomic<std::size_t> next{0};
      for (unsigned t = 0; t < pool.size(); ++t) {
        pool.submit([&grid, &next, &scan_cell] {
          for (std::size_t i = next.fetch_add(1); i < grid.size();
               i = next.fetch_add(1)) {
            scan_cell(i);
          }
        });
      }
      pool.wait_idle();
    } else {
      for (std::size_t i = 0; i < grid.size(); ++i) scan_cell(i);
    }
  }

  SweepResult result;
  result.spec = spec_;
  result.cells.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SweepCellResult cell;
    cell.id = grid[i].name;
    cell.plan = std::move(grid[i]);

    if (persist) {
      cell.log_path = cell_log_path(spec_.log_dir, cell.id);
      if (resumed[i] != 0) {
        cell.aggregate = recovered[i];
        cell.resumed = true;
        ++result.resumed;
      }
    }

    if (!cell.resumed) {
      auto executed = execute_cell(cell.plan, cell.log_path, config_);
      if (!executed.is_ok()) return executed.status();
      cell.aggregate = std::move(executed).value();
      ++result.executed;
    }

    result.total.merge(cell.aggregate);
    if (cell_progress_) cell_progress_(cell);
    result.cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace mcs::fi
