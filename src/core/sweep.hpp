// Multi-campaign sweep driver: the paper's assessment grid as one run.
//
// The dependability argument of §III is not a single campaign but a grid
// of them — scenarios × fault-intensity levels (rates) × boards — each
// summarized and compared (Figure 3 against the high-intensity shapes).
// SweepSpec names that grid; SweepDriver expands it into one TestPlan per
// cell, executes every cell through the sharded CampaignExecutor, streams
// each cell's run log to its own file, and folds the per-cell
// CampaignAggregates into a sweep-level result the comparison report
// renders side by side.
//
// Determinism: expansion always enumerates the full grid in one fixed
// order (scenario-major, then rate, then board) and deals per-cell seeds
// from one serial SplitMix64 expansion of the base seed — so a cell's
// plan, and therefore its runs, depend only on the spec, never on which
// cells happen to execute or resume. With per-cell logs persisted, an
// interrupted sweep re-invoked with the same spec rebuilds completed
// cells' aggregates from their logs (analysis::aggregate_from_log),
// re-executes only incomplete cells, and produces a bit-identical result.
// A sidecar fingerprint per cell ties each log to the exact plan that
// wrote it, so reusing a log directory with a changed spec re-executes
// rather than silently resuming stale data.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/log_sink.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "util/status.hpp"

namespace mcs::fi {

/// The sweep grid: every list is one axis; the driver takes the cross
/// product. Value type, cheap to copy, parseable from config text.
struct SweepSpec {
  std::string name = "sweep";
  std::vector<std::string> scenarios;    ///< ScenarioRegistry keys (≥ 1)
  std::vector<std::uint32_t> rates;      ///< inject-every-Nth-call levels (≥ 1)
  std::vector<std::string> boards;       ///< BoardRegistry keys; empty → the
                                         ///< scenario default, no board axis
  std::vector<std::string> domains;      ///< fi::FaultDomain names; empty →
                                         ///< the scenario default, no axis
  std::uint32_t runs = 8;                ///< runs per grid cell
  std::uint64_t seed = 0xC0FFEE;         ///< base seed; cells derive from it
  std::uint64_t duration_ticks = 0;      ///< 0 → the scenario/plan default
  std::string cell_tuning;               ///< applied to every cell (validated)
  std::string log_dir;  ///< per-cell run logs + resume; empty → in-memory only

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return scenarios.size() * rates.size() *
           (boards.empty() ? 1 : boards.size()) *
           (domains.empty() ? 1 : domains.size());
  }
};

/// Parse a sweep spec from config text, same conventions as
/// jh::parse_cell_tuning (one key per line, # comments, blank lines ok):
///
///   sweep "paper-grid"                 # optional name
///   scenario freertos-steady dual-cell # or one per line, accumulating
///   rate 100 50
///   board bananapi quad-a7             # optional axis
///   domain register gic dram           # optional fault-domain axis
///   runs 8
///   seed 0xC0FFEE
///   duration 60000
///   tuning ram 0x200000; console trapped   # ';' separates tuning lines
///   logdir sweep-logs
///
/// EINVAL with a line-numbered message on malformed input, duplicated
/// axis values (they would alias per-cell log files) or an empty grid.
[[nodiscard]] util::Expected<SweepSpec> parse_sweep_spec(std::string_view text);

// --- shared cell-persistence primitives -------------------------------------
// Used by SweepDriver and by the multi-process SweepWorker runtime
// (core/sweep_worker.hpp): one cell's on-disk artifacts — run log +
// fingerprint sidecar — are written crash-tolerantly and validated the
// same way no matter which process produced them.

/// Everything that determines a cell's runs, as deterministic text. The
/// sidecar `<cell>.runlog.meta` persists this; resume refuses a log whose
/// fingerprint doesn't match the current plan, so reusing a logdir with a
/// changed seed/rate/duration/tuning re-executes instead of silently
/// serving stale aggregates.
[[nodiscard]] std::string plan_fingerprint(const TestPlan& plan);

/// The fingerprint sidecar path for a cell log ("<log_path>.meta").
[[nodiscard]] std::string cell_meta_path(const std::string& log_path);

/// Write `text` to `path` atomically: stream into `<path>.<tag>.tmp`,
/// flush, then std::filesystem::rename into place — a crash mid-write can
/// never leave a truncated file at `path`, and concurrent writers of the
/// same path commit whole files, last rename wins. `tag` keeps writers'
/// temp files apart; empty → the calling process id.
[[nodiscard]] util::Status write_text_atomic(const std::string& path,
                                             std::string_view text,
                                             const std::string& tag = "");

/// True when `log_path` holds a complete run log written by exactly
/// `plan`: the sidecar fingerprint matches the plan, and the log has
/// every index 0..runs-1 exactly once with no malformed lines. Fills
/// `aggregate` (bit-identical to the live sink's) on success.
[[nodiscard]] bool cell_log_complete(const TestPlan& plan,
                                     const std::string& log_path,
                                     analysis::CampaignAggregate& aggregate);

/// Execute one grid cell and persist its artifacts crash-tolerantly: the
/// run log streams into `<log_path>.<tag>.tmp` and is renamed into place
/// only once complete; the fingerprint sidecar follows, temp + rename
/// too. An interruption anywhere leaves either the previous artifacts or
/// none — never a truncated log — and because per-cell runs are
/// deterministic in the plan, a concurrent duplicate execution of the
/// same cell (a stolen lease whose old holder turned out alive) is
/// harmless: both writers commit byte-identical bytes atomically. Empty
/// `log_path` → execute in memory, persist nothing. `per_run` (optional)
/// fires after each recorded run, serialized by the executor's progress
/// mutex — the lease-heartbeat hook of the distributed runtime.
[[nodiscard]] util::Expected<analysis::CampaignAggregate> execute_cell(
    const TestPlan& plan, const std::string& log_path,
    const ExecutorConfig& config, const std::string& tag = "",
    const std::function<void(std::uint32_t)>& per_run = {});

/// Render a spec as config text that round-trips through
/// parse_sweep_spec — what a distributed coordinator persists as
/// `<logdir>/sweep.spec` so `--join` workers on the same shared
/// filesystem expand the exact same grid (same cell ids, same per-cell
/// seeds) with no other coordination channel.
[[nodiscard]] std::string render_sweep_spec(const SweepSpec& spec);

/// One executed (or resumed) grid cell.
struct SweepCellResult {
  std::string id;        ///< "scenario_rN[_board]" — also the log file stem
  TestPlan plan;         ///< the fully expanded plan the cell ran with
  std::string log_path;  ///< persisted run log; empty when not persisted
  analysis::CampaignAggregate aggregate;
  bool resumed = false;  ///< rebuilt from the persisted log, not executed
};

struct SweepResult {
  SweepSpec spec;
  std::vector<SweepCellResult> cells;       ///< grid order
  analysis::CampaignAggregate total;        ///< all cells merged, grid order
  std::size_t executed = 0;
  std::size_t resumed = 0;
};

class SweepDriver {
 public:
  explicit SweepDriver(SweepSpec spec, ExecutorConfig config = {});

  /// Fired after each cell completes (executed or resumed), in grid order.
  using CellProgressFn = std::function<void(const SweepCellResult&)>;
  void set_cell_progress(CellProgressFn fn) { cell_progress_ = std::move(fn); }

  /// The grid as ready-to-execute TestPlans, in the fixed grid order,
  /// seeds dealt. EINVAL on an invalid spec (empty axis, unknown
  /// scenario/board key, malformed tuning).
  [[nodiscard]] util::Expected<std::vector<TestPlan>> expand() const;

  /// Execute the sweep: resume completed cells from their persisted logs
  /// (when spec.log_dir is set), execute the rest, fold everything into a
  /// SweepResult. Deterministic in the spec for any thread count and any
  /// executed/resumed split. The resume scan — a pure read per cell —
  /// runs on a util::ThreadPool when config.parallel_resume is set; the
  /// fold stays serial in grid order, so results are byte-identical
  /// either way.
  [[nodiscard]] util::Expected<SweepResult> execute();

  [[nodiscard]] const SweepSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const ExecutorConfig& config() const noexcept { return config_; }

  /// The log file a cell persists to under `log_dir` ("<id>.runlog").
  [[nodiscard]] static std::string cell_log_path(const std::string& log_dir,
                                                 const std::string& cell_id);

 private:
  SweepSpec spec_;
  ExecutorConfig config_;
  CellProgressFn cell_progress_;
};

}  // namespace mcs::fi
