// Pluggable fault domains: where an injection lands.
//
// The original injector was hard-wired to one domain — FaultModel::apply
// against the trapped register frame. InjectionTarget generalises that
// into the §V "wider and customizable set of fault models": each domain
// is a strategy that corrupts a different layer of the machine at the
// same deterministic cadence (every Nth filtered call of the hooked
// hypervisor function):
//
//   register      the classical bit-flip models over the EntryFrame bank
//   gic           GIC distributor corruption: enable/priority/target/
//                 pending state of a random line
//   irq-delivery  lost SPIs (squash a pending assertion) and spurious
//                 SPI/doorbell-SGI deliveries
//   device-mmio   device register state: timer control/interval words and
//                 the UART1 interrupt-enable register, via the devices'
//                 own MMIO paths (so deadline caches stay coherent)
//   dram          single-bit flips in the target cell's DRAM window (the
//                 former MemoryFaultInjector, now a first-class domain)
//
// Every mutation goes through the owning model's public API — GIC writes
// keep the pending-bitmap mirror, timer writes bump the deadline
// generation, DRAM writes mark pages dirty — so snapshots, caches and
// restore() see injected state exactly like guest-written state.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "arch/cpu.hpp"
#include "core/fault_model.hpp"
#include "core/plan.hpp"
#include "mem/phys_mem.hpp"
#include "util/rng.hpp"

namespace mcs::fi {

/// Strategy interface: corrupt one domain of the live machine, report
/// what changed. `hv` is the machine under attack; targets that need it
/// (every domain but register) inject nothing when it is null, so tests
/// driving Injector::on_entry without a hypervisor still work.
class InjectionTarget {
 public:
  virtual ~InjectionTarget() = default;
  [[nodiscard]] virtual FaultDomain domain() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return fault_domain_name(domain());
  }
  virtual std::vector<FaultRecord> inject(util::Xoshiro256& rng,
                                          arch::EntryFrame& frame,
                                          jh::Hypervisor* hv) const = 0;
};

/// Flip one random bit of one random byte in [base, base+size). The write
/// goes through PhysicalMemory::write_u8, so the page is materialised and
/// dirty-marked — snapshot restore reverts the flip like any guest write.
[[nodiscard]] FaultRecord inject_dram_fault(util::Xoshiro256& rng,
                                            mem::PhysicalMemory& memory,
                                            mem::PhysAddr base,
                                            std::uint64_t size);

/// Factory: the plan's fault_domain (plus, for the register domain, its
/// fault model kind and register restriction) → target instance.
[[nodiscard]] std::unique_ptr<InjectionTarget> make_injection_target(
    const TestPlan& plan);

}  // namespace mcs::fi
