#include "core/monitor.hpp"

namespace mcs::fi {

void RunMonitor::begin(Testbed& testbed) {
  window_open_tick_ = testbed.board().now().value;
  uart1_mark_ = testbed.board().uart1().total_bytes();
  led_mark_ = testbed.board().gpio().led_toggles();
  validated_mark_ = testbed.freertos().messages_validated();
  jh::Cell* workload = testbed.workload_cell();
  workload_console_mark_ = workload != nullptr ? workload->console_bytes : 0;
}

// The monitored workload cell is whatever the scenario last booted on the
// non-root CPU — FreeRTOS in the paper's setup, OSEK in the AUTOSAR
// scenarios. The observables (USART, LED, CPU power state, management
// results) are payload-agnostic by design.

RunResult RunMonitor::finish(Testbed& testbed) const {
  RunResult result;
  platform::Board& board = testbed.board();
  jh::Hypervisor& hv = testbed.hypervisor();

  result.uart1_bytes = board.uart1().bytes_since(uart1_mark_);
  result.led_toggles = board.gpio().led_toggles() - led_mark_;
  result.traps = hv.counters().traps;
  result.hvcs = hv.counters().hvcs;
  result.irqs = hv.counters().irqs;
  result.create_result = testbed.linux_root().last_result(jh::Hypercall::CellCreate);
  result.start_result = testbed.linux_root().last_result(jh::Hypercall::CellStart);

  // Failure-detection timestamp: first hypervisor ERROR/FATAL record.
  for (const util::LogRecord& record : board.log().records()) {
    if (record.component == "hypervisor" &&
        record.severity >= util::Severity::Error) {
      result.failure_tick = record.timestamp.value;
      break;
    }
  }

  // 1. Panic park dominates: the fault propagated to the whole system.
  if (hv.is_panicked()) {
    result.outcome = Outcome::PanicPark;
    result.detail = hv.panic_reason();
    return result;
  }

  // 2. Cell never allocated: the management path failed. Expected
  //    fail-stop when the failure reads "invalid arguments".
  jh::Cell* cell = testbed.workload_cell();
  result.cell_exists = cell != nullptr;
  if (cell == nullptr) {
    if (jh::is_invalid_arguments(result.create_result) ||
        jh::is_invalid_arguments(result.start_result)) {
      result.outcome = Outcome::InvalidArguments;
      result.detail = "management hypercall rejected, cell not allocated";
    } else {
      result.outcome = Outcome::SilentHang;
      result.detail = "cell absent without a recorded EINVAL";
    }
    return result;
  }

  // The workload CPU comes from the cell's own config: board variants pin
  // cells to different cores (e.g. the OSEK cell on core 2 of quad-a7).
  const int workload_cpu =
      cell->config().cpus.empty() ? Testbed::kFreeRtosCpu : cell->config().cpus.front();
  const arch::Cpu& cpu1 = board.cpu(workload_cpu);
  switch (cpu1.power_state()) {
    case arch::PowerState::Parked:
      result.outcome = Outcome::CpuPark;
      result.detail = cpu1.halt_reason();
      return result;
    case arch::PowerState::Failed:
    case arch::PowerState::Booting:
      // "The CPU fails to come online as per the swap feature of the CPU
      // hot plug or the cell is left in a non-executable state" — while
      // Jailhouse still reports the cell running.
      result.outcome = Outcome::InconsistentCell;
      result.detail = "cell '" + cell->name() + "' state=" +
                      std::string(jh::cell_state_name(cell->state())) +
                      " but CPU " + std::string(arch::power_state_name(
                                        cpu1.power_state()));
      return result;
    case arch::PowerState::Off:
      if (cell->state() == jh::CellState::Running) {
        result.outcome = Outcome::InconsistentCell;
        result.detail = "cell marked running with its CPU powered off";
        return result;
      }
      result.outcome = Outcome::Correct;  // cleanly shut down
      result.detail = "cell shut down";
      return result;
    case arch::PowerState::On:
      break;
  }

  // 3. Secondary (concurrent) cell: the same bookkeeping-vs-physical-
  //    truth checks as the monitored cell — its failures must not hide
  //    behind a healthy workload on the other core.
  jh::Cell* secondary = testbed.secondary_cell();
  if (secondary != nullptr && secondary->state() == jh::CellState::Running &&
      !secondary->config().cpus.empty()) {
    const arch::Cpu& cpu2 = board.cpu(secondary->config().cpus.front());
    switch (cpu2.power_state()) {
      case arch::PowerState::Parked:
        result.outcome = Outcome::CpuPark;
        result.detail =
            "secondary cell '" + secondary->name() + "': " + cpu2.halt_reason();
        return result;
      case arch::PowerState::Failed:
      case arch::PowerState::Booting:
      case arch::PowerState::Off:
        result.outcome = Outcome::InconsistentCell;
        result.detail = "secondary cell '" + secondary->name() +
                        "' state=" +
                        std::string(jh::cell_state_name(secondary->state())) +
                        " but CPU " +
                        std::string(arch::power_state_name(cpu2.power_state()));
        return result;
      case arch::PowerState::On:
        break;
    }
  }

  // 4. Cross-cell traffic: a monitored cell that looks alive can still
  //    have had its inter-cell channel corrupted — lost doorbells, stale
  //    or mismatched payloads, ring faults. Only the ivshmem-traffic
  //    scenario feeds these stats; they are all-zero otherwise. The
  //    hypervisor-detected failures above stay the more precise verdicts.
  const IvshmemTrafficStats& xcell = testbed.ivshmem_stats();
  if (xcell.traffic_disrupted()) {
    result.outcome = Outcome::CrossCellCorruption;
    result.detail = "cross-cell traffic disrupted (corrupted=" +
                    std::to_string(xcell.corrupted) + ", lost_doorbells=" +
                    std::to_string(xcell.lost_doorbells) + ", ring_errors=" +
                    std::to_string(xcell.protocol_errors + xcell.send_failures) +
                    ", ok=" + std::to_string(xcell.received) + "/" +
                    std::to_string(xcell.sent) + ")";
    return result;
  }

  // 5. CPU online, cell running: console output decides. With a
  //    concurrent secondary cell resident the shared USART carries both
  //    consoles, so the monitored cell is judged by its *own* console
  //    byte counter — a hung workload cannot hide behind its peer's
  //    output. Single-cell deployments keep the USART observable the
  //    paper's analysts watched.
  const std::uint64_t live_bytes =
      secondary != nullptr ? cell->console_bytes - workload_console_mark_
                           : result.uart1_bytes;
  if (live_bytes >= kLiveOutputThreshold) {
    result.outcome = Outcome::Correct;
    result.detail = "workload live (" + std::to_string(live_bytes) +
                    (secondary != nullptr ? " console bytes)" : " USART bytes)");
  } else {
    result.outcome = Outcome::SilentHang;
    result.detail = secondary != nullptr ? "CPU online but workload console silent"
                                         : "CPU online but USART silent";
  }
  return result;
}

bool probe_shutdown_reclaims(Testbed& testbed) {
  jh::Hypervisor& hv = testbed.hypervisor();
  if (hv.is_panicked()) return false;  // nothing left to manage
  const jh::CellId id = testbed.workload_cell_id();
  if (id == 0 || hv.find_cell(id) == nullptr) return false;

  const jh::Cell* pre = hv.find_cell(id);
  const int workload_cpu = (pre != nullptr && !pre->config().cpus.empty())
                               ? pre->config().cpus.front()
                               : Testbed::kFreeRtosCpu;
  testbed.shutdown_workload_cell();
  const jh::Cell* cell = hv.find_cell(id);
  const bool state_ok =
      cell != nullptr && cell->state() == jh::CellState::ShutDown;
  const bool cpu_back = hv.cpu_owner(workload_cpu) == jh::kRootCellId;
  return state_ok && cpu_back && !hv.is_panicked();
}

}  // namespace mcs::fi
