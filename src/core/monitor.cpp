#include "core/monitor.hpp"

namespace mcs::fi {

void RunMonitor::begin(Testbed& testbed) {
  window_open_tick_ = testbed.board().now().value;
  uart1_mark_ = testbed.board().uart1().total_bytes();
  led_mark_ = testbed.board().gpio().led_toggles();
  validated_mark_ = testbed.freertos().messages_validated();
}

// The monitored workload cell is whatever the scenario last booted on the
// non-root CPU — FreeRTOS in the paper's setup, OSEK in the AUTOSAR
// scenarios. The observables (USART, LED, CPU power state, management
// results) are payload-agnostic by design.

RunResult RunMonitor::finish(Testbed& testbed) const {
  RunResult result;
  platform::BananaPiBoard& board = testbed.board();
  jh::Hypervisor& hv = testbed.hypervisor();

  result.uart1_bytes = board.uart1().bytes_since(uart1_mark_);
  result.led_toggles = board.gpio().led_toggles() - led_mark_;
  result.traps = hv.counters().traps;
  result.hvcs = hv.counters().hvcs;
  result.irqs = hv.counters().irqs;
  result.create_result = testbed.linux_root().last_result(jh::Hypercall::CellCreate);
  result.start_result = testbed.linux_root().last_result(jh::Hypercall::CellStart);

  // Failure-detection timestamp: first hypervisor ERROR/FATAL record.
  for (const util::LogRecord& record : board.log().records()) {
    if (record.component == "hypervisor" &&
        record.severity >= util::Severity::Error) {
      result.failure_tick = record.timestamp.value;
      break;
    }
  }

  // 1. Panic park dominates: the fault propagated to the whole system.
  if (hv.is_panicked()) {
    result.outcome = Outcome::PanicPark;
    result.detail = hv.panic_reason();
    return result;
  }

  // 2. Cell never allocated: the management path failed. Expected
  //    fail-stop when the failure reads "invalid arguments".
  jh::Cell* cell = testbed.workload_cell();
  result.cell_exists = cell != nullptr;
  if (cell == nullptr) {
    if (jh::is_invalid_arguments(result.create_result) ||
        jh::is_invalid_arguments(result.start_result)) {
      result.outcome = Outcome::InvalidArguments;
      result.detail = "management hypercall rejected, cell not allocated";
    } else {
      result.outcome = Outcome::SilentHang;
      result.detail = "cell absent without a recorded EINVAL";
    }
    return result;
  }

  const arch::Cpu& cpu1 = board.cpu(Testbed::kFreeRtosCpu);
  switch (cpu1.power_state()) {
    case arch::PowerState::Parked:
      result.outcome = Outcome::CpuPark;
      result.detail = cpu1.halt_reason();
      return result;
    case arch::PowerState::Failed:
    case arch::PowerState::Booting:
      // "The CPU fails to come online as per the swap feature of the CPU
      // hot plug or the cell is left in a non-executable state" — while
      // Jailhouse still reports the cell running.
      result.outcome = Outcome::InconsistentCell;
      result.detail = "cell '" + cell->name() + "' state=" +
                      std::string(jh::cell_state_name(cell->state())) +
                      " but CPU " + std::string(arch::power_state_name(
                                        cpu1.power_state()));
      return result;
    case arch::PowerState::Off:
      if (cell->state() == jh::CellState::Running) {
        result.outcome = Outcome::InconsistentCell;
        result.detail = "cell marked running with its CPU powered off";
        return result;
      }
      result.outcome = Outcome::Correct;  // cleanly shut down
      result.detail = "cell shut down";
      return result;
    case arch::PowerState::On:
      break;
  }

  // 3. CPU online, cell running: the USART decides.
  if (result.uart1_bytes >= kLiveOutputThreshold) {
    result.outcome = Outcome::Correct;
    result.detail = "workload live (" + std::to_string(result.uart1_bytes) +
                    " USART bytes)";
  } else {
    result.outcome = Outcome::SilentHang;
    result.detail = "CPU online but USART silent";
  }
  return result;
}

bool probe_shutdown_reclaims(Testbed& testbed) {
  jh::Hypervisor& hv = testbed.hypervisor();
  if (hv.is_panicked()) return false;  // nothing left to manage
  const jh::CellId id = testbed.workload_cell_id();
  if (id == 0 || hv.find_cell(id) == nullptr) return false;

  testbed.shutdown_workload_cell();
  const jh::Cell* cell = hv.find_cell(id);
  const bool state_ok =
      cell != nullptr && cell->state() == jh::CellState::ShutDown;
  const bool cpu_back = hv.cpu_owner(Testbed::kFreeRtosCpu) == jh::kRootCellId;
  return state_ok && cpu_back && !hv.is_panicked();
}

}  // namespace mcs::fi
