// Run outcomes: the failure-mode taxonomy of §III.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/fault_model.hpp"
#include "hypervisor/hypercall.hpp"

namespace mcs::fi {

/// How one fault-injection run ended.
enum class Outcome : std::uint8_t {
  /// "The cell behaves correctly in the majority of cases."
  Correct = 0,
  /// "High level intensity faults always return an 'invalid arguments'
  /// [...]; thus, the [non-root] cell will be not allocated at all, which
  /// is a correct (and expected) behavior." Fail-stop.
  InvalidArguments,
  /// "The cell is allocated but [...] the non-root cell doesn't do
  /// anything [...]. Nonetheless, it is considered running by Jailhouse."
  InconsistentCell,
  /// "A panic park happens, i.e., the fault propagates to the whole
  /// system bringing the system itself to a kernel panic."
  PanicPark,
  /// "Error code 0x24, the unhandled trap exception [...] the cpu_park()
  /// function is called and the non-root cell stops working."
  CpuPark,
  /// Cell claims to run, CPU is online, but nothing reaches the USART and
  /// no failure was signalled — a hang the taxonomy above cannot explain.
  SilentHang,
  /// The harness itself failed before the experiment could start (testbed
  /// would not enable, unknown scenario…). Never part of the paper's
  /// taxonomy: runs in this bucket indicate a broken setup, not a fault
  /// effect, and must be investigated rather than aggregated.
  HarnessError,
  /// Inter-cell (ivshmem) traffic between two concurrent cells was
  /// corrupted or disrupted — stale/lost doorbells, mismatched payloads,
  /// ring protocol errors — while the monitored cell itself still looked
  /// alive. The isolation-threat bucket the ivshmem-traffic scenario
  /// classifies; invisible to single-cell observables.
  CrossCellCorruption,
};

inline constexpr std::size_t kNumOutcomes = 8;

[[nodiscard]] std::string_view outcome_name(Outcome outcome) noexcept;

/// Inverse of outcome_name; false when the name matches no outcome. Used
/// by the offline log analytics to rebuild distributions from log files.
[[nodiscard]] bool outcome_from_name(std::string_view name,
                                     Outcome& out) noexcept;

/// Figure 3 buckets Correct / PanicPark / CpuPark; helper for that view.
[[nodiscard]] bool is_figure3_bucket(Outcome outcome) noexcept;

/// Outcomes that leave the workload cell itself failed — CpuPark,
/// InconsistentCell and CrossCellCorruption — i.e. the runs the
/// post-mortem `jailhouse cell shutdown` reclaim probe is issued for.
/// The one predicate both the live CampaignAggregate and the offline
/// log analytics key cell_failures / reclaimed on.
[[nodiscard]] bool is_cell_failure(Outcome outcome) noexcept;

/// Everything measured in one run.
struct RunResult {
  Outcome outcome = Outcome::Correct;
  std::string detail;  ///< human-readable cause (panic reason, park class…)

  /// Which fault domain the run's injections attacked (the plan's).
  FaultDomain fault_domain = FaultDomain::Register;
  std::uint64_t injections = 0;
  std::uint64_t flipped_bits = 0;
  std::uint64_t first_injection_tick = 0;
  std::uint64_t failure_tick = 0;  ///< 0 when no failure was detected

  std::uint64_t uart1_bytes = 0;  ///< non-root USART output in the window
  std::uint64_t led_toggles = 0;
  std::uint64_t traps = 0;
  std::uint64_t hvcs = 0;
  std::uint64_t irqs = 0;

  jh::HvcResult create_result = 0;
  jh::HvcResult start_result = 0;
  bool cell_exists = false;
  bool shutdown_reclaimed = false;  ///< post-mortem shutdown gave CPU back

  /// True when a failure was detected after (or in the same tick as) the
  /// first injection.
  [[nodiscard]] bool failure_detected() const noexcept {
    return failure_tick >= first_injection_tick && first_injection_tick > 0 &&
           failure_tick > 0;
  }

  /// Detection latency: first injection → first detected failure, in
  /// ticks (ms). Same-tick detection — the common case, the handler
  /// consumes the corrupted register immediately — reads as 0.
  [[nodiscard]] std::uint64_t detection_latency() const noexcept {
    return failure_detected() ? failure_tick - first_injection_tick : 0;
  }
};

/// Counts per outcome; the unit Figure 3 and every table aggregate.
class OutcomeDistribution {
 public:
  void add(Outcome outcome) noexcept {
    ++counts_[static_cast<std::size_t>(outcome)];
    ++total_;
  }
  void merge(const OutcomeDistribution& other) noexcept {
    for (std::size_t i = 0; i < kNumOutcomes; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t count(Outcome outcome) const noexcept {
    return counts_[static_cast<std::size_t>(outcome)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double fraction(Outcome outcome) const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count(outcome)) /
                             static_cast<double>(total_);
  }

 private:
  std::array<std::uint64_t, kNumOutcomes> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace mcs::fi
