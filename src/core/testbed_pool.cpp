#include "core/testbed_pool.hpp"

#include <utility>

namespace mcs::fi {

TestbedLease::~TestbedLease() { release(); }

TestbedLease::TestbedLease(TestbedLease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      key_(std::move(other.key_)),
      testbed_(std::move(other.testbed_)) {}

TestbedLease& TestbedLease::operator=(TestbedLease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    key_ = std::move(other.key_);
    testbed_ = std::move(other.testbed_);
  }
  return *this;
}

void TestbedLease::release() {
  if (pool_ != nullptr && testbed_ != nullptr) {
    pool_->release(std::move(key_), std::move(testbed_));
  }
  pool_ = nullptr;
  testbed_ = nullptr;
}

TestbedPool& TestbedPool::instance() {
  static TestbedPool pool;
  return pool;
}

TestbedLease TestbedPool::acquire(const std::string& board_name,
                                  const std::string& tuning_text,
                                  const platform::BoardRegistry::Entry& entry,
                                  const std::string& extra_key) {
  // '\x1f' (unit separator) cannot occur in a board key or tuning text,
  // so the compound key is unambiguous.
  std::string key = board_name + '\x1f' + tuning_text;
  if (!extra_key.empty()) {
    key += '\x1f';
    key += extra_key;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++acquires_;
    const auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<Testbed> testbed = std::move(it->second.back());
      it->second.pop_back();
      ++reuses_;
      return TestbedLease(this, std::move(key), std::move(testbed));
    }
    ++creates_;
  }
  // Board/testbed construction happens outside the lock: misses are the
  // cold path, and factories may be arbitrarily expensive.
  auto testbed = std::make_unique<Testbed>(entry.factory());
  return TestbedLease(this, std::move(key), std::move(testbed));
}

void TestbedPool::release(std::string key, std::unique_ptr<Testbed> testbed) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::unique_ptr<Testbed>>& slots = idle_[std::move(key)];
    if (slots.size() < kMaxIdlePerKey) {
      slots.push_back(std::move(testbed));
      return;
    }
  }
  // Cap reached: destroy outside the lock (testbed teardown is not cheap).
  testbed.reset();
}

TestbedPool::Stats TestbedPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.acquires = acquires_;
  stats.creates = creates_;
  stats.reuses = reuses_;
  for (const auto& [key, slots] : idle_) stats.idle_slots += slots.size();
  stats.run_resets = run_resets_.load(std::memory_order_relaxed);
  stats.run_restores = run_restores_.load(std::memory_order_relaxed);
  stats.captures = captures_.load(std::memory_order_relaxed);
  stats.snapshot_bytes = snapshot_bytes_.load(std::memory_order_relaxed);
  stats.dirty_pages = dirty_pages_.load(std::memory_order_relaxed);
  stats.tlb_hits = tlb_hits_.load(std::memory_order_relaxed);
  stats.tlb_misses = tlb_misses_.load(std::memory_order_relaxed);
  stats.dram_fast_ops = dram_fast_ops_.load(std::memory_order_relaxed);
  stats.dram_slow_ops = dram_slow_ops_.load(std::memory_order_relaxed);
  return stats;
}

void TestbedPool::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  idle_.clear();
}

}  // namespace mcs::fi
